(** Non-deterministic result identification (paper, section 4.3.2): the
    receiver program is re-run with different starting times; nodes
    whose value or child count varies get their det flag cleared, and
    the flags are applied to the traces under comparison so Algorithm 1
    skips them. *)

val mark : Ast.t -> Ast.t list -> Ast.t
(** [mark reference alternatives] is [reference] with det cleared on
    every node that disagrees with any alternative run. When child
    counts disagree the node itself becomes non-deterministic and
    descent stops — mirroring where Algorithm 1 would halt. *)

val apply_mask : Ast.t -> Ast.t -> Ast.t
(** [apply_mask mask tree] clears det flags in [tree] positionally
    wherever [mask] has them cleared. Children beyond the mask's shape
    keep their own flags: a deterministic extra line added by a sender
    must stay visible to the comparison. *)

val nondet_fraction : Ast.t -> float
