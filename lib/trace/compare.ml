(* Algorithm 1 of the paper: recursive comparison of two system call
   trace ASTs. Traversal halts at any node whose det flag is false on
   either side; a difference is reported when two deterministic nodes
   disagree on value or child count, otherwise children are compared
   pairwise.

   The packed representation adds a sound short-circuit: a diff can only
   arise from a value or child-count mismatch, and [Ast.hash] equality
   implies the two subtrees agree on labels, values and shape everywhere
   (det flags excluded — which cannot create a diff, only suppress
   descent into an already diff-free subtree). So hash-equal subtrees
   are skipped wholesale, making the common all-agreeing comparison
   O(1) instead of O(nodes). *)

type diff = {
  path : string list;          (* labels from the root to the node *)
  left : Ast.t;
  right : Ast.t;
}

let pp_diff ppf d =
  Fmt.pf ppf "%s: %s=%S vs %S (%d vs %d children)"
    (String.concat "/" d.path)
    d.left.Ast.label d.left.Ast.value d.right.Ast.value
    d.left.Ast.nkids d.right.Ast.nkids

(* SyscallTraceCmp(Ta, Tb) — returns the differing node pairs. *)
let diff_trees ta tb =
  let rec cmp path ta tb acc =
    if ta == tb || ta.Ast.hash = tb.Ast.hash then acc
    else if not (ta.Ast.det && tb.Ast.det) then acc
    else if
      (not (String.equal ta.Ast.value tb.Ast.value))
      || ta.Ast.nkids <> tb.Ast.nkids
    then
      { path = List.rev (ta.Ast.label :: path); left = ta; right = tb }
      :: acc
    else
      List.fold_left2
        (fun acc ca cb -> cmp (ta.Ast.label :: path) ca cb acc)
        acc ta.Ast.children tb.Ast.children
  in
  List.rev (cmp [] ta tb [])

let equal_modulo_nondet ta tb = diff_trees ta tb = []

(* A schedule-independent identity for a diff list (FNV-1a). Two
   executions exposing the same root cause — the same nodes disagreeing
   in the same way — fingerprint equal regardless of which schedule
   seed produced them, so concurrent reports found by N seeds collapse
   to one. Node values and labels are folded in, not physical node
   identity, so structurally equal diffs from different executions
   agree. *)
let fnv_prime = 0x100000001b3
let fnv_basis = 0x4bf29ce484222325 (* FNV-1a 64-bit basis, truncated to OCaml's 63-bit int *)

let fingerprint_diffs diffs =
  let fold_byte h b = (h lxor b) * fnv_prime in
  let fold_string h s =
    let h = ref h in
    String.iter (fun c -> h := fold_byte !h (Char.code c)) s;
    fold_byte !h 0xFF
  in
  let fold_int h i =
    let h = fold_byte h (i land 0xFF) in
    let h = fold_byte h ((i lsr 8) land 0xFF) in
    let h = fold_byte h ((i lsr 16) land 0xFF) in
    fold_byte h ((i lsr 24) land 0xFF)
  in
  let fold_diff h d =
    let h = List.fold_left fold_string h d.path in
    let h = fold_string h d.left.Ast.value in
    let h = fold_string h d.right.Ast.value in
    let h = fold_int h d.left.Ast.nkids in
    fold_int h d.right.Ast.nkids
  in
  List.fold_left fold_diff fnv_basis diffs land max_int

(* The receiver syscall indices whose subtrees differ. Trace roots have
   one "callN:..." child per syscall; a diff at the root itself (call
   count mismatch) maps to index 0. *)
let call_index_of_label label =
  if String.length label > 4 && String.equal (String.sub label 0 4) "call" then
    let rest = String.sub label 4 (String.length label - 4) in
    match String.index_opt rest ':' with
    | Some i -> int_of_string_opt (String.sub rest 0 i)
    | None -> int_of_string_opt rest
  else None

(* Indices from already-computed diffs, so callers that need both the
   diff list and the indices run the tree comparison once. *)
let interfered_of_diffs diffs =
  let index_of d =
    match d.path with
    | _root :: call_label :: _ -> call_index_of_label call_label
    | [ root_label ] -> (
      match call_index_of_label root_label with Some i -> Some i | None -> Some 0)
    | [] -> Some 0
  in
  let indices = List.filter_map index_of diffs in
  List.sort_uniq Int.compare indices

let interfered_indices ta tb = interfered_of_diffs (diff_trees ta tb)
