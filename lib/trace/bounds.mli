(** Bounds-based non-determinism handling — the extension the paper
    proposes for testing the time namespace (section 7): learn the valid
    value bounds caused by benign non-determinism through dynamic
    profiling, and flag interference as a bound violation. *)

type t = {
  label : string;
  children : t list;
  kind : kind;
}

and kind =
  | Exact of string          (** deterministic leaf: must match *)
  | Interval of int * int    (** numeric leaf: must fall within *)
  | Unchecked                (** varying non-numeric leaf, or varying shape *)
  | Interior

val min_slack : int
val spread_factor : int

val learn : Ast.t -> Ast.t list -> t
(** [learn reference alternatives] builds a bounds tree from
    receiver-only runs at different clock bases. *)

type violation = {
  path : string list;
  expected : kind;
  actual : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : t -> Ast.t -> violation list
