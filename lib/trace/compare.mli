(** Algorithm 1 of the paper: recursive comparison of two syscall-trace
    ASTs. Traversal halts at any node whose det flag is false on either
    side; a difference is reported when two deterministic nodes disagree
    on value or child count, otherwise children are compared pairwise.
    Subtrees with equal {!Ast.t.hash} are skipped wholesale — hash
    equality implies the comparison yields no diffs. *)

type diff = {
  path : string list;          (** labels from the root to the node *)
  left : Ast.t;
  right : Ast.t;
}

val pp_diff : Format.formatter -> diff -> unit

val diff_trees : Ast.t -> Ast.t -> diff list
(** SyscallTraceCmp — the differing node pairs, in traversal order. *)

val equal_modulo_nondet : Ast.t -> Ast.t -> bool

val fingerprint_diffs : diff list -> int
(** A schedule-independent identity for a diff list: folds each diff's
    path, values and child counts through FNV-1a. Structurally equal
    diff lists — the same root cause exposed by different schedule
    seeds — fingerprint equal; non-negative. *)

val call_index_of_label : string -> int option
(** ["call12:read"] -> [Some 12]. *)

val interfered_of_diffs : diff list -> int list
(** The receiver syscall indices named by an already-computed diff
    list, sorted and deduplicated — avoids re-running the tree
    comparison when the diffs are already in hand. *)

val interfered_indices : Ast.t -> Ast.t -> int list
(** [interfered_of_diffs (diff_trees ta tb)]. *)
