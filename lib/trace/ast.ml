(* Abstract syntax trees of system call traces (paper, section 4.3.2).
   Comparing ASTs instead of trace text lets the analysis ignore
   individual non-deterministic result fields (a timestamp inside an
   otherwise deterministic stat buffer) without discarding whole calls.
   Each node carries a [det] flag, true by default; the non-determinism
   pass clears it on nodes whose value or child count varies across
   re-executions.

   The representation is packed for the comparison hot path. Labels and
   values are hash-consed through [Kit_compact.Intern], so equality
   between nodes built in the same domain is normally decided by the
   runtime's pointer check. Every node precomputes:

     [nkids]  child count            — shallow comparison without List.length
     [size]   subtree node count     — O(1) size for report statistics
     [ndet]   subtree non-det count  — O(1) count_nondet, plus an
                                       all-deterministic fast path for masking
     [hash]   structural content hash over label, value and children
              (det flags excluded)

   The content hash is computed from string *contents* (via the interner)
   and child hashes, so it is identical across domains and processes for
   structurally identical trees. Because it ignores det flags, and a
   comparison diff can only arise from a value or child-count mismatch,
   [hash] equality implies "no diffs" — which is what lets Compare and
   Nondet skip whole subtrees in O(1).

   The record is [private] in the interface: construction goes through
   the smart constructors so the derived fields can never go stale. *)

type t = {
  label : string;
  value : string;
  det : bool;
  nkids : int;
  size : int;
  ndet : int;
  hash : int;
  children : t list;
}

let mk ~det label value children =
  let label, lhash = Kit_compact.Intern.intern_hashed label in
  let value, vhash = Kit_compact.Intern.intern_hashed value in
  let nkids, size, kids_ndet, h =
    List.fold_left
      (fun (n, s, nd, h) c ->
        (n + 1, s + c.size, nd + c.ndet, Kit_compact.Fnv.int h c.hash))
      (0, 1, 0, Kit_compact.Fnv.init)
      children
  in
  let h = Kit_compact.Fnv.int h lhash in
  let h = Kit_compact.Fnv.int h vhash in
  let h = Kit_compact.Fnv.int h nkids in
  { label; value; det; nkids; size;
    ndet = (kids_ndet + if det then 0 else 1);
    hash = Kit_compact.Fnv.to_int h; children }

let leaf ?(det = true) label value = mk ~det label value []
let node ?(det = true) label children = mk ~det label "" children

let with_det t det =
  if Bool.equal t.det det then t
  else { t with det; ndet = (t.ndet + if det then -1 else 1) }

(* Rebuild a node around re-flagged copies of its own children (the
   masking passes): label, value, shape — and therefore [hash], [size]
   and [nkids] — are unchanged, only det flags move. *)
let with_flags t ~det children =
  let kids_ndet = List.fold_left (fun acc c -> acc + c.ndet) 0 children in
  { t with det; ndet = (kids_ndet + if det then 0 else 1); children }

let rec pp ppf t =
  let flag = if t.det then "" else " [nondet]" in
  if t.children = [] then Fmt.pf ppf "@[<h>%s=%s%s@]" t.label t.value flag
  else
    Fmt.pf ppf "@[<v 2>%s%s%a@]" t.label flag
      (Fmt.list ~sep:(Fmt.any "") (fun ppf c -> Fmt.pf ppf "@,%a" pp c))
      t.children

let to_string t = Fmt.str "%a" pp t

(* Shallow agreement: same label, value and child count — what
   Algorithm 1 checks at each node. The child-count compare is an int
   compare, and the string compares normally hit the interner's
   pointer-equality fast path. *)
let shallow_equal a b =
  a.nkids = b.nkids && String.equal a.value b.value
  && String.equal a.label b.label

let rec equal a b =
  a == b
  || a.hash = b.hash && Bool.equal a.det b.det && a.ndet = b.ndet
     (* hash equality covers labels, values and shape; when both
        subtrees are all-deterministic the det flags cannot differ
        either, so only mixed-flag trees need the recursive walk *)
     && ((a.ndet = 0 && b.ndet = 0) || List.equal equal a.children b.children)

let size t = t.size
let count_nondet t = t.ndet
let all_det t = t.ndet = 0

(* -- the pre-packing representation ---------------------------------------

   Checkpoints written before the packed representation marshalled this
   exact layout. Loading them decodes into [Legacy.ast] (same field
   order and types as the old record) and rebuilds packed nodes. *)

module Legacy = struct
  type ast = {
    l_label : string;
    l_value : string;
    l_det : bool;
    l_children : ast list;
  }
end

let rec of_legacy (l : Legacy.ast) =
  mk ~det:l.Legacy.l_det l.Legacy.l_label l.Legacy.l_value
    (List.map of_legacy l.Legacy.l_children)

let rec to_legacy t =
  { Legacy.l_label = t.label; l_value = t.value; l_det = t.det;
    l_children = List.map to_legacy t.children }
