(* Abstract syntax trees of system call traces (paper, section 4.3.2).
   Comparing ASTs instead of trace text lets the analysis ignore
   individual non-deterministic result fields (a timestamp inside an
   otherwise deterministic stat buffer) without discarding whole calls.
   Each node carries a [det] flag, true by default; the non-determinism
   pass clears it on nodes whose value or child count varies across
   re-executions. *)

type t = {
  label : string;
  value : string;
  det : bool;
  children : t list;
}

let leaf ?(det = true) label value = { label; value; det; children = [] }
let node ?(det = true) label children = { label; value = ""; det; children }

let with_det t det = { t with det }

let rec pp ppf t =
  let flag = if t.det then "" else " [nondet]" in
  if t.children = [] then Fmt.pf ppf "@[<h>%s=%s%s@]" t.label t.value flag
  else
    Fmt.pf ppf "@[<v 2>%s%s%a@]" t.label flag
      (Fmt.list ~sep:(Fmt.any "") (fun ppf c -> Fmt.pf ppf "@,%a" pp c))
      t.children

let to_string t = Fmt.str "%a" pp t

(* Shallow agreement: same label, value and child count — what
   Algorithm 1 checks at each node. *)
let shallow_equal a b =
  String.equal a.label b.label
  && String.equal a.value b.value
  && List.length a.children = List.length b.children

let rec equal a b =
  shallow_equal a b && Bool.equal a.det b.det
  && List.equal equal a.children b.children

(* Number of nodes, for report statistics. *)
let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec count_nondet t =
  let self = if t.det then 0 else 1 in
  List.fold_left (fun acc c -> acc + count_nondet c) self t.children
