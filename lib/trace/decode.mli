(** Decode raw syscall results into trace ASTs — the role strace's
    output decoding plays in the paper (section 5.2). Deliberately
    fine-grained: multi-line outputs become one child per line, stat
    buffers one child per field, so divergence is localised to the
    smallest result component. *)

val decode_result : Kit_kernel.Interp.result -> Ast.t
(** One call result as a ["callN:name"] node with argument, ret, errno
    and payload children. *)

val decode_trace : Kit_kernel.Interp.result list -> Ast.t
(** A whole receiver execution as a single ["trace"] tree. *)
