(* Decode raw syscall results into trace ASTs — the role strace's output
   decoding plays in the paper's implementation (section 5.2). The
   decoding is deliberately fine-grained: multi-line outputs become one
   child per line, stat buffers one child per field, so divergence is
   localised to the smallest result component.

   Decoding feeds the packed AST constructors directly: labels and
   values are hash-consed as the nodes are built, and the recurring
   positional labels ("lineN", "argN") and small numeric values come
   from preallocated tables instead of a fresh Printf per node. *)

module Program = Kit_abi.Program
module Value = Kit_abi.Value
module Sysno = Kit_abi.Sysno
module Sysret = Kit_kernel.Sysret
module Errno = Kit_kernel.Errno
module Interp = Kit_kernel.Interp
module Intern = Kit_compact.Intern

(* Positional labels repeat on every call of every trace; table the
   common indices once. The arrays are immutable after initialisation,
   so sharing them across domains is safe. *)
let positional prefix =
  let table = Array.init 64 (fun i -> Printf.sprintf "%s%d" prefix i) in
  fun i ->
    if i >= 0 && i < Array.length table then Array.unsafe_get table i
    else Printf.sprintf "%s%d" prefix i

let line_label = positional "line"
let arg_label = positional "arg"

let int_value = Intern.string_of_small_int

let decode_payload = function
  | Sysret.P_none -> []
  | Sysret.P_str s ->
    let lines = String.split_on_char '\n' s in
    (match lines with
    | [] | [ _ ] -> [ Ast.leaf "out" s ]
    | _ :: _ ->
      [ Ast.node "out" (List.mapi (fun i l -> Ast.leaf (line_label i) l) lines)
      ])
  | Sysret.P_lines ls ->
    [ Ast.node "out" (List.mapi (fun i l -> Ast.leaf (line_label i) l) ls) ]
  | Sysret.P_stat st ->
    [ Ast.node "stat"
        [ Ast.leaf "ino" (int_value st.Sysret.inode);
          Ast.leaf "dev_minor" (int_value st.Sysret.dev_minor);
          Ast.leaf "size" (int_value st.Sysret.size);
          Ast.leaf "mtime" (int_value st.Sysret.mtime) ] ]

let decode_args args =
  List.mapi (fun i a -> Ast.leaf (arg_label i) (Value.to_string a)) args

(* One call result as an AST node. File descriptor return values are
   per-process and stable, so [ret] is deterministic by construction;
   the payload carries the interesting data. *)
let decode_result (r : Interp.result) =
  let call = r.Interp.call in
  let ret = r.Interp.ret in
  let base =
    [ Ast.leaf "ret" (int_value ret.Sysret.ret);
      Ast.leaf "errno"
        (match ret.Sysret.err with
        | None -> "0"
        | Some e -> Errno.to_string e) ]
  in
  Ast.node
    (Printf.sprintf "call%d:%s" r.Interp.index (Sysno.to_string call.Program.sysno))
    (decode_args call.Program.args @ base @ decode_payload ret.Sysret.out)

(* A whole receiver execution as a single trace tree. *)
let decode_trace results = Ast.node "trace" (List.map decode_result results)
