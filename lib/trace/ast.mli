(** Abstract syntax trees of system call traces (paper, section 4.3.2).

    Comparing ASTs instead of trace text lets the analysis ignore
    individual non-deterministic result fields (a timestamp inside an
    otherwise deterministic stat buffer) without discarding whole calls.
    Each node carries a [det] flag, true by default; the non-determinism
    pass clears it on nodes whose value or child count varies across
    re-executions.

    Nodes are packed: labels and values are hash-consed strings, and
    every node precomputes its child count, subtree size, subtree
    non-det count and a structural content hash (det flags excluded).
    [hash] equality implies the comparison of the two subtrees yields no
    diffs, which lets {!Compare} and {!Nondet} skip whole subtrees. The
    record is private so the derived fields can never go stale; build
    nodes with {!leaf}, {!node}, {!with_det} and {!with_flags}. *)

type t = private {
  label : string;
  value : string;        (** leaf payload; [""] on interior nodes *)
  det : bool;
  nkids : int;           (** [List.length children] *)
  size : int;            (** nodes in this subtree *)
  ndet : int;            (** non-deterministic nodes in this subtree *)
  hash : int;            (** structural content hash, det-independent *)
  children : t list;
}

val leaf : ?det:bool -> string -> string -> t
val node : ?det:bool -> string -> t list -> t
val with_det : t -> bool -> t

val with_flags : t -> det:bool -> t list -> t
(** [with_flags t ~det children] rebuilds [t] with new det flags and
    det-reflagged copies of its own children. The children must be
    structurally identical to [t.children] (only det flags may differ):
    hash, size and child count are carried over unchanged. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val shallow_equal : t -> t -> bool
(** Same label, value and child count — what Algorithm 1 checks at each
    node. *)

val equal : t -> t -> bool
(** Deep structural equality, det flags included. *)

val size : t -> int
(** O(1). *)

val count_nondet : t -> int
(** O(1). *)

val all_det : t -> bool
(** No non-deterministic node anywhere in the subtree. O(1). *)

(** The exact record layout trace nodes marshalled before the packed
    representation — the decode target for pre-change checkpoints. *)
module Legacy : sig
  type ast = {
    l_label : string;
    l_value : string;
    l_det : bool;
    l_children : ast list;
  }
end

val of_legacy : Legacy.ast -> t
val to_legacy : t -> Legacy.ast
