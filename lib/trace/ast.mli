(** Abstract syntax trees of system call traces (paper, section 4.3.2).

    Comparing ASTs instead of trace text lets the analysis ignore
    individual non-deterministic result fields (a timestamp inside an
    otherwise deterministic stat buffer) without discarding whole calls.
    Each node carries a [det] flag, true by default; the non-determinism
    pass clears it on nodes whose value or child count varies across
    re-executions. *)

type t = {
  label : string;
  value : string;        (** leaf payload; [""] on interior nodes *)
  det : bool;
  children : t list;
}

val leaf : ?det:bool -> string -> string -> t
val node : ?det:bool -> string -> t list -> t
val with_det : t -> bool -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val shallow_equal : t -> t -> bool
(** Same label, value and child count — what Algorithm 1 checks at each
    node. *)

val equal : t -> t -> bool
(** Deep structural equality, det flags included. *)

val size : t -> int
val count_nondet : t -> int
