(* Non-deterministic result identification (paper, section 4.3.2): the
   receiver program is re-run several times with different starting
   times; nodes whose value or child count varies across runs get their
   det flag cleared, and the flags are then applied to the traces under
   comparison so Algorithm 1 skips them.

   Child lists are walked pairwise (one pass over each alternative's
   children alongside the reference's), never indexed with List.nth —
   the old per-index lookups made both passes quadratic in the child
   count. Hash equality gives both passes a whole-subtree fast path:
   alternatives that hash like the reference cannot disagree anywhere
   below, and an all-deterministic mask has no flags to transfer. *)

(* Build a det-flag mask from a reference run and alternative runs of the
   same program. When child counts disagree the node itself becomes
   non-deterministic and descent stops — exactly mirroring where
   Algorithm 1 would halt. *)
let rec mark reference alternatives =
  if
    List.for_all
      (fun alt -> alt == reference || alt.Ast.hash = reference.Ast.hash)
      alternatives
    (* structurally identical runs disagree nowhere: the mask is the
       reference unchanged *)
  then reference
  else
    let disagrees alt =
      (not (String.equal alt.Ast.value reference.Ast.value))
      || alt.Ast.nkids <> reference.Ast.nkids
    in
    if List.exists disagrees alternatives then Ast.with_det reference false
    else
      (* every alternative has the reference's child count here, so the
         parallel head/tail walk below never runs dry *)
      let rec walk rkids alts_kids =
        match rkids with
        | [] -> []
        | r :: rrest ->
          let heads = List.map List.hd alts_kids in
          let tails = List.map List.tl alts_kids in
          mark r heads :: walk rrest tails
      in
      let children =
        walk reference.Ast.children
          (List.map (fun alt -> alt.Ast.children) alternatives)
      in
      Ast.with_flags reference ~det:reference.Ast.det children

(* Apply a mask's det flags to [tree] positionally. Children beyond the
   mask's shape keep their own flags: a deterministic extra line added by
   a sender must stay visible to the comparison. *)
let rec apply_mask mask tree =
  let det = tree.Ast.det && mask.Ast.det in
  if not det then Ast.with_det tree false
  else if Ast.all_det mask then tree
  else
    let rec walk mkids tkids =
      match (mkids, tkids) with
      | _, [] -> []
      | [], extra -> extra
      | m :: ms, c :: cs -> apply_mask m c :: walk ms cs
    in
    Ast.with_flags tree ~det (walk mask.Ast.children tree.Ast.children)

(* Summary statistics used by the evaluation tables. *)
let nondet_fraction tree =
  let total = Ast.size tree in
  if total = 0 then 0.0
  else float_of_int (Ast.count_nondet tree) /. float_of_int total
