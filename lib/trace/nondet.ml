(* Non-deterministic result identification (paper, section 4.3.2): the
   receiver program is re-run several times with different starting
   times; nodes whose value or child count varies across runs get their
   det flag cleared, and the flags are then applied to the traces under
   comparison so Algorithm 1 skips them. *)

(* Build a det-flag mask from a reference run and alternative runs of the
   same program. When child counts disagree the node itself becomes
   non-deterministic and descent stops — exactly mirroring where
   Algorithm 1 would halt. *)
let rec mark reference alternatives =
  let disagrees alt =
    (not (String.equal alt.Ast.value reference.Ast.value))
    || List.length alt.Ast.children <> List.length reference.Ast.children
  in
  if List.exists disagrees alternatives then Ast.with_det reference false
  else
    let children =
      List.mapi
        (fun i child ->
          let alt_children =
            List.map (fun alt -> List.nth alt.Ast.children i) alternatives
          in
          mark child alt_children)
        reference.Ast.children
    in
    { reference with Ast.children }

(* Apply a mask's det flags to [tree] positionally. Children beyond the
   mask's shape keep their own flags: a deterministic extra line added by
   a sender must stay visible to the comparison. *)
let rec apply_mask mask tree =
  let det = tree.Ast.det && mask.Ast.det in
  if not det then Ast.with_det tree false
  else
    let children =
      List.mapi
        (fun i child ->
          match List.nth_opt mask.Ast.children i with
          | Some mchild -> apply_mask mchild child
          | None -> child)
        tree.Ast.children
    in
    { tree with Ast.det; children }

(* Summary statistics used by the evaluation tables. *)
let nondet_fraction tree =
  let total = Ast.size tree in
  if total = 0 then 0.0
  else float_of_int (Ast.count_nondet tree) /. float_of_int total
