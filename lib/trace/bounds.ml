(* Bounds-based non-determinism handling — the extension the paper
   proposes for testing the time namespace (section 7): instead of
   discarding non-deterministic results wholesale, learn the valid value
   bounds caused by benign non-determinism through dynamic profiling, and
   flag interference as a bound violation. A similar idea is formalised
   for timing side channels in prior work [Chen et al., CCS'17].

   Numeric leaves get an interval learned across the profiling runs,
   widened by a slack proportional to the observed spread (and at least
   [min_slack], covering jitter the profiling runs happened not to
   exhibit). Non-numeric varying leaves and shape variations degrade to
   the classic skip-the-subtree behaviour. *)

type t = {
  label : string;
  children : t list;
  kind : kind;
}

and kind =
  | Exact of string          (* deterministic leaf: must match *)
  | Interval of int * int    (* numeric leaf: must fall within *)
  | Unchecked                (* varying non-numeric leaf, or varying shape *)
  | Interior

let min_slack = 64
let spread_factor = 3

let is_interior ast = ast.Ast.children <> []

(* Learn a bounds tree from the reference run and alternative runs of
   the same (receiver-only) program. *)
let rec learn reference alternatives =
  let same_shape alt = alt.Ast.nkids = reference.Ast.nkids in
  if not (List.for_all same_shape alternatives) then
    { label = reference.Ast.label; children = []; kind = Unchecked }
  else if is_interior reference then
    (* shapes agree at this node, so the parallel walk never runs dry *)
    let rec walk rkids alts_kids =
      match rkids with
      | [] -> []
      | r :: rrest ->
        learn r (List.map List.hd alts_kids)
        :: walk rrest (List.map List.tl alts_kids)
    in
    let children =
      walk reference.Ast.children
        (List.map (fun alt -> alt.Ast.children) alternatives)
    in
    { label = reference.Ast.label; children; kind = Interior }
  else
    let values = reference.Ast.value :: List.map (fun a -> a.Ast.value) alternatives in
    if List.for_all (String.equal reference.Ast.value) values then
      { label = reference.Ast.label; children = []; kind = Exact reference.Ast.value }
    else
      match List.map int_of_string_opt values with
      | ints when List.for_all Option.is_some ints ->
        let ints = List.filter_map Fun.id ints in
        let lo = List.fold_left min max_int ints in
        let hi = List.fold_left max min_int ints in
        let slack = max min_slack (spread_factor * (hi - lo)) in
        { label = reference.Ast.label; children = [];
          kind = Interval (lo - slack, hi + slack) }
      | _ ->
        { label = reference.Ast.label; children = []; kind = Unchecked }

type violation = {
  path : string list;
  expected : kind;
  actual : string;
}

let pp_violation ppf v =
  let expected =
    match v.expected with
    | Exact s -> Printf.sprintf "= %s" s
    | Interval (lo, hi) -> Printf.sprintf "in [%d, %d]" lo hi
    | Unchecked | Interior -> "?"
  in
  Fmt.pf ppf "%s: %s, got %s" (String.concat "/" v.path) expected v.actual

(* Check a trace against learned bounds. *)
let check bounds ast =
  let rec walk path bounds ast acc =
    let path = ast.Ast.label :: path in
    let here () = List.rev path in
    match bounds.kind with
    | Unchecked -> acc
    | Exact v ->
      if String.equal v ast.Ast.value then acc
      else { path = here (); expected = bounds.kind; actual = ast.Ast.value } :: acc
    | Interval (lo, hi) -> (
      match int_of_string_opt ast.Ast.value with
      | Some n when n >= lo && n <= hi -> acc
      | Some _ | None ->
        { path = here (); expected = bounds.kind; actual = ast.Ast.value } :: acc)
    | Interior ->
      if ast.Ast.nkids <> List.length bounds.children then
        { path = here (); expected = bounds.kind;
          actual = Printf.sprintf "%d children" ast.Ast.nkids }
        :: acc
      else
        List.fold_left2 (fun acc b c -> walk path b c acc) acc bounds.children
          ast.Ast.children
  in
  List.rev (walk [] bounds ast [])
