(* The kit-serve scheduler. See sched.mli.

   One single-threaded event loop multiplexes every tenant's cluster
   representatives onto one shared worker pool. Fair sharing is deficit
   round robin: each tenant accrues [weight] credits per refill, a
   dispatch spends one, and an idle tenant's unspent credit can be
   stolen by whoever has runnable work — so quotas hold under
   contention and the pool never idles while anyone has work. *)

module Campaign = Kit_core.Campaign
module Jobqueue = Kit_core.Jobqueue
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type config = {
  sc_pool : Pool.config;
  sc_max_active : int;
  sc_max_pending : int;
  sc_state_dir : string option;
  sc_checkpoint_every : int;
}

let default_config =
  { sc_pool = Pool.default_config; sc_max_active = 4; sc_max_pending = 16;
    sc_state_dir = None; sc_checkpoint_every = 16 }

exception Dead_pool
(* Raised by [step] after checkpointing every tenant: all worker slots
   are dead with work remaining. *)

type t = {
  cfg : config;
  obs : Obs.t;
  pool : Pool.t;
  tenants : (int, Tenant.t) Hashtbl.t;
  mutable ring : int list;              (* tenant ids, submission order *)
  mutable next_id : int;
  spans : (int, Tracer.span) Hashtbl.t; (* live per-submission spans *)
}

let sm name t = Metrics.counter ~always:true t.obs.Obs.metrics ("serve." ^ name)
let sg name t = Metrics.gauge ~always:true t.obs.Obs.metrics ("serve." ^ name)

let create ?obs cfg =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  Option.iter
    (fun dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    cfg.sc_state_dir;
  { cfg; obs; pool = Pool.create ~obs cfg.sc_pool;
    tenants = Hashtbl.create 16; ring = []; next_id = 0;
    spans = Hashtbl.create 16 }

let shutdown t = Pool.shutdown t.pool

let tenants t =
  List.filter_map (Hashtbl.find_opt t.tenants) t.ring

let find_name t name =
  List.find_opt (fun tn -> Tenant.name tn = name) (tenants t)

let count_phase t p =
  List.length (List.filter (fun tn -> Tenant.phase tn = p) (tenants t))

let busy t =
  List.exists
    (fun tn ->
      match Tenant.phase tn with
      | Tenant.Pending | Tenant.Active -> true
      | Tenant.Finished | Tenant.Cancelled | Tenant.Failed _ -> false)
    (tenants t)

let add_tenant t tn =
  Hashtbl.replace t.tenants (Tenant.id tn) tn;
  t.ring <- t.ring @ [ Tenant.id tn ]

let begin_span t tn =
  Hashtbl.replace t.spans (Tenant.id tn)
    (Tracer.span t.obs.Obs.tracer "serve.submission"
       ~attrs:
         [ ("tenant", Tenant.name tn);
           ("submission", string_of_int (Tenant.id tn)) ])

let end_span t tn =
  match Hashtbl.find_opt t.spans (Tenant.id tn) with
  | Some span ->
    Tracer.finish t.obs.Obs.tracer span;
    Hashtbl.remove t.spans (Tenant.id tn)
  | None -> ()

(* -- checkpointing -------------------------------------------------------- *)

let checkpoint_tenant t tn =
  match t.cfg.sc_state_dir with
  | Some dir -> Tenant.save_checkpoint dir tn
  | None -> ()

let checkpoint_all t =
  List.iter
    (fun tn ->
      match Tenant.phase tn with
      | Tenant.Cancelled -> ()
      | _ -> checkpoint_tenant t tn)
    (tenants t)

let drop_checkpoint t tn =
  Option.iter
    (fun dir ->
      try Sys.remove (Tenant.ckpt_path dir tn) with Sys_error _ -> ())
    t.cfg.sc_state_dir

let resume t =
  match t.cfg.sc_state_dir with
  | None -> []
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 11
             && String.sub f 0 7 = "tenant-"
             && Filename.check_suffix f ".ckpt")
      |> List.sort String.compare
    in
    List.filter_map
      (fun file ->
        let path = Filename.concat dir file in
        match Tenant.of_checkpoint ~id:t.next_id path with
        | Ok tn ->
          t.next_id <- t.next_id + 1;
          add_tenant t tn;
          if Tenant.phase tn <> Tenant.Finished then begin_span t tn;
          Some (Tenant.name tn, Tenant.phase_string (Tenant.phase tn))
        | Error why -> Some (file, "unreadable checkpoint: " ^ why))
      files

(* -- admission ------------------------------------------------------------ *)

let submit t spec =
  let reject why = Metrics.inc (sm "rejected" t); Proto.Rejected why in
  if not (Proto.valid_name spec.Proto.sp_name) then
    reject "invalid tenant name (1-64 chars from [A-Za-z0-9_-])"
  else if find_name t spec.Proto.sp_name <> None then
    reject ("tenant name already in use: " ^ spec.Proto.sp_name)
  else if spec.Proto.sp_corpus_size < 1 then
    reject "corpus size must be at least 1"
  else if count_phase t Tenant.Pending >= t.cfg.sc_max_pending then
    reject
      (Printf.sprintf "pending queue full (%d submissions waiting)"
         (count_phase t Tenant.Pending))
  else begin
    let tn = Tenant.create ~id:t.next_id spec in
    t.next_id <- t.next_id + 1;
    add_tenant t tn;
    begin_span t tn;
    Metrics.inc (sm "submitted" t);
    Proto.Accepted { a_name = Tenant.name tn; a_id = Tenant.id tn }
  end

(* -- activation ----------------------------------------------------------- *)

let activate_pending t =
  List.iter
    (fun tn ->
      if
        Tenant.phase tn = Tenant.Pending
        && count_phase t Tenant.Active < t.cfg.sc_max_active
      then
        match Tenant.activate tn ~procs:t.cfg.sc_pool.Pool.procs with
        | options, corpus ->
          Pool.register t.pool ~tenant:(Tenant.id tn)
            ~label:(Tenant.name tn) options corpus;
          Metrics.inc (sm "activated" t);
          Metrics.add (sm "resumed_cases" t) (Tenant.resumed tn)
        | exception e ->
          Tenant.fail tn (Printexc.to_string e);
          Metrics.inc (sm "failed" t);
          end_span t tn)
    (tenants t)

(* -- deficit round robin -------------------------------------------------- *)

let refill_cap = 8.0

let actives t =
  List.filter (fun tn -> Tenant.phase tn = Tenant.Active) (tenants t)

let eligible tn = Tenant.claimable tn && Tenant.under_inflight_cap tn

(* Pick the tenant the next idle slot should serve, in ring order:
   first entitled eligible tenant (spend quota); if quota credit is
   stranded on tenants that cannot run (capped, momentarily out of
   claimable work), let the first eligible tenant steal it (its deficit
   goes negative — the debt repays on later refills); otherwise refill
   every active tenant by its weight (capped at [refill_cap] x weight)
   and try again. *)
let rec pick_tenant t =
  let active = actives t in
  let runnable = List.filter eligible active in
  match runnable with
  | [] -> None
  | first :: _ -> (
    match List.find_opt (fun tn -> Tenant.deficit tn >= 1.0) runnable with
    | Some tn -> Some (tn, false)
    | None ->
      let stranded =
        List.exists
          (fun tn -> Tenant.deficit tn >= 1.0 && not (eligible tn))
          active
      in
      if stranded then Some (first, true)
      else begin
        List.iter
          (fun tn ->
            let w = float_of_int (Tenant.weight tn) in
            Tenant.set_deficit tn
              (Float.min (Tenant.deficit tn +. w) (refill_cap *. w)))
          active;
        pick_tenant t
      end)

let dispatch_idle t =
  List.iter
    (fun slot ->
      match pick_tenant t with
      | None -> ()
      | Some (tn, stolen) -> (
        let contended =
          List.length (List.filter Tenant.claimable (actives t)) >= 2
        in
        match Tenant.claim tn ~slot with
        | None -> ()
        | Some (id, tc) ->
          Tenant.set_deficit tn (Tenant.deficit tn -. 1.0);
          Tenant.note_dispatch tn ~contended ~stolen;
          Metrics.inc (sm "dispatched" t);
          if stolen then Metrics.inc (sm "steals" t);
          Pool.dispatch_job t.pool ~slot ~tenant:(Tenant.id tn) ~id tc))
    (Pool.idle_slots t.pool)

(* -- events --------------------------------------------------------------- *)

let handle_event t = function
  | Pool.Job_done { ev_slot; ev_tenant; ev_id; ev_result; ev_execs } -> (
    match Hashtbl.find_opt t.tenants ev_tenant with
    | Some tn when Tenant.phase tn = Tenant.Active ->
      Tenant.record_done tn ~id:ev_id ev_result ev_execs;
      Metrics.inc (sm "completed_cases" t);
      Tracer.instant t.obs.Obs.tracer "serve.case.done"
        ~attrs:
          [ ("tenant", Tenant.name tn); ("case", string_of_int ev_id);
            ("slot", string_of_int ev_slot) ];
      if
        t.cfg.sc_state_dir <> None
        && Tenant.checkpoint_due tn ~every:t.cfg.sc_checkpoint_every
      then checkpoint_tenant t tn
    | _ -> () (* tenant cancelled or already retired: drop the result *))
  | Pool.Worker_lost { ev_slot; ev_why; ev_in_flight; ev_respawned = _ } ->
    (match ev_in_flight with
    | Some (tid, id) -> (
      match Hashtbl.find_opt t.tenants tid with
      | Some tn when Tenant.phase tn = Tenant.Active ->
        if Tenant.struck tn ~id ~why:ev_why then
          Metrics.inc (sm "poisoned" t)
      | _ -> ())
    | None -> ());
    (* reshard the dead slot's assigned-but-unclaimed jobs, every
       active tenant; with no survivors the jobs stay queued and [step]
       raises Dead_pool right after *)
    let survivors = Pool.alive_slots t.pool in
    List.iter
      (fun tn ->
        match Tenant.release tn ~slot:ev_slot with
        | [] -> ()
        | jobs -> if survivors <> [] then Tenant.redeal tn jobs ~to_:survivors)
      (actives t)

(* -- finishing ------------------------------------------------------------ *)

let finish_drained t =
  List.iter
    (fun tn ->
      if Tenant.is_drained tn then begin
        (match Tenant.finish tn with
        | (_ : Campaign.t) -> Metrics.inc (sm "finished" t)
        | exception e ->
          Tenant.fail tn (Printexc.to_string e);
          Metrics.inc (sm "failed" t));
        Pool.retire t.pool ~tenant:(Tenant.id tn);
        checkpoint_tenant t tn;
        end_span t tn
      end)
    (tenants t)

(* -- the loop ------------------------------------------------------------- *)

let step ?extra t ~timeout =
  activate_pending t;
  dispatch_idle t;
  let events, readable = Pool.poll ?extra t.pool ~timeout in
  List.iter (handle_event t) events;
  finish_drained t;
  Metrics.set_gauge (sg "active" t)
    (float_of_int (count_phase t Tenant.Active));
  Metrics.set_gauge (sg "pending" t)
    (float_of_int (count_phase t Tenant.Pending));
  if
    Pool.live_count t.pool = 0
    && List.exists (fun tn -> not (Tenant.is_drained tn)) (actives t)
  then begin
    checkpoint_all t;
    raise Dead_pool
  end;
  readable

let drain t =
  while busy t do
    ignore (step t ~timeout:0.2)
  done

(* -- requests ------------------------------------------------------------- *)

let cancel t name =
  match find_name t name with
  | None -> Proto.Rejected ("no such tenant: " ^ name)
  | Some tn ->
    (match Tenant.phase tn with
    | Tenant.Pending | Tenant.Active ->
      let was_active = Tenant.phase tn = Tenant.Active in
      Tenant.cancel tn;
      if was_active then Pool.retire t.pool ~tenant:(Tenant.id tn);
      drop_checkpoint t tn;
      Metrics.inc (sm "cancelled" t);
      end_span t tn
    | Tenant.Finished | Tenant.Cancelled | Tenant.Failed _ -> ());
    Proto.Acked

let results t name =
  match find_name t name with
  | None -> Proto.Rejected ("no such tenant: " ^ name)
  | Some tn -> (
    match Tenant.phase tn with
    | Tenant.Finished -> (
      match Tenant.summary tn with
      | Some s -> Proto.Summary s
      | None -> Proto.Rejected "finished without a summary")
    | (Tenant.Pending | Tenant.Active) as p ->
      Proto.Not_ready (Tenant.phase_string p)
    | (Tenant.Cancelled | Tenant.Failed _) as p ->
      Proto.Rejected ("tenant " ^ Tenant.phase_string p))

let extend t name add =
  match find_name t name with
  | None -> Proto.Rejected ("no such tenant: " ^ name)
  | Some tn -> (
    if add < 1 then Proto.Rejected "extension must add at least 1 program"
    else
      match Tenant.phase tn with
      | Tenant.Finished ->
        Tenant.extend tn ~add;
        begin_span t tn;
        Metrics.inc (sm "extended" t);
        Proto.Accepted { a_name = Tenant.name tn; a_id = Tenant.id tn }
      | p ->
        Proto.Rejected
          ("only finished tenants can be extended; " ^ name ^ " is "
         ^ Tenant.phase_string p))

let status t =
  Proto.Status_is
    { st_pool =
        (let core = Pool.core_stats t.pool in
         { Proto.ps_procs = t.cfg.sc_pool.Pool.procs;
           ps_live = Pool.live_count t.pool;
           ps_spawns = core.Pool.c_spawns;
           ps_deaths = core.Pool.c_deaths;
           ps_respawns = core.Pool.c_respawns });
      st_tenants = List.map Tenant.status (tenants t) }

let request t (req : Proto.request) : Proto.reply =
  match req with
  | Proto.Submit spec -> submit t spec
  | Proto.Extend { x_name; x_add } -> extend t x_name x_add
  | Proto.Status -> status t
  | Proto.Results name -> results t name
  | Proto.Cancel name -> cancel t name
  | Proto.Shutdown -> checkpoint_all t; Proto.Bye

(* -- the daemon ----------------------------------------------------------- *)

let handle_client t ~stop cfd =
  Fun.protect
    ~finally:(fun () -> try Unix.close cfd with Unix.Unix_error _ -> ())
    (fun () ->
      let reply =
        match (Wire.recv cfd : Proto.request option) with
        | Some req ->
          if req = Proto.Shutdown then stop := true;
          Some (request t req)
        | None -> None
        | exception Wire.Oversized { announced; limit } ->
          (* satellite 2: a too-large submission gets a clean protocol
             reply instead of a dropped connection *)
          Metrics.inc (sm "rejected" t);
          Some
            (Proto.Rejected
               (Printf.sprintf
                  "request frame too large (%d bytes, limit %d)" announced
                  limit))
      in
      match reply with
      | Some r -> (
        try Wire.send cfd r with Unix.Unix_error _ | Sys_error _ -> ())
      | None -> ())

let serve ?(log = fun (_ : string) -> ()) t ~socket =
  let lfd = Proto.listen socket in
  let stop = ref false in
  let on_signal = Sys.Signal_handle (fun _ -> stop := true) in
  let prev_term = Sys.signal Sys.sigterm on_signal in
  let prev_int = Sys.signal Sys.sigint on_signal in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Sys.remove socket with Sys_error _ -> ()))
    (fun () ->
      log (Printf.sprintf "listening on %s" socket);
      while not !stop do
        match step t ~extra:[ lfd ] ~timeout:0.2 with
        | readable ->
          if List.mem lfd readable then (
            match Unix.accept lfd with
            | cfd, _ -> handle_client t ~stop cfd
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
              ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      checkpoint_all t;
      log "shutting down (state checkpointed)")
