(* One tenant of the kit-serve scheduler. See tenant.mli.

   The tenant owns everything campaign-shaped about a submission — the
   prepared corpus, the generated clusters, the per-representative job
   queue, the result cache keyed by testcase fingerprint — while the
   scheduler owns everything pool-shaped (slots, deficits, dispatch).
   The fingerprint cache is what makes both resume and Extend cheap:
   corpus generation is prefix-stable, so an unchanged cluster's
   representative hashes to the same key and its cached result is
   replayed instead of re-executed. *)

module Campaign = Kit_core.Campaign
module Jobqueue = Kit_core.Jobqueue
module Checkpoint = Kit_core.Checkpoint
module Cluster = Kit_gen.Cluster
module Testcase = Kit_gen.Testcase
module Program = Kit_abi.Program
module Fnv = Kit_compact.Fnv
module Ast = Kit_trace.Ast
module Compare = Kit_trace.Compare
module Report = Kit_detect.Report
module Filter = Kit_detect.Filter
module Supervisor = Kit_exec.Supervisor
module Coverage = Kit_obs.Coverage

type phase =
  | Pending
  | Active
  | Finished
  | Cancelled
  | Failed of string

let phase_string = function
  | Pending -> "pending"
  | Active -> "active"
  | Finished -> "finished"
  | Cancelled -> "cancelled"
  | Failed why -> "failed: " ^ why

type t = {
  t_id : int;
  mutable t_spec : Proto.spec;
  mutable t_phase : phase;
  mutable t_prepared : Campaign.prepared option;  (* while Active *)
  mutable t_generation : Cluster.result option;
  mutable t_q : (Testcase.t, Campaign.case_result) Jobqueue.t;
  t_quar : (int, Campaign.case_result) Hashtbl.t;
      (* twice-lethal representatives, by job id *)
  t_strikes : (int, int) Hashtbl.t;     (* worker deaths per in-flight id *)
  t_cache : (string, Campaign.case_result * int) Hashtbl.t;
      (* testcase fingerprint -> (result, executions) *)
  t_fps : (int, string) Hashtbl.t;
      (* job id -> fingerprint, computed once at activation *)
  mutable t_executions : int;
  mutable t_resumed : int;              (* cache replays this activation *)
  mutable t_inflight : int;
  mutable t_since_ckpt : int;
  (* scheduling state, owned by Sched *)
  mutable t_deficit : float;
  mutable t_dispatched : int;
  mutable t_contended : int;
  mutable t_steals : int;
  (* outcome *)
  mutable t_result : Campaign.t option;
  mutable t_summary : string option;
}

(* The pre-FNV fingerprint: an MD5 of the marshalled testcase. Kept
   behind the KIT_LEGACY_FINGERPRINT compat flag so an operator can pin
   the old keying scheme while old and new daemons share a state dir;
   legacy checkpoints themselves are migrated by re-fingerprinting (the
   cached results carry their testcases), not by keeping this around. *)
let fingerprint_legacy tc =
  Digest.string (Marshal.to_string tc [ Marshal.No_sharing ])

(* Streaming FNV over the testcase fields: no Marshal buffer, no MD5,
   and process-stable (ints only — no pointers, no hash randomisation).
   Stacks are length-prefixed so adjacent lists cannot alias. *)
let fingerprint_fnv (tc : Testcase.t) =
  let ints h l = List.fold_left Fnv.int (Fnv.int h (List.length l)) l in
  let h = Fnv.int Fnv.init tc.Testcase.sender in
  let h = Fnv.int h tc.Testcase.receiver in
  let h =
    match tc.Testcase.flow with
    | None -> Fnv.int h 0
    | Some f ->
      let h = Fnv.int h 1 in
      let h = Fnv.int h f.Testcase.addr in
      let h = Fnv.int h f.Testcase.w_ip in
      let h = Fnv.int h f.Testcase.r_ip in
      let h = Fnv.int h f.Testcase.r_sys_index in
      let h = ints h f.Testcase.w_stack in
      ints h f.Testcase.r_stack
  in
  Fnv.to_hex h

let legacy_fingerprints =
  match Sys.getenv_opt "KIT_LEGACY_FINGERPRINT" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let fingerprint tc =
  if legacy_fingerprints then fingerprint_legacy tc else fingerprint_fnv tc

let create ~id spec =
  { t_id = id; t_spec = spec; t_phase = Pending; t_prepared = None;
    t_generation = None; t_q = Jobqueue.create ();
    t_quar = Hashtbl.create 7; t_strikes = Hashtbl.create 7;
    t_cache = Hashtbl.create 64; t_fps = Hashtbl.create 64;
    t_executions = 0; t_resumed = 0;
    t_inflight = 0; t_since_ckpt = 0; t_deficit = 0.0; t_dispatched = 0;
    t_contended = 0; t_steals = 0; t_result = None; t_summary = None }

let id t = t.t_id
let name t = t.t_spec.Proto.sp_name
let spec t = t.t_spec
let phase t = t.t_phase
let weight t = max 1 t.t_spec.Proto.sp_weight
let summary t = t.t_summary
let result t = t.t_result
let inflight t = t.t_inflight
let resumed t = t.t_resumed

let total t =
  match t.t_generation with
  | None -> 0
  | Some g -> List.length g.Cluster.reps

let completed t =
  List.length (Jobqueue.results t.t_q) + Hashtbl.length t.t_quar

(* -- activation ----------------------------------------------------------- *)

(* Prepare + generate the tenant's campaign, fill the job queue (one job
   per cluster representative, id = representative index) and replay
   every fingerprint-cached result as an immediately-completed job.
   Returns the context the scheduler registers with the pool. *)
let activate t ~procs =
  let options = Proto.options_of_spec t.t_spec in
  let prepared = Campaign.prepare options in
  let generation = Campaign.generate_prepared prepared in
  let q = Jobqueue.create () in
  t.t_prepared <- Some prepared;
  t.t_generation <- Some generation;
  t.t_q <- q;
  Hashtbl.reset t.t_quar;
  Hashtbl.reset t.t_strikes;
  Hashtbl.reset t.t_fps;
  t.t_executions <- 0;
  t.t_resumed <- 0;
  t.t_inflight <- 0;
  List.iteri
    (fun i tc ->
      let id = Jobqueue.submit q tc in
      assert (id = i);
      (* one fingerprint per representative per activation: the cache
         lookup here and the store in [record_done] share it *)
      let fp = fingerprint tc in
      Hashtbl.replace t.t_fps id fp;
      match Hashtbl.find_opt t.t_cache fp with
      | Some (result, execs) ->
        Jobqueue.complete q id result;
        t.t_executions <- t.t_executions + execs;
        t.t_resumed <- t.t_resumed + 1
      | None -> ())
    generation.Cluster.reps;
  ignore (Jobqueue.assign_round_robin q ~workers:(max 1 procs));
  t.t_phase <- Active;
  (options, Campaign.prepared_corpus prepared)

let corpus t =
  match t.t_prepared with
  | Some p -> Campaign.prepared_corpus p
  | None -> [||]

(* -- scheduling hooks ----------------------------------------------------- *)

(* Work a slot could start right now: unfinished jobs beyond the ones
   already running ([unfinished] counts queued, assigned and running). *)
let claimable t =
  t.t_phase = Active
  && List.length (Jobqueue.unfinished t.t_q) > t.t_inflight

let claim t ~slot =
  match Jobqueue.claim_next t.t_q ~worker:slot with
  | Some _ as job -> t.t_inflight <- t.t_inflight + 1; job
  | None -> (
    match Jobqueue.steal t.t_q ~thief:slot with
    | Some _ as job -> t.t_inflight <- t.t_inflight + 1; job
    | None -> None)

let under_inflight_cap t =
  t.t_spec.Proto.sp_max_inflight <= 0
  || t.t_inflight < t.t_spec.Proto.sp_max_inflight

let record_done t ~id result execs =
  if Jobqueue.mem t.t_q id && Jobqueue.result t.t_q id = None then begin
    let fp =
      match Hashtbl.find_opt t.t_fps id with
      | Some fp -> fp
      | None -> fingerprint (Jobqueue.payload t.t_q id)
    in
    Jobqueue.complete t.t_q id result;
    Hashtbl.replace t.t_cache fp (result, execs);
    t.t_executions <- t.t_executions + execs;
    t.t_inflight <- max 0 (t.t_inflight - 1);
    t.t_since_ckpt <- t.t_since_ckpt + 1;
    Hashtbl.remove t.t_strikes id
  end

(* A worker died holding job [id]. Two deaths in a row quarantine the
   representative as a first-class Worker_lost crash report. Returns
   [true] when the job was quarantined (it must not be re-dealt). *)
let struck t ~id ~why =
  t.t_inflight <- max 0 (t.t_inflight - 1);
  let strikes = 1 + Option.value ~default:0 (Hashtbl.find_opt t.t_strikes id) in
  Hashtbl.replace t.t_strikes id strikes;
  if strikes >= 2 && Jobqueue.mem t.t_q id && Jobqueue.result t.t_q id = None
  then begin
    let tc = Jobqueue.payload t.t_q id in
    Jobqueue.quarantine t.t_q id;
    Hashtbl.replace t.t_quar id
      (Campaign.lost_case_result ~attempts:strikes (corpus t) ~why tc);
    t.t_since_ckpt <- t.t_since_ckpt + 1;
    true
  end
  else false

let release t ~slot = Jobqueue.release t.t_q ~worker:slot

let deficit t = t.t_deficit
let set_deficit t d = t.t_deficit <- d

let note_dispatch t ~contended ~stolen =
  t.t_dispatched <- t.t_dispatched + 1;
  if contended then t.t_contended <- t.t_contended + 1;
  if stolen then t.t_steals <- t.t_steals + 1

let redeal t jobs ~to_ = Jobqueue.deal t.t_q jobs ~to_

let is_drained t = t.t_phase = Active && Jobqueue.is_drained t.t_q

let steals t = t.t_steals

(* -- finishing ------------------------------------------------------------ *)

(* Fold the per-representative results (queue results, plus quarantined
   crash reports) in representative order through Campaign.assemble:
   diagnosis and aggregation run here, in the daemon, exactly as a solo
   campaign would run them. *)
let finish t =
  match (t.t_prepared, t.t_generation) with
  | Some prepared, Some generation ->
    let results =
      List.mapi
        (fun i _ ->
          match Jobqueue.result t.t_q i with
          | Some r -> r
          | None -> (
            match Hashtbl.find_opt t.t_quar i with
            | Some r -> r
            | None ->
              invalid_arg
                (Printf.sprintf "Tenant.finish: representative %d of %s \
                                 has no result" i (name t))))
        generation.Cluster.reps
    in
    let c =
      Campaign.assemble prepared generation results ~executions:t.t_executions
    in
    t.t_result <- Some c;
    t.t_summary <- Some (Proto.summary c);
    t.t_phase <- Finished;
    (* the corpus and profiles are only needed while executing *)
    t.t_prepared <- None;
    c
  | _ -> invalid_arg "Tenant.finish: tenant was never activated"

let cancel t =
  if t.t_phase = Pending || t.t_phase = Active then t.t_phase <- Cancelled

let fail t why = t.t_phase <- Failed why

(* -- extend --------------------------------------------------------------- *)

(* Grow the corpus and go around again. The fingerprint cache carries
   over: prefix-stable corpus generation means every cluster whose
   representative is unchanged replays from cache on re-activation. *)
let extend t ~add =
  t.t_spec <-
    { t.t_spec with
      Proto.sp_corpus_size = t.t_spec.Proto.sp_corpus_size + add };
  t.t_phase <- Pending;
  t.t_result <- None;
  t.t_summary <- None

(* -- status --------------------------------------------------------------- *)

(* Coverage summaries ride the assembled result, like [ts_reports]:
   [-1] until the tenant finishes. *)
let cov_summary field t =
  match t.t_result with
  | Some c -> field (Coverage.summary c.Campaign.coverage)
  | None -> -1

let status t =
  { Proto.ts_name = name t;
    ts_id = t.t_id;
    ts_state = phase_string t.t_phase;
    ts_weight = weight t;
    ts_done = completed t;
    ts_total = total t;
    ts_executions = t.t_executions;
    ts_reports =
      (match t.t_result with
      | Some c -> List.length c.Campaign.reports
      | None -> -1);
    ts_resumed = t.t_resumed;
    ts_dispatched = t.t_dispatched;
    ts_contended = t.t_contended;
    ts_steals = t.t_steals;
    ts_cov_vars = cov_summary (fun s -> s.Coverage.sum_vars) t;
    ts_cov_paired = cov_summary (fun s -> s.Coverage.sum_paired) t;
    ts_cov_attributed = cov_summary (fun s -> s.Coverage.sum_attributed) t;
    ts_cov_gaps = cov_summary (fun s -> s.Coverage.sum_gaps) t }

(* -- checkpoints ---------------------------------------------------------- *)

(* The kind was bumped to -v2 when trace nodes switched to the packed
   representation, and to -v3 when reports gained an origin, case
   results gained the schedule-search fields and specs gained
   [sp_schedules]: the Marshal layout of the cached case results changed
   each time, and the kind tag is what keeps the loader from decoding
   old bytes into the new types. Old-kind files are still loadable — see
   [Legacy] (v1) and [V2] below. *)
let ckpt_kind = "serve-tenant-v3"
let ckpt_kind_v2 = "serve-tenant-v2"
let ckpt_kind_legacy = "serve-tenant"

(* The spec layout every pre-v3 checkpoint embeds (before
   [sp_schedules]); migrated as sequential-only. *)
type legacy_spec = {
  lsp_name : string;
  lsp_seed : int;
  lsp_corpus_size : int;
  lsp_strategy : Cluster.strategy;
  lsp_weight : int;
  lsp_max_inflight : int;
  lsp_diagnose : bool;
}

let spec_of_legacy (s : legacy_spec) =
  { Proto.sp_name = s.lsp_name; sp_seed = s.lsp_seed;
    sp_corpus_size = s.lsp_corpus_size; sp_strategy = s.lsp_strategy;
    sp_weight = s.lsp_weight; sp_max_inflight = s.lsp_max_inflight;
    sp_diagnose = s.lsp_diagnose; sp_schedules = 1 }

type ckpt = {
  ck_spec : Proto.spec;
  ck_completed : (string * (Campaign.case_result * int)) list;
  ck_finished : bool;
  ck_summary : string option;
}

(* Mirrors of the exact record layouts a pre-packing daemon marshalled
   under the "serve-tenant" kind — trace nodes as the old four-field
   record, reports and case results around them. Loading decodes into
   these, rebuilds packed nodes, and re-keys the cache with the current
   fingerprint scheme (the cached results carry their testcases, so no
   legacy digest is ever needed). *)
module Legacy = struct
  type diff = {
    ld_path : string list;
    ld_left : Ast.Legacy.ast;
    ld_right : Ast.Legacy.ast;
  }

  type report = {
    lr_testcase : Testcase.t;
    lr_sender : Program.t;
    lr_receiver : Program.t;
    lr_interfered : int list;
    lr_diffs : diff list;
    lr_trace_a : Ast.Legacy.ast;
    lr_trace_b : Ast.Legacy.ast;
  }

  type case_result = {
    lc_tc : Testcase.t;
    lc_funnel : Filter.funnel;
    lc_report : report option;
    lc_crashes : Supervisor.crash list;
  }

  type ckpt = {
    lk_spec : legacy_spec;
    lk_completed : (string * (case_result * int)) list;
    lk_finished : bool;
    lk_summary : string option;
  }

  let diff_of (d : diff) =
    { Compare.path = d.ld_path; left = Ast.of_legacy d.ld_left;
      right = Ast.of_legacy d.ld_right }

  let report_of (r : report) =
    { Report.testcase = r.lr_testcase; sender = r.lr_sender;
      receiver = r.lr_receiver; interfered = r.lr_interfered;
      diffs = List.map diff_of r.lr_diffs;
      trace_a = Ast.of_legacy r.lr_trace_a;
      trace_b = Ast.of_legacy r.lr_trace_b;
      origin = Report.Sequential }

  let case_result_of (c : case_result) =
    { Campaign.cr_tc = c.lc_tc; cr_funnel = c.lc_funnel;
      cr_report = Option.map report_of c.lc_report;
      cr_concurrent = []; cr_sched = Campaign.sched_create ();
      cr_crashes = c.lc_crashes }
end

(* Mirrors of the v2 layouts: trace nodes already packed, but reports
   have no origin and case results no schedule-search fields. A v2
   daemon only ever ran sequentially, so migration fills
   [Report.Sequential] origins and empty search results; the cache keys
   are already the current FNV fingerprints, so they carry over. *)
module V2 = struct
  type report = {
    v2r_testcase : Testcase.t;
    v2r_sender : Program.t;
    v2r_receiver : Program.t;
    v2r_interfered : int list;
    v2r_diffs : Compare.diff list;
    v2r_trace_a : Ast.t;
    v2r_trace_b : Ast.t;
  }

  type case_result = {
    v2c_tc : Testcase.t;
    v2c_funnel : Filter.funnel;
    v2c_report : report option;
    v2c_crashes : Supervisor.crash list;
  }

  type ckpt = {
    v2k_spec : legacy_spec;
    v2k_completed : (string * (case_result * int)) list;
    v2k_finished : bool;
    v2k_summary : string option;
  }

  let report_of (r : report) =
    { Report.testcase = r.v2r_testcase; sender = r.v2r_sender;
      receiver = r.v2r_receiver; interfered = r.v2r_interfered;
      diffs = r.v2r_diffs; trace_a = r.v2r_trace_a; trace_b = r.v2r_trace_b;
      origin = Report.Sequential }

  let case_result_of (c : case_result) =
    { Campaign.cr_tc = c.v2c_tc; cr_funnel = c.v2c_funnel;
      cr_report = Option.map report_of c.v2c_report;
      cr_concurrent = []; cr_sched = Campaign.sched_create ();
      cr_crashes = c.v2c_crashes }
end

let ckpt_path dir t = Filename.concat dir ("tenant-" ^ name t ^ ".ckpt")

let checkpoint_due t ~every = t.t_since_ckpt >= max 1 every

(* Checkpoint = the whole fingerprint cache (plus the summary once
   finished). A resumed daemon replays the cache at activation, so
   checkpointed representatives are never re-executed. *)
let save_checkpoint dir t =
  let ck =
    { ck_spec = t.t_spec;
      ck_completed =
        Hashtbl.fold (fun fp entry acc -> (fp, entry) :: acc) t.t_cache [];
      ck_finished = (t.t_phase = Finished);
      ck_summary = t.t_summary }
  in
  Checkpoint.save (ckpt_path dir t) ~kind:ckpt_kind ck;
  t.t_since_ckpt <- 0

(* A pre-packing checkpoint, migrated: packed trace nodes rebuilt from
   the legacy layout, cache re-keyed by the current fingerprint of each
   entry's own testcase (stored keys are stale MD5 digests). *)
let migrate_legacy ~id (ck : Legacy.ckpt) =
  let t = create ~id (spec_of_legacy ck.Legacy.lk_spec) in
  List.iter
    (fun (_old_fp, (lc, execs)) ->
      let cr = Legacy.case_result_of lc in
      Hashtbl.replace t.t_cache (fingerprint cr.Campaign.cr_tc) (cr, execs))
    ck.Legacy.lk_completed;
  if ck.Legacy.lk_finished then begin
    t.t_phase <- Finished;
    t.t_summary <- ck.Legacy.lk_summary
  end;
  t

(* A v2 checkpoint, migrated: origins and schedule-search fields filled
   with their sequential-only defaults, cache keys reused as stored. *)
let migrate_v2 ~id (ck : V2.ckpt) =
  let t = create ~id (spec_of_legacy ck.V2.v2k_spec) in
  List.iter
    (fun (fp, (vc, execs)) ->
      Hashtbl.replace t.t_cache fp (V2.case_result_of vc, execs))
    ck.V2.v2k_completed;
  if ck.V2.v2k_finished then begin
    t.t_phase <- Finished;
    t.t_summary <- ck.V2.v2k_summary
  end;
  t

(* Rebuild a tenant from its checkpoint file: a finished tenant comes
   back Finished with its stored summary; an unfinished one comes back
   Pending with the cache primed, ready to re-activate. Old-kind files
   go through the legacy decode + migration path. *)
let of_checkpoint ~id path =
  match (Checkpoint.load path ~kind:ckpt_kind : (ckpt, _) result) with
  | Ok ck ->
    let t = create ~id ck.ck_spec in
    List.iter (fun (fp, entry) -> Hashtbl.replace t.t_cache fp entry)
      ck.ck_completed;
    if ck.ck_finished then begin
      t.t_phase <- Finished;
      t.t_summary <- ck.ck_summary
    end;
    Ok t
  | Error (Checkpoint.Checkpoint_corrupt _ as e) -> (
    (* possibly an older-kind file: the kind tag tells *)
    match (Checkpoint.load path ~kind:ckpt_kind_v2 : (V2.ckpt, _) result) with
    | Ok ck -> Ok (migrate_v2 ~id ck)
    | Error _ -> (
      match
        (Checkpoint.load path ~kind:ckpt_kind_legacy : (Legacy.ckpt, _) result)
      with
      | Ok ck -> Ok (migrate_legacy ~id ck)
      | Error _ -> Error (Checkpoint.error_to_string e)))
  | Error e -> Error (Checkpoint.error_to_string e)
