(** The [kit serve] client/server protocol: submission specs, requests,
    replies, the deterministic results summary and the Unix-domain
    socket plumbing shared by the daemon ({!Sched.serve}) and the
    one-shot clients ([kit submit] / [kit status] / [kit results] /
    [kit cancel]).

    Transport: one request per connection over a [SOCK_STREAM]
    Unix-domain socket, each direction a single {!Wire} frame. A client
    announcing a frame beyond [Wire.max_frame] surfaces server-side as
    the typed {!Wire.Oversized}, which the daemon answers with a clean
    {!reply.Rejected} instead of dropping the connection. *)

(** What a tenant asks the daemon to run: the same knobs as a solo
    [kit campaign], plus the scheduling contract ([sp_weight] for the
    deficit-round-robin quota, [sp_max_inflight] to cap the tenant's
    concurrently-executing cases; [0] means unbounded). *)
type spec = {
  sp_name : string;
  sp_seed : int;
  sp_corpus_size : int;
  sp_strategy : Kit_gen.Cluster.strategy;
  sp_weight : int;
  sp_max_inflight : int;
  sp_diagnose : bool;
  sp_schedules : int;
      (** interleaved schedule seeds per case; 1 = sequential only *)
}

val default_spec : spec
(** Seed 7, corpus 320, DF-IA, weight 1, unbounded in-flight,
    diagnosis on, sequential-only schedules — and an empty (invalid)
    name callers must fill in. *)

val valid_name : string -> bool
(** Tenant names become checkpoint file names: 1–64 chars drawn from
    [[A-Za-z0-9_-]]. *)

val options_of_spec : spec -> Kit_core.Campaign.options
(** The campaign a spec denotes — exactly what a solo [kit campaign]
    with the same seed, corpus size and strategy runs, which is what
    makes a tenant's {!summary} byte-comparable to the standalone
    run's. *)

type request =
  | Submit of spec
  | Extend of { x_name : string; x_add : int }
      (** grow a finished tenant's corpus by [x_add] programs and re-run
          as a delta campaign (cached per-case results are reused) *)
  | Status
  | Results of string                  (** fetch a tenant's summary *)
  | Cancel of string
  | Shutdown                           (** checkpoint everything and exit *)

type tenant_status = {
  ts_name : string;
  ts_id : int;
  ts_state : string;       (** pending | active | finished | cancelled |
                               failed: reason *)
  ts_weight : int;
  ts_done : int;                       (** completed representatives *)
  ts_total : int;                      (** 0 until activated *)
  ts_executions : int;
  ts_reports : int;                    (** -1 until finished *)
  ts_resumed : int;                    (** cases restored, not re-run *)
  ts_dispatched : int;
  ts_contended : int;
      (** dispatches made while another tenant also had claimable work —
          the denominator of the fairness share *)
  ts_steals : int;
      (** dispatches taken beyond quota from idle tenants' slack *)
  ts_cov_vars : int;
      (** coverage-ledger universe size; [-1] until finished (like
          [ts_reports] — the ledger is assembled with the result) *)
  ts_cov_paired : int;
      (** vars with an overlapping write/read pair observed *)
  ts_cov_attributed : int;             (** vars pinned by a report *)
  ts_cov_gaps : int;                   (** vars with no overlapping pair *)
}

type pool_status = {
  ps_procs : int;
  ps_live : int;
  ps_spawns : int;
  ps_deaths : int;
  ps_respawns : int;
}

type reply =
  | Accepted of { a_name : string; a_id : int }
  | Rejected of string
  | Status_is of {
      st_pool : pool_status;
      st_tenants : tenant_status list;  (** in submission (id) order *)
    }
  | Summary of string                  (** a {!summary} *)
  | Not_ready of string
      (** [Results] on a tenant still pending/active — the payload is
          its state string; [kit results --wait] polls on this *)
  | Acked                              (** cancel acknowledged *)
  | Bye                                (** daemon is shutting down *)

val summary : Kit_core.Campaign.t -> string
(** The deterministic campaign summary: strategy + cluster/report
    counts, the filtering funnel (Table 5), the new-bug oracle line,
    the quarantine count, the schedule-search section (only when the
    campaign ran with [schedules > 1] — sequential summaries are
    byte-identical to pre-scheduler output), and the aggregated report
    groups when diagnosis ran. No wall-clock content, so
    [kit results NAME] and [kit campaign --summary] on the same
    seed/corpus/strategy are byte-identical — the CI serve gate diffs
    them. *)

(** {2 Sockets} *)

val listen : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path (unlinking any stale
    socket first). Close-on-exec, so pool workers never inherit it. *)

val connect : string -> Unix.file_descr
(** @raise Unix.Unix_error when the daemon is not there. *)

val request : string -> request -> (reply, string) result
(** One-shot client call: connect to the socket path, send the request,
    read the single reply, close. All transport failures (daemon absent,
    hang-up, oversized reply) come back as [Error message]. *)
