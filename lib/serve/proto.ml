(* The kit-serve client/server protocol. See proto.mli.

   One request per connection over a Unix-domain SOCK_STREAM socket,
   both directions framed by Wire (8-byte length + Marshal). Requests
   and replies are closure-free plain data, so the default No_sharing
   marshalling is enough — and an over-[Wire.max_frame] announcement
   from a client surfaces as the typed [Wire.Oversized], which the
   daemon answers with a clean [Rejected] reply instead of hanging up
   (the connection is one-shot, so no re-synchronisation is needed). *)

module Campaign = Kit_core.Campaign
module Cluster = Kit_gen.Cluster
module Tables = Kit_core.Tables
module Oracle = Kit_core.Oracle
module Bugs = Kit_kernel.Bugs

(* -- submissions ---------------------------------------------------------- *)

type spec = {
  sp_name : string;
  sp_seed : int;
  sp_corpus_size : int;
  sp_strategy : Cluster.strategy;
  sp_weight : int;
  sp_max_inflight : int;
  sp_diagnose : bool;
  sp_schedules : int;
}

let default_spec =
  { sp_name = ""; sp_seed = 7; sp_corpus_size = 320; sp_strategy = Cluster.Df_ia;
    sp_weight = 1; sp_max_inflight = 0; sp_diagnose = true; sp_schedules = 1 }

let valid_name name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       name

(* The campaign options a spec denotes — shared by the scheduler and by
   equivalence tests, so a tenant's run is the same campaign a solo
   [kit campaign] with the same seed/corpus/strategy would run. *)
let options_of_spec spec =
  { Campaign.default_options with
    Campaign.seed = spec.sp_seed;
    corpus_size = spec.sp_corpus_size;
    strategy = spec.sp_strategy;
    diagnose = spec.sp_diagnose;
    schedules = max 1 spec.sp_schedules;
    obs = None }

(* -- requests and replies ------------------------------------------------- *)

type request =
  | Submit of spec
  | Extend of { x_name : string; x_add : int }
  | Status
  | Results of string
  | Cancel of string
  | Shutdown

type tenant_status = {
  ts_name : string;
  ts_id : int;
  ts_state : string;                     (* pending/active/finished/… *)
  ts_weight : int;
  ts_done : int;
  ts_total : int;                        (* 0 until activated *)
  ts_executions : int;
  ts_reports : int;                      (* -1 until finished *)
  ts_resumed : int;
  ts_dispatched : int;
  ts_contended : int;
  ts_steals : int;
  ts_cov_vars : int;                     (* -1 until finished *)
  ts_cov_paired : int;
  ts_cov_attributed : int;
  ts_cov_gaps : int;
}

type pool_status = {
  ps_procs : int;
  ps_live : int;
  ps_spawns : int;
  ps_deaths : int;
  ps_respawns : int;
}

type reply =
  | Accepted of { a_name : string; a_id : int }
  | Rejected of string
  | Status_is of { st_pool : pool_status; st_tenants : tenant_status list }
  | Summary of string
  | Not_ready of string
  | Acked
  | Bye

(* -- the deterministic results summary ------------------------------------ *)

(* Byte-identical between a tenant's [kit results] and a solo
   [kit campaign --summary] on the same inputs: strategy + cluster and
   report counts, the filtering funnel (Table 5), the new-bug oracle
   line, the quarantine count and (when diagnosis ran) the aggregated
   report groups. Deliberately no wall-clock content. *)
let summary (c : Campaign.t) =
  let found = Oracle.new_bugs_found c.Campaign.keyed in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str "strategy %s: %d clusters, %d reports after filtering\n"
       (Cluster.strategy_name c.Campaign.generation.Cluster.strategy)
       c.Campaign.generation.Cluster.clusters
       (List.length c.Campaign.reports));
  Buffer.add_string b (Tables.table5 c);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Fmt.str "new bugs found (%d/9): %a\n" (List.length found)
       (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
       found);
  Buffer.add_string b
    (Fmt.str "quarantined: %d\n" (List.length c.Campaign.quarantined));
  (* The concurrent section only exists when schedule search ran:
     sequential-only summaries stay byte-identical to pre-scheduler
     output (the CI serve gate diffs them). *)
  if c.Campaign.options.Campaign.schedules > 1 then begin
    let s = c.Campaign.sched in
    let race = Oracle.race_bugs_found c.Campaign.concurrent in
    Buffer.add_string b
      (Fmt.str
         "schedule search (%d seeds/case): %d candidates, %d classes, \
          %d executed, %d pruned, %d skipped\n"
         c.Campaign.options.Campaign.schedules s.Campaign.sched_candidates
         s.Campaign.sched_classes s.Campaign.sched_executed
         s.Campaign.sched_pruned s.Campaign.sched_skipped);
    Buffer.add_string b
      (Fmt.str "concurrent reports: %d\n"
         (List.length c.Campaign.concurrent));
    Buffer.add_string b
      (Fmt.str "race-window bugs found (%d/%d): %a\n" (List.length race)
         (List.length Bugs.race_bugs)
         (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
         race)
  end;
  if c.Campaign.options.Campaign.diagnose then begin
    Buffer.add_string b (Kit_report.Render.groups c.Campaign.agg_rs);
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

(* -- sockets -------------------------------------------------------------- *)

let listen path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let request socket (req : request) : (reply, string) result =
  match connect socket with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot reach the daemon at %s: %s" socket
         (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Wire.send fd req with
        | exception (Unix.Unix_error _ | Sys_error _) ->
          Error "the daemon hung up before reading the request"
        | () -> (
          match (Wire.recv fd : reply option) with
          | Some reply -> Ok reply
          | None -> Error "the daemon hung up without replying"
          | exception Wire.Oversized { announced; limit } ->
            Error
              (Printf.sprintf "oversized reply frame (%d > %d bytes)"
                 announced limit)))
