(** Length-prefixed [Marshal] framing over pipe file descriptors — the
    parent/worker wire protocol of the process pool.

    Each frame is an 8-byte big-endian payload length followed by the
    Marshal bytes. Reads are exact: a closed or half-written pipe
    surfaces as [None] from {!recv}, never as a crash inside the
    deserialiser — the pool treats it as worker (or parent) death.

    Both ends of every pipe live in the same executable image (the
    workers are forks), so Marshal's type-unsafety is confined to the
    usual rule: send and receive sites must agree on the frame type. *)

val max_frame : int
(** Sanity bound on a single frame (16 MiB). *)

exception Oversized of { announced : int; limit : int }
(** A frame header announced a well-formed length beyond {!max_frame}.
    Distinct from the [None] corruption/EOF path so protocol servers can
    reject a too-large message with a clean reply; the pool treats it
    like peer death (the stream cannot be re-synchronised). *)

val send : ?flags:Marshal.extern_flags list -> Unix.file_descr -> 'a -> unit
(** Write one frame. Loops over partial writes. [flags] defaults to
    [[Marshal.No_sharing]]; the pool's bootstrap frame passes
    [[Marshal.Closures]] instead — sound because both ends run the
    identical executable image, which Marshal checks via the code
    fragment digest.
    @raise Unix.Unix_error e.g. [EPIPE] when the peer is gone — callers
    treat it as peer death. *)

val recv : Unix.file_descr -> 'a option
(** Read one frame. [None] on EOF, truncation mid-frame, a negative
    length prefix, or undecodable payload bytes.
    @raise Oversized on an over-{!max_frame} length announcement. *)
