(** Length-prefixed [Marshal] framing over pipe file descriptors — the
    parent/worker wire protocol of the process pool.

    Each frame is an 8-byte big-endian payload length followed by the
    Marshal bytes. Reads are exact: a closed or half-written pipe
    surfaces as [None] from {!recv}, never as a crash inside the
    deserialiser — the pool treats it as worker (or parent) death.

    Both ends of every pipe live in the same executable image (the
    workers are forks), so Marshal's type-unsafety is confined to the
    usual rule: send and receive sites must agree on the frame type. *)

val max_frame : int
(** Sanity bound on a single frame (16 MiB). A length prefix beyond it
    means a desynchronised or corrupt stream; {!recv} returns [None]. *)

val send : ?flags:Marshal.extern_flags list -> Unix.file_descr -> 'a -> unit
(** Write one frame. Loops over partial writes. [flags] defaults to
    [[Marshal.No_sharing]]; the pool's bootstrap frame passes
    [[Marshal.Closures]] instead — sound because both ends run the
    identical executable image, which Marshal checks via the code
    fragment digest.
    @raise Unix.Unix_error e.g. [EPIPE] when the peer is gone — callers
    treat it as peer death. *)

val recv : Unix.file_descr -> 'a option
(** Read one frame. [None] on EOF, truncation mid-frame, an implausible
    length prefix, or undecodable payload bytes. *)
