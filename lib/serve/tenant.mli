(** One tenant of the [kit serve] scheduler: a submitted campaign's
    lifecycle, job queue, fingerprint-keyed result cache and KITCKPT1
    checkpoint.

    Split of responsibilities: the tenant owns the campaign-shaped state
    (prepared corpus, generated clusters, one job per cluster
    representative, per-representative results), the {!Sched} owns the
    pool-shaped state (worker slots, deficits, dispatch order). Per-case
    results are schedule-independent, so a tenant finished under any
    interleaving assembles the same campaign a solo [kit campaign] run
    produces — the cross-check behind the serve CI gate.

    The result cache is keyed by testcase fingerprint — a streaming FNV
    hash over the representative's fields, process-stable and computed
    without any Marshal round trip. Corpus generation is prefix-stable,
    so both daemon resume and {!extend} replay unchanged representatives
    from cache instead of re-executing them. *)

type phase =
  | Pending      (** admitted, waiting for an activation slot *)
  | Active       (** clusters generated, representatives executing *)
  | Finished     (** assembled; {!summary} and {!result} available *)
  | Cancelled
  | Failed of string

val phase_string : phase -> string

type t

val create : id:int -> Proto.spec -> t
(** A fresh [Pending] tenant. [id] is the scheduler-wide tenant id used
    on the pool wire. *)

val id : t -> int
val name : t -> string
val spec : t -> Proto.spec
val phase : t -> phase
val weight : t -> int
(** At least 1, whatever the spec says. *)

val total : t -> int
(** Representative count; 0 until active. *)

val completed : t -> int
val inflight : t -> int

val resumed : t -> int
(** Representatives replayed from cache at the last activation. *)

val summary : t -> string option
(** The deterministic {!Proto.summary}, once [Finished]. *)

val result : t -> Kit_core.Campaign.t option
val status : t -> Proto.tenant_status

(** {2 Lifecycle} *)

val activate : t -> procs:int -> Kit_core.Campaign.options *
  Kit_abi.Program.t array
(** Prepare + generate the campaign, fill the job queue (job id =
    representative index, sharded round-robin over [procs]), replay
    every cached result as an already-completed job, and return the
    (options, corpus) context for {!Pool.register}. *)

val finish : t -> Kit_core.Campaign.t
(** Fold results in representative order through
    [Campaign.assemble] — diagnosis and aggregation included — and move
    to [Finished]. Call when {!is_drained}. *)

val cancel : t -> unit
val fail : t -> string -> unit

val extend : t -> add:int -> unit
(** Grow the corpus by [add] and return to [Pending] for
    re-activation; the result cache carries over, so unchanged clusters
    are not re-executed. *)

(** {2 Scheduling hooks (called by Sched)} *)

val claimable : t -> bool
(** The tenant is active and has work a slot could start now. *)

val under_inflight_cap : t -> bool

val claim : t -> slot:int -> (int * Kit_gen.Testcase.t) option
(** The slot's next job from this tenant's queue — its own shard first,
    then an intra-tenant steal from the longest shard. *)

val record_done : t -> id:int -> Kit_core.Campaign.case_result -> int -> unit
(** A worker finished job [id] with the given result and execution
    count: complete it, cache it under the testcase fingerprint, drop
    its strike record. Duplicate deliveries are ignored. *)

val struck : t -> id:int -> why:string -> bool
(** A worker died holding job [id]. Returns [true] when this was the
    second strike and the representative was quarantined as a
    [Worker_lost] crash report (it must not be re-dealt). *)

val release : t -> slot:int -> (int * Kit_gen.Testcase.t) list
(** The dead slot's unfinished queue, for re-dealing. *)

val redeal : t -> (int * Kit_gen.Testcase.t) list -> to_:int list -> unit
(** @raise Kit_core.Jobqueue.No_survivors when [to_] is empty. *)

val is_drained : t -> bool
(** Active with every representative completed or quarantined — ready
    for {!finish}. *)

(** {2 Scheduler-owned counters}

    Deficit-round-robin state lives on the tenant record but is
    read/written only by {!Sched}. *)

val steals : t -> int
val deficit : t -> float
val set_deficit : t -> float -> unit

val note_dispatch : t -> contended:bool -> stolen:bool -> unit
(** Count a dispatch: [contended] when another tenant also had
    claimable work at dispatch time (the fairness denominator),
    [stolen] when the dispatch spent another tenant's slack. *)

(** {2 Fingerprints} *)

val fingerprint : Kit_gen.Testcase.t -> string
(** The cache key for a representative: a streaming FNV hash of the
    testcase fields, identical across processes. Setting the
    [KIT_LEGACY_FINGERPRINT] environment variable to [1]/[true]/[yes]
    switches back to {!fingerprint_legacy}. *)

val fingerprint_legacy : Kit_gen.Testcase.t -> string
(** The pre-FNV scheme: MD5 of the marshalled testcase. *)

(** {2 Checkpoints}

    Kind ["serve-tenant-v3"] in the validated KITCKPT1 container: the
    spec, the whole fingerprint cache, and the summary once finished. A
    resumed daemon rebuilds the tenant from this file; re-activation
    replays the cache, so checkpointed representatives are never
    re-executed. Files written under the pre-scheduler
    ["serve-tenant-v2"] kind load through {!V2} (origins and
    schedule-search fields filled with sequential-only defaults), and
    pre-packing ["serve-tenant"] files through {!Legacy} (packed trace
    nodes rebuilt, cache re-keyed with {!fingerprint}). *)

val ckpt_kind : string
val ckpt_kind_v2 : string
val ckpt_kind_legacy : string

(** The spec layout every pre-v3 checkpoint embeds (before
    [sp_schedules]); migrated as sequential-only. *)
type legacy_spec = {
  lsp_name : string;
  lsp_seed : int;
  lsp_corpus_size : int;
  lsp_strategy : Kit_gen.Cluster.strategy;
  lsp_weight : int;
  lsp_max_inflight : int;
  lsp_diagnose : bool;
}

val spec_of_legacy : legacy_spec -> Proto.spec

(** The exact Marshal layouts a pre-packing daemon checkpointed, and
    their conversions — exposed so the compat test can fabricate
    old-format files. *)
module Legacy : sig
  type diff = {
    ld_path : string list;
    ld_left : Kit_trace.Ast.Legacy.ast;
    ld_right : Kit_trace.Ast.Legacy.ast;
  }

  type report = {
    lr_testcase : Kit_gen.Testcase.t;
    lr_sender : Kit_abi.Program.t;
    lr_receiver : Kit_abi.Program.t;
    lr_interfered : int list;
    lr_diffs : diff list;
    lr_trace_a : Kit_trace.Ast.Legacy.ast;
    lr_trace_b : Kit_trace.Ast.Legacy.ast;
  }

  type case_result = {
    lc_tc : Kit_gen.Testcase.t;
    lc_funnel : Kit_detect.Filter.funnel;
    lc_report : report option;
    lc_crashes : Kit_exec.Supervisor.crash list;
  }

  type ckpt = {
    lk_spec : legacy_spec;
    lk_completed : (string * (case_result * int)) list;
    lk_finished : bool;
    lk_summary : string option;
  }

  val case_result_of : case_result -> Kit_core.Campaign.case_result
end

(** The exact Marshal layouts a v2 (pre-scheduler) daemon checkpointed,
    and their conversions — exposed so the compat test can fabricate
    v2-format files. *)
module V2 : sig
  type report = {
    v2r_testcase : Kit_gen.Testcase.t;
    v2r_sender : Kit_abi.Program.t;
    v2r_receiver : Kit_abi.Program.t;
    v2r_interfered : int list;
    v2r_diffs : Kit_trace.Compare.diff list;
    v2r_trace_a : Kit_trace.Ast.t;
    v2r_trace_b : Kit_trace.Ast.t;
  }

  type case_result = {
    v2c_tc : Kit_gen.Testcase.t;
    v2c_funnel : Kit_detect.Filter.funnel;
    v2c_report : report option;
    v2c_crashes : Kit_exec.Supervisor.crash list;
  }

  type ckpt = {
    v2k_spec : legacy_spec;
    v2k_completed : (string * (case_result * int)) list;
    v2k_finished : bool;
    v2k_summary : string option;
  }

  val case_result_of : case_result -> Kit_core.Campaign.case_result
end

val ckpt_path : string -> t -> string
(** [ckpt_path state_dir t] — [state_dir/tenant-<name>.ckpt]. *)

val checkpoint_due : t -> every:int -> bool
(** [every] or more completions since the last checkpoint. *)

val save_checkpoint : string -> t -> unit

val of_checkpoint : id:int -> string -> (t, string) result
(** Rebuild from a checkpoint file: finished tenants come back
    [Finished] with their stored summary, unfinished ones [Pending]
    with the cache primed. *)
