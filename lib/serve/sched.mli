(** The [kit serve] scheduler: a multi-tenant campaign daemon over one
    shared {!Pool}.

    A single-threaded event loop owns the pool and every {!Tenant}.
    Each {!step}: activate pending tenants (up to [sc_max_active]),
    dispatch idle worker slots by deficit round robin, poll the pool,
    apply its events (completions, worker deaths with two-strike
    quarantine and resharding), finish drained tenants (diagnosis +
    aggregation + checkpoint) and refresh the [serve.*] gauges.

    {b Fair sharing.} Deficit round robin: every refill grants each
    active tenant [weight] credits (capped at 8x weight), a dispatch
    spends one, and when all credit is stranded on tenants that cannot
    run (in-flight cap, momentarily no claimable work) the first
    runnable tenant in submission order {e steals} — its deficit goes
    negative and repays over later refills. Under contention,
    executed-case shares converge to the weight vector
    (property-tested); without contention the pool never idles.

    {b Crash safety.} Tenants checkpoint their fingerprint-keyed result
    caches every [sc_checkpoint_every] completions (kind
    ["serve-tenant"], KITCKPT1). A SIGKILLed daemon restarted with
    {!resume} rebuilds every tenant from [sc_state_dir] and replays
    cached results at activation — no checkpointed representative is
    re-executed, and finished tenants keep serving their summaries.

    {b Equivalence.} Per-case results are schedule-independent and
    merged in representative order, so each tenant's report is
    byte-identical to a solo [kit campaign] of the same spec, whatever
    the interleaving, kill schedule or resume point (property-tested;
    enforced end-to-end by the CI serve gate). *)

type config = {
  sc_pool : Pool.config;
  sc_max_active : int;         (** concurrently executing tenants *)
  sc_max_pending : int;        (** admission bound on waiting tenants *)
  sc_state_dir : string option;    (** tenant checkpoints live here *)
  sc_checkpoint_every : int;   (** completions between checkpoints *)
}

val default_config : config
(** Default pool, 4 active, 16 pending, no state dir, checkpoint
    every 16. *)

exception Dead_pool
(** Every worker slot is dead (respawn budgets spent) with tenant work
    remaining. Raised by {!step} {e after} checkpointing every tenant,
    so a restarted daemon resumes. *)

type t

val create : ?obs:Kit_obs.Obs.t -> config -> t
(** Spawn the pool and (if configured) create the state directory.
    [obs] receives the [serve.*] counters/gauges, per-submission
    ["serve.submission"] spans and the pool's own [pool.*] metrics. *)

val shutdown : t -> unit
(** Shut the pool down. Does not checkpoint — {!serve} and
    {!request}[ Shutdown] do that. *)

val resume : t -> (string * string) list
(** Rebuild tenants from every [tenant-*.ckpt] in the state directory
    (sorted by file name). Returns [(name, state)] per restored tenant,
    for logging; unreadable checkpoints are reported, not fatal. *)

val request : t -> Proto.request -> Proto.reply
(** The daemon's request handler, exposed directly so in-process tests
    drive the full protocol without sockets. [Submit] admits (name
    validity, uniqueness, pending bound), [Extend] grows a finished
    tenant, [Cancel] retires, [Results] returns the deterministic
    summary once finished ([Not_ready] before), [Shutdown] checkpoints
    everything. *)

val step : ?extra:Unix.file_descr list -> t -> timeout:float ->
  Unix.file_descr list
(** One event-loop turn; returns whichever [extra] descriptors are
    readable (the daemon passes its listening socket).
    @raise Dead_pool as documented above. *)

val drain : t -> unit
(** Step until no tenant is pending or active — the in-process
    equivalent of letting the daemon idle. *)

val busy : t -> bool

val tenants : t -> Tenant.t list
(** In submission order. *)

val find_name : t -> string -> Tenant.t option

val serve : ?log:(string -> unit) -> t -> socket:string -> unit
(** The daemon: listen on the Unix-domain socket, one request per
    connection, stepping the scheduler between accepts. Returns after
    [Shutdown] or SIGTERM/SIGINT, with every tenant checkpointed. An
    oversized request frame ({!Wire.Oversized}) is answered with a
    clean [Rejected] reply. *)
