(** The crash-isolated process pool: the paper's server/client mode
    (§5.2) with real Unix processes.

    {!execute} spawns [procs] worker processes — re-executions of the
    current binary (OCaml 5 forbids [Unix.fork] in any process that has
    ever spawned a domain), bootstrapped over the job pipe and entered
    through {!worker_entry} — each booting its own
    supervised execution environment, and drives them over
    length-prefixed {!Wire} pipes from a {!Kit_core.Jobqueue} of cluster
    representatives. The parent detects worker death via [waitpid]
    (exit code or signal) and pipe EOF, detects hangs via per-job
    wall-clock heartbeat deadlines (an expired worker is [SIGKILL]ed),
    respawns crashed workers with bounded retries and exponential
    backoff, reshards a dead worker's unfinished queue over the
    survivors, and quarantines a case that kills two workers in a row as
    a first-class [Worker_lost] crash report instead of looping
    respawns. Completed shards checkpoint on the validated KITCKPT1
    container, so a killed parent resumes without re-executing finished
    work.

    Per-case results are schedule-independent, so the merged
    funnel/report/quarantine fingerprint equals the sequential
    {!Kit_core.Distrib} run for any procs count and any kill schedule
    (property-tested). *)

module Campaign := Kit_core.Campaign

val worker_entry : unit -> unit
(** The worker trampoline. Every executable that calls {!execute} (or
    installs {!executor}) MUST call this first thing in [main], before
    argument parsing: when the process was spawned as a pool worker
    (the [KIT_POOL_WORKER] environment variable is set), it runs the
    worker loop over the inherited pipe descriptors the variable names
    and never returns ([Unix._exit]); otherwise it is a no-op. *)

(** Deliberate worker misbehaviour, for tests and the CI crash-isolation
    gate. Sabotage acts inside the worker — the parent only ever sees
    its observable effects (death, silence). *)
type sabotage = {
  kill_after : (int * int) list;
      (** [(slot, n)]: worker [slot] SIGKILLs itself on receiving its
          next job once it has completed [n] cases — from the parent's
          view, death mid-case. One-shot: the slot's respawned worker is
          not re-sabotaged. *)
  hang_after : (int * int) list;
      (** [(slot, n)]: as [kill_after], but the worker sleeps forever —
          only the heartbeat can catch it. One-shot per slot. *)
  poison : int list;
      (** case ids whose receipt SIGKILLs {e any} worker — the
          twice-lethal quarantine path *)
}

val no_sabotage : sabotage

type config = {
  procs : int;                       (** worker processes (at least 1) *)
  heartbeat_s : float;
      (** per-job wall-clock deadline; an overdue worker is killed *)
  max_respawns : int;                (** respawn budget per worker slot *)
  backoff_base_ms : float;           (** respawn backoff base, doubling *)
  checkpoint_path : string option;
      (** checkpoint completed shards here (and on abort) *)
  checkpoint_every : int;            (** completions between checkpoints *)
  sabotage : sabotage;
}

val default_config : config
(** 4 procs, 30 s heartbeat, 3 respawns, 5 ms backoff, no checkpointing,
    no sabotage. *)

type stats = {
  spawns : int;                      (** worker processes ever forked *)
  deaths : int;                      (** exits, signals and hang kills *)
  respawns : int;
  resharded : int;                   (** cases redealt from dead workers *)
  heartbeat_timeouts : int;
  poisoned : int;                    (** cases quarantined as twice-lethal *)
  resumed : int;                     (** cases restored from checkpoint *)
  stolen : int;                      (** cases work-stolen by idle workers *)
}

type outcome = {
  results : Campaign.case_result list;
      (** one per cluster representative, in representative order;
          pool-quarantined cases appear as [Worker_lost] crash results *)
  executions : int;                  (** summed over workers and resumes *)
  stats : stats;
}

exception
  Aborted of {
    unfinished : (int * Kit_gen.Testcase.t) list;
        (** the queue nobody could absorb, in case order *)
    stats : stats;
  }
(** Every worker slot is dead with its respawn budget spent and work
    still queued. If a checkpoint path is configured the completed
    shards were saved before raising, so a fresh pool resumes. *)

val execute :
  ?obs:Kit_obs.Obs.t ->
  ?resume:bool ->
  config ->
  Campaign.options ->
  Kit_abi.Program.t array ->
  Kit_gen.Cluster.result ->
  outcome
(** Run every cluster representative of [generation] on the pool.
    [resume] (default [false]) preloads completed shards from
    [config.checkpoint_path] first — ignored when the file is missing;
    a corrupt file aborts with the typed checkpoint error message.
    [obs] receives the [pool.*] counters and per-worker spans (default:
    a private bundle).
    @raise Aborted when no worker can absorb the remaining queue. *)

val executor :
  ?obs:Kit_obs.Obs.t -> ?resume:bool -> config -> Campaign.executor
(** Package {!execute} as a campaign execute-phase driver for
    {!Kit_core.Campaign.run_with_executor} — the engine behind
    [kit campaign --procs N]. *)
