(** The crash-isolated process pool: the paper's server/client mode
    (§5.2) with real Unix processes.

    The pool is split in two layers. The {e core} ({!create} /
    {!register} / {!dispatch_job} / {!poll} / {!shutdown}) is persistent
    and tenant-agnostic: it spawns [procs] worker processes —
    re-executions of the current binary (OCaml 5 forbids [Unix.fork] in
    any process that has ever spawned a domain), bootstrapped over the
    job pipe and entered through {!worker_entry} — keeps one supervised
    execution environment per registered campaign context inside each
    worker, detects worker death via [waitpid] (exit code or signal) and
    pipe EOF, detects hangs via per-job wall-clock heartbeat deadlines
    (an expired worker is [SIGKILL]ed), respawns crashed workers with
    bounded retries and exponential backoff (re-sending every registered
    context), and reports everything as {!event}s. Scheduling policy —
    claim order, strikes, quarantine, resharding, checkpointing — lives
    in the drivers: {!execute}, the single-campaign driver behind
    [kit pool] and [kit campaign --procs], and the multi-tenant
    scheduler ([Kit_serve.Sched] behind [kit serve]), both feeding the
    pool from {!Kit_core.Jobqueue}s.

    {!execute} preserves the full single-campaign contract: a dead
    worker's unfinished queue is resharded over the survivors, a case
    that kills two workers in a row is quarantined as a first-class
    [Worker_lost] crash report instead of looping respawns, completed
    shards checkpoint on the validated KITCKPT1 container so a killed
    parent resumes without re-executing finished work, and {!Aborted}
    is raised when every worker is gone.

    Per-case results are schedule-independent, so the merged
    funnel/report/quarantine fingerprint equals the sequential
    {!Kit_core.Distrib} run for any procs count and any kill schedule
    (property-tested). *)

module Campaign := Kit_core.Campaign

val worker_entry : unit -> unit
(** The worker trampoline. Every executable that calls {!execute} (or
    installs {!executor}) MUST call this first thing in [main], before
    argument parsing: when the process was spawned as a pool worker
    (the [KIT_POOL_WORKER] environment variable is set), it runs the
    worker loop over the inherited pipe descriptors the variable names
    and never returns ([Unix._exit]); otherwise it is a no-op. *)

(** Deliberate worker misbehaviour, for tests and the CI crash-isolation
    gate. Sabotage acts inside the worker — the parent only ever sees
    its observable effects (death, silence). *)
type sabotage = {
  kill_after : (int * int) list;
      (** [(slot, n)]: worker [slot] SIGKILLs itself on receiving its
          next job once it has completed [n] cases — from the parent's
          view, death mid-case. One-shot: the slot's respawned worker is
          not re-sabotaged. *)
  hang_after : (int * int) list;
      (** [(slot, n)]: as [kill_after], but the worker sleeps forever —
          only the heartbeat can catch it. One-shot per slot. *)
  poison : int list;
      (** job ids whose receipt SIGKILLs {e any} worker — the
          twice-lethal quarantine path *)
}

val no_sabotage : sabotage

type config = {
  procs : int;                       (** worker processes (at least 1) *)
  heartbeat_s : float;
      (** per-job wall-clock deadline; an overdue worker is killed *)
  max_respawns : int;                (** respawn budget per worker slot *)
  backoff_base_ms : float;           (** respawn backoff base, doubling *)
  checkpoint_path : string option;
      (** {!execute} only: checkpoint completed shards here *)
  checkpoint_every : int;            (** completions between checkpoints *)
  sabotage : sabotage;
}

val default_config : config
(** 4 procs, 30 s heartbeat, 3 respawns, 5 ms backoff, no checkpointing,
    no sabotage. *)

(** {2 The persistent pool core} *)

type t
(** A live pool of worker processes. Single-threaded: all calls from
    the owning (scheduler) process. *)

(** What the pool observed since the last {!poll}. *)
type event =
  | Job_done of {
      ev_slot : int;
      ev_tenant : int;
      ev_id : int;
      ev_result : Campaign.case_result;
      ev_execs : int;                (** supervisor executions delta *)
    }
  | Worker_lost of {
      ev_slot : int;
      ev_why : string;
      ev_in_flight : (int * int) option;
          (** [(tenant, id)] that died with the worker — buffered [Done]
              frames are drained first, so a case the worker finished
              before dying is never blamed *)
      ev_respawned : bool;
          (** the slot was respawned (budget remained) and is idle *)
    }

val create : ?obs:Kit_obs.Obs.t -> config -> t
(** Spawn the workers (SIGPIPE is ignored for the pool's lifetime —
    restored by {!shutdown}). [obs] receives [pool.*] counters and
    per-worker spans (default: a private bundle). *)

val register :
  t -> tenant:int -> label:string -> Campaign.options ->
  Kit_abi.Program.t array -> unit
(** Install (or replace) a campaign context under [tenant] in every
    worker: each boots a supervised environment for it. Respawned
    workers automatically receive every registered context. [label] is
    stamped as a ["tenant"] trace attr on the worker's executions when
    non-empty. *)

val retire : t -> tenant:int -> unit
(** Drop a tenant's context (and its workers' environments). In-flight
    jobs of the tenant still produce {!event.Job_done}. *)

val idle_slots : t -> int list
(** Alive workers with no job in flight, in slot order. *)

val alive_slots : t -> int list

val live_count : t -> int

val in_flight : t -> (int * (int * int)) list
(** [(slot, (tenant, id))] for every job currently on a worker. *)

val dispatch_job : t -> slot:int -> tenant:int -> id:int ->
  Kit_gen.Testcase.t -> unit
(** Send one job to an idle worker and start its heartbeat deadline.
    @raise Invalid_argument if the slot is dead or busy. *)

val poll : ?extra:Unix.file_descr list -> t -> timeout:float ->
  event list * Unix.file_descr list
(** One event-loop turn: heartbeat-kill overdue workers, reap exits,
    select on worker result pipes plus [extra] descriptors (capped at
    [timeout] seconds, shortened to the earliest heartbeat deadline),
    and return the events in arrival order plus whichever [extra]
    descriptors are readable. Buffered events make the select
    non-blocking. *)

val shutdown : t -> unit
(** Quit, reap and close every live worker; restore SIGPIPE. *)

type core_stats = {
  c_spawns : int;
  c_deaths : int;
  c_respawns : int;
  c_heartbeat_timeouts : int;
}

val core_stats : t -> core_stats

(** {2 The single-campaign driver} *)

type stats = {
  spawns : int;                      (** worker processes ever forked *)
  deaths : int;                      (** exits, signals and hang kills *)
  respawns : int;
  resharded : int;                   (** cases redealt from dead workers *)
  heartbeat_timeouts : int;
  poisoned : int;                    (** cases quarantined as twice-lethal *)
  resumed : int;                     (** cases restored from checkpoint *)
  stolen : int;                      (** cases work-stolen by idle workers *)
}

type outcome = {
  results : Campaign.case_result list;
      (** one per cluster representative, in representative order;
          pool-quarantined cases appear as [Worker_lost] crash results *)
  executions : int;                  (** summed over workers and resumes *)
  stats : stats;
}

exception
  Aborted of {
    unfinished : (int * Kit_gen.Testcase.t) list;
        (** the queue nobody could absorb, in case order *)
    stats : stats;
  }
(** Every worker slot is dead with its respawn budget spent and work
    still queued. If a checkpoint path is configured the completed
    shards were saved before raising, so a fresh pool resumes. *)

val execute :
  ?obs:Kit_obs.Obs.t ->
  ?resume:bool ->
  config ->
  Campaign.options ->
  Kit_abi.Program.t array ->
  Kit_gen.Cluster.result ->
  outcome
(** Run every cluster representative of [generation] on a fresh pool.
    [resume] (default [false]) preloads completed shards from
    [config.checkpoint_path] first — ignored when the file is missing;
    a corrupt file aborts with the typed checkpoint error message.
    @raise Aborted when no worker can absorb the remaining queue. *)

val executor :
  ?obs:Kit_obs.Obs.t -> ?resume:bool -> ?on_stats:(stats -> unit) ->
  config -> Campaign.executor
(** Package {!execute} as a campaign execute-phase driver for
    {!Kit_core.Campaign.run_with_executor} — the engine behind
    [kit campaign --procs N]. [on_stats] receives the pool statistics
    when the execute phase completes, so callers that only see the
    assembled campaign (the CLI) can still report spawns, deaths,
    reshards and — critically for resumed runs — the restored-shard
    count. *)
