(* Length-prefixed Marshal frames over pipes. See wire.mli. *)

let max_frame = 16 * 1024 * 1024

exception Oversized of { announced : int; limit : int }

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n = Unix.write fd buf ofs len in
    write_all fd buf (ofs + n) (len - n)
  end

let send ?(flags = [ Marshal.No_sharing ]) fd v =
  let payload = Marshal.to_bytes v flags in
  let len = Bytes.length payload in
  let frame = Bytes.create (8 + len) in
  Bytes.set_int64_be frame 0 (Int64.of_int len);
  Bytes.blit payload 0 frame 8 len;
  (* One write_all for header+payload: a frame is either fully queued or
     the exception surfaces before any payload byte is torn off. *)
  write_all fd frame 0 (8 + len)

(* Read exactly [len] bytes; [None] on EOF before the frame completes. *)
let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go ofs =
    if ofs = len then Some buf
    else
      match Unix.read fd buf ofs (len - ofs) with
      | 0 -> None
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

let recv fd =
  match read_exactly fd 8 with
  | None -> None
  | Some header -> (
    let len = Int64.to_int (Bytes.get_int64_be header 0) in
    (* A negative length is stream garbage; a well-formed but huge
       announcement is a distinct, recoverable condition — the serve
       protocol rejects it with a clean reply instead of hanging up. *)
    if len > max_frame then raise (Oversized { announced = len; limit = max_frame })
    else if len < 0 then None
    else
      match read_exactly fd len with
      | None -> None
      | Some payload -> (
        match Marshal.from_bytes payload 0 with
        | v -> Some v
        | exception Failure _ -> None))
