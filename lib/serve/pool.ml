(* The crash-isolated process pool. See pool.mli for the contract.

   Topology: the parent spawns [procs] workers by re-executing its own
   image ([Sys.executable_name] with [KIT_POOL_WORKER] in the
   environment; {!worker_entry} is the trampoline). [Unix.fork] is not
   an option: OCaml 5 forbids it for the lifetime of any process that
   has ever spawned a domain, and the pool must coexist with the
   domain-distributed campaign paths in one executable. Each worker owns
   a job pipe (parent writes) and a result pipe (worker writes), both
   carrying length-prefixed Marshal frames (Wire); the first job-pipe
   frame is a [Hello] with the worker's slot and sabotage, followed by
   one [Context] frame per registered tenant — spawned workers share no
   memory, so campaign inputs travel the wire ([Marshal.Closures],
   sound across the identical image).

   The pool itself is tenant-agnostic plumbing: it spawns, feeds,
   reaps, heartbeat-kills and respawns workers, and reports what
   happened as {!event}s. Policy — which job runs next, strikes,
   quarantine, resharding, checkpointing — lives in the drivers:
   {!execute} (the single-campaign driver behind [kit pool] and
   [kit campaign --procs]) and the multi-tenant scheduler
   ({!Kit_serve.Sched}), both claiming work from {!Kit_core.Jobqueue}s.

   Fd hygiene is what makes death detection sound: the parent-side pipe
   ends are close-on-exec, and the child-side ends — advertised to the
   worker by number through the environment variable — are closed by
   the parent immediately after each (sequential) spawn, so no later
   sibling can inherit them. The wire deliberately does NOT ride on the
   worker's stdin/stdout: module initialisers of the re-executed binary
   run before {!worker_entry} and are free to print (qcheck's seed
   banner, for one), and any such bytes would desynchronise the framed
   stream. So a worker's result-pipe write end lives in exactly one
   process, and its death turns into EOF on the parent's read end the
   moment the kernel reaps it. waitpid gives the why (exit code or
   signal); per-job wall-clock deadlines catch the one failure mode
   with no signal at all, the hang.

   Workers never touch the parent's state: they exit only via
   [Unix._exit] (0 on Quit/EOF, 71 on Supervisor.Gave_up, 70 on any
   other escaped exception), so an exception inside a worker is crash
   isolation, not a half-initialised replay of the parent. *)

module Program = Kit_abi.Program
module Testcase = Kit_gen.Testcase
module Cluster = Kit_gen.Cluster
module Supervisor = Kit_exec.Supervisor
module Campaign = Kit_core.Campaign
module Jobqueue = Kit_core.Jobqueue
module Checkpoint = Kit_core.Checkpoint
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type sabotage = {
  kill_after : (int * int) list;
  hang_after : (int * int) list;
  poison : int list;
}

let no_sabotage = { kill_after = []; hang_after = []; poison = [] }

type config = {
  procs : int;
  heartbeat_s : float;
  max_respawns : int;
  backoff_base_ms : float;
  checkpoint_path : string option;
  checkpoint_every : int;
  sabotage : sabotage;
}

let default_config =
  { procs = 4; heartbeat_s = 30.0; max_respawns = 3; backoff_base_ms = 5.0;
    checkpoint_path = None; checkpoint_every = 16; sabotage = no_sabotage }

type stats = {
  spawns : int;
  deaths : int;
  respawns : int;
  resharded : int;
  heartbeat_timeouts : int;
  poisoned : int;
  resumed : int;
  stolen : int;
}

type outcome = {
  results : Campaign.case_result list;
  executions : int;
  stats : stats;
}

exception
  Aborted of {
    unfinished : (int * Testcase.t) list;
    stats : stats;
  }

(* -- wire messages ------------------------------------------------------- *)

type hello = Hello of { h_slot : int; h_sab : sabotage }

type job_msg =
  | Context of {
      c_tenant : int;
      c_label : string;
      c_options : Campaign.options;
      c_corpus : Program.t array;
    }
  | Job of { j_tenant : int; j_id : int; j_tc : Testcase.t }
  | Retire of int
  | Quit

type res_msg =
  | Done of {
      d_tenant : int;
      d_id : int;
      d_result : Campaign.case_result;
      d_execs : int;                     (* execs delta *)
    }

let worker_env_var = "KIT_POOL_WORKER"

(* -- worker (child) side -------------------------------------------------- *)

let kill_self () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* SIGKILL is not deliverable-to-self-synchronously on every kernel
     before the next scheduling point; never fall through into the
     parent's code path. *)
  Unix._exit 70

(* One supervised execution environment per registered tenant: each
   tenant is its own campaign with its own options, corpus and
   supervisor, so their fault schedules and quarantine counters never
   bleed into each other. Sabotage counts completed cases across
   tenants — it models the worker process dying, not a campaign. *)
type child_env = {
  e_label : string;
  e_options : Campaign.options;
  e_corpus : Program.t array;
  e_sup : Supervisor.t;
}

let child_main ~slot ~(sab : sabotage) rx tx =
  let code = ref 0 in
  (try
     let obs = Obs.create () in
     let envs : (int, child_env) Hashtbl.t = Hashtbl.create 4 in
     let kill_at = List.assoc_opt slot sab.kill_after in
     let hang_at = List.assoc_opt slot sab.hang_after in
     let completed = ref 0 in
     let rec loop () =
       match (Wire.recv rx : job_msg option) with
       | None | Some Quit -> ()
       | Some (Context { c_tenant; c_label; c_options; c_corpus }) ->
         Hashtbl.replace envs c_tenant
           { e_label = c_label; e_options = c_options; e_corpus = c_corpus;
             e_sup = Campaign.supervisor ~obs c_options };
         loop ()
       | Some (Retire tenant) ->
         Hashtbl.remove envs tenant;
         loop ()
       | Some (Job { j_tenant; j_id; j_tc }) ->
         (match kill_at with
          | Some n when !completed >= n -> kill_self ()
          | Some _ | None -> ());
         (match hang_at with
          | Some n when !completed >= n ->
            while true do Unix.sleepf 3600.0 done
          | Some _ | None -> ());
         if List.mem j_id sab.poison then kill_self ();
         (match Hashtbl.find_opt envs j_tenant with
          | None ->
            (* A job for a tenant we never heard of is a protocol bug;
               die loudly rather than fabricate a result. *)
            Unix._exit 70
          | Some env ->
            let e0 = Supervisor.executions env.e_sup in
            let attrs =
              [ ("case", string_of_int j_id); ("proc", string_of_int slot) ]
              @ (if env.e_label = "" then []
                 else [ ("tenant", env.e_label) ])
            in
            let r =
              Campaign.exec_case ~attrs env.e_options env.e_corpus env.e_sup
                j_tc
            in
            Wire.send tx
              (Done
                 { d_tenant = j_tenant; d_id = j_id; d_result = r;
                   d_execs = Supervisor.executions env.e_sup - e0 });
            incr completed;
            loop ())
     in
     loop ()
   with
   | Supervisor.Gave_up _ -> code := 71
   | Wire.Oversized _ -> code := 70
   | _ -> code := 70);
  Unix._exit !code

(* On Unix a [file_descr] is the integer, which is what lets the pipe
   ends cross the exec boundary as text in the environment. *)
let fd_of_int (n : int) : Unix.file_descr = Obj.magic n
let int_of_fd (fd : Unix.file_descr) : int = Obj.magic fd

let worker_entry () =
  match Sys.getenv_opt worker_env_var with
  | None -> ()
  | Some spec ->
    let rx, tx =
      match String.split_on_char ':' spec with
      | [ jr; rw ] -> (
        match (int_of_string_opt jr, int_of_string_opt rw) with
        | Some jr, Some rw -> (fd_of_int jr, fd_of_int rw)
        | _ -> Unix._exit 70)
      | _ -> Unix._exit 70
    in
    (match (Wire.recv rx : hello option) with
     | Some (Hello { h_slot; h_sab }) -> child_main ~slot:h_slot ~sab:h_sab rx tx
     | None | (exception Wire.Oversized _) -> ());
    (* Only reachable on a missing or undecodable Hello. *)
    Unix._exit 70

(* -- parent side: the persistent pool core -------------------------------- *)

type worker = {
  slot : int;
  mutable pid : int;
  mutable tx : Unix.file_descr;          (* job pipe, write end *)
  mutable rx : Unix.file_descr;          (* result pipe, read end *)
  mutable alive : bool;
  mutable job : (int * int * float) option; (* tenant, id, deadline *)
  mutable respawns_left : int;
  mutable backoff_s : float;
  mutable span : Tracer.span option;
}

type event =
  | Job_done of {
      ev_slot : int;
      ev_tenant : int;
      ev_id : int;
      ev_result : Campaign.case_result;
      ev_execs : int;
    }
  | Worker_lost of {
      ev_slot : int;
      ev_why : string;
      ev_in_flight : (int * int) option; (* tenant, id — already drained *)
      ev_respawned : bool;
    }

type t = {
  workers : worker array;
  cfg : config;
  obs : Obs.t;
  (* Registered campaign contexts, re-sent to every respawned worker so
     an incarnation can pick up any tenant's jobs. *)
  contexts : (int, string * Campaign.options * Program.t array) Hashtbl.t;
  mutable pending : event list;          (* reverse order *)
  mutable spawns : int;
  mutable deaths : int;
  mutable respawns : int;
  mutable hb_timeouts : int;
  mutable sigpipe_prev : Sys.signal_behavior option;
}

let pc name t = Metrics.counter ~always:true t.obs.Obs.metrics ("pool." ^ name)

let status_to_string = function
  | Unix.WEXITED 71 -> "worker gave up (permanent infrastructure fault)"
  | Unix.WEXITED n -> Printf.sprintf "worker exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

let send_context w ~tenant ~label ~options ~corpus =
  (* The context frame replaces the address space a fork would have
     copied. [Marshal.Closures] carries the spec's checker closures;
     the obs bundle is unmarshalable and private anyway — the worker
     builds its own. *)
  try
    Wire.send ~flags:[ Marshal.Closures ] w.tx
      (Context
         { c_tenant = tenant; c_label = label;
           c_options = { options with Campaign.obs = None };
           c_corpus = corpus })
  with Unix.Unix_error _ | Sys_error _ -> ()

let spawn t w =
  (* Kill/hang sabotage is a one-shot event schedule: the slot's entry
     fires in the first incarnation only, so a respawned worker is not
     doomed to die every N cases forever. (Poison deliberately re-fires
     — that is the twice-lethal path.) *)
  let sab =
    if w.pid = -1 then t.cfg.sabotage
    else
      { t.cfg.sabotage with
        kill_after =
          List.filter (fun (s, _) -> s <> w.slot) t.cfg.sabotage.kill_after;
        hang_after =
          List.filter (fun (s, _) -> s <> w.slot) t.cfg.sabotage.hang_after }
  in
  (* The parent-side ends are close-on-exec; the child-side ends cross
     the exec by number via the environment and are closed here right
     after the (sequential) spawn — so no sibling spawned later can
     inherit this worker's result-pipe write end, and EOF detection
     stays sound. *)
  let jr, jw = Unix.pipe () in
  let rr, rw = Unix.pipe () in
  Unix.set_close_on_exec jw;
  Unix.set_close_on_exec rr;
  let env =
    Array.append
      (Array.to_seq (Unix.environment ())
      |> Seq.filter (fun kv ->
             not (String.length kv > String.length worker_env_var
                  && String.sub kv 0 (String.length worker_env_var + 1)
                     = worker_env_var ^ "="))
      |> Array.of_seq)
      [| Printf.sprintf "%s=%d:%d" worker_env_var (int_of_fd jr)
           (int_of_fd rw) |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.close jr;
  Unix.close rw;
  w.pid <- pid;
  w.tx <- jw;
  w.rx <- rr;
  w.alive <- true;
  w.job <- None;
  (try Wire.send jw (Hello { h_slot = w.slot; h_sab = sab })
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Every registered tenant context, in tenant order: a respawned
     worker can serve any tenant its predecessor could. *)
  Hashtbl.fold (fun tenant ctx acc -> (tenant, ctx) :: acc) t.contexts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (tenant, (label, options, corpus)) ->
         send_context w ~tenant ~label ~options ~corpus);
  w.span <-
    Some
      (Tracer.span t.obs.Obs.tracer
         ~attrs:[ ("proc", string_of_int w.slot); ("pid", string_of_int pid) ]
         "pool.worker");
  t.spawns <- t.spawns + 1;
  Metrics.inc (pc "spawns" t)

let create ?obs cfg =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let procs = max 1 cfg.procs in
  let workers =
    Array.init procs (fun slot ->
        { slot; pid = -1; tx = Unix.stdin; rx = Unix.stdin; alive = false;
          job = None; respawns_left = max 0 cfg.max_respawns;
          backoff_s = Float.max 0.0 cfg.backoff_base_ms /. 1000.0;
          span = None })
  in
  (* The parent writes into job pipes of workers that may already be
     dead; without this a single EPIPE would kill the whole pool. *)
  let sigpipe_prev =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let t =
    { workers; cfg; obs; contexts = Hashtbl.create 4; pending = [];
      spawns = 0; deaths = 0; respawns = 0; hb_timeouts = 0; sigpipe_prev }
  in
  Array.iter (fun w -> spawn t w) workers;
  t

let register t ~tenant ~label options corpus =
  Hashtbl.replace t.contexts tenant (label, options, corpus);
  Array.iter
    (fun w -> if w.alive then send_context w ~tenant ~label ~options ~corpus)
    t.workers

let retire t ~tenant =
  Hashtbl.remove t.contexts tenant;
  Array.iter
    (fun w ->
      if w.alive then
        try Wire.send w.tx (Retire tenant)
        with Unix.Unix_error _ | Sys_error _ -> ())
    t.workers

let alive_slots t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if w.alive then Some w.slot else None)

let idle_slots t =
  Array.to_list t.workers
  |> List.filter_map (fun w ->
         if w.alive && w.job = None then Some w.slot else None)

let live_count t =
  Array.fold_left (fun acc w -> if w.alive then acc + 1 else acc) 0 t.workers

let in_flight t =
  Array.to_list t.workers
  |> List.filter_map (fun w ->
         match w.job with
         | Some (tenant, id, _) when w.alive -> Some (w.slot, (tenant, id))
         | _ -> None)

let dispatch_job t ~slot ~tenant ~id tc =
  let w = t.workers.(slot) in
  if not (w.alive && w.job = None) then
    invalid_arg "Pool.dispatch_job: slot is dead or busy";
  w.job <- Some (tenant, id, Unix.gettimeofday () +. t.cfg.heartbeat_s);
  (* A send to a dying worker raises EPIPE; the death is picked up
     through EOF/waitpid and the job resharded with the rest. *)
  try Wire.send w.tx (Job { j_tenant = tenant; j_id = id; j_tc = tc })
  with Unix.Unix_error _ | Sys_error _ -> ()

let push t ev = t.pending <- ev :: t.pending

let record_done t (w : worker) (Done { d_tenant; d_id; d_result; d_execs }) =
  (match w.job with
   | Some (jt, jid, _) when jt = d_tenant && jid = d_id -> w.job <- None
   | _ -> ());
  push t
    (Job_done
       { ev_slot = w.slot; ev_tenant = d_tenant; ev_id = d_id;
         ev_result = d_result; ev_execs = d_execs })

(* A worker died (or was killed): drain its buffered results, close its
   pipes and respawn if budget remains — then report what was in flight
   so the driver can count a strike and reshard. The kernel closed the
   dead worker's result-pipe write end, so the drain terminates at
   EOF. *)
let handle_death t (w : worker) ~why =
  let rec drain () =
    match (Wire.recv w.rx : res_msg option) with
    | Some d ->
      record_done t w d;
      drain ()
    | None -> ()
    | exception Wire.Oversized _ -> ()
  in
  drain ();
  (try Unix.close w.rx with Unix.Unix_error _ -> ());
  (try Unix.close w.tx with Unix.Unix_error _ -> ());
  Option.iter (Tracer.finish t.obs.Obs.tracer) w.span;
  w.span <- None;
  w.alive <- false;
  t.deaths <- t.deaths + 1;
  Metrics.inc (pc "deaths" t);
  Tracer.instant t.obs.Obs.tracer
    ~attrs:[ ("proc", string_of_int w.slot); ("why", why) ]
    "pool.death";
  let in_flight = Option.map (fun (tn, id, _) -> (tn, id)) w.job in
  w.job <- None;
  let respawned =
    if w.respawns_left > 0 then begin
      w.respawns_left <- w.respawns_left - 1;
      Unix.sleepf w.backoff_s;
      w.backoff_s <- w.backoff_s *. 2.0;
      t.respawns <- t.respawns + 1;
      Metrics.inc (pc "respawns" t);
      spawn t w;
      true
    end
    else false
  in
  push t
    (Worker_lost
       { ev_slot = w.slot; ev_why = why; ev_in_flight = in_flight;
         ev_respawned = respawned })

let reap t (w : worker) =
  if w.alive then
    match Unix.waitpid [ Unix.WNOHANG ] w.pid with
    | 0, _ -> ()
    | _, status -> handle_death t w ~why:(status_to_string status)
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      handle_death t w ~why:"worker vanished (no child to reap)"

let kill_overdue t now (w : worker) =
  match w.job with
  | Some (_, _, deadline) when w.alive && now > deadline ->
    t.hb_timeouts <- t.hb_timeouts + 1;
    Metrics.inc (pc "heartbeat_timeouts" t);
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    handle_death t w
      ~why:(Printf.sprintf "heartbeat timeout after %.1fs" t.cfg.heartbeat_s)
  | Some _ | None -> ()

let poll ?(extra = []) t ~timeout =
  let now = Unix.gettimeofday () in
  Array.iter (kill_overdue t now) t.workers;
  Array.iter (reap t) t.workers;
  let alive =
    Array.to_list t.workers |> List.filter (fun (w : worker) -> w.alive)
  in
  let fds = List.map (fun (w : worker) -> w.rx) alive @ extra in
  let ready_extra = ref [] in
  if fds <> [] then begin
    (* Wake at the earliest heartbeat deadline; cap the idle tick so
       exits with no pipe traffic (pure SIGKILL) are still reaped
       promptly via waitpid. *)
    let timeout =
      if t.pending <> [] then 0.0
      else
        List.fold_left
          (fun acc (w : worker) ->
            match w.job with
            | Some (_, _, dl) -> Float.min acc (dl -. now)
            | None -> acc)
          timeout alive
        |> Float.max 0.01
    in
    match Unix.select fds [] [] timeout with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if List.exists (fun e -> e == fd) extra then
            ready_extra := fd :: !ready_extra
          else
            match
              List.find_opt (fun (w : worker) -> w.alive && w.rx == fd) alive
            with
            | None -> ()
            | Some w -> (
              match (Wire.recv w.rx : res_msg option) with
              | Some d -> record_done t w d
              | None ->
                let why =
                  match Unix.waitpid [] w.pid with
                  | _, status -> status_to_string status
                  | exception Unix.Unix_error _ -> "worker closed its pipe"
                in
                handle_death t w ~why
              | exception Wire.Oversized _ ->
                (* The stream cannot be re-synchronised past a bogus
                   length announcement; treat it as worker death. *)
                (try Unix.kill w.pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] w.pid)
                 with Unix.Unix_error _ -> ());
                handle_death t w ~why:"oversized frame from worker"))
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end;
  let events = List.rev t.pending in
  t.pending <- [];
  (events, List.rev !ready_extra)

let shutdown t =
  Array.iter
    (fun (w : worker) ->
      if w.alive then begin
        (try Wire.send w.tx Quit with Unix.Unix_error _ | Sys_error _ -> ());
        (try Unix.close w.tx with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        (try Unix.close w.rx with Unix.Unix_error _ -> ());
        Option.iter (Tracer.finish t.obs.Obs.tracer) w.span;
        w.span <- None;
        w.alive <- false
      end)
    t.workers;
  Option.iter (fun b -> ignore (Sys.signal Sys.sigpipe b)) t.sigpipe_prev;
  t.sigpipe_prev <- None

type core_stats = {
  c_spawns : int;
  c_deaths : int;
  c_respawns : int;
  c_heartbeat_timeouts : int;
}

let core_stats t =
  { c_spawns = t.spawns; c_deaths = t.deaths; c_respawns = t.respawns;
    c_heartbeat_timeouts = t.hb_timeouts }

(* -- the single-campaign driver ------------------------------------------- *)

(* Driver-side campaign state for [execute]: the queue, quarantine
   results, strike counts and checkpoint accounting the pool core
   deliberately knows nothing about. *)
type exec_state = {
  q : (Testcase.t, Campaign.case_result) Jobqueue.t;
  qres : (int, Campaign.case_result) Hashtbl.t;  (* pool-quarantined *)
  lethal : (int, int) Hashtbl.t;         (* consecutive kills per case *)
  options : Campaign.options;
  corpus : Program.t array;
  total : int;
  mutable execs : int;
  mutable since_ckpt : int;              (* completions since last save *)
  mutable poisoned : int;
  mutable resumed : int;
}

(* -- checkpointing -------------------------------------------------------- *)

(* -v2 when the packed trace representation changed the case results'
   Marshal layout, -v3 when case results gained the schedule-search
   fields; pre-change files fail the kind check as a typed error. Pool
   runs re-execute from the corpus, so no migration path. *)
let checkpoint_kind = "pool-shards-v3"

type pool_checkpoint = {
  pc_seed : int;
  pc_corpus_size : int;
  pc_total : int;
  pc_completed : (int * Campaign.case_result) list;
  pc_quarantined : (int * Campaign.case_result) list;
  pc_executions : int;
}

let save_checkpoint st path =
  let quarantined =
    Hashtbl.fold (fun id r acc -> (id, r) :: acc) st.qres []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Checkpoint.save path ~kind:checkpoint_kind
    { pc_seed = st.options.Campaign.seed;
      pc_corpus_size = st.options.Campaign.corpus_size;
      pc_total = st.total;
      pc_completed = Jobqueue.results st.q;
      pc_quarantined = quarantined;
      pc_executions = st.execs }

let maybe_checkpoint ?(force = false) cfg st =
  match cfg.checkpoint_path with
  | None -> ()
  | Some path ->
    if force || st.since_ckpt >= max 1 cfg.checkpoint_every then begin
      st.since_ckpt <- 0;
      save_checkpoint st path
    end

let load_resume st path =
  match (Checkpoint.load path ~kind:checkpoint_kind
         : (pool_checkpoint, Checkpoint.error) result)
  with
  | Error e -> failwith (Checkpoint.error_to_string e)
  | Ok ck ->
    if ck.pc_seed <> st.options.Campaign.seed
       || ck.pc_corpus_size <> st.options.Campaign.corpus_size
       || ck.pc_total <> st.total
    then
      invalid_arg
        "Pool.execute: checkpoint was taken with different campaign inputs";
    List.iter (fun (id, r) -> Jobqueue.complete st.q id r) ck.pc_completed;
    List.iter
      (fun (id, r) ->
        Jobqueue.quarantine st.q id;
        Hashtbl.replace st.qres id r)
      ck.pc_quarantined;
    st.execs <- st.execs + ck.pc_executions;
    st.resumed <- List.length ck.pc_completed + List.length ck.pc_quarantined

let execute ?obs ?(resume = false) cfg options corpus
    (generation : Cluster.result) =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let procs = max 1 cfg.procs in
  let q : (Testcase.t, Campaign.case_result) Jobqueue.t = Jobqueue.create () in
  List.iter (fun tc -> ignore (Jobqueue.submit q tc)) generation.Cluster.reps;
  let total = List.length generation.Cluster.reps in
  let st =
    { q; qres = Hashtbl.create 16; lethal = Hashtbl.create 16; options;
      corpus; total; execs = 0; since_ckpt = 0; poisoned = 0; resumed = 0 }
  in
  (match cfg.checkpoint_path with
   | Some path when resume && Sys.file_exists path -> load_resume st path
   | Some _ | None -> ());
  ignore (Jobqueue.assign_round_robin q ~workers:procs : (int * _) list array);
  let t = create ~obs { cfg with procs } in
  let pm name = Metrics.counter ~always:true obs.Obs.metrics ("pool." ^ name) in
  Metrics.set_counter (pm "resumed") st.resumed;
  let stats_of () =
    let c = core_stats t in
    { spawns = c.c_spawns; deaths = c.c_deaths; respawns = c.c_respawns;
      resharded = Jobqueue.resharded q;
      heartbeat_timeouts = c.c_heartbeat_timeouts; poisoned = st.poisoned;
      resumed = st.resumed; stolen = Jobqueue.stolen q }
  in
  let abort () =
    maybe_checkpoint ~force:true cfg st;
    raise (Aborted { unfinished = Jobqueue.unfinished q; stats = stats_of () })
  in
  let dispatch_idle () =
    List.iter
      (fun slot ->
        let next =
          match Jobqueue.claim_next q ~worker:slot with
          | Some j -> Some j
          | None -> Jobqueue.steal q ~thief:slot
        in
        match next with
        | None -> ()
        | Some (id, tc) -> dispatch_job t ~slot ~tenant:0 ~id tc)
      (idle_slots t)
  in
  let handle = function
    | Job_done { ev_id = id; ev_result = r; ev_execs = d; _ } ->
      Jobqueue.complete q id r;          (* no-op if already quarantined *)
      Hashtbl.remove st.lethal id;       (* a success resets the strikes *)
      st.execs <- st.execs + d;
      st.since_ckpt <- st.since_ckpt + 1;
      maybe_checkpoint cfg st
    | Worker_lost { ev_slot = slot; ev_why = why; ev_in_flight; _ } ->
      (* Two strikes: a case that killed two workers in a row is poison
         — quarantine it as a first-class crash report instead of
         feeding it to a third worker. *)
      (match ev_in_flight with
       | Some (_, id) when Jobqueue.result q id = None ->
         let strikes =
           1 + Option.value ~default:0 (Hashtbl.find_opt st.lethal id)
         in
         Hashtbl.replace st.lethal id strikes;
         if strikes >= 2 then begin
           let tc = Jobqueue.payload q id in
           Hashtbl.replace st.qres id
             (Campaign.lost_case_result ~attempts:strikes corpus
                ~why:
                  (Printf.sprintf
                     "case killed %d workers in a row; last: %s" strikes why)
                tc);
           Jobqueue.quarantine q id;
           st.poisoned <- st.poisoned + 1;
           Metrics.inc (pm "poisoned")
         end
       | Some _ | None -> ());
      let orphans = Jobqueue.release q ~worker:slot in
      Metrics.set_counter (pm "resharded") (Jobqueue.resharded q);
      (match (orphans, alive_slots t) with
       | [], _ -> ()
       | _ :: _, [] -> ()                (* the all-dead check below aborts *)
       | _ :: _, survivors -> Jobqueue.deal q orphans ~to_:survivors)
  in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      Tracer.with_span obs.Obs.tracer
        ~attrs:[ ("procs", string_of_int procs) ]
        "pool.execute"
        (fun () ->
          register t ~tenant:0 ~label:"" options corpus;
          while not (Jobqueue.is_drained q) do
            if live_count t = 0 then abort ();
            dispatch_idle ();
            let events, _ = poll t ~timeout:0.2 in
            List.iter handle events
          done;
          maybe_checkpoint ~force:true cfg st;
          let results =
            List.init total (fun id ->
                match Jobqueue.result q id with
                | Some r -> r
                | None -> Hashtbl.find st.qres id)
          in
          Metrics.set_counter (pm "resharded") (Jobqueue.resharded q);
          Metrics.set_counter (pm "stolen") (Jobqueue.stolen q);
          { results; executions = st.execs; stats = stats_of () }))

let executor ?obs ?resume ?on_stats cfg : Campaign.executor =
 fun options corpus generation ->
  let o = execute ?obs ?resume cfg options corpus generation in
  Option.iter (fun f -> f o.stats) on_stats;
  (o.results, o.executions)
