(* The crash-isolated process pool. See pool.mli for the contract.

   Topology: the parent spawns [procs] workers by re-executing its own
   image ([Sys.executable_name] with [KIT_POOL_WORKER] in the
   environment; {!worker_entry} is the trampoline). [Unix.fork] is not
   an option: OCaml 5 forbids it for the lifetime of any process that
   has ever spawned a domain, and the pool must coexist with the
   domain-distributed campaign paths in one executable. Each worker owns
   a job pipe (parent writes) and a result pipe (worker writes), both
   carrying length-prefixed Marshal frames (Wire); the first job-pipe
   frame is a [Hello] with the worker's slot, sabotage and campaign
   inputs — spawned workers share no memory, so the context travels the
   wire ([Marshal.Closures], sound across the identical image). The
   parent pre-shards the Jobqueue round-robin over the worker slots and
   then drives each worker one job at a time: claim → send → wait for
   Done → complete → claim the next (stealing from the longest queue
   when its own shard runs dry).

   Fd hygiene is what makes death detection sound: the parent-side pipe
   ends are close-on-exec, and the child-side ends — advertised to the
   worker by number through the environment variable — are closed by
   the parent immediately after each (sequential) spawn, so no later
   sibling can inherit them. The wire deliberately does NOT ride on the
   worker's stdin/stdout: module initialisers of the re-executed binary
   run before {!worker_entry} and are free to print (qcheck's seed
   banner, for one), and any such bytes would desynchronise the framed
   stream. So a worker's result-pipe write end lives in exactly one
   process, and its death turns into EOF on the parent's read end the
   moment the kernel reaps it. waitpid gives the why (exit code or
   signal); per-job wall-clock deadlines catch the one failure mode
   with no signal at all, the hang.

   Workers never touch the parent's state: they exit only via
   [Unix._exit] (0 on Quit/EOF, 71 on Supervisor.Gave_up, 70 on any
   other escaped exception), so an exception inside a worker is crash
   isolation, not a half-initialised replay of the parent. *)

module Program = Kit_abi.Program
module Testcase = Kit_gen.Testcase
module Cluster = Kit_gen.Cluster
module Supervisor = Kit_exec.Supervisor
module Campaign = Kit_core.Campaign
module Jobqueue = Kit_core.Jobqueue
module Checkpoint = Kit_core.Checkpoint
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type sabotage = {
  kill_after : (int * int) list;
  hang_after : (int * int) list;
  poison : int list;
}

let no_sabotage = { kill_after = []; hang_after = []; poison = [] }

type config = {
  procs : int;
  heartbeat_s : float;
  max_respawns : int;
  backoff_base_ms : float;
  checkpoint_path : string option;
  checkpoint_every : int;
  sabotage : sabotage;
}

let default_config =
  { procs = 4; heartbeat_s = 30.0; max_respawns = 3; backoff_base_ms = 5.0;
    checkpoint_path = None; checkpoint_every = 16; sabotage = no_sabotage }

type stats = {
  spawns : int;
  deaths : int;
  respawns : int;
  resharded : int;
  heartbeat_timeouts : int;
  poisoned : int;
  resumed : int;
  stolen : int;
}

type outcome = {
  results : Campaign.case_result list;
  executions : int;
  stats : stats;
}

exception
  Aborted of {
    unfinished : (int * Testcase.t) list;
    stats : stats;
  }

(* -- wire messages ------------------------------------------------------- *)

type hello =
  | Hello of {
      h_slot : int;
      h_sab : sabotage;
      h_options : Campaign.options;
      h_corpus : Program.t array;
    }

type job_msg = Job of int * Testcase.t | Quit
type res_msg = Done of int * Campaign.case_result * int  (* execs delta *)

let worker_env_var = "KIT_POOL_WORKER"

(* -- worker (child) side -------------------------------------------------- *)

let kill_self () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* SIGKILL is not deliverable-to-self-synchronously on every kernel
     before the next scheduling point; never fall through into the
     parent's code path. *)
  Unix._exit 70

let child_main ~slot ~options ~corpus ~(sab : sabotage) rx tx =
  let code = ref 0 in
  (try
     let obs = Obs.create () in
     let sup = Campaign.supervisor ~obs options in
     let kill_at = List.assoc_opt slot sab.kill_after in
     let hang_at = List.assoc_opt slot sab.hang_after in
     let completed = ref 0 in
     let rec loop () =
       match (Wire.recv rx : job_msg option) with
       | None | Some Quit -> ()
       | Some (Job (id, tc)) ->
         (match kill_at with
          | Some n when !completed >= n -> kill_self ()
          | Some _ | None -> ());
         (match hang_at with
          | Some n when !completed >= n ->
            while true do Unix.sleepf 3600.0 done
          | Some _ | None -> ());
         if List.mem id sab.poison then kill_self ();
         let e0 = Supervisor.executions sup in
         let attrs =
           [ ("case", string_of_int id); ("proc", string_of_int slot) ]
         in
         let r = Campaign.exec_case ~attrs options corpus sup tc in
         Wire.send tx (Done (id, r, Supervisor.executions sup - e0));
         incr completed;
         loop ()
     in
     loop ()
   with
   | Supervisor.Gave_up _ -> code := 71
   | _ -> code := 70);
  Unix._exit !code

(* On Unix a [file_descr] is the integer, which is what lets the pipe
   ends cross the exec boundary as text in the environment. *)
let fd_of_int (n : int) : Unix.file_descr = Obj.magic n
let int_of_fd (fd : Unix.file_descr) : int = Obj.magic fd

let worker_entry () =
  match Sys.getenv_opt worker_env_var with
  | None -> ()
  | Some spec ->
    let rx, tx =
      match String.split_on_char ':' spec with
      | [ jr; rw ] -> (
        match (int_of_string_opt jr, int_of_string_opt rw) with
        | Some jr, Some rw -> (fd_of_int jr, fd_of_int rw)
        | _ -> Unix._exit 70)
      | _ -> Unix._exit 70
    in
    (match (Wire.recv rx : hello option) with
     | Some (Hello { h_slot; h_sab; h_options; h_corpus }) ->
       child_main ~slot:h_slot ~options:h_options ~corpus:h_corpus ~sab:h_sab
         rx tx
     | None -> ());
    (* Only reachable on a missing or undecodable Hello. *)
    Unix._exit 70

(* -- parent side ---------------------------------------------------------- *)

type worker = {
  slot : int;
  mutable pid : int;
  mutable tx : Unix.file_descr;          (* job pipe, write end *)
  mutable rx : Unix.file_descr;          (* result pipe, read end *)
  mutable alive : bool;
  mutable job : (int * float) option;    (* in-flight id, deadline *)
  mutable respawns_left : int;
  mutable backoff_s : float;
  mutable span : Tracer.span option;
}

type state = {
  q : (Testcase.t, Campaign.case_result) Jobqueue.t;
  qres : (int, Campaign.case_result) Hashtbl.t;  (* pool-quarantined *)
  lethal : (int, int) Hashtbl.t;         (* consecutive kills per case *)
  workers : worker array;
  cfg : config;
  options : Campaign.options;
  corpus : Program.t array;
  obs : Obs.t;
  total : int;
  mutable execs : int;
  mutable since_ckpt : int;              (* completions since last save *)
  mutable spawns : int;
  mutable deaths : int;
  mutable respawns : int;
  mutable hb_timeouts : int;
  mutable poisoned : int;
  mutable resumed : int;
}

let pc name st = Metrics.counter ~always:true st.obs.Obs.metrics ("pool." ^ name)

let stats_of st =
  { spawns = st.spawns; deaths = st.deaths; respawns = st.respawns;
    resharded = Jobqueue.resharded st.q;
    heartbeat_timeouts = st.hb_timeouts; poisoned = st.poisoned;
    resumed = st.resumed; stolen = Jobqueue.stolen st.q }

let status_to_string = function
  | Unix.WEXITED 71 -> "worker gave up (permanent infrastructure fault)"
  | Unix.WEXITED n -> Printf.sprintf "worker exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

(* -- checkpointing -------------------------------------------------------- *)

let checkpoint_kind = "pool-shards"

type pool_checkpoint = {
  pc_seed : int;
  pc_corpus_size : int;
  pc_total : int;
  pc_completed : (int * Campaign.case_result) list;
  pc_quarantined : (int * Campaign.case_result) list;
  pc_executions : int;
}

let save_checkpoint st path =
  let quarantined =
    Hashtbl.fold (fun id r acc -> (id, r) :: acc) st.qres []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Checkpoint.save path ~kind:checkpoint_kind
    { pc_seed = st.options.Campaign.seed;
      pc_corpus_size = st.options.Campaign.corpus_size;
      pc_total = st.total;
      pc_completed = Jobqueue.results st.q;
      pc_quarantined = quarantined;
      pc_executions = st.execs }

let maybe_checkpoint ?(force = false) st =
  match st.cfg.checkpoint_path with
  | None -> ()
  | Some path ->
    if force || st.since_ckpt >= max 1 st.cfg.checkpoint_every then begin
      st.since_ckpt <- 0;
      save_checkpoint st path
    end

let load_resume st path =
  match (Checkpoint.load path ~kind:checkpoint_kind
         : (pool_checkpoint, Checkpoint.error) result)
  with
  | Error e -> failwith (Checkpoint.error_to_string e)
  | Ok ck ->
    if ck.pc_seed <> st.options.Campaign.seed
       || ck.pc_corpus_size <> st.options.Campaign.corpus_size
       || ck.pc_total <> st.total
    then
      invalid_arg
        "Pool.execute: checkpoint was taken with different campaign inputs";
    List.iter (fun (id, r) -> Jobqueue.complete st.q id r) ck.pc_completed;
    List.iter
      (fun (id, r) ->
        Jobqueue.quarantine st.q id;
        Hashtbl.replace st.qres id r)
      ck.pc_quarantined;
    st.execs <- st.execs + ck.pc_executions;
    st.resumed <-
      List.length ck.pc_completed + List.length ck.pc_quarantined;
    Metrics.set_counter (pc "resumed" st) st.resumed

(* -- spawning ------------------------------------------------------------- *)

let spawn st w =
  (* Kill/hang sabotage is a one-shot event schedule: the slot's entry
     fires in the first incarnation only, so a respawned worker is not
     doomed to die every N cases forever. (Poison deliberately re-fires
     — that is the twice-lethal path.) *)
  let sab =
    if w.pid = -1 then st.cfg.sabotage
    else
      { st.cfg.sabotage with
        kill_after =
          List.filter (fun (s, _) -> s <> w.slot) st.cfg.sabotage.kill_after;
        hang_after =
          List.filter (fun (s, _) -> s <> w.slot) st.cfg.sabotage.hang_after }
  in
  (* The parent-side ends are close-on-exec; the child-side ends cross
     the exec by number via the environment and are closed here right
     after the (sequential) spawn — so no sibling spawned later can
     inherit this worker's result-pipe write end, and EOF detection
     stays sound. The wire must not ride on stdin/stdout: module
     initialisers of the re-executed image print before {!worker_entry}
     runs and would desynchronise the framing. *)
  let jr, jw = Unix.pipe () in
  let rr, rw = Unix.pipe () in
  Unix.set_close_on_exec jw;
  Unix.set_close_on_exec rr;
  let env =
    Array.append
      (Array.to_seq (Unix.environment ())
      |> Seq.filter (fun kv ->
             not (String.length kv > String.length worker_env_var
                  && String.sub kv 0 (String.length worker_env_var + 1)
                     = worker_env_var ^ "="))
      |> Array.of_seq)
      [| Printf.sprintf "%s=%d:%d" worker_env_var (int_of_fd jr)
           (int_of_fd rw) |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.close jr;
  Unix.close rw;
  w.pid <- pid;
  w.tx <- jw;
  w.rx <- rr;
  w.alive <- true;
  w.job <- None;
  (* The bootstrap frame replaces the address space a fork would have
     copied. [Marshal.Closures] carries the spec's checker closures;
     the obs bundle is unmarshalable and private anyway — the worker
     builds its own. *)
  (try
     Wire.send ~flags:[ Marshal.Closures ] jw
       (Hello
          { h_slot = w.slot; h_sab = sab;
            h_options = { st.options with Campaign.obs = None };
            h_corpus = st.corpus })
   with Unix.Unix_error _ | Sys_error _ -> ());
  w.span <-
    Some
      (Tracer.span st.obs.Obs.tracer
         ~attrs:[ ("proc", string_of_int w.slot); ("pid", string_of_int pid) ]
         "pool.worker");
  st.spawns <- st.spawns + 1;
  Metrics.inc (pc "spawns" st)

(* -- the driver loop ------------------------------------------------------ *)

let dispatch st (w : worker) =
  if w.alive && w.job = None then begin
    let next =
      match Jobqueue.claim_next st.q ~worker:w.slot with
      | Some j -> Some j
      | None -> Jobqueue.steal st.q ~thief:w.slot
    in
    match next with
    | None -> ()
    | Some (id, tc) ->
      w.job <- Some (id, Unix.gettimeofday () +. st.cfg.heartbeat_s);
      (* A send to a dying worker raises EPIPE; the death is picked up
         through EOF/waitpid and the job resharded with the rest. *)
      (try Wire.send w.tx (Job (id, tc))
       with Unix.Unix_error _ | Sys_error _ -> ())
  end

let record_done st (w : worker) id r d =
  Jobqueue.complete st.q id r;            (* no-op if already quarantined *)
  Hashtbl.remove st.lethal id;            (* a success resets the strikes *)
  st.execs <- st.execs + d;
  st.since_ckpt <- st.since_ckpt + 1;
  (match w.job with Some (jid, _) when jid = id -> w.job <- None | _ -> ());
  maybe_checkpoint st

let abort st =
  maybe_checkpoint ~force:true st;
  raise (Aborted { unfinished = Jobqueue.unfinished st.q; stats = stats_of st })

(* A worker died (or was killed): drain its buffered results, count a
   strike against the in-flight case, release and redeal its queue, and
   respawn if budget remains. The kernel closed the dead worker's
   result-pipe write end, so the drain terminates at EOF. *)
let handle_death st (w : worker) ~why =
  let rec drain () =
    match (Wire.recv w.rx : res_msg option) with
    | Some (Done (id, r, d)) ->
      record_done st w id r d;
      drain ()
    | None -> ()
  in
  drain ();
  (try Unix.close w.rx with Unix.Unix_error _ -> ());
  (try Unix.close w.tx with Unix.Unix_error _ -> ());
  Option.iter (Tracer.finish st.obs.Obs.tracer) w.span;
  w.span <- None;
  w.alive <- false;
  st.deaths <- st.deaths + 1;
  Metrics.inc (pc "deaths" st);
  Tracer.instant st.obs.Obs.tracer
    ~attrs:[ ("proc", string_of_int w.slot); ("why", why) ]
    "pool.death";
  (* Two strikes: a case that killed two workers in a row is poison —
     quarantine it as a first-class crash report instead of feeding it
     to a third worker. *)
  (match w.job with
   | Some (id, _) when Jobqueue.result st.q id = None ->
     let strikes = 1 + Option.value ~default:0 (Hashtbl.find_opt st.lethal id) in
     Hashtbl.replace st.lethal id strikes;
     if strikes >= 2 then begin
       let tc = Jobqueue.payload st.q id in
       Hashtbl.replace st.qres id
         (Campaign.lost_case_result ~attempts:strikes st.corpus
            ~why:(Printf.sprintf "case killed %d workers in a row; last: %s"
                    strikes why)
            tc);
       Jobqueue.quarantine st.q id;
       st.poisoned <- st.poisoned + 1;
       Metrics.inc (pc "poisoned" st)
     end
   | Some _ | None -> ());
  w.job <- None;
  let orphans = Jobqueue.release st.q ~worker:w.slot in
  Metrics.set_counter (pc "resharded" st) (Jobqueue.resharded st.q);
  if w.respawns_left > 0 then begin
    w.respawns_left <- w.respawns_left - 1;
    Unix.sleepf w.backoff_s;
    w.backoff_s <- w.backoff_s *. 2.0;
    st.respawns <- st.respawns + 1;
    Metrics.inc (pc "respawns" st);
    spawn st w
  end;
  let alive =
    Array.to_list st.workers |> List.filter (fun (o : worker) -> o.alive)
  in
  (match (orphans, alive) with
   | [], _ -> ()
   | _ :: _, [] -> ()                     (* the all-dead check below aborts *)
   | _ :: _, survivors ->
     Jobqueue.deal st.q orphans
       ~to_:(List.map (fun (o : worker) -> o.slot) survivors));
  if alive = [] && not (Jobqueue.is_drained st.q) then abort st;
  Array.iter (dispatch st) st.workers

let reap st (w : worker) =
  if w.alive then
    match Unix.waitpid [ Unix.WNOHANG ] w.pid with
    | 0, _ -> ()
    | _, status -> handle_death st w ~why:(status_to_string status)
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      handle_death st w ~why:"worker vanished (no child to reap)"

let kill_overdue st now (w : worker) =
  match w.job with
  | Some (_, deadline) when w.alive && now > deadline ->
    st.hb_timeouts <- st.hb_timeouts + 1;
    Metrics.inc (pc "heartbeat_timeouts" st);
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    handle_death st w
      ~why:
        (Printf.sprintf "heartbeat timeout after %.1fs" st.cfg.heartbeat_s)
  | Some _ | None -> ()

let rec drive st =
  if not (Jobqueue.is_drained st.q) then begin
    let now = Unix.gettimeofday () in
    Array.iter (kill_overdue st now) st.workers;
    Array.iter (reap st) st.workers;
    if not (Jobqueue.is_drained st.q) then begin
      let alive =
        Array.to_list st.workers |> List.filter (fun (w : worker) -> w.alive)
      in
      if alive = [] then abort st;
      let fds = List.map (fun (w : worker) -> w.rx) alive in
      (* Wake at the earliest heartbeat deadline; cap the idle tick so
         exits with no pipe traffic (pure SIGKILL) are still reaped
         promptly via waitpid. *)
      let timeout =
        List.fold_left
          (fun acc (w : worker) ->
            match w.job with
            | Some (_, dl) -> Float.min acc (dl -. now)
            | None -> acc)
          0.2 alive
        |> Float.max 0.01
      in
      (match Unix.select fds [] [] timeout with
       | readable, _, _ ->
         List.iter
           (fun fd ->
             match
               List.find_opt (fun (w : worker) -> w.alive && w.rx == fd) alive
             with
             | None -> ()
             | Some w -> (
               match (Wire.recv w.rx : res_msg option) with
               | Some (Done (id, r, d)) ->
                 record_done st w id r d;
                 dispatch st w
               | None ->
                 let why =
                   match Unix.waitpid [] w.pid with
                   | _, status -> status_to_string status
                   | exception Unix.Unix_error _ -> "worker closed its pipe"
                 in
                 handle_death st w ~why))
           readable
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      drive st
    end
  end

let shutdown st =
  Array.iter
    (fun (w : worker) ->
      if w.alive then begin
        (try Wire.send w.tx Quit with Unix.Unix_error _ | Sys_error _ -> ());
        (try Unix.close w.tx with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        (try Unix.close w.rx with Unix.Unix_error _ -> ());
        Option.iter (Tracer.finish st.obs.Obs.tracer) w.span;
        w.span <- None;
        w.alive <- false
      end)
    st.workers

let execute ?obs ?(resume = false) cfg options corpus
    (generation : Cluster.result) =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let procs = max 1 cfg.procs in
  let q : (Testcase.t, Campaign.case_result) Jobqueue.t = Jobqueue.create () in
  List.iter (fun tc -> ignore (Jobqueue.submit q tc)) generation.Cluster.reps;
  let total = List.length generation.Cluster.reps in
  let workers =
    Array.init procs (fun slot ->
        { slot; pid = -1; tx = Unix.stdin; rx = Unix.stdin; alive = false;
          job = None; respawns_left = max 0 cfg.max_respawns;
          backoff_s = Float.max 0.0 cfg.backoff_base_ms /. 1000.0;
          span = None })
  in
  let st =
    { q; qres = Hashtbl.create 16; lethal = Hashtbl.create 16; workers; cfg;
      options; corpus; obs; total; execs = 0; since_ckpt = 0; spawns = 0;
      deaths = 0; respawns = 0; hb_timeouts = 0; poisoned = 0; resumed = 0 }
  in
  (match cfg.checkpoint_path with
   | Some path when resume && Sys.file_exists path -> load_resume st path
   | Some _ | None -> ());
  ignore (Jobqueue.assign_round_robin q ~workers:procs : (int * _) list array);
  (* The parent writes into job pipes of workers that may already be
     dead; without this a single EPIPE would kill the whole pool. *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown st;
      Option.iter (fun b -> ignore (Sys.signal Sys.sigpipe b)) old_sigpipe)
    (fun () ->
      Tracer.with_span st.obs.Obs.tracer
        ~attrs:[ ("procs", string_of_int procs) ]
        "pool.execute"
        (fun () ->
          Array.iter (fun w -> spawn st w) workers;
          Array.iter (dispatch st) workers;
          drive st;
          maybe_checkpoint ~force:true st;
          let results =
            List.init total (fun id ->
                match Jobqueue.result q id with
                | Some r -> r
                | None -> Hashtbl.find st.qres id)
          in
          Metrics.set_counter (pc "resharded" st) (Jobqueue.resharded q);
          Metrics.set_counter (pc "stolen" st) (Jobqueue.stolen q);
          { results; executions = st.execs; stats = stats_of st }))

let executor ?obs ?resume cfg : Campaign.executor =
 fun options corpus generation ->
  let o = execute ?obs ?resume cfg options corpus generation in
  (o.results, o.executions)
