(** Corpus generation.

    The paper seeds KIT with a Syzkaller-generated corpus of test
    programs; here a seeded generator plays that role, combining curated
    per-subsystem seed templates (the equivalent of a fuzzer having
    discovered interesting syscall idioms) with random composition and
    mutation. Fully deterministic for a given seed. *)

val seed_texts : string list
(** The curated seed programs, in syzlang-style text. *)

val max_program_len : int
(** Upper bound on generated program length. *)

val mutate : Random.State.t -> Program.t -> Program.t
(** One mutation step: append a random call, tweak an integer argument,
    or drop the last call. *)

val random_program : Random.State.t -> Program.t
(** A fully random program of bounded length. *)

val generate : seed:int -> size:int -> Program.t list
(** [generate ~seed ~size] returns [size] programs: the seeds verbatim
    (when they fit) followed by a deterministic mix of mutated seeds,
    seed compositions and random programs. *)
