(** A textual codec for test programs, in the spirit of Syzkaller's
    program format:

    {v
r0 = socket(1)
r1 = open("/proc/net/ptype")
r2 = read(r1)
    v}

    Lines starting with [#] are comments; blank lines are ignored; the
    ["rN = "] prefix is optional. Programs survive a print/parse round
    trip (property-tested). *)

exception Parse_error of string

val print : Program.t -> string

val parse : string -> Program.t
(** @raise Parse_error on malformed input or unknown syscall names. *)

val parse_opt : string -> Program.t option
(** Like {!parse}, returning [None] instead of raising. *)
