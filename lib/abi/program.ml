(* Test programs: finite sequences of system calls with resource-typed
   arguments, the unit of input that KIT profiles and pairs into test
   cases (paper, section 4.1). *)

type call = {
  sysno : Sysno.t;
  args : Value.t list;
}

type t = {
  calls : call list;
}

let make calls = { calls }
let calls t = t.calls
let length t = List.length t.calls

let nth t i = List.nth_opt t.calls i

let call_equal a b =
  Sysno.equal a.sysno b.sysno && List.equal Value.equal a.args b.args

let equal a b = List.equal call_equal a.calls b.calls

let pp_call ppf { sysno; args } =
  Fmt.pf ppf "%a(%a)" Sysno.pp sysno (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
    args

let pp ppf t =
  let pp_line i c = Fmt.pf ppf "r%d = %a@." i pp_call c in
  List.iteri pp_line t.calls

let to_string t = Fmt.str "%a" pp t

(* A stable digest used to cache per-program artefacts (non-determinism
   maps, profiles) across the pipeline. The default Hashtbl.hash only
   inspects ~10 nodes, which collides for programs sharing a prefix, so
   the traversal limits are raised to cover whole programs. *)
let hash t =
  Hashtbl.hash_param 512 512 (List.map (fun c -> (c.sysno, c.args)) t.calls)

(* Static resource typing: the fd type produced by each call, by abstract
   interpretation of constant arguments. Calls that fail or produce no
   resource are [None]. *)
let result_types t =
  let types = Array.make (max 1 (length t)) None in
  let type_of i { sysno; args } =
    match sysno, args with
    | Sysno.Socket, Value.Int d :: _ -> Fdtype.of_socket_domain d
    | Sysno.Open, Value.Str path :: _ -> Fdtype.of_path path
    | Sysno.Creat, Value.Str path :: _ -> Fdtype.of_path path
    | Sysno.Msgget, _ -> Some Fdtype.Msgqid
    | Sysno.Token_create, _ -> Some Fdtype.Token
    | ( Sysno.Unshare | Sysno.Socket | Sysno.Close | Sysno.Bind
      | Sysno.Connect | Sysno.Send | Sysno.Flowlabel_request
      | Sysno.Get_cookie | Sysno.Sctp_assoc | Sysno.Alloc_protomem
      | Sysno.Open | Sysno.Read | Sysno.Fstat | Sysno.Creat
      | Sysno.Io_uring_read | Sysno.Msgsnd | Sysno.Msgrcv
      | Sysno.Msgctl_stat | Sysno.Setpriority | Sysno.Getpriority
      | Sysno.Sethostname | Sysno.Gethostname | Sysno.Netdev_create
      | Sysno.Uevent_recv | Sysno.Ipvs_add_service | Sysno.Sysctl_read
      | Sysno.Sysctl_write | Sysno.Conntrack_add | Sysno.Sock_diag
      | Sysno.Af_alg_bind | Sysno.Clock_gettime | Sysno.Clock_settime
      | Sysno.Getpid | Sysno.Token_stat ), _ ->
      ignore i;
      None
  in
  List.iteri (fun i c -> types.(i) <- type_of i c) t.calls;
  types

(* Fd types consumed by call [i], resolved against the producing calls. *)
let uses_types types { sysno = _; args } =
  let resolve acc = function
    | Value.Ref j when j >= 0 && j < Array.length types -> (
      match types.(j) with None -> acc | Some ty -> ty :: acc)
    | Value.Ref _ | Value.Int _ | Value.Str _ -> acc
  in
  List.rev (List.fold_left resolve [] args)

(* Remove the [i]-th call, remapping resource references: references to
   later calls shift down by one; references to the removed call become
   the invalid fd -1 (the kernel then fails them with EBADF). Used by the
   report-diagnosis step (paper, Algorithm 2). *)
let remove_call t i =
  let remap_arg = function
    | Value.Ref j when j = i -> Value.Int (-1)
    | Value.Ref j when j > i -> Value.Ref (j - 1)
    | (Value.Ref _ | Value.Int _ | Value.Str _) as v -> v
  in
  let keep = ref [] in
  List.iteri
    (fun k c ->
      if k <> i then
        keep := { c with args = List.map remap_arg c.args } :: !keep)
    t.calls;
  { calls = List.rev !keep }

let append a b =
  let shift = length a in
  let remap_arg = function
    | Value.Ref j -> Value.Ref (j + shift)
    | (Value.Int _ | Value.Str _) as v -> v
  in
  let shifted = List.map (fun c -> { c with args = List.map remap_arg c.args }) b.calls in
  { calls = a.calls @ shifted }
