(* Integer constants of the model ABI (socket domains, flags, sysctl
   names are plain strings). Centralised so the kernel, the corpus
   generator and the specification agree on the encoding. *)

(* Socket domains (first argument of [socket]). *)
let dom_tcp = 1
let dom_udp = 2
let dom_packet = 3
let dom_rds = 4
let dom_sctp = 5
let dom_unix = 6
let dom_alg = 7
let dom_uevent = 8
let dom_inet6 = 9

let domains =
  [ dom_tcp; dom_udp; dom_packet; dom_rds; dom_sctp; dom_unix; dom_alg;
    dom_uevent; dom_inet6 ]

let domain_name d =
  if d = dom_tcp then "AF_INET_TCP"
  else if d = dom_udp then "AF_INET_UDP"
  else if d = dom_packet then "AF_PACKET"
  else if d = dom_rds then "AF_RDS"
  else if d = dom_sctp then "AF_SCTP"
  else if d = dom_unix then "AF_UNIX"
  else if d = dom_alg then "AF_ALG"
  else if d = dom_uevent then "AF_NETLINK_UEVENT"
  else if d = dom_inet6 then "AF_INET6"
  else "AF_UNKNOWN"

(* unshare flags, one bit per namespace kind. *)
let clone_newpid = 0x1
let clone_newns = 0x2
let clone_newuts = 0x4
let clone_newipc = 0x8
let clone_newnet = 0x10
let clone_newuser = 0x20
let clone_newcgroup = 0x40
let clone_newtime = 0x80

(* flowlabel_request flags. *)
let fl_excl = 0x1

(* setpriority/getpriority [which]. *)
let prio_process = 0
let prio_user = 2

(* Well-known sysctl names. *)
let sysctl_conntrack_max = "net/nf_conntrack_max"
let sysctl_somaxconn = "net/somaxconn"

(* Paths understood by [open]/[creat]/[io_uring_read]. *)
let proc_net_ptype = "/proc/net/ptype"
let proc_net_sockstat = "/proc/net/sockstat"
let proc_net_protocols = "/proc/net/protocols"
let proc_net_ip_vs = "/proc/net/ip_vs"
let proc_net_conntrack = "/proc/net/nf_conntrack"
let proc_crypto = "/proc/crypto"
let proc_slabinfo = "/proc/slabinfo"
let proc_uptime = "/proc/uptime"

let proc_paths =
  [ proc_net_ptype; proc_net_sockstat; proc_net_protocols; proc_net_ip_vs;
    proc_net_conntrack; proc_crypto; proc_slabinfo; proc_uptime ]
