(** Integer and string constants of the model ABI: socket domains,
    clone flags, well-known sysctl names and procfs paths. Centralised
    so the kernel, the corpus generator and the specification agree on
    the encoding. *)

(** {1 Socket domains} *)

val dom_tcp : int
val dom_udp : int
val dom_packet : int
val dom_rds : int
val dom_sctp : int
val dom_unix : int
val dom_alg : int
val dom_uevent : int
val dom_inet6 : int

val domains : int list
(** Every valid socket domain. *)

val domain_name : int -> string
(** Human-readable name, e.g. [domain_name dom_packet = "AF_PACKET"]. *)

(** {1 unshare flags} — one bit per namespace kind *)

val clone_newpid : int
val clone_newns : int
val clone_newuts : int
val clone_newipc : int
val clone_newnet : int
val clone_newuser : int
val clone_newcgroup : int
val clone_newtime : int

(** {1 Miscellaneous flags} *)

val fl_excl : int
(** [flowlabel_request] flag requesting exclusive ownership. *)

val prio_process : int
val prio_user : int

(** {1 Well-known sysctls} *)

val sysctl_conntrack_max : string
val sysctl_somaxconn : string

(** {1 procfs paths understood by the model kernel} *)

val proc_net_ptype : string
val proc_net_sockstat : string
val proc_net_protocols : string
val proc_net_ip_vs : string
val proc_net_conntrack : string
val proc_crypto : string
val proc_slabinfo : string
val proc_uptime : string

val proc_paths : string list
(** All renderable procfs paths. *)
