(** System call argument values.

    [Ref i] denotes the return value of the [i]-th call of the same test
    program (a file descriptor or other kernel resource id), mirroring
    Syzkaller's resource arguments; the interpreter resolves it at
    execution time. *)

type t =
  | Int of int
  | Str of string
  | Ref of int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Rendered as it appears in the syzlang-style program text: integers
    bare, strings quoted, references as [rN]. *)
