(* A textual codec for test programs, in the spirit of Syzkaller's
   program format:

     r0 = socket(0x1)
     r1 = open("/proc/net/ptype")
     r2 = read(r1)

   Programs survive a print/parse round trip (property-tested). *)

let print = Program.to_string

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let is_space c = Char.equal c ' ' || Char.equal c '\t'

let split_top_commas s =
  (* Split on commas that are not inside a string literal. *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let in_str = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        Buffer.add_char buf c;
        if !escaped then escaped := false
        else if Char.equal c '\\' then escaped := true
        else if Char.equal c '"' then in_str := false
      end
      else if Char.equal c '"' then begin
        Buffer.add_char buf c;
        in_str := true
      end
      else if Char.equal c ',' then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let parse_value s =
  let s = String.trim s in
  if String.length s = 0 then fail "empty argument"
  else if Char.equal s.[0] '"' then begin
    if String.length s < 2 || not (Char.equal s.[String.length s - 1] '"') then
      fail "unterminated string literal %s" s;
    Value.Str (Scanf.sscanf s "%S" (fun x -> x))
  end
  else if Char.equal s.[0] 'r' && String.length s > 1 then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i -> Value.Ref i
    | None -> fail "bad resource reference %s" s
  else
    match int_of_string_opt s with
    | Some n -> Value.Int n
    | None -> fail "bad integer %s" s

let parse_line line =
  let line = String.trim line in
  (* Optional "rN = " prefix: only strip when the text before the first
     '=' is exactly an rN name — syscall names also start with 'r' and
     string arguments may contain '='. *)
  let is_result_name s =
    let s = String.trim s in
    String.length s >= 2
    && Char.equal s.[0] 'r'
    && String.for_all (fun c -> c >= '0' && c <= '9')
         (String.sub s 1 (String.length s - 1))
  in
  let body =
    match String.index_opt line '=' with
    | Some eq when is_result_name (String.sub line 0 eq) ->
      String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
    | Some _ | None -> line
  in
  match String.index_opt body '(' with
  | None -> fail "missing '(' in %s" line
  | Some lp ->
    let name = String.trim (String.sub body 0 lp) in
    let rp =
      match String.rindex_opt body ')' with
      | Some i -> i
      | None -> fail "missing ')' in %s" line
    in
    let args_str = String.sub body (lp + 1) (rp - lp - 1) in
    let sysno =
      match Sysno.of_string name with
      | Some n -> n
      | None -> fail "unknown syscall %s" name
    in
    let args =
      if String.for_all is_space args_str && String.length (String.trim args_str) = 0
      then []
      else List.map parse_value (split_top_commas args_str)
    in
    { Program.sysno; args }

let parse text =
  let lines = String.split_on_char '\n' text in
  let calls =
    List.filter_map
      (fun l ->
        let l = String.trim l in
        if String.length l = 0 then None
        else if String.length l >= 1 && Char.equal l.[0] '#' then None
        else Some (parse_line l))
      lines
  in
  Program.make calls

let parse_opt text =
  match parse text with
  | p -> Some p
  | exception Parse_error _ -> None
