(* File-descriptor (resource) types, the ABI-level vocabulary that the
   partial specification (lib/spec) uses to select system calls which
   access namespace-protected resources (paper, section 4.3.1: Syzlang
   resource identifiers such as [sock_unix]). *)

type t =
  | Sock_tcp
  | Sock_udp
  | Sock_packet
  | Sock_rds
  | Sock_sctp
  | Sock_unix
  | Sock_alg
  | Sock_uevent
  | Sock_inet6
  | Procfs_net
  | Procfs_misc
  | Tmpfile
  | Msgqid
  | Token

let to_string = function
  | Sock_tcp -> "sock_tcp"
  | Sock_udp -> "sock_udp"
  | Sock_packet -> "sock_packet"
  | Sock_rds -> "sock_rds"
  | Sock_sctp -> "sock_sctp"
  | Sock_unix -> "sock_unix"
  | Sock_alg -> "sock_alg"
  | Sock_uevent -> "sock_uevent"
  | Sock_inet6 -> "sock_inet6"
  | Procfs_net -> "procfs_net"
  | Procfs_misc -> "procfs_misc"
  | Tmpfile -> "tmpfile"
  | Msgqid -> "msgqid"
  | Token -> "token"

let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp ppf t = Fmt.string ppf (to_string t)

let of_socket_domain d =
  if d = Consts.dom_tcp then Some Sock_tcp
  else if d = Consts.dom_udp then Some Sock_udp
  else if d = Consts.dom_packet then Some Sock_packet
  else if d = Consts.dom_rds then Some Sock_rds
  else if d = Consts.dom_sctp then Some Sock_sctp
  else if d = Consts.dom_unix then Some Sock_unix
  else if d = Consts.dom_alg then Some Sock_alg
  else if d = Consts.dom_uevent then Some Sock_uevent
  else if d = Consts.dom_inet6 then Some Sock_inet6
  else None

let of_path path =
  if String.length path >= 10 && String.equal (String.sub path 0 10) "/proc/net/"
  then Some Procfs_net
  else if String.length path >= 6 && String.equal (String.sub path 0 6) "/proc/"
  then Some Procfs_misc
  else if String.length path >= 5 && String.equal (String.sub path 0 5) "/tmp/"
  then Some Tmpfile
  else None
