(** Test programs: finite sequences of system calls with resource-typed
    arguments — the unit of input that KIT profiles and pairs into test
    cases (paper, section 4.1). *)

type call = {
  sysno : Sysno.t;
  args : Value.t list;
}

type t

val make : call list -> t
val calls : t -> call list
val length : t -> int
val nth : t -> int -> call option

val call_equal : call -> call -> bool
val equal : t -> t -> bool

val pp_call : Format.formatter -> call -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val hash : t -> int
(** A stable digest used to cache per-program artefacts (profiles,
    non-determinism masks) across the pipeline. *)

val result_types : t -> Fdtype.t option array
(** Static resource typing: the fd type produced by each call, by
    abstract interpretation of constant arguments. Entry [i] is [None]
    when call [i] produces no (known) resource. *)

val uses_types : Fdtype.t option array -> call -> Fdtype.t list
(** The fd types consumed by a call, resolved against {!result_types}
    of its program. *)

val remove_call : t -> int -> t
(** [remove_call t i] drops the [i]-th call and remaps resource
    references: references to later calls shift down by one; references
    to the removed call become the invalid fd [-1] (the kernel then
    fails them with [EBADF]). Used by Algorithm 2's RemoveCall. *)

val append : t -> t -> t
(** Concatenate two programs, shifting the second's resource references
    past the first's calls. *)
