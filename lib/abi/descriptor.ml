(* Per-syscall argument descriptions, used by the corpus generator to
   build well-formed random calls and by mutation to vary arguments
   without breaking resource typing. *)

type arg_kind =
  | A_domain                       (* socket domain constant *)
  | A_fd of Fdtype.t list          (* resource of one of these types *)
  | A_port
  | A_label                        (* IPv6 flow label *)
  | A_flags of int list
  | A_path of string list
  | A_name                         (* short identifier-ish string *)
  | A_key                          (* SysV IPC key *)
  | A_uid
  | A_prio
  | A_which                        (* PRIO_PROCESS / PRIO_USER *)
  | A_nbytes
  | A_sysctl of string list
  | A_int_small

type t = {
  sysno : Sysno.t;
  args : arg_kind list;
}

let describe sysno =
  let args =
    match sysno with
    | Sysno.Unshare ->
      [ A_flags
          [ Consts.clone_newnet; Consts.clone_newipc; Consts.clone_newuts;
            Consts.clone_newpid; Consts.clone_newns; Consts.clone_newuser ] ]
    | Sysno.Socket -> [ A_domain ]
    | Sysno.Close -> [ A_fd [] ]
    | Sysno.Bind ->
      [ A_fd [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_rds;
               Fdtype.Sock_sctp; Fdtype.Sock_unix; Fdtype.Sock_inet6 ];
        A_port ]
    | Sysno.Connect ->
      [ A_fd [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_sctp;
               Fdtype.Sock_inet6 ];
        A_port; A_label ]
    | Sysno.Send ->
      [ A_fd [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_sctp;
               Fdtype.Sock_inet6 ];
        A_nbytes; A_label ]
    | Sysno.Flowlabel_request ->
      [ A_fd [ Fdtype.Sock_inet6 ]; A_label; A_flags [ Consts.fl_excl; 0 ] ]
    | Sysno.Get_cookie ->
      [ A_fd [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_packet;
               Fdtype.Sock_inet6; Fdtype.Sock_unix ] ]
    | Sysno.Sctp_assoc -> [ A_fd [ Fdtype.Sock_sctp ] ]
    | Sysno.Alloc_protomem ->
      [ A_fd [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_sctp;
               Fdtype.Sock_inet6 ];
        A_nbytes ]
    | Sysno.Open -> [ A_path Consts.proc_paths ]
    | Sysno.Read -> [ A_fd [ Fdtype.Procfs_net; Fdtype.Procfs_misc; Fdtype.Tmpfile ] ]
    | Sysno.Fstat -> [ A_fd [ Fdtype.Procfs_net; Fdtype.Procfs_misc; Fdtype.Tmpfile ] ]
    | Sysno.Creat -> [ A_path [ "/tmp/kit0"; "/tmp/kit1"; "/tmp/kit2" ] ]
    | Sysno.Io_uring_read -> [ A_path [ "/tmp/kit0"; "/tmp/kit1"; "/tmp/kit2" ] ]
    | Sysno.Msgget -> [ A_key ]
    | Sysno.Msgsnd -> [ A_fd [ Fdtype.Msgqid ]; A_name ]
    | Sysno.Msgrcv -> [ A_fd [ Fdtype.Msgqid ] ]
    | Sysno.Msgctl_stat -> [ A_fd [ Fdtype.Msgqid ] ]
    | Sysno.Setpriority -> [ A_which; A_uid; A_prio ]
    | Sysno.Getpriority -> [ A_which; A_uid ]
    | Sysno.Sethostname -> [ A_name ]
    | Sysno.Gethostname -> []
    | Sysno.Netdev_create -> [ A_name ]
    | Sysno.Uevent_recv -> [ A_fd [ Fdtype.Sock_uevent ] ]
    | Sysno.Ipvs_add_service -> [ A_port ]
    | Sysno.Sysctl_read ->
      [ A_sysctl [ Consts.sysctl_conntrack_max; Consts.sysctl_somaxconn ] ]
    | Sysno.Sysctl_write ->
      [ A_sysctl [ Consts.sysctl_conntrack_max; Consts.sysctl_somaxconn ];
        A_int_small ]
    | Sysno.Conntrack_add -> [ A_port ]
    | Sysno.Sock_diag -> [ A_int_small ]
    | Sysno.Af_alg_bind -> [ A_fd [ Fdtype.Sock_alg ]; A_name ]
    | Sysno.Clock_gettime -> []
    | Sysno.Clock_settime -> [ A_int_small ]
    | Sysno.Getpid -> []
    | Sysno.Token_create -> []
    | Sysno.Token_stat -> [ A_int_small ]
  in
  { sysno; args }

let all = List.map describe Sysno.all

(* Generate a random concrete value for an argument kind. [resolve_fd]
   picks a [Value.Ref] to a previous call producing one of the wanted fd
   types, when available. *)
let random_arg rng ~resolve_fd kind =
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  match kind with
  | A_domain -> Value.Int (pick Consts.domains)
  | A_fd wanted -> (
    match resolve_fd wanted with
    | Some i -> Value.Ref i
    | None -> Value.Int (Random.State.int rng 4))
  | A_port -> Value.Int (1000 + Random.State.int rng 8)
  | A_label -> Value.Int (1 + Random.State.int rng 6)
  | A_flags choices -> Value.Int (pick choices)
  | A_path choices -> Value.Str (pick choices)
  | A_name ->
    Value.Str (Printf.sprintf "n%d" (Random.State.int rng 6))
  | A_key -> Value.Int (100 + Random.State.int rng 4)
  | A_uid -> Value.Int (1000 + Random.State.int rng 2)
  | A_prio -> Value.Int (Random.State.int rng 20 - 10)
  | A_which ->
    Value.Int (if Random.State.bool rng then Consts.prio_user else Consts.prio_process)
  | A_nbytes -> Value.Int (1 + Random.State.int rng 64)
  | A_sysctl choices -> Value.Str (pick choices)
  | A_int_small -> Value.Int (Random.State.int rng 16)
