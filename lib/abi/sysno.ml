(* Syscall identifiers of the model kernel's ABI.

   The set mirrors the slice of the Linux interface that the paper's
   evaluation exercises: namespace management, sockets of the protocols
   involved in the Table 2/3 bugs, procfs, System V IPC, priorities,
   hostname, sysctl, uevents and a couple of deliberately-unprotected
   interfaces that feed the false-positive analysis. *)

type t =
  | Unshare
  | Socket
  | Close
  | Bind
  | Connect
  | Send
  | Flowlabel_request
  | Get_cookie
  | Sctp_assoc
  | Alloc_protomem
  | Open
  | Read
  | Fstat
  | Creat
  | Io_uring_read
  | Msgget
  | Msgsnd
  | Msgrcv
  | Msgctl_stat
  | Setpriority
  | Getpriority
  | Sethostname
  | Gethostname
  | Netdev_create
  | Uevent_recv
  | Ipvs_add_service
  | Sysctl_read
  | Sysctl_write
  | Conntrack_add
  | Sock_diag
  | Af_alg_bind
  | Clock_gettime
  | Clock_settime
  | Getpid
  | Token_create
  | Token_stat

let all =
  [ Unshare; Socket; Close; Bind; Connect; Send; Flowlabel_request;
    Get_cookie; Sctp_assoc; Alloc_protomem; Open; Read; Fstat; Creat;
    Io_uring_read; Msgget; Msgsnd; Msgrcv; Msgctl_stat; Setpriority;
    Getpriority; Sethostname; Gethostname; Netdev_create; Uevent_recv;
    Ipvs_add_service; Sysctl_read; Sysctl_write; Conntrack_add; Sock_diag;
    Af_alg_bind; Clock_gettime; Clock_settime; Getpid; Token_create;
    Token_stat ]

let to_string = function
  | Unshare -> "unshare"
  | Socket -> "socket"
  | Close -> "close"
  | Bind -> "bind"
  | Connect -> "connect"
  | Send -> "send"
  | Flowlabel_request -> "flowlabel_request"
  | Get_cookie -> "get_cookie"
  | Sctp_assoc -> "sctp_assoc"
  | Alloc_protomem -> "alloc_protomem"
  | Open -> "open"
  | Read -> "read"
  | Fstat -> "fstat"
  | Creat -> "creat"
  | Io_uring_read -> "io_uring_read"
  | Msgget -> "msgget"
  | Msgsnd -> "msgsnd"
  | Msgrcv -> "msgrcv"
  | Msgctl_stat -> "msgctl_stat"
  | Setpriority -> "setpriority"
  | Getpriority -> "getpriority"
  | Sethostname -> "sethostname"
  | Gethostname -> "gethostname"
  | Netdev_create -> "netdev_create"
  | Uevent_recv -> "uevent_recv"
  | Ipvs_add_service -> "ipvs_add_service"
  | Sysctl_read -> "sysctl_read"
  | Sysctl_write -> "sysctl_write"
  | Conntrack_add -> "conntrack_add"
  | Sock_diag -> "sock_diag"
  | Af_alg_bind -> "af_alg_bind"
  | Clock_gettime -> "clock_gettime"
  | Clock_settime -> "clock_settime"
  | Getpid -> "getpid"
  | Token_create -> "token_create"
  | Token_stat -> "token_stat"

let of_string s =
  let rec find = function
    | [] -> None
    | n :: rest -> if String.equal (to_string n) s then Some n else find rest
  in
  find all

let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp ppf t = Fmt.string ppf (to_string t)
