(** Per-syscall argument descriptions, used by the corpus generator to
    build well-formed random calls and to mutate arguments without
    breaking resource typing. *)

type arg_kind =
  | A_domain                       (** socket domain constant *)
  | A_fd of Fdtype.t list          (** resource of one of these types *)
  | A_port
  | A_label                        (** IPv6 flow label *)
  | A_flags of int list
  | A_path of string list
  | A_name                         (** short identifier-like string *)
  | A_key                          (** System V IPC key *)
  | A_uid
  | A_prio
  | A_which                        (** PRIO_PROCESS / PRIO_USER *)
  | A_nbytes
  | A_sysctl of string list
  | A_int_small

type t = {
  sysno : Sysno.t;
  args : arg_kind list;
}

val describe : Sysno.t -> t
val all : t list

val random_arg :
  Random.State.t -> resolve_fd:(Fdtype.t list -> int option) -> arg_kind ->
  Value.t
(** Generate a random concrete value for an argument kind. [resolve_fd]
    picks a [Value.Ref] to a previous call producing one of the wanted
    fd types, when available. *)
