(* Corpus generation. The paper seeds KIT with a Syzkaller-generated
   corpus of test programs; here a seeded generator plays that role,
   combining curated per-subsystem seed templates (the equivalent of a
   fuzzer having discovered interesting syscall idioms) with random
   composition and mutation. Fully deterministic for a given seed. *)

let seed_texts =
  [ (* net: packet sockets / ptype *)
    "r0 = socket(3)\nr1 = clock_gettime()";
    "r0 = socket(3)\nr1 = get_cookie(r0)\nr2 = clock_gettime()";
    (* procfs readers; several interleave timing calls, as fuzzer-made
       programs do — the raw material of the non-determinism filter *)
    "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/net/protocols\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/net/ip_vs\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/net/nf_conntrack\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/crypto\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/slabinfo\")\nr1 = read(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/uptime\")\nr1 = read(r0)";
    "r0 = open(\"/proc/net/sockstat\")\nr1 = fstat(r0)\nr2 = clock_gettime()";
    "r0 = open(\"/proc/net/ptype\")\nr1 = fstat(r0)\nr2 = clock_gettime()";
    "r0 = clock_gettime()\nr1 = open(\"/proc/net/ptype\")\nr2 = read(r1)";
    "r0 = open(\"/proc/uptime\")\nr1 = read(r0)\nr2 = open(\"/proc/net/sockstat\")\nr3 = read(r2)";
    (* tcp / proto accounting; the pure-UDP allocator comes first so the
       proto-memory flow's earliest writer does not also perturb the TCP
       socket counters *)
    "r0 = socket(2)\nr1 = alloc_protomem(r0, 16)";
    "r0 = socket(1)\nr1 = clock_gettime()";
    "r0 = socket(1)\nr1 = alloc_protomem(r0, 32)";
    "r0 = socket(1)\nr1 = get_cookie(r0)";
    (* ipv6 flow labels *)
    "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)";
    "r0 = socket(9)\nr1 = send(r0, 8, 2)\nr2 = clock_gettime()";
    "r0 = socket(9)\nr1 = connect(r0, 1000, 2)\nr2 = clock_gettime()";
    "r0 = socket(9)\nr1 = flowlabel_request(r0, 2, 1)\nr2 = send(r0, 8, 2)";
    (* rds *)
    "r0 = socket(4)\nr1 = bind(r0, 1003)\nr2 = clock_gettime()";
    (* sctp *)
    "r0 = socket(5)\nr1 = sctp_assoc(r0)\nr2 = clock_gettime()";
    (* unix + diag *)
    "r0 = socket(6)\nr1 = clock_gettime()";
    "r0 = sock_diag(3)\nr1 = clock_gettime()";
    (* af_alg / crypto *)
    "r0 = socket(7)\nr1 = af_alg_bind(r0, \"cbc\")";
    (* uevents *)
    "r0 = socket(8)\nr1 = uevent_recv(r0)\nr2 = clock_gettime()";
    "r0 = netdev_create(\"veth0\")";
    (* ipvs *)
    "r0 = ipvs_add_service(1080)";
    (* conntrack sysctl *)
    "r0 = sysctl_read(\"net/nf_conntrack_max\")\nr1 = clock_gettime()";
    "r0 = sysctl_write(\"net/nf_conntrack_max\", 9)";
    "r0 = conntrack_add(1001)";
    (* somaxconn: a sysctl the spec correctly leaves unprotected; pairs
       reaching it only diverge on an unprotected call and are removed by
       the resource filter *)
    "r0 = sysctl_write(\"net/somaxconn\", 7)\nr1 = socket(3)";
    "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)\nr2 = sysctl_read(\"net/somaxconn\")\nr3 = clock_gettime()";
    "r0 = sysctl_read(\"net/somaxconn\")\nr1 = open(\"/proc/net/ip_vs\")\nr2 = read(r1)";
    (* sysv ipc *)
    "r0 = msgget(101)\nr1 = msgsnd(r0, \"m0\")\nr2 = clock_gettime()";
    "r0 = msgget(101)\nr1 = msgrcv(r0)\nr2 = clock_gettime()";
    "r0 = msgget(102)\nr1 = msgctl_stat(r0)\nr2 = clock_gettime()";
    (* priorities *)
    "r0 = setpriority(2, 1000, 5)";
    "r0 = getpriority(2, 1000)\nr1 = clock_gettime()";
    (* uts (correctly isolated); the somax companions make the earliest
       hostname flow pair diverge only on an unprotected resource, which
       the resource filter must remove *)
    "r0 = sethostname(\"h0\")\nr1 = sysctl_write(\"net/somaxconn\", 9)";
    "r0 = gethostname()\nr1 = sysctl_read(\"net/somaxconn\")\nr2 = clock_gettime()";
    "r0 = sethostname(\"h1\")";
    "r0 = gethostname()\nr1 = clock_gettime()";
    (* mounts / io_uring *)
    "r0 = creat(\"/tmp/kit0\")";
    "r0 = io_uring_read(\"/tmp/kit0\")\nr1 = clock_gettime()";
    "r0 = open(\"/tmp/kit0\")\nr1 = read(r0)\nr2 = clock_gettime()";
    (* tokens (runtime-id resource, known-bug G) *)
    "r0 = token_create()";
    "r0 = token_stat(7)\nr1 = clock_gettime()";
    (* misc *)
    "r0 = clock_gettime()";
    "r0 = getpid()";
  ]

let seeds = lazy (List.map Syzlang.parse seed_texts)

let max_program_len = 8

(* Pick a [Value.Ref] to a previous call whose static result type is in
   [wanted]; prefers the most recent producer. *)
let resolve_fd_in prefix_types wanted =
  let n = Array.length prefix_types in
  let rec scan i =
    if i < 0 then None
    else
      match prefix_types.(i) with
      | Some ty when wanted = [] || List.exists (Fdtype.equal ty) wanted ->
        Some i
      | Some _ | None -> scan (i - 1)
  in
  scan (n - 1)

let random_call rng prog =
  let open Program in
  let types = result_types (make prog) in
  let sysno = List.nth Sysno.all (Random.State.int rng (List.length Sysno.all)) in
  let desc = Descriptor.describe sysno in
  let resolve_fd wanted = resolve_fd_in types wanted in
  let args = List.map (Descriptor.random_arg rng ~resolve_fd) desc.Descriptor.args in
  { sysno; args }

let random_program rng =
  let len = 1 + Random.State.int rng (max_program_len - 1) in
  let rec build acc n =
    if n = 0 then List.rev acc
    else build (random_call rng (List.rev acc) :: acc) (n - 1)
  in
  Program.make (build [] len)

(* Mutate a program: with equal probability append a random call, tweak a
   random integer argument, or drop the last call. *)
let mutate rng prog =
  let calls = Program.calls prog in
  match Random.State.int rng 3 with
  | 0 ->
    if List.length calls >= max_program_len then prog
    else Program.make (calls @ [ random_call rng calls ])
  | 1 ->
    let n = List.length calls in
    if n = 0 then prog
    else begin
      let target = Random.State.int rng n in
      let tweak_call i (c : Program.call) =
        if i <> target then c
        else
          let tweak_arg = function
            | Value.Int k -> Value.Int (max 0 (k + Random.State.int rng 5 - 2))
            | (Value.Str _ | Value.Ref _) as v -> v
          in
          { c with Program.args = List.map tweak_arg c.Program.args }
      in
      Program.make (List.mapi tweak_call calls)
    end
  | _ -> (
    match List.rev calls with
    | [] -> prog
    | _ :: rest when rest <> [] -> Program.make (List.rev rest)
    | _ :: _ -> prog)

(* Generate a corpus of [size] programs. Roughly: all seeds verbatim,
   then a mix of mutated seeds, seed pairs and random programs. *)
let generate ~seed ~size =
  let rng = Random.State.make [| seed |] in
  let seed_list = Lazy.force seeds in
  let n_seeds = List.length seed_list in
  let pick_seed () = List.nth seed_list (Random.State.int rng n_seeds) in
  let rec fill acc n =
    if n = 0 then acc
    else
      let prog =
        match Random.State.int rng 4 with
        | 0 -> mutate rng (pick_seed ())
        | 1 ->
          let a = pick_seed () and b = pick_seed () in
          let joined = Program.append a b in
          if Program.length joined > max_program_len then a else joined
        | 2 -> mutate rng (mutate rng (pick_seed ()))
        | _ -> random_program rng
      in
      fill (prog :: acc) (n - 1)
  in
  let extra = max 0 (size - n_seeds) in
  let base = if size >= n_seeds then seed_list else List.filteri (fun i _ -> i < size) seed_list in
  List.rev (fill (List.rev base) extra)
