(** File-descriptor (resource) types.

    The ABI-level vocabulary the partial specification uses to select
    system calls that access namespace-protected resources — the
    equivalent of Syzlang resource identifiers such as [sock_unix]
    (paper, section 4.3.1). *)

type t =
  | Sock_tcp
  | Sock_udp
  | Sock_packet
  | Sock_rds
  | Sock_sctp
  | Sock_unix
  | Sock_alg
  | Sock_uevent
  | Sock_inet6
  | Procfs_net   (** files under /proc/net — namespaced *)
  | Procfs_misc  (** other /proc files — mostly global *)
  | Tmpfile      (** files under /tmp — per mount namespace *)
  | Msgqid       (** System V message queue ids *)
  | Token        (** abstract runtime-id resources (known bug G) *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val of_socket_domain : int -> t option
(** The fd type produced by [socket(domain)], if [domain] is valid. *)

val of_path : string -> t option
(** The fd type produced by opening or creating [path], if the model
    filesystem knows the path's area. *)
