(** System call identifiers of the model kernel ABI.

    The set mirrors the slice of the Linux interface that the paper's
    evaluation exercises: namespace management, the socket families
    involved in the Table 2/3 bugs, procfs, System V IPC, priorities,
    hostnames, sysctls, uevents, and a few interfaces that are global by
    design and feed the false-positive analysis. *)

type t =
  | Unshare
  | Socket
  | Close
  | Bind
  | Connect
  | Send
  | Flowlabel_request
  | Get_cookie
  | Sctp_assoc
  | Alloc_protomem
  | Open
  | Read
  | Fstat
  | Creat
  | Io_uring_read
  | Msgget
  | Msgsnd
  | Msgrcv
  | Msgctl_stat
  | Setpriority
  | Getpriority
  | Sethostname
  | Gethostname
  | Netdev_create
  | Uevent_recv
  | Ipvs_add_service
  | Sysctl_read
  | Sysctl_write
  | Conntrack_add
  | Sock_diag
  | Af_alg_bind
  | Clock_gettime
  | Clock_settime
  | Getpid
  | Token_create
  | Token_stat

val all : t list
(** Every system call, in a stable order. *)

val to_string : t -> string
(** The ABI name, e.g. ["flowlabel_request"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] for unknown names. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
