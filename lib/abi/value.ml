(* Syscall argument values.

   [Ref i] denotes the return value of the [i]-th call of the same program
   (a file descriptor or other kernel resource id), mirroring Syzkaller's
   resource arguments. *)

type t =
  | Int of int
  | Str of string
  | Ref of int

let equal a b =
  match a, b with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Ref x, Ref y -> Int.equal x y
  | Int _, (Str _ | Ref _) | Str _, (Int _ | Ref _) | Ref _, (Int _ | Str _)
    -> false

let compare = Stdlib.compare

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "%S" s
  | Ref i -> Fmt.pf ppf "r%d" i

let to_string v = Fmt.str "%a" pp v
