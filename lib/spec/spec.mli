(** The partial specification of namespace-protected resources (paper,
    section 4.3.1), in two encoding formats: file-descriptor type rules
    (a call is selected when it uses or returns a protected fd type) and
    callback checker functions.

    The specification is intentionally partial and incrementally
    refined: {!default} over-approximates /proc files outside /proc/net
    as protected, which is exactly what lets the minor-device-number and
    /proc/crypto false positives through — as the paper observes in
    section 6.4. {!refined} is the spec after that triage. *)

type t = {
  protected_fd_types : Kit_abi.Fdtype.t list;
  checkers : Checker.t list;
  seed_selectors : (Kit_abi.Program.call -> bool) list;
    (** user-highlighted seed calls; every call with an explicit data
        dependency on one is selected (paper, section 5.3) *)
  protected_var_prefixes : string list;
    (** subsystem prefixes of kernel shared variables that hold
        namespace-protected state ("net.", "ipc.", …) — the coverage
        ledger's universe *)
}

val make :
  ?seed_selectors:(Kit_abi.Program.call -> bool) list ->
  ?protected_var_prefixes:string list ->
  protected_fd_types:Kit_abi.Fdtype.t list ->
  checkers:Checker.t list -> unit -> t

val default : t
val refined : t

val fd_type_protected : t -> Kit_abi.Fdtype.t -> bool

val var_protected : t -> string -> bool
(** Is a kernel shared variable (by registration name, e.g.
    ["net.somaxconn"]) namespace-protected state? Prefix match against
    [protected_var_prefixes]. *)

val call_protected :
  t -> Kit_abi.Program.t -> Kit_abi.Fdtype.t option array -> int -> bool
(** Does call [i] access a namespace-protected resource? True when it
    returns or consumes a protected fd type, or a checker selects it.
    The array is [Program.result_types] of the program. *)

val protected_indices : t -> Kit_abi.Program.t -> int list

val with_seed_selector : t -> (Kit_abi.Program.call -> bool) -> t
(** Highlight seed calls: every call with an explicit data dependency on
    a call matching the selector becomes selected, in addition to the
    existing rules. *)

val rule_counts : t -> int * int
(** (fd-type rules, checker functions). *)
