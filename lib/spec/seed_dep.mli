(** Seed-call dependency selection (paper, section 5.3): when the user
    highlights a seed system call, KIT automatically selects every call
    with an explicit data dependency on it. *)

val dependent_indices :
  Kit_abi.Program.t -> seed:(Kit_abi.Program.call -> bool) -> int list
(** Indices of the seed calls plus every call transitively consuming one
    of their results through a resource reference, sorted. *)

val is_dependent :
  Kit_abi.Program.t -> seed:(Kit_abi.Program.call -> bool) -> int -> bool
