(* Callback checker functions (paper, section 4.3.1, first encoding
   format): user-written predicates that select system calls accessing
   namespace-protected resources by inspecting the call signature. *)

module Program = Kit_abi.Program
module Sysno = Kit_abi.Sysno
module Value = Kit_abi.Value
module Consts = Kit_abi.Consts

type t = {
  id : string;
  matches : Program.call -> bool;
}

let make id matches = { id; matches }

let int_arg (call : Program.call) i =
  match List.nth_opt call.Program.args i with
  | Some (Value.Int n) -> Some n
  | Some (Value.Str _ | Value.Ref _) | None -> None

let str_arg (call : Program.call) i =
  match List.nth_opt call.Program.args i with
  | Some (Value.Str s) -> Some s
  | Some (Value.Int _ | Value.Ref _) | None -> None

let is_sys s (call : Program.call) = Sysno.equal call.Program.sysno s

(* --- the checkers of the default specification ------------------------ *)

(* UTS namespace: hostname reads and writes. *)
let hostname =
  make "uts-hostname" (fun c ->
      is_sys Sysno.Gethostname c || is_sys Sysno.Sethostname c)

(* PID/user namespaces: per-user priorities (PRIO_USER only). *)
let prio_user =
  make "prio-user" (fun c ->
      (is_sys Sysno.Getpriority c || is_sys Sysno.Setpriority c)
      && int_arg c 0 = Some Consts.prio_user)

(* net namespace: the conntrack sysctls are namespaced state. *)
let conntrack_sysctl =
  make "conntrack-sysctl" (fun c ->
      (is_sys Sysno.Sysctl_read c || is_sys Sysno.Sysctl_write c)
      && str_arg c 0 = Some Consts.sysctl_conntrack_max)

(* mount namespace: path resolution of non-proc paths. *)
let mount_paths =
  make "mount-paths" (fun c ->
      (is_sys Sysno.Io_uring_read c || is_sys Sysno.Creat c
      || is_sys Sysno.Open c)
      &&
      match str_arg c 0 with
      | Some path ->
        String.length path >= 5 && String.equal (String.sub path 0 5) "/tmp/"
      | None -> false)

(* net namespace: network device registration. *)
let netdev =
  make "netdev" (fun c -> is_sys Sysno.Netdev_create c)

(* net namespace: IPVS service configuration. *)
let ipvs = make "ipvs" (fun c -> is_sys Sysno.Ipvs_add_service c)

(* net namespace: conntrack entries. *)
let conntrack_entries =
  make "conntrack-entries" (fun c -> is_sys Sysno.Conntrack_add c)

let defaults =
  [ hostname; prio_user; conntrack_sysctl; mount_paths; netdev; ipvs;
    conntrack_entries ]
