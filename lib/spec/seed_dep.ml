(* Seed-call dependency selection (paper, section 5.3): when the user
   highlights a seed system call (e.g. open("/proc/net/*", ...)), KIT
   automatically selects every call with an explicit data dependency on
   it, sparing the user from enumerating the dependent calls by hand. *)

module Program = Kit_abi.Program
module Value = Kit_abi.Value

(* Indices of the calls matching [seed], plus every call transitively
   consuming one of their results through a resource reference. Resource
   references point backwards, so a single forward pass computes the
   closure. *)
let dependent_indices prog ~seed =
  let n = Program.length prog in
  let dependent = Array.make (max 1 n) false in
  List.iteri
    (fun i (call : Program.call) ->
      let via_ref =
        List.exists
          (function
            | Value.Ref j -> j >= 0 && j < n && dependent.(j)
            | Value.Int _ | Value.Str _ -> false)
          call.Program.args
      in
      if seed call || via_ref then dependent.(i) <- true)
    (Program.calls prog);
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if dependent.(i) then i :: acc else acc)
  in
  collect (n - 1) []

let is_dependent prog ~seed i =
  List.exists (Int.equal i) (dependent_indices prog ~seed)
