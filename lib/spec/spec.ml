(* The partial specification of namespace-protected resources (paper,
   section 4.3.1). Two encoding formats: file-descriptor type rules (a
   call is selected when it uses or returns a protected fd type) and
   callback checker functions. The specification is intentionally
   *partial* and incrementally refined: the default over-approximates
   /proc files outside /proc/net as protected, which is exactly what lets
   the minor-device-number and /proc/crypto false positives through — as
   observed in the paper's section 6.4. *)

module Program = Kit_abi.Program
module Fdtype = Kit_abi.Fdtype

type t = {
  protected_fd_types : Fdtype.t list;
  checkers : Checker.t list;
  seed_selectors : (Program.call -> bool) list;
  protected_var_prefixes : string list;
}

(* The shared-variable side of the specification: kernel variables whose
   subsystem prefix appears here are the namespace-protected state the
   coverage ledger tracks. Mirrors the fd-type rules above — the listed
   subsystems are exactly the ones a protected fd type or checker can
   reach. Infrastructure state (clock., krng., proc., vfs., slab.) and
   the deliberately-unprotected token subsystem are excluded. *)
let default_var_prefixes =
  [ "nf."; "net."; "sock."; "proto."; "ipv6."; "rds."; "sctp."; "seq.";
    "crypto."; "devid."; "ipvs."; "uevent."; "sched."; "uts."; "ipc.";
    "mnt."; "timens." ]

let make ?(seed_selectors = [])
    ?(protected_var_prefixes = default_var_prefixes) ~protected_fd_types
    ~checkers () =
  { protected_fd_types; checkers; seed_selectors; protected_var_prefixes }

let default =
  {
    protected_fd_types =
      [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_packet; Fdtype.Sock_rds;
        Fdtype.Sock_sctp; Fdtype.Sock_unix; Fdtype.Sock_alg;
        Fdtype.Sock_uevent; Fdtype.Sock_inet6; Fdtype.Procfs_net;
        Fdtype.Msgqid; Fdtype.Tmpfile;
        (* Over-approximation: not everything under /proc outside /proc/net
           is namespaced; kept protected here to mirror the incomplete
           filtering the paper reports (61 FP reports, section 6.4). *)
        Fdtype.Procfs_misc ]
      (* Fdtype.Token deliberately unprotected: its ids are unreachable. *);
    checkers = Checker.defaults;
    seed_selectors = [];
    protected_var_prefixes = default_var_prefixes;
  }

(* A specification refined by dropping Procfs_misc — what a user would do
   after triaging the /proc/crypto false positives. Used by the ablation
   benchmarks. *)
let refined =
  {
    default with
    protected_fd_types =
      List.filter
        (fun ty -> not (Fdtype.equal ty Fdtype.Procfs_misc))
        default.protected_fd_types;
  }

let fd_type_protected t ty = List.exists (Fdtype.equal ty) t.protected_fd_types

(* Is a kernel shared variable namespace-protected state? Matched by
   subsystem prefix of the variable's registration name (e.g.
   "net.somaxconn" under "net."). Drives the coverage ledger universe. *)
let var_protected t name =
  List.exists
    (fun prefix ->
      String.length name >= String.length prefix
      && String.sub name 0 (String.length prefix) = prefix)
    t.protected_var_prefixes

(* Does call [i] of [prog] access a namespace-protected resource? True
   when the call returns or consumes a protected fd type, or when a
   checker selects it. [types] is [Program.result_types prog]. *)
let call_protected t prog types i =
  match Program.nth prog i with
  | None -> false
  | Some call ->
    let returns_protected =
      match types.(i) with
      | Some ty -> fd_type_protected t ty
      | None -> false
    in
    let uses_protected =
      List.exists (fd_type_protected t) (Program.uses_types types call)
    in
    let seed_dependent =
      List.exists
        (fun seed -> Seed_dep.is_dependent prog ~seed i)
        t.seed_selectors
    in
    returns_protected || uses_protected || seed_dependent
    || List.exists (fun c -> c.Checker.matches call) t.checkers

(* The protected call indices of a whole program. *)
let protected_indices t prog =
  let types = Program.result_types prog in
  let n = Program.length prog in
  let rec collect i acc =
    if i >= n then List.rev acc
    else collect (i + 1) (if call_protected t prog types i then i :: acc else acc)
  in
  collect 0 []

(* Highlight seed calls (paper, section 5.3): every call with an
   explicit data dependency on a call matching [seed] becomes selected,
   in addition to the existing rules. *)
let with_seed_selector t seed =
  { t with seed_selectors = seed :: t.seed_selectors }

(* Summary used in documentation/tests: how many rules the spec holds. *)
let rule_counts t =
  (List.length t.protected_fd_types, List.length t.checkers)
