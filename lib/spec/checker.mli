(** Callback checker functions (paper, section 4.3.1, first encoding
    format): predicates selecting system calls that access
    namespace-protected resources by inspecting the call signature. *)

type t = {
  id : string;
  matches : Kit_abi.Program.call -> bool;
}

val make : string -> (Kit_abi.Program.call -> bool) -> t

(** {1 The checkers of the default specification} *)

val hostname : t
val prio_user : t
val conntrack_sysctl : t
val mount_paths : t
val netdev : t
val ipvs : t
val conntrack_entries : t

val defaults : t list
