(** Algorithm 2 of the paper: identify the (sender, receiver) system
    call pairs responsible for a report's functional interference.

    Sender calls are removed one at a time in inverse order;
    interference that disappears is attributed to the removed call,
    paired with the first receiver call it interfered with (later
    receiver divergence is usually a cascade through data
    dependencies). *)

type pair = {
  sender_index : int;           (** index in the original sender program *)
  receiver_index : int;
}

val pp_pair : Format.formatter -> pair -> unit

val culprits :
  test:
    (sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> int list) ->
  sender:Kit_abi.Program.t ->
  receiver:Kit_abi.Program.t ->
  interfered:int list ->
  pair list
(** [test] must return the interfered receiver indices of the (possibly
    modified) test case — {!Kit_exec.Runner.test_interference} glued
    with the filters. *)
