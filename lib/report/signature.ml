(* System call signatures for report aggregation (paper, section 4.4):
   a call is represented by its name and the file descriptors it uses —
   here the producing call of each resource argument plus the selector
   constants that distinguish kernel resources (paths, socket domains,
   sysctl names, priority targets). *)

module Program = Kit_abi.Program
module Sysno = Kit_abi.Sysno
module Value = Kit_abi.Value
module Consts = Kit_abi.Consts

type t = {
  name : string;
  details : string list;
}

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else List.compare String.compare a.details b.details

let equal a b = compare a b = 0

let to_string t =
  match t.details with
  | [] -> t.name
  | ds -> Printf.sprintf "%s[%s]" t.name (String.concat "," ds)

let pp ppf t = Fmt.string ppf (to_string t)

let first_str (call : Program.call) =
  List.find_map
    (function Value.Str s -> Some s | Value.Int _ | Value.Ref _ -> None)
    call.Program.args

let first_int (call : Program.call) =
  List.find_map
    (function Value.Int n -> Some n | Value.Str _ | Value.Ref _ -> None)
    call.Program.args

(* How a producing call is rendered as a descriptor detail. *)
let producer_detail prog j =
  match Program.nth prog j with
  | None -> "r?"
  | Some producer -> (
    let name = Sysno.to_string producer.Program.sysno in
    match producer.Program.sysno with
    | Sysno.Socket -> (
      match first_int producer with
      | Some d -> Consts.domain_name d
      | None -> name)
    | Sysno.Open | Sysno.Creat -> (
      match first_str producer with
      | Some path -> path
      | None -> name)
    | Sysno.Msgget -> "msgqid"
    | Sysno.Unshare | Sysno.Close | Sysno.Bind | Sysno.Connect | Sysno.Send
    | Sysno.Flowlabel_request | Sysno.Get_cookie | Sysno.Sctp_assoc
    | Sysno.Alloc_protomem | Sysno.Read | Sysno.Fstat | Sysno.Io_uring_read
    | Sysno.Msgsnd | Sysno.Msgrcv | Sysno.Msgctl_stat | Sysno.Setpriority
    | Sysno.Getpriority | Sysno.Sethostname | Sysno.Gethostname
    | Sysno.Netdev_create | Sysno.Uevent_recv | Sysno.Ipvs_add_service
    | Sysno.Sysctl_read | Sysno.Sysctl_write | Sysno.Conntrack_add
    | Sysno.Sock_diag | Sysno.Af_alg_bind | Sysno.Clock_gettime
    | Sysno.Clock_settime | Sysno.Getpid | Sysno.Token_create
    | Sysno.Token_stat ->
      name)

(* The signature of call [i] in [prog]. *)
let of_call prog i =
  match Program.nth prog i with
  | None -> { name = "?"; details = [] }
  | Some call ->
    let name = Sysno.to_string call.Program.sysno in
    let own_details =
      match call.Program.sysno with
      | Sysno.Socket -> (
        match first_int call with
        | Some d -> [ Consts.domain_name d ]
        | None -> [])
      | Sysno.Open | Sysno.Creat | Sysno.Io_uring_read | Sysno.Sysctl_read
      | Sysno.Sysctl_write -> (
        match first_str call with Some s -> [ s ] | None -> [])
      | Sysno.Setpriority | Sysno.Getpriority -> (
        match first_int call with
        | Some w when w = Consts.prio_user -> [ "PRIO_USER" ]
        | Some _ -> [ "PRIO_PROCESS" ]
        | None -> [])
      | Sysno.Unshare | Sysno.Close | Sysno.Bind | Sysno.Connect | Sysno.Send
      | Sysno.Flowlabel_request | Sysno.Get_cookie | Sysno.Sctp_assoc
      | Sysno.Alloc_protomem | Sysno.Read | Sysno.Fstat | Sysno.Msgget
      | Sysno.Msgsnd | Sysno.Msgrcv | Sysno.Msgctl_stat | Sysno.Sethostname
      | Sysno.Gethostname | Sysno.Netdev_create | Sysno.Uevent_recv
      | Sysno.Ipvs_add_service | Sysno.Conntrack_add | Sysno.Sock_diag
      | Sysno.Af_alg_bind | Sysno.Clock_gettime | Sysno.Clock_settime
      | Sysno.Getpid | Sysno.Token_create | Sysno.Token_stat ->
        []
    in
    let ref_details =
      List.filter_map
        (function
          | Value.Ref j -> Some (producer_detail prog j)
          | Value.Int _ | Value.Str _ -> None)
        call.Program.args
    in
    { name; details = own_details @ ref_details }
