(** Test report aggregation (paper, section 4.4): reports are grouped by
    the interfered receiver call signature (AGG-R), and within each
    AGG-R group by the culprit sender call signature (AGG-RS). Reports
    caused by the same functional interference land in the same group,
    so users examine one report per AGG-RS group. *)

type keyed = {
  report : Kit_detect.Report.t;
  pairs : Diagnose.pair list;
  sender_sig : Signature.t;
  receiver_sig : Signature.t;
}

val key_report : Kit_detect.Report.t -> Diagnose.pair list -> keyed
(** Key a diagnosed report by its primary culprit pair; reports whose
    diagnosis found no pair fall back to the first interfered receiver
    call with an unknown (["?"]) sender. *)

type group = {
  receiver_sig : Signature.t;
  sender_sig : Signature.t option;    (** [None] for AGG-R groups *)
  members : keyed list;
}

val agg_r : keyed list -> group list
val agg_rs : keyed list -> group list

val pp_group : Format.formatter -> group -> unit
