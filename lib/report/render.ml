(* Human-readable rendering of reports and aggregation groups — what a
   KIT user reads while triaging a campaign. *)

module Program = Kit_abi.Program
module Report = Kit_detect.Report
module Compare = Kit_trace.Compare

let indent prefix text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.length (String.trim l) > 0)
  |> List.map (fun l -> prefix ^ l)
  |> String.concat "\n"

(* One report, with programs, interfered calls and divergences. *)
let report (r : Report.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "=== functional interference report ===\n";
  Buffer.add_string buf "sender program:\n";
  Buffer.add_string buf (indent "  | " (Program.to_string r.Report.sender));
  Buffer.add_string buf "\nreceiver program:\n";
  Buffer.add_string buf (indent "  | " (Program.to_string r.Report.receiver));
  Buffer.add_string buf
    (Printf.sprintf "\ninterfered receiver calls: [%s]\n"
       (String.concat "; " (List.map string_of_int r.Report.interfered)));
  Buffer.add_string buf "divergences (with vs without the sender):\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s\n" (Fmt.str "%a" Compare.pp_diff d)))
    r.Report.diffs;
  Buffer.contents buf

(* A diagnosed report: the culprit pair first, then the detail. *)
let keyed (k : Aggregate.keyed) =
  let header =
    Printf.sprintf "culprit: %s -> %s\n"
      (Signature.to_string k.Aggregate.sender_sig)
      (Signature.to_string k.Aggregate.receiver_sig)
  in
  header ^ report k.Aggregate.report

(* An aggregation group: its key and one representative member (the
   whole point of aggregation is that one member suffices). *)
let group (g : Aggregate.group) =
  let kind = match g.Aggregate.sender_sig with None -> "AGG-R" | Some _ -> "AGG-RS" in
  let key =
    match g.Aggregate.sender_sig with
    | None -> Signature.to_string g.Aggregate.receiver_sig
    | Some s ->
      Printf.sprintf "%s -> %s" (Signature.to_string s)
        (Signature.to_string g.Aggregate.receiver_sig)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s group %s (%d reports)\n" kind key
       (List.length g.Aggregate.members));
  (match g.Aggregate.members with
  | m :: _ ->
    Buffer.add_string buf (indent "  " (keyed m));
    Buffer.add_char buf '\n'
  | [] -> ());
  Buffer.contents buf

let groups gs = String.concat "\n" (List.map group gs)
