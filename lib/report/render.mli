(** Human-readable rendering of reports and aggregation groups — what a
    KIT user reads while triaging a campaign. *)

val report : Kit_detect.Report.t -> string

val keyed : Aggregate.keyed -> string
(** A diagnosed report: culprit pair first, then the detail. *)

val group : Aggregate.group -> string
(** An aggregation group: its key, size and one representative member. *)

val groups : Aggregate.group list -> string
