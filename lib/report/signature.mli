(** System call signatures for report aggregation (paper, section 4.4):
    a call is represented by its name and the file descriptors it uses —
    here the producing call of each resource argument, plus the selector
    constants distinguishing kernel resources (paths, socket domains,
    sysctl names, priority targets). *)

type t = {
  name : string;
  details : string list;
}

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_call : Kit_abi.Program.t -> int -> t
(** The signature of call [i]; a ["?"] signature for out-of-range
    indices. *)
