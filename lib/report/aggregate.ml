(* Test report aggregation (paper, section 4.4): reports are grouped by
   the interfered receiver call signature (AGG-R), and within each AGG-R
   group by the culprit sender call signature (AGG-RS). Reports caused by
   the same functional interference land in the same group, so users
   examine one report per AGG-RS group. *)

type keyed = {
  report : Kit_detect.Report.t;
  pairs : Diagnose.pair list;
  sender_sig : Signature.t;
  receiver_sig : Signature.t;
}

(* Key a diagnosed report by the signatures of its primary culprit pair.
   Reports whose diagnosis found no pair (flaky interference) fall back
   to the first interfered receiver call with an unknown sender. *)
let key_report (report : Kit_detect.Report.t) pairs =
  let sender_sig, receiver_sig =
    match pairs with
    | { Diagnose.sender_index; receiver_index } :: _ ->
      ( Signature.of_call report.Kit_detect.Report.sender sender_index,
        Signature.of_call report.Kit_detect.Report.receiver receiver_index )
    | [] ->
      let r_idx =
        match report.Kit_detect.Report.interfered with i :: _ -> i | [] -> 0
      in
      ( { Signature.name = "?"; details = [] },
        Signature.of_call report.Kit_detect.Report.receiver r_idx )
  in
  { report; pairs; sender_sig; receiver_sig }

type group = {
  receiver_sig : Signature.t;
  sender_sig : Signature.t option;    (* None for AGG-R groups *)
  members : keyed list;
}

let group_by key items =
  let table = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt table k with
      | None ->
        Hashtbl.replace table k [ item ];
        order := k :: !order
      | Some members -> Hashtbl.replace table k (item :: members))
    items;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find table k))) !order

(* AGG-R: group reports by interfered receiver call signature. *)
let agg_r (keyed_reports : keyed list) =
  group_by (fun (k : keyed) -> Signature.to_string k.receiver_sig) keyed_reports
  |> List.map (fun (_, members) ->
         match members with
         | (m : keyed) :: _ ->
           { receiver_sig = m.receiver_sig; sender_sig = None; members }
         | [] -> assert false)

(* AGG-RS: within each AGG-R group, subdivide by culprit sender call. *)
let agg_rs keyed_reports =
  List.concat_map
    (fun rgroup ->
      group_by (fun (k : keyed) -> Signature.to_string k.sender_sig)
        rgroup.members
      |> List.map (fun (_, members) ->
             match members with
             | (m : keyed) :: _ ->
               { receiver_sig = m.receiver_sig;
                 sender_sig = Some m.sender_sig; members }
             | [] -> assert false))
    (agg_r keyed_reports)

let pp_group ppf g =
  let sender =
    match g.sender_sig with
    | None -> "*"
    | Some s -> Signature.to_string s
  in
  Fmt.pf ppf "%s -> %s (%d reports)" sender
    (Signature.to_string g.receiver_sig)
    (List.length g.members)
