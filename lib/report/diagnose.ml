(* Algorithm 2 of the paper: identify the (sender, receiver) system call
   pairs responsible for a report's functional interference.

   Sender calls are removed one at a time in inverse order; interference
   that disappears is attributed to the removed call, paired with the
   *first* receiver call it interfered with (later receiver divergence is
   usually a cascade through data dependencies). *)

module Program = Kit_abi.Program

type pair = {
  sender_index : int;           (* index in the original sender program *)
  receiver_index : int;
}

let pp_pair ppf p =
  Fmt.pf ppf "(s#%d, r#%d)" p.sender_index p.receiver_index

module Int_set = Set.Make (Int)

(* [test ~sender ~receiver] must return the interfered receiver indices
   of the (possibly modified) test case — Runner.test_interference glued
   with the filters. *)
let culprits ~test ~sender ~receiver ~interfered =
  let pairs = ref [] in
  let remaining = ref (Int_set.of_list interfered) in
  let ps = ref sender in
  let n = Program.length sender in
  let i = ref (n - 1) in
  while !i >= 0 && not (Int_set.is_empty !remaining) do
    ps := Program.remove_call !ps !i;
    let interfered' = Int_set.of_list (test ~sender:!ps ~receiver) in
    let delta = Int_set.diff !remaining interfered' in
    if not (Int_set.is_empty delta) then begin
      pairs :=
        { sender_index = !i; receiver_index = Int_set.min_elt delta } :: !pairs;
      remaining := Int_set.diff !remaining delta
    end;
    decr i
  done;
  List.rev !pairs
