(** Candidate functional interference reports: a test case whose
    receiver trace diverged, the diverging receiver call indices that
    survived filtering, and the traces for diagnosis. *)

(** How the divergence was exposed: the paper's sequential
    sender-then-receiver order, or only under interleaved schedules —
    in which case the report carries every reproducing schedule seed
    and the schedule-independent fingerprint that deduplicated them. *)
type origin =
  | Sequential
  | Concurrent of { seeds : int list; fingerprint : int }

type t = {
  testcase : Kit_gen.Testcase.t;
  sender : Kit_abi.Program.t;
  receiver : Kit_abi.Program.t;
  interfered : int list;              (** receiver call indices *)
  diffs : Kit_trace.Compare.diff list;
  trace_a : Kit_trace.Ast.t;
  trace_b : Kit_trace.Ast.t;
  origin : origin;
}

val pp_origin : Format.formatter -> origin -> unit
(** Empty for [Sequential] — sequential rendering is unchanged. *)

val pp : Format.formatter -> t -> unit
