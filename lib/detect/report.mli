(** Candidate functional interference reports: a test case whose
    receiver trace diverged, the diverging receiver call indices that
    survived filtering, and the traces for diagnosis. *)

type t = {
  testcase : Kit_gen.Testcase.t;
  sender : Kit_abi.Program.t;
  receiver : Kit_abi.Program.t;
  interfered : int list;              (** receiver call indices *)
  diffs : Kit_trace.Compare.diff list;
  trace_a : Kit_trace.Ast.t;
  trace_b : Kit_trace.Ast.t;
}

val pp : Format.formatter -> t -> unit
