(* The report filtering funnel (paper, sections 4.3 and 6.4, Table 5):

   1. a test case whose raw traces diverge is an *initial* (candidate)
      report;
   2. if no divergence survives non-determinism masking, the candidate is
      filtered as non-deterministic;
   3. if none of the surviving diverging receiver calls accesses a
      namespace-protected resource, the candidate is filtered by the
      resource specification;
   4. otherwise it becomes a filtered report, restricted to the protected
      diverging calls. *)

module Program = Kit_abi.Program
module Runner = Kit_exec.Runner
module Spec = Kit_spec.Spec

type verdict =
  | No_divergence
  | Filtered_nondet
  | Filtered_resource
  | Reported of Report.t

type funnel = {
  mutable executed : int;
  mutable initial : int;
  mutable after_nondet : int;
  mutable after_resource : int;
}

let funnel_create () =
  { executed = 0; initial = 0; after_nondet = 0; after_resource = 0 }

(* Receiver call indices that access protected resources. *)
let protected_interfered spec receiver interfered =
  let types = Program.result_types receiver in
  List.filter (fun i -> Spec.call_protected spec receiver types i) interfered

let classify spec ~testcase ~sender ~receiver (outcome : Runner.outcome) funnel =
  funnel.executed <- funnel.executed + 1;
  if outcome.Runner.raw_diffs = [] then No_divergence
  else begin
    funnel.initial <- funnel.initial + 1;
    if outcome.Runner.masked_diffs = [] then Filtered_nondet
    else begin
      funnel.after_nondet <- funnel.after_nondet + 1;
      let surviving = protected_interfered spec receiver outcome.Runner.interfered in
      if surviving = [] then Filtered_resource
      else begin
        funnel.after_resource <- funnel.after_resource + 1;
        Reported
          { Report.testcase; sender; receiver; interfered = surviving;
            diffs = outcome.Runner.masked_diffs;
            trace_a = outcome.Runner.trace_a; trace_b = outcome.Runner.trace_b;
            origin = Report.Sequential }
      end
    end
  end

(* Classify one concurrent finding from schedule search. Masking already
   happened inside the search (stage 2 of the funnel), so only the
   resource-specification stage applies here; the sequential funnel's
   counters are deliberately left untouched — Table 5 accounts the
   paper's sequential pipeline, and concurrent totals are reported
   separately by the campaign. *)
let classify_concurrent spec ~testcase ~sender ~receiver ~trace_b
    (c : Runner.concurrent) =
  let surviving = protected_interfered spec receiver c.Runner.cc_interfered in
  if surviving = [] then None
  else
    Some
      { Report.testcase; sender; receiver; interfered = surviving;
        diffs = c.Runner.cc_diffs; trace_a = c.Runner.cc_trace; trace_b;
        origin =
          Report.Concurrent
            { seeds = c.Runner.cc_seeds; fingerprint = c.Runner.cc_fingerprint } }

let pp_funnel ppf f =
  let pct n =
    if f.initial = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int f.initial
  in
  Fmt.pf ppf
    "@[<v>Tests executed            %8d@,\
     Initial reports           %8d  100%%@,\
     After non-det filtering   %8d  %.2f%%@,\
     After non-det + resource  %8d  %.2f%%@]"
    f.executed f.initial f.after_nondet (pct f.after_nondet) f.after_resource
    (pct f.after_resource)
