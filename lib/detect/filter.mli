(** The report filtering funnel (paper, sections 4.3 and 6.4; Table 5):
    raw divergence makes a candidate an {e initial} report; candidates
    whose divergence disappears under non-determinism masking are
    filtered; candidates whose surviving diverging calls never touch a
    protected resource are filtered by the specification; the rest are
    reported, restricted to the protected diverging calls. *)

type verdict =
  | No_divergence
  | Filtered_nondet
  | Filtered_resource
  | Reported of Report.t

type funnel = {
  mutable executed : int;
  mutable initial : int;
  mutable after_nondet : int;
  mutable after_resource : int;
}

val funnel_create : unit -> funnel

val protected_interfered :
  Kit_spec.Spec.t -> Kit_abi.Program.t -> int list -> int list
(** Restrict interfered receiver call indices to protected calls. *)

val classify :
  Kit_spec.Spec.t ->
  testcase:Kit_gen.Testcase.t ->
  sender:Kit_abi.Program.t ->
  receiver:Kit_abi.Program.t ->
  Kit_exec.Runner.outcome -> funnel -> verdict

val classify_concurrent :
  Kit_spec.Spec.t ->
  testcase:Kit_gen.Testcase.t ->
  sender:Kit_abi.Program.t ->
  receiver:Kit_abi.Program.t ->
  trace_b:Kit_trace.Ast.t ->
  Kit_exec.Runner.concurrent -> Report.t option
(** Classify one schedule-search finding: non-determinism masking
    already happened inside the search, so only the resource stage
    applies; [None] when no diverging call touches a protected
    resource. Leaves the sequential funnel untouched (Table 5 accounts
    the sequential pipeline only). *)

val pp_funnel : Format.formatter -> funnel -> unit
(** Renders the Table 5 rows. *)
