(* Candidate functional interference reports: a test case whose receiver
   trace diverged, the diverging receiver call indices that survived
   filtering, and the traces for diagnosis. *)

module Program = Kit_abi.Program
module Compare = Kit_trace.Compare
module Ast = Kit_trace.Ast

type t = {
  testcase : Kit_gen.Testcase.t;
  sender : Program.t;
  receiver : Program.t;
  interfered : int list;              (* receiver call indices *)
  diffs : Compare.diff list;
  trace_a : Ast.t;
  trace_b : Ast.t;
}

let pp ppf t =
  Fmt.pf ppf "@[<v 2>report %a interfered=[%a]@,%a@]" Kit_gen.Testcase.pp
    t.testcase
    (Fmt.list ~sep:(Fmt.any ",") Fmt.int)
    t.interfered
    (Fmt.list ~sep:Fmt.cut Compare.pp_diff)
    t.diffs
