(* Candidate functional interference reports: a test case whose receiver
   trace diverged, the diverging receiver call indices that survived
   filtering, and the traces for diagnosis. *)

module Program = Kit_abi.Program
module Compare = Kit_trace.Compare
module Ast = Kit_trace.Ast

(* How the divergence was exposed. [Sequential] is the paper's
   sender-then-receiver order; [Concurrent] means no sequential order
   shows it — only interleaved schedules do, and the report carries
   every reproducing schedule seed (deduplicated across seeds by the
   schedule-independent diff fingerprint) so any of them replays the
   finding deterministically. *)
type origin =
  | Sequential
  | Concurrent of { seeds : int list; fingerprint : int }

type t = {
  testcase : Kit_gen.Testcase.t;
  sender : Program.t;
  receiver : Program.t;
  interfered : int list;              (* receiver call indices *)
  diffs : Compare.diff list;
  trace_a : Ast.t;
  trace_b : Ast.t;
  origin : origin;
}

let pp_origin ppf = function
  | Sequential -> ()
  | Concurrent { seeds; fingerprint } ->
    Fmt.pf ppf " concurrent fp=%x seeds=[%a]" fingerprint
      (Fmt.list ~sep:(Fmt.any ",") Fmt.int)
      seeds

let pp ppf t =
  Fmt.pf ppf "@[<v 2>report %a interfered=[%a]%a@,%a@]" Kit_gen.Testcase.pp
    t.testcase
    (Fmt.list ~sep:(Fmt.any ",") Fmt.int)
    t.interfered pp_origin t.origin
    (Fmt.list ~sep:Fmt.cut Compare.pp_diff)
    t.diffs
