(** Streaming FNV-1a hashing over native ints — the fast fingerprint
    primitive behind hash-consed trace nodes and testcase fingerprints,
    replacing [Digest.string (Marshal.to_string …)] round trips.

    The state is a plain int; mixing never allocates. Hashes are stable
    within and across processes for the same input sequence (no
    randomisation, no pointer dependence), which is what checkpoint
    fingerprint caches require. *)

type state = int

val init : state
val byte : state -> int -> state
val int : state -> int -> state
val string : state -> string -> state
(** Length-prefixed, so ["ab","c"] and ["a","bc"] hash differently. *)

val to_int : state -> int
(** The state folded to a non-negative int. *)

val to_hex : state -> string
(** 16 lowercase hex digits of the raw state. *)

val hash_string : string -> int
