(* Hash-consed strings. [intern] returns one canonical copy per distinct
   string contents, so equality between two interned strings is almost
   always decided by the runtime's pointer check inside
   [caml_string_equal] — the packed trace AST relies on this to make
   label/value comparison O(1) in practice.

   The pool is per-domain (Domain.DLS), not global-with-a-mutex: every
   decoded trace node interns two strings, and a shared table would
   serialise the multicore execution hot path. Traces are decoded,
   masked and compared within one domain, so per-domain canonical copies
   preserve every pointer-equality fast path that matters; strings that
   cross domains still compare correctly, just byte-by-byte.

   The pool is capped: past [max_pool] distinct strings a lookup miss
   returns its argument uninterned instead of growing the table, so a
   pathological workload degrades to the pre-interning behaviour rather
   than leaking memory. *)

let max_pool = 1 lsl 20

type pool = (string, string * int) Hashtbl.t

let key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

(* Canonical copy plus its content hash (computed once per distinct
   string per domain). *)
let intern_hashed s =
  let pool = Domain.DLS.get key in
  match Hashtbl.find_opt pool s with
  | Some entry -> entry
  | None ->
    let entry = (s, Fnv.hash_string s) in
    if Hashtbl.length pool < max_pool then Hashtbl.add pool s entry;
    entry

let intern s = fst (intern_hashed s)

let pool_size () = Hashtbl.length (Domain.DLS.get key)

(* Canonical decimal strings for small ints — syscall returns, errnos,
   stat fields and line indices are almost always tiny, and this skips
   both the [string_of_int] allocation and the pool lookup. The table is
   immutable after module initialisation, so sharing it across domains
   is safe. *)

let small_lo = -64
let small_hi = 1024

let small =
  Array.init (small_hi - small_lo + 1) (fun i -> string_of_int (i + small_lo))

let string_of_small_int n =
  if n >= small_lo && n <= small_hi then Array.unsafe_get small (n - small_lo)
  else string_of_int n
