(* Packed bitsets over small dense int universes — kernel addresses and
   (sender, receiver) pair indices. One word holds [word_bits] members,
   so intersection and counting run O(words) instead of O(elements)
   with no per-member allocation. Sets grow on [add]; all read
   operations treat bits beyond a set's current capacity as absent. *)

let word_bits = Sys.int_size (* 63 on 64-bit *)

type t = { mutable words : int array }

let create capacity =
  let nwords = max 1 ((max 0 capacity + word_bits - 1) / word_bits) in
  { words = Array.make nwords 0 }

let capacity t = Array.length t.words * word_bits

let ensure t bit =
  let need = (bit / word_bits) + 1 in
  let have = Array.length t.words in
  if need > have then begin
    let words = Array.make (max need (2 * have)) 0 in
    Array.blit t.words 0 words 0 have;
    t.words <- words
  end

let mem t bit =
  if bit < 0 then invalid_arg "Bitset.mem: negative bit";
  let w = bit / word_bits in
  w < Array.length t.words
  && t.words.(w) land (1 lsl (bit mod word_bits)) <> 0

let add t bit =
  if bit < 0 then invalid_arg "Bitset.add: negative bit";
  ensure t bit;
  let w = bit / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (bit mod word_bits))

let remove t bit =
  if bit < 0 then invalid_arg "Bitset.remove: negative bit";
  let w = bit / word_bits in
  if w < Array.length t.words then
    t.words.(w) <- t.words.(w) land lnot (1 lsl (bit mod word_bits))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Byte-table popcount: safe on 63-bit words, no 64-bit mask literals. *)
let pop_table =
  Bytes.init 256 (fun i ->
      let rec count n = if n = 0 then 0 else (n land 1) + count (n lsr 1) in
      Char.chr (count i))

let popcount x =
  let rec go acc x =
    if x = 0 then acc
    else go (acc + Char.code (Bytes.unsafe_get pop_table (x land 0xff))) (x lsr 8)
  in
  go 0 x

let cardinal t =
  Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let inter_count a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let inter a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let words = Array.init n (fun i -> a.words.(i) land b.words.(i)) in
  { words = (if n = 0 then [| 0 |] else words) }

let union a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let n = max la lb in
  let words =
    Array.init n (fun i ->
        (if i < la then a.words.(i) else 0)
        lor (if i < lb then b.words.(i) else 0))
  in
  { words = (if n = 0 then [| 0 |] else words) }

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to word_bits - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * word_bits) + b)
        done)
    t.words

let fold f t acc =
  let acc = ref acc in
  iter (fun bit -> acc := f bit !acc) t;
  !acc

let elements t = List.rev (fold (fun bit acc -> bit :: acc) t [])
