(** Growable packed bitsets over small dense int universes (kernel
    addresses, (sender, receiver) pair indices). Words are native ints,
    so intersection, union and counting are O(words) with no per-member
    allocation. Members must be non-negative; sets grow on {!add}, and
    reads treat bits beyond the current capacity as absent. *)

type t

val create : int -> t
(** [create capacity] — an empty set sized for members [0..capacity-1];
    {!add} grows it beyond that if needed. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
val cardinal : t -> int
val is_empty : t -> bool
val inter_count : t -> t -> int
val inter : t -> t -> t
val union : t -> t -> t

val iter : (int -> unit) -> t -> unit
(** Ascending member order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending member order. *)

val elements : t -> int list
(** Ascending. *)
