(** Per-domain hash-consed strings.

    [intern] returns one canonical copy per distinct string contents
    (within the calling domain), so [String.equal] on two interned
    strings is normally decided by the runtime's pointer fast path.
    Strings interned in different domains still compare correctly —
    only the O(1) shortcut is per-domain. The pool is capped; past the
    cap, strings pass through uninterned. *)

val intern : string -> string

val intern_hashed : string -> string * int
(** The canonical copy and its {!Fnv.hash_string} content hash,
    computed once per distinct string per domain. *)

val pool_size : unit -> int
(** Distinct strings interned by the calling domain. *)

val string_of_small_int : int -> string
(** [string_of_int] through a preallocated table for small values. *)
