(** Resident-set gauges from [/proc/self/status], for the bench JSON.
    Best-effort: both return 0 where procfs is unavailable. *)

val peak_kb : unit -> int
(** VmHWM — the process's peak resident set, in kB. *)

val current_kb : unit -> int
(** VmRSS — the current resident set, in kB. *)
