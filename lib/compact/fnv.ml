(* Streaming FNV-1a folded into OCaml's native int. The state is the
   running hash; bytes, ints and strings mix in without any intermediate
   buffer, which is what lets fingerprints and trace-node content hashes
   avoid the Digest-of-Marshal round trip. The constants are the 64-bit
   FNV prime and a 62-bit truncation of the FNV offset basis (the full
   basis does not fit a native int literal); multiplication wraps
   modulo 2^63, which is exactly the behaviour FNV-1a wants. *)

type state = int

let prime = 0x100000001b3
let init = 0xcbf29ce48422232 (* FNV offset basis, truncated to 60 bits *)

let byte h b = (h lxor (b land 0xff)) * prime

(* Mix a whole int in two 32-bit halves: two multiplies instead of
   eight, plenty for hash-consing and dedup keys. *)
let int h x =
  let h = (h lxor (x land 0xffffffff)) * prime in
  (h lxor ((x asr 32) land 0xffffffff)) * prime

let string h s =
  let n = String.length s in
  let h = ref (int h n) in
  for i = 0 to n - 1 do
    h := byte !h (Char.code (String.unsafe_get s i))
  done;
  !h

let to_int h = h land max_int
let to_hex h = Printf.sprintf "%016Lx" (Int64.of_int h)

let hash_string s = to_int (string init s)
