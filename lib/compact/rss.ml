(* Peak and current resident-set gauges from /proc/self/status, so the
   bench JSON can track memory wins alongside throughput. Returns 0 on
   platforms without procfs rather than failing — the gauge is
   best-effort telemetry, never load-bearing. *)

let field_kb name =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let prefix = name ^ ":" in
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              (* "VmHWM:    12345 kB" — take the digits. *)
              let digits =
                String.to_seq line
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with
              | Some kb -> kb
              | None -> 0
            else scan ()
        in
        scan ())

let peak_kb () = field_kb "VmHWM"
let current_kb () = field_kb "VmRSS"
