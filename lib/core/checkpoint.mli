(** Validated KITCKPT1 checkpoint files.

    Every checkpoint the system writes — campaign execute-phase state,
    process-pool completion logs — goes through this module, which wraps
    the Marshal payload in a header the loader can verify {e before}
    deserialising untrusted bytes: the [KITCKPT1] magic, a [kind] tag
    distinguishing checkpoint families, the payload length and an MD5
    digest. Truncated or bit-flipped files surface as a typed
    {!error.Checkpoint_corrupt} with a message naming the failure,
    never as a raw [Failure] or a segfaulting [Marshal.from_channel].

    Writes are atomic (temp file + rename), so a writer killed
    mid-checkpoint leaves the previous checkpoint intact. *)

val magic : string
(** ["KITCKPT1"] — shared by every checkpoint family; [kind]
    disambiguates. *)

type error =
  | Io of string
      (** the file cannot be opened or read (e.g. does not exist) *)
  | Not_checkpoint of string
      (** the file exists but does not start with the KITCKPT1 magic *)
  | Checkpoint_corrupt of string
      (** magic matched but the rest is unusable: wrong [kind],
          truncated payload, digest mismatch, or undecodable Marshal
          bytes *)

val error_to_string : error -> string

val save : string -> kind:string -> 'a -> unit
(** Atomically write [path]: magic, [kind], payload length, MD5 digest,
    Marshal payload. *)

val load : string -> kind:string -> ('a, error) result
(** Validate and read back a checkpoint written by {!save} with the
    same [kind]. The caller fixes ['a]; as with any Marshal read the
    type must match what was saved — the [kind] tag exists so distinct
    checkpoint families can never be confused for each other. *)
