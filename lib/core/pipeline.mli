(** Typed pipeline stages.

    A stage is a named transformation from one artifact to another.
    Running a stage through an observability bundle wraps the call in a
    ["phase.<name>"] span (annotated with the declared artifact labels),
    sets the volatile ["time.<name>_s"] wall-clock gauge and bumps the
    always-on ["pipeline.<name>_runs"] counter — {!Campaign} drives both
    the batch phases and the streaming pipeline through stages, so the
    two paths share one observability vocabulary. *)

type ('a, 'b) stage

val v :
  ?consumes:string -> ?produces:string -> string -> (Kit_obs.Obs.t -> 'a -> 'b) ->
  ('a, 'b) stage
(** [v name f] declares a stage. [consumes]/[produces] label the input
    and output artifacts (e.g. ["corpus"] → ["accessmap"]); they appear
    as span attributes. *)

val name : ('a, 'b) stage -> string

val run : ?attrs:(string * string) list -> Kit_obs.Obs.t -> ('a, 'b) stage -> 'a -> 'b
(** Run the stage under its span, timing gauge and run counter. *)

val run_timed :
  ?attrs:(string * string) list -> ?elapsed_base:float -> Kit_obs.Obs.t ->
  ('a, 'b) stage -> 'a -> 'b * float
(** Like {!run}, also returning this call's wall-clock seconds.
    [elapsed_base] (default 0) seeds the time gauge, for stages resumed
    from a checkpoint whose earlier chunks ran in another process: the
    gauge reads [elapsed_base +. dt]. *)

val ( >>> ) : ('a, 'b) stage -> ('b, 'c) stage -> ('a, 'c) stage
(** Sequential composition. The composite runs each constituent under
    its own span/gauge/counter. *)
