(* Distributed testing (paper, section 5.2): KIT runs in server/client
   mode, where the server distributes VM snapshots and test cases to
   clients and collects their results. Modelled here as a deterministic
   in-process scheduler: test cases are sharded round-robin over N
   workers, each worker executes its shard in its own supervised
   environment (its own "VM"), and the server merges the funnels and
   reports. Sharding never changes the outcome — only the wall-clock
   parallelism.

   Workers can die: a failure plan kills a worker after it has completed
   a given number of test cases, and the server reshards the dead
   worker's remaining queue round-robin across the survivors — the
   recovery the paper's server mode performs when a client VM stops
   responding. Resharding never changes the merged outcome either
   (property-tested).

   With [~domains:N] the worker pool actually runs in parallel: worker
   [w] is pinned to OCaml domain [w mod domains], every worker keeps its
   own environment and observability bundle (nothing is shared but the
   results array, written at disjoint slots before the joins), and the
   merge iterates in worker order, so the output is structurally
   identical to the sequential schedule. A crashed worker task kills its
   whole domain; [Domain.join] surfaces the exception, the unfinished
   workers of that domain are recorded as dead, and their shards flow
   into the same resharding path as planned failures. *)

module Testcase = Kit_gen.Testcase
module Cluster = Kit_gen.Cluster
module Fault = Kit_kernel.Fault
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Supervisor = Kit_exec.Supervisor
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type worker_result = {
  worker : int;
  assigned : int;                      (* originally sharded cases *)
  completed : int;                     (* executed before dying (if it died) *)
  died : bool;
  executions : int;
  funnel : Filter.funnel;
  reports : Report.t list;
  quarantined : Supervisor.crash list;
  metrics : Metrics.snapshot;          (* this worker's registry, at death
                                          or completion *)
  trace : Tracer.event list;           (* this worker's span events *)
}

type failure = {
  dead_worker : int;
  after : int;                         (* cases completed before death *)
}

type t = {
  workers : worker_result list;
  funnel : Filter.funnel;              (* merged *)
  reports : Report.t list;             (* merged, in test case order *)
  quarantined : Supervisor.crash list; (* merged *)
  total_executions : int;
  resharded : int;                     (* cases inherited from dead workers *)
  metrics : Metrics.snapshot;          (* per-worker registries, merged *)
  trace : Tracer.event list;           (* per-worker rings, interleaved *)
}

(* Round-robin sharding, like the paper's RPC work distribution. *)
let shard ~workers items =
  let buckets = Array.make (max 1 workers) [] in
  List.iteri
    (fun i item ->
      let w = i mod workers in
      buckets.(w) <- item :: buckets.(w))
    items;
  Array.map List.rev buckets

let merge_funnels funnels =
  let merged = Filter.funnel_create () in
  List.iter
    (fun (f : Filter.funnel) ->
      merged.Filter.executed <- merged.Filter.executed + f.Filter.executed;
      merged.Filter.initial <- merged.Filter.initial + f.Filter.initial;
      merged.Filter.after_nondet <-
        merged.Filter.after_nondet + f.Filter.after_nondet;
      merged.Filter.after_resource <-
        merged.Filter.after_resource + f.Filter.after_resource)
    funnels;
  merged

let make_supervisor ~obs options =
  let cfg =
    { Supervisor.default_config with
      Supervisor.fuel = options.Campaign.fuel;
      max_retries = options.Campaign.max_retries }
  in
  Supervisor.create ~cfg ~reruns:options.Campaign.reruns
    ~baseline_cache:options.Campaign.baseline_cache
    ~fault:(Fault.of_schedule options.Campaign.faults)
    ~obs options.Campaign.config

(* Cases arrive as [(case, tc)] pairs — [case] the global representative
   index — and every execution's trace events are stamped with the case
   and worker, so a merged trace joins back to both. *)
let run_case options corpus sup ~worker funnel reports ((case, tc) : int * Testcase.t) =
  let sender = corpus.(tc.Testcase.sender) in
  let receiver = corpus.(tc.Testcase.receiver) in
  let attrs =
    [ ("case", string_of_int case); ("worker", string_of_int worker) ]
  in
  match Supervisor.execute ~attrs sup ~sender ~receiver with
  | Runner.Crashed _ | Runner.Hung -> ()
  | Runner.Completed outcome -> (
    match
      Filter.classify options.Campaign.spec ~testcase:tc ~sender ~receiver
        outcome funnel
    with
    | Filter.Reported r -> reports := r :: !reports
    | Filter.No_divergence | Filter.Filtered_nondet | Filter.Filtered_resource
      ->
      ())

(* Execute one worker's shard in a freshly booted supervised
   environment. [dies_after] kills the worker once it has completed that
   many cases; the unfinished remainder is returned for resharding. *)
let run_worker options corpus ~worker ?dies_after testcases =
  (* Each worker gets a fresh bundle — its own registry, as each client
     VM would report its own telemetry; the server merges snapshots. *)
  let obs = Obs.create () in
  let sup = make_supervisor ~obs options in
  let funnel = Filter.funnel_create () in
  let reports = ref [] in
  let budget =
    match dies_after with Some n -> max 0 n | None -> List.length testcases
  in
  let mine = List.filteri (fun i _ -> i < budget) testcases in
  let leftover = List.filteri (fun i _ -> i >= budget) testcases in
  List.iter (run_case options corpus sup ~worker funnel reports) mine;
  ( { worker; assigned = List.length testcases;
      completed = List.length mine; died = dies_after <> None;
      executions = Supervisor.executions sup; funnel;
      reports = List.rev !reports;
      quarantined = Supervisor.quarantined sup;
      metrics = Obs.snapshot obs;
      trace = Tracer.events obs.Obs.tracer },
    leftover )

let copy_funnel_into (w : worker_result) =
  { Filter.executed = w.funnel.Filter.executed;
    initial = w.funnel.Filter.initial;
    after_nondet = w.funnel.Filter.after_nondet;
    after_resource = w.funnel.Filter.after_resource }

(* A survivor picks up cases inherited from a dead worker, in a second
   supervised environment round (its original VM keeps running; the
   extra queue arrives over RPC afterwards). *)
let run_extra options corpus (w : worker_result) extra =
  if extra = [] then w
  else begin
    let obs = Obs.create () in
    let sup = make_supervisor ~obs options in
    let funnel = copy_funnel_into w in
    let reports = ref (List.rev w.reports) in
    List.iter (run_case options corpus sup ~worker:w.worker funnel reports)
      extra;
    { w with
      assigned = w.assigned + List.length extra;
      completed = w.completed + List.length extra;
      executions = w.executions + Supervisor.executions sup;
      funnel;
      reports = List.rev !reports;
      quarantined = w.quarantined @ Supervisor.quarantined sup;
      metrics = Metrics.merge [ w.metrics; Obs.snapshot obs ];
      (* the inherited queue ran strictly after the original shard *)
      trace = w.trace @ Tracer.events obs.Obs.tracer }
  end

exception Worker_crashed of int

(* A worker whose task never completed (its domain crashed or failed to
   join): everything it was assigned is orphaned, nothing was executed. *)
let dead_result ~worker ~assigned =
  { worker; assigned; completed = 0; died = true; executions = 0;
    funnel = Filter.funnel_create (); reports = []; quarantined = [];
    metrics = []; trace = [] }

(* Run every worker task, sequentially ([domains = 1]) or pinned over a
   domain pool. [slots.(w)] is written by exactly one domain, before any
   join, so the post-join reads are race-free. A slot left [None] means
   the worker's domain crashed before reaching it. *)
let run_pool ~domains ~task n =
  let slots = Array.make n None in
  if domains = 1 then
    for w = 0 to n - 1 do
      match task w with
      | r -> slots.(w) <- Some r
      | exception Worker_crashed _ -> ()
    done
  else begin
    let body d () =
      let w = ref d in
      while !w < n do
        slots.(!w) <- Some (task !w);
        w := !w + domains
      done
    in
    let handles = List.init (min domains n) (fun d -> Domain.spawn (body d)) in
    (* Join everything before re-raising, so no domain outlives the call;
       a simulated worker crash is the expected join failure, anything
       else is a real bug and propagates. *)
    let joined =
      List.map (fun h -> match Domain.join h with
          | () -> Ok ()
          | exception e -> Error e)
        handles
    in
    List.iter
      (function
        | Ok () | Error (Worker_crashed _) -> ()
        | Error e -> raise e)
      joined
  end;
  slots

exception All_workers_dead of (int * Testcase.t) list

(* Distribute the representatives of [generation] over [workers]
   environments and merge the results. [failures] kills workers
   mid-shard; their remaining queues are resharded over the survivors.
   [crashes] kills worker tasks outright (taking their domain with them);
   both feed the same resharding path.

   The server's book of record is a [Jobqueue]: representatives are
   submitted in rep order (job id = global case index), dealt round-robin
   over the worker shards, completed as workers report back, and a dead
   worker's unfinished queue is released and re-dealt over the survivors
   — the same driver loop the forked process pool runs, minus the
   processes. *)
let execute ?(failures = []) ?(domains = 1) ?(crashes = []) options corpus
    (generation : Cluster.result) ~workers =
  let q : (Testcase.t, unit) Jobqueue.t = Jobqueue.create () in
  List.iter
    (fun tc -> ignore (Jobqueue.submit q tc))
    generation.Cluster.reps;
  let shards = Jobqueue.assign_round_robin q ~workers in
  let n = Array.length shards in
  let plan w =
    List.find_opt (fun f -> f.dead_worker = w) failures
    |> Option.map (fun f -> max 0 f.after)
  in
  let task w =
    if List.mem w crashes then raise (Worker_crashed w);
    run_worker options corpus ~worker:w ?dies_after:(plan w) shards.(w)
  in
  let slots = run_pool ~domains:(max 1 domains) ~task n in
  (* Walk slots in worker order, completing executed cases and releasing
     dead workers' queues: results and the orphan queue come out
     deterministic no matter how the domains interleaved. *)
  let results =
    let results = ref [] in
    for w = 0 to n - 1 do
      match slots.(w) with
      | Some (r, _leftover) ->
        List.iteri
          (fun i (id, _) -> if i < r.completed then Jobqueue.complete q id ())
          shards.(w);
        if r.died then ignore (Jobqueue.release q ~worker:w : (int * _) list);
        results := r :: !results
      | None ->
        ignore (Jobqueue.release q ~worker:w : (int * _) list);
        results :=
          dead_result ~worker:w ~assigned:(List.length shards.(w)) :: !results
    done;
    List.rev !results
  in
  let orphans = Jobqueue.unfinished q in
  let survivors = List.filter (fun (w : worker_result) -> not w.died) results in
  if orphans <> [] && survivors = [] then raise (All_workers_dead orphans);
  let results =
    if orphans = [] then results
    else begin
      (* Reshard the orphaned queue round-robin over the survivors; each
         survivor claims its dealt share in submit order. *)
      Jobqueue.deal q orphans
        ~to_:(List.map (fun (w : worker_result) -> w.worker) survivors);
      List.map
        (fun (w : worker_result) ->
          if w.died then w
          else begin
            let rec claim acc =
              match Jobqueue.claim_next q ~worker:w.worker with
              | Some job -> claim (job :: acc)
              | None -> List.rev acc
            in
            let extra = claim [] in
            List.iter (fun (id, _) -> Jobqueue.complete q id ()) extra;
            run_extra options corpus w extra
          end)
        results
    end
  in
  let order (r : Report.t) = r.Report.testcase in
  let reports =
    List.concat_map (fun (w : worker_result) -> w.reports) results
    |> List.sort (fun a b -> Testcase.compare (order a) (order b))
  in
  {
    workers = results;
    funnel = merge_funnels (List.map (fun (w : worker_result) -> w.funnel) results);
    reports;
    quarantined =
      List.concat_map (fun (w : worker_result) -> w.quarantined) results;
    total_executions =
      List.fold_left (fun acc (w : worker_result) -> acc + w.executions) 0 results;
    resharded = Jobqueue.resharded q;
    metrics =
      Metrics.merge (List.map (fun (w : worker_result) -> w.metrics) results);
    trace =
      Tracer.interleave (List.map (fun (w : worker_result) -> w.trace) results);
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>%d workers, %d executions, %d reports, %d quarantined, %d resharded@,%a@]"
    (List.length t.workers) t.total_executions (List.length t.reports)
    (List.length t.quarantined) t.resharded Filter.pp_funnel t.funnel
