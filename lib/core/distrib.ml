(* Distributed testing (paper, section 5.2): KIT runs in server/client
   mode, where the server distributes VM snapshots and test cases to
   clients and collects their results. Modelled here as a deterministic
   in-process scheduler: test cases are sharded round-robin over N
   workers, each worker executes its shard in its own environment (its
   own "VM"), and the server merges the funnels and reports. Sharding
   never changes the outcome — only the wall-clock parallelism. *)

module Testcase = Kit_gen.Testcase
module Cluster = Kit_gen.Cluster
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report

type worker_result = {
  worker : int;
  assigned : int;
  executions : int;
  funnel : Filter.funnel;
  reports : Report.t list;
}

type t = {
  workers : worker_result list;
  funnel : Filter.funnel;              (* merged *)
  reports : Report.t list;             (* merged, in test case order *)
  total_executions : int;
}

(* Round-robin sharding, like the paper's RPC work distribution. *)
let shard ~workers items =
  let buckets = Array.make (max 1 workers) [] in
  List.iteri
    (fun i item ->
      let w = i mod workers in
      buckets.(w) <- item :: buckets.(w))
    items;
  Array.map List.rev buckets

let merge_funnels funnels =
  let merged = Filter.funnel_create () in
  List.iter
    (fun (f : Filter.funnel) ->
      merged.Filter.executed <- merged.Filter.executed + f.Filter.executed;
      merged.Filter.initial <- merged.Filter.initial + f.Filter.initial;
      merged.Filter.after_nondet <-
        merged.Filter.after_nondet + f.Filter.after_nondet;
      merged.Filter.after_resource <-
        merged.Filter.after_resource + f.Filter.after_resource)
    funnels;
  merged

(* Execute one worker's shard in a freshly booted environment. *)
let run_worker options corpus ~worker testcases =
  let env = Env.create options.Campaign.config in
  let runner = Runner.create ~reruns:options.Campaign.reruns env in
  let funnel = Filter.funnel_create () in
  let reports = ref [] in
  List.iter
    (fun (tc : Testcase.t) ->
      let sender = corpus.(tc.Testcase.sender) in
      let receiver = corpus.(tc.Testcase.receiver) in
      let outcome = Runner.execute runner ~sender ~receiver in
      match
        Filter.classify options.Campaign.spec ~testcase:tc ~sender ~receiver
          outcome funnel
      with
      | Filter.Reported r -> reports := r :: !reports
      | Filter.No_divergence | Filter.Filtered_nondet
      | Filter.Filtered_resource ->
        ())
    testcases;
  { worker; assigned = List.length testcases;
    executions = runner.Runner.executions; funnel;
    reports = List.rev !reports }

(* Distribute the representatives of [generation] over [workers]
   environments and merge the results. *)
let execute options corpus (generation : Cluster.result) ~workers =
  let shards = shard ~workers generation.Cluster.reps in
  let results =
    Array.to_list (Array.mapi (fun w shard -> run_worker options corpus ~worker:w shard) shards)
  in
  let order (r : Report.t) = r.Report.testcase in
  let reports =
    List.concat_map (fun (w : worker_result) -> w.reports) results
    |> List.sort (fun a b -> Testcase.compare (order a) (order b))
  in
  {
    workers = results;
    funnel = merge_funnels (List.map (fun (w : worker_result) -> w.funnel) results);
    reports;
    total_executions =
      List.fold_left (fun acc (w : worker_result) -> acc + w.executions) 0 results;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>%d workers, %d executions, %d reports@,%a@]"
    (List.length t.workers) t.total_executions (List.length t.reports)
    Filter.pp_funnel t.funnel
