(* Typed pipeline stages. A stage is a named transformation from one
   artifact to another; running it through a bundle instruments the call
   with a "phase.<name>" span (annotated with the artifact labels), a
   volatile "time.<name>_s" wall-clock gauge and an always-on
   "pipeline.<name>_runs" counter. Campaign drives both its batch phases
   and the streaming pipeline through these stages, so the two paths
   share one observability vocabulary. *)

module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type ('a, 'b) stage = {
  name : string;
  consumes : string;                   (* input artifact label *)
  produces : string;                   (* output artifact label *)
  f : Obs.t -> 'a -> 'b;
}

let v ?(consumes = "") ?(produces = "") name f =
  { name; consumes; produces; f }

let name s = s.name

let stage_attrs s attrs =
  let artifact label value acc =
    if String.equal value "" then acc else (label, value) :: acc
  in
  artifact "consumes" s.consumes (artifact "produces" s.produces attrs)

(* Phase wall times live in the registry as volatile gauges (excluded
   from deterministic snapshots) and are always-on: they are campaign
   accounting, so readers stay populated through a disabled bundle. *)
let time_gauge obs name =
  Metrics.gauge ~volatile:true ~always:true obs.Obs.metrics
    ("time." ^ name ^ "_s")

let runs_counter obs name =
  Metrics.counter ~always:true obs.Obs.metrics ("pipeline." ^ name ^ "_runs")

(* Run a stage: span + cumulative time gauge + run counter. [elapsed_base]
   seeds the gauge for stages resumed from a checkpoint, whose earlier
   chunks ran in another process.

   Wall-clock timing (stages include supervisor backoff and, in a real
   deployment, I/O waits, which CPU time would hide). The span is
   stamped with the same gettimeofday readings the gauge is computed
   from, so a profile over the trace reports exactly the exported
   time.<stage>_s value — the two views of a phase can be cross-checked
   for equality, not just proximity. *)
let run_timed ?(attrs = []) ?(elapsed_base = 0.0) obs stage x =
  let tracer = obs.Obs.tracer in
  let t0 = Unix.gettimeofday () in
  let sp =
    Tracer.span tracer ~attrs:(stage_attrs stage attrs) ~wall:t0
      ("phase." ^ stage.name)
  in
  match stage.f obs x with
  | y ->
    let t1 = Unix.gettimeofday () in
    Tracer.finish tracer ~wall:t1 sp;
    let dt = t1 -. t0 in
    Metrics.inc (runs_counter obs stage.name);
    Metrics.set_gauge (time_gauge obs stage.name) (elapsed_base +. dt);
    (y, dt)
  | exception e ->
    Tracer.finish tracer ~wall:(Unix.gettimeofday ()) sp;
    raise e

let run ?attrs obs stage x = fst (run_timed ?attrs obs stage x)

(* Sequential composition; each constituent stage keeps its own span,
   gauge and counter when the composite runs. *)
let ( >>> ) a b =
  { name = a.name ^ ">" ^ b.name;
    consumes = a.consumes;
    produces = b.produces;
    f = (fun obs x -> run obs b (run obs a x)) }
