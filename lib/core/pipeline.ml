(* Typed pipeline stages. A stage is a named transformation from one
   artifact to another; running it through a bundle instruments the call
   with a "phase.<name>" span (annotated with the artifact labels), a
   volatile "time.<name>_s" wall-clock gauge and an always-on
   "pipeline.<name>_runs" counter. Campaign drives both its batch phases
   and the streaming pipeline through these stages, so the two paths
   share one observability vocabulary. *)

module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type ('a, 'b) stage = {
  name : string;
  consumes : string;                   (* input artifact label *)
  produces : string;                   (* output artifact label *)
  f : Obs.t -> 'a -> 'b;
}

let v ?(consumes = "") ?(produces = "") name f =
  { name; consumes; produces; f }

let name s = s.name

let stage_attrs s attrs =
  let artifact label value acc =
    if String.equal value "" then acc else (label, value) :: acc
  in
  artifact "consumes" s.consumes (artifact "produces" s.produces attrs)

(* Wall-clock timing: stages include supervisor backoff and (in a real
   deployment) I/O waits, which CPU time would hide. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Phase wall times live in the registry as volatile gauges (excluded
   from deterministic snapshots) and are always-on: they are campaign
   accounting, so readers stay populated through a disabled bundle. *)
let time_gauge obs name =
  Metrics.gauge ~volatile:true ~always:true obs.Obs.metrics
    ("time." ^ name ^ "_s")

let runs_counter obs name =
  Metrics.counter ~always:true obs.Obs.metrics ("pipeline." ^ name ^ "_runs")

(* Run a stage: span + cumulative time gauge + run counter. [elapsed_base]
   seeds the gauge for stages resumed from a checkpoint, whose earlier
   chunks ran in another process. *)
let run_timed ?(attrs = []) ?(elapsed_base = 0.0) obs stage x =
  let y, dt =
    Tracer.with_span obs.Obs.tracer ("phase." ^ stage.name)
      ~attrs:(stage_attrs stage attrs)
      (fun () -> timed (fun () -> stage.f obs x))
  in
  Metrics.inc (runs_counter obs stage.name);
  Metrics.set_gauge (time_gauge obs stage.name) (elapsed_base +. dt);
  (y, dt)

let run ?attrs obs stage x = fst (run_timed ?attrs obs stage x)

(* Sequential composition; each constituent stage keeps its own span,
   gauge and counter when the composite runs. *)
let ( >>> ) a b =
  { name = a.name ^ ">" ^ b.name;
    consumes = a.consumes;
    produces = b.produces;
    f = (fun obs x -> run obs b (run obs a x)) }
