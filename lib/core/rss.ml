(* Re-export: the RSS gauge lives in kit_compact; Core keeps the
   [Core.Rss] name bench and telemetry callers use. *)

include Kit_compact.Rss
