(** The end-to-end KIT pipeline (paper, Figure 3): corpus → profiling →
    data-flow test case generation and clustering → two-phase execution
    → divergence detection and filtering → diagnosis (Algorithm 2) →
    report aggregation. Fully deterministic for a given seed. *)

type options = {
  config : Kit_kernel.Config.t;
  spec : Kit_spec.Spec.t;
  corpus_size : int;
  seed : int;
  strategy : Kit_gen.Cluster.strategy;
  reruns : int;                    (** non-determinism re-executions *)
  diagnose : bool;                 (** run Algorithm 2 + aggregation *)
}

val default_options : options

type timings = {
  profile_s : float;
  generate_s : float;
  execute_s : float;
  diagnose_s : float;
}

type t = {
  options : options;
  corpus : Kit_abi.Program.t array;
  generation : Kit_gen.Cluster.result;
  df_total : int;                  (** unclustered data-flow count *)
  funnel : Kit_detect.Filter.funnel;
  reports : Kit_detect.Report.t list;
  keyed : Kit_report.Aggregate.keyed list;
  agg_r : Kit_report.Aggregate.group list;
  agg_rs : Kit_report.Aggregate.group list;
  executions : int;
  timings : timings;
}

type prepared
(** Corpus + profiles + access map, shareable across strategies
    (Table 4 runs the same inputs through each strategy). *)

val prepare : options -> prepared

val execute_prepared : ?strategy:Kit_gen.Cluster.strategy -> prepared -> t

val run : options -> t
(** [run options] = [execute_prepared (prepare options)]. *)
