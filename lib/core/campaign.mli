(** The end-to-end KIT pipeline (paper, Figure 3): corpus → profiling →
    data-flow test case generation and clustering → two-phase execution
    → divergence detection and filtering → diagnosis (Algorithm 2) →
    report aggregation. Fully deterministic for a given seed.

    Execution runs under the supervised runtime: crashes and hangs are
    retried and quarantined rather than killing the campaign, and the
    execute phase checkpoints so interrupted campaigns resume without
    re-execution.

    The pipeline comes in two shapes built from the same {!Pipeline}
    stages and the same per-case executor: the batch path ({!run}) and
    the streaming path ({!stream}/{!extend}), which profiles one program
    at a time, folds it into the online cluster table and executes
    newly-sealed representatives immediately. Both produce structurally
    identical reports, funnel, quarantine and [df_total]
    (property-tested). *)

type options = {
  config : Kit_kernel.Config.t;
  spec : Kit_spec.Spec.t;
  corpus_size : int;
  seed : int;
  strategy : Kit_gen.Cluster.strategy;
  reruns : int;                    (** non-determinism re-executions *)
  diagnose : bool;                 (** run Algorithm 2 + aggregation *)
  faults : Kit_kernel.Fault.schedule;  (** injected fault schedule *)
  fuel : int;                      (** per-execution step budget *)
  max_retries : int;               (** supervisor retry budget per case *)
  baseline_cache : bool;
  (** memoize receiver-solo baseline traces per receiver program
      (default [true]); never changes reports, funnel or quarantine
      (property-tested), only the execution count *)
  domains : int;
  (** execute-phase parallelism (default 1 = sequential). Each chunk is
      dealt round-robin over this many OCaml domains, one isolated
      supervised environment per domain, and merged back in
      representative order: reports, funnel and quarantine are
      structurally identical to the sequential schedule
      (property-tested). With [domains > 1], {!t.sup_stats} and
      {!t.fault_counters} describe only the diagnosis environment — the
      per-domain supervision counters live in the bundle's metrics,
      folded in with {!Kit_obs.Metrics.absorb}. *)
  schedules : int;
  (** interleaved schedule seeds searched per completed test case
      (default 1 = sequential only). With [schedules > 1] each completed
      case additionally runs {!Kit_exec.Supervisor.search_schedules}:
      seeds [0..schedules-1] are partitioned into POR equivalence
      classes over the pair's conflicting accesses and one
      representative per non-sequential class executes interleaved.
      Divergences that survive masking and the resource specification
      become {!t.concurrent} reports, deduplicated by
      schedule-independent diff fingerprint; the sequential funnel,
      reports and diagnosis are untouched. *)
  obs : Kit_obs.Obs.t option;
  (** observability bundle shared with the supervisor and runners;
      [None] (the default) gives each campaign a fresh private bundle,
      so phase timings are recorded either way. Observability never
      changes campaign outcomes (property-tested). *)
}

val default_options : options

(** Schedule-search accounting, accumulated across the campaign's cases
    like the funnel; all zeros when [options.schedules = 1]. *)
type sched_stats = {
  mutable sched_candidates : int;  (** completed cases searched *)
  mutable sched_classes : int;     (** POR equivalence classes *)
  mutable sched_executed : int;    (** class representatives run *)
  mutable sched_pruned : int;      (** seeds never executed *)
  mutable sched_skipped : int;     (** searches/reps lost to crashes *)
}

val sched_create : unit -> sched_stats

val add_sched : sched_stats -> sched_stats -> unit
(** [add_sched acc s] folds [s] into [acc] — how per-case and
    per-worker schedule-search totals aggregate. *)

(** Funnel attrition accounting: every generated data-flow case is
    charged to exactly one terminal stage (see {!attrition_balanced}),
    so a case that disappears anywhere in the pipeline is visible here
    with its drop reason. The quarantine stages count {e cases} whose
    execution died; the campaign quarantine list counts crash reports,
    which can exceed this when schedule search crashes after a
    completed sequential run. *)
type attrition = {
  mutable at_generated : int;       (** unclustered data-flow cases *)
  mutable at_absorbed : int;        (** clustered into a representative *)
  mutable at_quar_panic : int;      (** executed rep panicked the kernel *)
  mutable at_quar_hung : int;       (** executed rep hung forever *)
  mutable at_quar_lost : int;       (** execution environment died *)
  mutable at_no_divergence : int;   (** executed, traces identical *)
  mutable at_filtered_nondet : int; (** dropped by the rerun filter *)
  mutable at_filtered_resource : int;  (** dropped by the resource filter *)
  mutable at_reported : int;        (** survived the whole funnel *)
}

val attrition_create : unit -> attrition

val attrition_balanced : attrition -> bool
(** [at_generated = at_absorbed + Σ terminal stages] — holds for every
    finished campaign by construction (property-tested). *)

(** Phase wall-clock timings. Thin reads over the bundle's volatile
    ["time.*"] gauges — the registry is the source of truth. *)
type timings = {
  profile_s : float;
  generate_s : float;
  execute_s : float;
  diagnose_s : float;
}

type t = {
  options : options;
  corpus : Kit_abi.Program.t array;
  generation : Kit_gen.Cluster.result;
  df_total : int;
  (** unclustered data-flow count, read from
      [generation.Cluster.df_total] (no second map scan) *)
  funnel : Kit_detect.Filter.funnel;
  reports : Kit_detect.Report.t list;
  concurrent : Kit_detect.Report.t list;
  (** schedule-search findings ([Report.origin = Concurrent]), in
      representative order; kept out of the sequential funnel and out of
      Algorithm 2 diagnosis (which re-tests sequentially — meaningless
      for a schedule-dependent divergence). Always [[]] when
      [options.schedules = 1]. *)
  sched : sched_stats;
  (** schedule-search totals; all zeros when [options.schedules = 1] *)
  quarantined : Kit_exec.Supervisor.crash list;
  (** test cases that kept killing the kernel, as crash reports *)
  keyed : Kit_report.Aggregate.keyed list;
  agg_r : Kit_report.Aggregate.group list;
  agg_rs : Kit_report.Aggregate.group list;
  executions : int;
  sup_stats : Kit_exec.Supervisor.stats;
  fault_counters : Kit_kernel.Fault.counters;
  timings : timings;
  obs : Kit_obs.Obs.t;
  (** the resolved bundle: ["campaign.*"] funnel/cluster counters,
      ["phase.*"] spans, ["sup.*"] supervision counters and ["exec.*"]
      execution counters, ready for {!Kit_obs.Obs.export_lines} *)
  coverage : Kit_obs.Coverage.t;
  (** the campaign coverage ledger: one per-variable state machine for
      every instrumented, spec-protected shared variable — touched
      (raw profiling), written/read (access-map universes), paired
      (overlapping write/read observed) and attributed (pinned by a
      report's data flow). Deterministic for a given seed: byte-stable
      across [domains], process pools and checkpoint schedules.
      Summaries mirror into always-on ["campaign.cov_*"] counters. *)
  attrition : attrition;
  (** funnel attrition totals; {!attrition_balanced} always holds.
      Mirrors into always-on ["campaign.attr_*"] counters. *)
}

type prepared
(** Corpus + profiles + access map, shareable across strategies
    (Table 4 runs the same inputs through each strategy). *)

val prepare : options -> prepared

val prepared_corpus : prepared -> Kit_abi.Program.t array
(** The generated corpus, for external execution drivers that need the
    program array itself (pool context registration,
    {!lost_case_result}). *)

(** {2 Checkpointing}

    The execute phase — the long-running part of a campaign — can pause
    after any number of cluster representatives and resume later, even
    in a fresh process: the checkpoint value carries the funnel, the
    accumulated reports and quarantine, the coverage-ledger delta and
    attrition counts, and an options fingerprint that resume validates.
    Chunked execution is outcome-equivalent to a straight-through run
    (property-tested), and ledger state is monotone across resumes:
    re-preparation re-marks the profiling rungs and the absorbed delta
    restores attribution. *)

type checkpoint

val checkpoint_progress : checkpoint -> int * int
(** [(completed, total)] cluster representatives. *)

val checkpoint_reports : checkpoint -> int
(** Reports accumulated so far — lets callers poll chunked execution for
    time-to-first-report without finishing the phase. *)

val save_checkpoint : string -> checkpoint -> unit
(** Write a checkpoint file in the validated KITCKPT1 container
    ({!Checkpoint}): magic, kind tag, payload length and digest. *)

val load_checkpoint : string -> (checkpoint, Checkpoint.error) result
(** Validate and load a checkpoint. Magic, kind, length and digest are
    checked before any byte is deserialised; truncation or corruption
    comes back as {!Checkpoint.error.Checkpoint_corrupt}, never a raw
    [Failure] or a crash inside [Marshal]. *)

val execute_partial :
  ?strategy:Kit_gen.Cluster.strategy -> ?resume:checkpoint -> budget:int ->
  prepared -> [ `Done of t | `Paused of checkpoint ]
(** Execute up to [budget] more cluster representatives, starting from
    [resume] if given (its strategy is used unless [strategy] overrides;
    seed, corpus size and cluster count must match, or the call raises
    [Invalid_argument]). Each call boots a fresh supervised environment,
    like a campaign process restarted after an interrupt. *)

val execute_prepared :
  ?strategy:Kit_gen.Cluster.strategy -> ?resume:checkpoint -> prepared -> t

val run : options -> t
(** [run options] = [execute_prepared (prepare options)]. *)

(** {2 Per-case execution — the driver seam}

    The building blocks external execution drivers (the forked process
    pool in [kit.serve], remote executors) are written against. Every
    built-in path — sequential, domain-parallel, streaming — runs each
    cluster representative through the same {!exec_case} and folds the
    resulting {!case_result}s in representative order, which is what
    makes alternative schedules outcome-equivalent. *)

(** One executed cluster representative, self-contained: classification
    is order-free, so results can be produced under any schedule and
    folded back in representative order. *)
type case_result = {
  cr_tc : Kit_gen.Testcase.t;
  cr_funnel : Kit_detect.Filter.funnel;
      (** this case's funnel increments *)
  cr_report : Kit_detect.Report.t option;
  cr_concurrent : Kit_detect.Report.t list;
      (** this case's schedule-search findings *)
  cr_sched : sched_stats;
      (** this case's schedule-search accounting *)
  cr_crashes : Kit_exec.Supervisor.crash list;
      (** quarantined by this case *)
}

val supervisor : obs:Kit_obs.Obs.t -> options -> Kit_exec.Supervisor.t
(** Boot the supervised execution environment the built-in paths use
    (fuel, retry budget, fault schedule and baseline cache from
    [options]). *)

val exec_case :
  ?attrs:(string * string) list ->
  options -> Kit_abi.Program.t array -> Kit_exec.Supervisor.t ->
  Kit_gen.Testcase.t -> case_result
(** Execute one cluster representative under supervision. [attrs] are
    correlation attributes stamped on the execution's trace events.
    @raise Kit_exec.Supervisor.Gave_up on permanent infrastructure
    faults — drivers absorb it at their chunk boundary. *)

val lost_case_result :
  ?attempts:int ->
  Kit_abi.Program.t array -> why:string -> Kit_gen.Testcase.t -> case_result
(** The quarantined crash report for a case whose execution environment
    died under it ([Worker_lost]) — what drivers convert un-runnable
    cases into instead of aborting. *)

type executor =
  options -> Kit_abi.Program.t array -> Kit_gen.Cluster.result ->
  case_result list * int
(** An execute-phase replacement: given the prepared corpus and the
    generated clusters, return per-representative case results in
    representative order plus the total execution count. *)

val run_with_executor : executor:executor -> options -> t
(** A full campaign — prepare, generate, execute, diagnose, aggregate —
    with the execute phase delegated to [executor]. Used by
    [kit campaign --procs N] to run execution on the forked process
    pool while diagnosis and reporting stay in-process. *)

val generate_prepared :
  ?strategy:Kit_gen.Cluster.strategy -> prepared -> Kit_gen.Cluster.result
(** The generate phase alone (clusters + representatives from the
    prepared access map, with the usual phase span and counters).
    {!run_with_executor} is [prepare] → [generate_prepared] → executor →
    {!assemble}; asynchronous drivers like the serve scheduler call the
    pieces separately so many tenants' representatives can interleave on
    one shared pool. *)

val assemble :
  ?execute_s:float ->
  prepared -> Kit_gen.Cluster.result -> case_result list ->
  executions:int -> t
(** Fold per-case results (in representative order, one per
    representative of the generation) into a finished campaign:
    funnel/report/quarantine accumulation, diagnosis on a fresh
    sequential environment, aggregation — the back half of
    {!run_with_executor}. *)

(** {2 Streaming campaigns}

    Execute-while-generate: {!stream} profiles one program at a time,
    folds it into the online cluster table
    ({!Kit_gen.Cluster.start}/[feed]) and executes newly-sealed cluster
    representatives immediately — no global clustering barrier, so the
    first report lands while most of the corpus is still unprofiled.
    {!stream_result} assembles a campaign result structurally identical
    to the batch {!run} of the same options (property-tested; execution
    counts and wall-clock shape differ).

    {!extend} grows the corpus of a live stream by [add] programs and
    re-executes only clusters that are new or whose representative
    changed — a delta campaign. Corpus generation is prefix-stable, so
    the grown corpus extends the original and cached per-cluster
    execution and diagnosis results stay valid for untouched clusters. *)

type stream

type stream_stats = {
  fed : int;                       (** programs folded so far *)
  live_clusters : int;
  executed_cases : int;            (** rep executions incl. re-runs *)
  reexecuted : int;                (** representative-change re-runs *)
  first_report_s : float option;
  (** wall-clock seconds from stream creation to the first report *)
  peak_feed_pairs : int;
  (** largest per-feed working set
      ({!Kit_gen.Cluster.peak_feed_pairs}) — the streaming counterpart
      of the batch pass's [df_total]-sized sweep *)
}

val stream : options -> stream
(** Profile, cluster and execute [options.corpus_size] programs
    incrementally. Returns once the corpus is folded; call
    {!stream_result} for the assembled campaign. *)

val stream_stats : stream -> stream_stats

val stream_result : stream -> t
(** Assemble the campaign result from the per-cluster caches: drains the
    cluster state, orders cached case results in batch representative
    order and diagnoses any reported cluster not already in the keyed
    cache. Idempotent; the stream stays live for {!extend}. *)

val extend : stream -> add:int -> t
(** [extend s ~add] grows the corpus by [add] programs, re-executes only
    new and representative-changed clusters, and returns the assembled
    result for the grown corpus — identical to a from-scratch campaign
    of the final corpus size, with strictly fewer delta executions
    (property-tested). *)
