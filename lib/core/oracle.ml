(* Ground-truth attribution of diagnosed reports. The paper's authors
   triage AGG-RS groups by hand (30 person-hours, section 6.4); the
   reproduction needs an executable oracle to fill Tables 2/4/6, mapping
   each culprit (sender, receiver) signature pair onto the bug it
   witnesses, a known false-positive class, or "under investigation". *)

module Bugs = Kit_kernel.Bugs
module Consts = Kit_abi.Consts
module Signature = Kit_report.Signature
module Aggregate = Kit_report.Aggregate

type attribution =
  | Bug of Bugs.id
  | False_positive of string     (* FP class label *)
  | Under_investigation

let attribution_to_string = function
  | Bug b -> Bugs.to_string b
  | False_positive cls -> "FP:" ^ cls
  | Under_investigation -> "UI"

let equal_attribution a b =
  match a, b with
  | Bug x, Bug y -> Bugs.equal x y
  | False_positive x, False_positive y -> String.equal x y
  | Under_investigation, Under_investigation -> true
  | Bug _, (False_positive _ | Under_investigation)
  | False_positive _, (Bug _ | Under_investigation)
  | Under_investigation, (Bug _ | False_positive _) ->
    false

let has_detail (s : Signature.t) d = List.exists (String.equal d) s.Signature.details
let named (s : Signature.t) n = String.equal s.Signature.name n

(* Attribute one diagnosed report by its culprit pair signatures. *)
let attribute ~(sender : Signature.t) ~(receiver : Signature.t) =
  let reads path = named receiver "read" && has_detail receiver path in
  if named receiver "fstat" then False_positive "minor-dev"
  else if reads Consts.proc_crypto then False_positive "crypto"
  else if named receiver "af_alg_bind" then False_positive "crypto"
  else if reads Consts.proc_slabinfo then Under_investigation
  else if reads Consts.proc_net_ptype then
    if named sender "socket" && has_detail sender "AF_PACKET" then
      Bug Bugs.B1_ptype_leak
    else if named sender "close" && has_detail sender "AF_PACKET" then
      Bug Bugs.B1_ptype_leak
    else Under_investigation
  else if named receiver "send" && named sender "flowlabel_request" then
    Bug Bugs.B2_flowlabel_send
  else if named receiver "connect" && named sender "flowlabel_request" then
    Bug Bugs.B4_flowlabel_connect
  else if
    named receiver "bind" && has_detail receiver "AF_RDS"
    && named sender "bind" && has_detail sender "AF_RDS"
  then Bug Bugs.B3_rds_bind
  else if reads Consts.proc_net_sockstat then begin
    if named sender "alloc_protomem" then Bug Bugs.B8_protomem_sockstat
    else if
      (named sender "socket" || named sender "close")
      && has_detail sender "AF_INET_TCP"
    then Bug Bugs.B5_sockstat_tcp
    else Under_investigation
  end
  else if reads Consts.proc_net_protocols then
    if named sender "alloc_protomem" then Bug Bugs.B9_protomem_protocols
    else Under_investigation
  else if named receiver "get_cookie" && named sender "get_cookie" then
    Bug Bugs.B6_cookie
  else if named receiver "sctp_assoc" && named sender "sctp_assoc" then
    Bug Bugs.B7_sctp_assoc
  else if
    named receiver "getpriority" && has_detail receiver "PRIO_USER"
    && named sender "setpriority"
  then Bug Bugs.KA_prio_user
  else if named receiver "uevent_recv" && named sender "netdev_create" then
    Bug Bugs.KB_uevent
  else if reads Consts.proc_net_ip_vs && named sender "ipvs_add_service" then
    Bug Bugs.KC_ipvs
  else if
    named receiver "sysctl_read" && has_detail receiver Consts.sysctl_conntrack_max
    && named sender "sysctl_write"
  then Bug Bugs.KD_conntrack_max
  else if named receiver "io_uring_read" && named sender "creat" then
    Bug Bugs.KE_iouring_mount
  else Under_investigation

let attribute_keyed (k : Aggregate.keyed) =
  attribute ~sender:k.Aggregate.sender_sig ~receiver:k.Aggregate.receiver_sig

(* The set of *new* bugs (Table 2 universe) witnessed by a report list. *)
let new_bugs_found keyed_reports =
  let found =
    List.filter_map
      (fun k ->
        match attribute_keyed k with
        | Bug b when List.exists (Bugs.equal b) Bugs.new_bugs -> Some b
        | Bug _ | False_positive _ | Under_investigation -> None)
      keyed_reports
  in
  List.sort_uniq Bugs.compare found

(* -- concurrent (schedule-search) reports ---------------------------------

   Concurrent reports never go through Algorithm 2 diagnosis (re-testing
   a schedule-dependent divergence sequentially is meaningless), so
   there is no culprit signature pair to attribute by. Attribution reads
   the report directly: the syscall composition of the pair plus the
   diff content identifies each seeded race-window bug. *)

module Program = Kit_abi.Program
module Sysno = Kit_abi.Sysno
module Report = Kit_detect.Report
module Compare = Kit_trace.Compare

let has_call prog sysno =
  List.exists
    (fun (c : Program.call) -> Sysno.equal c.Program.sysno sysno)
    (Program.calls prog)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  || (nn <= nh
      && Seq.exists
           (fun i -> String.equal (String.sub hay i nn) needle)
           (Seq.init (nh - nn + 1) Fun.id))

let diff_mentions (r : Report.t) needle =
  List.exists
    (fun (d : Compare.diff) ->
      contains d.Compare.left.Kit_trace.Ast.value needle
      || contains d.Compare.right.Kit_trace.Ast.value needle
      || List.exists (fun p -> contains p needle) d.Compare.path)
    r.Report.diffs

(* A child-count diff reports only the parent node, so a leaf the
   interleaved trace *gained* never shows up in the diff values — scan
   the trace itself for those markers. *)
let rec trace_mentions (t : Kit_trace.Ast.t) needle =
  contains t.Kit_trace.Ast.value needle
  || List.exists (fun c -> trace_mentions c needle) t.Kit_trace.Ast.children

let gained (r : Report.t) needle =
  trace_mentions r.Report.trace_a needle
  && not (trace_mentions r.Report.trace_b needle)

let opens_path prog path =
  List.exists
    (fun (c : Program.call) ->
      Sysno.equal c.Program.sysno Sysno.Open
      && List.exists
           (function Kit_abi.Value.Str s -> String.equal s path | _ -> false)
           c.Program.args)
    (Program.calls prog)

let attribute_concurrent (r : Report.t) =
  let sender = r.Report.sender and receiver = r.Report.receiver in
  if gained r "seq_file: truncated" then Bug Bugs.RW3_seqfile_busy
  else if has_call sender Sysno.Get_cookie && has_call receiver Sysno.Get_cookie
  then Bug Bugs.RW2_cookie_window
  else if
    has_call sender Sysno.Alloc_protomem
    && opens_path receiver Consts.proc_net_sockstat
    && diff_mentions r "mem"
  then Bug Bugs.RW1_protomem_inflight
  else Under_investigation

(* The set of seeded race-window bugs witnessed by a concurrent report
   list (the CI e2e gate asserts all of them within a fixed schedule
   budget). *)
let race_bugs_found concurrent_reports =
  let found =
    List.filter_map
      (fun r ->
        match attribute_concurrent r with
        | Bug b when List.exists (Bugs.equal b) Bugs.race_bugs -> Some b
        | Bug _ | False_positive _ | Under_investigation -> None)
      concurrent_reports
  in
  List.sort_uniq Bugs.compare found
