(** Distributed testing (paper, section 5.2): the server/client mode,
    modelled as a deterministic in-process scheduler. Test cases are
    sharded round-robin over N workers, each with its own execution
    environment (its own "VM"); the server merges funnels and reports.
    Sharding never changes the outcome — only wall-clock parallelism. *)

type worker_result = {
  worker : int;
  assigned : int;
  executions : int;
  funnel : Kit_detect.Filter.funnel;
  reports : Kit_detect.Report.t list;
}

type t = {
  workers : worker_result list;
  funnel : Kit_detect.Filter.funnel;       (** merged *)
  reports : Kit_detect.Report.t list;      (** merged, in test-case order *)
  total_executions : int;
}

val shard : workers:int -> 'a list -> 'a list array

val execute :
  Campaign.options -> Kit_abi.Program.t array -> Kit_gen.Cluster.result ->
  workers:int -> t

val pp : Format.formatter -> t -> unit
