(** Distributed testing (paper, section 5.2): the server/client mode,
    modelled as a deterministic in-process scheduler. Test cases are
    sharded round-robin over N workers, each with its own supervised
    execution environment (its own "VM"); the server merges funnels,
    reports and quarantines. Sharding never changes the outcome — only
    wall-clock parallelism — and neither does killing a worker
    mid-campaign: the dead worker's remaining queue is resharded over
    the survivors (property-tested).

    With [~domains:N] the pool runs on [N] OCaml domains — worker [w] on
    domain [w mod N] — and the merge walks workers in order, so the
    result is structurally identical for every domain count, worker
    deaths included (property-tested). *)

type worker_result = {
  worker : int;
  assigned : int;                  (** cases given (incl. inherited) *)
  completed : int;                 (** cases actually executed *)
  died : bool;
  executions : int;
  funnel : Kit_detect.Filter.funnel;
  reports : Kit_detect.Report.t list;
  quarantined : Kit_exec.Supervisor.crash list;
  metrics : Kit_obs.Metrics.snapshot;
  (** the worker's own registry (each client VM reports its telemetry) *)
  trace : Kit_obs.Tracer.event list;
  (** the worker's span events, stamped with [worker] and [case] attrs *)
}

(** A worker-death plan: [dead_worker] dies after completing [after]
    cases of its shard. *)
type failure = {
  dead_worker : int;
  after : int;
}

type t = {
  workers : worker_result list;
  funnel : Kit_detect.Filter.funnel;       (** merged *)
  reports : Kit_detect.Report.t list;      (** merged, in test-case order *)
  quarantined : Kit_exec.Supervisor.crash list;  (** merged *)
  total_executions : int;
  resharded : int;                 (** cases inherited from dead workers *)
  metrics : Kit_obs.Metrics.snapshot;
  (** per-worker registries merged with {!Kit_obs.Metrics.merge} *)
  trace : Kit_obs.Tracer.event list;
  (** per-worker trace rings merged with {!Kit_obs.Tracer.interleave} —
      one deterministic stream, joinable by [worker]/[case] attrs *)
}

val shard : workers:int -> 'a list -> 'a list array

exception All_workers_dead of (int * Kit_gen.Testcase.t) list
(** Every worker died with work still queued. Carries the unfinished
    [(case, testcase)] queue in case order, so callers can checkpoint,
    resume on a fresh pool, or report exactly what was lost. *)

val execute :
  ?failures:failure list -> ?domains:int -> ?crashes:int list ->
  Campaign.options -> Kit_abi.Program.t array -> Kit_gen.Cluster.result ->
  workers:int -> t
(** [domains] (default 1 = sequential) sizes the domain pool the worker
    tasks run on; it changes wall-clock time only, never the result.
    [crashes] lists worker indices whose task dies outright, taking its
    domain (and the domain's unfinished workers) with it — those shards
    join the planned-failure resharding path, so the merged outcome
    still matches a crash-free run. Sharding, completion and resharding
    all drive a {!Jobqueue} — the same loop the forked pool runs.
    @raise All_workers_dead if every worker dies with work queued. *)

val pp : Format.formatter -> t -> unit
