(** Ground-truth attribution of diagnosed reports.

    The paper's authors triage AGG-RS groups by hand (30 person-hours,
    section 6.4); the reproduction needs an executable oracle to fill
    Tables 2/4/6, mapping each culprit (sender, receiver) signature pair
    onto the bug it witnesses, a known false-positive class, or "under
    investigation". *)

type attribution =
  | Bug of Kit_kernel.Bugs.id
  | False_positive of string     (** FP class label *)
  | Under_investigation

val attribution_to_string : attribution -> string
val equal_attribution : attribution -> attribution -> bool

val attribute :
  sender:Kit_report.Signature.t -> receiver:Kit_report.Signature.t ->
  attribution

val attribute_keyed : Kit_report.Aggregate.keyed -> attribution

val new_bugs_found : Kit_report.Aggregate.keyed list -> Kit_kernel.Bugs.id list
(** The set of Table 2 bugs witnessed by a report list, sorted. *)

val attribute_concurrent : Kit_detect.Report.t -> attribution
(** Attribute one concurrent (schedule-search) report. Concurrent
    reports skip Algorithm 2 diagnosis, so there is no culprit signature
    pair: attribution reads the pair's syscall composition and the diff
    content directly. *)

val race_bugs_found : Kit_detect.Report.t list -> Kit_kernel.Bugs.id list
(** The set of seeded race-window bugs witnessed by a concurrent report
    list, sorted — what the CI e2e gate asserts completeness of. *)
