(** The generic campaign job queue: submit / claim / complete / reassign
    with a deterministic merge order.

    One queue abstraction backs every execution driver: the in-process
    domain pool ({!Distrib}), the streaming per-cluster result cache
    ({!Campaign.stream}) and the forked-process pool ([Kit_serve.Pool])
    are all thin drivers over it. Jobs carry a stable integer id —
    either allocated in submit order ({!submit}) or caller-chosen
    ({!submit_as}, e.g. cluster ids) — and every ordered read
    ({!results}, {!unfinished}, {!release}) walks jobs in submit order,
    so merged outcomes are deterministic no matter which worker ran
    what, in which interleaving.

    Assignment is two-level, mirroring the paper's server mode: a job is
    {e assigned} to a worker's queue (round-robin sharding, resharding
    after a death) and then {e claimed} when the worker actually starts
    it. {!release} returns a dead worker's whole unfinished queue —
    assigned and in-flight — for resharding over the survivors. *)

type ('a, 'b) t
(** A queue of jobs with payload ['a] and result ['b]. Not
    domain-safe: drivers mutate it from the coordinating
    domain/process only. *)

val create : unit -> ('a, 'b) t

(** {2 Submission} *)

val submit : ('a, 'b) t -> 'a -> int
(** Enqueue a job; returns its id (consecutive from 0 in submit
    order when ids are never chosen explicitly). *)

val submit_as : ('a, 'b) t -> id:int -> 'a -> unit
(** Enqueue under a caller-chosen id (e.g. a cluster id). If the id
    already exists the job {e reopens}: payload replaced, any previous
    result discarded, state back to queued — the streaming pipeline's
    representative-changed invalidation. The job keeps its original
    submit-order position. *)

val mem : ('a, 'b) t -> int -> bool
val payload : ('a, 'b) t -> int -> 'a
(** @raise Not_found if the id was never submitted (or was dropped). *)

(** {2 Assignment and claiming} *)

val assign_round_robin : ('a, 'b) t -> workers:int -> (int * 'a) list array
(** Deal every queued job round-robin over [workers] queues by submit
    order — the paper's RPC sharding. Returns the per-worker queues
    ([(id, payload)], submit order); jobs already assigned, running or
    finished are untouched. *)

exception No_survivors
(** {!deal} was given an empty [to_] list: there is nobody left to
    absorb the orphaned jobs. Drivers catch it to abort (the pool) or to
    fail just the owning tenant (the scheduler) instead of dying on a
    generic [Invalid_argument]. *)

val deal : ('a, 'b) t -> (int * 'a) list -> to_:int list -> unit
(** [deal t jobs ~to_:survivors] reassigns [jobs] (typically a dead
    worker's {!release}d queue) round-robin over the [survivors] in list
    order: job [k] goes to [List.nth survivors (k mod n)].
    @raise No_survivors when [survivors] is empty. *)

val claim_next : ('a, 'b) t -> worker:int -> (int * 'a) option
(** The worker's next assigned-but-unclaimed job, in submit order;
    marks it running. [None] if its queue is empty. *)

val steal : ('a, 'b) t -> thief:int -> (int * 'a) option
(** Work stealing for an idle worker: take the {e last} assigned
    (unclaimed) job of the worker with the longest queue, mark it
    running on [thief]. [None] when nothing is stealable. *)

val release : ('a, 'b) t -> worker:int -> (int * 'a) list
(** A worker died: return its whole unfinished queue — assigned and
    running jobs, in submit order — to the queued state and count the
    jobs as resharded. *)

(** {2 Completion} *)

val complete : ('a, 'b) t -> int -> 'b -> unit
(** Record a job's result. Permitted from any live state (queued,
    assigned or running — drivers that execute whole shards complete
    jobs post-hoc). @raise Not_found on an unknown id. *)

val quarantine : ('a, 'b) t -> int -> unit
(** Retire a poisoned job: it will never be claimed, dealt or listed
    as unfinished again, and produces no result. *)

val drop : ('a, 'b) t -> int -> unit
(** Forget a job entirely (streaming cluster [Dropped] events). *)

(** {2 Reads — all in submit order (deterministic merge order)} *)

val result : ('a, 'b) t -> int -> 'b option
val results : ('a, 'b) t -> (int * 'b) list
val unfinished : ('a, 'b) t -> (int * 'a) list
(** Jobs not yet completed or quarantined. *)

val quarantined_ids : ('a, 'b) t -> int list
val is_drained : ('a, 'b) t -> bool
(** No queued, assigned or running jobs remain. *)

val assigned_count : ('a, 'b) t -> worker:int -> int
(** Assigned-but-unclaimed jobs in the worker's queue. *)

val resharded : ('a, 'b) t -> int
(** Total jobs ever {!release}d from dead workers. *)

val stolen : ('a, 'b) t -> int
