(* Re-export: the packed bitset lives in kit_compact (below every other
   library in the dependency DAG, so kit_gen can use it too); Core keeps
   the [Core.Bitset] name campaign-side code and callers use. *)

include Kit_compact.Bitset
