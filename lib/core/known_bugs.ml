(* Reproduction of documented namespace isolation bugs (paper,
   section 6.2, Table 3). Each known bug gets the kernel release it lives
   in and a hand-written reproducer pair — the equivalent of the paper's
   C test cases — and is pushed through the regular detection pipeline.
   Bugs A-E must be detected; F and G are the two documented bugs that
   functional interference testing cannot detect, and must be missed. *)

module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang
module Bugs = Kit_kernel.Bugs
module Config = Kit_kernel.Config
module Spec = Kit_spec.Spec
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Filter = Kit_detect.Filter
module Testcase = Kit_gen.Testcase

type case = {
  bug : Bugs.id;
  label : string;
  kernel : string;
  namespace : string;
  sender_host : bool;
  sender : string;                   (* syzlang reproducers *)
  receiver : string;
  expect_detected : bool;
}

let cases =
  [
    { bug = Bugs.KA_prio_user; label = "A"; kernel = "4.4"; namespace = "pid";
      sender_host = false;
      sender = "r0 = setpriority(2, 1000, 5)";
      receiver = "r0 = getpriority(2, 1000)";
      expect_detected = true };
    { bug = Bugs.KB_uevent; label = "B"; kernel = "3.14"; namespace = "net";
      sender_host = false;
      sender = "r0 = netdev_create(\"veth0\")";
      receiver = "r0 = socket(8)\nr1 = uevent_recv(r0)";
      expect_detected = true };
    { bug = Bugs.KC_ipvs; label = "C"; kernel = "4.15"; namespace = "net";
      sender_host = false;
      sender = "r0 = ipvs_add_service(1080)";
      receiver = "r0 = open(\"/proc/net/ip_vs\")\nr1 = read(r0)";
      expect_detected = true };
    { bug = Bugs.KD_conntrack_max; label = "D"; kernel = "5.13";
      namespace = "net"; sender_host = false;
      sender = "r0 = sysctl_write(\"net/nf_conntrack_max\", 9)";
      receiver = "r0 = sysctl_read(\"net/nf_conntrack_max\")";
      expect_detected = true };
    { bug = Bugs.KE_iouring_mount; label = "E"; kernel = "5.6";
      namespace = "mnt"; sender_host = true;
      sender = "r0 = creat(\"/tmp/kit0\")";
      receiver = "r0 = io_uring_read(\"/tmp/kit0\")";
      expect_detected = true };
    { bug = Bugs.KF_conntrack_dump; label = "F"; kernel = "4.15";
      namespace = "net"; sender_host = false;
      sender = "r0 = conntrack_add(1001)";
      receiver = "r0 = open(\"/proc/net/nf_conntrack\")\nr1 = read(r0)";
      expect_detected = false };
    { bug = Bugs.KG_sockdiag_foreign; label = "G"; kernel = "4.10";
      namespace = "net"; sender_host = false;
      sender = "r0 = socket(6)\nr1 = bind(r0, 1004)";
      receiver = "r0 = sock_diag(3)";
      expect_detected = false };
  ]

type outcome = {
  case : case;
  detected : bool;
  as_expected : bool;
}

(* Run one known-bug reproduction through the detection pipeline. *)
let reproduce ?(spec = Spec.default) ?(reruns = 3) case =
  let config = Config.for_known_bug case.bug in
  let env = Env.create ~sender_host:case.sender_host config in
  let runner = Runner.create ~reruns env in
  let sender = Syzlang.parse case.sender in
  let receiver = Syzlang.parse case.receiver in
  let outcome = Runner.execute runner ~sender ~receiver in
  let funnel = Filter.funnel_create () in
  let tc = { Testcase.sender = 0; receiver = 0; flow = None } in
  let detected =
    match Filter.classify spec ~testcase:tc ~sender ~receiver outcome funnel with
    | Filter.Reported _ -> true
    | Filter.No_divergence | Filter.Filtered_nondet | Filter.Filtered_resource
      ->
      false
  in
  { case; detected; as_expected = Bool.equal detected case.expect_detected }

let reproduce_all ?spec ?reruns () =
  List.map (fun case -> reproduce ?spec ?reruns case) cases

(* The headline number: how many of the 7 documented bugs functional
   interference testing reproduces (paper: 5). *)
let detected_count outcomes =
  List.length (List.filter (fun o -> o.detected) outcomes)
