(** Regeneration of the paper's evaluation tables (section 6). Each
    function returns structured rows (consumed by tests) and a rendered
    table (printed by the bench harness and recorded in
    EXPERIMENTS.md). *)

type bug_row = {
  bug : Kit_kernel.Bugs.id;
  number : int;
  sender_action : string;
  receiver_action : string;
  trace_diff : string;
  resource : string;
  paper_status : string;
}

val table2_rows : bug_row list
(** The static Table 2 rows (actions, trace diff, resource, status). *)

val table2 : Campaign.t -> Kit_kernel.Bugs.id list * string
(** Bugs found by the campaign, plus the rendered table. *)

val table3 :
  ?spec:Kit_spec.Spec.t -> ?reruns:int -> unit ->
  Known_bugs.outcome list * string

type strategy_row = {
  strategy : Kit_gen.Cluster.strategy;
  test_cases : int;
  bugs_found : Kit_kernel.Bugs.id list;
  executed : bool;
}

val table4 :
  Campaign.prepared ->
  strategy_row list * string * (Campaign.t * Campaign.t * Campaign.t * Campaign.t)
(** Runs DF-IA, DF-ST-1, DF-ST-2 and RAND (budget 1.3x DF-ST-2, the
    paper's proportion) over shared profiles; also returns the four
    campaign results for reuse by the other tables. *)

val table5 : Campaign.t -> string

type agg_column = {
  column : string;                 (** "1".."9", "KD", "FP", "UI" *)
  reports : int;
  agg_rs_groups : int;
  agg_r_groups : int;
}

val table6 : Campaign.t -> agg_column list * string

val performance : Campaign.t -> string
(** The section 6.5 figures: profiling rate, clusters/flows, execution
    rate. *)
