(* Regeneration of the paper's evaluation tables (section 6). Each
   function returns both structured rows (consumed by tests) and a
   rendered table (printed by the bench harness and recorded in
   EXPERIMENTS.md). *)

module Bugs = Kit_kernel.Bugs
module Cluster = Kit_gen.Cluster
module Aggregate = Kit_report.Aggregate

let buf_table header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* --- Table 2: new functional interference bugs ------------------------ *)

type bug_row = {
  bug : Bugs.id;
  number : int;
  sender_action : string;
  receiver_action : string;
  trace_diff : string;
  resource : string;
  paper_status : string;
}

let table2_rows =
  [
    { bug = Bugs.B1_ptype_leak; number = 1;
      sender_action = "Create a packet socket";
      receiver_action = "Read /proc/net/ptype";
      trace_diff = "Show the ptype from Cs"; resource = "ptype";
      paper_status = "Fixed" };
    { bug = Bugs.B2_flowlabel_send; number = 2;
      sender_action = "Create an exclusive flow label";
      receiver_action = "Transmit data with an unregistered flow label";
      trace_diff = "Transmission fails"; resource = "IPv6 / flow label";
      paper_status = "Fixed" };
    { bug = Bugs.B3_rds_bind; number = 3;
      sender_action = "Bind an RDS socket";
      receiver_action = "Bind an RDS socket"; trace_diff = "Binding fails";
      resource = "RDS / address"; paper_status = "Confirmed" };
    { bug = Bugs.B4_flowlabel_connect; number = 4;
      sender_action = "Create an exclusive flow label";
      receiver_action = "Connect with an unregistered flow label";
      trace_diff = "Connection fails"; resource = "IPv6 / flow label";
      paper_status = "Fixed" };
    { bug = Bugs.B5_sockstat_tcp; number = 5;
      sender_action = "Create a TCP socket";
      receiver_action = "Read /proc/net/sockstat";
      trace_diff = "Counter in file increases"; resource = "proto / socket";
      paper_status = "Confirmed" };
    { bug = Bugs.B6_cookie; number = 6;
      sender_action = "Generate a socket cookie";
      receiver_action = "Generate a socket cookie";
      trace_diff = "Cookie changes"; resource = "socket / cookie";
      paper_status = "Known" };
    { bug = Bugs.B7_sctp_assoc; number = 7;
      sender_action = "Request an association ID";
      receiver_action = "Request an association ID";
      trace_diff = "Association ID changes"; resource = "SCTP / assoc_id";
      paper_status = "Known" };
    { bug = Bugs.B8_protomem_sockstat; number = 8;
      sender_action = "Allocate protocol memory";
      receiver_action = "Read /proc/net/sockstat";
      trace_diff = "Counter in file increases"; resource = "proto / memory";
      paper_status = "Confirmed" };
    { bug = Bugs.B9_protomem_protocols; number = 9;
      sender_action = "Allocate protocol memory";
      receiver_action = "Read /proc/net/protocols";
      trace_diff = "Counter in file increases"; resource = "proto / memory";
      paper_status = "Confirmed" };
  ]

let table2 (campaign : Campaign.t) =
  let found = Oracle.new_bugs_found campaign.Campaign.keyed in
  let is_found b = List.exists (Bugs.equal b) found in
  let rows =
    List.map
      (fun r ->
        Printf.sprintf "%-2d %-33s %-48s %-26s %-18s %-9s %s" r.number
          r.sender_action r.receiver_action r.trace_diff r.resource
          r.paper_status
          (if is_found r.bug then "FOUND" else "missed"))
      table2_rows
  in
  ( found,
    buf_table
      "ID Cs action                         Cr action                                        \
       Cr trace diff              Resource           Status    Reproduced"
      rows )

(* --- Table 3: known bugs ---------------------------------------------- *)

let table3 ?spec ?reruns () =
  let outcomes = Known_bugs.reproduce_all ?spec ?reruns () in
  let rows =
    List.map
      (fun (o : Known_bugs.outcome) ->
        Printf.sprintf "%-2s %-28s %-6s %-5s detected=%-5b expected=%-5b %s"
          o.Known_bugs.case.Known_bugs.label
          (Bugs.to_string o.Known_bugs.case.Known_bugs.bug)
          o.Known_bugs.case.Known_bugs.kernel
          o.Known_bugs.case.Known_bugs.namespace o.Known_bugs.detected
          o.Known_bugs.case.Known_bugs.expect_detected
          (if o.Known_bugs.as_expected then "OK" else "MISMATCH"))
      outcomes
  in
  ( outcomes,
    buf_table "ID Bug                          Kernel NS    Result" rows )

(* --- Table 4: generation / clustering strategies ---------------------- *)

type strategy_row = {
  strategy : Cluster.strategy;
  test_cases : int;
  bugs_found : Bugs.id list;
  executed : bool;
}

(* RAND's budget follows the paper's proportions: it executed ~1.3x the
   DF-ST-2 test case count and still found fewer bugs. *)
let table4 prepared =
  let run strategy =
    Campaign.execute_prepared ~strategy prepared
  in
  let df_ia = run Cluster.Df_ia in
  let df_st1 = run (Cluster.Df_st 1) in
  let df_st2 = run (Cluster.Df_st 2) in
  let rand_budget =
    max 32 (df_st2.Campaign.generation.Cluster.clusters * 13 / 10)
  in
  let rand = run (Cluster.Rand rand_budget) in
  let df_total = df_ia.Campaign.df_total in
  let row_of c executed =
    { strategy = c.Campaign.generation.Cluster.strategy;
      test_cases = c.Campaign.generation.Cluster.generated;
      bugs_found = Oracle.new_bugs_found c.Campaign.keyed; executed }
  in
  let rows_data =
    [ row_of df_ia true; row_of df_st1 true; row_of df_st2 true;
      row_of rand true;
      { strategy = Cluster.Df; test_cases = df_total; bugs_found = [];
        executed = false } ]
  in
  let rows =
    List.map
      (fun r ->
        Printf.sprintf "%-9s %8d %s"
          (Cluster.strategy_name r.strategy)
          r.test_cases
          (if r.executed then
             Printf.sprintf "%d/9" (List.length r.bugs_found)
           else "-"))
      rows_data
  in
  ( rows_data,
    buf_table "Gen       Test cases Effectiveness" rows,
    (df_ia, df_st1, df_st2, rand) )

(* --- Table 5: report filtering ---------------------------------------- *)

let table5 (campaign : Campaign.t) =
  let f = campaign.Campaign.funnel in
  Fmt.str "%a" Kit_detect.Filter.pp_funnel f

(* --- Table 6: report aggregation -------------------------------------- *)

type agg_column = {
  column : string;                 (* "1".."9", "FP", "UI" *)
  reports : int;
  agg_rs_groups : int;
  agg_r_groups : int;
}

(* Reports attributed to a *known* bug still present in the tested
   release (bug D of Table 3 lives in 5.13) get their own column — the
   paper's Table 6 only tabulates the nine new bugs. *)
let column_of_attribution = function
  | Oracle.Bug b -> (
    let rec index i = function
      | [] -> None
      | x :: rest -> if Bugs.equal x b then Some (i + 1) else index (i + 1) rest
    in
    match index 0 Bugs.new_bugs with
    | Some n -> Some (string_of_int n)
    | None -> Some "KD")
  | Oracle.False_positive _ -> Some "FP"
  | Oracle.Under_investigation -> Some "UI"

let table6 (campaign : Campaign.t) =
  let attribution_of k = Oracle.attribute_keyed k in
  let columns =
    List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] @ [ "KD"; "FP"; "UI" ]
  in
  let col_of k =
    match column_of_attribution (attribution_of k) with
    | Some c -> c
    | None -> "UI"
  in
  let count_reports col =
    List.length (List.filter (fun k -> String.equal (col_of k) col) campaign.Campaign.keyed)
  in
  let count_groups groups col =
    List.length
      (List.filter
         (fun (g : Aggregate.group) ->
           List.exists (fun m -> String.equal (col_of m) col) g.Aggregate.members)
         groups)
  in
  let data =
    List.map
      (fun col ->
        { column = col; reports = count_reports col;
          agg_rs_groups = count_groups campaign.Campaign.agg_rs col;
          agg_r_groups = count_groups campaign.Campaign.agg_r col })
      columns
  in
  let line label get =
    Printf.sprintf "%-17s %s | %5d" label
      (String.concat " "
         (List.map (fun c -> Printf.sprintf "%5d" (get c)) data))
      (List.fold_left (fun acc c -> acc + get c) 0 data)
  in
  let header =
    Printf.sprintf "%-17s %s | total" ""
      (String.concat " " (List.map (Printf.sprintf "%5s") columns))
  in
  ( data,
    buf_table header
      [ line "Filtered reports" (fun c -> c.reports);
        line "AGG-RS groups" (fun c -> c.agg_rs_groups);
        line "AGG-R groups" (fun c -> c.agg_r_groups) ] )

(* --- Section 6.5: performance ----------------------------------------- *)

let performance (campaign : Campaign.t) =
  let t = campaign.Campaign.timings in
  let n_corpus = Array.length campaign.Campaign.corpus in
  let execs = campaign.Campaign.executions in
  let exec_rate =
    if t.Campaign.execute_s > 0.0 then
      float_of_int execs /. (t.Campaign.execute_s +. t.Campaign.diagnose_s)
    else 0.0
  in
  let prof_rate =
    if t.Campaign.profile_s > 0.0 then
      float_of_int n_corpus /. t.Campaign.profile_s
    else 0.0
  in
  Printf.sprintf
    "profiled %d programs in %.2fs (%.0f programs/s)\n\
     generated %d clusters from %d data flows in %.2fs\n\
     %d program executions in %.2fs (%.0f executions/s)"
    n_corpus t.Campaign.profile_s prof_rate
    campaign.Campaign.generation.Cluster.clusters campaign.Campaign.df_total
    t.Campaign.generate_s execs
    (t.Campaign.execute_s +. t.Campaign.diagnose_s)
    exec_rate
