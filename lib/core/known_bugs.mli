(** Reproduction of documented namespace isolation bugs (paper,
    section 6.2, Table 3): each historical bug gets the kernel release
    it lives in and a hand-written reproducer pair, pushed through the
    regular detection pipeline. Bugs A-E must be detected; F and G are
    the documented bugs functional interference testing cannot detect
    and must be missed. *)

type case = {
  bug : Kit_kernel.Bugs.id;
  label : string;                    (** "A".."G" *)
  kernel : string;
  namespace : string;
  sender_host : bool;
  sender : string;                   (** syzlang reproducers *)
  receiver : string;
  expect_detected : bool;
}

val cases : case list

type outcome = {
  case : case;
  detected : bool;
  as_expected : bool;
}

val reproduce : ?spec:Kit_spec.Spec.t -> ?reruns:int -> case -> outcome
val reproduce_all : ?spec:Kit_spec.Spec.t -> ?reruns:int -> unit -> outcome list

val detected_count : outcome list -> int
(** The headline number; the paper reproduces 5 of 7. *)
