(* Validated KITCKPT1 checkpoint I/O. See checkpoint.mli.

   On-disk layout:
     bytes 0..7    magic "KITCKPT1"
     byte  8       kind length k (single byte; kinds are short tags)
     bytes 9..9+k  kind
     8 bytes       payload length, big-endian
     16 bytes      MD5 digest of the payload
     n bytes       Marshal payload

   Everything before the payload is validated before a single Marshal
   byte is decoded, so a truncated, bit-flipped or mislabelled file is a
   typed error, never a crash inside the runtime's deserialiser. *)

let magic = "KITCKPT1"

type error =
  | Io of string
  | Not_checkpoint of string
  | Checkpoint_corrupt of string

let error_to_string = function
  | Io msg -> Printf.sprintf "checkpoint I/O error: %s" msg
  | Not_checkpoint msg -> Printf.sprintf "not a KITCKPT1 checkpoint: %s" msg
  | Checkpoint_corrupt msg -> Printf.sprintf "corrupt checkpoint: %s" msg

let save path ~kind v =
  if String.length kind = 0 || String.length kind > 255 then
    invalid_arg "Checkpoint.save: kind must be 1..255 bytes";
  let payload = Marshal.to_string v [ Marshal.No_sharing ] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_byte oc (String.length kind);
      output_string oc kind;
      let len = Bytes.create 8 in
      Bytes.set_int64_be len 0 (Int64.of_int (String.length payload));
      output_bytes oc len;
      output_string oc (Digest.string payload);
      output_string oc payload);
  Sys.rename tmp path

let read_exactly ic n =
  let buf = Bytes.create n in
  really_input ic buf 0 n;
  Bytes.unsafe_to_string buf

let load path ~kind =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let got_magic =
            try read_exactly ic (String.length magic)
            with End_of_file -> ""
          in
          if got_magic <> magic then
            Error
              (Not_checkpoint
                 (Printf.sprintf "%s: bad magic (want %S)" path magic))
          else
            let kind_len = input_byte ic in
            let got_kind = read_exactly ic kind_len in
            if got_kind <> kind then
              Error
                (Checkpoint_corrupt
                   (Printf.sprintf "%s: kind is %S, expected %S" path got_kind
                      kind))
            else
              let len = Int64.to_int (String.get_int64_be (read_exactly ic 8) 0) in
              if len < 0 || len > 1 lsl 30 then
                Error
                  (Checkpoint_corrupt
                     (Printf.sprintf "%s: implausible payload length %d" path
                        len))
              else
                let digest = read_exactly ic 16 in
                let payload = read_exactly ic len in
                if Digest.string payload <> digest then
                  Error
                    (Checkpoint_corrupt
                       (Printf.sprintf "%s: payload digest mismatch" path))
                else Ok (Marshal.from_string payload 0)
        with
        | End_of_file ->
          Error (Checkpoint_corrupt (Printf.sprintf "%s: truncated" path))
        | Failure msg ->
          Error
            (Checkpoint_corrupt
               (Printf.sprintf "%s: undecodable payload (%s)" path msg)))
