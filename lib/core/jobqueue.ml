(* The generic campaign job queue. See jobqueue.mli for the contract.

   Jobs live in a hashtable keyed by id; every ordered read sorts by the
   submit sequence number, so the merge order is a function of the
   submissions alone — never of worker scheduling. Queue sizes are
   cluster-representative counts (hundreds), so O(n log n) ordered scans
   per operation are noise next to a single program execution. *)

type ('a, 'b) status =
  | Queued
  | Assigned of int                    (* in worker's queue, not started *)
  | Running of int                     (* claimed by worker *)
  | Completed of 'b
  | Quarantined

type ('a, 'b) job = {
  j_id : int;
  j_seq : int;                         (* submit order, stable on reopen *)
  mutable j_payload : 'a;
  mutable j_status : ('a, 'b) status;
}

type ('a, 'b) t = {
  jobs : (int, ('a, 'b) job) Hashtbl.t;
  mutable seq : int;
  mutable next_id : int;
  mutable resharded : int;
  mutable stolen : int;
}

let create () =
  { jobs = Hashtbl.create 64; seq = 0; next_id = 0; resharded = 0; stolen = 0 }

let job t id =
  match Hashtbl.find_opt t.jobs id with
  | Some j -> j
  | None -> raise Not_found

let submit_as t ~id payload =
  match Hashtbl.find_opt t.jobs id with
  | Some j ->
    j.j_payload <- payload;
    j.j_status <- Queued
  | None ->
    Hashtbl.replace t.jobs id
      { j_id = id; j_seq = t.seq; j_payload = payload; j_status = Queued };
    t.seq <- t.seq + 1;
    if id >= t.next_id then t.next_id <- id + 1

let submit t payload =
  let id = t.next_id in
  submit_as t ~id payload;
  id

let mem t id = Hashtbl.mem t.jobs id

let payload t id = (job t id).j_payload

(* All jobs in submit order — the one ordering every read derives from. *)
let ordered t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
  |> List.sort (fun a b -> compare a.j_seq b.j_seq)

let assign_round_robin t ~workers =
  let workers = max 1 workers in
  let buckets = Array.make workers [] in
  let i = ref 0 in
  List.iter
    (fun j ->
      match j.j_status with
      | Queued ->
        let w = !i mod workers in
        j.j_status <- Assigned w;
        buckets.(w) <- (j.j_id, j.j_payload) :: buckets.(w);
        incr i
      | Assigned _ | Running _ | Completed _ | Quarantined -> ())
    (ordered t);
  Array.map List.rev buckets

exception No_survivors

let deal t jobs ~to_ =
  match to_ with
  | [] -> raise No_survivors
  | survivors ->
    let arr = Array.of_list survivors in
    List.iteri
      (fun k (id, _) -> (job t id).j_status <- Assigned arr.(k mod Array.length arr))
      jobs

let claim_next t ~worker =
  let rec first = function
    | [] -> None
    | j :: rest -> (
      match j.j_status with
      | Assigned w when w = worker ->
        j.j_status <- Running worker;
        Some (j.j_id, j.j_payload)
      | _ -> first rest)
  in
  first (ordered t)

let assigned_count t ~worker =
  Hashtbl.fold
    (fun _ j acc ->
      match j.j_status with Assigned w when w = worker -> acc + 1 | _ -> acc)
    t.jobs 0

let steal t ~thief =
  (* Victim: the longest assigned queue that is not the thief's own;
     take its newest (highest-seq) assigned job so the victim's own
     claim order stays untouched at the front. *)
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ j ->
      match j.j_status with
      | Assigned w when w <> thief ->
        Hashtbl.replace counts w
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
      | _ -> ())
    t.jobs;
  let victim =
    (* Deterministic: longest queue wins, lowest worker id breaks ties. *)
    Hashtbl.fold
      (fun w n best ->
        match best with
        | Some (bw, bn) when bn > n || (bn = n && bw < w) -> best
        | Some _ | None -> Some (w, n))
      counts None
  in
  match victim with
  | None -> None
  | Some (w, _) ->
    let last =
      List.fold_left
        (fun acc j ->
          match j.j_status with Assigned w' when w' = w -> Some j | _ -> acc)
        None (ordered t)
    in
    Option.map
      (fun j ->
        j.j_status <- Running thief;
        t.stolen <- t.stolen + 1;
        (j.j_id, j.j_payload))
      last

let release t ~worker =
  let orphans =
    List.filter
      (fun j ->
        match j.j_status with
        | Assigned w | Running w -> w = worker
        | Queued | Completed _ | Quarantined -> false)
      (ordered t)
  in
  List.iter (fun j -> j.j_status <- Queued) orphans;
  t.resharded <- t.resharded + List.length orphans;
  List.map (fun j -> (j.j_id, j.j_payload)) orphans

let complete t id r =
  let j = job t id in
  match j.j_status with
  | Quarantined -> ()                  (* a late result for a retired job *)
  | Queued | Assigned _ | Running _ | Completed _ -> j.j_status <- Completed r

let quarantine t id = (job t id).j_status <- Quarantined

let drop t id = Hashtbl.remove t.jobs id

let result t id =
  match Hashtbl.find_opt t.jobs id with
  | Some { j_status = Completed r; _ } -> Some r
  | Some _ | None -> None

let results t =
  List.filter_map
    (fun j ->
      match j.j_status with Completed r -> Some (j.j_id, r) | _ -> None)
    (ordered t)

let unfinished t =
  List.filter_map
    (fun j ->
      match j.j_status with
      | Queued | Assigned _ | Running _ -> Some (j.j_id, j.j_payload)
      | Completed _ | Quarantined -> None)
    (ordered t)

let quarantined_ids t =
  List.filter_map
    (fun j ->
      match j.j_status with Quarantined -> Some j.j_id | _ -> None)
    (ordered t)

let is_drained t =
  Hashtbl.fold
    (fun _ j acc ->
      acc
      && match j.j_status with
         | Completed _ | Quarantined -> true
         | Queued | Assigned _ | Running _ -> false)
    t.jobs true

let resharded t = t.resharded
let stolen t = t.stolen
