(* The end-to-end KIT pipeline (paper, Figure 3): corpus → profiling →
   data-flow test case generation and clustering → two-phase execution →
   divergence detection and filtering → diagnosis (Algorithm 2) → report
   aggregation. Fully deterministic for a given seed. *)

module Program = Kit_abi.Program
module Corpus = Kit_abi.Corpus
module Config = Kit_kernel.Config
module Spec = Kit_spec.Spec
module Dataflow = Kit_gen.Dataflow
module Cluster = Kit_gen.Cluster
module Testcase = Kit_gen.Testcase
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Diagnose = Kit_report.Diagnose
module Aggregate = Kit_report.Aggregate

type options = {
  config : Config.t;
  spec : Spec.t;
  corpus_size : int;
  seed : int;
  strategy : Cluster.strategy;
  reruns : int;
  diagnose : bool;
}

let default_options =
  {
    config = Config.v5_13 ();
    spec = Spec.default;
    corpus_size = 320;
    seed = 7;
    strategy = Cluster.Df_ia;
    reruns = 3;
    diagnose = true;
  }

type timings = {
  profile_s : float;
  generate_s : float;
  execute_s : float;
  diagnose_s : float;
}

type t = {
  options : options;
  corpus : Program.t array;
  generation : Cluster.result;
  df_total : int;                       (* unclustered data-flow count *)
  funnel : Filter.funnel;
  reports : Report.t list;
  keyed : Aggregate.keyed list;         (* diagnosed reports, if enabled *)
  agg_r : Aggregate.group list;
  agg_rs : Aggregate.group list;
  executions : int;
  timings : timings;
}

let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

(* Prepared inputs shared by several strategies (Table 4 runs the same
   corpus and profiles through each strategy). *)
type prepared = {
  p_options : options;
  p_corpus : Program.t array;
  p_profiles : Dataflow.profiles;
  p_map : Kit_profile.Accessmap.t;
  p_df_total : int;
  p_profile_s : float;
}

let prepare options =
  let corpus = Corpus.generate ~seed:options.seed ~size:options.corpus_size in
  let (profiles, map), profile_s =
    timed (fun () ->
        let profiles =
          Dataflow.profile_corpus options.config options.spec corpus
        in
        (profiles, Dataflow.build_map profiles))
  in
  { p_options = options; p_corpus = Array.of_list corpus;
    p_profiles = profiles; p_map = map;
    p_df_total = Dataflow.total_flows map; p_profile_s = profile_s }

(* Interference test used both for detection-time classification and for
   Algorithm 2 re-testing: masked divergence restricted to receiver calls
   that access protected resources. *)
let protected_interference spec runner ~sender ~receiver =
  let interfered = Runner.test_interference runner ~sender ~receiver in
  Filter.protected_interfered spec receiver interfered

let execute_prepared ?strategy prepared =
  let options = prepared.p_options in
  let strategy = Option.value ~default:options.strategy strategy in
  let generation, generate_s =
    timed (fun () ->
        Cluster.run strategy ~seed:options.seed
          ~corpus_size:(Array.length prepared.p_corpus) prepared.p_map)
  in
  let env = Env.create options.config in
  let runner = Runner.create ~reruns:options.reruns env in
  let funnel = Filter.funnel_create () in
  let reports = ref [] in
  let _, execute_s =
    timed (fun () ->
        List.iter
          (fun (tc : Testcase.t) ->
            let sender = prepared.p_corpus.(tc.Testcase.sender) in
            let receiver = prepared.p_corpus.(tc.Testcase.receiver) in
            let outcome = Runner.execute runner ~sender ~receiver in
            match
              Filter.classify options.spec ~testcase:tc ~sender ~receiver
                outcome funnel
            with
            | Filter.Reported r -> reports := r :: !reports
            | Filter.No_divergence | Filter.Filtered_nondet
            | Filter.Filtered_resource ->
              ())
          generation.Cluster.reps)
  in
  let reports = List.rev !reports in
  let keyed, diagnose_s =
    if not options.diagnose then ([], 0.0)
    else
      timed (fun () ->
          List.map
            (fun (r : Report.t) ->
              let pairs =
                Diagnose.culprits
                  ~test:(protected_interference options.spec runner)
                  ~sender:r.Report.sender ~receiver:r.Report.receiver
                  ~interfered:r.Report.interfered
              in
              Aggregate.key_report r pairs)
            reports)
  in
  let agg_r = Aggregate.agg_r keyed in
  let agg_rs = Aggregate.agg_rs keyed in
  {
    options = { options with strategy };
    corpus = prepared.p_corpus;
    generation;
    df_total = prepared.p_df_total;
    funnel;
    reports;
    keyed;
    agg_r;
    agg_rs;
    executions = runner.Runner.executions;
    timings =
      { profile_s = prepared.p_profile_s; generate_s; execute_s; diagnose_s };
  }

(* Run a complete campaign with [options]. *)
let run options = execute_prepared (prepare options)
