(* The end-to-end KIT pipeline (paper, Figure 3): corpus → profiling →
   data-flow test case generation and clustering → two-phase execution →
   divergence detection and filtering → diagnosis (Algorithm 2) → report
   aggregation. Fully deterministic for a given seed.

   Execution runs under the supervised runtime (Exec.Supervisor): test
   cases that panic or hang the kernel are retried with backoff and
   quarantined as crash reports once the retry budget is spent, and the
   execute phase checkpoints so an interrupted campaign resumes without
   re-executing completed clusters.

   The pipeline comes in two shapes built from the same Pipeline stages
   and the same per-case executor:

   - the batch path ([run]): profile everything, cluster in one shot,
     then execute every representative — with checkpointing and optional
     domain parallelism;
   - the streaming path ([stream]/[extend]): profile one program at a
     time, fold it into the online cluster table, and execute
     newly-sealed representatives immediately; [extend] grows the corpus
     of a finished streaming campaign and re-executes only clusters
     whose representative changed.

   The two paths produce structurally identical reports, funnel,
   quarantine and df_total (property-tested); only wall-clock shape and
   execution counts differ. *)

module Program = Kit_abi.Program
module Corpus = Kit_abi.Corpus
module Config = Kit_kernel.Config
module Fault = Kit_kernel.Fault
module Spec = Kit_spec.Spec
module Dataflow = Kit_gen.Dataflow
module Cluster = Kit_gen.Cluster
module Testcase = Kit_gen.Testcase
module Runner = Kit_exec.Runner
module Supervisor = Kit_exec.Supervisor
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Diagnose = Kit_report.Diagnose
module Aggregate = Kit_report.Aggregate
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer
module Coverage = Kit_obs.Coverage
module Heap = Kit_kernel.Heap
module Kevent = Kit_kernel.Kevent
module Stackrec = Kit_profile.Stackrec
module Accessmap = Kit_profile.Accessmap

type options = {
  config : Config.t;
  spec : Spec.t;
  corpus_size : int;
  seed : int;
  strategy : Cluster.strategy;
  reruns : int;
  diagnose : bool;
  faults : Fault.schedule;              (* injected fault schedule *)
  fuel : int;                           (* per-execution step budget *)
  max_retries : int;                    (* supervisor retry budget *)
  baseline_cache : bool;                (* memoize receiver-solo traces *)
  domains : int;                        (* execute-phase parallelism *)
  schedules : int;                      (* interleaved schedule seeds per
                                           case; 1 = sequential only *)
  obs : Obs.t option;                   (* observability bundle; None =
                                           private bundle per campaign *)
}

let default_options =
  {
    config = Config.v5_13 ();
    spec = Spec.default;
    corpus_size = 320;
    seed = 7;
    strategy = Cluster.Df_ia;
    reruns = 3;
    diagnose = true;
    faults = [];
    fuel = Supervisor.default_config.Supervisor.fuel;
    max_retries = Supervisor.default_config.Supervisor.max_retries;
    baseline_cache = true;
    domains = 1;
    schedules = 1;
    obs = None;
  }

(* Schedule-search accounting, accumulated across the campaign's cases
   exactly like the funnel. All zeros when [schedules = 1] — the
   sequential-only campaign never touches the scheduler. *)
type sched_stats = {
  mutable sched_candidates : int;       (* completed cases searched *)
  mutable sched_classes : int;          (* POR equivalence classes *)
  mutable sched_executed : int;         (* class representatives run *)
  mutable sched_pruned : int;           (* seeds never executed *)
  mutable sched_skipped : int;          (* searches/reps lost to crashes *)
}

let sched_create () =
  { sched_candidates = 0; sched_classes = 0; sched_executed = 0;
    sched_pruned = 0; sched_skipped = 0 }

let copy_sched (s : sched_stats) =
  { sched_candidates = s.sched_candidates; sched_classes = s.sched_classes;
    sched_executed = s.sched_executed; sched_pruned = s.sched_pruned;
    sched_skipped = s.sched_skipped }

let add_sched (into : sched_stats) (s : sched_stats) =
  into.sched_candidates <- into.sched_candidates + s.sched_candidates;
  into.sched_classes <- into.sched_classes + s.sched_classes;
  into.sched_executed <- into.sched_executed + s.sched_executed;
  into.sched_pruned <- into.sched_pruned + s.sched_pruned;
  into.sched_skipped <- into.sched_skipped + s.sched_skipped

(* Funnel attrition accounting: every generated data-flow case is
   charged to exactly one terminal stage, so the stages below always sum
   to [at_generated] — a case that disappears anywhere in the pipeline
   is visible here with its drop reason. Clustering absorption counts
   cases folded into an executed representative; the quarantine stages
   count *cases* whose execution died (the campaign quarantine list
   counts crash reports, which can exceed this when schedule search
   crashes after a completed sequential run). *)
type attrition = {
  mutable at_generated : int;           (* unclustered data-flow cases *)
  mutable at_absorbed : int;            (* clustered into a representative *)
  mutable at_quar_panic : int;          (* executed rep panicked the kernel *)
  mutable at_quar_hung : int;           (* executed rep hung forever *)
  mutable at_quar_lost : int;           (* execution environment died *)
  mutable at_no_divergence : int;       (* executed, traces identical *)
  mutable at_filtered_nondet : int;     (* dropped by the rerun filter *)
  mutable at_filtered_resource : int;   (* dropped by the resource filter *)
  mutable at_reported : int;            (* survived the whole funnel *)
}

let attrition_create () =
  { at_generated = 0; at_absorbed = 0; at_quar_panic = 0; at_quar_hung = 0;
    at_quar_lost = 0; at_no_divergence = 0; at_filtered_nondet = 0;
    at_filtered_resource = 0; at_reported = 0 }

let copy_attrition (a : attrition) =
  { at_generated = a.at_generated; at_absorbed = a.at_absorbed;
    at_quar_panic = a.at_quar_panic; at_quar_hung = a.at_quar_hung;
    at_quar_lost = a.at_quar_lost; at_no_divergence = a.at_no_divergence;
    at_filtered_nondet = a.at_filtered_nondet;
    at_filtered_resource = a.at_filtered_resource;
    at_reported = a.at_reported }

let attrition_balanced (a : attrition) =
  a.at_generated
  = a.at_absorbed + a.at_quar_panic + a.at_quar_hung + a.at_quar_lost
    + a.at_no_divergence + a.at_filtered_nondet + a.at_filtered_resource
    + a.at_reported

type timings = {
  profile_s : float;
  generate_s : float;
  execute_s : float;
  diagnose_s : float;
}

type t = {
  options : options;
  corpus : Program.t array;
  generation : Cluster.result;
  df_total : int;                       (* unclustered data-flow count *)
  funnel : Filter.funnel;
  reports : Report.t list;
  concurrent : Report.t list;           (* schedule-search findings; kept
                                           out of the sequential funnel
                                           and Algorithm 2 diagnosis *)
  sched : sched_stats;                  (* schedule-search totals *)
  quarantined : Supervisor.crash list;  (* crash reports, oldest first *)
  keyed : Aggregate.keyed list;         (* diagnosed reports, if enabled *)
  agg_r : Aggregate.group list;
  agg_rs : Aggregate.group list;
  executions : int;
  sup_stats : Supervisor.stats;
  fault_counters : Fault.counters;
  timings : timings;
  obs : Obs.t;
  coverage : Coverage.t;                (* per-variable coverage ledger *)
  attrition : attrition;                (* funnel attrition accounting *)
}

(* Wall-clock timing: campaign phases include supervisor backoff and
   (in a real deployment) I/O waits, which CPU time would hide. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Phase wall times are written by the Pipeline stage runner as volatile
   always-on "time.<stage>_s" gauges; this helper resolves the same
   handles for thin reads (and for the streaming accumulators). *)
let time_gauge obs name =
  Metrics.gauge ~volatile:true ~always:true obs.Obs.metrics ("time." ^ name)

(* Deterministic campaign accounting (funnel stages, cluster sizes,
   report counts) mirrors into always-on "campaign.*" counters. *)
let c_counter obs name =
  Metrics.counter ~always:true obs.Obs.metrics ("campaign." ^ name)

(* Prepared inputs shared by several strategies (Table 4 runs the same
   corpus and profiles through each strategy). The unclustered data-flow
   total now rides along in Cluster.result, so prepare no longer scans
   the map a second time. *)
type prepared = {
  p_options : options;
  p_corpus : Program.t array;
  p_profiles : Dataflow.profiles;
  p_map : Kit_profile.Accessmap.t;
  p_obs : Obs.t;                        (* resolved bundle *)
  p_cov : Coverage.t;                   (* campaign coverage ledger *)
}

(* The ledger's universe: every instrumented shared variable the spec
   marks namespace-protected, in kernel boot order (deterministic for a
   config, so ledger output is byte-stable across schedules). *)
let coverage_universe spec (vars : Heap.varinfo list) =
  Coverage.create
    (List.filter_map
       (fun (v : Heap.varinfo) ->
         if v.Heap.v_instrumented && Spec.var_protected spec v.Heap.v_name then
           Some (v.Heap.v_name, v.Heap.v_addr)
         else None)
       vars)

(* Profiling-time rungs. "Touched" counts raw accesses — including
   reader accesses the spec filter drops, which is exactly the
   visibility the ledger adds over the access map. "Written"/"read"
   mirror the access map's writer/reader universes (the filter keeps
   every write and every protected read, so the batch and streaming
   paths mark identically). *)
let mark_touched_accesses cov accs =
  List.iter
    (fun (a : Stackrec.access) -> Coverage.mark_touched cov ~addr:a.Stackrec.addr)
    accs

let mark_map_rungs cov map =
  List.iter (fun addr -> Coverage.mark_written cov ~addr)
    (Accessmap.writer_addresses map);
  List.iter (fun addr -> Coverage.mark_read cov ~addr)
    (Accessmap.reader_addresses map)

(* Attribution: a report's data flow names the shared address the
   divergence was pinned to; randomly generated cases carry no flow. *)
let mark_report_attributed cov (r : Report.t) =
  match r.Report.testcase.Testcase.flow with
  | Some f -> Coverage.mark_attributed cov ~addr:f.Testcase.addr
  | None -> ()

(* -- pipeline stages ------------------------------------------------------

   The typed stages the campaign driver composes. Each [Pipeline.run]
   wraps the stage in a "phase.<name>" span, a volatile "time.<name>_s"
   gauge and an always-on "pipeline.<name>_runs" counter. *)

let profile_stage =
  Pipeline.v ~consumes:"corpus" ~produces:"profiles+accessmap" "profile"
    (fun _obs (config, spec, corpus) ->
      let profiles = Dataflow.profile_corpus config spec corpus in
      (profiles, Dataflow.build_map profiles))

let generate_stage =
  Pipeline.v ~consumes:"accessmap" ~produces:"clusters" "generate"
    (fun _obs (strategy, seed, corpus_size, map) ->
      Cluster.run strategy ~seed ~corpus_size map)

let prepare (options : options) =
  let obs = match options.obs with Some o -> o | None -> Obs.create () in
  let corpus = Corpus.generate ~seed:options.seed ~size:options.corpus_size in
  let profiles, map =
    Pipeline.run obs profile_stage (options.config, options.spec, corpus)
  in
  let cov = coverage_universe options.spec profiles.Dataflow.vars in
  Array.iter (mark_touched_accesses cov) profiles.Dataflow.accesses;
  mark_map_rungs cov map;
  { p_options = options; p_corpus = Array.of_list corpus;
    p_profiles = profiles; p_map = map; p_obs = obs; p_cov = cov }

let prepared_corpus prepared = prepared.p_corpus

(* Interference test used both for detection-time classification and for
   Algorithm 2 re-testing: masked divergence restricted to receiver calls
   that access protected resources. The supervised variant survives
   modified senders that crash the kernel. *)
let protected_interference spec sup ~sender ~receiver =
  let interfered = Supervisor.test_interference sup ~sender ~receiver in
  Filter.protected_interfered spec receiver interfered

(* -- checkpoints --------------------------------------------------------- *)

(* Everything the execute phase has accumulated, plus the options
   fingerprint a resume must match. Reports are kept newest-first while
   executing and only reversed when the phase completes. *)
type checkpoint = {
  ck_seed : int;
  ck_corpus_size : int;
  ck_strategy : Cluster.strategy;
  ck_done : int;                        (* cluster reps completed *)
  ck_total : int;                       (* cluster reps overall *)
  ck_funnel : Filter.funnel;
  ck_rev_reports : Report.t list;       (* newest first *)
  ck_rev_concurrent : Report.t list;    (* newest first *)
  ck_sched : sched_stats;
  ck_quarantined : Supervisor.crash list; (* oldest first *)
  ck_executions : int;
  ck_generate_s : float;
  ck_execute_s : float;
  ck_attrition : attrition;             (* terminal-stage counts so far *)
  ck_coverage : Coverage.delta;         (* ledger state at pause time *)
}

let copy_funnel (f : Filter.funnel) =
  { Filter.executed = f.Filter.executed; initial = f.Filter.initial;
    after_nondet = f.Filter.after_nondet;
    after_resource = f.Filter.after_resource }

let checkpoint_progress ck = (ck.ck_done, ck.ck_total)

let checkpoint_reports ck = List.length ck.ck_rev_reports

(* Checkpoints ride the validated KITCKPT1 container: magic, kind tag,
   payload length and digest are all checked before any Marshal byte is
   decoded, so a truncated or corrupt file is a typed error. The kind
   was bumped to -v2 when trace nodes switched to the packed
   representation (the reports' Marshal layout changed with it), and to
   -v3 when reports gained an origin and checkpoints gained the
   concurrent report list and schedule-search totals; and to -v4 when
   checkpoints gained the coverage-ledger delta and funnel attrition
   counts. A pre-change file now fails the kind check as a typed error
   instead of being mis-decoded. Execute checkpoints are cheap to
   regenerate, so unlike tenant caches they get no migration path. *)
let checkpoint_kind = "campaign-execute-v4"

let save_checkpoint path ck = Checkpoint.save path ~kind:checkpoint_kind ck

let load_checkpoint path : (checkpoint, Checkpoint.error) result =
  Checkpoint.load path ~kind:checkpoint_kind

(* -- supervised execution ------------------------------------------------ *)

let make_supervisor ~obs options =
  let cfg =
    { Supervisor.default_config with
      Supervisor.fuel = options.fuel;
      max_retries = options.max_retries }
  in
  Supervisor.create ~cfg ~reruns:options.reruns
    ~baseline_cache:options.baseline_cache
    ~fault:(Fault.of_schedule options.faults)
    ~obs options.config

(* One executed cluster representative, as a self-contained result:
   classification is order-free (the funnel only accumulates counters),
   so per-case results can be produced in any schedule — sequential,
   per-domain, or streaming — and folded back in representative order. *)
type case_result = {
  cr_tc : Testcase.t;
  cr_funnel : Filter.funnel;            (* this case's funnel increments *)
  cr_report : Report.t option;
  cr_concurrent : Report.t list;        (* schedule-search findings *)
  cr_sched : sched_stats;               (* this case's search accounting *)
  cr_crashes : Supervisor.crash list;   (* quarantined by this case *)
}

let add_funnel (into : Filter.funnel) (f : Filter.funnel) =
  into.Filter.executed <- into.Filter.executed + f.Filter.executed;
  into.Filter.initial <- into.Filter.initial + f.Filter.initial;
  into.Filter.after_nondet <- into.Filter.after_nondet + f.Filter.after_nondet;
  into.Filter.after_resource <-
    into.Filter.after_resource + f.Filter.after_resource

(* Charge one executed representative to its terminal attrition stage.
   Classification reads the case's own funnel increments, so the charge
   is schedule-free and balance holds by construction: every case lands
   in exactly one branch. A case that completed sequentially is charged
   by its sequential verdict even if schedule search crashed afterwards
   (those crashes still reach the quarantine list). *)
let charge_case (a : attrition) (r : case_result) =
  let f = r.cr_funnel in
  if Option.is_some r.cr_report then a.at_reported <- a.at_reported + 1
  else if f.Filter.executed = 0 then begin
    match r.cr_crashes with
    | { Supervisor.c_reason = Supervisor.Panicked _; _ } :: _ ->
      a.at_quar_panic <- a.at_quar_panic + 1
    | { Supervisor.c_reason = Supervisor.Hung_forever; _ } :: _ ->
      a.at_quar_hung <- a.at_quar_hung + 1
    | { Supervisor.c_reason = Supervisor.Worker_lost _; _ } :: _ | [] ->
      a.at_quar_lost <- a.at_quar_lost + 1
  end
  else if f.Filter.initial = 0 then
    a.at_no_divergence <- a.at_no_divergence + 1
  else if f.Filter.after_nondet = 0 then
    a.at_filtered_nondet <- a.at_filtered_nondet + 1
  else a.at_filtered_resource <- a.at_filtered_resource + 1

(* Attribution and attrition both fold per-case; keeping them in one
   helper means every fold site (chunked execute, executor assembly,
   streaming assembly) stays in lockstep. *)
let absorb_case ~cov (a : attrition) (r : case_result) =
  charge_case a r;
  Option.iter (mark_report_attributed cov) r.cr_report;
  List.iter (mark_report_attributed cov) r.cr_concurrent

(* Execute one cluster representative under supervision; quarantined
   crashers are captured by quarantine-count delta and produce no
   report. [attrs] are correlation attributes ([case], [cluster],
   [domain]) stamped on the execution's trace events, so the
   reconstructed span tree can join each execution to its test case no
   matter which schedule ran it. *)
let exec_case ?(attrs = []) options corpus sup (tc : Testcase.t) =
  let sender = corpus.(tc.Testcase.sender) in
  let receiver = corpus.(tc.Testcase.receiver) in
  let funnel = Filter.funnel_create () in
  let sched = sched_create () in
  let q0 = Supervisor.quarantine_count sup in
  let report, concurrent =
    match Supervisor.execute ~attrs sup ~sender ~receiver with
    | Runner.Crashed _ | Runner.Hung -> (None, [])
    | Runner.Completed outcome ->
      let report =
        match
          Filter.classify options.spec ~testcase:tc ~sender ~receiver outcome
            funnel
        with
        | Filter.Reported r -> Some r
        | Filter.No_divergence | Filter.Filtered_nondet
        | Filter.Filtered_resource ->
          None
      in
      (* Schedule search runs whatever the sequential verdict was: a
         race-window bug is sequentially invisible (No_divergence), so
         gating on a sequential report would miss exactly the findings
         the search exists for. *)
      let concurrent =
        if options.schedules <= 1 then []
        else begin
          let search =
            Supervisor.search_schedules ~attrs sup
              ~schedules:options.schedules ~sender ~receiver outcome
          in
          sched.sched_candidates <- sched.sched_candidates + 1;
          sched.sched_classes <- sched.sched_classes + search.Runner.sr_classes;
          sched.sched_executed <-
            sched.sched_executed + search.Runner.sr_executed;
          sched.sched_pruned <- sched.sched_pruned + search.Runner.sr_pruned;
          sched.sched_skipped <- sched.sched_skipped + search.Runner.sr_skipped;
          List.filter_map
            (Filter.classify_concurrent options.spec ~testcase:tc ~sender
               ~receiver ~trace_b:outcome.Runner.trace_b)
            search.Runner.sr_findings
        end
      in
      (report, concurrent)
  in
  let crashes = Supervisor.quarantined_since sup q0 in
  { cr_tc = tc; cr_funnel = funnel; cr_report = report;
    cr_concurrent = concurrent; cr_sched = sched; cr_crashes = crashes }

(* A case that never produced an outcome because the execution
   environment itself died under it (permanent boot fault, lost worker
   process): a quarantined crash report, same shape as a supervised
   quarantine. *)
let lost_case_result ?(attempts = 0) corpus ~why (tc : Testcase.t) =
  let crash =
    { Supervisor.c_sender = corpus.(tc.Testcase.sender);
      c_receiver = corpus.(tc.Testcase.receiver);
      c_reason = Supervisor.Worker_lost why;
      c_attempts = attempts }
  in
  { cr_tc = tc; cr_funnel = Filter.funnel_create (); cr_report = None;
    cr_concurrent = []; cr_sched = sched_create (); cr_crashes = [ crash ] }

(* Run a chunk of [(case, attrs, tc)] triples sequentially, absorbing
   [Supervisor.Gave_up] at the chunk boundary: a permanent
   infrastructure fault quarantines the faulting case (one attempt) and
   the rest of the chunk (zero attempts) as [Worker_lost] crash reports
   instead of aborting the campaign. Returns [(case, result)] pairs in
   input order. *)
let exec_cases_absorbing options corpus sup triples =
  let rec go acc = function
    | [] -> List.rev acc
    | (case, attrs, tc) :: rest -> (
      match exec_case ~attrs options corpus sup tc with
      | r -> go ((case, r) :: acc) rest
      | exception Supervisor.Gave_up why ->
        let first = (case, lost_case_result ~attempts:1 corpus ~why tc) in
        let others =
          List.map
            (fun (case, _, tc) -> (case, lost_case_result corpus ~why tc))
            rest
        in
        List.rev_append acc (first :: others))
  in
  go [] triples

(* Parallel chunk execution on OCaml domains. The chunk's representatives
   arrive as [(case, attrs, tc)] triples ([case] a globally increasing
   index, [attrs] the case's correlation attributes) and are dealt
   round-robin over [domains] slices; each domain boots its own isolated
   supervised environment and observability registry and produces
   per-case results, stamping its executions with a ["domain"] attr on
   top of the case attrs. The merge sorts by case index, so reports,
   funnel and quarantine come out structurally identical to the
   sequential schedule — only wall-clock changes. Per-domain registries
   are folded into the campaign bundle with [Metrics.absorb] and the
   per-domain trace rings with [Tracer.merge]. *)
let run_chunk_on_domains ~domains ~obs options corpus chunk =
  let slices = Array.make domains [] in
  List.iteri
    (fun i case -> slices.(i mod domains) <- case :: slices.(i mod domains))
    chunk;
  let worker d slice () =
    let wobs = Obs.create () in
    let sup = make_supervisor ~obs:wobs options in
    let dom = ("domain", string_of_int d) in
    let out =
      exec_cases_absorbing options corpus sup
        (List.map (fun (case, attrs, tc) -> (case, dom :: attrs, tc)) slice)
    in
    (out, Supervisor.executions sup, Obs.snapshot wobs,
     Tracer.events wobs.Obs.tracer)
  in
  let handles =
    Array.mapi
      (fun d slice ->
        let slice = List.rev slice in
        if slice = [] then None else Some (Domain.spawn (worker d slice)))
      slices
  in
  (* Join every domain before propagating any failure, so a crashed
     domain cannot leak its siblings. *)
  let joined =
    Array.map
      (Option.map (fun h ->
           match Domain.join h with v -> Ok v | exception e -> Error e))
      handles
  in
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    joined;
  let results =
    Array.to_list joined
    |> List.filter_map (function
         | Some (Ok r) -> Some r
         | Some (Error _) | None -> None)
  in
  List.iter
    (fun (_, _, snap, _) -> Metrics.absorb obs.Obs.metrics snap)
    results;
  Tracer.merge obs.Obs.tracer
    (List.map (fun (_, _, _, events) -> events) results);
  let per_case =
    List.concat_map (fun (out, _, _, _) -> out) results
    |> List.sort (fun (i, _) (j, _) -> compare i j)
    |> List.map snd
  in
  (per_case, List.fold_left (fun acc (_, execs, _, _) -> acc + execs) 0 results)

let execute_stage =
  Pipeline.v ~consumes:"clusters" ~produces:"case-results" "execute"
    (fun obs (options, corpus, chunk, domains) ->
      if domains = 1 then begin
        let sup = make_supervisor ~obs options in
        let out = List.map snd (exec_cases_absorbing options corpus sup chunk) in
        (out, Supervisor.executions sup, Some sup)
      end
      else
        let out, execs = run_chunk_on_domains ~domains ~obs options corpus chunk in
        (out, execs, None))

let diagnose_stage =
  Pipeline.v ~consumes:"reports" ~produces:"keyed-reports" "diagnose"
    (fun _obs (options, sup, reports) ->
      List.map
        (fun (r : Report.t) ->
          let pairs =
            Diagnose.culprits
              ~test:(protected_interference options.spec sup)
              ~sender:r.Report.sender ~receiver:r.Report.receiver
              ~interfered:r.Report.interfered
          in
          Aggregate.key_report r pairs)
        reports)

(* Run the execute phase for up to [budget] representatives, starting
   from [resume] (or from scratch). Returns either the completed phase
   or a checkpoint to continue from. Each call boots its own supervised
   environment, like a campaign process restarted after an interrupt. *)
type phase_result =
  | Phase_done of {
      generation : Cluster.result;
      funnel : Filter.funnel;
      reports : Report.t list;
      concurrent : Report.t list;
      sched : sched_stats;
      quarantined : Supervisor.crash list;
      prior_executions : int;           (* from resumed checkpoints *)
      sup : Supervisor.t;
      generate_s : float;
      execute_s : float;
      attrition : attrition;            (* terminal stages; generated and
                                           absorbed are set by [finish] *)
    }
  | Phase_paused of checkpoint

let validate_resume options strategy total (ck : checkpoint) =
  if ck.ck_seed <> options.seed then
    invalid_arg "Campaign.resume: checkpoint was taken with a different seed";
  if ck.ck_corpus_size <> options.corpus_size then
    invalid_arg
      "Campaign.resume: checkpoint was taken with a different corpus size";
  if ck.ck_strategy <> strategy then
    invalid_arg
      "Campaign.resume: checkpoint was taken with a different strategy";
  if ck.ck_total <> total then
    invalid_arg "Campaign.resume: checkpoint cluster count mismatch"

let execute_phase ?resume ~budget ~strategy prepared =
  let options = { prepared.p_options with strategy } in
  let obs = prepared.p_obs in
  let generation, generate_s_now =
    Pipeline.run_timed obs generate_stage
      (strategy, options.seed, Array.length prepared.p_corpus, prepared.p_map)
  in
  Metrics.set_counter (c_counter obs "generated") generation.Cluster.generated;
  Metrics.set_counter (c_counter obs "clusters") generation.Cluster.clusters;
  let reps = generation.Cluster.reps in
  let total = List.length reps in
  let done_, funnel, rev_reports, rev_concurrent, sched, quarantined0,
      executions0, generate_s, execute_s0, attrition =
    match resume with
    | None ->
      (0, Filter.funnel_create (), [], [], sched_create (), [], 0,
       generate_s_now, 0.0, attrition_create ())
    | Some ck ->
      validate_resume options strategy total ck;
      (* Re-preparation re-marked the profiling rungs; absorbing the
         checkpointed delta restores attribution, so ledger state is
         monotone across resumes. *)
      Coverage.absorb prepared.p_cov ck.ck_coverage;
      ( ck.ck_done, copy_funnel ck.ck_funnel, ck.ck_rev_reports,
        ck.ck_rev_concurrent, copy_sched ck.ck_sched, ck.ck_quarantined,
        ck.ck_executions, ck.ck_generate_s, ck.ck_execute_s,
        copy_attrition ck.ck_attrition )
  in
  Metrics.set_gauge (time_gauge obs "generate_s") generate_s;
  let reports = ref rev_reports in
  let concurrent = ref rev_concurrent in
  (* At least one representative per chunk: a non-positive budget would
     pause without progress and turn resume-until-done loops into
     livelocks. *)
  let budget = max 1 budget in
  let todo = List.filteri (fun i _ -> i >= done_) reps in
  let chunk = List.filteri (fun i _ -> i < budget) todo in
  let executed_now = List.length chunk in
  (* Global case indices survive checkpoint resume: case [done_ + i] is
     the same representative whichever process executes it. *)
  let chunk =
    List.mapi
      (fun i tc ->
        let case = done_ + i in
        (case, [ ("case", string_of_int case) ], tc))
      chunk
  in
  let domains = max 1 options.domains in
  let (out, executions_now, chunk_sup), execute_s_now =
    Pipeline.run_timed obs execute_stage ~elapsed_base:execute_s0
      ~attrs:
        [ ("chunk", string_of_int executed_now);
          ("domains", string_of_int domains) ]
      (options, prepared.p_corpus, chunk, domains)
  in
  let quarantined_now = List.concat_map (fun r -> r.cr_crashes) out in
  List.iter
    (fun r ->
      add_funnel funnel r.cr_funnel;
      add_sched sched r.cr_sched;
      absorb_case ~cov:prepared.p_cov attrition r;
      Option.iter (fun rep -> reports := rep :: !reports) r.cr_report;
      concurrent := List.rev_append r.cr_concurrent !concurrent)
    out;
  let execute_s = execute_s0 +. execute_s_now in
  (* Per-chunk accounting: representative counts are deterministic,
     chunk wall-times are volatile. *)
  Metrics.observe
    (Metrics.histogram ~always:true obs.Obs.metrics "campaign.chunk_reps")
    (float_of_int executed_now);
  Metrics.observe
    (Metrics.histogram ~volatile:true ~always:true obs.Obs.metrics
       "campaign.chunk_s")
    execute_s_now;
  let quarantined = quarantined0 @ quarantined_now in
  let executions = executions0 + executions_now in
  if done_ + executed_now < total then
    Phase_paused
      {
        ck_seed = options.seed;
        ck_corpus_size = options.corpus_size;
        ck_strategy = strategy;
        ck_done = done_ + executed_now;
        ck_total = total;
        ck_funnel = copy_funnel funnel;
        ck_rev_reports = !reports;
        ck_rev_concurrent = !concurrent;
        ck_sched = copy_sched sched;
        ck_quarantined = quarantined;
        ck_executions = executions;
        ck_generate_s = generate_s;
        ck_execute_s = execute_s;
        ck_attrition = copy_attrition attrition;
        ck_coverage = Coverage.delta prepared.p_cov;
      }
  else
    (* In parallel mode the chunk supervisors died with their domains;
       diagnosis gets a fresh sequential environment, and the chunk's
       executions ride along via [prior_executions]. *)
    let sup, prior_executions =
      match chunk_sup with
      | Some sup -> (sup, executions0)
      | None -> (make_supervisor ~obs options, executions)
    in
    Phase_done
      { generation; funnel; reports = List.rev !reports;
        concurrent = List.rev !concurrent; sched; quarantined;
        prior_executions; sup; generate_s; execute_s; attrition }

(* Mirror final campaign accounting into always-on counters. *)
let set_result_counters obs ~executions ~funnel ~reports ~quarantined =
  Metrics.set_counter (c_counter obs "executions") executions;
  Metrics.set_counter (c_counter obs "funnel_executed") funnel.Filter.executed;
  Metrics.set_counter (c_counter obs "funnel_initial") funnel.Filter.initial;
  Metrics.set_counter (c_counter obs "funnel_after_nondet")
    funnel.Filter.after_nondet;
  Metrics.set_counter (c_counter obs "funnel_after_resource")
    funnel.Filter.after_resource;
  Metrics.set_counter (c_counter obs "reports") (List.length reports);
  Metrics.set_counter (c_counter obs "quarantined") (List.length quarantined)

(* Schedule-search counters exist only when the search actually ran:
   interning them unconditionally would perturb the golden obs export of
   sequential-only campaigns. *)
let set_sched_counters obs ~concurrent (sched : sched_stats) =
  if sched.sched_candidates > 0 || concurrent <> [] then begin
    Metrics.set_counter (c_counter obs "sched_candidates")
      sched.sched_candidates;
    Metrics.set_counter (c_counter obs "sched_classes") sched.sched_classes;
    Metrics.set_counter (c_counter obs "sched_executed") sched.sched_executed;
    Metrics.set_counter (c_counter obs "sched_pruned") sched.sched_pruned;
    Metrics.set_counter (c_counter obs "sched_skipped") sched.sched_skipped;
    Metrics.set_counter (c_counter obs "concurrent_reports")
      (List.length concurrent)
  end

(* Coverage-ledger and attrition totals mirror into always-on counters,
   so `kit stats --funnel` can render the funnel from any exported
   snapshot without the campaign value in hand. *)
let set_coverage_counters obs cov (a : attrition) =
  let s = Coverage.summary cov in
  let set name v = Metrics.set_counter (c_counter obs name) v in
  set "cov_vars" s.Coverage.sum_vars;
  set "cov_touched" s.Coverage.sum_touched;
  set "cov_written" s.Coverage.sum_written;
  set "cov_read" s.Coverage.sum_read;
  set "cov_paired" s.Coverage.sum_paired;
  set "cov_attributed" s.Coverage.sum_attributed;
  set "cov_gaps" s.Coverage.sum_gaps;
  set "attr_generated" a.at_generated;
  set "attr_absorbed" a.at_absorbed;
  set "attr_quar_panic" a.at_quar_panic;
  set "attr_quar_hung" a.at_quar_hung;
  set "attr_quar_lost" a.at_quar_lost;
  set "attr_no_divergence" a.at_no_divergence;
  set "attr_filtered_nondet" a.at_filtered_nondet;
  set "attr_filtered_resource" a.at_filtered_resource;
  set "attr_reported" a.at_reported

(* Thin reads: the gauges are the source of truth for wall times. *)
let read_timings obs =
  { profile_s = Metrics.gauge_value (time_gauge obs "profile_s");
    generate_s = Metrics.gauge_value (time_gauge obs "generate_s");
    execute_s = Metrics.gauge_value (time_gauge obs "execute_s");
    diagnose_s = Metrics.gauge_value (time_gauge obs "diagnose_s") }

let finish prepared options phase =
  match phase with
  | Phase_paused _ -> assert false
  | Phase_done
      { generation; funnel; reports; concurrent; sched; quarantined;
        prior_executions; sup; generate_s; execute_s; attrition } ->
    let obs = prepared.p_obs in
    let keyed =
      if not options.diagnose then begin
        Metrics.set_gauge (time_gauge obs "diagnose_s") 0.0;
        []
      end
      else Pipeline.run obs diagnose_stage (options, sup, reports)
    in
    Metrics.set_gauge (time_gauge obs "generate_s") generate_s;
    Metrics.set_gauge (time_gauge obs "execute_s") execute_s;
    let agg_r = Aggregate.agg_r keyed in
    let agg_rs = Aggregate.agg_rs keyed in
    (* diagnosis re-executed through [sup], so read the counter last *)
    let executions = prior_executions + Supervisor.executions sup in
    (* Generation totals close the attrition balance: every generated
       case either clustered into an executed representative (and was
       charged per-case above) or was absorbed by clustering. *)
    attrition.at_generated <- generation.Cluster.generated;
    attrition.at_absorbed <-
      generation.Cluster.generated - List.length generation.Cluster.reps;
    set_result_counters obs ~executions ~funnel ~reports ~quarantined;
    set_sched_counters obs ~concurrent sched;
    set_coverage_counters obs prepared.p_cov attrition;
    {
      options;
      corpus = prepared.p_corpus;
      generation;
      df_total = generation.Cluster.df_total;
      funnel;
      reports;
      concurrent;
      sched;
      quarantined;
      keyed;
      agg_r;
      agg_rs;
      executions;
      sup_stats = sup.Supervisor.stats;
      fault_counters = Fault.counters sup.Supervisor.fault;
      timings = read_timings obs;
      obs;
      coverage = prepared.p_cov;
      attrition;
    }

let execute_partial ?strategy ?resume ~budget prepared =
  let options = prepared.p_options in
  let strategy =
    match (strategy, resume) with
    | Some s, _ -> s
    | None, Some ck -> ck.ck_strategy
    | None, None -> options.strategy
  in
  match execute_phase ?resume ~budget ~strategy prepared with
  | Phase_paused ck -> `Paused ck
  | Phase_done _ as phase ->
    `Done (finish prepared { options with strategy } phase)

let execute_prepared ?strategy ?resume prepared =
  match execute_partial ?strategy ?resume ~budget:max_int prepared with
  | `Done t -> t
  | `Paused _ -> assert false (* budget covers every representative *)

(* Run a complete campaign with [options]. *)
let run options = execute_prepared (prepare options)

(* -- pluggable executors -------------------------------------------------

   The seam external execution drivers (the forked process pool in
   kit.serve, remote executors) plug into: the campaign prepares and
   generates as usual, hands the cluster representatives to [executor],
   and folds whatever per-case results come back through the same
   funnel/report/quarantine/diagnosis machinery as the built-in paths.
   The executor returns case results in representative order plus its
   total execution count (it runs in its own processes, so supervisor
   counters don't flow back through [obs]). *)

type executor =
  options -> Program.t array -> Cluster.result -> case_result list * int

(* The generate phase alone, on already-prepared inputs. Split out of
   [run_with_executor] so asynchronous drivers (the serve scheduler)
   can materialise a tenant's cluster representatives up front, execute
   them over any schedule, and only later fold the results back with
   {!assemble}. *)
let generate_prepared ?strategy prepared =
  let options = prepared.p_options in
  let strategy = Option.value strategy ~default:options.strategy in
  let obs = prepared.p_obs in
  let generation, generate_s =
    Pipeline.run_timed obs generate_stage
      (strategy, options.seed, Array.length prepared.p_corpus, prepared.p_map)
  in
  Metrics.set_gauge (time_gauge obs "generate_s") generate_s;
  Metrics.set_counter (c_counter obs "generated") generation.Cluster.generated;
  Metrics.set_counter (c_counter obs "clusters") generation.Cluster.clusters;
  generation

(* Fold per-case results (representative order) back into a finished
   campaign: funnel accumulation, report/quarantine collection, then the
   shared diagnosis machinery on a fresh sequential environment —
   exactly what [run_with_executor] does after its executor returns. *)
let assemble ?(execute_s = 0.0) prepared generation out ~executions =
  let options =
    { prepared.p_options with strategy = generation.Cluster.strategy }
  in
  let obs = prepared.p_obs in
  let funnel = Filter.funnel_create () in
  let sched = sched_create () in
  let attrition = attrition_create () in
  let rev_reports = ref [] and rev_concurrent = ref []
  and rev_quarantined = ref [] in
  List.iter
    (fun r ->
      add_funnel funnel r.cr_funnel;
      add_sched sched r.cr_sched;
      absorb_case ~cov:prepared.p_cov attrition r;
      Option.iter (fun rep -> rev_reports := rep :: !rev_reports) r.cr_report;
      rev_concurrent := List.rev_append r.cr_concurrent !rev_concurrent;
      rev_quarantined := List.rev_append r.cr_crashes !rev_quarantined)
    out;
  finish prepared options
    (Phase_done
       { generation; funnel;
         reports = List.rev !rev_reports;
         concurrent = List.rev !rev_concurrent;
         sched;
         quarantined = List.rev !rev_quarantined;
         prior_executions = executions;
         sup = make_supervisor ~obs options;
         generate_s = Metrics.gauge_value (time_gauge obs "generate_s");
         execute_s;
         attrition })

let run_with_executor ~executor options =
  let prepared = prepare options in
  let generation = generate_prepared prepared in
  let (out, executions), execute_s =
    timed (fun () -> executor options prepared.p_corpus generation)
  in
  assemble prepared generation out ~executions ~execute_s

(* Public alias: pool workers boot the exact environment the built-in
   paths use. *)
let supervisor = make_supervisor

(* -- streaming pipeline --------------------------------------------------

   Execute-while-generate: each program is profiled, folded into the
   online cluster table, and any newly-sealed (or representative-changed)
   cluster is executed immediately — no global clustering barrier, so the
   first report lands while most of the corpus is still unprofiled.

   Per-cluster results are cached by cluster id; the final assembly
   orders them by the batch representative order, which makes the
   streaming result structurally identical to the batch path
   (property-tested). [extend] reuses the same machinery: feeding M more
   programs emits events only for clusters whose membership created a
   new cluster or changed a representative, so only those re-execute. *)

type stream = {
  s_options : options;
  s_obs : Obs.t;
  s_profiler : Dataflow.profiler;
  s_cov : Coverage.t;                   (* coverage ledger, fed per program *)
  s_cstate : Cluster.state;
  s_sup : Supervisor.t;                 (* sequential executor + diagnosis *)
  mutable s_corpus : Program.t array;
  s_results : (Testcase.t, case_result) Jobqueue.t; (* keyed by cluster id *)
  s_keyed : (int, Aggregate.keyed) Hashtbl.t;  (* diagnosis cache *)
  s_t0 : float;
  mutable s_first_report_s : float option;
  mutable s_exec_cases : int;           (* rep executions incl. re-runs *)
  mutable s_reexecuted : int;           (* rep-change invalidations *)
  mutable s_domain_execs : int;         (* executions by domain workers *)
  mutable s_profile_s : float;
  mutable s_generate_s : float;
  mutable s_execute_s : float;
  mutable s_diagnose_s : float;
  mutable s_stream_s : float;           (* cumulative fold wall time *)
}

type stream_stats = {
  fed : int;                            (* programs folded *)
  live_clusters : int;
  executed_cases : int;
  reexecuted : int;
  first_report_s : float option;
  peak_feed_pairs : int;
}

let stream_stats s =
  { fed = Cluster.fed s.s_cstate;
    live_clusters = List.length (Cluster.live s.s_cstate);
    executed_cases = s.s_exec_cases;
    reexecuted = s.s_reexecuted;
    first_report_s = s.s_first_report_s;
    peak_feed_pairs = Cluster.peak_feed_pairs s.s_cstate }

let s_counter s name n = Metrics.set_counter (c_counter s.s_obs name) n

(* Execute the clusters an event batch sealed or re-sealed, caching the
   per-case results by cluster id. *)
let stream_execute s (events : Cluster.event list) =
  (* The per-cluster result cache is a Jobqueue keyed by cluster id:
     sealing submits the representative, a representative change reopens
     the job (stale result discarded by [submit_as]), dropping forgets
     it, and completed executions are recorded with [complete]. *)
  let cases =
    List.filter_map
      (function
        | Cluster.Dropped id ->
          Jobqueue.drop s.s_results id;
          Hashtbl.remove s.s_keyed id;
          None
        | Cluster.Sealed (id, tc) ->
          Jobqueue.submit_as s.s_results ~id tc;
          Some (id, tc)
        | Cluster.Rep_changed (id, tc) ->
          (* Cached execution and diagnosis are for the old rep: stale. *)
          Jobqueue.submit_as s.s_results ~id tc;
          Hashtbl.remove s.s_keyed id;
          s.s_reexecuted <- s.s_reexecuted + 1;
          Some (id, tc))
      events
  in
  if cases <> [] then begin
    let domains = max 1 s.s_options.domains in
    (* Streaming case indices are execution ordinals; the cluster id
       rides along so traces can be joined back to the cluster table. *)
    let indexed =
      List.mapi
        (fun i (id, tc) ->
          let case = s.s_exec_cases + i in
          ( case,
            [ ("case", string_of_int case);
              ("cluster", string_of_int id) ],
            tc ))
        cases
    in
    let (out, dexecs), dt =
      timed (fun () ->
          if domains = 1 then
            ( List.map snd
                (exec_cases_absorbing s.s_options s.s_corpus s.s_sup indexed),
              0 )
          else
            run_chunk_on_domains ~domains ~obs:s.s_obs s.s_options s.s_corpus
              indexed)
    in
    s.s_execute_s <- s.s_execute_s +. dt;
    s.s_domain_execs <- s.s_domain_execs + dexecs;
    s.s_exec_cases <- s.s_exec_cases + List.length cases;
    List.iter2
      (fun (id, _) r ->
        Jobqueue.complete s.s_results id r;
        if Option.is_some r.cr_report && s.s_first_report_s = None then
          s.s_first_report_s <- Some (Unix.gettimeofday () -. s.s_t0))
      cases out
  end

(* Profile programs [from, to_size) one at a time and fold each into the
   online cluster table, executing sealed representatives as they
   appear. One Pipeline stage run per growth step keeps the span count
   bounded while the per-phase gauges still accumulate. *)
let stream_fold_stage =
  Pipeline.v ~consumes:"corpus-suffix" ~produces:"case-results" "stream"
    (fun _obs (s, from, to_size) ->
      for prog = from to to_size - 1 do
        let (raw, accs), dt =
          timed (fun () ->
              Dataflow.profile_program_full s.s_profiler s.s_corpus.(prog))
        in
        s.s_profile_s <- s.s_profile_s +. dt;
        (* The filtered list keeps every write and every protected read,
           so marking per filtered access reaches exactly the rungs the
           batch path derives from the finished access map. *)
        mark_touched_accesses s.s_cov raw;
        List.iter
          (fun (a : Stackrec.access) ->
            match a.Stackrec.rw with
            | Kevent.Write -> Coverage.mark_written s.s_cov ~addr:a.Stackrec.addr
            | Kevent.Read -> Coverage.mark_read s.s_cov ~addr:a.Stackrec.addr)
          accs;
        let events, dt = timed (fun () -> Cluster.feed s.s_cstate ~prog accs) in
        s.s_generate_s <- s.s_generate_s +. dt;
        stream_execute s events
      done)

let stream_grow s ~to_size =
  let from = Array.length s.s_corpus in
  if to_size < from then invalid_arg "Campaign.extend: corpus cannot shrink";
  (* Corpus generation is prefix-stable: generating a larger corpus from
     the same seed extends the smaller one, so only the suffix is new. *)
  s.s_corpus <-
    Array.of_list (Corpus.generate ~seed:s.s_options.seed ~size:to_size);
  let (), dt =
    Pipeline.run_timed s.s_obs stream_fold_stage ~elapsed_base:s.s_stream_s
      ~attrs:[ ("from", string_of_int from); ("to", string_of_int to_size) ]
      (s, from, to_size)
  in
  s.s_stream_s <- s.s_stream_s +. dt;
  s_counter s "stream_fed" (Cluster.fed s.s_cstate);
  s_counter s "stream_executed" s.s_exec_cases;
  s_counter s "stream_reexecuted" s.s_reexecuted

let stream (options : options) =
  let obs = match options.obs with Some o -> o | None -> Obs.create () in
  let options = { options with obs = Some obs } in
  let profiler = Dataflow.profiler options.config options.spec in
  let s =
    { s_options = options;
      s_obs = obs;
      s_profiler = profiler;
      s_cov =
        coverage_universe options.spec (Dataflow.profiler_vars profiler);
      s_cstate = Cluster.start ~seed:options.seed options.strategy;
      s_sup = make_supervisor ~obs options;
      s_corpus = [||];
      s_results = Jobqueue.create ();
      s_keyed = Hashtbl.create 256;
      s_t0 = Unix.gettimeofday ();
      s_first_report_s = None;
      s_exec_cases = 0;
      s_reexecuted = 0;
      s_domain_execs = 0;
      s_profile_s = 0.0;
      s_generate_s = 0.0;
      s_execute_s = 0.0;
      s_diagnose_s = 0.0;
      s_stream_s = 0.0 }
  in
  stream_grow s ~to_size:options.corpus_size;
  s

(* Assemble the campaign result from the per-cluster caches. Ordering:
   the batch path executes [generation.reps] in order (sorted for keyed
   strategies, draw order for RAND), so the assembly replays exactly
   that order over the cached results — reports, funnel and quarantine
   come out structurally identical to [run]. *)
let stream_result s =
  let options = s.s_options in
  let obs = s.s_obs in
  stream_execute s (Cluster.drain s.s_cstate);
  let generation = Cluster.finalize s.s_cstate in
  Metrics.set_counter (c_counter obs "generated") generation.Cluster.generated;
  Metrics.set_counter (c_counter obs "clusters") generation.Cluster.clusters;
  let live = Cluster.live s.s_cstate in
  let ordered =
    match options.strategy with
    | Cluster.Rand _ -> live            (* draw order, like the batch path *)
    | Cluster.Df | Cluster.Df_ia | Cluster.Df_st _ ->
      List.sort (fun (_, a) (_, b) -> Testcase.compare a b) live
  in
  let cases =
    List.map
      (fun (id, rep) ->
        match Jobqueue.result s.s_results id with
        | Some r -> (id, r)
        | None ->
          Fmt.invalid_arg "Campaign.stream_result: cluster %d (%a) never ran"
            id Testcase.pp rep)
      ordered
  in
  let funnel = Filter.funnel_create () in
  let sched = sched_create () in
  (* Attribution and attrition fold over the *final* per-cluster cache —
     never over superseded executions of replaced representatives — so
     the streaming ledger and funnel match the batch path exactly. *)
  let attrition = attrition_create () in
  attrition.at_generated <- generation.Cluster.generated;
  attrition.at_absorbed <- generation.Cluster.generated - List.length cases;
  let rev_reports = ref [] and rev_concurrent = ref []
  and rev_quarantined = ref [] in
  List.iter
    (fun (_, r) ->
      add_funnel funnel r.cr_funnel;
      add_sched sched r.cr_sched;
      absorb_case ~cov:s.s_cov attrition r;
      Option.iter (fun rep -> rev_reports := rep :: !rev_reports) r.cr_report;
      rev_concurrent := List.rev_append r.cr_concurrent !rev_concurrent;
      rev_quarantined := List.rev_append r.cr_crashes !rev_quarantined)
    cases;
  let reports = List.rev !rev_reports in
  let concurrent = List.rev !rev_concurrent in
  let quarantined = List.rev !rev_quarantined in
  (* Diagnose newly-reported clusters; unchanged clusters reuse the
     cached keyed report from a previous assembly. *)
  let keyed, diagnose_dt =
    timed (fun () ->
        if not options.diagnose then []
        else
          List.filter_map
            (fun (id, r) ->
              match r.cr_report with
              | None -> None
              | Some rep -> (
                match Hashtbl.find_opt s.s_keyed id with
                | Some k -> Some k
                | None ->
                  let pairs =
                    Diagnose.culprits
                      ~test:(protected_interference options.spec s.s_sup)
                      ~sender:rep.Report.sender ~receiver:rep.Report.receiver
                      ~interfered:rep.Report.interfered
                  in
                  let k = Aggregate.key_report rep pairs in
                  Hashtbl.replace s.s_keyed id k;
                  Some k))
            cases)
  in
  s.s_diagnose_s <- s.s_diagnose_s +. diagnose_dt;
  Metrics.set_gauge (time_gauge obs "profile_s") s.s_profile_s;
  Metrics.set_gauge (time_gauge obs "generate_s") s.s_generate_s;
  Metrics.set_gauge (time_gauge obs "execute_s") s.s_execute_s;
  Metrics.set_gauge (time_gauge obs "diagnose_s") s.s_diagnose_s;
  let executions = Supervisor.executions s.s_sup + s.s_domain_execs in
  set_result_counters obs ~executions ~funnel ~reports ~quarantined;
  set_sched_counters obs ~concurrent sched;
  set_coverage_counters obs s.s_cov attrition;
  {
    options = { options with corpus_size = Array.length s.s_corpus };
    corpus = s.s_corpus;
    generation;
    df_total = generation.Cluster.df_total;
    funnel;
    reports;
    concurrent;
    sched;
    quarantined;
    keyed;
    agg_r = Aggregate.agg_r keyed;
    agg_rs = Aggregate.agg_rs keyed;
    executions;
    sup_stats = s.s_sup.Supervisor.stats;
    fault_counters = Fault.counters s.s_sup.Supervisor.fault;
    timings = read_timings obs;
    obs;
    coverage = s.s_cov;
    attrition;
  }

let extend s ~add =
  if add < 0 then invalid_arg "Campaign.extend: add must be non-negative";
  stream_grow s ~to_size:(Array.length s.s_corpus + add);
  stream_result s
