(* The end-to-end KIT pipeline (paper, Figure 3): corpus → profiling →
   data-flow test case generation and clustering → two-phase execution →
   divergence detection and filtering → diagnosis (Algorithm 2) → report
   aggregation. Fully deterministic for a given seed.

   Execution runs under the supervised runtime (Exec.Supervisor): test
   cases that panic or hang the kernel are retried with backoff and
   quarantined as crash reports once the retry budget is spent, and the
   execute phase checkpoints so an interrupted campaign resumes without
   re-executing completed clusters. *)

module Program = Kit_abi.Program
module Corpus = Kit_abi.Corpus
module Config = Kit_kernel.Config
module Fault = Kit_kernel.Fault
module Spec = Kit_spec.Spec
module Dataflow = Kit_gen.Dataflow
module Cluster = Kit_gen.Cluster
module Testcase = Kit_gen.Testcase
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Supervisor = Kit_exec.Supervisor
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Diagnose = Kit_report.Diagnose
module Aggregate = Kit_report.Aggregate
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type options = {
  config : Config.t;
  spec : Spec.t;
  corpus_size : int;
  seed : int;
  strategy : Cluster.strategy;
  reruns : int;
  diagnose : bool;
  faults : Fault.schedule;              (* injected fault schedule *)
  fuel : int;                           (* per-execution step budget *)
  max_retries : int;                    (* supervisor retry budget *)
  baseline_cache : bool;                (* memoize receiver-solo traces *)
  domains : int;                        (* execute-phase parallelism *)
  obs : Obs.t option;                   (* observability bundle; None =
                                           private bundle per campaign *)
}

let default_options =
  {
    config = Config.v5_13 ();
    spec = Spec.default;
    corpus_size = 320;
    seed = 7;
    strategy = Cluster.Df_ia;
    reruns = 3;
    diagnose = true;
    faults = [];
    fuel = Supervisor.default_config.Supervisor.fuel;
    max_retries = Supervisor.default_config.Supervisor.max_retries;
    baseline_cache = true;
    domains = 1;
    obs = None;
  }

type timings = {
  profile_s : float;
  generate_s : float;
  execute_s : float;
  diagnose_s : float;
}

type t = {
  options : options;
  corpus : Program.t array;
  generation : Cluster.result;
  df_total : int;                       (* unclustered data-flow count *)
  funnel : Filter.funnel;
  reports : Report.t list;
  quarantined : Supervisor.crash list;  (* crash reports, oldest first *)
  keyed : Aggregate.keyed list;         (* diagnosed reports, if enabled *)
  agg_r : Aggregate.group list;
  agg_rs : Aggregate.group list;
  executions : int;
  sup_stats : Supervisor.stats;
  fault_counters : Fault.counters;
  timings : timings;
  obs : Obs.t;
}

(* Wall-clock timing: campaign phases include supervisor backoff and
   (in a real deployment) I/O waits, which CPU time would hide. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Wall-clock phase timings live in the registry as volatile gauges
   (excluded from deterministic snapshots) and are always-on: they are
   campaign accounting, so the [timings] record — now a thin read over
   these gauges — stays populated even through a disabled bundle. *)
let time_gauge obs name =
  Metrics.gauge ~volatile:true ~always:true obs.Obs.metrics ("time." ^ name)

(* Deterministic campaign accounting (funnel stages, cluster sizes,
   report counts) mirrors into always-on "campaign.*" counters. *)
let c_counter obs name =
  Metrics.counter ~always:true obs.Obs.metrics ("campaign." ^ name)

(* Prepared inputs shared by several strategies (Table 4 runs the same
   corpus and profiles through each strategy). *)
type prepared = {
  p_options : options;
  p_corpus : Program.t array;
  p_profiles : Dataflow.profiles;
  p_map : Kit_profile.Accessmap.t;
  p_df_total : int;
  p_obs : Obs.t;                        (* resolved bundle *)
}

let prepare (options : options) =
  let obs = match options.obs with Some o -> o | None -> Obs.create () in
  let corpus = Corpus.generate ~seed:options.seed ~size:options.corpus_size in
  let (profiles, map), profile_s =
    Tracer.with_span obs.Obs.tracer "phase.profile" (fun () ->
        timed (fun () ->
            let profiles =
              Dataflow.profile_corpus options.config options.spec corpus
            in
            (profiles, Dataflow.build_map profiles)))
  in
  Metrics.set_gauge (time_gauge obs "profile_s") profile_s;
  { p_options = options; p_corpus = Array.of_list corpus;
    p_profiles = profiles; p_map = map;
    p_df_total = Dataflow.total_flows map; p_obs = obs }

(* Interference test used both for detection-time classification and for
   Algorithm 2 re-testing: masked divergence restricted to receiver calls
   that access protected resources. The supervised variant survives
   modified senders that crash the kernel. *)
let protected_interference spec sup ~sender ~receiver =
  let interfered = Supervisor.test_interference sup ~sender ~receiver in
  Filter.protected_interfered spec receiver interfered

(* -- checkpoints --------------------------------------------------------- *)

(* Everything the execute phase has accumulated, plus the options
   fingerprint a resume must match. Reports are kept newest-first while
   executing and only reversed when the phase completes. *)
type checkpoint = {
  ck_seed : int;
  ck_corpus_size : int;
  ck_strategy : Cluster.strategy;
  ck_done : int;                        (* cluster reps completed *)
  ck_total : int;                       (* cluster reps overall *)
  ck_funnel : Filter.funnel;
  ck_rev_reports : Report.t list;       (* newest first *)
  ck_quarantined : Supervisor.crash list; (* oldest first *)
  ck_executions : int;
  ck_generate_s : float;
  ck_execute_s : float;
}

let copy_funnel (f : Filter.funnel) =
  { Filter.executed = f.Filter.executed; initial = f.Filter.initial;
    after_nondet = f.Filter.after_nondet;
    after_resource = f.Filter.after_resource }

let checkpoint_progress ck = (ck.ck_done, ck.ck_total)

let checkpoint_magic = "KITCKPT1"

let save_checkpoint path ck =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc checkpoint_magic;
      Marshal.to_channel oc ck [])

let load_checkpoint path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match really_input_string ic (String.length checkpoint_magic) with
        | exception End_of_file -> Error (path ^ ": not a checkpoint file")
        | magic when not (String.equal magic checkpoint_magic) ->
          Error (path ^ ": not a checkpoint file")
        | _ -> (
          match (Marshal.from_channel ic : checkpoint) with
          | ck -> Ok ck
          | exception _ -> Error (path ^ ": truncated or corrupt checkpoint")))

(* -- supervised execution ------------------------------------------------ *)

let make_supervisor ~obs options =
  let cfg =
    { Supervisor.default_config with
      Supervisor.fuel = options.fuel;
      max_retries = options.max_retries }
  in
  Supervisor.create ~cfg ~reruns:options.reruns
    ~baseline_cache:options.baseline_cache
    ~fault:(Fault.of_schedule options.faults)
    ~obs options.config

(* Execute one cluster representative under supervision; quarantined
   crashers are recorded by the supervisor and produce no report. *)
let run_testcase options corpus sup funnel reports (tc : Testcase.t) =
  let sender = corpus.(tc.Testcase.sender) in
  let receiver = corpus.(tc.Testcase.receiver) in
  match Supervisor.execute sup ~sender ~receiver with
  | Runner.Crashed _ | Runner.Hung -> ()
  | Runner.Completed outcome -> (
    match
      Filter.classify options.spec ~testcase:tc ~sender ~receiver outcome
        funnel
    with
    | Filter.Reported r -> reports := r :: !reports
    | Filter.No_divergence | Filter.Filtered_nondet | Filter.Filtered_resource
      ->
      ())

(* Parallel chunk execution on OCaml domains. The chunk's representatives
   are dealt round-robin over [domains] slices tagged with their global
   chunk index; each domain boots its own isolated supervised environment
   and observability registry (classification is order-free: the funnel
   only accumulates counters) and reports per-case results. The merge
   sorts by global index, so reports, funnel and quarantine come out
   structurally identical to the sequential schedule — only wall-clock
   changes. Per-domain registries are folded into the campaign bundle
   with [Metrics.absorb]. *)
let run_chunk_on_domains ~domains ~obs options corpus funnel reports chunk =
  let slices = Array.make domains [] in
  List.iteri
    (fun i tc -> slices.(i mod domains) <- (i, tc) :: slices.(i mod domains))
    chunk;
  let worker slice () =
    let wobs = Obs.create () in
    let sup = make_supervisor ~obs:wobs options in
    let wfunnel = Filter.funnel_create () in
    let out =
      List.map
        (fun (i, tc) ->
          let q0 = Supervisor.quarantine_count sup in
          let one = ref [] in
          run_testcase options corpus sup wfunnel one tc;
          let crashes =
            if Supervisor.quarantine_count sup > q0 then
              List.filteri (fun k _ -> k >= q0) (Supervisor.quarantined sup)
            else []
          in
          (i, !one, crashes))
        slice
    in
    (out, wfunnel, Supervisor.executions sup, Obs.snapshot wobs)
  in
  let handles =
    Array.map
      (fun slice ->
        let slice = List.rev slice in
        if slice = [] then None else Some (Domain.spawn (worker slice)))
      slices
  in
  (* Join every domain before propagating any failure, so a crashed
     domain cannot leak its siblings. *)
  let joined =
    Array.map
      (Option.map (fun h ->
           match Domain.join h with v -> Ok v | exception e -> Error e))
      handles
  in
  Array.iter
    (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
    joined;
  let results =
    Array.to_list joined
    |> List.filter_map (function
         | Some (Ok r) -> Some r
         | Some (Error _) | None -> None)
  in
  let per_case =
    List.concat_map (fun (out, _, _, _) -> out) results
    |> List.sort (fun (i, _, _) (j, _, _) -> compare i j)
  in
  let quarantined_now = ref [] in
  List.iter
    (fun (_, rs, crashes) ->
      reports := rs @ !reports;
      quarantined_now := List.rev_append crashes !quarantined_now)
    per_case;
  List.iter
    (fun (_, wfunnel, _, snap) ->
      funnel.Filter.executed <-
        funnel.Filter.executed + wfunnel.Filter.executed;
      funnel.Filter.initial <- funnel.Filter.initial + wfunnel.Filter.initial;
      funnel.Filter.after_nondet <-
        funnel.Filter.after_nondet + wfunnel.Filter.after_nondet;
      funnel.Filter.after_resource <-
        funnel.Filter.after_resource + wfunnel.Filter.after_resource;
      Metrics.absorb obs.Obs.metrics snap)
    results;
  ( List.rev !quarantined_now,
    List.fold_left (fun acc (_, _, execs, _) -> acc + execs) 0 results )

(* Run the execute phase for up to [budget] representatives, starting
   from [resume] (or from scratch). Returns either the completed phase
   or a checkpoint to continue from. Each call boots its own supervised
   environment, like a campaign process restarted after an interrupt. *)
type phase_result =
  | Phase_done of {
      generation : Cluster.result;
      funnel : Filter.funnel;
      reports : Report.t list;
      quarantined : Supervisor.crash list;
      prior_executions : int;           (* from resumed checkpoints *)
      sup : Supervisor.t;
      generate_s : float;
      execute_s : float;
    }
  | Phase_paused of checkpoint

let validate_resume options strategy total (ck : checkpoint) =
  if ck.ck_seed <> options.seed then
    invalid_arg "Campaign.resume: checkpoint was taken with a different seed";
  if ck.ck_corpus_size <> options.corpus_size then
    invalid_arg
      "Campaign.resume: checkpoint was taken with a different corpus size";
  if ck.ck_strategy <> strategy then
    invalid_arg
      "Campaign.resume: checkpoint was taken with a different strategy";
  if ck.ck_total <> total then
    invalid_arg "Campaign.resume: checkpoint cluster count mismatch"

let execute_phase ?resume ~budget ~strategy prepared =
  let options = { prepared.p_options with strategy } in
  let obs = prepared.p_obs in
  let generation, generate_s_now =
    Tracer.with_span obs.Obs.tracer "phase.generate" (fun () ->
        timed (fun () ->
            Cluster.run strategy ~seed:options.seed
              ~corpus_size:(Array.length prepared.p_corpus) prepared.p_map))
  in
  Metrics.set_counter (c_counter obs "generated") generation.Cluster.generated;
  Metrics.set_counter (c_counter obs "clusters") generation.Cluster.clusters;
  let reps = generation.Cluster.reps in
  let total = List.length reps in
  let done_, funnel, rev_reports, quarantined0, executions0, generate_s,
      execute_s0 =
    match resume with
    | None -> (0, Filter.funnel_create (), [], [], 0, generate_s_now, 0.0)
    | Some ck ->
      validate_resume options strategy total ck;
      ( ck.ck_done, copy_funnel ck.ck_funnel, ck.ck_rev_reports,
        ck.ck_quarantined, ck.ck_executions, ck.ck_generate_s,
        ck.ck_execute_s )
  in
  Metrics.set_gauge (time_gauge obs "generate_s") generate_s;
  let reports = ref rev_reports in
  (* At least one representative per chunk: a non-positive budget would
     pause without progress and turn resume-until-done loops into
     livelocks. *)
  let budget = max 1 budget in
  let todo = List.filteri (fun i _ -> i >= done_) reps in
  let chunk = List.filteri (fun i _ -> i < budget) todo in
  let executed_now = List.length chunk in
  let domains = max 1 options.domains in
  let (quarantined_now, executions_now, chunk_sup), execute_s_now =
    Tracer.with_span obs.Obs.tracer "phase.execute"
      ~attrs:
        [ ("chunk", string_of_int executed_now);
          ("domains", string_of_int domains) ]
      (fun () ->
        timed (fun () ->
            if domains = 1 then begin
              let sup = make_supervisor ~obs options in
              List.iter
                (run_testcase options prepared.p_corpus sup funnel reports)
                chunk;
              ( Supervisor.quarantined sup, Supervisor.executions sup,
                Some sup )
            end
            else
              let q, execs =
                run_chunk_on_domains ~domains ~obs options prepared.p_corpus
                  funnel reports chunk
              in
              (q, execs, None)))
  in
  let execute_s = execute_s0 +. execute_s_now in
  (* Per-chunk accounting: representative counts are deterministic,
     chunk wall-times are volatile. *)
  Metrics.observe
    (Metrics.histogram ~always:true obs.Obs.metrics "campaign.chunk_reps")
    (float_of_int executed_now);
  Metrics.observe
    (Metrics.histogram ~volatile:true ~always:true obs.Obs.metrics
       "campaign.chunk_s")
    execute_s_now;
  Metrics.set_gauge (time_gauge obs "execute_s") execute_s;
  let quarantined = quarantined0 @ quarantined_now in
  let executions = executions0 + executions_now in
  if done_ + executed_now < total then
    Phase_paused
      {
        ck_seed = options.seed;
        ck_corpus_size = options.corpus_size;
        ck_strategy = strategy;
        ck_done = done_ + executed_now;
        ck_total = total;
        ck_funnel = copy_funnel funnel;
        ck_rev_reports = !reports;
        ck_quarantined = quarantined;
        ck_executions = executions;
        ck_generate_s = generate_s;
        ck_execute_s = execute_s;
      }
  else
    (* In parallel mode the chunk supervisors died with their domains;
       diagnosis gets a fresh sequential environment, and the chunk's
       executions ride along via [prior_executions]. *)
    let sup, prior_executions =
      match chunk_sup with
      | Some sup -> (sup, executions0)
      | None -> (make_supervisor ~obs options, executions)
    in
    Phase_done
      { generation; funnel; reports = List.rev !reports; quarantined;
        prior_executions; sup; generate_s; execute_s }

let finish prepared options phase =
  match phase with
  | Phase_paused _ -> assert false
  | Phase_done
      { generation; funnel; reports; quarantined; prior_executions; sup;
        generate_s; execute_s } ->
    let obs = prepared.p_obs in
    let keyed, diagnose_s =
      if not options.diagnose then ([], 0.0)
      else
        Tracer.with_span obs.Obs.tracer "phase.diagnose" (fun () ->
            timed (fun () ->
                List.map
                  (fun (r : Report.t) ->
                    let pairs =
                      Diagnose.culprits
                        ~test:(protected_interference options.spec sup)
                        ~sender:r.Report.sender ~receiver:r.Report.receiver
                        ~interfered:r.Report.interfered
                    in
                    Aggregate.key_report r pairs)
                  reports))
    in
    Metrics.set_gauge (time_gauge obs "generate_s") generate_s;
    Metrics.set_gauge (time_gauge obs "execute_s") execute_s;
    Metrics.set_gauge (time_gauge obs "diagnose_s") diagnose_s;
    let agg_r = Aggregate.agg_r keyed in
    let agg_rs = Aggregate.agg_rs keyed in
    (* diagnosis re-executed through [sup], so read the counter last *)
    let executions = prior_executions + Supervisor.executions sup in
    Metrics.set_counter (c_counter obs "executions") executions;
    Metrics.set_counter (c_counter obs "funnel_executed")
      funnel.Filter.executed;
    Metrics.set_counter (c_counter obs "funnel_initial") funnel.Filter.initial;
    Metrics.set_counter (c_counter obs "funnel_after_nondet")
      funnel.Filter.after_nondet;
    Metrics.set_counter (c_counter obs "funnel_after_resource")
      funnel.Filter.after_resource;
    Metrics.set_counter (c_counter obs "reports") (List.length reports);
    Metrics.set_counter (c_counter obs "quarantined")
      (List.length quarantined);
    {
      options;
      corpus = prepared.p_corpus;
      generation;
      df_total = prepared.p_df_total;
      funnel;
      reports;
      quarantined;
      keyed;
      agg_r;
      agg_rs;
      executions;
      sup_stats = sup.Supervisor.stats;
      fault_counters = Fault.counters sup.Supervisor.fault;
      (* thin reads: the gauges are the source of truth for wall times *)
      timings =
        { profile_s = Metrics.gauge_value (time_gauge obs "profile_s");
          generate_s = Metrics.gauge_value (time_gauge obs "generate_s");
          execute_s = Metrics.gauge_value (time_gauge obs "execute_s");
          diagnose_s = Metrics.gauge_value (time_gauge obs "diagnose_s") };
      obs;
    }

let execute_partial ?strategy ?resume ~budget prepared =
  let options = prepared.p_options in
  let strategy =
    match (strategy, resume) with
    | Some s, _ -> s
    | None, Some ck -> ck.ck_strategy
    | None, None -> options.strategy
  in
  match execute_phase ?resume ~budget ~strategy prepared with
  | Phase_paused ck -> `Paused ck
  | Phase_done _ as phase ->
    `Done (finish prepared { options with strategy } phase)

let execute_prepared ?strategy ?resume prepared =
  match execute_partial ?strategy ?resume ~budget:max_int prepared with
  | `Done t -> t
  | `Paused _ -> assert false (* budget covers every representative *)

(* Run a complete campaign with [options]. *)
let run options = execute_prepared (prepare options)
