(** The multi-dimensional kernel memory access map (paper, section 5.1):
    keyed by address, preserving per entry the write/read flag,
    instruction address and call-stack hash, mapping to the test
    programs that performed the access. Pairing writers with readers of
    the same address yields candidate inter-container data flows. *)

type entry = {
  prog : int;                    (** corpus index *)
  sys_index : int;               (** syscall index inside the program *)
  ip : int;
  stack : int list;
  stack_hash : int;
}

type t

val create : unit -> t

val add : t -> prog:int -> Stackrec.access list -> unit
(** Fold a program's accesses into the map. *)

val iter_overlaps :
  t ->
  (addr:int -> writers:entry list -> readers:entry list -> unit) ->
  unit
(** Visit every address accessed by both a writer and a reader. *)

val writer_addresses : t -> int list
val reader_addresses : t -> int list

(** Map shape summary: distinct addresses and total entries per side. *)
type stats = {
  write_addrs : int;
  write_entries : int;
  read_addrs : int;
  read_entries : int;
}

val stats : t -> stats
