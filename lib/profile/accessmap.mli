(** The multi-dimensional kernel memory access map (paper, section 5.1):
    keyed by address, preserving per entry the write/read flag,
    instruction address and call-stack hash, mapping to the test
    programs that performed the access. Pairing writers with readers of
    the same address yields candidate inter-container data flows.

    Entries live in a flat int arena; per-address writer/reader chains
    are intrusive (newest first) and the address universes are packed
    bitsets. Hot callers walk chains by integer handle through the
    [e_*] accessors; {!iter_overlaps} materialises {!entry} records for
    convenience. *)

(** A materialised entry view. *)
type entry = {
  prog : int;                    (** corpus index *)
  sys_index : int;               (** syscall index inside the program *)
  ip : int;
  stack : int list;
  stack_hash : int;
}

type t

val create : unit -> t

val add : t -> prog:int -> Stackrec.access list -> unit
(** Fold a program's accesses into the map. *)

(** {2 Handle-based traversal (allocation-free)} *)

val iter_overlap_chains :
  t ->
  (addr:int -> whead:int -> wcount:int -> rhead:int -> rcount:int -> unit) ->
  unit
(** Visit every address accessed by both a writer and a reader, in
    ascending address order, handing over the newest-first chain heads
    and per-side entry counts. *)

val iter_chain : t -> int -> (int -> unit) -> unit
(** [iter_chain t head f] applies [f] to each entry handle on a chain,
    newest first. A negative head is the empty chain. *)

val e_prog : t -> int -> int
val e_sys_index : t -> int -> int
val e_ip : t -> int -> int
val e_stack_hash : t -> int -> int
val e_next : t -> int -> int
val e_stack : t -> int -> int list

val e_context : t -> int -> k:int -> int list
(** The [k] call-stack frames starting two above the instrumentation
    site — the DF-ST clustering context — without materialising the
    whole stack. *)

val view : t -> int -> entry
(** Materialise a handle as an {!entry}. *)

(** {2 Materialising traversal} *)

val iter_overlaps :
  t ->
  (addr:int -> writers:entry list -> readers:entry list -> unit) ->
  unit
(** Visit every address accessed by both a writer and a reader; the
    entry lists are newest-first. *)

val writer_addresses : t -> int list
(** Ascending; read straight off the address bitset. *)

val reader_addresses : t -> int list

(** Map shape summary: distinct addresses and total entries per side. *)
type stats = {
  write_addrs : int;
  write_entries : int;
  read_addrs : int;
  read_entries : int;
}

val stats : t -> stats
(** O(1) — maintained incrementally by {!add}. *)
