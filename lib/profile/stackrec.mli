(** Simulated call-stack reconstruction (paper, section 5.1): replays a
    chronological execution trace, pushing and popping a simulated
    stack, and attributes to every memory access the call stack and
    syscall index in effect when it happened. *)

type access = {
  addr : int;
  width : int;
  rw : Kit_kernel.Kevent.rw;
  ip : int;
  stack : int list;        (** function ids, innermost first *)
  stack_hash : int;
  sys_index : int;         (** index of the syscall within the program *)
}

val hash_stack : int list -> int

val replay : Kit_kernel.Kevent.t list -> access list
(** Events must be in chronological order. *)

val dedup : access list -> access list
(** Deduplicate by (addr, rw, ip, stack); the first occurrence's syscall
    index is kept. Bounds profile size without losing any access site
    the clustering strategies distinguish. *)
