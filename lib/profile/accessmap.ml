(* The multi-dimensional kernel memory access map (paper, section 5.1):
   keyed by address with the write/read flag, instruction address and
   call-stack hash preserved per entry, mapping to the test programs that
   performed the access. Pairing writers with readers of the same address
   yields the candidate inter-container data flows. *)

module Kevent = Kit_kernel.Kevent
module Int_map = Kit_kernel.Maps.Int_map

type entry = {
  prog : int;                    (* corpus index *)
  sys_index : int;               (* syscall index inside the program *)
  ip : int;
  stack : int list;
  stack_hash : int;
}

type t = {
  mutable writers : entry list Int_map.t;   (* addr -> entries *)
  mutable readers : entry list Int_map.t;
}

let create () = { writers = Int_map.empty; readers = Int_map.empty }

let add_entry map addr entry =
  Int_map.update addr
    (function None -> Some [ entry ] | Some es -> Some (entry :: es))
    map

(* Fold the accesses of program [prog] into the map. *)
let add t ~prog (accesses : Stackrec.access list) =
  List.iter
    (fun (a : Stackrec.access) ->
      let entry =
        { prog; sys_index = a.Stackrec.sys_index; ip = a.Stackrec.ip;
          stack = a.Stackrec.stack; stack_hash = a.Stackrec.stack_hash }
      in
      match a.Stackrec.rw with
      | Kevent.Write -> t.writers <- add_entry t.writers a.Stackrec.addr entry
      | Kevent.Read -> t.readers <- add_entry t.readers a.Stackrec.addr entry)
    accesses

(* Iterate over addresses accessed by both a writer and a reader. *)
let iter_overlaps t f =
  Int_map.iter
    (fun addr writers ->
      match Int_map.find_opt addr t.readers with
      | None -> ()
      | Some readers -> f ~addr ~writers ~readers)
    t.writers

let writer_addresses t = List.map fst (Int_map.bindings t.writers)
let reader_addresses t = List.map fst (Int_map.bindings t.readers)

type stats = {
  write_addrs : int;
  write_entries : int;
  read_addrs : int;
  read_entries : int;
}

let stats t =
  let count m = Int_map.fold (fun _ es acc -> acc + List.length es) m 0 in
  { write_addrs = Int_map.cardinal t.writers;
    write_entries = count t.writers;
    read_addrs = Int_map.cardinal t.readers;
    read_entries = count t.readers }
