(* The multi-dimensional kernel memory access map (paper, section 5.1):
   keyed by address with the write/read flag, instruction address and
   call-stack hash preserved per entry, mapping to the test programs that
   performed the access. Pairing writers with readers of the same address
   yields the candidate inter-container data flows.

   Storage is a flat int arena instead of one list cell plus record per
   access: an entry is [stride] consecutive ints in [cells], its stack
   frames live in the shared [frames] arena, and the per-address
   writer/reader chains are intrusive — each entry's [next] slot points
   at the previously added entry for the same (address, side). Chains
   therefore iterate newest-first, exactly the order the old per-address
   [entry list] had, so group tie-breaks downstream are unchanged.

   The address universes are tracked as packed bitsets (addresses are
   small dense ints handed out by Heap.register), which makes
   writer/reader address listing and the overlap walk O(words) set
   operations rather than map traversals. *)

module Kevent = Kit_kernel.Kevent
module Bitset = Kit_compact.Bitset

type entry = {
  prog : int;                    (* corpus index *)
  sys_index : int;               (* syscall index inside the program *)
  ip : int;
  stack : int list;
  stack_hash : int;
}

(* Entry layout in [cells]: prog, sys_index, ip, stack_hash, stack_off,
   stack_len, next (absolute handle of the previous entry on this
   address's chain, or -1). A handle is the entry's base offset. *)
let stride = 7
let off_prog = 0
let off_sys_index = 1
let off_ip = 2
let off_stack_hash = 3
let off_stack_off = 4
let off_stack_len = 5
let off_next = 6

type chain = { mutable head : int; mutable count : int }

type t = {
  mutable cells : int array;
  mutable used : int;                     (* cells in use *)
  mutable frames : int array;
  mutable frames_used : int;
  writers : (int, chain) Hashtbl.t;       (* addr -> newest-first chain *)
  readers : (int, chain) Hashtbl.t;
  waddrs : Bitset.t;
  raddrs : Bitset.t;
  mutable wentries : int;
  mutable rentries : int;
}

let create () =
  { cells = Array.make (64 * stride) 0; used = 0;
    frames = Array.make 256 0; frames_used = 0;
    writers = Hashtbl.create 64; readers = Hashtbl.create 64;
    waddrs = Bitset.create 4096; raddrs = Bitset.create 4096;
    wentries = 0; rentries = 0 }

let grow arr used need =
  if used + need <= Array.length arr then arr
  else begin
    let bigger = Array.make (max (used + need) (2 * Array.length arr)) 0 in
    Array.blit arr 0 bigger 0 used;
    bigger
  end

let push_frames t stack =
  t.frames <- grow t.frames t.frames_used (List.length stack);
  let off = t.frames_used in
  List.iter
    (fun f ->
      t.frames.(t.frames_used) <- f;
      t.frames_used <- t.frames_used + 1)
    stack;
  (off, t.frames_used - off)

let push_entry t ~prog ~sys_index ~ip ~stack ~stack_hash ~next =
  t.cells <- grow t.cells t.used stride;
  let h = t.used in
  t.used <- h + stride;
  let off, len = push_frames t stack in
  t.cells.(h + off_prog) <- prog;
  t.cells.(h + off_sys_index) <- sys_index;
  t.cells.(h + off_ip) <- ip;
  t.cells.(h + off_stack_hash) <- stack_hash;
  t.cells.(h + off_stack_off) <- off;
  t.cells.(h + off_stack_len) <- len;
  t.cells.(h + off_next) <- next;
  h

(* Fold the accesses of program [prog] into the map. *)
let add t ~prog (accesses : Stackrec.access list) =
  List.iter
    (fun (a : Stackrec.access) ->
      let table, addrs =
        match a.Stackrec.rw with
        | Kevent.Write ->
          t.wentries <- t.wentries + 1;
          (t.writers, t.waddrs)
        | Kevent.Read ->
          t.rentries <- t.rentries + 1;
          (t.readers, t.raddrs)
      in
      let addr = a.Stackrec.addr in
      let chain =
        match Hashtbl.find_opt table addr with
        | Some c -> c
        | None ->
          let c = { head = -1; count = 0 } in
          Hashtbl.add table addr c;
          Bitset.add addrs addr;
          c
      in
      let h =
        push_entry t ~prog ~sys_index:a.Stackrec.sys_index ~ip:a.Stackrec.ip
          ~stack:a.Stackrec.stack ~stack_hash:a.Stackrec.stack_hash
          ~next:chain.head
      in
      chain.head <- h;
      chain.count <- chain.count + 1)
    accesses

(* -- handle accessors ------------------------------------------------------ *)

let e_prog t h = t.cells.(h + off_prog)
let e_sys_index t h = t.cells.(h + off_sys_index)
let e_ip t h = t.cells.(h + off_ip)
let e_stack_hash t h = t.cells.(h + off_stack_hash)
let e_next t h = t.cells.(h + off_next)

let e_stack t h =
  let off = t.cells.(h + off_stack_off) in
  let len = t.cells.(h + off_stack_len) in
  let rec build i acc =
    if i < off then acc else build (i - 1) (t.frames.(i) :: acc)
  in
  build (off + len - 1) []

(* The [k] frames starting two above the instrumentation site — the
   DF-ST clustering context, built without materialising the whole
   stack. Matches [ctx k stack] on the materialised list. *)
let e_context t h ~k =
  let off = t.cells.(h + off_stack_off) in
  let len = t.cells.(h + off_stack_len) in
  if len <= 1 then []
  else
    let stop = min (off + len) (off + 2 + k) in
    let rec build i acc =
      if i < off + 2 then acc else build (i - 1) (t.frames.(i) :: acc)
    in
    build (stop - 1) []

let view t h =
  { prog = e_prog t h; sys_index = e_sys_index t h; ip = e_ip t h;
    stack = e_stack t h; stack_hash = e_stack_hash t h }

let iter_chain t head f =
  let h = ref head in
  while !h >= 0 do
    f !h;
    h := e_next t !h
  done

let chain_views t head =
  let acc = ref [] in
  iter_chain t head (fun h -> acc := view t h :: !acc);
  List.rev !acc

(* -- traversal ------------------------------------------------------------- *)

(* Visit every address on both sides, as chain handles: the overlap is
   the intersection of the two address bitsets, walked in ascending
   address order. *)
let iter_overlap_chains t f =
  Bitset.iter
    (fun addr ->
      if Bitset.mem t.raddrs addr then
        let w = Hashtbl.find t.writers addr in
        let r = Hashtbl.find t.readers addr in
        f ~addr ~whead:w.head ~wcount:w.count ~rhead:r.head ~rcount:r.count)
    t.waddrs

(* The materialising variant, for callers that want entry records; the
   per-address lists come back newest-first, as they were stored. *)
let iter_overlaps t f =
  iter_overlap_chains t
    (fun ~addr ~whead ~wcount:_ ~rhead ~rcount:_ ->
      f ~addr ~writers:(chain_views t whead) ~readers:(chain_views t rhead))

let writer_addresses t = Bitset.elements t.waddrs
let reader_addresses t = Bitset.elements t.raddrs

type stats = {
  write_addrs : int;
  write_entries : int;
  read_addrs : int;
  read_entries : int;
}

(* O(1): the counters are maintained on [add]. *)
let stats t =
  { write_addrs = Hashtbl.length t.writers;
    write_entries = t.wentries;
    read_addrs = Hashtbl.length t.readers;
    read_entries = t.rentries }
