(** Per-program kernel-footprint profiling (paper, section 4.1.1).

    Every program is profiled in the same execution environment: a
    kernel booted once with two container processes and snapshotted; the
    snapshot is reloaded before each program runs, so profiles are
    comparable. *)

type role = Sender | Receiver

type profile = {
  accesses : Stackrec.access list;     (** deduplicated, attributed *)
  results : Kit_kernel.Interp.result list;  (** the run's syscall trace *)
}

type t

val create : Kit_kernel.Config.t -> t
(** Boot the profiling environment: kernel, two containers, snapshot. *)

val profile : t -> role:role -> Kit_abi.Program.t -> profile
(** Profile one program in [role]'s container, from a fresh snapshot. *)

val vars : t -> Kit_kernel.Heap.varinfo list
(** The profiled kernel's shared-variable registry, in boot order —
    deterministic for a given config; the coverage ledger's raw
    universe. *)

val run_untraced : t -> role:role -> Kit_abi.Program.t ->
  Kit_kernel.Interp.result list
(** Run without instrumentation (the separate trace-collection run of
    section 6.5). *)
