(* Simulated call stack reconstruction (paper, section 5.1): the raw
   execution trace interleaves function entry/exit, syscall boundary and
   memory access events in chronological order; this pass replays it,
   pushing and popping a simulated stack, and attributes to every memory
   access the call stack and syscall index in effect when it happened. *)

module Kevent = Kit_kernel.Kevent

type access = {
  addr : int;
  width : int;
  rw : Kevent.rw;
  ip : int;
  stack : int list;        (* function ids, innermost first *)
  stack_hash : int;
  sys_index : int;         (* index of the syscall within the program *)
}

let hash_stack stack = Hashtbl.hash stack

(* Replay [events] (chronological order) into attributed accesses. *)
let replay events =
  let stack = ref [] in
  let sys_index = ref (-1) in
  let accesses = ref [] in
  let step = function
    | Kevent.Fn_enter fn -> stack := fn :: !stack
    | Kevent.Fn_exit _ -> (
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> ())
    | Kevent.Sys_enter i -> sys_index := i
    | Kevent.Sys_exit _ -> ()
    | Kevent.Mem m ->
      accesses :=
        { addr = m.Kevent.addr; width = m.Kevent.width; rw = m.Kevent.rw;
          ip = m.Kevent.ip; stack = !stack; stack_hash = hash_stack !stack;
          sys_index = max 0 !sys_index }
        :: !accesses
  in
  List.iter step events;
  List.rev !accesses

(* Deduplicate accesses by (addr, rw, ip, stack); the first occurrence's
   syscall index is kept. Bounds profile size without losing any access
   site the clustering strategies distinguish. *)
let dedup accesses =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun a ->
      let key = (a.addr, a.rw, a.ip, a.stack_hash) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    accesses
