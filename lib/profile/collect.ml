(* Per-program kernel-footprint profiling (paper, section 4.1.1). Every
   program is profiled in the same execution environment: a kernel booted
   once with two container processes and snapshotted; the snapshot is
   reloaded before each program runs, so profiles are comparable. *)

module Program = Kit_abi.Program
module State = Kit_kernel.State
module Interp = Kit_kernel.Interp
module Ctx = Kit_kernel.Ctx

type role = Sender | Receiver

type profile = {
  accesses : Stackrec.access list;     (* deduplicated, attributed *)
  results : Interp.result list;        (* the syscall trace of the run *)
}

type t = {
  kernel : State.t;
  snapshot : State.snapshot;
  sender_pid : int;
  receiver_pid : int;
}

(* Boot the profiling environment: kernel, two containers, snapshot. *)
let create config =
  let kernel = State.boot config in
  let sender_pid = State.spawn_container kernel in
  let receiver_pid = State.spawn_container kernel in
  let snapshot = State.snapshot kernel in
  { kernel; snapshot; sender_pid; receiver_pid }

let pid_of_role t = function
  | Sender -> t.sender_pid
  | Receiver -> t.receiver_pid

(* The profiled kernel's shared-variable registry, in boot order — the
   coverage ledger's raw universe. *)
let vars t = Kit_kernel.Heap.vars t.kernel.State.heap

(* Profile one program in [role]'s container, from a fresh snapshot. *)
let profile t ~role prog =
  State.restore t.kernel t.snapshot;
  let events = ref [] in
  let sink ev = events := ev :: !events in
  let results =
    Ctx.with_sink t.kernel.State.ctx sink (fun () ->
        Interp.run t.kernel ~pid:(pid_of_role t role) prog)
  in
  let accesses = Stackrec.dedup (Stackrec.replay (List.rev !events)) in
  { accesses; results }

(* Run without instrumentation (the separate trace-collection run of
   section 6.5). *)
let run_untraced t ~role prog =
  State.restore t.kernel t.snapshot;
  Interp.run t.kernel ~pid:(pid_of_role t role) prog
