(** Corpus profiling and the inter-container data-flow analysis (paper,
    section 4.1.1): profile every test program from an identical
    snapshot, fold the memory accesses into the access map, and keep —
    on the reader side — only accesses performed by syscalls that the
    specification marks as touching namespace-protected resources. *)

type profiles = {
  programs : Kit_abi.Program.t array;
  accesses : Kit_profile.Stackrec.access list array;
  protected_calls : bool array array;  (** per program, per syscall index *)
  vars : Kit_kernel.Heap.varinfo list;
      (** the profiled kernel's shared-variable registry, boot order —
          the coverage ledger's raw universe *)
}

val profile_corpus :
  Kit_kernel.Config.t -> Kit_spec.Spec.t -> Kit_abi.Program.t list -> profiles

val build_map : profiles -> Kit_profile.Accessmap.t
(** Writer entries are unrestricted; reader entries are kept only when
    the reading syscall accesses a protected resource. *)

val total_flows : Kit_profile.Accessmap.t -> int
(** The number of unclustered data-flow test cases — the DF row of
    Table 4: one per (write site, read site) pair on a shared address. *)

(** {2 Streaming profiler}

    One program at a time, for the online pipeline. A program's filtered
    access list is identical to its contribution to {!build_map} — the
    profiler reloads the same snapshot per program, and both paths apply
    the same reader-protection filter. *)

type profiler

val profiler : Kit_kernel.Config.t -> Kit_spec.Spec.t -> profiler
(** Boot a profiling environment shared across [profile_program] calls. *)

val profile_program :
  profiler -> Kit_abi.Program.t -> Kit_profile.Stackrec.access list
(** Profile one program and return its filtered accesses, ready for
    {!Kit_profile.Accessmap.add} or online clustering. *)

val profile_program_full :
  profiler -> Kit_abi.Program.t ->
  Kit_profile.Stackrec.access list * Kit_profile.Stackrec.access list
(** [(raw, filtered)] accesses of one program. The raw list is what the
    coverage ledger's "touched" rung counts — it includes reader
    accesses the spec filter drops. *)

val profiler_vars : profiler -> Kit_kernel.Heap.varinfo list
(** The streaming profiler's kernel variable registry (boot order). *)
