(** Corpus profiling and the inter-container data-flow analysis (paper,
    section 4.1.1): profile every test program from an identical
    snapshot, fold the memory accesses into the access map, and keep —
    on the reader side — only accesses performed by syscalls that the
    specification marks as touching namespace-protected resources. *)

type profiles = {
  programs : Kit_abi.Program.t array;
  accesses : Kit_profile.Stackrec.access list array;
  protected_calls : bool array array;  (** per program, per syscall index *)
}

val profile_corpus :
  Kit_kernel.Config.t -> Kit_spec.Spec.t -> Kit_abi.Program.t list -> profiles

val build_map : profiles -> Kit_profile.Accessmap.t
(** Writer entries are unrestricted; reader entries are kept only when
    the reading syscall accesses a protected resource. *)

val total_flows : Kit_profile.Accessmap.t -> int
(** The number of unclustered data-flow test cases — the DF row of
    Table 4: one per (write site, read site) pair on a shared address. *)
