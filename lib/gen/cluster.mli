(** Test case generation and clustering strategies (paper, sections
    4.1.2 and 6.3):

    - [Df]: every (write site, read site) pair on a shared address — the
      unclustered universe, counted but not executed;
    - [Df_ia]: clusters data flows by (write instruction, read
      instruction);
    - [Df_st k]: additionally by the call-stack context, truncated to
      the [k] frames above the instrumentation site;
    - [Rand n]: [n] random sender/receiver pairs — the baseline.

    One representative test case per cluster is executed; the
    representative is the minimum candidate under the total
    {!Testcase.compare} order, so runs are reproducible.

    Clustering comes in two equivalent modes: the batch {!run} over a
    fully built access map, and the online {!start}/{!feed}/{!finalize}
    mode that folds one profiled program at a time into the cluster
    table, emitting newly-sealed and representative-changed clusters as
    it goes. Both modes produce identical {!result}s (property-tested). *)

type strategy =
  | Df
  | Df_ia
  | Df_st of int
  | Rand of int

val strategy_name : strategy -> string

type result = {
  strategy : strategy;
  generated : int;        (** the Table 4 "test cases" figure *)
  clusters : int;
  reps : Testcase.t list; (** executed representatives, in order *)
  df_total : int;
  (** the unclustered flow universe (the DF row): one per (write entry,
      read entry) pair on a shared address — campaigns read it from here
      instead of re-scanning the map with
      {!Kit_gen.Dataflow.total_flows} *)
  sizes : (int * int) list;
  (** cluster-size distribution as [(size, count)] pairs, ascending *)
  requested : int;        (** representatives asked for (RAND budget) *)
  delivered : int;
  (** representatives actually produced; for [Rand n] the budget is
      clamped to the [corpus_size²] distinct pairs and then filled
      exactly, so [delivered = min n corpus_size²] *)
}

val context : int -> int list -> int list
(** The [k] stack frames above the instrumentation site (the innermost
    frame and its caller are already folded into the instruction
    address). *)

val run :
  strategy -> ?seed:int -> corpus_size:int -> Kit_profile.Accessmap.t ->
  result
(** Batch clustering over a fully built access map. *)

(** {2 Online clustering}

    The streaming pipeline folds one profiled program at a time into the
    cluster table with {!feed}, maintaining [generated]/[df_total]
    incrementally instead of materializing per-address writer×reader
    cross products behind a barrier. Events report clusters the caller
    can execute immediately. *)

type state

(** Incremental cluster-table changes emitted by {!feed} and {!drain}.
    Cluster ids are stable for the lifetime of the state. *)
type event =
  | Sealed of int * Testcase.t
      (** a new cluster appeared, with its representative *)
  | Rep_changed of int * Testcase.t
      (** a later program produced a smaller representative; cached
          execution results for this cluster are stale *)
  | Dropped of int
      (** the cluster was retired (RAND re-draws on corpus growth) *)

val start : ?seed:int -> strategy -> state

val feed : state -> prog:int -> Kit_profile.Stackrec.access list -> event list
(** Fold program [prog]'s filtered accesses (from
    {!Kit_gen.Dataflow.profile_program}) into the table. Programs must
    be fed in corpus order — the equivalence with {!run} depends on it —
    or the call raises [Invalid_argument]. *)

val drain : state -> event list
(** Seal representatives that only materialize once the corpus is
    complete: RAND draws pairs over the final corpus size, so a drain
    after corpus growth retires every previous draw ([Dropped]) and
    seals a fresh set. Keyed strategies seal eagerly in {!feed} and
    drain to []. Idempotent until the next {!feed}. *)

val finalize : state -> result
(** The clustering result over everything fed so far — structurally
    identical to {!run} on a batch-built map of the same programs
    (property-tested). Non-destructive: the state can keep feeding. *)

val live : state -> (int * Testcase.t) list
(** Current clusters as [(id, representative)], in creation order. *)

val fed : state -> int
(** Programs folded so far. *)

val peak_feed_pairs : state -> int
(** The largest per-feed working set: the maximum number of group pairs
    examined while folding a single program — the streaming counterpart
    of the batch pass's [df_total]-sized sweep. *)
