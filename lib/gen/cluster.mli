(** Test case generation and clustering strategies (paper, sections
    4.1.2 and 6.3):

    - [Df]: every (write site, read site) pair on a shared address — the
      unclustered universe, counted but not executed;
    - [Df_ia]: clusters data flows by (write instruction, read
      instruction);
    - [Df_st k]: additionally by the call-stack context, truncated to
      the [k] frames above the instrumentation site;
    - [Rand n]: [n] random sender/receiver pairs — the baseline.

    One representative test case per cluster is executed; the
    representatives are the earliest (corpus order) writer and reader
    entries, so runs are reproducible. *)

type strategy =
  | Df
  | Df_ia
  | Df_st of int
  | Rand of int

val strategy_name : strategy -> string

type result = {
  strategy : strategy;
  generated : int;        (** the Table 4 "test cases" figure *)
  clusters : int;
  reps : Testcase.t list; (** executed representatives, in order *)
}

val context : int -> int list -> int list
(** The [k] stack frames above the instrumentation site (the innermost
    frame and its caller are already folded into the instruction
    address). *)

val run :
  strategy -> ?seed:int -> corpus_size:int -> Kit_profile.Accessmap.t ->
  result
