(* Corpus profiling and the inter-container data-flow analysis
   (paper, section 4.1.1): profile every test program from an identical
   snapshot, fold the kernel memory accesses into the access map, and
   keep — on the reader side — only accesses performed by system calls
   that the specification marks as touching namespace-protected
   resources. *)

module Program = Kit_abi.Program
module Kevent = Kit_kernel.Kevent
module Collect = Kit_profile.Collect
module Stackrec = Kit_profile.Stackrec
module Accessmap = Kit_profile.Accessmap

type profiles = {
  programs : Program.t array;
  accesses : Stackrec.access list array;
  protected_calls : bool array array;   (* per program, per syscall index *)
  vars : Kit_kernel.Heap.varinfo list;  (* the profiled kernel's registry *)
}

(* Profile the whole corpus in the receiver container's environment.
   (Sender and receiver containers are symmetric in the model, so one
   profiling run per program provides the access footprint for both
   roles; the performance benches account for the paper's four runs.) *)
let profile_corpus config spec corpus =
  let profiler = Collect.create config in
  let programs = Array.of_list corpus in
  let accesses =
    Array.map
      (fun prog -> (Collect.profile profiler ~role:Collect.Receiver prog).Collect.accesses)
      programs
  in
  let protected_calls =
    Array.map
      (fun prog ->
        let types = Program.result_types prog in
        Array.init (Program.length prog) (fun i ->
            Kit_spec.Spec.call_protected spec prog types i))
      programs
  in
  { programs; accesses; protected_calls; vars = Collect.vars profiler }

(* Writer entries are unrestricted; reader entries are kept only when
   the reading syscall accesses a protected resource — data flows whose
   reader cannot witness protected state are useless for functional
   interference testing. *)
let filter_accesses ~protected_calls accs =
  let keep (a : Stackrec.access) =
    match a.Stackrec.rw with
    | Kevent.Write -> true
    | Kevent.Read ->
      a.Stackrec.sys_index < Array.length protected_calls
      && protected_calls.(a.Stackrec.sys_index)
  in
  List.filter keep accs

(* Build the access map from batch profiles. *)
let build_map profiles =
  let map = Accessmap.create () in
  Array.iteri
    (fun prog accs ->
      Accessmap.add map ~prog
        (filter_accesses ~protected_calls:profiles.protected_calls.(prog) accs))
    profiles.accesses;
  map

(* -- streaming profiler --------------------------------------------------

   The batch path profiles the whole corpus behind one barrier; the
   streaming pipeline profiles one program at a time and feeds its
   contribution straight into the online cluster state. Both paths share
   [filter_accesses], so a program's contribution is identical either
   way (the profiler reloads the same snapshot per program). *)

type profiler = { collect : Collect.t; spec : Kit_spec.Spec.t }

let profiler config spec = { collect = Collect.create config; spec }

let profiler_vars t = Collect.vars t.collect

(* Raw and filtered accesses of one program: the filtered list feeds the
   access map / online clustering; the raw list is what the coverage
   ledger's "touched" rung counts (it must see reader accesses the spec
   filter drops — that is exactly the visibility the ledger adds). *)
let profile_program_full t prog =
  let accesses =
    (Collect.profile t.collect ~role:Collect.Receiver prog).Collect.accesses
  in
  let types = Program.result_types prog in
  let protected_calls =
    Array.init (Program.length prog) (fun i ->
        Kit_spec.Spec.call_protected t.spec prog types i)
  in
  (accesses, filter_accesses ~protected_calls accesses)

let profile_program t prog = snd (profile_program_full t prog)

(* The total number of unclustered data-flow test cases — the DF row of
   Table 4: one per (write access site, read access site) pair on a
   shared address. *)
let total_flows map =
  let total = ref 0 in
  Accessmap.iter_overlap_chains map
    (fun ~addr:_ ~whead:_ ~wcount ~rhead:_ ~rcount ->
      total := !total + (wcount * rcount));
  !total
