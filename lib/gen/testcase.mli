(** A functional interference test case: a sender and a receiver program
    (by corpus index), plus — for data-flow-generated cases — the
    witness inter-container data flow that motivated the pairing. *)

type flow = {
  addr : int;
  w_ip : int;
  r_ip : int;
  w_stack : int list;        (** innermost first *)
  r_stack : int list;
  r_sys_index : int;         (** receiver syscall performing the read *)
}

type t = {
  sender : int;              (** corpus index *)
  receiver : int;
  flow : flow option;        (** [None] for randomly generated cases *)
}

val compare : t -> t -> int
(** Total order: sender index, then receiver index, then the witness
    flow. Totality matters: representative selection takes the minimum
    over candidates discovered in hash-table order, and only a total
    order makes batch and streaming clustering agree on ties. *)

val pp : Format.formatter -> t -> unit
