(* Test case generation and clustering strategies (paper, sections 4.1.2
   and 6.3):

   - DF      every (write site, read site) pair on a shared address — the
             unclustered universe, counted but not executed;
   - DF-IA   clusters data flows by (write instruction, read instruction);
   - DF-ST-k additionally by the call-stack context, truncated to the k
             caller frames above the accessing function;
   - RAND    random sender/receiver pairs from the corpus, the baseline.

   One representative test case per cluster is executed; representatives
   are chosen deterministically as the minimum candidate under the total
   Testcase order (corpus order first), so runs are reproducible.

   Two equivalent construction modes exist. The batch mode ([run]) takes
   a fully built access map and clusters it in one pass. The online mode
   ([start]/[feed]/[finalize]) folds one profiled program at a time into
   the same cluster table, maintaining the generated/df_total counts
   incrementally and emitting newly-sealed or representative-changed
   clusters as it goes — the streaming campaign executes those
   immediately instead of waiting behind a clustering barrier. The two
   modes produce identical results (property-tested); the equivalence
   argument lives with the online code below. *)

module Accessmap = Kit_profile.Accessmap
module Stackrec = Kit_profile.Stackrec
module Kevent = Kit_kernel.Kevent
module Bitset = Kit_compact.Bitset

type strategy =
  | Df
  | Df_ia
  | Df_st of int               (* call-stack context depth *)
  | Rand of int                (* budget: number of random pairs *)

let strategy_name = function
  | Df -> "DF"
  | Df_ia -> "DF-IA"
  | Df_st k -> Printf.sprintf "DF-ST-%d" k
  | Rand _ -> "RAND"

type result = {
  strategy : strategy;
  generated : int;        (* the Table 4 "test cases" figure *)
  clusters : int;
  reps : Testcase.t list; (* executed representatives, in order *)
  df_total : int;         (* unclustered flow universe (DF row) *)
  sizes : (int * int) list;  (* cluster size -> count, ascending *)
  requested : int;        (* representatives asked for (RAND budget) *)
  delivered : int;        (* representatives actually produced *)
}

(* The k stack frames above the instrumentation site. The innermost
   frame and its immediate caller are already folded into the synthetic
   instruction address (inlining), so the context starts two frames up. *)
let context k stack =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  match stack with
  | [] | [ _ ] -> []
  | _innermost :: _caller :: outer -> take k outer

let entry_order (a : Accessmap.entry) (b : Accessmap.entry) =
  let c = Int.compare a.Accessmap.prog b.Accessmap.prog in
  if c <> 0 then c else Int.compare a.Accessmap.sys_index b.Accessmap.sys_index

(* Group entries by [key]; each group keeps its earliest entry and size. *)
let group_entries key entries =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = key e in
      match Hashtbl.find_opt table k with
      | None -> Hashtbl.replace table k (e, 1)
      | Some (best, n) ->
        let best = if entry_order e best < 0 then e else best in
        Hashtbl.replace table k (best, n + 1))
    entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []

let flow_of ~addr (w : Accessmap.entry) (r : Accessmap.entry) =
  { Testcase.addr; w_ip = w.Accessmap.ip; r_ip = r.Accessmap.ip;
    w_stack = w.Accessmap.stack; r_stack = r.Accessmap.stack;
    r_sys_index = r.Accessmap.sys_index }

(* Per-side cluster keys: (instruction, stack-context hash). *)
let ia_key (e : Accessmap.entry) = (e.Accessmap.ip, 0)

let st_key k (e : Accessmap.entry) =
  (e.Accessmap.ip, Hashtbl.hash (context k e.Accessmap.stack))

let keys_of_strategy = function
  | Df_ia -> Some (ia_key, ia_key)
  | Df_st k -> Some (st_key k, st_key k)
  | Df | Rand _ -> None

(* The batch pass works on arena handles; the key functions above stay
   on materialised entries for the online path. The context hash must be
   [Hashtbl.hash] of the same int list either way, or DF-ST grouping
   would split/merge differently across the two modes. *)
type key_kind = K_ia | K_st of int

let key_kind_of_strategy = function
  | Df_ia -> Some K_ia
  | Df_st k -> Some (K_st k)
  | Df | Rand _ -> None

let handle_key map kind h =
  match kind with
  | K_ia -> (Accessmap.e_ip map h, 0)
  | K_st k -> (Accessmap.e_ip map h, Hashtbl.hash (Accessmap.e_context map h ~k))

(* Cluster-size distribution: size -> number of clusters, ascending. *)
let distribution counts =
  let table = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace table n
        (1 + Option.value ~default:0 (Hashtbl.find_opt table n)))
    counts;
  Hashtbl.fold (fun n c acc -> (n, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Group a chain's entries by handle key; each group keeps its earliest
   handle (minimum (prog, sys_index), first-seen winning ties — the same
   tie-break [group_entries] applies to the newest-first entry lists)
   and its size. *)
let group_chain map kind head =
  let table = Hashtbl.create 16 in
  Accessmap.iter_chain map head (fun h ->
      let k = handle_key map kind h in
      match Hashtbl.find_opt table k with
      | None -> Hashtbl.replace table k (h, 1)
      | Some (best, n) ->
        let c = Int.compare (Accessmap.e_prog map h) (Accessmap.e_prog map best) in
        let c =
          if c <> 0 then c
          else
            Int.compare (Accessmap.e_sys_index map h)
              (Accessmap.e_sys_index map best)
        in
        let best = if c < 0 then h else best in
        Hashtbl.replace table k (best, n + 1));
  table

(* Cluster the data flows of [map] by the per-side key kind; clusters
   over the same address pair writer groups with reader groups. Works
   entirely on arena handles, materialising an entry view only per group
   best (to build candidate test cases), never per access. Returns the
   raw flow count (the DF universe — every (write entry, read entry)
   pair on a shared address), the cluster count, the sorted
   representatives and the size distribution. *)
let cluster_map map ~key_kind =
  let clusters = Hashtbl.create 256 in
  let flows = ref 0 in
  Accessmap.iter_overlap_chains map
    (fun ~addr ~whead ~wcount ~rhead ~rcount ->
      flows := !flows + (wcount * rcount);
      let wgroups = group_chain map key_kind whead in
      let rgroups = group_chain map key_kind rhead in
      let rviews =
        Hashtbl.fold (fun rk (rh, rn) acc -> (rk, Accessmap.view map rh, rn) :: acc)
          rgroups []
      in
      Hashtbl.iter
        (fun wk (wh, wn) ->
          let w = Accessmap.view map wh in
          List.iter
            (fun (rk, r, rn) ->
              let key = (wk, rk) in
              let tc =
                { Testcase.sender = w.Accessmap.prog;
                  receiver = r.Accessmap.prog;
                  flow = Some (flow_of ~addr w r) }
              in
              match Hashtbl.find_opt clusters key with
              | None -> Hashtbl.replace clusters key (tc, wn * rn)
              | Some (best, n) ->
                let best = if Testcase.compare tc best < 0 then tc else best in
                Hashtbl.replace clusters key (best, n + (wn * rn)))
            rviews)
        wgroups);
  let reps =
    Hashtbl.fold (fun _ (tc, _) acc -> tc :: acc) clusters []
    |> List.sort Testcase.compare
  in
  let sizes = distribution (Hashtbl.fold (fun _ (_, n) acc -> n :: acc) clusters []) in
  (!flows, Hashtbl.length clusters, reps, sizes)

(* RAND baseline. The budget is clamped to the corpus_size² distinct
   pairs that exist; within the clamp the fill is exact: rejection
   sampling first (preserving the historical draw sequence for sparse
   budgets), then a deterministic row-major sweep over the remaining
   pairs if the sampler keeps colliding near saturation. *)
let run_rand ~seed ~budget ~corpus_size =
  let rng = Random.State.make [| seed; 0x52414E44 |] in
  let cap = corpus_size * corpus_size in
  let effective = max 0 (min budget cap) in
  (* Dedup over the (sender, receiver) pair universe: one bit per pair
     when the universe is reasonably sized (a 4096-program corpus is
     2 MiB of bits), with the tupled hashtable kept as the fallback so
     absurd corpus sizes stay correct rather than allocating the moon. *)
  let mem, mark =
    if cap <= 1 lsl 26 then begin
      let seen = Bitset.create cap in
      ( (fun s r -> Bitset.mem seen ((s * corpus_size) + r)),
        fun s r -> Bitset.add seen ((s * corpus_size) + r) )
    end
    else begin
      let seen = Hashtbl.create (max 16 (min effective 65536)) in
      ( (fun s r -> Hashtbl.mem seen (s, r)),
        fun s r -> Hashtbl.replace seen (s, r) () )
    end
  in
  let nseen = ref 0 in
  let reps = ref [] in
  let take s r =
    mark s r;
    incr nseen;
    reps := { Testcase.sender = s; receiver = r; flow = None } :: !reps
  in
  let attempts = ref 0 in
  let max_attempts = 16 * cap in
  while !nseen < effective && !attempts < max_attempts do
    incr attempts;
    let s = Random.State.int rng corpus_size in
    let r = Random.State.int rng corpus_size in
    if not (mem s r) then take s r
  done;
  for s = 0 to corpus_size - 1 do
    for r = 0 to corpus_size - 1 do
      if !nseen < effective && not (mem s r) then take s r
    done
  done;
  (List.rev !reps, effective)

let rand_result strategy ~budget ~df_total reps delivered =
  { strategy; generated = delivered; clusters = delivered; reps; df_total;
    sizes = (if delivered = 0 then [] else [ (1, delivered) ]);
    requested = budget; delivered }

let run strategy ?(seed = 0) ~corpus_size map =
  match strategy with
  | Df ->
    let total = Dataflow.total_flows map in
    { strategy; generated = total; clusters = total; reps = [];
      df_total = total;
      sizes = (if total = 0 then [] else [ (1, total) ]);
      requested = 0; delivered = 0 }
  | Df_ia | Df_st _ ->
    let key_kind =
      match key_kind_of_strategy strategy with
      | Some k -> k
      | None -> assert false
    in
    let flows, clusters, reps, sizes = cluster_map map ~key_kind in
    { strategy; generated = clusters; clusters; reps; df_total = flows;
      sizes; requested = clusters; delivered = clusters }
  | Rand budget ->
    let reps, delivered = run_rand ~seed ~budget ~corpus_size in
    rand_result strategy ~budget ~df_total:(Dataflow.total_flows map) reps
      delivered

(* -- online clustering ----------------------------------------------------

   Fold one profiled program at a time into the cluster table. The
   equivalence with [cluster_map] rests on three facts:

   1. Group bests are stable once created. Programs are fed in corpus
      order, so a (addr, key) group's best entry — minimum (prog,
      sys_index) — is fixed by the first program contributing to the
      group; later programs only grow the count. Within the creating
      program the best is computed exactly like the batch
      [group_entries] pass (same reversed entry order, same tie-break).

   2. Candidates are immutable. The candidate test case of an
      (addr, wkey, rkey) triple is flow_of(best_w, best_r); both bests
      are final when the pair first coexists, which is the moment the
      candidate is created.

   3. The representative is the minimum, under the *total* Testcase
      order, over a growing set of immutable candidates — the order the
      candidates arrive in cannot change the minimum, so the final
      representative equals the batch one. A new candidate below the
      current representative fires a [Rep_changed] event; the streaming
      campaign re-executes that cluster.

   Cluster sizes and the DF universe update by delta: with per-address
   old counts w, r and program deltas Δw, Δr,
       Δ(w·r) = Δw·(r + Δr) + w·Δr
   which the two count loops below implement per group pair (and per
   entry total for df_total). *)

type event =
  | Sealed of int * Testcase.t       (* new cluster: id, representative *)
  | Rep_changed of int * Testcase.t  (* better representative found *)
  | Dropped of int                   (* cluster retired (RAND re-draw) *)

type group = { g_best : Accessmap.entry; mutable g_n : int }

type side = {
  s_groups : (int * int, group) Hashtbl.t;
  mutable s_entries : int;
}

type addr_state = { aw : side; ar : side }

type cluster = { cl_id : int; mutable cl_rep : Testcase.t; mutable cl_n : int }

type state = {
  st_strategy : strategy;
  st_seed : int;
  st_keys : ((Accessmap.entry -> int * int) * (Accessmap.entry -> int * int))
      option;
  mutable st_fed : int;                 (* programs folded, in order *)
  st_addrs : (int, addr_state) Hashtbl.t;
  st_clusters : ((int * int) * (int * int), cluster) Hashtbl.t;
  mutable st_next_id : int;
  mutable st_df_total : int;
  mutable st_peak_pairs : int;          (* max group pairs in one feed *)
  mutable st_rand : (int * Testcase.t) list;  (* sealed RAND reps *)
  mutable st_rand_drained_at : int;     (* corpus size of last RAND draw *)
}

let start ?(seed = 0) strategy =
  { st_strategy = strategy; st_seed = seed;
    st_keys = keys_of_strategy strategy; st_fed = 0;
    st_addrs = Hashtbl.create 256; st_clusters = Hashtbl.create 256;
    st_next_id = 0; st_df_total = 0; st_peak_pairs = 0; st_rand = [];
    st_rand_drained_at = -1 }

let fed st = st.st_fed
let peak_feed_pairs st = st.st_peak_pairs

let fresh_side () = { s_groups = Hashtbl.create 8; s_entries = 0 }

let addr_state st addr =
  match Hashtbl.find_opt st.st_addrs addr with
  | Some a -> a
  | None ->
    let a = { aw = fresh_side (); ar = fresh_side () } in
    Hashtbl.add st.st_addrs addr a;
    a

let sorted_groups side =
  Hashtbl.fold (fun k g acc -> (k, g) :: acc) side.s_groups []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

(* Merge a program's per-key contributions into a side. Returns, sorted
   by key, each touched key with its delta count and whether the group
   is new at this address. *)
let merge_side side news =
  List.map
    (fun (k, (best, n)) ->
      match Hashtbl.find_opt side.s_groups k with
      | None ->
        Hashtbl.replace side.s_groups k { g_best = best; g_n = n };
        (k, n, true)
      | Some g ->
        g.g_n <- g.g_n + n;
        (k, n, false))
    (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) news)

(* Visit a candidate representative for cluster (wk, rk): create the
   cluster (Sealed) or lower its representative (Rep_changed). *)
let candidate st events ~addr (wk, (wg : group)) (rk, (rg : group)) =
  let tc =
    { Testcase.sender = wg.g_best.Accessmap.prog;
      receiver = rg.g_best.Accessmap.prog;
      flow = Some (flow_of ~addr wg.g_best rg.g_best) }
  in
  match Hashtbl.find_opt st.st_clusters (wk, rk) with
  | None ->
    let id = st.st_next_id in
    st.st_next_id <- id + 1;
    Hashtbl.replace st.st_clusters (wk, rk) { cl_id = id; cl_rep = tc; cl_n = 0 };
    events := Sealed (id, tc) :: !events
  | Some cl ->
    if Testcase.compare tc cl.cl_rep < 0 then begin
      cl.cl_rep <- tc;
      events := Rep_changed (cl.cl_id, tc) :: !events
    end

let feed_addr st events ~addr ~wnews ~rnews =
  let a = addr_state st addr in
  (* DF universe delta from raw entry counts (both sides must exist). *)
  let wadd = List.fold_left (fun acc (_, (_, n)) -> acc + n) 0 wnews in
  let radd = List.fold_left (fun acc (_, (_, n)) -> acc + n) 0 rnews in
  st.st_df_total <-
    st.st_df_total + (wadd * (a.ar.s_entries + radd))
    + (a.aw.s_entries * radd);
  a.aw.s_entries <- a.aw.s_entries + wadd;
  a.ar.s_entries <- a.ar.s_entries + radd;
  match st.st_keys with
  | None -> 0
  | Some _ ->
    let wtouched = merge_side a.aw wnews in
    let rtouched = merge_side a.ar rnews in
    let wall = sorted_groups a.aw in
    let rall = sorted_groups a.ar in
    (* Candidates: a (wk, rk) pair first coexists at this address when
       either side's group is new here; both bests are final, so the
       candidate is immutable (new×new pairs are visited once, by the
       writer loop). *)
    List.iter
      (fun (wk, _, wnew) ->
        if wnew then
          let wg = Hashtbl.find a.aw.s_groups wk in
          List.iter (fun (rk, rg) -> candidate st events ~addr (wk, wg) (rk, rg))
            rall)
      wtouched;
    let wnew_keys =
      List.filter_map (fun (k, _, n) -> if n then Some k else None) wtouched
    in
    List.iter
      (fun (rk, _, rnew) ->
        if rnew then
          let rg = Hashtbl.find a.ar.s_groups rk in
          List.iter
            (fun (wk, wg) ->
              if not (List.mem wk wnew_keys) then
                candidate st events ~addr (wk, wg) (rk, rg))
            wall)
      rtouched;
    (* Count deltas: Δ(w·r) = Δw·r_new + w_old·Δr per group pair. *)
    let pairs = ref 0 in
    let wdelta wk =
      List.fold_left
        (fun acc (k, d, _) -> if k = wk then acc + d else acc)
        0 wtouched
    in
    List.iter
      (fun (wk, dw, _) ->
        List.iter
          (fun (rk, (rg : group)) ->
            incr pairs;
            let cl = Hashtbl.find st.st_clusters (wk, rk) in
            cl.cl_n <- cl.cl_n + (dw * rg.g_n))
          rall)
      wtouched;
    List.iter
      (fun (rk, dr, _) ->
        List.iter
          (fun (wk, (wg : group)) ->
            incr pairs;
            let w_old = wg.g_n - wdelta wk in
            if w_old > 0 then
              let cl = Hashtbl.find st.st_clusters (wk, rk) in
              cl.cl_n <- cl.cl_n + (w_old * dr))
          wall)
      rtouched;
    !pairs

let feed st ~prog (accesses : Stackrec.access list) =
  if prog <> st.st_fed then
    invalid_arg "Cluster.feed: programs must be fed in corpus order";
  st.st_fed <- prog + 1;
  (* Split into per-address, per-side entry lists. Prepending mirrors
     Accessmap.add, so per-program group bests (including ties on
     (prog, sys_index)) match the batch pass exactly. *)
  let waccs = Hashtbl.create 16 and raccs = Hashtbl.create 16 in
  List.iter
    (fun (acc : Stackrec.access) ->
      let entry =
        { Accessmap.prog; sys_index = acc.Stackrec.sys_index;
          ip = acc.Stackrec.ip; stack = acc.Stackrec.stack;
          stack_hash = acc.Stackrec.stack_hash }
      in
      let table =
        match acc.Stackrec.rw with
        | Kevent.Write -> waccs
        | Kevent.Read -> raccs
      in
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt table acc.Stackrec.addr)
      in
      Hashtbl.replace table acc.Stackrec.addr (entry :: prev))
    accesses;
  let addrs =
    Hashtbl.fold (fun addr _ acc -> addr :: acc) waccs []
    |> Hashtbl.fold (fun addr _ acc -> addr :: acc) raccs
    |> List.sort_uniq Int.compare
  in
  let events = ref [] in
  let pairs = ref 0 in
  List.iter
    (fun addr ->
      let group key table =
        match Hashtbl.find_opt table addr with
        | None -> []
        | Some entries -> (
          match key with
          | Some key -> group_entries key entries
          | None ->
            (* Count-only strategies still need entry totals. *)
            [ ((0, 0), (List.hd entries, List.length entries)) ])
      in
      let wnews = group (Option.map fst st.st_keys) waccs in
      let rnews = group (Option.map snd st.st_keys) raccs in
      pairs := !pairs + feed_addr st events ~addr ~wnews ~rnews)
    addrs;
  if !pairs > st.st_peak_pairs then st.st_peak_pairs <- !pairs;
  List.rev !events

(* Seal representatives that only materialize once the corpus is
   complete: RAND draws pairs over the final corpus size, so feeding
   more programs invalidates every previous draw (Dropped) and re-seals
   a fresh set. Keyed strategies seal eagerly in [feed]. *)
let drain st =
  match st.st_strategy with
  | Df | Df_ia | Df_st _ -> []
  | Rand budget ->
    if st.st_rand_drained_at = st.st_fed then []
    else begin
      let dropped = List.rev_map (fun (id, _) -> Dropped id) st.st_rand in
      let reps, _ = run_rand ~seed:st.st_seed ~budget ~corpus_size:st.st_fed in
      let sealed =
        List.map
          (fun tc ->
            let id = st.st_next_id in
            st.st_next_id <- id + 1;
            (id, tc))
          reps
      in
      st.st_rand <- sealed;
      st.st_rand_drained_at <- st.st_fed;
      List.rev dropped @ List.map (fun (id, tc) -> Sealed (id, tc)) sealed
    end

(* Current clusters as (id, representative), in id (creation) order. *)
let live st =
  match st.st_strategy with
  | Rand _ -> st.st_rand
  | Df -> []
  | Df_ia | Df_st _ ->
    Hashtbl.fold (fun _ cl acc -> (cl.cl_id, cl.cl_rep) :: acc) st.st_clusters []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let finalize st =
  let strategy = st.st_strategy in
  match strategy with
  | Df ->
    let total = st.st_df_total in
    { strategy; generated = total; clusters = total; reps = [];
      df_total = total;
      sizes = (if total = 0 then [] else [ (1, total) ]);
      requested = 0; delivered = 0 }
  | Df_ia | Df_st _ ->
    let reps =
      Hashtbl.fold (fun _ cl acc -> cl.cl_rep :: acc) st.st_clusters []
      |> List.sort Testcase.compare
    in
    let sizes =
      distribution
        (Hashtbl.fold (fun _ cl acc -> cl.cl_n :: acc) st.st_clusters [])
    in
    let clusters = Hashtbl.length st.st_clusters in
    { strategy; generated = clusters; clusters; reps; df_total = st.st_df_total;
      sizes; requested = clusters; delivered = clusters }
  | Rand budget ->
    let reps, delivered =
      if st.st_rand_drained_at = st.st_fed then
        let reps = List.map snd st.st_rand in
        (reps, List.length reps)
      else run_rand ~seed:st.st_seed ~budget ~corpus_size:st.st_fed
    in
    rand_result strategy ~budget ~df_total:st.st_df_total reps delivered
