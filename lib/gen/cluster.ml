(* Test case generation and clustering strategies (paper, sections 4.1.2
   and 6.3):

   - DF      every (write site, read site) pair on a shared address — the
             unclustered universe, counted but not executed;
   - DF-IA   clusters data flows by (write instruction, read instruction);
   - DF-ST-k additionally by the call-stack context, truncated to the k
             caller frames above the accessing function;
   - RAND    random sender/receiver pairs from the corpus, the baseline.

   One representative test case per cluster is executed; representatives
   are chosen deterministically as the earliest (corpus order) writer and
   reader entries, so runs are reproducible. *)

module Accessmap = Kit_profile.Accessmap

type strategy =
  | Df
  | Df_ia
  | Df_st of int               (* call-stack context depth *)
  | Rand of int                (* budget: number of random pairs *)

let strategy_name = function
  | Df -> "DF"
  | Df_ia -> "DF-IA"
  | Df_st k -> Printf.sprintf "DF-ST-%d" k
  | Rand _ -> "RAND"

type result = {
  strategy : strategy;
  generated : int;        (* the Table 4 "test cases" figure *)
  clusters : int;
  reps : Testcase.t list; (* executed representatives, in order *)
}

(* The k stack frames above the instrumentation site. The innermost
   frame and its immediate caller are already folded into the synthetic
   instruction address (inlining), so the context starts two frames up. *)
let context k stack =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  match stack with
  | [] | [ _ ] -> []
  | _innermost :: _caller :: outer -> take k outer

let entry_order (a : Accessmap.entry) (b : Accessmap.entry) =
  let c = Int.compare a.Accessmap.prog b.Accessmap.prog in
  if c <> 0 then c else Int.compare a.Accessmap.sys_index b.Accessmap.sys_index

(* Group entries by [key]; each group keeps its earliest entry and size. *)
let group_entries key entries =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = key e in
      match Hashtbl.find_opt table k with
      | None -> Hashtbl.replace table k (e, 1)
      | Some (best, n) ->
        let best = if entry_order e best < 0 then e else best in
        Hashtbl.replace table k (best, n + 1))
    entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []

let flow_of ~addr (w : Accessmap.entry) (r : Accessmap.entry) =
  { Testcase.addr; w_ip = w.Accessmap.ip; r_ip = r.Accessmap.ip;
    w_stack = w.Accessmap.stack; r_stack = r.Accessmap.stack;
    r_sys_index = r.Accessmap.sys_index }

(* Cluster the data flows of [map] by per-side keys derived from [wkey]
   and [rkey]; clusters over the same address pair writer groups with
   reader groups. *)
let cluster_map map ~wkey ~rkey =
  let clusters = Hashtbl.create 256 in
  let generated = ref 0 in
  Accessmap.iter_overlaps map (fun ~addr ~writers ~readers ->
      generated := !generated + (List.length writers * List.length readers);
      let wgroups = group_entries wkey writers in
      let rgroups = group_entries rkey readers in
      List.iter
        (fun (wk, (w, wn)) ->
          List.iter
            (fun (rk, (r, rn)) ->
              let key = (wk, rk) in
              let tc =
                { Testcase.sender = w.Accessmap.prog;
                  receiver = r.Accessmap.prog;
                  flow = Some (flow_of ~addr w r) }
              in
              match Hashtbl.find_opt clusters key with
              | None -> Hashtbl.replace clusters key (tc, wn * rn)
              | Some (best, n) ->
                let best = if Testcase.compare tc best < 0 then tc else best in
                Hashtbl.replace clusters key (best, n + (wn * rn)))
            rgroups)
        wgroups);
  let reps =
    Hashtbl.fold (fun _ (tc, _) acc -> tc :: acc) clusters []
    |> List.sort Testcase.compare
  in
  (!generated, Hashtbl.length clusters, reps)

let run_rand ~seed ~budget ~corpus_size =
  let rng = Random.State.make [| seed; 0x52414E44 |] in
  let seen = Hashtbl.create budget in
  let reps = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < budget && !attempts < budget * 4 do
    incr attempts;
    let s = Random.State.int rng corpus_size in
    let r = Random.State.int rng corpus_size in
    if not (Hashtbl.mem seen (s, r)) then begin
      Hashtbl.replace seen (s, r) ();
      reps := { Testcase.sender = s; receiver = r; flow = None } :: !reps
    end
  done;
  List.rev !reps

let run strategy ?(seed = 0) ~corpus_size map =
  match strategy with
  | Df ->
    let generated = Dataflow.total_flows map in
    { strategy; generated; clusters = generated; reps = [] }
  | Df_ia ->
    let key (e : Accessmap.entry) = (e.Accessmap.ip, 0) in
    let _, clusters, reps = cluster_map map ~wkey:key ~rkey:key in
    { strategy; generated = clusters; clusters; reps }
  | Df_st k ->
    let wkey (e : Accessmap.entry) =
      (e.Accessmap.ip, Hashtbl.hash (context k e.Accessmap.stack))
    in
    let rkey = wkey in
    let _, clusters, reps = cluster_map map ~wkey ~rkey in
    { strategy; generated = clusters; clusters; reps }
  | Rand budget ->
    let reps = run_rand ~seed ~budget ~corpus_size in
    { strategy; generated = List.length reps; clusters = List.length reps;
      reps }
