(* A functional interference test case: a sender and a receiver program
   (by corpus index), plus — for data-flow-generated cases — the witness
   inter-container data flow that motivated the pairing. *)

type flow = {
  addr : int;
  w_ip : int;
  r_ip : int;
  w_stack : int list;        (* innermost first *)
  r_stack : int list;
  r_sys_index : int;         (* receiver syscall performing the read *)
}

type t = {
  sender : int;              (* corpus index *)
  receiver : int;
  flow : flow option;        (* None for randomly generated cases *)
}

(* Total order. Corpus order (sender, then receiver) first; ties — two
   clusters whose representatives pair the same programs through
   different flows — fall back to the witness flow, so sorting and
   min-selection are independent of hash-table iteration order. The
   online clustering mode relies on this: batch and streaming encounter
   representative candidates in different orders, and only a total order
   makes their minima coincide. *)
let compare_flow (a : flow) (b : flow) =
  let c = Int.compare a.addr b.addr in
  if c <> 0 then c
  else
    let c = Int.compare a.w_ip b.w_ip in
    if c <> 0 then c
    else
      let c = Int.compare a.r_ip b.r_ip in
      if c <> 0 then c
      else
        let c = Int.compare a.r_sys_index b.r_sys_index in
        if c <> 0 then c
        else
          let c = List.compare Int.compare a.w_stack b.w_stack in
          if c <> 0 then c else List.compare Int.compare a.r_stack b.r_stack

let compare a b =
  let c = Int.compare a.sender b.sender in
  if c <> 0 then c
  else
    let c = Int.compare a.receiver b.receiver in
    if c <> 0 then c
    else Option.compare compare_flow a.flow b.flow

let pp ppf t =
  match t.flow with
  | None -> Fmt.pf ppf "tc(s=%d,r=%d,rand)" t.sender t.receiver
  | Some f ->
    Fmt.pf ppf "tc(s=%d,r=%d,addr=%d,wip=%d,rip=%d)" t.sender t.receiver
      f.addr f.w_ip f.r_ip
