(* A functional interference test case: a sender and a receiver program
   (by corpus index), plus — for data-flow-generated cases — the witness
   inter-container data flow that motivated the pairing. *)

type flow = {
  addr : int;
  w_ip : int;
  r_ip : int;
  w_stack : int list;        (* innermost first *)
  r_stack : int list;
  r_sys_index : int;         (* receiver syscall performing the read *)
}

type t = {
  sender : int;              (* corpus index *)
  receiver : int;
  flow : flow option;        (* None for randomly generated cases *)
}

let compare a b =
  let c = Int.compare a.sender b.sender in
  if c <> 0 then c else Int.compare a.receiver b.receiver

let pp ppf t =
  match t.flow with
  | None -> Fmt.pf ppf "tc(s=%d,r=%d,rand)" t.sender t.receiver
  | Some f ->
    Fmt.pf ppf "tc(s=%d,r=%d,addr=%d,wip=%d,rip=%d)" t.sender t.receiver
      f.addr f.w_ip f.r_ip
