(* The test execution environment (paper, section 4.2): a booted kernel
   with two container processes and a machine snapshot taken after
   container setup. Every execution reloads the snapshot, so runs differ
   only in what the framework does on purpose — which programs run, and
   the clock base offset. The environment also carries the fault plane:
   boot, snapshot restore and every syscall consult it, which is how the
   supervised runtime injects crashes, hangs and infrastructure
   failures. *)

module State = Kit_kernel.State
module Clock = Kit_kernel.Clock
module Fault = Kit_kernel.Fault

type t = {
  kernel : State.t;
  snapshot : State.snapshot;
  sender_pid : int;
  receiver_pid : int;
  base0 : int;                    (* reference clock base *)
}

(* [sender_host] puts the sender in the initial namespaces — the setup
   known bug E requires (its sender acts from the host). [fault] is the
   fault plane the booted kernel consults; boot itself may fail. *)
let create ?(sender_host = false) ?fault config =
  let kernel = State.boot ?fault config in
  let sender_pid = State.spawn_container ~host:sender_host kernel in
  let receiver_pid = State.spawn_container kernel in
  let snapshot = State.snapshot kernel in
  { kernel; snapshot; sender_pid; receiver_pid;
    base0 = Clock.base kernel.State.clock }

let fault t = t.kernel.State.fault

(* Reload the snapshot, refill the fuel tank and select this execution's
   clock base. *)
let reset t ~base =
  State.restore t.kernel t.snapshot;
  Fault.begin_execution t.kernel.State.fault;
  Clock.set_base t.kernel.State.clock base
