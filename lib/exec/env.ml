(* The test execution environment (paper, section 4.2): a booted kernel
   with two container processes and a machine snapshot taken after
   container setup. Every execution reloads the snapshot, so runs differ
   only in what the framework does on purpose — which programs run, and
   the clock base offset. *)

module State = Kit_kernel.State
module Clock = Kit_kernel.Clock

type t = {
  kernel : State.t;
  snapshot : State.snapshot;
  sender_pid : int;
  receiver_pid : int;
  base0 : int;                    (* reference clock base *)
}

(* [sender_host] puts the sender in the initial namespaces — the setup
   known bug E requires (its sender acts from the host). *)
let create ?(sender_host = false) config =
  let kernel = State.boot config in
  let sender_pid = State.spawn_container ~host:sender_host kernel in
  let receiver_pid = State.spawn_container kernel in
  let snapshot = State.snapshot kernel in
  { kernel; snapshot; sender_pid; receiver_pid;
    base0 = Clock.base kernel.State.clock }

(* Reload the snapshot and select this execution's clock base. *)
let reset t ~base =
  State.restore t.kernel t.snapshot;
  Clock.set_base t.kernel.State.clock base
