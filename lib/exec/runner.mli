(** Test case execution and non-determinism identification (paper,
    sections 4.2 and 4.3.2), in three modes.

    Sequential: execution A runs the sender in the sender container and
    then the receiver in the receiver container; execution B reloads
    the snapshot and runs the receiver alone. The receiver is
    additionally re-run with shifted clock bases; result nodes that
    vary get their det flag cleared before comparison.

    Interleaved ({!run_interleaved}): execution A runs sender and
    receiver as two cooperatively scheduled tasks under [Kernel.Sched];
    the schedule is a pure function of a seed, and the sequential
    schedule matches {!run_pair} byte-for-byte.

    Schedule search ({!search_schedules}): enumerate seeds, prune
    equivalent ones by partial-order reduction over the programs' solo
    access sequences, execute one representative per class and report
    the divergences no sequential order exposes.

    Three size-capped LRU memo caches cut the execution count: the
    non-determinism mask cache and the baseline cache, keyed on the
    receiver program hash (execution B and the mask's reference run
    depend only on the receiver, so test cases sharing a receiver share
    the solo trace), and the solo access-sequence cache, keyed on
    (container pid, program hash) since namespace ids differ per
    container. Solo artifacts are schedule-independent — a solo run has
    one task — so none of the caches is keyed by schedule. The baseline
    and access caches are bypassed while the fault plane has armed
    faults — a poisoned VM must not populate them, and a cached trace
    must not swallow a fault a real execution would have consumed.

    Execution and cache counters live in the observability plane
    ([Kit_obs]) as always-on registry counters — the single source of
    truth; {!executions}, {!mask_cache_stats}, {!mask_evictions} and
    {!baseline_cache_stats} are thin per-instance reads over them. *)

type t = {
  env : Env.t;
  obs : Kit_obs.Obs.t;
  reruns : int;
  rerun_delta : int;
  mask_cache : (int, Kit_trace.Ast.t) Lru.t;
  baseline : bool;                (** baseline cache enabled? *)
  baseline_cache : (int, Kit_trace.Ast.t) Lru.t;
  access_cache : (int * int, (int * bool) array) Lru.t;
      (** (pid, program hash) -> solo (addr, is_write) sequence *)
  c_execs : Kit_obs.Metrics.counter;  (** "exec.executions" *)
  c_hits : Kit_obs.Metrics.counter;   (** "exec.mask_hits" *)
  c_misses : Kit_obs.Metrics.counter; (** "exec.mask_misses" *)
  c_evictions : Kit_obs.Metrics.counter; (** "exec.mask_evictions" *)
  c_bhits : Kit_obs.Metrics.counter;     (** "exec.baseline_hits" *)
  c_bmisses : Kit_obs.Metrics.counter;   (** "exec.baseline_misses" *)
  execs0 : int;                   (** counter values at creation: the *)
  hits0 : int;                    (** registry is shared across runner *)
  misses0 : int;                  (** incarnations, reads are deltas *)
  evictions0 : int;
  bhits0 : int;
  bmisses0 : int;
}

val create :
  ?reruns:int -> ?rerun_delta:int -> ?mask_cache_cap:int ->
  ?baseline_cache:bool -> ?baseline_cache_cap:int ->
  ?obs:Kit_obs.Obs.t -> Env.t -> t
(** [mask_cache_cap] (default 4096) bounds the non-determinism mask
    cache and [baseline_cache_cap] (default 4096) the baseline cache;
    both evict least-recently-used. [baseline_cache] (default [true])
    turns baseline memoization off entirely — useful as the reference
    side of equivalence properties. [obs] (default {!Kit_obs.Obs.nop})
    receives the runner's counters; the accounting counters above record
    even through a disabled bundle. *)

val executions : t -> int
(** Program executions performed by this runner instance. *)

val run_receiver : t -> base:int -> Kit_abi.Program.t -> Kit_trace.Ast.t
val run_pair :
  t -> base:int -> Kit_abi.Program.t -> Kit_abi.Program.t -> Kit_trace.Ast.t

val run_interleaved :
  t -> schedule:Kit_kernel.Sched.schedule -> base:int ->
  Kit_abi.Program.t -> Kit_abi.Program.t -> Kit_trace.Ast.t
(** Execution A with sender and receiver as two schedulable tasks.
    Deterministic in the schedule; [Sched.Sequential] reproduces
    {!run_pair} byte-for-byte. Raises like {!execute} on panic or fuel
    exhaustion (in either task). *)

val solo_accesses : t -> pid:int -> Kit_abi.Program.t -> (int * bool) array
(** The program's solo instrumented access sequence ((address,
    is_write), in order) when run in container [pid] — cached; the raw
    material of partial-order reduction. *)

type sched_class = {
  cls_seeds : int list;    (** member seeds, ascending; head = representative *)
  cls_sequential : bool;   (** equivalent to the all-sender-first order *)
}

val schedule_classes :
  t -> schedules:int ->
  sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> sched_class list
(** Partition candidate seeds [0..schedules-1] into partial-order
    equivalence classes: seeds whose simulated merged access order,
    projected onto conflict addresses (both programs touch, at least
    one writes), is identical. First-seen order. *)

val baseline_trace : t -> Kit_abi.Program.t -> Kit_trace.Ast.t
(** The receiver's solo trace from the pristine snapshot at the
    reference clock base — execution B (memoized per receiver program
    unless disabled or faults are armed). *)

val nondet_mask : t -> Kit_abi.Program.t -> Kit_trace.Ast.t
(** The non-determinism mask of a receiver program (cached). *)

val mask_cache_stats : t -> int * int * int
(** [(hits, misses, live_entries)] of the mask cache. *)

val mask_evictions : t -> int
(** Mask-cache capacity evictions by this runner instance. *)

val baseline_cache_stats : t -> int * int * int
(** [(hits, misses, live_entries)] of the baseline cache. *)

type outcome = {
  trace_a : Kit_trace.Ast.t;       (** receiver trace, sender ran first *)
  trace_b : Kit_trace.Ast.t;       (** receiver trace, solo *)
  raw_diffs : Kit_trace.Compare.diff list;
  masked_diffs : Kit_trace.Compare.diff list;
  interfered : int list;           (** receiver call indices, after masking *)
}

val execute :
  t -> sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> outcome
(** Raw execution: assumes the kernel survives. Under an armed fault
    plane this can raise [Fault.Kernel_panic] / [Fault.Fuel_exhausted];
    use {!try_execute} (or [Supervisor.execute]) when faults matter. *)

(** A divergence only an interleaved schedule exposes, deduplicated by
    the schedule-independent fingerprint of its masked diffs. *)
type concurrent = {
  cc_seeds : int list;     (** reproducing schedule seeds, ascending *)
  cc_fingerprint : int;    (** [Compare.fingerprint_diffs] of [cc_diffs] *)
  cc_diffs : Kit_trace.Compare.diff list;  (** masked diffs vs solo trace *)
  cc_interfered : int list;  (** receiver call indices, after masking *)
  cc_trace : Kit_trace.Ast.t;  (** the interleaved receiver trace *)
}

type search = {
  sr_schedules : int;      (** candidate seeds examined *)
  sr_classes : int;        (** POR equivalence classes among them *)
  sr_executed : int;       (** class representatives actually run *)
  sr_pruned : int;         (** candidates that never executed *)
  sr_skipped : int;        (** representatives lost to crash/hang *)
  sr_findings : concurrent list;
}

val empty_search : search

val search_schedules :
  t -> schedules:int ->
  sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> outcome -> search
(** Schedule search for one test case given its sequential [outcome]:
    one interleaved execution per non-sequential class, divergences
    fingerprinted and deduplicated, findings matching the sequential
    outcome's fingerprint dropped (same root cause, already reported).
    Representatives that panic or hang are counted in [sr_skipped], not
    quarantined. Never raises on panic/fuel; [Fault.Snapshot_corrupt]
    still escapes (the supervisor's job). *)

(** Failure-aware execution result: executors die in the real system
    (kernel panics, runaway programs killed by the fuel deadline), so an
    execution has three honest outcomes, not one. *)
type status =
  | Completed of outcome
  | Crashed of Kit_kernel.Fault.panic_info
  | Hung

val try_execute :
  t -> sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> status
(** Like {!execute} but catches kernel panics and fuel exhaustion.
    Infrastructure faults ([Fault.Snapshot_corrupt], [Fault.Boot_failed])
    still escape: recovering from those needs a VM reboot, which is the
    supervisor's job. *)

val test_interference :
  t -> sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> int list
(** The TestFuncI primitive of Algorithm 2. *)

val bounds_of : t -> Kit_abi.Program.t -> Kit_trace.Bounds.t
(** Learn a receiver's per-leaf value bounds from receiver-only runs at
    different clock bases (the paper's section 7 extension). *)

val execute_bounds :
  t -> sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t ->
  Kit_trace.Bounds.violation list
(** Bounds-mode execution: flag values in the sender-preceded trace that
    fall outside the learned bounds — detects interference on resources
    that are non-deterministic by nature (e.g. time-namespace clocks). *)
