(* The supervised execution runtime: fuel deadlines, VM restart, bounded
   retries with deterministic exponential backoff, and a quarantine list
   for repeat crashers. See supervisor.mli for the contract.

   Recovery model, mirroring the paper's server/client deployment:

   - a kernel panic or hang poisons only the current execution; the next
     attempt reloads the snapshot, so a plain retry suffices;
   - a corrupted snapshot restore or a boot failure poisons the VM
     itself; recovery is a full reboot (State.boot + fresh snapshot),
     which is deterministic, so a rebooted VM is indistinguishable from
     the original;
   - a test case still failing after [max_retries] retries is moved to
     the quarantine as a first-class crash report and never re-executed.

   Backoff is deterministic and virtual: the delay each retry *would*
   sleep is computed and accumulated in [stats.backoff_ms], keeping
   supervised runs bit-reproducible and fast. *)

module Program = Kit_abi.Program
module Config = Kit_kernel.Config
module Fault = Kit_kernel.Fault
module Clock = Kit_kernel.Clock
module State = Kit_kernel.State
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer

type config = {
  fuel : int;
  max_retries : int;
  max_reboots : int;
  backoff_base_ms : float;
}

let default_config =
  { fuel = 100_000; max_retries = 8; max_reboots = 8; backoff_base_ms = 5.0 }

type crash_reason =
  | Panicked of Fault.panic_info
  | Hung_forever
  | Worker_lost of string

type crash = {
  c_sender : Program.t;
  c_receiver : Program.t;
  c_reason : crash_reason;
  c_attempts : int;
}

type stats = {
  mutable attempts : int;
  mutable retries : int;
  mutable reboots : int;
  mutable boot_failures : int;
  mutable corruptions : int;
  mutable backoff_ms : float;
}

(* Interned registry handles for the [stats] mirror (see
   [intern_counters] below). *)
type counters = {
  mc_attempts : Metrics.counter;
  mc_retries : Metrics.counter;
  mc_reboots : Metrics.counter;
  mc_boot_failures : Metrics.counter;
  mc_corruptions : Metrics.counter;
  mc_quarantined : Metrics.counter;
  mg_backoff_ms : Metrics.gauge;
}

type t = {
  cfg : config;
  kconfig : Config.t;
  fault : Fault.t;
  reruns : int;
  baseline_cache : bool;
  obs : Obs.t;
  m : counters;
  mutable runner : Runner.t;
  mutable prior_executions : int;
  stats : stats;
  mutable quarantine : crash list;
}

exception Gave_up of string

(* The stats record stays the structural source (tests and pp read it);
   each mutation is mirrored into the bundle's registry so exports see
   the same numbers without a separate collection pass. The handles are
   interned once per supervisor: interning takes a process-wide lock, so
   per-increment lookups would serialise every domain of a parallel
   campaign on one mutex. *)
let intern_counters obs =
  let c name = Metrics.counter obs.Obs.metrics ("sup." ^ name) in
  { mc_attempts = c "attempts";
    mc_retries = c "retries";
    mc_reboots = c "reboots";
    mc_boot_failures = c "boot_failures";
    mc_corruptions = c "corruptions";
    mc_quarantined = c "quarantined";
    mg_backoff_ms = Metrics.gauge obs.Obs.metrics "sup.backoff_ms" }

let backoff ~m stats cfg ~attempt =
  let delay = cfg.backoff_base_ms *. (2.0 ** float_of_int attempt) in
  stats.backoff_ms <- stats.backoff_ms +. delay;
  Metrics.add_gauge m.mg_backoff_ms delay

(* Boot an environment, retrying transient boot failures with backoff. *)
let boot_env ~cfg ~fault ~m ~stats kconfig =
  let rec go attempt =
    match Env.create ~fault kconfig with
    | env -> env
    | exception Fault.Boot_failed ->
      stats.boot_failures <- stats.boot_failures + 1;
      Metrics.inc m.mc_boot_failures;
      if attempt >= cfg.max_reboots then
        raise (Gave_up "VM boot kept failing; fault plane arms a permanent boot failure")
      else begin
        backoff ~m stats cfg ~attempt;
        go (attempt + 1)
      end
  in
  go 0

let fresh_stats () =
  { attempts = 0; retries = 0; reboots = 0; boot_failures = 0;
    corruptions = 0; backoff_ms = 0.0 }

let create ?(cfg = default_config) ?(reruns = 3) ?(baseline_cache = true)
    ?fault ?(obs = Obs.nop) kconfig =
  let fault = match fault with Some f -> f | None -> Fault.none () in
  Fault.set_fuel_limit fault (if cfg.fuel > 0 then Some cfg.fuel else None);
  let stats = fresh_stats () in
  let m = intern_counters obs in
  let env = boot_env ~cfg ~fault ~m ~stats kconfig in
  { cfg; kconfig; fault; reruns; baseline_cache; obs; m;
    runner = Runner.create ~reruns ~baseline_cache ~obs env;
    prior_executions = 0; stats; quarantine = [] }

let executions t = t.prior_executions + Runner.executions t.runner

let quarantined t = List.rev t.quarantine

let quarantine_count t = List.length t.quarantine

(* [quarantine] is newest-first: the delta past the first [n] reports is
   its prefix, re-reversed to oldest-first as it accumulates. *)
let quarantined_since t n =
  let rec take k l acc =
    if k <= 0 then acc
    else match l with [] -> acc | x :: tl -> take (k - 1) tl (x :: acc)
  in
  take (List.length t.quarantine - n) t.quarantine []

(* Deterministic timestamp for trace events: the current runner's
   virtual kernel clock. *)
let vnow t = Clock.now t.runner.Runner.env.Env.kernel.State.clock

(* Full VM reboot after an infrastructure fault: retire the poisoned
   runner and boot a fresh environment. Booting is deterministic, so the
   replacement is indistinguishable from the original machine. *)
let reboot t =
  t.prior_executions <- t.prior_executions + Runner.executions t.runner;
  t.stats.reboots <- t.stats.reboots + 1;
  Metrics.inc t.m.mc_reboots;
  Tracer.instant t.obs.Obs.tracer ~time:(vnow t) "sup.reboot";
  let env = boot_env ~cfg:t.cfg ~fault:t.fault ~m:t.m ~stats:t.stats t.kconfig in
  t.runner <-
    Runner.create ~reruns:t.reruns ~baseline_cache:t.baseline_cache ~obs:t.obs
      env

(* One supervised attempt loop shared by execute and test_interference:
   [retries] counts kernel deaths (panic/hang), [reboots] counts
   infrastructure faults; each budget is bounded separately. *)
let rec attempt t ~sender ~receiver ~retries ~reboots =
  t.stats.attempts <- t.stats.attempts + 1;
  Metrics.inc t.m.mc_attempts;
  match Runner.try_execute t.runner ~sender ~receiver with
  | Runner.Completed _ as s -> (s, retries)
  | (Runner.Crashed _ | Runner.Hung) as s ->
    if retries >= t.cfg.max_retries then (s, retries)
    else begin
      t.stats.retries <- t.stats.retries + 1;
      Metrics.inc t.m.mc_retries;
      Tracer.instant t.obs.Obs.tracer ~time:(vnow t) "sup.retry"
        ~attrs:[ ("attempt", string_of_int (retries + 1)) ];
      backoff ~m:t.m t.stats t.cfg ~attempt:retries;
      attempt t ~sender ~receiver ~retries:(retries + 1) ~reboots
    end
  | exception Fault.Snapshot_corrupt ->
    t.stats.corruptions <- t.stats.corruptions + 1;
    Metrics.inc t.m.mc_corruptions;
    if reboots >= t.cfg.max_reboots then
      raise (Gave_up "snapshot restore kept failing; fault plane arms permanent corruption")
    else begin
      backoff ~m:t.m t.stats t.cfg ~attempt:reboots;
      reboot t;
      attempt t ~sender ~receiver ~retries ~reboots:(reboots + 1)
    end

(* Per-execution span around the whole attempt loop (retries included),
   timestamped with the virtual clock so traces stay deterministic. The
   Begin and End read the clock separately — the span's deterministic
   duration is the virtual time the attempts actually consumed. [attrs]
   carries the caller's correlation attributes (case/cluster/domain), so
   a reconstructed trace can join each execution back to its test case. *)
let supervised t name ~attrs ~sender ~receiver =
  let tracer = t.obs.Obs.tracer in
  let sp = Tracer.span tracer ~attrs ~time:(vnow t) name in
  match attempt t ~sender ~receiver ~retries:0 ~reboots:0 with
  | result -> Tracer.finish tracer ~time:(vnow t) sp; result
  | exception e -> Tracer.finish tracer ~time:(vnow t) sp; raise e

let execute ?(attrs = []) t ~sender ~receiver =
  let status, retries = supervised t "sup.execute" ~attrs ~sender ~receiver in
  (match status with
  | Runner.Completed _ -> ()
  | Runner.Crashed info ->
    Metrics.inc t.m.mc_quarantined;
    Tracer.instant t.obs.Obs.tracer ~time:(vnow t) "sup.quarantine"
      ~attrs:(("reason", "panic") :: attrs);
    t.quarantine <-
      { c_sender = sender; c_receiver = receiver;
        c_reason = Panicked info; c_attempts = retries + 1 }
      :: t.quarantine
  | Runner.Hung ->
    Metrics.inc t.m.mc_quarantined;
    Tracer.instant t.obs.Obs.tracer ~time:(vnow t) "sup.quarantine"
      ~attrs:(("reason", "hang") :: attrs);
    t.quarantine <-
      { c_sender = sender; c_receiver = receiver;
        c_reason = Hung_forever; c_attempts = retries + 1 }
      :: t.quarantine);
  status

(* Supervised schedule search. The runner's search already absorbs
   per-schedule task crashes (they are counted, not quarantined), so the
   only failures reaching this level are infrastructure faults: handle a
   corrupted snapshot with one reboot and retry, and give the case up as
   skipped if the replacement VM is corrupted too — schedule search is
   opportunistic extra coverage and must not take the campaign down. *)
let search_schedules ?(attrs = []) t ~schedules ~sender ~receiver outcome =
  if schedules <= 1 then Runner.empty_search
  else begin
    let tracer = t.obs.Obs.tracer in
    let sp = Tracer.span tracer ~attrs ~time:(vnow t) "sup.sched_search" in
    let corrupted () =
      t.stats.corruptions <- t.stats.corruptions + 1;
      Metrics.inc t.m.mc_corruptions
    in
    let run () =
      Runner.search_schedules t.runner ~schedules ~sender ~receiver outcome
    in
    let result =
      match run () with
      | r -> r
      | exception Fault.Snapshot_corrupt -> (
        corrupted ();
        reboot t;
        match run () with
        | r -> r
        | exception Fault.Snapshot_corrupt ->
          corrupted ();
          { Runner.empty_search with
            Runner.sr_schedules = schedules; sr_skipped = 1 })
    in
    Tracer.finish tracer ~time:(vnow t) sp;
    result
  end

let test_interference t ~sender ~receiver =
  let status, _ = supervised t "sup.retest" ~attrs:[] ~sender ~receiver in
  match status with
  | Runner.Completed outcome -> outcome.Runner.interfered
  | Runner.Crashed _ | Runner.Hung -> []

let pp_crash_reason ppf = function
  | Panicked info -> Fault.pp_panic_info ppf info
  | Hung_forever -> Fmt.string ppf "hung (fuel deadline exceeded every attempt)"
  | Worker_lost how -> Fmt.pf ppf "worker process lost (%s)" how

let pp_crash ppf c =
  Fmt.pf ppf "@[<v>QUARANTINED after %d attempts: %a@,sender   %s@,receiver %s@]"
    c.c_attempts pp_crash_reason c.c_reason
    (Program.to_string c.c_sender)
    (Program.to_string c.c_receiver)

let pp_stats ppf s =
  Fmt.pf ppf
    "%d attempts, %d retries, %d reboots (%d boot failures, %d corruptions), %.1f ms backoff"
    s.attempts s.retries s.reboots s.boot_failures s.corruptions s.backoff_ms
