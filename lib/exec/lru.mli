(** A small size-capped LRU map for the runner's memo caches: lookups
    refresh recency, inserts evict the least-recently-used entry when
    the cap is reached. Amortised O(1) per operation, O(cap) memory. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> int -> ('k, 'v) t
(** [create cap] (clamped to at least 1). [on_evict] is called with each
    entry dropped by capacity eviction — not by overwriting {!add}. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite; evicts the LRU entry first when full. *)

val mem : ('k, 'v) t -> 'k -> bool
val length : ('k, 'v) t -> int
