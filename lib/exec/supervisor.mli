(** The supervised execution runtime.

    Real KIT campaigns run for weeks against executors that panic, hang
    and fail to boot; the server/client mode (paper, section 5.2) exists
    precisely so campaigns survive dying workers. The supervisor wraps
    {!Runner} with that robustness: a per-execution fuel deadline,
    VM restart-from-snapshot (and full reboot after infrastructure
    faults), bounded retries with deterministic exponential backoff, and
    a quarantine list for test cases that kill the kernel repeatedly —
    quarantined cases are first-class crash reports, never silent drops.

    Invariant (property-tested): under any transient fault schedule a
    supervised campaign produces byte-identical reports and funnel to
    the fault-free run, as long as the retry budget covers the largest
    transient occurrence count. *)

type config = {
  fuel : int;
  (** per-execution step budget; every syscall costs one unit, a hung
      execution is one that exhausts the budget. [<= 0] disables the
      deadline. *)
  max_retries : int;
  (** re-execution attempts per test case after the first try *)
  max_reboots : int;
  (** VM reboot attempts per test case after infrastructure faults
      (boot failures, snapshot corruption) before giving up *)
  backoff_base_ms : float;
  (** base of the deterministic exponential backoff: retry [n] waits
      [backoff_base_ms * 2^n] virtual milliseconds (recorded, not
      slept — the model's time is virtual) *)
}

val default_config : config
(** fuel 100_000, 8 retries, 8 reboots, 5 ms backoff base. *)

(** Why a quarantined test case kept killing the kernel. *)
type crash_reason =
  | Panicked of Kit_kernel.Fault.panic_info
  | Hung_forever
  | Worker_lost of string
      (** the worker process executing this case died or was killed;
          the string says how (signal, exit code, heartbeat) *)

(** A first-class crash report: the test case, why it died, and how many
    times the supervisor tried. *)
type crash = {
  c_sender : Kit_abi.Program.t;
  c_receiver : Kit_abi.Program.t;
  c_reason : crash_reason;
  c_attempts : int;
}

type stats = {
  mutable attempts : int;       (** execution attempts, including retries *)
  mutable retries : int;
  mutable reboots : int;        (** VM reboots after infrastructure faults *)
  mutable boot_failures : int;  (** failed boot attempts *)
  mutable corruptions : int;    (** corrupted snapshot restores *)
  mutable backoff_ms : float;   (** total simulated backoff delay *)
}

type counters
(** Registry handles for the [stats] mirror, interned once at [create]:
    interning takes a process-wide lock, so per-increment lookups would
    serialise the domains of a parallel campaign on one mutex. *)

type t = {
  cfg : config;
  kconfig : Kit_kernel.Config.t;
  fault : Kit_kernel.Fault.t;
  reruns : int;
  baseline_cache : bool;        (** propagated to every runner incarnation *)
  obs : Kit_obs.Obs.t;          (** observability bundle (shared with runners) *)
  m : counters;
  mutable runner : Runner.t;    (** replaced on VM reboot *)
  mutable prior_executions : int;  (** executions by runners since retired *)
  stats : stats;
  mutable quarantine : crash list; (** oldest first *)
}

exception Gave_up of string
(** The supervisor exhausted its reboot budget on a permanent
    infrastructure fault — the campaign cannot make progress. *)

val create :
  ?cfg:config -> ?reruns:int -> ?baseline_cache:bool ->
  ?fault:Kit_kernel.Fault.t -> ?obs:Kit_obs.Obs.t -> Kit_kernel.Config.t -> t
(** Boot a supervised environment (retrying transient boot failures).
    [baseline_cache] (default [true]) enables the runner's baseline-trace
    memoization — see {!Runner.create}. [obs] (default
    {!Kit_obs.Obs.nop}) receives ["sup.*"] counters mirroring {!stats},
    per-execution ["sup.execute"] spans and retry/reboot/quarantine
    instants timestamped with the virtual kernel clock.
    @raise Gave_up if the VM never comes up. *)

val execute :
  ?attrs:(string * string) list ->
  t -> sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> Runner.status
(** Execute one test case under supervision. [Completed] after at most
    [max_retries] retries; [Crashed]/[Hung] means the case exceeded the
    retry budget and was quarantined (recorded in [quarantine]).
    [attrs] (default [[]]) are correlation attributes (e.g. [case],
    [cluster], [domain]) stamped on the ["sup.execute"] span and any
    quarantine instant, so trace analysis can join executions back to
    their test cases. The span's Begin and End each read the virtual
    clock, so its deterministic duration is the virtual time the attempt
    loop consumed.
    @raise Gave_up on permanent infrastructure faults. *)

val search_schedules :
  ?attrs:(string * string) list ->
  t -> schedules:int ->
  sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t ->
  Runner.outcome -> Runner.search
(** Supervised {!Runner.search_schedules}: per-schedule task crashes
    are already absorbed (counted as skips) by the runner; a corrupted
    snapshot triggers one VM reboot and retry, and a second corruption
    abandons the search as skipped — schedule search is opportunistic
    extra coverage and never fails the case. Emits a
    ["sup.sched_search"] span. No-op returning {!Runner.empty_search}
    when [schedules <= 1]. *)

val test_interference :
  t -> sender:Kit_abi.Program.t -> receiver:Kit_abi.Program.t -> int list
(** Supervised TestFuncI (Algorithm 2 re-testing): like
    [Runner.test_interference] but crash/hang-safe. A modified sender
    that permanently kills the kernel yields [[]] — the diagnosis loop
    treats it as non-interfering rather than dying with the VM. *)

val executions : t -> int
(** Program executions across all runner incarnations. *)

val quarantined : t -> crash list
(** Quarantined crash reports, oldest first. *)

val quarantine_count : t -> int
(** [List.length (quarantined t)], O(n) but allocation-free — for
    per-case delta accounting in parallel campaign chunks. *)

val quarantined_since : t -> int -> crash list
(** [quarantined_since t n] is every crash report quarantined after the
    first [n], oldest first — the delta between two
    {!quarantine_count} readings, allocating only the delta. *)

val pp_crash : Format.formatter -> crash -> unit
val pp_stats : Format.formatter -> stats -> unit
