(* A small size-capped LRU map for the runner's memo caches.

   Recency is tracked with stamps instead of a doubly-linked list: each
   live entry records the stamp of its latest touch, and a queue holds
   (key, stamp) pairs in touch order. Eviction pops the queue until it
   finds a pair whose stamp is still current — stale pairs (the entry
   was touched again later, or removed) are skipped for free. The queue
   is compacted once it grows past a small multiple of the cap, so
   memory stays O(cap) and every operation is amortised O(1). *)

type ('k, 'v) entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  cap : int;
  on_evict : 'k -> 'v -> unit;
  tbl : ('k, ('k, 'v) entry) Hashtbl.t;
  order : ('k * int) Queue.t;       (* touch order; stale stamps skipped *)
  mutable clock : int;
}

let create ?(on_evict = fun _ _ -> ()) cap =
  let cap = max 1 cap in
  { cap; on_evict; tbl = Hashtbl.create (min cap 256);
    order = Queue.create (); clock = 0 }

let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k

let is_current t (k, stamp) =
  match Hashtbl.find_opt t.tbl k with
  | Some e -> e.stamp = stamp
  | None -> false

let compact t =
  if Queue.length t.order > (8 * t.cap) + 8 then begin
    let live = Queue.create () in
    Queue.iter (fun p -> if is_current t p then Queue.push p live) t.order;
    Queue.clear t.order;
    Queue.transfer live t.order
  end

let touch t k e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock;
  Queue.push (k, t.clock) t.order;
  compact t

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some e ->
    touch t k e;
    Some e.value

(* Evict the least-recently-touched live entry. *)
let evict_one t =
  let rec pop () =
    let ((k, _) as p) = Queue.pop t.order in
    if is_current t p then begin
      let e = Hashtbl.find t.tbl k in
      Hashtbl.remove t.tbl k;
      t.on_evict k e.value
    end
    else pop ()
  in
  if Hashtbl.length t.tbl > 0 then pop ()

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
   | Some _ -> Hashtbl.remove t.tbl k
   | None -> if Hashtbl.length t.tbl >= t.cap then evict_one t);
  let e = { value = v; stamp = 0 } in
  Hashtbl.replace t.tbl k e;
  touch t k e
