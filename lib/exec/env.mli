(** The test execution environment (paper, section 4.2): a booted kernel
    with two container processes and a machine snapshot taken after
    container setup. Every execution reloads the snapshot, so runs
    differ only in what the framework does on purpose: which programs
    run, and the clock base offset. The environment carries the fault
    plane consulted at boot, restore and every syscall. *)

type t = {
  kernel : Kit_kernel.State.t;
  snapshot : Kit_kernel.State.snapshot;
  sender_pid : int;
  receiver_pid : int;
  base0 : int;                    (** reference clock base *)
}

val create :
  ?sender_host:bool -> ?fault:Kit_kernel.Fault.t -> Kit_kernel.Config.t -> t
(** [sender_host] puts the sender in the initial namespaces — the setup
    known bug E requires. [fault] (default inert) is the fault plane.
    @raise Kit_kernel.Fault.Boot_failed if a boot failure is armed. *)

val fault : t -> Kit_kernel.Fault.t
(** The kernel's fault plane. *)

val reset : t -> base:int -> unit
(** Reload the snapshot, refill the execution fuel tank and select this
    execution's clock base.
    @raise Kit_kernel.Fault.Snapshot_corrupt if corruption is armed. *)
