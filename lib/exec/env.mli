(** The test execution environment (paper, section 4.2): a booted kernel
    with two container processes and a machine snapshot taken after
    container setup. Every execution reloads the snapshot, so runs
    differ only in what the framework does on purpose: which programs
    run, and the clock base offset. *)

type t = {
  kernel : Kit_kernel.State.t;
  snapshot : Kit_kernel.State.snapshot;
  sender_pid : int;
  receiver_pid : int;
  base0 : int;                    (** reference clock base *)
}

val create : ?sender_host:bool -> Kit_kernel.Config.t -> t
(** [sender_host] puts the sender in the initial namespaces — the setup
    known bug E requires. *)

val reset : t -> base:int -> unit
(** Reload the snapshot and select this execution's clock base. *)
