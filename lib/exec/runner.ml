(* Test case execution and non-determinism identification (paper,
   sections 4.2 and 4.3.2), in three modes.

   Sequential (the paper's two-phase mode): execution A runs the sender
   program in the sender container to completion and then the receiver
   program in the receiver container; execution B reloads the snapshot
   and runs the receiver alone. Both receiver traces are decoded to
   ASTs. The receiver is additionally re-run several times with
   different clock base offsets; result nodes that vary get their det
   flag cleared, and the flags are applied to both traces before
   comparison.

   Interleaved ([run_interleaved]): execution A instead runs sender and
   receiver as two cooperatively scheduled tasks under [Kernel.Sched] —
   every instrumented memory access is a yield point, and the schedule
   is a pure function of a seed, so the same seed always reproduces the
   byte-identical trace. The [Sched.Sequential] schedule degenerates to
   sender-then-receiver and matches [run_pair] byte-for-byte.

   Schedule search ([search_schedules]): enumerate seeds 0..N-1 for a
   test case, prune seeds that cannot differ, execute one
   representative per remaining equivalence class, and report the
   divergences no sequential order exposes. Pruning is partial-order
   reduction over the two programs' solo access sequences: two
   schedules that order every conflicting access pair (both programs
   touch the address, at least one writes) the same way are equivalent,
   so only the first seed of each class runs. The abstract replay
   ([Sched.simulate]) is driven by the same decision function as the
   real driver, so it is exact whenever interference does not change a
   program's access count.

   Three memo caches cut the execution count, all size-capped with LRU
   eviction (lookups refresh recency, so hot entries survive large
   campaigns — this replaced an earlier FIFO ring that evicted the
   hottest receivers precisely because they were old):

   - the non-determinism mask cache, keyed on the receiver program
     hash, as the paper saves masks to disk between campaigns;
   - the baseline cache, same key: execution B and the mask's
     reference run are the receiver solo from the pristine snapshot at
     the reference clock base — a function of the receiver program
     only, so test cases sharing a receiver share the trace. Decoded
     ASTs are immutable, so sharing is safe. The cache is bypassed
     entirely while the fault plane has armed faults: a poisoned VM
     must not populate it, and a cached trace must not swallow a fault
     that a real execution would have consumed. (A receiver whose solo
     run crashes or hangs never completes its first execution, so it
     can never be cached.)
   - the solo access-sequence cache, keyed on (container pid, program
     hash): schedule search needs each program's solo instrumented
     access sequence, which depends on which container runs it (the
     namespace ids differ), hence the wider key. Note what is *not*
     keyed by schedule: solo artifacts (baseline, mask, accesses) are
     schedule-independent because a solo run has exactly one task, and
     per-(receiver, schedule) traces are never cached because each
     schedule class representative executes exactly once per case.

   Execution and cache counters live in the observability plane's
   metrics registry ("exec.executions", "exec.mask_hits",
   "exec.mask_misses", "exec.mask_evictions", "exec.baseline_hits",
   "exec.baseline_misses") as always-on counters: they are campaign
   accounting, so they keep counting even through a disabled bundle.
   Registry counters are monotone and may be shared across runner
   incarnations (the supervisor reboots runners into the same bundle),
   so each runner captures the counter values at creation and reports
   per-instance deltas. *)

module Program = Kit_abi.Program
module Interp = Kit_kernel.Interp
module Fault = Kit_kernel.Fault
module Sched = Kit_kernel.Sched
module Kevent = Kit_kernel.Kevent
module Ctx = Kit_kernel.Ctx
module State = Kit_kernel.State
module Ast = Kit_trace.Ast
module Decode = Kit_trace.Decode
module Compare = Kit_trace.Compare
module Nondet = Kit_trace.Nondet
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics

type t = {
  env : Env.t;
  obs : Obs.t;
  reruns : int;
  rerun_delta : int;
  mask_cache : (int, Ast.t) Lru.t;       (* receiver program hash -> mask *)
  baseline : bool;                       (* baseline cache enabled? *)
  baseline_cache : (int, Ast.t) Lru.t;   (* receiver hash -> solo trace at base0 *)
  access_cache : (int * int, (int * bool) array) Lru.t;
                                         (* (pid, program hash) -> solo
                                            (addr, is_write) sequence *)
  c_execs : Metrics.counter;             (* single source of truth... *)
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_evictions : Metrics.counter;
  c_bhits : Metrics.counter;
  c_bmisses : Metrics.counter;
  execs0 : int;                          (* ...read as deltas from here *)
  hits0 : int;
  misses0 : int;
  evictions0 : int;
  bhits0 : int;
  bmisses0 : int;
}

let create ?(reruns = 3) ?(rerun_delta = 7_777) ?(mask_cache_cap = 4096)
    ?(baseline_cache = true) ?(baseline_cache_cap = 4096)
    ?(obs = Obs.nop) env =
  let c_execs = Metrics.counter ~always:true obs.Obs.metrics "exec.executions" in
  let c_hits = Metrics.counter ~always:true obs.Obs.metrics "exec.mask_hits" in
  let c_misses =
    Metrics.counter ~always:true obs.Obs.metrics "exec.mask_misses"
  in
  let c_evictions =
    Metrics.counter ~always:true obs.Obs.metrics "exec.mask_evictions"
  in
  let c_bhits =
    Metrics.counter ~always:true obs.Obs.metrics "exec.baseline_hits"
  in
  let c_bmisses =
    Metrics.counter ~always:true obs.Obs.metrics "exec.baseline_misses"
  in
  { env; obs; reruns; rerun_delta;
    mask_cache =
      Lru.create (max 1 mask_cache_cap)
        ~on_evict:(fun _ _ -> Metrics.inc c_evictions);
    baseline = baseline_cache;
    baseline_cache = Lru.create (max 1 baseline_cache_cap);
    access_cache = Lru.create (max 1 baseline_cache_cap);
    c_execs; c_hits; c_misses; c_evictions; c_bhits; c_bmisses;
    execs0 = Metrics.counter_value c_execs;
    hits0 = Metrics.counter_value c_hits;
    misses0 = Metrics.counter_value c_misses;
    evictions0 = Metrics.counter_value c_evictions;
    bhits0 = Metrics.counter_value c_bhits;
    bmisses0 = Metrics.counter_value c_bmisses }

let executions t = Metrics.counter_value t.c_execs - t.execs0

let run_receiver t ~base receiver =
  Env.reset t.env ~base;
  Metrics.inc t.c_execs;
  let results = Interp.run t.env.Env.kernel ~pid:t.env.Env.receiver_pid receiver in
  Decode.decode_trace results

let run_pair t ~base sender receiver =
  Env.reset t.env ~base;
  Metrics.inc t.c_execs;
  let _ : Interp.result list =
    Interp.run t.env.Env.kernel ~pid:t.env.Env.sender_pid sender
  in
  let results = Interp.run t.env.Env.kernel ~pid:t.env.Env.receiver_pid receiver in
  Decode.decode_trace results

(* Interleaved execution A: sender and receiver run as two schedulable
   tasks; [Kernel.Sched] transfers control at every instrumented memory
   access, picking the next task as a pure function of the schedule.
   [Sched.Sequential] always picks the sender first and reproduces
   [run_pair] byte-for-byte. A panic or fuel exhaustion in either task
   unwinds both and re-raises, matching the sequential crash paths. *)
let run_interleaved t ~schedule ~base sender receiver =
  Env.reset t.env ~base;
  Metrics.inc t.c_execs;
  let k = t.env.Env.kernel in
  let results = ref [] in
  let tasks =
    [ (fun () ->
        let _ : Interp.result list =
          Interp.run k ~pid:t.env.Env.sender_pid sender
        in
        ());
      (fun () -> results := Interp.run k ~pid:t.env.Env.receiver_pid receiver)
    ]
  in
  let _decisions : int = Sched.run ~schedule k.State.ctx tasks in
  Decode.decode_trace !results

(* The solo instrumented access sequence of a program run in container
   [pid] — the raw material of partial-order reduction. Captured with a
   profiling sink, whose in_irq/instrumented filters coincide exactly
   with the scheduler's yield points, so access k of this sequence is
   what resume segment k+1 of an interleaved task performs. Memoized on
   (pid, program hash): the same program accesses different namespace
   ids in different containers. Not cached while faults are armed, for
   the same reasons as the baseline cache. *)
let solo_accesses t ~pid prog =
  let armed = Fault.schedule (Env.fault t.env) <> [] in
  let key = (pid, Program.hash prog) in
  match if armed then None else Lru.find t.access_cache key with
  | Some accesses -> accesses
  | None ->
    Env.reset t.env ~base:t.env.Env.base0;
    Metrics.inc t.c_execs;
    let k = t.env.Env.kernel in
    let acc = ref [] in
    let sink = function
      | Kevent.Mem { addr; rw; _ } ->
        acc := (addr, rw = Kevent.Write) :: !acc
      | _ -> ()
    in
    Ctx.with_sink k.State.ctx sink (fun () ->
        let _ : Interp.result list = Interp.run k ~pid prog in
        ());
    let accesses = Array.of_list (List.rev !acc) in
    if not armed then Lru.add t.access_cache key accesses;
    accesses

(* Partial-order reduction over candidate seeds 0..schedules-1. A
   conflict address is one both programs touch with at least one write;
   a schedule's class key is its simulated merged access order projected
   onto conflict addresses. Schedules with equal keys order every
   conflicting pair identically, so their executions coincide (exact up
   to interference changing a task's access count — measured by the POR
   soundness property in the test suite). The key is also compared
   against the all-sender-first order: classes equivalent to it are
   already covered by the sequential phase and never execute. *)
type sched_class = {
  cls_seeds : int list;        (* member seeds, ascending; head = representative *)
  cls_sequential : bool;       (* equivalent to the sequential order *)
}

let schedule_classes t ~schedules ~sender ~receiver =
  let sa = solo_accesses t ~pid:t.env.Env.sender_pid sender in
  let ra = solo_accesses t ~pid:t.env.Env.receiver_pid receiver in
  let conflict = Hashtbl.create 16 in
  let mark tbl (addr, w) =
    let r, wr = Option.value ~default:(false, false) (Hashtbl.find_opt tbl addr) in
    Hashtbl.replace tbl addr (r || not w, wr || w)
  in
  let sides = Hashtbl.create 16 and rsides = Hashtbl.create 16 in
  Array.iter (mark sides) sa;
  Array.iter (mark rsides) ra;
  Hashtbl.iter
    (fun addr (sr, sw) ->
      match Hashtbl.find_opt rsides addr with
      | Some (rr, rw) when (sw && (rr || rw)) || (rw && (sr || sw)) ->
        Hashtbl.replace conflict addr ()
      | _ -> ())
    sides;
  let counts = [| Array.length sa; Array.length ra |] in
  let key_of schedule =
    List.filter_map
      (fun (task, i) ->
        let addr, w = if task = 0 then sa.(i) else ra.(i) in
        if Hashtbl.mem conflict addr then
          Some ((addr * 4) + (task * 2) + Bool.to_int w)
        else None)
      (Sched.simulate schedule counts)
  in
  let seq_key = key_of Sched.Sequential in
  let classes = Hashtbl.create 16 in
  let order = ref [] in
  for s = 0 to schedules - 1 do
    let k = key_of (Sched.Seeded s) in
    match Hashtbl.find_opt classes k with
    | Some seeds -> Hashtbl.replace classes k (s :: seeds)
    | None ->
      Hashtbl.replace classes k [ s ];
      order := k :: !order
  done;
  List.rev !order
  |> List.map (fun k ->
         { cls_seeds = List.rev (Hashtbl.find classes k);
           cls_sequential = k = seq_key })

(* The receiver's solo trace from the pristine snapshot at the reference
   clock base — execution B, and the mask's reference run. Memoized per
   receiver program unless disabled or the fault plane is armed. *)
let baseline_trace t receiver =
  if not (t.baseline && Fault.schedule (Env.fault t.env) = []) then
    run_receiver t ~base:t.env.Env.base0 receiver
  else begin
    let key = Program.hash receiver in
    match Lru.find t.baseline_cache key with
    | Some trace ->
      Metrics.inc t.c_bhits;
      trace
    | None ->
      Metrics.inc t.c_bmisses;
      let trace = run_receiver t ~base:t.env.Env.base0 receiver in
      Lru.add t.baseline_cache key trace;
      trace
  end

(* The non-determinism mask of [receiver]: its solo trace with det flags
   cleared wherever re-executions with shifted clock bases disagree. *)
let nondet_mask t receiver =
  let key = Program.hash receiver in
  match Lru.find t.mask_cache key with
  | Some mask ->
    Metrics.inc t.c_hits;
    mask
  | None ->
    Metrics.inc t.c_misses;
    let base = t.env.Env.base0 in
    let reference = baseline_trace t receiver in
    let alternatives =
      List.init t.reruns (fun k ->
          run_receiver t ~base:(base + ((k + 1) * t.rerun_delta)) receiver)
    in
    let mask = Nondet.mark reference alternatives in
    Lru.add t.mask_cache key mask;
    mask

(* Thin reads over the registry counters — per-instance deltas. *)
let mask_cache_stats t =
  ( Metrics.counter_value t.c_hits - t.hits0,
    Metrics.counter_value t.c_misses - t.misses0,
    Lru.length t.mask_cache )

let mask_evictions t = Metrics.counter_value t.c_evictions - t.evictions0

let baseline_cache_stats t =
  ( Metrics.counter_value t.c_bhits - t.bhits0,
    Metrics.counter_value t.c_bmisses - t.bmisses0,
    Lru.length t.baseline_cache )

type outcome = {
  trace_a : Ast.t;                  (* receiver trace, sender ran first *)
  trace_b : Ast.t;                  (* receiver trace, solo *)
  raw_diffs : Compare.diff list;    (* before non-determinism masking *)
  masked_diffs : Compare.diff list; (* after masking *)
  interfered : int list;            (* receiver call indices, after masking *)
}

(* Execute one test case. *)
let execute t ~sender ~receiver =
  let base = t.env.Env.base0 in
  let trace_a = run_pair t ~base sender receiver in
  let trace_b = baseline_trace t receiver in
  let raw_diffs = Compare.diff_trees trace_a trace_b in
  if raw_diffs = [] then
    { trace_a; trace_b; raw_diffs; masked_diffs = []; interfered = [] }
  else begin
    let mask = nondet_mask t receiver in
    let masked_a = Nondet.apply_mask mask trace_a in
    let masked_b = Nondet.apply_mask mask trace_b in
    let masked_diffs = Compare.diff_trees masked_a masked_b in
    let interfered = Compare.interfered_of_diffs masked_diffs in
    { trace_a; trace_b; raw_diffs; masked_diffs; interfered }
  end

(* A divergence only an interleaved schedule exposes: the masked diffs
   of one schedule class representative against the receiver's solo
   trace, fingerprinted schedule-independently so the same root cause
   found by several classes collapses into one finding carrying every
   reproducing seed. *)
type concurrent = {
  cc_seeds : int list;              (* reproducing schedule seeds, ascending *)
  cc_fingerprint : int;             (* Compare.fingerprint_diffs of cc_diffs *)
  cc_diffs : Compare.diff list;     (* masked diffs vs the solo trace *)
  cc_interfered : int list;         (* receiver call indices, after masking *)
  cc_trace : Ast.t;                 (* the interleaved receiver trace *)
}

type search = {
  sr_schedules : int;               (* candidate seeds examined *)
  sr_classes : int;                 (* POR equivalence classes among them *)
  sr_executed : int;                (* class representatives actually run *)
  sr_pruned : int;                  (* candidates that never executed *)
  sr_skipped : int;                 (* representatives lost to crash/hang *)
  sr_findings : concurrent list;
}

let empty_search =
  { sr_schedules = 0; sr_classes = 0; sr_executed = 0; sr_pruned = 0;
    sr_skipped = 0; sr_findings = [] }

(* Schedule search for one test case, given its sequential outcome.
   Every non-sequential class representative executes once; divergences
   whose fingerprint equals the sequential outcome's are the same root
   cause the sequential phase already reported and are dropped, so the
   findings are precisely the concurrent-only interference. A
   representative that panics or hangs is counted and skipped — a
   schedule-dependent crash is interesting but is not a functional
   interference report, and must not quarantine a test case that runs
   fine sequentially. *)
let search_schedules t ~schedules ~sender ~receiver (seq : outcome) =
  if schedules <= 1 then empty_search
  else
    match schedule_classes t ~schedules ~sender ~receiver with
    | exception (Fault.Kernel_panic _ | Fault.Fuel_exhausted) ->
      (* solo access capture died under an armed fault plane *)
      { empty_search with sr_schedules = schedules; sr_skipped = 1 }
    | classes ->
      let seq_fp = Compare.fingerprint_diffs seq.masked_diffs in
      let executed = ref 0 and skipped = ref 0 in
      let findings = ref [] in      (* (fingerprint, concurrent), first-seen *)
      List.iter
        (fun cls ->
          if not cls.cls_sequential then begin
            incr executed;
            match
              run_interleaved t
                ~schedule:(Sched.Seeded (List.hd cls.cls_seeds))
                ~base:t.env.Env.base0 sender receiver
            with
            | exception (Fault.Kernel_panic _ | Fault.Fuel_exhausted) ->
              incr skipped
            | trace_i ->
              let raw = Compare.diff_trees trace_i seq.trace_b in
              if raw <> [] then begin
                let mask = nondet_mask t receiver in
                let masked_i = Nondet.apply_mask mask trace_i in
                let masked_b = Nondet.apply_mask mask seq.trace_b in
                let diffs = Compare.diff_trees masked_i masked_b in
                if diffs <> [] then begin
                  let fp = Compare.fingerprint_diffs diffs in
                  if fp <> seq_fp then
                    match List.assoc_opt fp !findings with
                    | Some c ->
                      findings :=
                        (fp, { c with cc_seeds = c.cc_seeds @ cls.cls_seeds })
                        :: List.remove_assoc fp !findings
                    | None ->
                      findings :=
                        ( fp,
                          { cc_seeds = cls.cls_seeds; cc_fingerprint = fp;
                            cc_diffs = diffs;
                            cc_interfered = Compare.interfered_of_diffs diffs;
                            cc_trace = trace_i } )
                        :: !findings
                end
              end
          end)
        classes;
      let sr_findings =
        List.rev_map
          (fun (_, c) ->
            { c with cc_seeds = List.sort_uniq Int.compare c.cc_seeds })
          !findings
      in
      { sr_schedules = schedules;
        sr_classes = List.length classes;
        sr_executed = !executed;
        sr_pruned = schedules - !executed;
        sr_skipped = !skipped;
        sr_findings }

(* Failure-aware execution: a crashed or hung kernel no longer takes the
   whole campaign down; the caller (normally Exec.Supervisor) decides
   whether to retry, reboot, or quarantine. *)
type status =
  | Completed of outcome
  | Crashed of Fault.panic_info
  | Hung

let try_execute t ~sender ~receiver =
  match execute t ~sender ~receiver with
  | outcome -> Completed outcome
  | exception Fault.Kernel_panic info -> Crashed info
  | exception Fault.Fuel_exhausted -> Hung

(* Re-test with a modified sender and report the interfered receiver
   indices — the TestFuncI primitive of Algorithm 2. *)
let test_interference t ~sender ~receiver =
  let outcome = execute t ~sender ~receiver in
  outcome.interfered

(* Bounds-based execution (the paper's section 7 extension for the time
   namespace): learn per-leaf value bounds from receiver-only runs at
   different clock bases, then flag the sender-preceded trace's values
   that fall outside them. Detects interference on resources that are
   non-deterministic by nature, which the masking pipeline must skip. *)
let bounds_of t receiver =
  let base = t.env.Env.base0 in
  let reference = baseline_trace t receiver in
  let alternatives =
    List.init t.reruns (fun k ->
        run_receiver t ~base:(base + ((k + 1) * t.rerun_delta)) receiver)
  in
  Kit_trace.Bounds.learn reference alternatives

let execute_bounds t ~sender ~receiver =
  let bounds = bounds_of t receiver in
  let trace_a = run_pair t ~base:t.env.Env.base0 sender receiver in
  Kit_trace.Bounds.check bounds trace_a
