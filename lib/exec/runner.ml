(* Two-phase test case execution and non-determinism identification
   (paper, sections 4.2 and 4.3.2).

   Execution A runs the sender program in the sender container and then
   the receiver program in the receiver container; execution B reloads
   the snapshot and runs the receiver alone. Both receiver traces are
   decoded to ASTs. The receiver is additionally re-run several times
   with different clock base offsets; result nodes that vary get their
   det flag cleared, and the flags are applied to both traces before
   comparison.

   Two memo caches cut the execution count, both keyed on the receiver
   program hash and size-capped with LRU eviction (hits refresh
   recency — FIFO evicts hot receivers under the cap during large
   campaigns):

   - the non-determinism mask cache, as the paper saves masks to disk
     between campaigns;
   - the baseline cache: execution B and the mask's reference run are
     the receiver solo from the pristine snapshot at the reference
     clock base — a function of the receiver program only, so test
     cases sharing a receiver share the trace. Decoded ASTs are
     immutable, so sharing is safe. The cache is bypassed entirely
     while the fault plane has armed faults: a poisoned VM must not
     populate it, and a cached trace must not swallow a fault that a
     real execution would have consumed. (A receiver whose solo run
     crashes or hangs never completes its first execution, so it can
     never be cached.)

   Execution and cache counters live in the observability plane's
   metrics registry ("exec.executions", "exec.mask_hits",
   "exec.mask_misses", "exec.mask_evictions", "exec.baseline_hits",
   "exec.baseline_misses") as always-on counters: they are campaign
   accounting, so they keep counting even through a disabled bundle.
   Registry counters are monotone and may be shared across runner
   incarnations (the supervisor reboots runners into the same bundle),
   so each runner captures the counter values at creation and reports
   per-instance deltas. *)

module Program = Kit_abi.Program
module Interp = Kit_kernel.Interp
module Fault = Kit_kernel.Fault
module Ast = Kit_trace.Ast
module Decode = Kit_trace.Decode
module Compare = Kit_trace.Compare
module Nondet = Kit_trace.Nondet
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics

type t = {
  env : Env.t;
  obs : Obs.t;
  reruns : int;
  rerun_delta : int;
  mask_cache : (int, Ast.t) Lru.t;       (* receiver program hash -> mask *)
  baseline : bool;                       (* baseline cache enabled? *)
  baseline_cache : (int, Ast.t) Lru.t;   (* receiver hash -> solo trace at base0 *)
  c_execs : Metrics.counter;             (* single source of truth... *)
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_evictions : Metrics.counter;
  c_bhits : Metrics.counter;
  c_bmisses : Metrics.counter;
  execs0 : int;                          (* ...read as deltas from here *)
  hits0 : int;
  misses0 : int;
  evictions0 : int;
  bhits0 : int;
  bmisses0 : int;
}

let create ?(reruns = 3) ?(rerun_delta = 7_777) ?(mask_cache_cap = 4096)
    ?(baseline_cache = true) ?(baseline_cache_cap = 4096)
    ?(obs = Obs.nop) env =
  let c_execs = Metrics.counter ~always:true obs.Obs.metrics "exec.executions" in
  let c_hits = Metrics.counter ~always:true obs.Obs.metrics "exec.mask_hits" in
  let c_misses =
    Metrics.counter ~always:true obs.Obs.metrics "exec.mask_misses"
  in
  let c_evictions =
    Metrics.counter ~always:true obs.Obs.metrics "exec.mask_evictions"
  in
  let c_bhits =
    Metrics.counter ~always:true obs.Obs.metrics "exec.baseline_hits"
  in
  let c_bmisses =
    Metrics.counter ~always:true obs.Obs.metrics "exec.baseline_misses"
  in
  { env; obs; reruns; rerun_delta;
    mask_cache =
      Lru.create (max 1 mask_cache_cap)
        ~on_evict:(fun _ _ -> Metrics.inc c_evictions);
    baseline = baseline_cache;
    baseline_cache = Lru.create (max 1 baseline_cache_cap);
    c_execs; c_hits; c_misses; c_evictions; c_bhits; c_bmisses;
    execs0 = Metrics.counter_value c_execs;
    hits0 = Metrics.counter_value c_hits;
    misses0 = Metrics.counter_value c_misses;
    evictions0 = Metrics.counter_value c_evictions;
    bhits0 = Metrics.counter_value c_bhits;
    bmisses0 = Metrics.counter_value c_bmisses }

let executions t = Metrics.counter_value t.c_execs - t.execs0

let run_receiver t ~base receiver =
  Env.reset t.env ~base;
  Metrics.inc t.c_execs;
  let results = Interp.run t.env.Env.kernel ~pid:t.env.Env.receiver_pid receiver in
  Decode.decode_trace results

let run_pair t ~base sender receiver =
  Env.reset t.env ~base;
  Metrics.inc t.c_execs;
  let _ : Interp.result list =
    Interp.run t.env.Env.kernel ~pid:t.env.Env.sender_pid sender
  in
  let results = Interp.run t.env.Env.kernel ~pid:t.env.Env.receiver_pid receiver in
  Decode.decode_trace results

(* The receiver's solo trace from the pristine snapshot at the reference
   clock base — execution B, and the mask's reference run. Memoized per
   receiver program unless disabled or the fault plane is armed. *)
let baseline_trace t receiver =
  if not (t.baseline && Fault.schedule (Env.fault t.env) = []) then
    run_receiver t ~base:t.env.Env.base0 receiver
  else begin
    let key = Program.hash receiver in
    match Lru.find t.baseline_cache key with
    | Some trace ->
      Metrics.inc t.c_bhits;
      trace
    | None ->
      Metrics.inc t.c_bmisses;
      let trace = run_receiver t ~base:t.env.Env.base0 receiver in
      Lru.add t.baseline_cache key trace;
      trace
  end

(* The non-determinism mask of [receiver]: its solo trace with det flags
   cleared wherever re-executions with shifted clock bases disagree. *)
let nondet_mask t receiver =
  let key = Program.hash receiver in
  match Lru.find t.mask_cache key with
  | Some mask ->
    Metrics.inc t.c_hits;
    mask
  | None ->
    Metrics.inc t.c_misses;
    let base = t.env.Env.base0 in
    let reference = baseline_trace t receiver in
    let alternatives =
      List.init t.reruns (fun k ->
          run_receiver t ~base:(base + ((k + 1) * t.rerun_delta)) receiver)
    in
    let mask = Nondet.mark reference alternatives in
    Lru.add t.mask_cache key mask;
    mask

(* Thin reads over the registry counters — per-instance deltas. *)
let mask_cache_stats t =
  ( Metrics.counter_value t.c_hits - t.hits0,
    Metrics.counter_value t.c_misses - t.misses0,
    Lru.length t.mask_cache )

let mask_evictions t = Metrics.counter_value t.c_evictions - t.evictions0

let baseline_cache_stats t =
  ( Metrics.counter_value t.c_bhits - t.bhits0,
    Metrics.counter_value t.c_bmisses - t.bmisses0,
    Lru.length t.baseline_cache )

type outcome = {
  trace_a : Ast.t;                  (* receiver trace, sender ran first *)
  trace_b : Ast.t;                  (* receiver trace, solo *)
  raw_diffs : Compare.diff list;    (* before non-determinism masking *)
  masked_diffs : Compare.diff list; (* after masking *)
  interfered : int list;            (* receiver call indices, after masking *)
}

(* Execute one test case. *)
let execute t ~sender ~receiver =
  let base = t.env.Env.base0 in
  let trace_a = run_pair t ~base sender receiver in
  let trace_b = baseline_trace t receiver in
  let raw_diffs = Compare.diff_trees trace_a trace_b in
  if raw_diffs = [] then
    { trace_a; trace_b; raw_diffs; masked_diffs = []; interfered = [] }
  else begin
    let mask = nondet_mask t receiver in
    let masked_a = Nondet.apply_mask mask trace_a in
    let masked_b = Nondet.apply_mask mask trace_b in
    let masked_diffs = Compare.diff_trees masked_a masked_b in
    let interfered = Compare.interfered_of_diffs masked_diffs in
    { trace_a; trace_b; raw_diffs; masked_diffs; interfered }
  end

(* Failure-aware execution: a crashed or hung kernel no longer takes the
   whole campaign down; the caller (normally Exec.Supervisor) decides
   whether to retry, reboot, or quarantine. *)
type status =
  | Completed of outcome
  | Crashed of Fault.panic_info
  | Hung

let try_execute t ~sender ~receiver =
  match execute t ~sender ~receiver with
  | outcome -> Completed outcome
  | exception Fault.Kernel_panic info -> Crashed info
  | exception Fault.Fuel_exhausted -> Hung

(* Re-test with a modified sender and report the interfered receiver
   indices — the TestFuncI primitive of Algorithm 2. *)
let test_interference t ~sender ~receiver =
  let outcome = execute t ~sender ~receiver in
  outcome.interfered

(* Bounds-based execution (the paper's section 7 extension for the time
   namespace): learn per-leaf value bounds from receiver-only runs at
   different clock bases, then flag the sender-preceded trace's values
   that fall outside them. Detects interference on resources that are
   non-deterministic by nature, which the masking pipeline must skip. *)
let bounds_of t receiver =
  let base = t.env.Env.base0 in
  let reference = baseline_trace t receiver in
  let alternatives =
    List.init t.reruns (fun k ->
        run_receiver t ~base:(base + ((k + 1) * t.rerun_delta)) receiver)
  in
  Kit_trace.Bounds.learn reference alternatives

let execute_bounds t ~sender ~receiver =
  let bounds = bounds_of t receiver in
  let trace_a = run_pair t ~base:t.env.Env.base0 sender receiver in
  Kit_trace.Bounds.check bounds trace_a
