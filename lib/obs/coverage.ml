(* The coverage ledger. See coverage.mli.

   Representation: four packed bitsets (touched/written/read/attributed)
   over the universe index, plus addr→index and name→index tables. The
   universe is fixed at creation — marks for unknown addresses are
   dropped, which is what scopes the ledger to the spec-listed
   namespace-protected variables and keeps the hot marking path a
   hashtable probe plus a bit set.

   Deltas are the transport form: a (name, flag-bits) list sorted by
   name with unique names, so merging two deltas is a sorted merge with
   bitwise-or on collisions — commutative, associative and idempotent by
   construction (qcheck-tested), exactly the algebra checkpoint resume
   and cross-process absorption need for monotone coverage. *)

module Bitset = Kit_compact.Bitset

type t = {
  names : string array;               (* universe, registration order *)
  addrs : int array;
  by_addr : (int, int) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  touched : Bitset.t;
  written : Bitset.t;
  read : Bitset.t;
  attributed : Bitset.t;
}

type state = Untouched | Touched | Written | Read | Paired | Attributed

let state_name = function
  | Untouched -> "untouched"
  | Touched -> "touched"
  | Written -> "written"
  | Read -> "read"
  | Paired -> "paired"
  | Attributed -> "attributed"

let create vars =
  let n = List.length vars in
  let names = Array.make (max 1 n) "" and addrs = Array.make (max 1 n) 0 in
  List.iteri
    (fun i (name, addr) ->
      names.(i) <- name;
      addrs.(i) <- addr)
    vars;
  let names = Array.sub names 0 n and addrs = Array.sub addrs 0 n in
  let by_addr = Hashtbl.create (2 * n + 1) in
  let by_name = Hashtbl.create (2 * n + 1) in
  Array.iteri (fun i addr -> Hashtbl.replace by_addr addr i) addrs;
  Array.iteri (fun i name -> Hashtbl.replace by_name name i) names;
  { names; addrs; by_addr; by_name;
    touched = Bitset.create (max 1 n);
    written = Bitset.create (max 1 n);
    read = Bitset.create (max 1 n);
    attributed = Bitset.create (max 1 n) }

let size t = Array.length t.names

(* Flag bits, the delta encoding. *)
let f_touched = 1
let f_written = 2
let f_read = 4
let f_attributed = 8
let f_mask = 15

(* Higher rungs imply the lower ones, so every mark closes downward:
   the state machine can only move forward and merge order cannot
   matter. *)
let set_flags t i flags =
  if flags land f_touched <> 0 then Bitset.add t.touched i;
  if flags land f_written <> 0 then Bitset.add t.written i;
  if flags land f_read <> 0 then Bitset.add t.read i;
  if flags land f_attributed <> 0 then Bitset.add t.attributed i

let mark t ~addr flags =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> ()                         (* outside the protected universe *)
  | Some i -> set_flags t i flags

let mark_touched t ~addr = mark t ~addr f_touched
let mark_written t ~addr = mark t ~addr (f_written lor f_touched)
let mark_read t ~addr = mark t ~addr (f_read lor f_touched)

let mark_attributed t ~addr =
  (* A report's data flow is an overlapping (write, read) pair by
     construction, so attribution implies every rung below it. *)
  mark t ~addr f_mask

let state t i =
  if Bitset.mem t.attributed i then Attributed
  else if Bitset.mem t.written i && Bitset.mem t.read i then Paired
  else if Bitset.mem t.read i then Read
  else if Bitset.mem t.written i then Written
  else if Bitset.mem t.touched i then Touched
  else Untouched

let var_name t i = t.names.(i)

type summary = {
  sum_vars : int;
  sum_touched : int;
  sum_written : int;
  sum_read : int;
  sum_paired : int;
  sum_attributed : int;
  sum_gaps : int;
}

let summary t =
  let paired = Bitset.inter_count t.written t.read in
  { sum_vars = size t;
    sum_touched = Bitset.cardinal t.touched;
    sum_written = Bitset.cardinal t.written;
    sum_read = Bitset.cardinal t.read;
    sum_paired = paired;
    sum_attributed = Bitset.cardinal t.attributed;
    sum_gaps = size t - paired }

let sub_summary cur prev =
  { sum_vars = cur.sum_vars;
    sum_touched = cur.sum_touched - prev.sum_touched;
    sum_written = cur.sum_written - prev.sum_written;
    sum_read = cur.sum_read - prev.sum_read;
    sum_paired = cur.sum_paired - prev.sum_paired;
    sum_attributed = cur.sum_attributed - prev.sum_attributed;
    sum_gaps = cur.sum_gaps - prev.sum_gaps }

let gaps t =
  let out = ref [] in
  for i = size t - 1 downto 0 do
    if not (Bitset.mem t.written i && Bitset.mem t.read i) then
      out := t.names.(i) :: !out
  done;
  !out

(* -- deltas --------------------------------------------------------------- *)

type delta = (string * int) list      (* sorted by name, unique, flags>0 *)

let empty_delta = []

let flags_of t i =
  (if Bitset.mem t.touched i then f_touched else 0)
  lor (if Bitset.mem t.written i then f_written else 0)
  lor (if Bitset.mem t.read i then f_read else 0)
  lor (if Bitset.mem t.attributed i then f_attributed else 0)

let delta t =
  let pairs = ref [] in
  for i = size t - 1 downto 0 do
    let flags = flags_of t i in
    if flags <> 0 then pairs := (t.names.(i), flags) :: !pairs
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !pairs

let rec merge a b =
  match (a, b) with
  | [], d | d, [] -> d
  | (na, fa) :: ra, (nb, fb) :: rb ->
    let c = String.compare na nb in
    if c < 0 then (na, fa) :: merge ra b
    else if c > 0 then (nb, fb) :: merge a rb
    else (na, fa lor fb) :: merge ra rb

let equal_delta (a : delta) b = a = b

let absorb t (d : delta) =
  List.iter
    (fun (name, flags) ->
      match Hashtbl.find_opt t.by_name name with
      | None -> ()                     (* the producer ran a wider spec *)
      | Some i -> set_flags t i flags)
    d

let delta_of_list pairs =
  List.filter_map
    (fun (name, flags) ->
      let flags = flags land f_mask in
      if flags = 0 then None else Some (name, flags))
    pairs
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.fold_left
       (fun acc (name, flags) ->
         match acc with
         | (n, f) :: rest when n = name -> (n, f lor flags) :: rest
         | _ -> (name, flags) :: acc)
       []
  |> List.rev

let delta_to_list (d : delta) = d

(* -- rendering ------------------------------------------------------------ *)

let jsonl_summary t =
  let s = summary t in
  Jsonl.Obj
    [ ("k", Jsonl.Str "covsum"); ("vars", Jsonl.Int s.sum_vars);
      ("touched", Jsonl.Int s.sum_touched);
      ("written", Jsonl.Int s.sum_written); ("read", Jsonl.Int s.sum_read);
      ("paired", Jsonl.Int s.sum_paired);
      ("attributed", Jsonl.Int s.sum_attributed);
      ("gaps", Jsonl.Int s.sum_gaps) ]

let jsonl_lines t =
  let var_line i =
    Jsonl.to_string
      (Jsonl.Obj
         [ ("k", Jsonl.Str "cov"); ("var", Jsonl.Str t.names.(i));
           ("addr", Jsonl.Int t.addrs.(i));
           ("state", Jsonl.Str (state_name (state t i))) ])
  in
  Jsonl.to_string (jsonl_summary t)
  :: List.init (size t) var_line

let render t =
  let buf = Buffer.create 1024 in
  let s = summary t in
  Printf.bprintf buf
    "coverage: %d protected vars — %d touched, %d written, %d read, \
     %d paired, %d attributed to reports\n"
    s.sum_vars s.sum_touched s.sum_written s.sum_read s.sum_paired
    s.sum_attributed;
  Printf.bprintf buf "-- per-variable states --\n";
  for i = 0 to size t - 1 do
    Printf.bprintf buf "%-28s %s\n" t.names.(i) (state_name (state t i))
  done;
  (match gaps t with
  | [] -> Printf.bprintf buf "\nno coverage gaps: every var has a pair\n"
  | gs ->
    Printf.bprintf buf
      "\n%d gap(s) — no overlapping (write, read) pair observed:\n"
      (List.length gs);
    List.iter (fun name -> Printf.bprintf buf "  gap: %s\n" name) gs);
  Buffer.contents buf
