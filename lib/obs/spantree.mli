(** Span-tree reconstruction from the flat {!Tracer} event ring.

    Events are split into lanes — one per distinct value of the first
    matching lane attribute ([domain] / [worker] by default), so
    per-domain rings folded together by {!Tracer.merge} do not corrupt
    each other's Begin/End pairing — then each lane's nesting is rebuilt
    with a stack machine.

    The builder never fails on truncated rings: an [End] whose [Begin]
    was dropped synthesizes a truncated root that adopts everything
    reconstructed so far in its lane, and a [Begin] with no [End] is
    closed at the lane's last event and flagged. Both are counted. *)

type node = {
  n_name : string;
  n_attrs : (string * string) list;
  n_begin : int;                    (** deterministic begin timestamp *)
  n_end : int;
  n_wbegin : float;                 (** wall begin (0.0 when absent) *)
  n_wend : float;
  n_children : node list;           (** in event order *)
  n_instant : bool;
  n_truncated : bool;               (** Begin or End lost to the ring *)
}

type t = {
  lanes : (string * node list) list;  (** lane key -> roots, first-seen order *)
  spans : int;                        (** span nodes (instants excluded) *)
  instants : int;
  truncated_begins : int;             (** Ends whose Begin was dropped *)
  unfinished : int;                   (** Begins never ended *)
  dropped : int;                      (** ring drop count from the export *)
}

val default_lane_attrs : string list
(** [["domain"; "worker"]] *)

val main_lane : string
(** Lane key for events carrying none of the lane attrs: ["main"]. *)

val build : ?lane_attrs:string list -> ?dropped:int -> Tracer.event list -> t
(** Reconstruct the tree from events in ring order. [dropped] is carried
    through to {!t.dropped} for reporting. *)

val roots : t -> node list
(** All lanes' roots concatenated in lane order. *)

val wall_duration : node -> float
(** Wall seconds, clamped to be non-negative; 0 for instants and for
    deterministic exports that carry no wall times. *)

val det_duration : node -> int
(** Deterministic duration [n_end - n_begin], clamped non-negative. *)

val default_ignore_attrs : string list
(** [["domain"; "worker"; "domains"]] — placement attrs excluded from
    {!fingerprint} by default. *)

val fingerprint : ?ignore:string list -> t -> string
(** A hex digest of the causal structure: span names, non-ignored attrs
    and nesting, with timestamps, sequence numbers and lane placement
    excluded. Traces of the same campaign sharded over different domain
    counts digest identically. *)

val render : ?max_depth:int -> t -> string
(** Indented text rendering of all lanes; children beyond [max_depth]
    are elided with a count. *)

val to_chrome : t -> Jsonl.t
(** Chrome trace-event JSON (the ["traceEvents"] object form): complete
    ["X"] events for spans, ["i"] instants, one [tid] per lane with a
    [thread_name] metadata record. Loadable in Perfetto and
    chrome://tracing. Timestamps are microseconds — wall-clock rebased
    to the trace start when available, deterministic otherwise. *)
