(* A minimal JSON value type, printer and parser — just enough for the
   telemetry JSONL format, with deterministic rendering (field order is
   the order given; floats print via %.12g so equal values render
   identically). No external dependency: the toolchain pins what the
   container bakes in. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest of the two printf forms that round-trips exactly: %.12g is
   readable but loses sub-ms precision on epoch-scale wall timestamps,
   where %.17g is exact. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* -- parsing ------------------------------------------------------------- *)

exception Fail of string

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_string buf ("\\u" ^ hex)
          | None -> fail "bad \\u escape");
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && number_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some v -> Float v
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some n -> Int n
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* -- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_float = function Float v -> Some v | Int n -> Some (float_of_int n) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
