(* Human-readable rendering of a telemetry export: aligned tables for
   counters, gauges and histograms, plus a span summary built by pairing
   begin/end events (LIFO per name, as emitted by Tracer.with_span). *)

let bprintf = Printf.bprintf

type span_stat = {
  mutable ss_count : int;
  mutable ss_wall : float;            (* summed wall durations, seconds *)
}

(* Aggregate spans by name. Unmatched Begin events (span still open when
   the export was taken, or its Begin dropped by the ring) count without
   a duration. *)
let span_stats events =
  let stats : (string, span_stat) Hashtbl.t = Hashtbl.create 16 in
  let stat name =
    match Hashtbl.find_opt stats name with
    | Some s -> s
    | None ->
      let s = { ss_count = 0; ss_wall = 0.0 } in
      Hashtbl.replace stats name s;
      s
  in
  let open_spans : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Tracer.event) ->
      match e.Tracer.kind with
      | Tracer.Instant -> (stat e.Tracer.name).ss_count <- (stat e.Tracer.name).ss_count + 1
      | Tracer.Begin ->
        let stack =
          match Hashtbl.find_opt open_spans e.Tracer.name with
          | Some st -> st
          | None ->
            let st = ref [] in
            Hashtbl.replace open_spans e.Tracer.name st;
            st
        in
        stack := e.Tracer.wall :: !stack;
        (stat e.Tracer.name).ss_count <- (stat e.Tracer.name).ss_count + 1
      | Tracer.End -> (
        match Hashtbl.find_opt open_spans e.Tracer.name with
        | Some ({ contents = start :: rest } as stack) ->
          stack := rest;
          let s = stat e.Tracer.name in
          s.ss_wall <- s.ss_wall +. Float.max 0.0 (e.Tracer.wall -. start)
        | Some { contents = [] } | None -> ()))
    events;
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) stats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_mean (h : Metrics.value) =
  match h with
  | Metrics.Hist_v { sum; n; _ } when n > 0 -> sum /. float_of_int n
  | _ -> 0.0

let section buf title = bprintf buf "-- %s --\n" title

(* The export's own shape, before its contents: how many instruments
   the registry carried, how many trace events survived the ring and
   how many it dropped — the numbers that say whether the telemetry
   itself is trustworthy. *)
let telemetry_header buf (p : Export.parsed) =
  section buf "telemetry";
  bprintf buf "%-36s %12d\n" "metrics registered"
    (List.length p.Export.p_snapshot);
  bprintf buf "%-36s %12d\n" "trace events" (List.length p.Export.p_events);
  bprintf buf "%-36s %12d\n" "trace ring dropped" p.Export.p_dropped;
  Buffer.add_char buf '\n'

let stats (p : Export.parsed) =
  let buf = Buffer.create 1024 in
  telemetry_header buf p;
  if p.Export.p_meta <> [] then begin
    section buf "meta";
    List.iter
      (fun (k, v) -> bprintf buf "%-36s %s\n" k (Jsonl.to_string v))
      p.Export.p_meta;
    Buffer.add_char buf '\n'
  end;
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, v) ->
        match (v : Metrics.value) with
        | Metrics.Counter_v n -> ((name, n) :: cs, gs, hs)
        | Metrics.Gauge_v g -> (cs, (name, g) :: gs, hs)
        | Metrics.Hist_v _ -> (cs, gs, (name, v) :: hs))
      ([], [], []) p.Export.p_snapshot
  in
  let counters = List.rev counters
  and gauges = List.rev gauges
  and hists = List.rev hists in
  if counters <> [] then begin
    section buf "counters";
    List.iter (fun (name, n) -> bprintf buf "%-36s %12d\n" name n) counters;
    Buffer.add_char buf '\n'
  end;
  if gauges <> [] then begin
    section buf "gauges";
    List.iter (fun (name, g) -> bprintf buf "%-36s %12.6g\n" name g) gauges;
    Buffer.add_char buf '\n'
  end;
  if hists <> [] then begin
    section buf "histograms";
    bprintf buf "%-36s %8s %12s %12s\n" "" "count" "sum" "mean";
    List.iter
      (fun (name, v) ->
        match (v : Metrics.value) with
        | Metrics.Hist_v { n; sum; _ } ->
          bprintf buf "%-36s %8d %12.6g %12.6g\n" name n sum (hist_mean v)
        | Metrics.Counter_v _ | Metrics.Gauge_v _ -> ())
      hists;
    Buffer.add_char buf '\n'
  end;
  (match span_stats p.Export.p_events with
  | [] -> ()
  | spans ->
    section buf "spans";
    bprintf buf "%-36s %8s %12s\n" "" "count" "wall (s)";
    List.iter
      (fun (name, s) ->
        if s.ss_wall > 0.0 then
          bprintf buf "%-36s %8d %12.3f\n" name s.ss_count s.ss_wall
        else bprintf buf "%-36s %8d %12s\n" name s.ss_count "-")
      spans;
    Buffer.add_char buf '\n');
  if p.Export.p_dropped > 0 then
    bprintf buf "(%d trace events dropped by the ring buffer)\n"
      p.Export.p_dropped;
  Buffer.contents buf

let snapshot_table snapshot =
  stats
    { Export.p_meta = []; p_snapshot = snapshot; p_events = []; p_dropped = 0 }

(* -- funnel attrition ---------------------------------------------------- *)

let counter_value snapshot name =
  match List.assoc_opt name snapshot with
  | Some (Metrics.Counter_v n) -> Some n
  | Some (Metrics.Gauge_v _ | Metrics.Hist_v _) | None -> None

(* The attrition funnel, rendered from the always-on "campaign.attr_*"
   counters of an exported snapshot: every generated case is charged to
   exactly one terminal stage, so the stages sum back to the top row.
   The "campaign.sched_*" stream rides along when the snapshot carries
   it (schedule search actually ran). *)
let funnel (p : Export.parsed) =
  let snapshot = p.Export.p_snapshot in
  let c name = counter_value snapshot ("campaign." ^ name) in
  match c "attr_generated" with
  | None ->
    "no funnel accounting in this export \
     (no campaign.attr_* counters; re-export from a finished campaign)\n"
  | Some generated ->
    let v name = Option.value (c name) ~default:0 in
    let buf = Buffer.create 512 in
    section buf "funnel";
    let row indent name n =
      bprintf buf "%-36s %12d\n" (String.make indent ' ' ^ name) n
    in
    row 0 "generated data-flow cases" generated;
    row 2 "absorbed by clustering" (v "attr_absorbed");
    row 0 "executed representatives"
      (generated - v "attr_absorbed");
    row 2 "quarantined: kernel panic" (v "attr_quar_panic");
    row 2 "quarantined: hung forever" (v "attr_quar_hung");
    row 2 "quarantined: worker lost" (v "attr_quar_lost");
    row 2 "no divergence" (v "attr_no_divergence");
    row 2 "filtered: non-determinism" (v "attr_filtered_nondet");
    row 2 "filtered: resource spec" (v "attr_filtered_resource");
    row 0 "reported" (v "attr_reported");
    let terminal =
      v "attr_absorbed" + v "attr_quar_panic" + v "attr_quar_hung"
      + v "attr_quar_lost" + v "attr_no_divergence"
      + v "attr_filtered_nondet" + v "attr_filtered_resource"
      + v "attr_reported"
    in
    bprintf buf "%-36s %12s\n" "balance"
      (if terminal = generated then "ok"
       else Printf.sprintf "off by %d" (generated - terminal));
    (match c "sched_candidates" with
    | None -> ()
    | Some candidates ->
      Buffer.add_char buf '\n';
      section buf "schedule search";
      row 0 "completed cases searched" candidates;
      row 2 "equivalence classes" (v "sched_classes");
      row 2 "representatives executed" (v "sched_executed");
      row 2 "seeds pruned" (v "sched_pruned");
      row 2 "lost to crashes" (v "sched_skipped");
      row 0 "concurrent reports" (v "concurrent_reports"));
    (match c "cov_vars" with
    | None -> ()
    | Some vars ->
      Buffer.add_char buf '\n';
      section buf "coverage";
      row 0 "protected shared variables" vars;
      row 2 "touched" (v "cov_touched");
      row 2 "written" (v "cov_written");
      row 2 "read" (v "cov_read");
      row 2 "write/read pair observed" (v "cov_paired");
      row 2 "attributed to a report" (v "cov_attributed");
      row 0 "coverage gaps (no pair)" (v "cov_gaps"));
    Buffer.contents buf
