(* Aggregate profile over a reconstructed span tree: per-span-name
   counts, total (inclusive) and self (exclusive) time — both wall and
   deterministic — a top-k hot-path table, critical-path extraction, and
   a folded-stacks flamegraph rendering.

   Self time is inclusive time minus the children's inclusive time,
   clamped at zero: with virtual-clock timestamps a child recorded on a
   different clock basis can nominally outspan its parent, and a profile
   must never report negative cost. *)

type row = {
  r_name : string;
  r_count : int;
  r_wall_total : float;             (* inclusive wall seconds *)
  r_wall_self : float;              (* exclusive wall seconds *)
  r_det_total : int;                (* inclusive deterministic ticks *)
  r_det_self : int;                 (* exclusive deterministic ticks *)
}

type t = {
  rows : row list;                  (* sorted: wall total desc, then name *)
  total_spans : int;
  total_wall : float;               (* sum of root inclusive wall time *)
  total_det : int;
}

let of_tree (tree : Spantree.t) =
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 32 in
  let add name ~wt ~ws ~dt ~ds =
    let r =
      match Hashtbl.find_opt tbl name with
      | Some r -> r
      | None ->
        { r_name = name; r_count = 0; r_wall_total = 0.0; r_wall_self = 0.0;
          r_det_total = 0; r_det_self = 0 }
    in
    Hashtbl.replace tbl name
      { r with
        r_count = r.r_count + 1;
        r_wall_total = r.r_wall_total +. wt;
        r_wall_self = r.r_wall_self +. ws;
        r_det_total = r.r_det_total + dt;
        r_det_self = r.r_det_self + ds }
  in
  let spans = ref 0 in
  let rec walk (n : Spantree.node) =
    if not n.Spantree.n_instant then begin
      incr spans;
      let wt = Spantree.wall_duration n in
      let dt = Spantree.det_duration n in
      let cw, cd =
        List.fold_left
          (fun (cw, cd) c ->
            if c.Spantree.n_instant then (cw, cd)
            else
              (cw +. Spantree.wall_duration c, cd + Spantree.det_duration c))
          (0.0, 0) n.Spantree.n_children
      in
      add n.Spantree.n_name ~wt ~ws:(Float.max 0.0 (wt -. cw)) ~dt
        ~ds:(max 0 (dt - cd))
    end;
    List.iter walk n.Spantree.n_children
  in
  let total_wall, total_det =
    List.fold_left
      (fun (tw, td) n ->
        walk n;
        if n.Spantree.n_instant then (tw, td)
        else (tw +. Spantree.wall_duration n, td + Spantree.det_duration n))
      (0.0, 0)
      (Spantree.roots tree)
  in
  let rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
    |> List.sort (fun a b ->
           match compare b.r_wall_total a.r_wall_total with
           | 0 -> (
             match compare b.r_det_total a.r_det_total with
             | 0 -> compare a.r_name b.r_name
             | c -> c)
           | c -> c)
  in
  { rows; total_spans = !spans; total_wall; total_det }

let top ?(k = 10) t = List.filteri (fun i _ -> i < k) t.rows

let find t name = List.find_opt (fun r -> String.equal r.r_name name) t.rows

(* The digest counterpart of Spantree.fingerprint: per-name span counts
   only — times are placement- and clock-dependent, counts are not. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun r -> Printf.bprintf buf "%s=%d;" r.r_name r.r_count)
    (List.sort (fun a b -> compare a.r_name b.r_name) t.rows);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* -- critical path --------------------------------------------------------

   The chain of heaviest spans: start from the heaviest root, descend
   into the heaviest child until a leaf. Weight is inclusive wall time
   when the trace carries wall times, inclusive deterministic time
   otherwise — a deterministic export still yields a path. *)

let node_weight (n : Spantree.node) =
  let w = Spantree.wall_duration n in
  if w > 0.0 then w else float_of_int (Spantree.det_duration n)

let critical_path (tree : Spantree.t) =
  let heaviest = function
    | [] -> None
    | ns ->
      let spans = List.filter (fun n -> not n.Spantree.n_instant) ns in
      (match spans with
       | [] -> None
       | ns ->
         Some
           (List.fold_left
              (fun best n ->
                if node_weight n > node_weight best then n else best)
              (List.hd ns) (List.tl ns)))
  in
  let rec descend acc n =
    match heaviest n.Spantree.n_children with
    | Some c -> descend (c :: acc) c
    | None -> List.rev acc
  in
  match heaviest (Spantree.roots tree) with
  | None -> []
  | Some root -> descend [ root ] root

(* -- folded stacks --------------------------------------------------------

   One line per stack, "root;child;leaf weight", weight = self time.
   Wall microseconds when available, deterministic ticks otherwise —
   flamegraph.pl and speedscope both take the format. *)

let folded (tree : Spantree.t) =
  let has_wall =
    List.exists (fun n -> Spantree.wall_duration n > 0.0) (Spantree.roots tree)
  in
  let lines = ref [] in
  let rec walk stack (n : Spantree.node) =
    if not n.Spantree.n_instant then begin
      let stack = n.Spantree.n_name :: stack in
      let cw, cd =
        List.fold_left
          (fun (cw, cd) c ->
            if c.Spantree.n_instant then (cw, cd)
            else
              (cw +. Spantree.wall_duration c, cd + Spantree.det_duration c))
          (0.0, 0) n.Spantree.n_children
      in
      let weight =
        if has_wall then
          int_of_float
            (Float.max 0.0 (Spantree.wall_duration n -. cw) *. 1e6)
        else max 0 (Spantree.det_duration n - cd)
      in
      if weight > 0 || n.Spantree.n_children = [] then
        lines :=
          (String.concat ";" (List.rev stack) ^ " " ^ string_of_int weight)
          :: !lines;
      List.iter (walk stack) n.Spantree.n_children
    end
    else List.iter (walk stack) n.Spantree.n_children
  in
  List.iter (walk []) (Spantree.roots tree);
  List.rev !lines

(* -- rendering ------------------------------------------------------------ *)

let render_table ?k t =
  let rows = match k with Some k -> top ~k t | None -> t.rows in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "%-32s %8s %12s %12s %10s %10s\n" "span" "count"
    "wall total" "wall self" "det total" "det self";
  List.iter
    (fun r ->
      Printf.bprintf buf "%-32s %8d %11.6fs %11.6fs %10d %10d\n" r.r_name
        r.r_count r.r_wall_total r.r_wall_self r.r_det_total r.r_det_self)
    rows;
  Printf.bprintf buf "%d spans, %.6fs wall, %d det ticks at the roots\n"
    t.total_spans t.total_wall t.total_det;
  Buffer.contents buf

let render_critical_path tree =
  match critical_path tree with
  | [] -> "critical path: (empty trace)\n"
  | path ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "critical path:\n";
    List.iteri
      (fun i (n : Spantree.node) ->
        Printf.bprintf buf "  %s%s" (String.make (2 * i) ' ')
          n.Spantree.n_name;
        let w = Spantree.wall_duration n in
        if w > 0.0 then Printf.bprintf buf "  %.6fs" w;
        Printf.bprintf buf "  dt=%d" (Spantree.det_duration n);
        List.iter
          (fun (key, v) -> Printf.bprintf buf " %s=%s" key v)
          n.Spantree.n_attrs;
        Buffer.add_char buf '\n')
      path;
    Buffer.contents buf
