(** A minimal JSON value type with a deterministic printer and a parser
    for the telemetry JSONL subset (no external dependency). Rendering
    preserves field order and prints floats via [%.12g], so equal values
    render byte-identically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val parse : string -> (t, string) result

(** {2 Accessors} — shallow, [None] on kind mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** Also accepts [Int] (JSON numbers without a fraction). *)

val to_str : t -> string option
val to_list : t -> t list option
