(* Telemetry export: one JSON object per line (JSONL), self-describing
   via a "k" kind tag, plus the inverse parser feeding `kit stats` and
   the golden tests.

   Deterministic by default: volatile (wall-clock-derived) metrics and
   the per-event wall timestamps are only emitted with [~wall:true], so
   the export of a fixed-seed campaign is byte-stable across runs. *)

let version = 1

(* -- emission ------------------------------------------------------------ *)

let meta_line extra =
  Jsonl.to_string
    (Jsonl.Obj
       (("k", Jsonl.Str "meta") :: ("version", Jsonl.Int version) :: extra))

let metric_line (name, value) =
  let fields =
    match (value : Metrics.value) with
    | Metrics.Counter_v n ->
      [ ("k", Jsonl.Str "counter"); ("name", Jsonl.Str name);
        ("value", Jsonl.Int n) ]
    | Metrics.Gauge_v v ->
      [ ("k", Jsonl.Str "gauge"); ("name", Jsonl.Str name);
        ("value", Jsonl.Float v) ]
    | Metrics.Hist_v h ->
      [ ("k", Jsonl.Str "hist"); ("name", Jsonl.Str name);
        ("le", Jsonl.List (List.map (fun v -> Jsonl.Float v) h.le));
        ("counts", Jsonl.List (List.map (fun n -> Jsonl.Int n) h.counts));
        ("sum", Jsonl.Float h.sum); ("count", Jsonl.Int h.n) ]
  in
  Jsonl.to_string (Jsonl.Obj fields)

let event_line ~wall (e : Tracer.event) =
  let base =
    [ ("k", Jsonl.Str "event"); ("seq", Jsonl.Int e.Tracer.seq);
      ("time", Jsonl.Int e.Tracer.time);
      ("ev", Jsonl.Str (Tracer.kind_to_string e.Tracer.kind));
      ("name", Jsonl.Str e.Tracer.name) ]
  in
  let attrs =
    if e.Tracer.attrs = [] then []
    else
      [ ("attrs",
         Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Str v)) e.Tracer.attrs)) ]
  in
  let wall_f = if wall then [ ("wall", Jsonl.Float e.Tracer.wall) ] else [] in
  Jsonl.to_string (Jsonl.Obj (base @ attrs @ wall_f))

let dropped_line n =
  Jsonl.to_string
    (Jsonl.Obj [ ("k", Jsonl.Str "dropped"); ("events", Jsonl.Int n) ])

let lines ?(wall = false) ?(meta = []) ?(events = []) ?(dropped = 0) snapshot =
  meta_line meta
  :: List.map metric_line snapshot
  @ List.map (event_line ~wall) events
  @ (if dropped > 0 then [ dropped_line dropped ] else [])

let write_file path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines)

(* -- parsing ------------------------------------------------------------- *)

type parsed = {
  p_meta : (string * Jsonl.t) list;
  p_snapshot : Metrics.snapshot;
  p_events : Tracer.event list;
  p_dropped : int;
}

let req what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let ( let* ) r f = Result.bind r f

let parse_metric kind json =
  let* name = req "name" Jsonl.(Option.bind (member "name" json) to_str) in
  match kind with
  | "counter" ->
    let* v = req "value" Jsonl.(Option.bind (member "value" json) to_int) in
    Ok (name, Metrics.Counter_v v)
  | "gauge" ->
    let* v = req "value" Jsonl.(Option.bind (member "value" json) to_float) in
    Ok (name, Metrics.Gauge_v v)
  | _ ->
    let* le = req "le" Jsonl.(Option.bind (member "le" json) to_list) in
    let* counts =
      req "counts" Jsonl.(Option.bind (member "counts" json) to_list)
    in
    let* sum = req "sum" Jsonl.(Option.bind (member "sum" json) to_float) in
    let* n = req "count" Jsonl.(Option.bind (member "count" json) to_int) in
    let floats l = List.filter_map Jsonl.to_float l in
    let ints l = List.filter_map Jsonl.to_int l in
    Ok (name, Metrics.Hist_v { le = floats le; counts = ints counts; sum; n })

let parse_event json =
  let* seq = req "seq" Jsonl.(Option.bind (member "seq" json) to_int) in
  let* time = req "time" Jsonl.(Option.bind (member "time" json) to_int) in
  let* ev = req "ev" Jsonl.(Option.bind (member "ev" json) to_str) in
  let* kind = req "event kind" (Tracer.kind_of_string ev) in
  let* name = req "name" Jsonl.(Option.bind (member "name" json) to_str) in
  let attrs =
    match Jsonl.member "attrs" json with
    | Some (Jsonl.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonl.to_str v))
        fields
    | _ -> []
  in
  let wall =
    Option.value ~default:0.0
      Jsonl.(Option.bind (member "wall" json) to_float)
  in
  Ok { Tracer.seq; time; kind; name; attrs; wall }

(* One parsed export line. The streaming surface: `fold_file` hands
   these to a fold one at a time, so `kit trace` can walk an export far
   larger than memory-comfortable without materialising the event
   list. *)
type line =
  | Meta of (string * Jsonl.t) list
  | Metric of string * Metrics.value
  | Event of Tracer.event
  | Dropped of int

let parse_line ~line_no raw =
  if String.trim raw = "" then Ok None
  else
    let* json =
      Result.map_error
        (fun e -> Printf.sprintf "line %d: %s" line_no e)
        (Jsonl.parse raw)
    in
    let* kind =
      req
        (Printf.sprintf "line %d: \"k\" tag" line_no)
        Jsonl.(Option.bind (member "k" json) to_str)
    in
    match kind with
    | "meta" ->
      let meta =
        match json with
        | Jsonl.Obj fields ->
          List.filter (fun (k, _) -> k <> "k" && k <> "version") fields
        | _ -> []
      in
      Ok (Some (Meta meta))
    | "counter" | "gauge" | "hist" ->
      let* name, value = parse_metric kind json in
      Ok (Some (Metric (name, value)))
    | "event" ->
      let* e = parse_event json in
      Ok (Some (Event e))
    | "dropped" ->
      let n =
        Option.value ~default:0
          Jsonl.(Option.bind (member "events" json) to_int)
      in
      Ok (Some (Dropped n))
    | other -> Error (Printf.sprintf "line %d: unknown kind %S" line_no other)

let fold_lines lines ~init ~f =
  let line_no = ref 0 in
  let rec go acc = function
    | [] -> Ok acc
    | raw :: rest ->
      incr line_no;
      let* parsed = parse_line ~line_no:!line_no raw in
      let acc = match parsed with Some l -> f acc l | None -> acc in
      go acc rest
  in
  go init lines

let fold_file path ~init ~f =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let line_no = ref 0 in
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> Ok acc
          | raw ->
            incr line_no;
            let* parsed = parse_line ~line_no:!line_no raw in
            go (match parsed with Some l -> f acc l | None -> acc)
        in
        go init)

let collect acc = function
  | Meta meta -> { acc with p_meta = acc.p_meta @ meta }
  | Metric (name, value) ->
    { acc with p_snapshot = (name, value) :: acc.p_snapshot }
  | Event e -> { acc with p_events = e :: acc.p_events }
  | Dropped n -> { acc with p_dropped = n }

let empty_parsed =
  { p_meta = []; p_snapshot = []; p_events = []; p_dropped = 0 }

let finish_parsed acc =
  { acc with
    p_snapshot = List.rev acc.p_snapshot;
    p_events = List.rev acc.p_events }

let parse lines =
  Result.map finish_parsed (fold_lines lines ~init:empty_parsed ~f:collect)

let read_file path =
  Result.map finish_parsed (fold_file path ~init:empty_parsed ~f:collect)
