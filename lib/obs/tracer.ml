(* The span tracer: nested begin/end phase spans and instant events in a
   ring buffer capped at a configurable size.

   Every event carries two timestamps: a deterministic one ([time],
   defaulting to the event sequence number, or the model kernel's
   virtual clock when the caller passes one) and a wall-clock one
   ([wall]). Deterministic exports use only the former, so a trace for a
   fixed seed is byte-stable across runs; wall times serve human
   timings. When the ring is full the oldest events are dropped and
   counted — a month-long campaign cannot grow the trace without
   bound. *)

type kind = Begin | End | Instant

type event = {
  seq : int;                        (* monotone event number *)
  time : int;                       (* deterministic timestamp *)
  kind : kind;
  name : string;
  attrs : (string * string) list;
  wall : float;                     (* Unix.gettimeofday at record time *)
}

type span = { sp_live : bool; sp_name : string; sp_attrs : (string * string) list }

type t = {
  mutable on : bool;
  cap : int;
  mutable buf : event option array;
  mutable next : int;               (* events ever recorded; seq source *)
}

let create ?(cap = 4096) ?(enabled = true) () =
  { on = enabled; cap = max 1 cap; buf = Array.make (max 1 cap) None; next = 0 }

(* A shared inert tracer (and dead span): recording through it is a
   single bool check, no allocation. *)
let nop = create ~cap:1 ~enabled:false ()
let dead_span = { sp_live = false; sp_name = ""; sp_attrs = [] }

let enabled t = t.on
let set_enabled t b = t.on <- b

let record t kind ?time ?wall ~attrs name =
  let time = match time with Some v -> v | None -> t.next in
  let wall = match wall with Some w -> w | None -> Unix.gettimeofday () in
  let e = { seq = t.next; time; kind; name; attrs; wall } in
  t.buf.(t.next mod t.cap) <- Some e;
  t.next <- t.next + 1

let instant t ?(attrs = []) ?time ?wall name =
  if t.on then record t Instant ?time ?wall ~attrs name

let span t ?(attrs = []) ?time ?wall name =
  if not t.on then dead_span
  else begin
    record t Begin ?time ?wall ~attrs name;
    { sp_live = true; sp_name = name; sp_attrs = attrs }
  end

let finish t ?time ?wall sp =
  if sp.sp_live && t.on then
    record t End ?time ?wall ~attrs:sp.sp_attrs sp.sp_name

let with_span t ?attrs ?time name f =
  let sp = span t ?attrs ?time name in
  Fun.protect ~finally:(fun () -> finish t ?time sp) f

let recorded t = t.next
let dropped t = max 0 (t.next - t.cap)

let events t =
  let first = dropped t in
  List.init (t.next - first) (fun i ->
      match t.buf.((first + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.next <- 0

(* Interleave per-domain event rings into one deterministic stream: a
   k-way merge that repeatedly takes the ring whose HEAD event has the
   smallest (time, ring index). Comparing heads only — never sorting
   globally — preserves each ring's internal order unconditionally,
   which matters because deterministic times are not monotone within a
   ring (virtual-clock spans rewind when an environment restores a
   snapshot); a global sort would tear such a ring's Begin/End nesting
   apart. *)
let interleave rings =
  let rings = Array.of_list rings in
  let pick () =
    let best = ref None in
    Array.iteri
      (fun i r ->
        match r with
        | [] -> ()
        | e :: _ -> (
          match !best with
          | Some (j, (h : event))
            when not (e.time < h.time || (e.time = h.time && i < j)) ->
            ()
          | _ -> best := Some (i, e)))
      rings;
    !best
  in
  let rec go acc =
    match pick () with
    | None -> List.rev acc
    | Some (i, e) ->
      rings.(i) <- List.tl rings.(i);
      go (e :: acc)
  in
  go []

(* The tracer counterpart of Metrics.absorb: fold per-domain rings into
   [t], re-recording each event with a fresh sequence number but its
   original deterministic and wall timestamps. Recording through a
   disabled tracer is still a no-op. *)
let merge t rings =
  if t.on then
    List.iter
      (fun e -> record t e.kind ~time:e.time ~wall:e.wall ~attrs:e.attrs e.name)
      (interleave rings)

let kind_to_string = function
  | Begin -> "begin"
  | End -> "end"
  | Instant -> "instant"

let kind_of_string = function
  | "begin" -> Some Begin
  | "end" -> Some End
  | "instant" -> Some Instant
  | _ -> None

let pp_event ppf e =
  Fmt.pf ppf "#%d t=%d %s %s%a" e.seq e.time (kind_to_string e.kind) e.name
    (Fmt.list ~sep:Fmt.nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%s" k v))
    e.attrs
