(** The campaign-scoped coverage ledger: one compact state machine per
    spec-listed namespace-protected shared variable,

    {v untouched → touched → written → read → paired → attributed v}

    where [paired] means an overlapping (write, read) pair was observed
    on the variable and [attributed] means an interference report's data
    flow landed on it. Backed by packed bitsets over the variable
    universe, so marking is O(1) and merging is O(words).

    Ledgers are delta-mergeable across domains, pool workers and serve
    tenants the same way {!Metrics.absorb} merges registries: {!delta}
    extracts a canonical, order-independent value, {!merge} folds deltas
    (commutative, associative and idempotent — qcheck-tested) and
    {!absorb} unions a delta back into a live ledger. Deltas are plain
    marshalable data, so they ride KITCKPT1 checkpoints and keep
    coverage monotone across [--resume] and [Campaign.extend]. *)

type t

(** A variable's current rung, derived from its flag bits with
    precedence [Attributed > Paired > Read > Written > Touched]. *)
type state = Untouched | Touched | Written | Read | Paired | Attributed

val state_name : state -> string
(** Lowercase, for JSONL and tables. *)

val create : (string * int) list -> t
(** [create vars] — the universe, as [(name, base_addr)] pairs in a
    deterministic (registration) order. Everything starts untouched. *)

val size : t -> int

(** {2 Marking}

    All marks are idempotent and ignore addresses outside the universe
    (infrastructure variables, unprotected subsystems). Higher rungs
    imply the lower ones: marking written/read/attributed also marks
    touched, and attribution implies the overlapping pair. *)

val mark_touched : t -> addr:int -> unit
(** Any profiled access (even a reader-filtered one) landed on the
    variable. *)

val mark_written : t -> addr:int -> unit
(** The variable is in the access map's writer universe. *)

val mark_read : t -> addr:int -> unit
(** The variable is in the access map's (spec-filtered) reader
    universe. *)

val mark_attributed : t -> addr:int -> unit
(** An interference report's data flow was attributed to the
    variable. *)

val state : t -> int -> state
(** By universe index ([0 .. size-1]). *)

val var_name : t -> int -> string

(** {2 Summaries and gaps} *)

type summary = {
  sum_vars : int;
  sum_touched : int;
  sum_written : int;
  sum_read : int;
  sum_paired : int;                 (** overlapping (write, read) pair *)
  sum_attributed : int;
  sum_gaps : int;                   (** vars with no overlapping pair *)
}

val summary : t -> summary

val sub_summary : summary -> summary -> summary
(** [sub_summary cur prev] — the per-generation coverage delta a grown
    campaign reports. *)

val gaps : t -> string list
(** Variables with no overlapping (write, read) pair, in universe order
    — the seed list feedback-driven generation will consume. *)

(** {2 Merging} *)

type delta
(** A canonical, order-independent extract of a ledger's marks: plain
    marshalable data (no bitsets), sorted by variable name. *)

val delta : t -> delta

val merge : delta -> delta -> delta
(** Pointwise union by variable name. Commutative, associative,
    idempotent; [empty_delta] is the identity. *)

val empty_delta : delta

val equal_delta : delta -> delta -> bool

val absorb : t -> delta -> unit
(** Union a delta's marks into a live ledger, matching variables by
    name; unknown names are ignored (the producer ran a wider spec). *)

val delta_of_list : (string * int) list -> delta
(** Canonicalise arbitrary [(name, flag-bits)] pairs (bit 0 touched,
    1 written, 2 read, 3 attributed; higher bits masked off, duplicate
    names unioned) — the qcheck generator's entry point. *)

val delta_to_list : delta -> (string * int) list

(** {2 Rendering} *)

val jsonl_lines : t -> string list
(** The deterministic JSONL export: one ["covsum"] summary line, then
    one ["cov"] line per variable in universe order. Byte-stable for a
    given ledger state — domain/proc/checkpoint schedules that mark the
    same facts export identical bytes. *)

val render : t -> string
(** Human-readable: the summary, a per-state table and the gap list. *)
