(* The observability bundle: one metrics registry plus one span tracer,
   threaded through the pipeline (runner, supervisor, campaign, distrib,
   CLI). [nop] is the shared disabled bundle — instrumented code records
   through it at the cost of a bool check, and always-on accounting
   counters (see Metrics) still count. *)

(* Re-export: the coverage ledger is part of the observability plane
   (callers reach it as [Obs.Coverage] next to [Obs.snapshot] etc.). *)
module Coverage = Coverage

type t = {
  metrics : Metrics.registry;
  tracer : Tracer.t;
}

let create ?registry ?tracer () =
  let metrics =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  let tracer = match tracer with Some t -> t | None -> Tracer.create () in
  { metrics; tracer }

let nop = { metrics = Metrics.create ~enabled:false (); tracer = Tracer.nop }

let enabled t = Metrics.enabled t.metrics || Tracer.enabled t.tracer

let snapshot ?volatile t = Metrics.snapshot ?volatile t.metrics

let export_lines ?(wall = false) ?meta t =
  Export.lines ~wall ?meta
    ~events:(Tracer.events t.tracer)
    ~dropped:(Tracer.dropped t.tracer)
    (Metrics.snapshot ~volatile:wall t.metrics)
