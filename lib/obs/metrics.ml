(* The metrics registry: named counters, gauges and fixed-bucket
   histograms with O(1) hot-path recording.

   A registry is a flat name -> metric table. Metric handles are interned
   once (get-or-create) and then recorded through directly: an increment
   is a bool check plus a field mutation, no hashing. Registries carry an
   [enabled] flag so instrumented code can stay in place with recording
   off; metrics created with [~always:true] bypass the flag — used for
   the few counters that are campaign accounting, not telemetry (the
   runner's execution and mask-cache counters), which must keep counting
   exactly as they did before the observability plane existed.

   Metrics created with [~volatile:true] hold wall-clock-derived values;
   they are excluded from snapshots unless asked for, which is what keeps
   the default export deterministic for a fixed seed.

   Multicore: registries are shared across domains (the global [default]
   registry sees every worker's syscall dispatch), so the structural
   mutations — interning a handle, reset, snapshot, absorb — take a
   process-wide mutex. The hot path is untouched: recording through an
   already-interned handle is still an unsynchronised field mutation,
   where a lost increment under contention is acceptable telemetry
   noise but a torn Hashtbl is not. *)

type c_rec = { mutable c : int }
type g_rec = { mutable g : float }

type h_rec = {
  le : float array;                  (* upper bucket bounds, ascending *)
  counts : int array;                (* length le + 1; last is +inf *)
  mutable sum : float;
  mutable n : int;
}

type cell = C of c_rec | G of g_rec | H of h_rec

type entry = { e_volatile : bool; e_cell : cell }

type registry = {
  mutable enabled : bool;
  tbl : (string, entry) Hashtbl.t;
}

type counter = { cr : registry; c_always : bool; cc : c_rec }
type gauge = { gr : registry; g_always : bool; gc : g_rec }
type histogram = { hr : registry; h_always : bool; hc : h_rec }

let create ?(enabled = true) () = { enabled; tbl = Hashtbl.create 64 }

(* The process-global default registry, disabled until someone turns it
   on: hot paths instrumented against it (syscall dispatch) cost one
   bool check by default. *)
let default = create ~enabled:false ()

let enabled r = r.enabled
let set_enabled r b = r.enabled <- b

(* One process-wide lock for all registries: interning and whole-table
   walks are cold paths, and a single lock cannot deadlock. *)
let structural_lock = Mutex.create ()

let locked f =
  Mutex.lock structural_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock structural_lock) f

let intern r name volatile make read =
  locked (fun () ->
      match Hashtbl.find_opt r.tbl name with
      | Some e -> read e.e_cell
      | None ->
        let cell = make () in
        Hashtbl.replace r.tbl name { e_volatile = volatile; e_cell = cell };
        read cell)

let wrong_kind name = invalid_arg ("Metrics: " ^ name ^ " registered with another kind")

let counter ?(volatile = false) ?(always = false) r name =
  intern r name volatile
    (fun () -> C { c = 0 })
    (function
      | C cc -> { cr = r; c_always = always; cc }
      | G _ | H _ -> wrong_kind name)

let inc c = if c.cr.enabled || c.c_always then c.cc.c <- c.cc.c + 1
let add c n = if c.cr.enabled || c.c_always then c.cc.c <- c.cc.c + n
let set_counter c n = if c.cr.enabled || c.c_always then c.cc.c <- n
let counter_value c = c.cc.c

let gauge ?(volatile = false) ?(always = false) r name =
  intern r name volatile
    (fun () -> G { g = 0.0 })
    (function
      | G gc -> { gr = r; g_always = always; gc }
      | C _ | H _ -> wrong_kind name)

let set_gauge g v = if g.gr.enabled || g.g_always then g.gc.g <- v
let add_gauge g v = if g.gr.enabled || g.g_always then g.gc.g <- g.gc.g +. v
let gauge_value g = g.gc.g

let default_buckets = [| 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 500.0 |]

let histogram ?(volatile = false) ?(always = false)
    ?(buckets = default_buckets) r name =
  intern r name volatile
    (fun () ->
      H { le = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.0; n = 0 })
    (function
      | H hc -> { hr = r; h_always = always; hc }
      | C _ | G _ -> wrong_kind name)

let observe h v =
  if h.hr.enabled || h.h_always then begin
    let hc = h.hc in
    let k = Array.length hc.le in
    let rec slot i = if i >= k || v <= hc.le.(i) then i else slot (i + 1) in
    hc.counts.(slot 0) <- hc.counts.(slot 0) + 1;
    hc.sum <- hc.sum +. v;
    hc.n <- hc.n + 1
  end

let histogram_count h = h.hc.n
let histogram_sum h = h.hc.sum

let reset r =
  locked (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e.e_cell with
          | C cc -> cc.c <- 0
          | G gc -> gc.g <- 0.0
          | H hc ->
            Array.fill hc.counts 0 (Array.length hc.counts) 0;
            hc.sum <- 0.0;
            hc.n <- 0)
        r.tbl)

(* -- snapshots ----------------------------------------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of { le : float list; counts : int list; sum : float; n : int }

type snapshot = (string * value) list

let snapshot ?(volatile = false) r =
  locked (fun () ->
      Hashtbl.fold
        (fun name e acc ->
          if e.e_volatile && not volatile then acc
          else
            let v =
              match e.e_cell with
              | C cc -> Counter_v cc.c
              | G gc -> Gauge_v gc.g
              | H hc ->
                Hist_v
                  { le = Array.to_list hc.le; counts = Array.to_list hc.counts;
                    sum = hc.sum; n = hc.n }
            in
            (name, v) :: acc)
        r.tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let equal_snapshot (a : snapshot) (b : snapshot) = a = b

let merge snapshots =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let combine name a b =
    match (a, b) with
    | Counter_v x, Counter_v y -> Counter_v (x + y)
    | Gauge_v x, Gauge_v y -> Gauge_v (x +. y)
    | Hist_v x, Hist_v y when x.le = y.le ->
      Hist_v
        { le = x.le; counts = List.map2 ( + ) x.counts y.counts;
          sum = x.sum +. y.sum; n = x.n + y.n }
    | _ -> invalid_arg ("Metrics.merge: incompatible metric " ^ name)
  in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt tbl name with
         | None ->
           Hashtbl.replace tbl name v;
           order := name :: !order
         | Some prev -> Hashtbl.replace tbl name (combine name prev v)))
    snapshots;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* In-place counterpart of [merge]: fold a snapshot's values into a
   registry's own metrics. Always-on handles, so per-domain accounting
   lands even when the target bundle has recording switched off. *)
let absorb r snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> add (counter ~always:true r name) n
      | Gauge_v g -> add_gauge (gauge ~always:true r name) g
      | Hist_v { le; counts; sum; n } ->
        let h =
          histogram ~always:true ~buckets:(Array.of_list le) r name
        in
        if Array.to_list h.hc.le <> le then
          invalid_arg ("Metrics.absorb: incompatible histogram " ^ name);
        List.iteri
          (fun i c -> h.hc.counts.(i) <- h.hc.counts.(i) + c)
          counts;
        h.hc.sum <- h.hc.sum +. sum;
        h.hc.n <- h.hc.n + n)
    snap

let pp_value ppf = function
  | Counter_v n -> Fmt.int ppf n
  | Gauge_v v -> Fmt.pf ppf "%.6g" v
  | Hist_v h ->
    Fmt.pf ppf "count=%d sum=%.6g buckets=[%a]" h.n h.sum
      (Fmt.list ~sep:(Fmt.any " ") Fmt.int)
      h.counts

let pp_snapshot ppf s =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, v) ->
         Fmt.pf ppf "%-40s %a" name pp_value v))
    s
