(** The span tracer: nested begin/end phase spans and instant events in
    a size-capped ring buffer.

    Events carry a deterministic timestamp ([time] — the event sequence
    number by default, or a caller-supplied virtual-clock reading) and a
    wall-clock one; deterministic exports use only the former. When the
    ring is full the oldest events are dropped and counted. *)

type kind = Begin | End | Instant

type event = {
  seq : int;                        (** monotone event number *)
  time : int;                       (** deterministic timestamp *)
  kind : kind;
  name : string;
  attrs : (string * string) list;
  wall : float;                     (** wall-clock seconds at record time *)
}

type span
(** A handle returned by {!span}; pass it to {!finish}. Spans from a
    disabled tracer are inert. *)

type t

val create : ?cap:int -> ?enabled:bool -> unit -> t
(** [cap] (default 4096) bounds the event ring. *)

val nop : t
(** A shared inert tracer: recording is a single bool check. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val span :
  t -> ?attrs:(string * string) list -> ?time:int -> ?wall:float -> string ->
  span
(** Record a [Begin] event and return the handle for {!finish}. [time]
    overrides the deterministic timestamp (e.g. the virtual clock);
    [wall] overrides the wall-clock one — callers that also measure the
    same interval (e.g. a phase gauge) pass their own readings so the
    span duration is exactly the measured one. *)

val finish : t -> ?time:int -> ?wall:float -> span -> unit

val with_span :
  t -> ?attrs:(string * string) list -> ?time:int -> string ->
  (unit -> 'a) -> 'a
(** Bracket [f] in a span; the [End] event is recorded even if [f]
    raises. *)

val instant :
  t -> ?attrs:(string * string) list -> ?time:int -> ?wall:float -> string ->
  unit

val events : t -> event list
(** Buffered events, oldest first (at most [cap]). *)

val recorded : t -> int
(** Events ever recorded, including dropped ones. *)

val dropped : t -> int
val clear : t -> unit

val interleave : event list list -> event list
(** Interleave per-domain rings into one deterministic stream: a k-way
    merge taking, at each step, the ring whose head event has the
    smallest (deterministic time, ring index). Each ring's internal
    order — and so its Begin/End nesting — is preserved unconditionally,
    even when deterministic times rewind within a ring (virtual-clock
    spans across snapshot restores). *)

val merge : t -> event list list -> unit
(** [merge t rings] folds per-domain rings into [t] — the tracer
    counterpart of [Metrics.absorb]. Events are {!interleave}d and
    re-recorded with fresh sequence numbers but their original
    deterministic and wall timestamps. No-op on a disabled tracer. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_event : Format.formatter -> event -> unit
