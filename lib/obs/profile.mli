(** Aggregate profile over a reconstructed {!Spantree}: per-span-name
    count, total (inclusive) and self (exclusive) wall and deterministic
    time, top-k hot paths, critical-path extraction, and folded-stacks
    flamegraph output. *)

type row = {
  r_name : string;
  r_count : int;
  r_wall_total : float;             (** inclusive wall seconds *)
  r_wall_self : float;              (** exclusive wall seconds *)
  r_det_total : int;                (** inclusive deterministic ticks *)
  r_det_self : int;                 (** exclusive deterministic ticks *)
}

type t = {
  rows : row list;                  (** wall total desc, det total desc, name *)
  total_spans : int;
  total_wall : float;               (** sum of root inclusive wall time *)
  total_det : int;
}

val of_tree : Spantree.t -> t
(** Instants contribute nothing; self time is clamped non-negative. *)

val top : ?k:int -> t -> row list
(** First [k] (default 10) rows. *)

val find : t -> string -> row option

val fingerprint : t -> string
(** Hex digest of per-name counts only — the placement-invariant
    counterpart of {!Spantree.fingerprint}. *)

val critical_path : Spantree.t -> Spantree.node list
(** The chain of heaviest spans, heaviest root down to a leaf. Weight is
    inclusive wall time, falling back to deterministic time for
    deterministic exports. Empty for an empty trace. *)

val folded : Spantree.t -> string list
(** Folded-stacks lines ("root;child;leaf weight"), weight = self time
    in wall microseconds (deterministic ticks when no wall times).
    Feed to flamegraph.pl or speedscope. *)

val render_table : ?k:int -> t -> string

val render_critical_path : Spantree.t -> string
(** Text rendering; always contains the words "critical path". *)
