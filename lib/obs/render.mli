(** Human-readable rendering of a telemetry export ([kit stats]):
    aligned tables for counters, gauges and histograms, plus a span
    summary built by pairing begin/end events. *)

val stats : Export.parsed -> string

val snapshot_table : Metrics.snapshot -> string
(** {!stats} over a bare metrics snapshot (no meta, no events). *)
