(** Human-readable rendering of a telemetry export ([kit stats]):
    aligned tables for counters, gauges and histograms, plus a span
    summary built by pairing begin/end events. *)

val stats : Export.parsed -> string
(** Leads with a telemetry header: registered-instrument cardinality,
    trace event count and ring-drop count — the numbers that say
    whether the telemetry itself is trustworthy. *)

val snapshot_table : Metrics.snapshot -> string
(** {!stats} over a bare metrics snapshot (no meta, no events). *)

val funnel : Export.parsed -> string
(** The attrition funnel ([kit stats --funnel]), rendered from the
    always-on ["campaign.attr_*"] counters: every generated data-flow
    case charged to exactly one terminal stage, with a balance line.
    Includes the schedule-search stream and the coverage-ledger summary
    when the export carries them. Degrades to an explanatory line when
    the export has no funnel accounting. *)
