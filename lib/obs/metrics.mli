(** The metrics registry: named counters, gauges and fixed-bucket
    histograms with O(1) hot-path recording.

    Handles are interned once per name (get-or-create); recording
    through a handle is a bool check plus a field mutation. A registry's
    [enabled] flag gates recording so instrumentation can stay in place
    with zero observable cost; [~always:true] metrics bypass the flag
    (for counters that are campaign accounting, not telemetry) and
    [~volatile:true] metrics hold wall-clock-derived values, excluded
    from snapshots by default so exports stay deterministic. *)

type registry
type counter
type gauge
type histogram

val create : ?enabled:bool -> unit -> registry
(** A fresh registry, recording by default. *)

val default : registry
(** The process-global default registry, created {e disabled}: hot-path
    instrumentation against it (e.g. per-sysno dispatch counting) costs
    one bool check until someone calls [set_enabled default true]. *)

val enabled : registry -> bool
val set_enabled : registry -> bool -> unit

val reset : registry -> unit
(** Zero every metric (names stay registered). *)

(** {2 Counters} *)

val counter : ?volatile:bool -> ?always:bool -> registry -> string -> counter
(** Get or create. @raise Invalid_argument if [name] is already
    registered with a different kind. *)

val inc : counter -> unit
val add : counter -> int -> unit
val set_counter : counter -> int -> unit
(** Overwrite with an absolute value — for mirroring an externally
    accumulated total into the registry. *)

val counter_value : counter -> int

(** {2 Gauges} *)

val gauge : ?volatile:bool -> ?always:bool -> registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

val default_buckets : float array

val histogram :
  ?volatile:bool -> ?always:bool -> ?buckets:float array -> registry ->
  string -> histogram
(** Fixed upper bucket bounds (ascending); one extra overflow bucket is
    appended. [buckets] is only consulted on first creation. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {2 Snapshots}

    A snapshot is a deterministic, structurally comparable view: an
    assoc list sorted by metric name. Volatile (wall-clock-derived)
    metrics are excluded unless [~volatile:true]. *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of { le : float list; counts : int list; sum : float; n : int }

type snapshot = (string * value) list

val snapshot : ?volatile:bool -> registry -> snapshot
val equal_snapshot : snapshot -> snapshot -> bool

val merge : snapshot list -> snapshot
(** Point-wise merge: counters and gauges sum, histograms with matching
    bounds sum bucket-wise. Used by [Core.Distrib] to aggregate
    per-worker registries. @raise Invalid_argument on a name registered
    with incompatible kinds/bounds. *)

val absorb : registry -> snapshot -> unit
(** [absorb r snap] adds [snap]'s values into [r]'s own metrics
    (get-or-create by name, always-on) — the in-place counterpart of
    {!merge}, used to fold per-domain registries into the campaign
    bundle after a parallel execute phase. @raise Invalid_argument on a
    kind or bucket-bounds mismatch.

    Registries may be shared across domains: handle interning, {!reset},
    {!snapshot} and [absorb] are serialised on a process-wide mutex;
    recording through an interned handle stays unsynchronised (lost
    increments under contention are acceptable telemetry noise). *)

val pp_value : Format.formatter -> value -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
