(* Reconstruct the causal span tree from the flat Tracer event ring.

   The tracer records Begin/End/Instant events in one flat stream; this
   module rebuilds the nesting. Events are first split into lanes — one
   per distinct value of the first matching lane attribute ("domain" /
   "worker" by default), so per-domain rings merged by Tracer.merge do
   not corrupt each other's Begin/End pairing — then each lane runs a
   stack machine over its events in order.

   The builder is tolerant of rings truncated by drops:

   - an End whose Begin was dropped synthesizes a truncated root that
     adopts everything reconstructed so far in its lane (the dropped
     Begin necessarily preceded all surviving lane events);
   - a Begin whose End is missing (span still open when the export was
     taken, or the End lost to a crash) is closed at the lane's last
     event and marked truncated;
   - both cases are counted, never fatal.

   Timestamps: every node carries the deterministic interval
   ([t_begin, t_end]) and the wall-clock one ([w_begin, w_end]).
   Deterministic times come from different sources per subsystem (event
   sequence numbers for pipeline phases, the virtual kernel clock for
   supervised executions), so they order events within one span family;
   wall times are globally comparable and drive duration analysis. *)

type node = {
  n_name : string;
  n_attrs : (string * string) list;
  n_begin : int;                        (* deterministic timestamps *)
  n_end : int;
  n_wbegin : float;                     (* wall timestamps (0 if absent) *)
  n_wend : float;
  n_children : node list;               (* in event order *)
  n_instant : bool;
  n_truncated : bool;                   (* Begin or End lost to the ring *)
}

type t = {
  lanes : (string * node list) list;    (* lane key -> roots, event order *)
  spans : int;                          (* span nodes (instants excluded) *)
  instants : int;
  truncated_begins : int;               (* Ends whose Begin was dropped *)
  unfinished : int;                     (* Begins never ended *)
  dropped : int;                        (* ring drop count from the export *)
}

let default_lane_attrs = [ "domain"; "worker" ]

let main_lane = "main"

let lane_key lane_attrs (e : Tracer.event) =
  let rec go = function
    | [] -> main_lane
    | a :: rest -> (
      match List.assoc_opt a e.Tracer.attrs with
      | Some v -> a ^ "=" ^ v
      | None -> go rest)
  in
  go lane_attrs

(* Wall durations are best-effort: deterministic exports carry no wall
   timestamps (parsed back as 0), and clock steps between domains can
   make an interval run backwards. Clamp, never trust. *)
let wall_duration n = Float.max 0.0 (n.n_wend -. n.n_wbegin)

let det_duration n = max 0 (n.n_end - n.n_begin)

(* One lane's stack machine. *)
type frame = {
  f_name : string;
  f_attrs : (string * string) list;
  f_begin : int;
  f_wbegin : float;
  mutable f_children : node list;       (* newest first *)
}

type lane_state = {
  mutable l_stack : frame list;
  mutable l_roots : node list;          (* newest first *)
  mutable l_last : int;                 (* last event's timestamps, for *)
  mutable l_wlast : float;              (* closing unfinished frames *)
  mutable l_first : int;                (* first event's, for synthesized *)
  mutable l_wfirst : float;             (* truncated roots *)
  mutable l_seen : bool;
}

let lane_create () =
  { l_stack = []; l_roots = []; l_last = 0; l_wlast = 0.0; l_first = 0;
    l_wfirst = 0.0; l_seen = false }

let attach ls node =
  match ls.l_stack with
  | f :: _ -> f.f_children <- node :: f.f_children
  | [] -> ls.l_roots <- node :: ls.l_roots

let close_frame ls f ~t_end ~w_end ~truncated =
  let node =
    { n_name = f.f_name; n_attrs = f.f_attrs; n_begin = f.f_begin;
      n_end = t_end; n_wbegin = f.f_wbegin; n_wend = w_end;
      n_children = List.rev f.f_children; n_instant = false;
      n_truncated = truncated }
  in
  attach ls node

type counts = {
  mutable c_spans : int;
  mutable c_instants : int;
  mutable c_truncated : int;
  mutable c_unfinished : int;
}

let feed counts ls (e : Tracer.event) =
  if not ls.l_seen then begin
    ls.l_seen <- true;
    ls.l_first <- e.Tracer.time;
    ls.l_wfirst <- e.Tracer.wall
  end;
  ls.l_last <- e.Tracer.time;
  ls.l_wlast <- e.Tracer.wall;
  match e.Tracer.kind with
  | Tracer.Instant ->
    counts.c_instants <- counts.c_instants + 1;
    attach ls
      { n_name = e.Tracer.name; n_attrs = e.Tracer.attrs;
        n_begin = e.Tracer.time; n_end = e.Tracer.time;
        n_wbegin = e.Tracer.wall; n_wend = e.Tracer.wall; n_children = [];
        n_instant = true; n_truncated = false }
  | Tracer.Begin ->
    ls.l_stack <-
      { f_name = e.Tracer.name; f_attrs = e.Tracer.attrs;
        f_begin = e.Tracer.time; f_wbegin = e.Tracer.wall; f_children = [] }
      :: ls.l_stack
  | Tracer.End -> (
    let matches f = String.equal f.f_name e.Tracer.name in
    match ls.l_stack with
    | f :: rest when matches f ->
      ls.l_stack <- rest;
      counts.c_spans <- counts.c_spans + 1;
      close_frame ls f ~t_end:e.Tracer.time ~w_end:e.Tracer.wall
        ~truncated:false
    | stack when List.exists matches stack ->
      (* Intervening frames lost their Ends (truncation mid-ring): close
         them at this event before closing the match. *)
      let rec unwind () =
        match ls.l_stack with
        | f :: rest when not (matches f) ->
          ls.l_stack <- rest;
          counts.c_spans <- counts.c_spans + 1;
          counts.c_unfinished <- counts.c_unfinished + 1;
          close_frame ls f ~t_end:e.Tracer.time ~w_end:e.Tracer.wall
            ~truncated:true;
          unwind ()
        | f :: rest ->
          ls.l_stack <- rest;
          counts.c_spans <- counts.c_spans + 1;
          close_frame ls f ~t_end:e.Tracer.time ~w_end:e.Tracer.wall
            ~truncated:false
        | [] -> assert false
      in
      unwind ()
    | _ ->
      (* Orphaned End: its Begin was dropped by the ring, so the span
         opened before every surviving lane event — synthesize a
         truncated root spanning the lane so far and adopt the roots
         reconstructed up to here. *)
      counts.c_spans <- counts.c_spans + 1;
      counts.c_truncated <- counts.c_truncated + 1;
      let adopted = List.rev ls.l_roots in
      ls.l_roots <-
        [ { n_name = e.Tracer.name; n_attrs = e.Tracer.attrs;
            n_begin = ls.l_first; n_end = e.Tracer.time;
            n_wbegin = ls.l_wfirst; n_wend = e.Tracer.wall;
            n_children = adopted; n_instant = false; n_truncated = true } ])

let lane_finish counts ls =
  (* Close still-open frames at the lane's last event, innermost out. *)
  List.iter
    (fun f ->
      ls.l_stack <- List.tl ls.l_stack;
      counts.c_spans <- counts.c_spans + 1;
      counts.c_unfinished <- counts.c_unfinished + 1;
      close_frame ls f ~t_end:ls.l_last ~w_end:ls.l_wlast ~truncated:true)
    ls.l_stack;
  List.rev ls.l_roots

let build ?(lane_attrs = default_lane_attrs) ?(dropped = 0) events =
  let counts =
    { c_spans = 0; c_instants = 0; c_truncated = 0; c_unfinished = 0 }
  in
  let lanes : (string, lane_state) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in                 (* lane keys, first-seen order *)
  List.iter
    (fun e ->
      let key = lane_key lane_attrs e in
      let ls =
        match Hashtbl.find_opt lanes key with
        | Some ls -> ls
        | None ->
          let ls = lane_create () in
          Hashtbl.replace lanes key ls;
          order := key :: !order;
          ls
      in
      feed counts ls e)
    events;
  let lanes =
    List.rev_map
      (fun key -> (key, lane_finish counts (Hashtbl.find lanes key)))
      !order
  in
  { lanes; spans = counts.c_spans; instants = counts.c_instants;
    truncated_begins = counts.c_truncated; unfinished = counts.c_unfinished;
    dropped }

let roots t = List.concat_map snd t.lanes

(* -- fingerprint ----------------------------------------------------------

   A canonical digest of the causal structure: span names, attributes and
   nesting, with placement-dependent identity (which domain/worker lane a
   span landed on, timestamps, sequence numbers) excluded. Two traces of
   the same campaign at different --domains values digest identically —
   the work is the same, only its placement moved (property-tested). *)

let default_ignore_attrs = [ "domain"; "worker"; "domains" ]

let rec node_digest ~ignore buf n =
  Buffer.add_string buf (if n.n_instant then "i:" else "s:");
  Buffer.add_string buf n.n_name;
  List.iter
    (fun (k, v) ->
      if not (List.mem k ignore) then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v
      end)
    (List.sort compare n.n_attrs);
  Buffer.add_char buf '(';
  List.iter (node_digest ~ignore buf) n.n_children;
  Buffer.add_char buf ')'

let fingerprint ?(ignore = default_ignore_attrs) t =
  let buf = Buffer.create 1024 in
  (* Lanes sorted by key so lane discovery order cannot leak in; keys
     made of ignored attrs collapse into one sorted root sequence. *)
  let keyed =
    List.map
      (fun (key, roots) ->
        let b = Buffer.create 256 in
        List.iter (node_digest ~ignore b) roots;
        let lane_ignored =
          List.exists
            (fun a -> String.length key > String.length a
                      && String.sub key 0 (String.length a + 1) = a ^ "=")
            ignore
        in
        ((if lane_ignored then main_lane else key), Buffer.contents b))
      t.lanes
  in
  List.iter
    (fun (key, digest) ->
      Buffer.add_char buf '[';
      Buffer.add_string buf key;
      Buffer.add_char buf ']';
      Buffer.add_string buf digest)
    (List.sort compare keyed);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* -- rendering ------------------------------------------------------------ *)

let render ?(max_depth = max_int) t =
  let buf = Buffer.create 1024 in
  let rec node depth n =
    if depth <= max_depth then begin
      Printf.bprintf buf "%s%s%s%s" (String.make (2 * depth) ' ') n.n_name
        (if n.n_instant then " !" else "")
        (if n.n_truncated then " (truncated)" else "");
      if not n.n_instant then begin
        if wall_duration n > 0.0 then
          Printf.bprintf buf "  %.6fs" (wall_duration n);
        Printf.bprintf buf "  dt=%d" (det_duration n)
      end;
      List.iter
        (fun (k, v) -> Printf.bprintf buf " %s=%s" k v)
        n.n_attrs;
      Buffer.add_char buf '\n';
      if depth = max_depth && n.n_children <> [] then
        Printf.bprintf buf "%s... (%d children)\n"
          (String.make (2 * (depth + 1)) ' ')
          (List.length n.n_children)
      else List.iter (node (depth + 1)) n.n_children
    end
  in
  List.iter
    (fun (key, roots) ->
      if roots <> [] then begin
        Printf.bprintf buf "-- lane %s --\n" key;
        List.iter (node 0) roots
      end)
    t.lanes;
  if t.dropped > 0 then
    Printf.bprintf buf "(%d events dropped by the ring buffer)\n" t.dropped;
  if t.truncated_begins > 0 || t.unfinished > 0 then
    Printf.bprintf buf "(%d truncated, %d unfinished spans)\n"
      t.truncated_begins t.unfinished;
  Buffer.contents buf

(* -- Chrome trace-event export --------------------------------------------

   The JSON Array Format of the trace-event spec: complete events
   ("ph":"X") for spans, instants ("ph":"i") for instant events, one tid
   per lane with a thread_name metadata record. Loadable in Perfetto and
   chrome://tracing. Timestamps are microseconds: wall-clock rebased to
   the trace start when the export carried wall times, the deterministic
   timestamps otherwise. *)

let to_chrome t =
  let has_wall =
    List.exists
      (fun (_, roots) ->
        List.exists (fun n -> n.n_wbegin > 0.0 || n.n_wend > 0.0) roots)
      t.lanes
  in
  let wall0 =
    List.fold_left
      (fun acc (_, roots) ->
        List.fold_left
          (fun acc n ->
            if n.n_wbegin > 0.0 then Float.min acc n.n_wbegin else acc)
          acc roots)
      infinity t.lanes
  in
  let ts n =
    if has_wall && wall0 < infinity then
      Jsonl.Float (Float.max 0.0 (n.n_wbegin -. wall0) *. 1e6)
    else Jsonl.Int n.n_begin
  in
  let dur n =
    if has_wall && wall0 < infinity then Jsonl.Float (wall_duration n *. 1e6)
    else Jsonl.Int (det_duration n)
  in
  let args n =
    if n.n_attrs = [] then []
    else
      [ ("args",
         Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Str v)) n.n_attrs)) ]
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  List.iteri
    (fun tid (key, roots) ->
      emit
        (Jsonl.Obj
           [ ("ph", Jsonl.Str "M"); ("name", Jsonl.Str "thread_name");
             ("pid", Jsonl.Int 0); ("tid", Jsonl.Int tid);
             ("args", Jsonl.Obj [ ("name", Jsonl.Str key) ]) ]);
      let rec node n =
        let base =
          [ ("name", Jsonl.Str n.n_name); ("cat", Jsonl.Str "kit");
            ("ph", Jsonl.Str (if n.n_instant then "i" else "X"));
            ("ts", ts n); ("pid", Jsonl.Int 0); ("tid", Jsonl.Int tid) ]
        in
        let shape =
          if n.n_instant then [ ("s", Jsonl.Str "t") ]
          else [ ("dur", dur n) ]
        in
        emit (Jsonl.Obj (base @ shape @ args n));
        List.iter node n.n_children
      in
      List.iter node roots)
    t.lanes;
  Jsonl.Obj
    [ ("traceEvents", Jsonl.List (List.rev !events));
      ("displayTimeUnit", Jsonl.Str "ms") ]
