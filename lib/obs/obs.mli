(** The observability bundle threaded through the pipeline: one metrics
    registry plus one span tracer. Recording through a bundle never
    changes campaign semantics (property-tested): metrics and spans are
    write-only side channels. *)

module Coverage = Coverage
(** The per-variable coverage ledger, re-exported as part of the
    observability plane. *)

type t = {
  metrics : Metrics.registry;
  tracer : Tracer.t;
}

val create : ?registry:Metrics.registry -> ?tracer:Tracer.t -> unit -> t
(** A recording bundle; fresh enabled registry and tracer by default. *)

val nop : t
(** The shared disabled bundle: recording costs a bool check; always-on
    accounting counters (see {!Metrics.counter}) still count. *)

val enabled : t -> bool

val snapshot : ?volatile:bool -> t -> Metrics.snapshot

val export_lines : ?wall:bool -> ?meta:(string * Jsonl.t) list -> t -> string list
(** The bundle's full JSONL export (metrics + trace events).
    Deterministic unless [~wall:true]. *)
