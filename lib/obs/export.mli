(** Telemetry export: one self-describing JSON object per line (JSONL)
    and the inverse parser behind [kit stats].

    Line kinds: [meta] (version + caller context), [counter] / [gauge] /
    [hist] (one per metric, in snapshot order), [event] (one per tracer
    event, oldest first) and [dropped] (ring-buffer overflow count, only
    when nonzero).

    Deterministic by default: volatile metrics must already be excluded
    from the snapshot (see {!Metrics.snapshot}) and per-event wall
    timestamps are only emitted with [~wall:true] — so the export of a
    fixed-seed campaign is byte-stable across runs (golden-tested). *)

val version : int

val lines :
  ?wall:bool -> ?meta:(string * Jsonl.t) list ->
  ?events:Tracer.event list -> ?dropped:int -> Metrics.snapshot ->
  string list
(** Render an export, leading meta line included. *)

val write_file : string -> string list -> unit

(** {2 Parsing} *)

type parsed = {
  p_meta : (string * Jsonl.t) list;  (** meta fields, sans [k]/[version] *)
  p_snapshot : Metrics.snapshot;
  p_events : Tracer.event list;      (** [wall = 0.] when not exported *)
  p_dropped : int;
}

val parse : string list -> (parsed, string) result
val read_file : string -> (parsed, string) result
