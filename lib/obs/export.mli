(** Telemetry export: one self-describing JSON object per line (JSONL)
    and the inverse parser behind [kit stats].

    Line kinds: [meta] (version + caller context), [counter] / [gauge] /
    [hist] (one per metric, in snapshot order), [event] (one per tracer
    event, oldest first) and [dropped] (ring-buffer overflow count, only
    when nonzero).

    Deterministic by default: volatile metrics must already be excluded
    from the snapshot (see {!Metrics.snapshot}) and per-event wall
    timestamps are only emitted with [~wall:true] — so the export of a
    fixed-seed campaign is byte-stable across runs (golden-tested). *)

val version : int

val lines :
  ?wall:bool -> ?meta:(string * Jsonl.t) list ->
  ?events:Tracer.event list -> ?dropped:int -> Metrics.snapshot ->
  string list
(** Render an export, leading meta line included. *)

val write_file : string -> string list -> unit

(** {2 Parsing} *)

type parsed = {
  p_meta : (string * Jsonl.t) list;  (** meta fields, sans [k]/[version] *)
  p_snapshot : Metrics.snapshot;
  p_events : Tracer.event list;      (** [wall = 0.] when not exported *)
  p_dropped : int;
}

val parse : string list -> (parsed, string) result
val read_file : string -> (parsed, string) result

(** {2 Streaming} *)

type line =
  | Meta of (string * Jsonl.t) list
  | Metric of string * Metrics.value
  | Event of Tracer.event
  | Dropped of int
      (** One parsed export line (blank lines yield nothing). *)

val parse_line : line_no:int -> string -> (line option, string) result
(** [line_no] only labels error messages. *)

val fold_file : string -> init:'a -> f:('a -> line -> 'a) -> ('a, string) result
(** Fold [f] over an export file one parsed line at a time, without
    materialising the line list — [kit trace] uses this on exports far
    larger than the tracer ring. Stops at the first malformed line. *)
