(* The kernel's entropy source. Deterministic for a given boot seed, but
   salted with the per-execution clock base so values that should be
   unpredictable across runs (e.g. globally allocated object ids, see the
   known-bug G limitation in section 6.2) genuinely vary. *)

type t = {
  state : int Var.t;
}

let init heap =
  { state = Var.alloc heap ~name:"krng.state" ~instrumented:false 0x243F6A88 }

let reseed t ~seed ~salt =
  Var.poke t.state ((seed * 0x9E3779B9) lxor (salt * 0x85EBCA6B) lor 1)

let next t =
  let s = Var.peek t.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  let s = s land max_int in
  Var.poke t.state s;
  s

let next_in t bound = 1 + (next t mod bound)
