(** IPv6 flow-label management (paper, Figure 5; bugs #2 and #4).

    While no exclusive flow label exists, any label may be used
    unregistered; once one exists the kernel switches to strict
    management and rejects unregistered labels on data transmission
    (bug #2) and connection setup (bug #4). The buggy switch,
    ipv6_flowlabel_exclusive, is global rather than per net namespace;
    it is a jump-label static key, so under CONFIG_JUMP_LABEL its
    accesses are invisible to the profiler (section 6.1). *)

type t

val init : Heap.t -> Config.t -> t

val registered : Ctx.t -> t -> netns:int -> label:int -> bool

val create :
  Ctx.t -> t -> netns:int -> label:int -> exclusive:bool ->
  (unit, Errno.t) result
(** Register a flow label; [EEXIST] if already registered in [netns]. *)

val strict_mode : Ctx.t -> t -> bug:Bugs.id -> netns:int -> bool
(** Is strict management active for [netns]? The buggy kernel consults
    the global switch, the fixed kernel the per-namespace count. *)

val check_send : Ctx.t -> t -> netns:int -> label:int -> (unit, Errno.t) result
(** Validate a label on the send path (bug #2). Label 0 means no flow
    label and is always admissible. *)

val check_connect :
  Ctx.t -> t -> netns:int -> label:int -> (unit, Errno.t) result
(** Validate a label on the connect path (bug #4). *)
