(** UTS namespace: per-namespace hostnames. Correctly isolated — a
    negative control showing that properly namespaced resources produce
    no interference reports. *)

type t

val init : Heap.t -> t
val set : Ctx.t -> t -> utsns:int -> string -> unit
val get : Ctx.t -> t -> utsns:int -> string
