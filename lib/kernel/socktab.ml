(* The global socket table. Socket ids are allocated from a per-boot
   random base (salted by the entropy source), which is why receiver
   programs cannot name a sender's socket with a constant — the property
   that makes known bug G undetectable by functional interference testing
   (paper, section 6.2). *)

open Maps

let fn_sock_alloc = Kfun.register "sock_alloc"
let fn_sock_lookup = Kfun.register "sock_lookup"
let fn_sock_update = Kfun.register "sock_update"

type sock = {
  id : int;
  dom : int;
  netns : int;
  userns : int;
  owner : int;                      (* pid *)
  bound : int option;               (* port *)
  cookie : int option;
  assoc : int option;               (* SCTP association id *)
  alg : string option;              (* AF_ALG algorithm *)
}

type t = {
  socks : sock Int_map.t Var.t;
  next_id : int Var.t;
}

let init heap =
  {
    socks = Var.alloc heap ~name:"sock.table" ~width:64 Int_map.empty;
    next_id = Var.alloc heap ~name:"sock.next_id" 0;
  }

(* Called once per boot, after the entropy source is seeded. *)
let randomize_base t rng = Var.poke t.next_id (0x10000 + (Krng.next rng land 0xFFFF))

let create ctx t ~dom ~netns ~userns ~owner =
  Kfun.call ctx fn_sock_alloc (fun () ->
      let id = Var.read ctx t.next_id in
      Var.write ctx t.next_id (id + 1);
      let sock =
        { id; dom; netns; userns; owner; bound = None; cookie = None;
          assoc = None; alg = None }
      in
      Var.write ctx t.socks (Int_map.add id sock (Var.read ctx t.socks));
      sock)

let find ctx t id =
  Kfun.call ctx fn_sock_lookup (fun () ->
      Int_map.find_opt id (Var.read ctx t.socks))

let update ctx t sock =
  Kfun.call ctx fn_sock_update (fun () ->
      Var.write ctx t.socks (Int_map.add sock.id sock (Var.read ctx t.socks)))

let remove ctx t id = Var.write ctx t.socks (Int_map.remove id (Var.read ctx t.socks))

let fold ctx t f acc = Int_map.fold (fun _ s acc -> f s acc) (Var.read ctx t.socks) acc
