(* The whole model kernel: configuration, tracing context, heap, and
   every subsystem. [boot] builds a kernel; [snapshot]/[restore] give the
   VM-snapshot semantics the test executor relies on (paper, section 4.2):
   every test case execution starts from a bit-identical machine state. *)

type t = {
  config : Config.t;
  fault : Fault.t;
  heap : Heap.t;
  ctx : Ctx.t;
  clock : Clock.t;
  rng : Krng.t;
  seq : Seqfile.t;
  slab : Slab.t;
  devid : Devid.t;
  procs : Proctab.t;
  socks : Socktab.t;
  packet : Packet.t;
  flowlabel : Flowlabel.t;
  rds : Rds.t;
  sctp : Sctp.t;
  cookie : Cookie.t;
  protomem : Protomem.t;
  conntrack : Conntrack.t;
  uevent : Uevent.t;
  ipvs : Ipvs.t;
  crypto : Crypto.t;
  prio : Prio.t;
  uts : Uts.t;
  ipc : Ipc.t;
  mnt : Mount_ns.t;
  tokens : Tokentab.t;
  timens : Timens.t;
  procfs : Procfs.t;
}

type snapshot = Heap.snapshot

let boot ?fault config =
  let fault = match fault with Some f -> f | None -> Fault.none () in
  Fault.on_boot fault;
  let heap = Heap.create () in
  let ctx = Ctx.create () in
  let clock = Clock.init heap in
  let rng = Krng.init heap in
  Krng.reseed rng ~seed:config.Config.boot_seed ~salt:(Clock.base clock);
  let seq = Seqfile.init heap config in
  let slab = Slab.init heap in
  let devid = Devid.init heap in
  let procs = Proctab.init heap in
  let socks = Socktab.init heap in
  Socktab.randomize_base socks rng;
  let packet = Packet.init heap config in
  let flowlabel = Flowlabel.init heap config in
  let rds = Rds.init heap config in
  let sctp = Sctp.init heap config in
  let cookie = Cookie.init heap config in
  let protomem = Protomem.init heap config in
  let conntrack = Conntrack.init heap config in
  let uevent = Uevent.init heap config in
  let ipvs = Ipvs.init heap config in
  let crypto = Crypto.init heap in
  let prio = Prio.init heap config in
  let uts = Uts.init heap in
  let ipc = Ipc.init heap in
  let mnt = Mount_ns.init heap config in
  let tokens = Tokentab.init heap config in
  Tokentab.randomize_base tokens rng;
  let timens = Timens.init heap config in
  let procfs =
    Procfs.make ~packet ~protomem ~ipvs ~conntrack ~crypto ~slab ~seq
  in
  { config; fault; heap; ctx; clock; rng; seq; slab; devid; procs; socks;
    packet; flowlabel; rds; sctp; cookie; protomem; conntrack; uevent; ipvs;
    crypto; prio; uts; ipc; mnt; tokens; timens; procfs }

let snapshot t = Heap.snapshot t.heap

let restore ?full t snap =
  Fault.on_restore t.fault;
  Heap.restore ?full t.heap snap

(* Spawn a container: a process placed in fresh instances of every
   namespace kind (or the initial namespaces when [host] — the setup
   known bug E needs for its sender). *)
let spawn_container ?(host = false) ?(uid = 1000) t =
  let proc = Proctab.spawn t.ctx t.procs ~uid ~ns:Namespace.initial in
  if host then proc.Proctab.pid
  else begin
    let all_flags =
      List.fold_left
        (fun acc kind -> acc lor Namespace.kind_flag kind)
        0 Namespace.all_kinds
    in
    ignore (Proctab.unshare t.ctx t.procs ~pid:proc.Proctab.pid ~flags:all_flags);
    proc.Proctab.pid
  end

let now t = Clock.now t.clock
