(** Netfilter connection tracking and the sysctl surface.

    - Known bug D (CVE-2021-38209): nf_conntrack_max is global; a write
      from any net namespace changes every container's limit.
    - Known bug F: /proc/net/nf_conntrack shows foreign entries, but the
      file is inherently time-dependent (expiry columns, transient
      timer entries), so functional interference testing cannot flag it
      (paper, section 6.2).
    - somaxconn models a sysctl the specification correctly leaves
      unprotected; divergences on it feed Table 5's resource filter. *)

type t

val default_max : int

val init : Heap.t -> Config.t -> t

val max_read : Ctx.t -> t -> netns:int -> int
val max_write : Ctx.t -> t -> netns:int -> int -> unit

val somaxconn_read : Ctx.t -> t -> int
val somaxconn_write : Ctx.t -> t -> int -> unit

val add : Ctx.t -> t -> netns:int -> port:int -> now:int -> unit
(** Insert a tracked connection. *)

val seq_show : Ctx.t -> t -> cur:int -> now:int -> string list
(** Render /proc/net/nf_conntrack at kernel time [now]; content varies
    with [now] even without any sender. *)
