(* Socket cookies (paper, bug #6). Cookies are assigned lazily from a
   counter on first request; the buggy kernel draws every namespace's
   cookies from one global counter, so a container can observe — and
   perturb — the allocation activity of its neighbours. *)

open Maps

let fn_sock_gen_cookie = Kfun.register "sock_gen_cookie"

type t = {
  next_cookie : int Var.t;                 (* buggy kernel: global *)
  next_cookie_perns : int Int_map.t Var.t; (* fixed kernel: per-ns *)
  gen_inflight : int Var.t;                (* race bug #2: 0 = idle, else
                                              allocating netns + 1 *)
  config : Config.t;
}

let init heap config =
  {
    next_cookie = Var.alloc heap ~name:"sock.cookie_counter" 1;
    next_cookie_perns =
      Var.alloc heap ~name:"sock.cookie_counter_perns" ~width:16 Int_map.empty;
    gen_inflight = Var.alloc heap ~name:"sock.cookie_gen_inflight" 0;
    config;
  }

(* The collision-avoidance gap a racing allocator takes (race bug #2):
   large enough to be unmistakable in a diff, small enough not to
   exhaust the id space. *)
let race_gap = 64

let generate ctx t ~netns =
  Kfun.call ctx fn_sock_gen_cookie (fun () ->
      (* Race bug #2: the buggy kernel publishes an allocation-in-progress
         marker around the counter update and clears it before returning.
         Sequentially the marker is always clear on entry; an allocator
         whose schedule lands inside a foreign window jumps its cookie by
         [race_gap] to dodge the (presumed) concurrent allocation. *)
      let race = Config.has t.config Bugs.RW2_cookie_window in
      let busy = if race then Var.read ctx t.gen_inflight else 0 in
      if race then Var.write ctx t.gen_inflight (netns + 1);
      let c =
        if Config.has t.config Bugs.B6_cookie then begin
          let c = Var.read ctx t.next_cookie in
          Var.write ctx t.next_cookie (c + 1);
          c
        end
        else begin
          let perns = Var.read ctx t.next_cookie_perns in
          let c = Option.value ~default:1 (Int_map.find_opt netns perns) in
          Var.write ctx t.next_cookie_perns (Int_map.add netns (c + 1) perns);
          (netns * 1_000_000) + c
        end
      in
      if race then Var.write ctx t.gen_inflight 0;
      if busy <> 0 && busy <> netns + 1 then c + race_gap else c)
