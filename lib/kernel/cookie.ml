(* Socket cookies (paper, bug #6). Cookies are assigned lazily from a
   counter on first request; the buggy kernel draws every namespace's
   cookies from one global counter, so a container can observe — and
   perturb — the allocation activity of its neighbours. *)

open Maps

let fn_sock_gen_cookie = Kfun.register "sock_gen_cookie"

type t = {
  next_cookie : int Var.t;                 (* buggy kernel: global *)
  next_cookie_perns : int Int_map.t Var.t; (* fixed kernel: per-ns *)
  config : Config.t;
}

let init heap config =
  {
    next_cookie = Var.alloc heap ~name:"sock.cookie_counter" 1;
    next_cookie_perns =
      Var.alloc heap ~name:"sock.cookie_counter_perns" ~width:16 Int_map.empty;
    config;
  }

let generate ctx t ~netns =
  Kfun.call ctx fn_sock_gen_cookie (fun () ->
      if Config.has t.config Bugs.B6_cookie then begin
        let c = Var.read ctx t.next_cookie in
        Var.write ctx t.next_cookie (c + 1);
        c
      end
      else begin
        let perns = Var.read ctx t.next_cookie_perns in
        let c = Option.value ~default:1 (Int_map.find_opt netns perns) in
        Var.write ctx t.next_cookie_perns (Int_map.add netns (c + 1) perns);
        (netns * 1_000_000) + c
      end)
