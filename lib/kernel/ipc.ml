(* System V message queues, keyed by IPC namespace — correctly isolated
   in the releases we model (the historic msgctl PID-leak of v4.17 is
   discussed in the paper's background but predates its bug table).
   Serves both as realistic syscall surface and as a negative control. *)

open Maps

let fn_msgget = Kfun.register "ksys_msgget"
let fn_msgsnd = Kfun.register "do_msgsnd"
let fn_msgrcv = Kfun.register "do_msgrcv"
let fn_msgctl = Kfun.register "ksys_msgctl"

type queue = {
  qid : int;
  ipcns : int;
  key : int;
  messages : string list;           (* oldest first *)
  owner_pid : int;
}

type t = {
  queues : queue Int_map.t Var.t;   (* qid -> queue *)
  next_qid : int Var.t;
}

let init heap =
  {
    queues = Var.alloc heap ~name:"ipc.msg_queues" ~width:64 Int_map.empty;
    next_qid = Var.alloc heap ~name:"ipc.next_qid" 1;
  }

(* Get or create the queue with [key] in [ipcns]. *)
let msgget ctx t ~ipcns ~key ~pid =
  Kfun.call ctx fn_msgget (fun () ->
      let queues = Var.read ctx t.queues in
      let existing =
        Int_map.fold
          (fun _ q acc ->
            if q.ipcns = ipcns && q.key = key then Some q else acc)
          queues None
      in
      match existing with
      | Some q -> q.qid
      | None ->
        let qid = Var.read ctx t.next_qid in
        Var.write ctx t.next_qid (qid + 1);
        let q = { qid; ipcns; key; messages = []; owner_pid = pid } in
        Var.write ctx t.queues (Int_map.add qid q queues);
        qid)

let lookup ctx t ~ipcns ~qid =
  let queues = Var.read ctx t.queues in
  match Int_map.find_opt qid queues with
  | Some q when q.ipcns = ipcns -> Some q
  | Some _ | None -> None

let msgsnd ctx t ~ipcns ~qid text =
  Kfun.call ctx fn_msgsnd (fun () ->
      match lookup ctx t ~ipcns ~qid with
      | None -> Error Errno.EINVAL
      | Some q ->
        let q = { q with messages = q.messages @ [ text ] } in
        Var.write ctx t.queues (Int_map.add qid q (Var.read ctx t.queues));
        Ok ())

let msgrcv ctx t ~ipcns ~qid =
  Kfun.call ctx fn_msgrcv (fun () ->
      match lookup ctx t ~ipcns ~qid with
      | None -> Error Errno.EINVAL
      | Some q -> (
        match q.messages with
        | [] -> Error Errno.ENOENT
        | msg :: rest ->
          let q = { q with messages = rest } in
          Var.write ctx t.queues (Int_map.add qid q (Var.read ctx t.queues));
          Ok msg))

let msgctl_stat ctx t ~ipcns ~qid =
  Kfun.call ctx fn_msgctl (fun () ->
      match lookup ctx t ~ipcns ~qid with
      | None -> Error Errno.EINVAL
      | Some q ->
        Ok
          (Printf.sprintf "key=%d qnum=%d lspid=%d" q.key
             (List.length q.messages) q.owner_pid))
