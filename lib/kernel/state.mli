(** The whole model kernel: configuration, tracing context, heap and
    every subsystem. {!boot} builds a kernel; {!snapshot}/{!restore}
    give the VM-snapshot semantics the executor relies on (paper,
    section 4.2): every test case execution starts from a bit-identical
    machine state. *)

type t = {
  config : Config.t;
  fault : Fault.t;                (** the fault-injection plane *)
  heap : Heap.t;
  ctx : Ctx.t;
  clock : Clock.t;
  rng : Krng.t;
  seq : Seqfile.t;
  slab : Slab.t;
  devid : Devid.t;
  procs : Proctab.t;
  socks : Socktab.t;
  packet : Packet.t;
  flowlabel : Flowlabel.t;
  rds : Rds.t;
  sctp : Sctp.t;
  cookie : Cookie.t;
  protomem : Protomem.t;
  conntrack : Conntrack.t;
  uevent : Uevent.t;
  ipvs : Ipvs.t;
  crypto : Crypto.t;
  prio : Prio.t;
  uts : Uts.t;
  ipc : Ipc.t;
  mnt : Mount_ns.t;
  tokens : Tokentab.t;
  timens : Timens.t;
  procfs : Procfs.t;
}

type snapshot

val boot : ?fault:Fault.t -> Config.t -> t
(** Boot a kernel; [fault] (default {!Fault.none}) is the fault plane
    consulted at boot, restore and every syscall.
    @raise Fault.Boot_failed if a boot failure is armed. *)

val snapshot : t -> snapshot

val restore : ?full:bool -> t -> snapshot -> unit
(** Restore the heap to [snap] — incrementally (dirty cells only) when
    the heap already matches the snapshot, fully otherwise or when
    [~full:true]; see {!Heap.restore}.
    @raise Fault.Snapshot_corrupt if snapshot corruption is armed.
    @raise Invalid_argument if [snap] came from a different kernel. *)

val spawn_container : ?host:bool -> ?uid:int -> t -> int
(** Spawn a container: a process in fresh instances of every namespace
    kind, or in the initial namespaces when [host] (the setup known
    bug E needs for its sender). Returns the pid. *)

val now : t -> int
