(** Protocol accounting: sockets-in-use and protocol memory counters,
    surfaced through /proc/net/sockstat and /proc/net/protocols.

    Counters are per (netns, protocol); the bugs are in the display
    paths, which aggregate across namespaces: bug #5 (sockstat's TCP
    inuse), bug #8 (sockstat's mem) and bug #9 (protocols' memory
    column, the same state behind a second interface). *)

type t

val init : Heap.t -> Config.t -> t

val inuse_add : Ctx.t -> t -> netns:int -> delta:int -> unit
val memory_add : Ctx.t -> t -> netns:int -> pages:int -> unit

val sockstat_show : Ctx.t -> t -> cur:int -> string list
val protocols_show : Ctx.t -> t -> cur:int -> string list
