(* The catalogue of functional interference bugs modelled in the kernel.
   Each is a faithful miniature of the logic error behind a bug from the
   paper's evaluation: Table 2 (new bugs #1-#9 in Linux 5.13) and Table 3
   (known bugs A-E, plus the two documented bugs that functional
   interference testing cannot detect, modelled as F and G). A bug being
   "present" selects the buggy code path in the corresponding subsystem;
   "absent" selects the fixed path. *)

type id =
  | B1_ptype_leak              (* /proc/net/ptype shows foreign packet sockets *)
  | B2_flowlabel_send          (* exclusive flow label state global: send path *)
  | B3_rds_bind                (* RDS bind table keyed without netns *)
  | B4_flowlabel_connect       (* exclusive flow label state global: connect path *)
  | B5_sockstat_tcp            (* sockstat TCP inuse counter global *)
  | B6_cookie                  (* socket cookie counter global *)
  | B7_sctp_assoc              (* SCTP association id space global *)
  | B8_protomem_sockstat       (* protocol memory counter global, via sockstat *)
  | B9_protomem_protocols      (* protocol memory counter global, via protocols *)
  | KA_prio_user               (* setpriority(PRIO_USER) crosses user namespaces *)
  | KB_uevent                  (* queue uevents broadcast to all net namespaces *)
  | KC_ipvs                    (* /proc/net/ip_vs shows foreign IPVS services *)
  | KD_conntrack_max           (* nf_conntrack_max sysctl global *)
  | KE_iouring_mount           (* io_uring resolves paths in the host mount ns *)
  | KF_conntrack_dump          (* conntrack dump shows foreign entries; resource
                                  is inherently non-deterministic, undetectable *)
  | KG_sockdiag_foreign        (* sock_diag shows foreign sockets; requires a
                                  runtime resource id, undetectable *)
  | XT_timens_offset           (* extension: time-namespace clock offset kept
                                  global; invisible to plain functional
                                  interference testing, caught by the
                                  bounds-based detector *)
  | RW1_protomem_inflight      (* race window: in-flight protocol-memory
                                  charge published globally during
                                  proto_memory_allocated_add and rolled back
                                  before return; sockstat readers racing the
                                  window see the transient charge *)
  | RW2_cookie_window          (* race window: global allocation-in-progress
                                  marker around sock_gen_cookie; a concurrent
                                  allocator skips a collision-avoidance gap *)
  | RW3_seqfile_busy           (* race window: seq_file renderer publishes a
                                  global busy marker; a reader racing a
                                  foreign render emits a truncation notice *)

let new_bugs =
  [ B1_ptype_leak; B2_flowlabel_send; B3_rds_bind; B4_flowlabel_connect;
    B5_sockstat_tcp; B6_cookie; B7_sctp_assoc; B8_protomem_sockstat;
    B9_protomem_protocols ]

let known_bugs =
  [ KA_prio_user; KB_uevent; KC_ipvs; KD_conntrack_max; KE_iouring_mount;
    KF_conntrack_dump; KG_sockdiag_foreign ]

let extension_bugs = [ XT_timens_offset ]

(* Race-window bugs: steady state is restored before the buggy syscall
   returns, so no sequential sender-then-receiver order can observe
   them — only an interleaved schedule landing inside the window can
   (ROADMAP: interleaving exploration). They live in their own pseudo
   release "5.13-rw" so [for_version "5.13"] — and with it every
   default profile, summary and golden test — is unchanged. *)
let race_bugs = [ RW1_protomem_inflight; RW2_cookie_window; RW3_seqfile_busy ]

let all = new_bugs @ known_bugs @ extension_bugs @ race_bugs

let to_string = function
  | B1_ptype_leak -> "bug#1-ptype-leak"
  | B2_flowlabel_send -> "bug#2-flowlabel-send"
  | B3_rds_bind -> "bug#3-rds-bind"
  | B4_flowlabel_connect -> "bug#4-flowlabel-connect"
  | B5_sockstat_tcp -> "bug#5-sockstat-tcp"
  | B6_cookie -> "bug#6-socket-cookie"
  | B7_sctp_assoc -> "bug#7-sctp-assoc"
  | B8_protomem_sockstat -> "bug#8-protomem-sockstat"
  | B9_protomem_protocols -> "bug#9-protomem-protocols"
  | KA_prio_user -> "known-A-prio-user"
  | KB_uevent -> "known-B-uevent"
  | KC_ipvs -> "known-C-ipvs"
  | KD_conntrack_max -> "known-D-conntrack-max"
  | KE_iouring_mount -> "known-E-iouring-mount"
  | KF_conntrack_dump -> "known-F-conntrack-dump"
  | KG_sockdiag_foreign -> "known-G-sockdiag"
  | XT_timens_offset -> "ext-timens-offset"
  | RW1_protomem_inflight -> "race#1-protomem-inflight"
  | RW2_cookie_window -> "race#2-cookie-window"
  | RW3_seqfile_busy -> "race#3-seqfile-busy"

let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp ppf t = Fmt.string ppf (to_string t)

(* The kernel release in which each known bug lives (Table 3); new bugs
   are all present in 5.13, the release the paper tested. *)
let known_bug_version = function
  | KA_prio_user -> "4.4"
  | KB_uevent -> "3.14"
  | KC_ipvs -> "4.15"
  | KD_conntrack_max -> "5.13"
  | KE_iouring_mount -> "5.6"
  | KF_conntrack_dump -> "4.15"
  | KG_sockdiag_foreign -> "4.10"
  | XT_timens_offset -> "5.13"
  | RW1_protomem_inflight | RW2_cookie_window | RW3_seqfile_busy -> "5.13-rw"
  | B1_ptype_leak | B2_flowlabel_send | B3_rds_bind | B4_flowlabel_connect
  | B5_sockstat_tcp | B6_cookie | B7_sctp_assoc | B8_protomem_sockstat
  | B9_protomem_protocols ->
    "5.13"

module Bug_set = Set.Make (struct
  type nonrec t = id

  let compare = compare
end)

type set = Bug_set.t

let empty = Bug_set.empty
let of_list = Bug_set.of_list
let to_list = Bug_set.elements
let present set id = Bug_set.mem id set
let fix set id = Bug_set.remove id set
let inject set id = Bug_set.add id set

(* The bug population of a given kernel release: every bug whose home
   release matches. KD (found in 5.13) coexists with the nine new bugs. *)
let for_version version =
  let matching = List.filter (fun b -> String.equal (known_bug_version b) version) all in
  of_list matching
