(* System call results: return value, errno, and a decoded out-payload
   (the data strace would render: file contents, stat buffers, received
   messages). The trace layer turns these into abstract syntax trees. *)

type stat = {
  inode : int;
  dev_minor : int;
  size : int;
  mtime : int;
}

type payload =
  | P_none
  | P_str of string
  | P_lines of string list
  | P_stat of stat

type t = {
  ret : int;
  err : Errno.t option;
  out : payload;
}

let ok ?(out = P_none) ret = { ret; err = None; out }
let error err = { ret = -Errno.to_int err; err = Some err; out = P_none }

let is_error t = Option.is_some t.err

let pp_payload ppf = function
  | P_none -> ()
  | P_str s -> Fmt.pf ppf " out=%S" s
  | P_lines ls ->
    Fmt.pf ppf " out=[%a]" (Fmt.list ~sep:(Fmt.any "; ") (fun p s -> Fmt.pf p "%S" s)) ls
  | P_stat st ->
    Fmt.pf ppf " stat{ino=%d dev=%d size=%d mtime=%d}" st.inode st.dev_minor
      st.size st.mtime

let pp ppf t =
  match t.err with
  | Some e -> Fmt.pf ppf "-1 %a" Errno.pp e
  | None -> Fmt.pf ppf "%d%a" t.ret pp_payload t.out
