(* The kernel "heap": a registry of traced shared variables with
   synthetic addresses and whole-heap snapshot/restore — the model
   equivalent of a VM snapshot (paper, section 4.2). Each registered cell
   knows how to capture and restore its own contents; variables hold
   immutable values, so a snapshot is an array of restore thunks indexed
   by cell id.

   Restore is the hottest operation in a campaign (2 + reruns per test
   case), so it is incremental in the style of QEMU dirty-page tracking:
   the heap remembers which snapshot its cells last matched
   ([last_restored]) and which cells were written since ([dirty]).
   Restoring that same snapshot again replays only the dirty cells;
   restoring any other snapshot — or passing [~full:true] — replays the
   whole thunk array. [Var] write paths call {!mark_dirty} behind a
   single branch, which is what keeps the bookkeeping off the read path
   entirely.

   Heaps and snapshots carry ids so that restoring a snapshot into a
   different kernel's heap is an error instead of a silent cross-kernel
   state splice. *)

module Metrics = Kit_obs.Metrics

(* Registry-backed visibility for `kit stats`: how many cells restore
   actually replayed vs what a full restore would have. Interned eagerly
   at module load — a [Lazy] here would race under domains. *)
let m_cells_restored = Metrics.counter Metrics.default "heap.cells_restored"
let m_cells_total = Metrics.counter Metrics.default "heap.cells_total"

type cell = {
  capture : unit -> unit -> unit;   (* capture now, apply later *)
}

(* Per-variable registration metadata, in boot order. Boot is
   deterministic for a given config, so this doubles as the coverage
   universe: the ledger (Obs.Coverage) maps each synthetic base address
   back to the variable it belongs to. *)
type varinfo = {
  v_name : string;
  v_addr : int;                     (* base address *)
  v_width : int;
  v_instrumented : bool;
}

type t = {
  id : int;                         (* process-unique heap identity *)
  mutable next_addr : int;
  mutable cells : cell array;       (* indexed by cell id; n_cells used *)
  mutable n_cells : int;
  mutable dirty : bool array;       (* same indexing as [cells] *)
  mutable dirty_ids : int list;     (* ids with [dirty.(id)] set *)
  mutable rev_vars : varinfo list;  (* registration order, reversed *)
  mutable last_restored : int;      (* snap id the cells match, or -1 *)
  mutable next_snap : int;          (* per-heap snapshot id source *)
  mutable restored : int;           (* cumulative cells replayed *)
  mutable total : int;              (* cumulative full-restore cost *)
}

type snapshot = {
  s_heap : int;                     (* owning heap's [id] *)
  s_id : int;
  thunks : (unit -> unit) array;
}

let next_heap_id = Atomic.make 0

let dummy_cell = { capture = (fun () () -> ()) }

let create () =
  { id = Atomic.fetch_and_add next_heap_id 1;
    next_addr = 0x1000;
    cells = Array.make 64 dummy_cell;
    n_cells = 0;
    dirty = Array.make 64 false;
    dirty_ids = [];
    rev_vars = [];
    last_restored = -1;
    next_snap = 0;
    restored = 0;
    total = 0 }

(* Reserve [width] bytes of synthetic address space and register the
   cell's capture function. Returns the base address and the cell id the
   variable must pass back to [mark_dirty] on writes. *)
let register t ~name ~width ~instrumented capture =
  let addr = t.next_addr in
  t.next_addr <- t.next_addr + max 1 width;
  let id = t.n_cells in
  if id = Array.length t.cells then begin
    let cells = Array.make (2 * id) dummy_cell in
    Array.blit t.cells 0 cells 0 id;
    t.cells <- cells;
    let dirty = Array.make (2 * id) false in
    Array.blit t.dirty 0 dirty 0 id;
    t.dirty <- dirty
  end;
  t.cells.(id) <- { capture };
  t.n_cells <- id + 1;
  t.rev_vars <-
    { v_name = name; v_addr = addr; v_width = max 1 width;
      v_instrumented = instrumented }
    :: t.rev_vars;
  (addr, id)

let vars t = List.rev t.rev_vars

let mark_dirty t id =
  if not t.dirty.(id) then begin
    t.dirty.(id) <- true;
    t.dirty_ids <- id :: t.dirty_ids
  end

let clear_dirty t =
  List.iter (fun id -> t.dirty.(id) <- false) t.dirty_ids;
  t.dirty_ids <- []

(* Capturing a snapshot leaves the heap bit-identical to it, so the
   dirty set resets and the heap now "matches" the new snapshot: the
   first restore after a capture is already incremental. *)
let snapshot t =
  let thunks = Array.init t.n_cells (fun i -> t.cells.(i).capture ()) in
  let s_id = t.next_snap in
  t.next_snap <- s_id + 1;
  clear_dirty t;
  t.last_restored <- s_id;
  { s_heap = t.id; s_id; thunks }

let restore ?(full = false) t snap =
  if snap.s_heap <> t.id then
    invalid_arg "Heap.restore: snapshot belongs to a different heap";
  let n = Array.length snap.thunks in
  let replayed =
    if (not full) && t.last_restored = snap.s_id then begin
      (* Cells registered after the capture have no thunk (id >= n); a
         full restore would not touch them either, so skipping keeps the
         two paths equivalent. *)
      let replayed = ref 0 in
      List.iter
        (fun id ->
          if id < n then begin
            snap.thunks.(id) ();
            incr replayed
          end)
        t.dirty_ids;
      !replayed
    end
    else begin
      Array.iter (fun thunk -> thunk ()) snap.thunks;
      n
    end
  in
  clear_dirty t;
  t.last_restored <- snap.s_id;
  t.restored <- t.restored + replayed;
  t.total <- t.total + n;
  if Metrics.enabled Metrics.default then begin
    Metrics.add m_cells_restored replayed;
    Metrics.add m_cells_total n
  end

let cell_count t = t.n_cells

(* Cumulative (cells replayed, cells a full restore would have replayed)
   over every restore of this heap — the incrementality win is
   [1 - restored/total]. *)
let restore_stats t = (t.restored, t.total)
