(* The kernel "heap": a registry of traced shared variables with
   synthetic addresses and whole-heap snapshot/restore — the model
   equivalent of a VM snapshot (paper, section 4.2). Each registered cell
   knows how to capture and restore its own contents; variables hold
   immutable values, so a snapshot is a list of restore thunks. *)

type cell = {
  capture : unit -> unit -> unit;   (* capture now, apply later *)
}

type t = {
  mutable next_addr : int;
  mutable cells : cell list;
}

type snapshot = (unit -> unit) list

let create () = { next_addr = 0x1000; cells = [] }

(* Reserve [width] bytes of synthetic address space and register the
   cell's capture function. Returns the base address. *)
let register t ~width capture =
  let addr = t.next_addr in
  t.next_addr <- t.next_addr + max 1 width;
  t.cells <- { capture } :: t.cells;
  addr

let snapshot t = List.map (fun c -> c.capture ()) t.cells

let restore snap = List.iter (fun thunk -> thunk ()) snap

let cell_count t = List.length t.cells
