(** Virtual kernel time.

    The clock advances by a fixed quantum per syscall from a
    per-execution base offset set by the execution environment;
    re-running a receiver with different bases is how KIT exposes
    timing-dependent syscall results (paper, section 4.3.2). [jiffies]
    is instrumented but only touched from interrupt context, so its
    accesses never reach profiles — like the paper's in_task() filter. *)

type t

val tick_quantum : int

val init : Heap.t -> t

val now : t -> int
(** Current kernel time (base + elapsed ticks). *)

val uptime_ticks : t -> int

val tick : Ctx.t -> t -> unit
(** Advance by one syscall quantum and run the timer interrupt. *)

val set_base : t -> int -> unit
(** Host-side control: select this execution's boot offset. *)

val base : t -> int
