(* The slab allocator's object counter, touched by [kmalloc] from many
   subsystems. Legitimately global state (not namespace-protected) that
   nevertheless flows across containers: the source of the
   "under investigation" report groups via /proc/slabinfo, and of deep
   call-stack diversity for the DF-ST-2 clustering strategy (the access
   always happens in slab_alloc, called from kmalloc, called from a
   subsystem-specific function). *)

let fn_kmalloc = Kfun.register "kmalloc"
let fn_slab_alloc = Kfun.register "slab_alloc"

type t = {
  objs : int Var.t;
}

let init heap = { objs = Var.alloc heap ~name:"slab.objs" 0 }

(* Allocate [n] objects on behalf of the calling subsystem. *)
let kmalloc ctx t n =
  Kfun.call ctx fn_kmalloc (fun () ->
      Kfun.call ctx fn_slab_alloc (fun () ->
          let cur = Var.read ctx t.objs in
          Var.write ctx t.objs (cur + n)))

let count ctx t = Var.read ctx t.objs
