(* Netfilter connection tracking and the sysctl surface.

   - Known bug D (CVE-2021-38209): nf_conntrack_max is a single global
     variable; writing the sysctl from any net namespace changes the
     limit for every container.
   - Known bug F: /proc/net/nf_conntrack dumps entries of *all*
     namespaces — but every dump line carries a time-derived expiry and
     transient timer-driven entries, so the resource is non-deterministic
     even without interference; functional interference testing cannot
     flag it (paper, section 6.2).
   - somaxconn models a sysctl the specification correctly marks
     unprotected: divergences on it feed the resource filter's removals
     in Table 5. *)

open Maps

let fn_ct_sysctl_read = Kfun.register "nf_conntrack_sysctl_read"
let fn_ct_sysctl_write = Kfun.register "nf_conntrack_sysctl_write"
let fn_ct_add = Kfun.register "nf_conntrack_insert"
let fn_ct_seq_show = Kfun.register "ct_seq_show"
let fn_somaxconn_read = Kfun.register "somaxconn_sysctl_read"
let fn_somaxconn_write = Kfun.register "somaxconn_sysctl_write"

type entry = {
  netns : int;
  port : int;
  created : int;                   (* kernel time at insertion *)
}

type t = {
  max_global : int Var.t;
  max_perns : int Int_map.t Var.t;
  entries : entry list Var.t;
  somaxconn : int Var.t;
  config : Config.t;
}

let default_max = 65536

let init heap config =
  {
    max_global = Var.alloc heap ~name:"nf.conntrack_max" ~width:4 default_max;
    max_perns = Var.alloc heap ~name:"nf.conntrack_max_perns" ~width:16 Int_map.empty;
    entries = Var.alloc heap ~name:"nf.conntrack_hash" ~width:64 [];
    somaxconn = Var.alloc heap ~name:"net.somaxconn" ~width:4 4096;
    config;
  }

let max_read ctx t ~netns =
  Kfun.call ctx fn_ct_sysctl_read (fun () ->
      if Config.has t.config Bugs.KD_conntrack_max then
        Var.read ctx t.max_global
      else
        let perns = Var.read ctx t.max_perns in
        match Int_map.find_opt netns perns with
        | Some v -> v
        | None -> Var.read ctx t.max_global)

let max_write ctx t ~netns value =
  Kfun.call ctx fn_ct_sysctl_write (fun () ->
      if Config.has t.config Bugs.KD_conntrack_max then
        Var.write ctx t.max_global value
      else
        Var.write ctx t.max_perns
          (Int_map.add netns value (Var.read ctx t.max_perns)))

let somaxconn_read ctx t =
  Kfun.call ctx fn_somaxconn_read (fun () -> Var.read ctx t.somaxconn)

let somaxconn_write ctx t value =
  Kfun.call ctx fn_somaxconn_write (fun () -> Var.write ctx t.somaxconn value)

let add ctx t ~netns ~port ~now =
  Kfun.call ctx fn_ct_add (fun () ->
      let entry = { netns; port; created = now } in
      Var.write ctx t.entries (entry :: Var.read ctx t.entries))

(* /proc/net/nf_conntrack for namespace [cur] at kernel time [now]. The
   timeout column and the transient timer entry make the file content
   vary across re-executions regardless of any sender. *)
let seq_show ctx t ~cur ~now =
  Kfun.call ctx fn_ct_seq_show (fun () ->
      let show_foreign = Config.has t.config Bugs.KF_conntrack_dump in
      let visible e = show_foreign || e.netns = cur in
      let line e =
        Printf.sprintf "ipv4 tcp dport=%d timeout=%d" e.port
          (300 - ((now - e.created) / Clock.tick_quantum))
      in
      let entries = List.filter visible (Var.read ctx t.entries) in
      let transient =
        (* Timer-driven bookkeeping entries come and go with time; [now]
           itself (not the tick count) decides presence, so any clock
           base shift perturbs the file's line count. *)
        if now mod 3 <> 0 then
          [ Printf.sprintf "ipv4 tcp dport=0 timeout=%d gc" (now mod 97) ]
        else []
      in
      transient @ List.rev_map line entries)
