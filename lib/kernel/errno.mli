(** Error numbers returned by the model kernel — the subset of Linux
    errno values the modelled syscalls can produce. *)

type t =
  | EPERM
  | ENOENT
  | EBADF
  | EEXIST
  | EINVAL
  | ENFILE
  | ENOSYS
  | EADDRINUSE
  | EOPNOTSUPP
  | EACCES

val to_int : t -> int
val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
