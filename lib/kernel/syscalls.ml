(* The system call layer: argument validation and dispatch into the
   subsystems, bracketed by per-syscall kernel functions so profiles see
   realistic call stacks. Arguments arrive with resource references
   already resolved by the interpreter (only Int/Str remain). *)

module Sysno = Kit_abi.Sysno
module Value = Kit_abi.Value
module Consts = Kit_abi.Consts
module Metrics = Kit_obs.Metrics

let fn_syscall_entry = Kfun.register "do_syscall_64"

(* Per-sysno dispatch counters in the global default registry. Interned
   once at load; the hot path pays one enabled-flag check (the default
   registry starts disabled) plus an O(1) table lookup when counting. *)
let dispatch_counter =
  let table = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.add table s
        (Metrics.counter Metrics.default ("syscall." ^ Sysno.to_string s)))
    Sysno.all;
  fun s -> Hashtbl.find table s
let fn_sockfd_lookup = Kfun.register "sockfd_lookup"
let fn_fdget = Kfun.register "fdget"

let fn_of_sysno =
  let table = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.add table s (Kfun.register ("sys_" ^ Sysno.to_string s)))
    Sysno.all;
  fun s ->
    match Hashtbl.find_opt table s with
    | Some fn -> fn
    | None -> fn_syscall_entry

let int_arg args i =
  match List.nth_opt args i with
  | Some (Value.Int n) -> Some n
  | Some (Value.Str _ | Value.Ref _) | None -> None

let str_arg args i =
  match List.nth_opt args i with
  | Some (Value.Str s) -> Some s
  | Some (Value.Int _ | Value.Ref _) | None -> None

let ( let* ) o f = match o with Some v -> f v | None -> Sysret.error Errno.EINVAL

(* Look up the socket behind [fd] for [pid]. *)
let sock_of_fd k ~pid fd =
  let ctx = k.State.ctx in
  Kfun.call ctx fn_sockfd_lookup (fun () ->
      match Proctab.fd_lookup ctx k.State.procs ~pid fd with
      | Some (Proctab.Fd_sock sid) -> Socktab.find ctx k.State.socks sid
      | Some (Proctab.Fd_file _) | None -> None)

let file_of_fd k ~pid fd =
  let ctx = k.State.ctx in
  Kfun.call ctx fn_fdget (fun () ->
      match Proctab.fd_lookup ctx k.State.procs ~pid fd with
      | Some (Proctab.Fd_file f) -> Some f
      | Some (Proctab.Fd_sock _) | None -> None)

let of_result = function
  | Ok () -> Sysret.ok 0
  | Error e -> Sysret.error e

(* --- individual syscalls --------------------------------------------- *)

let sys_unshare k ~pid args =
  let* flags = int_arg args 0 in
  match Proctab.unshare k.State.ctx k.State.procs ~pid ~flags with
  | Some _ -> Sysret.ok 0
  | None -> Sysret.error Errno.EINVAL

let sys_socket k ~pid args =
  let ctx = k.State.ctx in
  let* dom = int_arg args 0 in
  if not (List.mem dom Consts.domains) then Sysret.error Errno.EINVAL
  else begin
    let proc = Proctab.find_exn ctx k.State.procs pid in
    let netns = proc.Proctab.ns.Namespace.net in
    let userns = proc.Proctab.ns.Namespace.user in
    Slab.kmalloc ctx k.State.slab 1;
    let sock = Socktab.create ctx k.State.socks ~dom ~netns ~userns ~owner:pid in
    if dom = Consts.dom_packet then
      Packet.register_socket ctx k.State.packet ~netns ~sock:sock.Socktab.id
        ~proto:0;
    if dom = Consts.dom_tcp then
      Protomem.inuse_add ctx k.State.protomem ~netns ~delta:1;
    if dom = Consts.dom_uevent then Uevent.open_queue ctx k.State.uevent ~netns;
    let fd = Proctab.fd_install ctx k.State.procs ~pid (Proctab.Fd_sock sock.Socktab.id) in
    Sysret.ok fd
  end

let sys_close k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  match Proctab.fd_lookup ctx k.State.procs ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some (Proctab.Fd_file _) ->
    ignore (Proctab.fd_close ctx k.State.procs ~pid fd);
    Sysret.ok 0
  | Some (Proctab.Fd_sock sid) ->
    (match Socktab.find ctx k.State.socks sid with
    | None -> ()
    | Some sock ->
      if sock.Socktab.dom = Consts.dom_packet then
        Packet.unregister_socket ctx k.State.packet ~sock:sid;
      if sock.Socktab.dom = Consts.dom_tcp then
        Protomem.inuse_add ctx k.State.protomem ~netns:sock.Socktab.netns
          ~delta:(-1);
      Socktab.remove ctx k.State.socks sid);
    ignore (Proctab.fd_close ctx k.State.procs ~pid fd);
    Sysret.ok 0

let sys_bind k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  let* port = int_arg args 1 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom = Consts.dom_rds then
      match
        Rds.bind ctx k.State.rds ~netns:sock.Socktab.netns ~port
          ~sock:sock.Socktab.id
      with
      | Error e -> Sysret.error e
      | Ok () ->
        Socktab.update ctx k.State.socks { sock with Socktab.bound = Some port };
        Sysret.ok 0
    else begin
      Socktab.update ctx k.State.socks { sock with Socktab.bound = Some port };
      Sysret.ok 0
    end

let sys_connect k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  let* _port = int_arg args 1 in
  let label = Option.value ~default:0 (int_arg args 2) in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom = Consts.dom_inet6 then
      match
        Flowlabel.check_connect ctx k.State.flowlabel
          ~netns:sock.Socktab.netns ~label
      with
      | Error e -> Sysret.error e
      | Ok () -> Sysret.ok 0
    else Sysret.ok 0

let sys_send k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  let* nbytes = int_arg args 1 in
  let label = Option.value ~default:0 (int_arg args 2) in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom = Consts.dom_inet6 then
      match
        Flowlabel.check_send ctx k.State.flowlabel ~netns:sock.Socktab.netns
          ~label
      with
      | Error e -> Sysret.error e
      | Ok () -> Sysret.ok nbytes
    else Sysret.ok nbytes

let sys_flowlabel_request k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  let* label = int_arg args 1 in
  let* flags = int_arg args 2 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom <> Consts.dom_inet6 then Sysret.error Errno.EOPNOTSUPP
    else
      of_result
        (Flowlabel.create ctx k.State.flowlabel ~netns:sock.Socktab.netns
           ~label
           ~exclusive:(flags land Consts.fl_excl <> 0))

let sys_get_cookie k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock -> (
    match sock.Socktab.cookie with
    | Some c -> Sysret.ok c
    | None ->
      let c = Cookie.generate ctx k.State.cookie ~netns:sock.Socktab.netns in
      Socktab.update ctx k.State.socks { sock with Socktab.cookie = Some c };
      Sysret.ok c)

let sys_sctp_assoc k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom <> Consts.dom_sctp then Sysret.error Errno.EOPNOTSUPP
    else (
      match sock.Socktab.assoc with
      | Some a -> Sysret.ok a
      | None ->
        let a = Sctp.alloc ctx k.State.sctp ~netns:sock.Socktab.netns in
        Socktab.update ctx k.State.socks { sock with Socktab.assoc = Some a };
        Sysret.ok a)

let sys_alloc_protomem k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  let* nbytes = int_arg args 1 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    let inet =
      List.mem sock.Socktab.dom
        [ Consts.dom_tcp; Consts.dom_udp; Consts.dom_sctp; Consts.dom_inet6 ]
    in
    if not inet then Sysret.error Errno.EOPNOTSUPP
    else begin
      Slab.kmalloc ctx k.State.slab 1;
      Protomem.memory_add ctx k.State.protomem ~netns:sock.Socktab.netns
        ~pages:(max 1 (nbytes / 16));
      Sysret.ok 0
    end

let sys_open k ~pid args =
  let ctx = k.State.ctx in
  let* path = str_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  if Procfs.is_proc_path path then begin
    (* Only paths procfs can render exist. *)
    let netns = proc.Proctab.ns.Namespace.net in
    match Procfs.render ctx k.State.procfs ~netns ~now:(State.now k) path with
    | None -> Sysret.error Errno.ENOENT
    | Some _probe ->
      Slab.kmalloc ctx k.State.slab 1;
      let file = Procfs.open_file ctx k.State.procfs k.State.devid ~path in
      let fd = Proctab.fd_install ctx k.State.procs ~pid (Proctab.Fd_file file) in
      Sysret.ok fd
  end
  else
    match Mount_ns.lookup ctx k.State.mnt ~mntns:proc.Proctab.ns.Namespace.mount ~path with
    | None -> Sysret.error Errno.ENOENT
    | Some f ->
      let file =
        { Proctab.path; inode = f.Mount_ns.inode;
          dev_minor = f.Mount_ns.dev_minor }
      in
      let fd = Proctab.fd_install ctx k.State.procs ~pid (Proctab.Fd_file file) in
      Sysret.ok fd

let sys_read k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  match file_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some file ->
    let proc = Proctab.find_exn ctx k.State.procs pid in
    if Procfs.is_proc_path file.Proctab.path then
      match
        Procfs.render ctx k.State.procfs ~netns:proc.Proctab.ns.Namespace.net
          ~now:(State.now k) file.Proctab.path
      with
      | None -> Sysret.error Errno.ENOENT
      | Some content ->
        Sysret.ok (String.length content) ~out:(Sysret.P_str content)
    else (
      match
        Mount_ns.lookup ctx k.State.mnt
          ~mntns:proc.Proctab.ns.Namespace.mount ~path:file.Proctab.path
      with
      | None -> Sysret.error Errno.ENOENT
      | Some f ->
        Sysret.ok (String.length f.Mount_ns.content)
          ~out:(Sysret.P_str f.Mount_ns.content))

let sys_fstat k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  match Proctab.fd_lookup ctx k.State.procs ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some (Proctab.Fd_sock _) ->
    Sysret.ok 0
      ~out:
        (Sysret.P_stat
           { Sysret.inode = 0; dev_minor = 0; size = 0; mtime = State.now k })
  | Some (Proctab.Fd_file file) ->
    if Procfs.is_proc_path file.Proctab.path then
      (* procfs: size 0, mtime = time of stat, globally allocated minor. *)
      Sysret.ok 0
        ~out:
          (Sysret.P_stat
             { Sysret.inode = file.Proctab.inode;
               dev_minor = file.Proctab.dev_minor; size = 0;
               mtime = State.now k })
    else
      let proc = Proctab.find_exn ctx k.State.procs pid in
      (match
         Mount_ns.lookup ctx k.State.mnt
           ~mntns:proc.Proctab.ns.Namespace.mount ~path:file.Proctab.path
       with
      | None -> Sysret.error Errno.ENOENT
      | Some f ->
        Sysret.ok 0
          ~out:
            (Sysret.P_stat
               { Sysret.inode = f.Mount_ns.inode;
                 dev_minor = f.Mount_ns.dev_minor;
                 size = String.length f.Mount_ns.content;
                 mtime = f.Mount_ns.created }))

let sys_creat k ~pid args =
  let ctx = k.State.ctx in
  let* path = str_arg args 0 in
  if Procfs.is_proc_path path then Sysret.error Errno.EACCES
  else begin
    let proc = Proctab.find_exn ctx k.State.procs pid in
    let f =
      Mount_ns.creat ctx k.State.mnt k.State.devid
        ~mntns:proc.Proctab.ns.Namespace.mount ~path ~now:(State.now k)
    in
    let file =
      { Proctab.path; inode = f.Mount_ns.inode; dev_minor = f.Mount_ns.dev_minor }
    in
    let fd = Proctab.fd_install ctx k.State.procs ~pid (Proctab.Fd_file file) in
    Sysret.ok fd
  end

let sys_io_uring_read k ~pid args =
  let ctx = k.State.ctx in
  let* path = str_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  match
    Mount_ns.lookup_io_uring ctx k.State.mnt
      ~mntns:proc.Proctab.ns.Namespace.mount ~path
  with
  | None -> Sysret.error Errno.ENOENT
  | Some f ->
    Sysret.ok (String.length f.Mount_ns.content)
      ~out:(Sysret.P_str f.Mount_ns.content)

let sys_msgget k ~pid args =
  let ctx = k.State.ctx in
  let* key = int_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  Slab.kmalloc ctx k.State.slab 1;
  let qid =
    Ipc.msgget ctx k.State.ipc ~ipcns:proc.Proctab.ns.Namespace.ipc ~key ~pid
  in
  Sysret.ok qid

let with_ipcns k ~pid f =
  let proc = Proctab.find_exn k.State.ctx k.State.procs pid in
  f proc.Proctab.ns.Namespace.ipc

let sys_msgsnd k ~pid args =
  let* qid = int_arg args 0 in
  let* text = str_arg args 1 in
  with_ipcns k ~pid (fun ipcns ->
      of_result (Ipc.msgsnd k.State.ctx k.State.ipc ~ipcns ~qid text))

let sys_msgrcv k ~pid args =
  let* qid = int_arg args 0 in
  with_ipcns k ~pid (fun ipcns ->
      match Ipc.msgrcv k.State.ctx k.State.ipc ~ipcns ~qid with
      | Error e -> Sysret.error e
      | Ok msg -> Sysret.ok (String.length msg) ~out:(Sysret.P_str msg))

let sys_msgctl_stat k ~pid args =
  let* qid = int_arg args 0 in
  with_ipcns k ~pid (fun ipcns ->
      match Ipc.msgctl_stat k.State.ctx k.State.ipc ~ipcns ~qid with
      | Error e -> Sysret.error e
      | Ok info -> Sysret.ok 0 ~out:(Sysret.P_str info))

let sys_setpriority k ~pid args =
  let ctx = k.State.ctx in
  let* which = int_arg args 0 in
  let* who = int_arg args 1 in
  let* nice = int_arg args 2 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  if which = Consts.prio_user then begin
    Prio.set_user ctx k.State.prio ~userns:proc.Proctab.ns.Namespace.user
      ~uid:who nice;
    Sysret.ok 0
  end
  else if which = Consts.prio_process then begin
    Prio.set_process ctx k.State.prio ~pid nice;
    Sysret.ok 0
  end
  else Sysret.error Errno.EINVAL

let sys_getpriority k ~pid args =
  let ctx = k.State.ctx in
  let* which = int_arg args 0 in
  let* who = int_arg args 1 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  if which = Consts.prio_user then
    Sysret.ok
      (20
      - Prio.get_user ctx k.State.prio ~userns:proc.Proctab.ns.Namespace.user
          ~uid:who)
  else if which = Consts.prio_process then
    Sysret.ok (20 - Prio.get_process ctx k.State.prio ~pid)
  else Sysret.error Errno.EINVAL

let sys_sethostname k ~pid args =
  let ctx = k.State.ctx in
  let* name = str_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  Uts.set ctx k.State.uts ~utsns:proc.Proctab.ns.Namespace.uts name;
  Sysret.ok 0

let sys_gethostname k ~pid _args =
  let ctx = k.State.ctx in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  let name = Uts.get ctx k.State.uts ~utsns:proc.Proctab.ns.Namespace.uts in
  Sysret.ok (String.length name) ~out:(Sysret.P_str name)

let sys_netdev_create k ~pid args =
  let ctx = k.State.ctx in
  let* name = str_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  Slab.kmalloc ctx k.State.slab 2;
  of_result
    (Uevent.netdev_create ctx k.State.uevent
       ~netns:proc.Proctab.ns.Namespace.net ~name)

let sys_uevent_recv k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom <> Consts.dom_uevent then Sysret.error Errno.EOPNOTSUPP
    else
      let events = Uevent.recv ctx k.State.uevent ~netns:sock.Socktab.netns in
      Sysret.ok (List.length events) ~out:(Sysret.P_lines events)

let sys_ipvs_add_service k ~pid args =
  let ctx = k.State.ctx in
  let* port = int_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  Slab.kmalloc ctx k.State.slab 1;
  Ipvs.add ctx k.State.ipvs ~netns:proc.Proctab.ns.Namespace.net ~port;
  Sysret.ok 0

let sys_sysctl_read k ~pid args =
  let ctx = k.State.ctx in
  let* name = str_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  if String.equal name Consts.sysctl_conntrack_max then
    let v =
      Conntrack.max_read ctx k.State.conntrack
        ~netns:proc.Proctab.ns.Namespace.net
    in
    Sysret.ok v ~out:(Sysret.P_str (string_of_int v))
  else if String.equal name Consts.sysctl_somaxconn then
    let v = Conntrack.somaxconn_read ctx k.State.conntrack in
    Sysret.ok v ~out:(Sysret.P_str (string_of_int v))
  else Sysret.error Errno.ENOENT

let sys_sysctl_write k ~pid args =
  let ctx = k.State.ctx in
  let* name = str_arg args 0 in
  let* value = int_arg args 1 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  if String.equal name Consts.sysctl_conntrack_max then begin
    Conntrack.max_write ctx k.State.conntrack
      ~netns:proc.Proctab.ns.Namespace.net value;
    Sysret.ok 0
  end
  else if String.equal name Consts.sysctl_somaxconn then begin
    Conntrack.somaxconn_write ctx k.State.conntrack value;
    Sysret.ok 0
  end
  else Sysret.error Errno.ENOENT

let sys_conntrack_add k ~pid args =
  let ctx = k.State.ctx in
  let* port = int_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  Slab.kmalloc ctx k.State.slab 1;
  Conntrack.add ctx k.State.conntrack ~netns:proc.Proctab.ns.Namespace.net
    ~port ~now:(State.now k);
  Sysret.ok 0

let sys_sock_diag k ~pid args =
  let ctx = k.State.ctx in
  let* id = int_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  match Socktab.find ctx k.State.socks id with
  | None -> Sysret.error Errno.ENOENT
  | Some sock ->
    let foreign_visible = Config.has k.State.config Bugs.KG_sockdiag_foreign in
    if sock.Socktab.netns = proc.Proctab.ns.Namespace.net || foreign_visible
    then
      Sysret.ok 0
        ~out:
          (Sysret.P_str
             (Printf.sprintf "sock dom=%s bound=%s"
                (Consts.domain_name sock.Socktab.dom)
                (match sock.Socktab.bound with
                | None -> "-"
                | Some p -> string_of_int p)))
    else Sysret.error Errno.ENOENT

let sys_af_alg_bind k ~pid args =
  let ctx = k.State.ctx in
  let* fd = int_arg args 0 in
  let* name = str_arg args 1 in
  match sock_of_fd k ~pid fd with
  | None -> Sysret.error Errno.EBADF
  | Some sock ->
    if sock.Socktab.dom <> Consts.dom_alg then Sysret.error Errno.EOPNOTSUPP
    else begin
      Socktab.update ctx k.State.socks { sock with Socktab.alg = Some name };
      of_result (Crypto.register ctx k.State.crypto name)
    end

(* CLOCK_BOOTTIME semantics: kernel time plus the caller's time-namespace
   offset. *)
let sys_clock_gettime k ~pid _args =
  let ctx = k.State.ctx in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  let offset =
    Timens.get ctx k.State.timens ~timens:proc.Proctab.ns.Namespace.time
  in
  Sysret.ok (State.now k + offset)

(* Set the caller's time-namespace boot offset (in mega-ticks, so the
   shift dwarfs ordinary clock jitter). *)
let sys_clock_settime k ~pid args =
  let ctx = k.State.ctx in
  let* mega = int_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  Timens.set ctx k.State.timens ~timens:proc.Proctab.ns.Namespace.time
    (mega * 1_000_000);
  Sysret.ok 0

let sys_getpid _k ~pid _args = Sysret.ok pid

let sys_token_create k ~pid args =
  let ctx = k.State.ctx in
  ignore args;
  let proc = Proctab.find_exn ctx k.State.procs pid in
  let id =
    Tokentab.create ctx k.State.tokens ~netns:proc.Proctab.ns.Namespace.net
      ~owner:pid
  in
  Sysret.ok id

let sys_token_stat k ~pid args =
  let ctx = k.State.ctx in
  let* id = int_arg args 0 in
  let proc = Proctab.find_exn ctx k.State.procs pid in
  match
    Tokentab.stat ctx k.State.tokens ~netns:proc.Proctab.ns.Namespace.net id
  with
  | Error e -> Sysret.error e
  | Ok info -> Sysret.ok 0 ~out:(Sysret.P_str info)

(* --- dispatch --------------------------------------------------------- *)

let dispatch k ~pid sysno args =
  match sysno with
  | Sysno.Unshare -> sys_unshare k ~pid args
  | Sysno.Socket -> sys_socket k ~pid args
  | Sysno.Close -> sys_close k ~pid args
  | Sysno.Bind -> sys_bind k ~pid args
  | Sysno.Connect -> sys_connect k ~pid args
  | Sysno.Send -> sys_send k ~pid args
  | Sysno.Flowlabel_request -> sys_flowlabel_request k ~pid args
  | Sysno.Get_cookie -> sys_get_cookie k ~pid args
  | Sysno.Sctp_assoc -> sys_sctp_assoc k ~pid args
  | Sysno.Alloc_protomem -> sys_alloc_protomem k ~pid args
  | Sysno.Open -> sys_open k ~pid args
  | Sysno.Read -> sys_read k ~pid args
  | Sysno.Fstat -> sys_fstat k ~pid args
  | Sysno.Creat -> sys_creat k ~pid args
  | Sysno.Io_uring_read -> sys_io_uring_read k ~pid args
  | Sysno.Msgget -> sys_msgget k ~pid args
  | Sysno.Msgsnd -> sys_msgsnd k ~pid args
  | Sysno.Msgrcv -> sys_msgrcv k ~pid args
  | Sysno.Msgctl_stat -> sys_msgctl_stat k ~pid args
  | Sysno.Setpriority -> sys_setpriority k ~pid args
  | Sysno.Getpriority -> sys_getpriority k ~pid args
  | Sysno.Sethostname -> sys_sethostname k ~pid args
  | Sysno.Gethostname -> sys_gethostname k ~pid args
  | Sysno.Netdev_create -> sys_netdev_create k ~pid args
  | Sysno.Uevent_recv -> sys_uevent_recv k ~pid args
  | Sysno.Ipvs_add_service -> sys_ipvs_add_service k ~pid args
  | Sysno.Sysctl_read -> sys_sysctl_read k ~pid args
  | Sysno.Sysctl_write -> sys_sysctl_write k ~pid args
  | Sysno.Conntrack_add -> sys_conntrack_add k ~pid args
  | Sysno.Sock_diag -> sys_sock_diag k ~pid args
  | Sysno.Af_alg_bind -> sys_af_alg_bind k ~pid args
  | Sysno.Clock_gettime -> sys_clock_gettime k ~pid args
  | Sysno.Clock_settime -> sys_clock_settime k ~pid args
  | Sysno.Getpid -> sys_getpid k ~pid args
  | Sysno.Token_create -> sys_token_create k ~pid args
  | Sysno.Token_stat -> sys_token_stat k ~pid args

(* Execute one system call for [pid]: consult the fault plane (fuel and
   armed panics/hangs), enter the syscall path, dispatch, advance the
   clock by one quantum. *)
let exec k ~pid sysno args =
  if Metrics.enabled Metrics.default then Metrics.inc (dispatch_counter sysno);
  Fault.on_syscall k.State.fault sysno;
  let ctx = k.State.ctx in
  let ret =
    Kfun.call ctx fn_syscall_entry (fun () ->
        Kfun.call ctx (fn_of_sysno sysno) (fun () -> dispatch k ~pid sysno args))
  in
  Clock.tick ctx k.State.clock;
  ret
