(* Error numbers returned by the model kernel, the subset of Linux errno
   values that the modelled syscalls can produce. *)

type t =
  | EPERM
  | ENOENT
  | EBADF
  | EEXIST
  | EINVAL
  | ENFILE
  | ENOSYS
  | EADDRINUSE
  | EOPNOTSUPP
  | EACCES

let to_int = function
  | EPERM -> 1
  | ENOENT -> 2
  | EBADF -> 9
  | EEXIST -> 17
  | EINVAL -> 22
  | ENFILE -> 23
  | ENOSYS -> 38
  | EADDRINUSE -> 98
  | EOPNOTSUPP -> 95
  | EACCES -> 13

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | EBADF -> "EBADF"
  | EEXIST -> "EEXIST"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | ENOSYS -> "ENOSYS"
  | EADDRINUSE -> "EADDRINUSE"
  | EOPNOTSUPP -> "EOPNOTSUPP"
  | EACCES -> "EACCES"

let equal a b = Stdlib.compare a b = 0
let pp ppf t = Fmt.string ppf (to_string t)
