(** Packet-type handlers (net/core's ptype lists) and the
    /proc/net/ptype renderer.

    Bug #1 (paper, Figure 4): ptype_seq_show checks the namespace of
    device-bound handlers but not of socket-bound ones (dev == NULL), so
    packet sockets from other namespaces leak into the dump. *)

type entry = {
  proto : int;                    (** ETH_P_*; 0 models ETH_P_ALL *)
  dev : int option;               (** bound device id, [None] for sockets *)
  netns : int;
  sock : int;                     (** owning socket id *)
}

type t

val init : Heap.t -> Config.t -> t

val register_socket : Ctx.t -> t -> netns:int -> sock:int -> proto:int -> unit
(** Register the prot_hook of a freshly created packet socket. *)

val unregister_socket : Ctx.t -> t -> sock:int -> unit

val seq_show : Ctx.t -> t -> cur:int -> string list
(** Render /proc/net/ptype as seen from net namespace [cur]. *)
