(* Packet-type handlers (net/core's ptype lists). Creating a packet
   socket registers a packet_type entry in a *global* kernel list; the
   /proc/net/ptype renderer must filter entries by net namespace.

   Bug #1 (paper, Figure 4): ptype_seq_show checks the namespace of
   device-bound handlers but not of socket-bound handlers (dev == NULL),
   so packet sockets from other namespaces leak into the dump. *)

let fn_ptype_register = Kfun.register "dev_add_pack"
let fn_ptype_unregister = Kfun.register "dev_remove_pack"
let fn_ptype_seq_show = Kfun.register "ptype_seq_show"

type entry = {
  proto : int;                    (* ETH_P_*; 0 models ETH_P_ALL *)
  dev : int option;               (* bound device id, None for sockets *)
  netns : int;
  sock : int;                     (* owning socket id *)
}

type t = {
  ptype_all : entry list Var.t;
  config : Config.t;
}

let init heap config =
  { ptype_all = Var.alloc heap ~name:"net.ptype_all" ~width:32 []; config }

(* Register the prot_hook of a freshly created packet socket. *)
let register_socket ctx t ~netns ~sock ~proto =
  Kfun.call ctx fn_ptype_register (fun () ->
      let entry = { proto; dev = None; netns; sock } in
      Var.write ctx t.ptype_all (entry :: Var.read ctx t.ptype_all))

let unregister_socket ctx t ~sock =
  Kfun.call ctx fn_ptype_unregister (fun () ->
      let keep = List.filter (fun e -> e.sock <> sock) (Var.read ctx t.ptype_all) in
      Var.write ctx t.ptype_all keep)

let entry_line e =
  let kind = if e.proto = 0 then "ALL " else Printf.sprintf "%04x" e.proto in
  Printf.sprintf "%s sock=anon dev=%s func=packet_rcv" kind
    (match e.dev with None -> "-" | Some d -> Printf.sprintf "dev%d" d)

(* Render /proc/net/ptype as seen from net namespace [cur]. *)
let seq_show ctx t ~cur =
  Kfun.call ctx fn_ptype_seq_show (fun () ->
      let buggy = Config.has t.config Bugs.B1_ptype_leak in
      let visible e =
        match e.dev with
        | Some _ -> e.netns = cur
        | None ->
          (* The missing namespace check of Figure 4. *)
          if buggy then true else e.netns = cur
      in
      let entries = List.filter visible (Var.read ctx t.ptype_all) in
      "Type Device      Function" :: List.rev_map entry_line entries)
