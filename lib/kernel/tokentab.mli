(** Abstract "token" objects with per-boot randomised global ids — a
    distilled model of resources (like the unix sockets of known bug G)
    whose id a receiver would have to learn at runtime to observe
    interference, making the visibility bug undetectable by functional
    interference testing. *)

type t

val init : Heap.t -> Config.t -> t
val randomize_base : t -> Krng.t -> unit
val create : Ctx.t -> t -> netns:int -> owner:int -> int
val stat : Ctx.t -> t -> netns:int -> int -> (string, Errno.t) result
