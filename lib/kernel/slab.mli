(** The slab allocator's object counter, touched by [kmalloc] from many
    subsystems. Legitimately global (not namespace-protected) state that
    flows across containers: the source of the "under investigation"
    report groups via /proc/slabinfo, and of deep call-stack diversity
    for DF-ST-2 clustering. *)

type t

val init : Heap.t -> t

val kmalloc : Ctx.t -> t -> int -> unit
(** Allocate [n] objects on behalf of the calling subsystem. *)

val count : Ctx.t -> t -> int
