(* Shared map instantiations for the kernel's immutable tables. *)

module Int_map = Map.Make (Int)
module Str_map = Map.Make (String)
module Int_set = Set.Make (Int)

module Pair = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
end

module Pair_map = Map.Make (Pair)
