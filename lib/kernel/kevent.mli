(** Kernel execution-trace events — the vocabulary produced by the
    instrumentation (paper, section 5.1): function entry/exit, syscall
    boundaries and memory accesses, in chronological order. *)

type rw = Read | Write

val rw_to_string : rw -> string

type mem = {
  addr : int;    (** synthetic kernel address of the variable *)
  width : int;   (** access width in bytes *)
  rw : rw;
  ip : int;      (** synthetic instruction address of the access site *)
}

type t =
  | Fn_enter of int            (** kernel function id *)
  | Fn_exit of int
  | Sys_enter of int           (** index of the syscall within the program *)
  | Sys_exit of int
  | Mem of mem

val pp : Format.formatter -> t -> unit

val ip_of : fn:int -> caller:int -> addr:int -> rw:rw -> int
(** Synthetic instruction address: a deterministic mix of the innermost
    function, its immediate caller (modelling helper inlining), the
    variable address and the access direction — the granularity the
    DF-IA clustering strategy keys on. *)
