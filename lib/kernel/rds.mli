(** RDS socket binding (paper, bug #3): the bind table should be keyed
    by (net namespace, address) but the buggy kernel keys by address
    alone, so a bind in one container blocks the address everywhere. *)

type t

val init : Heap.t -> Config.t -> t

val bind :
  Ctx.t -> t -> netns:int -> port:int -> sock:int -> (unit, Errno.t) result
(** [EADDRINUSE] when the (effective) key is already bound. *)
