(** System call results: return value, errno, and a decoded out-payload
    (the data strace would render). The trace layer turns these into
    abstract syntax trees. *)

type stat = {
  inode : int;
  dev_minor : int;
  size : int;
  mtime : int;
}

type payload =
  | P_none
  | P_str of string
  | P_lines of string list
  | P_stat of stat

type t = {
  ret : int;
  err : Errno.t option;
  out : payload;
}

val ok : ?out:payload -> int -> t
val error : Errno.t -> t
val is_error : t -> bool
val pp : Format.formatter -> t -> unit
