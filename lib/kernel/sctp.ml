(* SCTP association identifiers (paper, bug #7). The association ID
   space "ought to be" per net namespace (as the kernel developers
   acknowledged) but is allocated from a global counter, so one
   container's associations shift the IDs observed by another. *)

open Maps

let fn_sctp_assoc_alloc = Kfun.register "sctp_assoc_set_id"

type t = {
  next_assoc : int Var.t;                 (* buggy kernel: global space *)
  next_assoc_perns : int Int_map.t Var.t; (* fixed kernel: per-ns spaces *)
  config : Config.t;
}

let init heap config =
  {
    next_assoc = Var.alloc heap ~name:"sctp.next_assoc" ~width:4 1;
    next_assoc_perns =
      Var.alloc heap ~name:"sctp.next_assoc_perns" ~width:16 Int_map.empty;
    config;
  }

let alloc ctx t ~netns =
  Kfun.call ctx fn_sctp_assoc_alloc (fun () ->
      if Config.has t.config Bugs.B7_sctp_assoc then begin
        let id = Var.read ctx t.next_assoc in
        Var.write ctx t.next_assoc (id + 1);
        id
      end
      else begin
        let perns = Var.read ctx t.next_assoc_perns in
        let id = Option.value ~default:1 (Int_map.find_opt netns perns) in
        Var.write ctx t.next_assoc_perns (Int_map.add netns (id + 1) perns);
        id
      end)
