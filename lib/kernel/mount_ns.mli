(** Mount namespaces and a minimal /tmp filesystem (known bug E,
    CVE-2020-29373): each mount namespace has a private /tmp; the buggy
    io_uring submission path resolves paths in the host (init) mount
    namespace. *)

type file = {
  inode : int;
  dev_minor : int;
  content : string;
  created : int;                       (** kernel time *)
}

type t

val init : Heap.t -> Config.t -> t

val creat : Ctx.t -> t -> Devid.t -> mntns:int -> path:string -> now:int -> file
(** Create (or truncate) a /tmp file in [mntns]. *)

val lookup : Ctx.t -> t -> mntns:int -> path:string -> file option
(** Regular path resolution: always the caller's mount namespace. *)

val lookup_io_uring : Ctx.t -> t -> mntns:int -> path:string -> file option
(** io_uring path resolution: the buggy kernel resolves in namespace 0. *)
