(** IP Virtual Server state and its procfs dump (known bug C): the
    buggy /proc/net/ip_vs renderer prints every namespace's service
    table instead of only the reader's. *)

type service = {
  netns : int;
  port : int;
}

type t

val init : Heap.t -> Config.t -> t
val add : Ctx.t -> t -> netns:int -> port:int -> unit
val seq_show : Ctx.t -> t -> cur:int -> string list
