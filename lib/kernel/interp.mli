(** The test-program interpreter (the model's Syzkaller executor): runs
    a program's calls in order for a given process, resolving resource
    references against earlier return values, and brackets each call
    with Sys_enter/Sys_exit trace events so profiles can attribute
    memory accesses to syscall indices. *)

type result = {
  index : int;
  call : Kit_abi.Program.call;
  ret : Sysret.t;
}

val run : State.t -> pid:int -> Kit_abi.Program.t -> result list
(** Results are returned in program order, one per call. *)
