(** Shared map instantiations for the kernel's immutable tables. *)

module Int_map : Map.S with type key = int
module Str_map : Map.S with type key = string
module Int_set : Set.S with type elt = int

(** Pairs of ints with lexicographic order, for keys like
    (namespace id, resource id). *)
module Pair : sig
  type t = int * int

  val compare : t -> t -> int
end

module Pair_map : Map.S with type key = Pair.t
