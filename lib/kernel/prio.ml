(* Process priorities in PRIO_USER mode (known bug A). setpriority with
   PRIO_USER should only affect processes of the caller's user namespace;
   the buggy kernel keys the per-user nice table by uid alone, so a
   container can set — and read — the priority of uids in other
   containers. PRIO_PROCESS is correctly isolated and serves as a
   negative control. *)

open Maps

let fn_set_user_nice = Kfun.register "set_user_nice"
let fn_get_user_nice = Kfun.register "get_user_nice"

type t = {
  user_nice : int Pair_map.t Var.t;   (* (userns, uid) -> nice; the buggy
                                         kernel uses userns = 0 always *)
  proc_nice : int Int_map.t Var.t;    (* pid -> nice *)
  config : Config.t;
}

let init heap config =
  {
    user_nice = Var.alloc heap ~name:"sched.user_nice" ~width:32 Pair_map.empty;
    proc_nice = Var.alloc heap ~name:"sched.proc_nice" ~width:32 Int_map.empty;
    config;
  }

let key t ~userns ~uid =
  if Config.has t.config Bugs.KA_prio_user then (0, uid) else (userns, uid)

let set_user ctx t ~userns ~uid nice =
  Kfun.call ctx fn_set_user_nice (fun () ->
      Var.write ctx t.user_nice
        (Pair_map.add (key t ~userns ~uid) nice (Var.read ctx t.user_nice)))

let get_user ctx t ~userns ~uid =
  Kfun.call ctx fn_get_user_nice (fun () ->
      Option.value ~default:0
        (Pair_map.find_opt (key t ~userns ~uid) (Var.read ctx t.user_nice)))

let set_process ctx t ~pid nice =
  Var.write ctx t.proc_nice (Int_map.add pid nice (Var.read ctx t.proc_nice))

let get_process ctx t ~pid =
  Option.value ~default:0 (Int_map.find_opt pid (Var.read ctx t.proc_nice))
