(* Kernel execution-trace events, the vocabulary produced by the
   instrumentation (paper, section 5.1): function entry, function exit and
   memory access, in chronological order. The instruction address [ip] of
   a memory access is a stable synthetic identifier of the access site,
   derived from the accessing kernel function and the variable address. *)

type rw = Read | Write

let rw_to_string = function Read -> "R" | Write -> "W"

type mem = {
  addr : int;
  width : int;
  rw : rw;
  ip : int;
}

type t =
  | Fn_enter of int            (* kernel function id *)
  | Fn_exit of int
  | Sys_enter of int           (* index of the syscall within the program *)
  | Sys_exit of int
  | Mem of mem

let pp ppf = function
  | Fn_enter f -> Fmt.pf ppf "enter f%d" f
  | Fn_exit f -> Fmt.pf ppf "exit f%d" f
  | Sys_enter i -> Fmt.pf ppf "sys_enter %d" i
  | Sys_exit i -> Fmt.pf ppf "sys_exit %d" i
  | Mem m ->
    Fmt.pf ppf "%s a%d w%d ip%d" (rw_to_string m.rw) m.addr m.width m.ip

(* Synthetic instruction address: a deterministic mix of the innermost
   function id, its immediate caller, the variable address and the access
   direction. Including the caller models how helper functions are
   inlined into their call sites in a real kernel build, giving each
   inlined copy its own instrumentation-site address — the granularity
   the DF-IA clustering strategy keys on. *)
let ip_of ~fn ~caller ~addr ~rw =
  let rwbit = match rw with Read -> 1 | Write -> 2 in
  let h =
    (fn * 0x9E3779B1) lxor (caller * 0x7FEB352D)
    lxor (addr * 0x85EBCA77) lxor (rwbit * 0xC2B2AE35)
  in
  h land 0x3FFFFFFF
