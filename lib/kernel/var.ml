(* Traced kernel shared variables. Reads and writes go through the
   tracing context and emit memory-access events carrying the variable's
   synthetic address, the access width and a synthetic instruction
   address. Variables can be allocated uninstrumented to model code the
   compiler pass cannot see: jump-label code patching (paper bug #2),
   or subsystems excluded from instrumentation (scheduler, mm). *)

type 'a t = {
  addr : int;
  width : int;
  name : string;
  instrumented : bool;
  heap : Heap.t;
  cell : int;                       (* id for Heap.mark_dirty *)
  mutable v : 'a;
}

let alloc heap ~name ?(width = 8) ?(instrumented = true) init =
  let cell = ref None in
  let addr, cell_id =
    Heap.register heap ~name ~width ~instrumented (fun () ->
        match !cell with
        | None -> fun () -> ()
        | Some var ->
          let saved = var.v in
          fun () -> var.v <- saved)
  in
  let var = { addr; width; name; instrumented; heap; cell = cell_id; v = init } in
  cell := Some var;
  var

let addr t = t.addr
let name t = t.name
let width t = t.width
let instrumented t = t.instrumented

(* Instrumented accesses are also the scheduler's preemption points:
   [Ctx.yield] fires before the event is emitted, so a suspended task
   resumes exactly at the access it was about to perform. Keeping yield
   behind the same [instrumented] guard (and [Ctx.yield]'s in_irq guard)
   means the set of yield points equals the set of profiled accesses. *)
let trace ctx t rw =
  if t.instrumented then begin
    Ctx.yield ctx;
    let fn = Ctx.innermost ctx in
    let caller = Ctx.caller ctx in
    let ip = Kevent.ip_of ~fn ~caller ~addr:t.addr ~rw in
    Ctx.emit ctx (Kevent.Mem { addr = t.addr; width = t.width; rw; ip })
  end

let read ctx t =
  trace ctx t Kevent.Read;
  t.v

let write ctx t v =
  trace ctx t Kevent.Write;
  Heap.mark_dirty t.heap t.cell;
  t.v <- v

(* Untraced accessors, for boot-time initialisation, the test harness and
   the execution environment (e.g. setting the per-execution clock base,
   which models the host side of the VM, not kernel code). *)
let peek t = t.v

let poke t v =
  Heap.mark_dirty t.heap t.cell;
  t.v <- v
