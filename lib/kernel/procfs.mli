(** The procfs surface: path-based rendering of the pseudo files the
    evaluation exercises. Files under /proc/net are namespace-scoped;
    /proc/crypto, /proc/slabinfo and /proc/uptime are global by design.
    Every renderer pushes its lines through the shared seq_file
    helpers; procfs files report size 0 and a time-of-read mtime, like
    real procfs. *)

type t

val make :
  packet:Packet.t -> protomem:Protomem.t -> ipvs:Ipvs.t ->
  conntrack:Conntrack.t -> crypto:Crypto.t -> slab:Slab.t -> seq:Seqfile.t ->
  t

val is_proc_path : string -> bool

val open_file : Ctx.t -> t -> Devid.t -> path:string -> Proctab.file
(** Allocate the open-file object for a procfs path; the minor device
    number comes from the global anonymous-device counter. *)

val render : Ctx.t -> t -> netns:int -> now:int -> string -> string option
(** Render a procfs path for a reader in [netns] at time [now]; [None]
    for paths that do not exist. *)
