(** SCTP association identifiers (paper, bug #7): allocated from a
    global counter on the buggy kernel, per net namespace on the fixed
    one. *)

type t

val init : Heap.t -> Config.t -> t
val alloc : Ctx.t -> t -> netns:int -> int
