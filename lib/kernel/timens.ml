(* Time namespaces: a per-namespace boot-time offset applied to clock
   readings (CLOCK_BOOTTIME semantics). This is the subsystem the paper
   explicitly cannot test with plain functional interference testing
   (section 7): the protected resource — the clock — is non-deterministic,
   so trace divergence on it is always masked. The bounds-based detector
   (Kit_trace.Bounds) implements the paper's proposed solution.

   Extension bug XT: the buggy kernel keeps a single global offset, so
   setting the clock in one container shifts every container's time. *)

open Maps

let fn_timens_set = Kfun.register "timens_set_offset"
let fn_timens_get = Kfun.register "timens_get_offset"

type t = {
  offset_global : int Var.t;            (* buggy kernel *)
  offsets : int Int_map.t Var.t;        (* fixed kernel: per time ns *)
  config : Config.t;
}

let init heap config =
  {
    offset_global = Var.alloc heap ~name:"timens.offset_global" ~width:8 0;
    offsets = Var.alloc heap ~name:"timens.offsets" ~width:16 Int_map.empty;
    config;
  }

let set ctx t ~timens offset =
  Kfun.call ctx fn_timens_set (fun () ->
      if Config.has t.config Bugs.XT_timens_offset then
        Var.write ctx t.offset_global offset
      else
        Var.write ctx t.offsets (Int_map.add timens offset (Var.read ctx t.offsets)))

let get ctx t ~timens =
  Kfun.call ctx fn_timens_get (fun () ->
      if Config.has t.config Bugs.XT_timens_offset then
        Var.read ctx t.offset_global
      else
        Option.value ~default:0 (Int_map.find_opt timens (Var.read ctx t.offsets)))
