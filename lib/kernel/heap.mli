(** The kernel "heap": a registry of traced shared variables with
    synthetic addresses and whole-heap snapshot/restore — the model
    equivalent of a VM snapshot (paper, section 4.2). *)

type t

type snapshot

val create : unit -> t

val register : t -> width:int -> (unit -> unit -> unit) -> int
(** [register t ~width capture] reserves [width] bytes of synthetic
    address space for a cell whose [capture] function returns a restore
    thunk; returns the base address. Used by {!Var.alloc}. *)

val snapshot : t -> snapshot
(** Capture the current contents of every registered cell. *)

val restore : snapshot -> unit
(** Write a snapshot's contents back into the cells it captured. *)

val cell_count : t -> int
