(** The kernel "heap": a registry of traced shared variables with
    synthetic addresses and whole-heap snapshot/restore — the model
    equivalent of a VM snapshot (paper, section 4.2).

    Restore is incremental in the style of QEMU dirty-page tracking: the
    heap tracks which cells were written since it last matched a
    snapshot, and restoring that same snapshot replays only those cells.
    Restoring a different snapshot (or [~full:true]) replays every
    captured cell. Both paths leave the heap in the same state; the
    equivalence is qcheck-property-tested. *)

type t

type snapshot

(** Per-variable registration metadata, in boot order — the coverage
    universe the ledger ([Obs.Coverage]) is built from. *)
type varinfo = {
  v_name : string;
  v_addr : int;                     (** base address *)
  v_width : int;
  v_instrumented : bool;
}

val create : unit -> t

val register :
  t -> name:string -> width:int -> instrumented:bool ->
  (unit -> unit -> unit) -> int * int
(** [register t ~name ~width ~instrumented capture] reserves [width]
    bytes of synthetic address space for a cell whose [capture] function
    returns a restore thunk; returns [(base_addr, cell_id)]. The cell id
    must be passed to {!mark_dirty} whenever the cell's contents change.
    Used by {!Var.alloc}. *)

val vars : t -> varinfo list
(** Every registered variable, in registration order. Boot order is
    deterministic for a given config, so the list is identical across
    processes and domains running the same kernel. *)

val mark_dirty : t -> int -> unit
(** Record that a cell was written since the last snapshot/restore, so
    the next incremental restore replays it. Idempotent and O(1). *)

val snapshot : t -> snapshot
(** Capture the current contents of every registered cell. The heap is
    bit-identical to the fresh snapshot, so the dirty set resets and the
    next restore of this snapshot is already incremental. *)

val restore : ?full:bool -> t -> snapshot -> unit
(** Write a snapshot's contents back into the cells it captured.
    Incremental (dirty cells only) when the heap already matches the
    snapshot from a prior capture/restore; full otherwise, or when
    [~full:true] forces the naive path.
    @raise Invalid_argument if the snapshot was captured from a
    different heap. *)

val cell_count : t -> int

val restore_stats : t -> int * int
(** Cumulative [(cells_replayed, cells_a_full_restore_would_replay)]
    over every restore of this heap; the incrementality win is
    [1 - replayed/total]. Also exported as [heap.cells_restored] /
    [heap.cells_total] on {!Kit_obs.Metrics.default} when enabled. *)
