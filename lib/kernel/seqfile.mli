(** The seq_file machinery backing procfs reads.

    All renderers emit lines through shared helpers that touch a common
    kernel buffer variable — a realistic source of benign
    cross-container data flows whose access sites coincide but whose
    call-stack contexts differ per renderer and per syscall: the
    structure that makes the DF-ST clustering strategies finer than
    DF-IA (paper, section 4.1.2). *)

type t

val init : Heap.t -> Config.t -> t

val puts : Ctx.t -> t -> string -> unit
(** Append a line to the seq buffer (renderer side). *)

val read_out : Ctx.t -> t -> string list -> string
(** Drain the buffer into the reader's address space (read(2) side). *)

val render : Ctx.t -> t -> netns:int -> string list -> string
(** Emit every line through {!puts}, then hand the contents to the
    reader. [netns] is the rendering namespace; under race bug #3 a
    render racing a foreign render appends a truncation notice. *)
