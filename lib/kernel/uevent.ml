(* Kobject uevents over netlink (known bug B). Creating a network device
   emits "add queue" uevents; the buggy kernel broadcasts them to the
   uevent socket queues of *every* net namespace instead of only the
   device's own. *)

open Maps

let fn_uevent_emit = Kfun.register "kobject_uevent_env"
let fn_uevent_recv = Kfun.register "netlink_recvmsg"
let fn_netdev_register = Kfun.register "register_netdevice"

type t = {
  queues : string list Int_map.t Var.t;  (* netns -> pending uevents, oldest first *)
  broadcast : string list Var.t;         (* the buggy kernel's global queue *)
  netdevs : (int * string) list Var.t;   (* (netns, name) *)
  config : Config.t;
}

let init heap config =
  {
    queues = Var.alloc heap ~name:"uevent.queues" ~width:32 Int_map.empty;
    broadcast = Var.alloc heap ~name:"uevent.broadcast" ~width:32 [];
    netdevs = Var.alloc heap ~name:"net.dev_base" ~width:32 [];
    config;
  }

let enqueue ctx t ~netns msg =
  let queues = Var.read ctx t.queues in
  let cur = Option.value ~default:[] (Int_map.find_opt netns queues) in
  Var.write ctx t.queues (Int_map.add netns (cur @ [ msg ]) queues)

(* The buggy kernel sends queue uevents without namespace filtering:
   modelled as a global broadcast queue that every namespace's receive
   path drains in addition to its own. *)
let emit ctx t ~netns msg =
  Kfun.call ctx fn_uevent_emit (fun () ->
      if Config.has t.config Bugs.KB_uevent then
        Var.write ctx t.broadcast (Var.read ctx t.broadcast @ [ msg ])
      else enqueue ctx t ~netns msg)

(* Register a network device and emit its rx/tx queue uevents. *)
let netdev_create ctx t ~netns ~name =
  Kfun.call ctx fn_netdev_register (fun () ->
      let devs = Var.read ctx t.netdevs in
      if List.exists (fun (ns, n) -> ns = netns && String.equal n name) devs
      then Error Errno.EEXIST
      else begin
        Var.write ctx t.netdevs ((netns, name) :: devs);
        emit ctx t ~netns (Printf.sprintf "add@/devices/virtual/net/%s/queues/rx-0" name);
        emit ctx t ~netns (Printf.sprintf "add@/devices/virtual/net/%s/queues/tx-0" name);
        Ok ()
      end)

(* Drain the pending uevents visible to [netns]: its own queue, plus —
   on the buggy kernel — everything in the global broadcast queue. *)
let recv ctx t ~netns =
  Kfun.call ctx fn_uevent_recv (fun () ->
      let queues = Var.read ctx t.queues in
      let own = Option.value ~default:[] (Int_map.find_opt netns queues) in
      Var.write ctx t.queues (Int_map.add netns [] queues);
      if Config.has t.config Bugs.KB_uevent then begin
        let foreign = Var.read ctx t.broadcast in
        Var.write ctx t.broadcast [];
        foreign @ own
      end
      else own)

(* A receiver must have a queue for broadcasts to land in even if it has
   not received yet; opening a uevent socket materialises the queue. *)
let open_queue ctx t ~netns =
  let queues = Var.read ctx t.queues in
  if not (Int_map.mem netns queues) then
    Var.write ctx t.queues (Int_map.add netns [] queues)
