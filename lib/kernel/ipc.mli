(** System V message queues, keyed by IPC namespace — correctly
    isolated in the modelled releases; realistic syscall surface and a
    negative control. *)

type queue = {
  qid : int;
  ipcns : int;
  key : int;
  messages : string list;           (** oldest first *)
  owner_pid : int;
}

type t

val init : Heap.t -> t

val msgget : Ctx.t -> t -> ipcns:int -> key:int -> pid:int -> int
(** Get or create the queue with [key] in [ipcns]; returns its qid. *)

val msgsnd : Ctx.t -> t -> ipcns:int -> qid:int -> string ->
  (unit, Errno.t) result

val msgrcv : Ctx.t -> t -> ipcns:int -> qid:int -> (string, Errno.t) result

val msgctl_stat : Ctx.t -> t -> ipcns:int -> qid:int ->
  (string, Errno.t) result
