(** Anonymous device minor numbers, allocated from a global counter when
    pseudo-filesystem files are opened. Not protected by any namespace,
    so cross-container interference on fstat's st_dev is a false
    positive for KIT — the dominant FP class in the paper
    (section 6.4). *)

type t

val init : Heap.t -> t
val alloc : Ctx.t -> t -> int
