(** Deterministic cooperative scheduler over instrumented memory
    accesses.

    Tasks run as OCaml 5 effect-handled coroutines; [Ctx.yield] — fired
    by {!Var} immediately before every instrumented, non-irq access —
    suspends the running task. The driver picks the next task by a pure
    function of [(seed, step)], so a given seed always reproduces the
    byte-identical interleaving, across domains and processes alike. *)

type schedule =
  | Sequential
      (** always pick the lowest-indexed runnable task: with
          [[sender; receiver]] this runs the sender to completion and
          then the receiver, reproducing the sequential runner's phase
          A byte-for-byte *)
  | Seeded of int  (** pseudo-random but fully deterministic in the seed *)

exception Aborted
(** Raised into suspended tasks when a sibling task crashes, so their
    [Fun.protect] finalizers (ctx stack pops) run. Never escapes
    {!run}. *)

val pp_schedule : Format.formatter -> schedule -> unit

val mix : seed:int -> step:int -> int
(** The pure decision hash: non-negative, stable across runs. *)

val choose : schedule -> step:int -> runnable:int list -> int
(** Pick the next task among [runnable] (sorted ascending, non-empty).
    Shared by {!run} and {!simulate} so the abstract replay matches the
    real driver decision-for-decision. *)

val run : ?schedule:schedule -> Ctx.t -> (unit -> unit) list -> int
(** [run ~schedule ctx thunks] executes the thunks to completion as
    cooperatively scheduled tasks, installing the yield hook on [ctx]
    for the duration. Returns the number of scheduling decisions taken.
    If a task raises (kernel panic, fuel exhaustion), all other tasks
    are unwound via {!Aborted} and the original exception is re-raised
    — mirroring the sequential runner's crash behaviour. *)

val simulate : schedule -> int array -> (int * int) list
(** [simulate schedule counts] replays the driver's decision procedure
    abstractly: task [i] has [counts.(i)] accesses, hence
    [counts.(i) + 1] resume segments. Returns the merged access order
    as [(task, access_index)] pairs. This is exact whenever each task
    performs the same accesses as in its solo profile; schedule search
    uses it to prune equivalent seeds before executing anything. *)
