(* Kernel build/boot configuration. [jump_label] models CONFIG_JUMP_LABEL:
   when enabled, the flow-label static key is implemented by code patching
   and its accesses are invisible to the instrumentation (paper,
   section 6.1, bug #2 discussion). *)

type t = {
  version : string;
  jump_label : bool;
  bugs : Bugs.set;
  boot_seed : int;
}

let make ?(jump_label = false) ?(boot_seed = 42) ?bugs version =
  let bugs =
    match bugs with Some b -> b | None -> Bugs.for_version version
  in
  { version; jump_label; bugs; boot_seed }

(* The stable release the paper's campaign targets. *)
let v5_13 ?jump_label ?boot_seed () = make ?jump_label ?boot_seed "5.13"

(* 5.13 plus the seeded race-window bugs. Their pseudo release
   "5.13-rw" keeps them out of [v5_13], so sequential campaigns (and
   their golden outputs) never see the extra window accesses; schedule
   search targets this configuration. *)
let v5_13_rw ?jump_label ?boot_seed () =
  let bugs =
    List.fold_left Bugs.inject (Bugs.for_version "5.13") Bugs.race_bugs
  in
  make ?jump_label ?boot_seed ~bugs "5.13-rw"

(* A fully fixed kernel: same code base, every bug patched. *)
let fixed ?(version = "5.13") ?boot_seed () =
  make ?boot_seed ~bugs:Bugs.empty version

(* The kernel release containing a given known bug (Table 3 reproduction
   setup). *)
let for_known_bug ?boot_seed bug =
  make ?boot_seed (Bugs.known_bug_version bug)

let has t bug = Bugs.present t.bugs bug
