(** Kernel build/boot configuration.

    [jump_label] models CONFIG_JUMP_LABEL: when enabled, the flow-label
    static key is implemented by code patching and its accesses are
    invisible to the instrumentation (paper, section 6.1). *)

type t = {
  version : string;
  jump_label : bool;
  bugs : Bugs.set;
  boot_seed : int;
}

val make : ?jump_label:bool -> ?boot_seed:int -> ?bugs:Bugs.set -> string -> t
(** [make version] defaults the bug set to {!Bugs.for_version}. *)

val v5_13 : ?jump_label:bool -> ?boot_seed:int -> unit -> t
(** The stable release the paper's campaign targets. *)

val v5_13_rw : ?jump_label:bool -> ?boot_seed:int -> unit -> t
(** 5.13 plus the seeded race-window bugs ({!Bugs.race_bugs}) — the
    target configuration for interleaved schedule search. *)

val fixed : ?version:string -> ?boot_seed:int -> unit -> t
(** The same code base with every bug patched. *)

val for_known_bug : ?boot_seed:int -> Bugs.id -> t
(** The kernel release containing a given known bug (Table 3 setup). *)

val has : t -> Bugs.id -> bool
