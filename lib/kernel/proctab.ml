(* The process table: per-process namespace sets and file descriptor
   tables. Descriptors point either at sockets (by socket id) or at file
   objects (procfs entries, /tmp files). *)

open Maps

let fn_proc_lookup = Kfun.register "proc_lookup"
let fn_proc_update = Kfun.register "proc_update"
let fn_fd_install = Kfun.register "fd_install"
let fn_fd_lookup = Kfun.register "fd_lookup"
let fn_ns_clone = Kfun.register "ns_clone"

type file = {
  path : string;
  inode : int;
  dev_minor : int;
}

type fd_obj =
  | Fd_sock of int
  | Fd_file of file

type proc = {
  pid : int;
  uid : int;
  ns : Namespace.set;
  fds : fd_obj Int_map.t;
  next_fd : int;
}

type t = {
  procs : proc Int_map.t Var.t;
  next_pid : int Var.t;
  next_ns : int Var.t;
}

let init heap =
  {
    procs = Var.alloc heap ~name:"proc.table" ~width:64 Int_map.empty;
    next_pid = Var.alloc heap ~name:"proc.next_pid" ~instrumented:false 100;
    next_ns = Var.alloc heap ~name:"proc.next_ns" ~instrumented:false 1;
  }

let spawn ctx t ~uid ~ns =
  let pid = Var.peek t.next_pid in
  Var.poke t.next_pid (pid + 1);
  let proc = { pid; uid; ns; fds = Int_map.empty; next_fd = 3 } in
  Var.write ctx t.procs (Int_map.add pid proc (Var.read ctx t.procs));
  proc

let find ctx t pid =
  Kfun.call ctx fn_proc_lookup (fun () ->
      Int_map.find_opt pid (Var.read ctx t.procs))

let find_exn ctx t pid =
  match find ctx t pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Proctab.find_exn: no pid %d" pid)

let update ctx t proc =
  Kfun.call ctx fn_proc_update (fun () ->
      Var.write ctx t.procs (Int_map.add proc.pid proc (Var.read ctx t.procs)))

(* Install an fd object in [pid]'s table; returns the fd number. *)
let fd_install ctx t ~pid obj =
  Kfun.call ctx fn_fd_install (fun () ->
      let proc = find_exn ctx t pid in
      let fd = proc.next_fd in
      let proc =
        { proc with fds = Int_map.add fd obj proc.fds; next_fd = fd + 1 }
      in
      update ctx t proc;
      fd)

let fd_lookup ctx t ~pid fd =
  Kfun.call ctx fn_fd_lookup (fun () ->
      match find ctx t pid with
      | None -> None
      | Some proc -> Int_map.find_opt fd proc.fds)

let fd_close ctx t ~pid fd =
  match find ctx t pid with
  | None -> false
  | Some proc ->
    if Int_map.mem fd proc.fds then begin
      update ctx t { proc with fds = Int_map.remove fd proc.fds };
      true
    end
    else false

(* Allocate fresh namespace instances for the kinds selected by [flags]
   and move [pid] into them (the unshare syscall). *)
let unshare ctx t ~pid ~flags =
  Kfun.call ctx fn_ns_clone (fun () ->
      match find ctx t pid with
      | None -> None
      | Some proc ->
        let ns =
          List.fold_left
            (fun ns kind ->
              if flags land Namespace.kind_flag kind <> 0 then begin
                let inst = Var.peek t.next_ns in
                Var.poke t.next_ns (inst + 1);
                Namespace.put ns kind inst
              end
              else ns)
            proc.ns Namespace.all_kinds
        in
        update ctx t { proc with ns };
        Some ns)
