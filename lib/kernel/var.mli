(** Traced kernel shared variables.

    Reads and writes go through the tracing context and emit
    memory-access events carrying the variable's synthetic address and a
    synthetic instruction address. Variables can be allocated
    uninstrumented to model code the compiler pass cannot see:
    jump-label code patching (paper, bug #2) or excluded subsystems
    (scheduler, mm). *)

type 'a t

val alloc :
  Heap.t -> name:string -> ?width:int -> ?instrumented:bool -> 'a -> 'a t
(** Allocate and register a variable. [width] defaults to 8 bytes;
    [instrumented] to [true]. *)

val addr : _ t -> int
val name : _ t -> string
val width : _ t -> int
val instrumented : _ t -> bool

val read : Ctx.t -> 'a t -> 'a
(** Traced read. *)

val write : Ctx.t -> 'a t -> 'a -> unit
(** Traced write. *)

val peek : 'a t -> 'a
(** Untraced read, for boot-time initialisation, the test harness and
    the host side of the execution environment. *)

val poke : 'a t -> 'a -> unit
(** Untraced write; same intended users as {!peek}. *)
