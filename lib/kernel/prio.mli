(** Process priorities (known bug A): setpriority(PRIO_USER) should
    only affect the caller's user namespace, but the buggy kernel keys
    the per-user nice table by uid alone. PRIO_PROCESS is correctly
    isolated and serves as a negative control. *)

type t

val init : Heap.t -> Config.t -> t

val set_user : Ctx.t -> t -> userns:int -> uid:int -> int -> unit
val get_user : Ctx.t -> t -> userns:int -> uid:int -> int

val set_process : Ctx.t -> t -> pid:int -> int -> unit
val get_process : Ctx.t -> t -> pid:int -> int
