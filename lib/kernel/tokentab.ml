(* Abstract "token" objects with per-boot randomised global ids — a
   distilled model of kernel resources (like the unix sockets of known
   bug G) whose id a receiver would need to learn at runtime to observe
   interference. Because the ids are salted per boot, corpus programs can
   never name a sender's token with a constant argument, so functional
   interference testing cannot catch the cross-namespace visibility the
   [stat] path would otherwise expose. *)

open Maps

let fn_token_create = Kfun.register "token_create"
let fn_token_stat = Kfun.register "token_stat"

type token = {
  id : int;
  netns : int;
  owner : int;
}

type t = {
  tokens : token Int_map.t Var.t;
  next_id : int Var.t;
  config : Config.t;
}

let init heap config =
  {
    tokens = Var.alloc heap ~name:"token.table" ~width:32 Int_map.empty;
    next_id = Var.alloc heap ~name:"token.next_id" 0;
    config;
  }

let randomize_base t rng =
  Var.poke t.next_id (0x40000 + (Krng.next rng land 0xFFFF))

let create ctx t ~netns ~owner =
  Kfun.call ctx fn_token_create (fun () ->
      let id = Var.read ctx t.next_id in
      Var.write ctx t.next_id (id + 1);
      let token = { id; netns; owner } in
      Var.write ctx t.tokens (Int_map.add id token (Var.read ctx t.tokens));
      id)

(* Like the buggy sock_diag of known bug G: visibility is not restricted
   to the caller's namespace. *)
let stat ctx t ~netns id =
  Kfun.call ctx fn_token_stat (fun () ->
      match Int_map.find_opt id (Var.read ctx t.tokens) with
      | None -> Error Errno.ENOENT
      | Some token ->
        let foreign_visible = Config.has t.config Bugs.KG_sockdiag_foreign in
        if token.netns = netns || foreign_visible then
          Ok (Printf.sprintf "token id=%d owner=%d" token.id token.owner)
        else Error Errno.ENOENT)
