(** The system call layer: argument validation and dispatch into the
    subsystems, bracketed by per-syscall kernel functions so profiles
    see realistic call stacks.

    When the global default metrics registry is enabled
    ([Kit_obs.Metrics.set_enabled Kit_obs.Metrics.default true]), every
    dispatch increments a per-sysno ["syscall.<name>"] counter; with the
    registry disabled (the default) the hot path pays one bool check. *)

val exec :
  State.t -> pid:int -> Kit_abi.Sysno.t -> Kit_abi.Value.t list -> Sysret.t
(** Execute one system call for [pid]. Arguments must have resource
    references already resolved (only [Int]/[Str] remain); [Ref]
    arguments are rejected with [EINVAL]. Advances the clock by one
    quantum. Consults the kernel's fault plane first, so it may raise
    [Fault.Kernel_panic] or [Fault.Fuel_exhausted]. *)
