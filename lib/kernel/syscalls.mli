(** The system call layer: argument validation and dispatch into the
    subsystems, bracketed by per-syscall kernel functions so profiles
    see realistic call stacks. *)

val exec :
  State.t -> pid:int -> Kit_abi.Sysno.t -> Kit_abi.Value.t list -> Sysret.t
(** Execute one system call for [pid]. Arguments must have resource
    references already resolved (only [Int]/[Str] remain); [Ref]
    arguments are rejected with [EINVAL]. Advances the clock by one
    quantum. Consults the kernel's fault plane first, so it may raise
    [Fault.Kernel_panic] or [Fault.Fuel_exhausted]. *)
