(** Linux namespace kinds and per-process namespace sets (paper,
    Table 1). Instance 0 of every kind is the initial (host)
    namespace. *)

type kind = Pid | Mount | Uts | Ipc | Net | User | Cgroup | Time

val all_kinds : kind list
val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val kind_flag : kind -> int
(** The unshare/clone flag bit selecting this kind. *)

type set = {
  pid : int;
  mount : int;
  uts : int;
  ipc : int;
  net : int;
  user : int;
  cgroup : int;
  time : int;
}

val initial : set
val get : set -> kind -> int
val put : set -> kind -> int -> set
val pp : Format.formatter -> set -> unit
