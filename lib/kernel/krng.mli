(** The kernel's entropy source — deterministic for a given boot seed
    and salt. Globally-allocated object ids drawn from it (socket and
    token ids) are unpredictable to test programs, the property behind
    the known-bug G limitation (paper, section 6.2). *)

type t

val init : Heap.t -> t
val reseed : t -> seed:int -> salt:int -> unit
val next : t -> int
val next_in : t -> int -> int
(** [next_in t bound] is a value in [1..bound]. *)
