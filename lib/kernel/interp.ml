(* The test-program interpreter (the model's Syzkaller executor): runs a
   program's calls in order for a given process, resolving resource
   references against earlier return values, and brackets each call with
   Sys_enter/Sys_exit trace events so profiles can attribute memory
   accesses to syscall indices. *)

module Program = Kit_abi.Program
module Value = Kit_abi.Value

type result = {
  index : int;
  call : Program.call;
  ret : Sysret.t;
}

let resolve_arg results = function
  | Value.Ref i ->
    if i >= 0 && i < Array.length results then
      match results.(i) with
      | Some r -> Value.Int r.ret.Sysret.ret
      | None -> Value.Int (-1)
    else Value.Int (-1)
  | (Value.Int _ | Value.Str _) as v -> v

(* Run [prog] as process [pid]; returns per-call results in order. *)
let run k ~pid prog =
  let calls = Program.calls prog in
  let n = List.length calls in
  let results = Array.make (max 1 n) None in
  List.iteri
    (fun i call ->
      let ctx = k.State.ctx in
      Ctx.emit ctx (Kevent.Sys_enter i);
      let args = List.map (resolve_arg results) call.Program.args in
      let ret = Syscalls.exec k ~pid call.Program.sysno args in
      Ctx.emit ctx (Kevent.Sys_exit i);
      results.(i) <- Some { index = i; call; ret })
    calls;
  Array.to_list (Array.sub results 0 n)
  |> List.filter_map (fun r -> r)
