(* Protocol accounting: sockets-in-use and protocol memory counters,
   surfaced through /proc/net/sockstat and /proc/net/protocols.

   Counters are maintained per (netns, protocol); the bugs are in the
   *display* paths, which aggregate across namespaces instead of
   restricting to the reader's own:

   - bug #5: sockstat's "TCP: inuse" counts sockets of all namespaces;
   - bug #8: sockstat's "mem" aggregates protocol memory globally;
   - bug #9: /proc/net/protocols exposes the same global memory counter.

   The separation of #8 and #9 (same state, two procfs interfaces) is
   faithful to the paper, where both were reported and confirmed
   independently. *)

open Maps

let fn_sock_prot_inuse_add = Kfun.register "sock_prot_inuse_add"
let fn_proto_memory_add = Kfun.register "proto_memory_allocated_add"
let fn_sockstat_show = Kfun.register "sockstat_seq_show"
let fn_protocols_show = Kfun.register "protocols_seq_show"

type t = {
  tcp_inuse : int Int_map.t Var.t;   (* netns -> live TCP sockets *)
  proto_mem : int Int_map.t Var.t;   (* netns -> pages of protocol memory *)
  mem_inflight : int Var.t;          (* race bug #1: transient global charge *)
  config : Config.t;
}

let init heap config =
  {
    tcp_inuse = Var.alloc heap ~name:"proto.tcp_inuse" ~width:16 Int_map.empty;
    proto_mem = Var.alloc heap ~name:"proto.memory_allocated" ~width:16 Int_map.empty;
    mem_inflight = Var.alloc heap ~name:"proto.memory_inflight" 0;
    config;
  }

let bump ctx var ~netns ~delta =
  let m = Var.read ctx var in
  let cur = Option.value ~default:0 (Int_map.find_opt netns m) in
  Var.write ctx var (Int_map.add netns (max 0 (cur + delta)) m)

let inuse_add ctx t ~netns ~delta =
  Kfun.call ctx fn_sock_prot_inuse_add (fun () ->
      bump ctx t.tcp_inuse ~netns ~delta)

(* Race bug #1: the buggy kernel publishes the charge to a global
   in-flight counter before committing it to the per-ns map, and rolls
   it back before returning. Sequentially the transient is invisible —
   the counter is 0 whenever no allocation is mid-flight — but a
   sockstat reader whose schedule lands between the two writes sees
   the foreign charge. *)
let memory_add ctx t ~netns ~pages =
  Kfun.call ctx fn_proto_memory_add (fun () ->
      if Config.has t.config Bugs.RW1_protomem_inflight then begin
        Var.write ctx t.mem_inflight pages;
        bump ctx t.proto_mem ~netns ~delta:pages;
        Var.write ctx t.mem_inflight 0
      end
      else bump ctx t.proto_mem ~netns ~delta:pages)

let read_counter ctx var ~global ~netns =
  let m = Var.read ctx var in
  if global then Int_map.fold (fun _ v acc -> acc + v) m 0
  else Option.value ~default:0 (Int_map.find_opt netns m)

(* /proc/net/sockstat for namespace [cur]. *)
let sockstat_show ctx t ~cur =
  Kfun.call ctx fn_sockstat_show (fun () ->
      let inuse =
        read_counter ctx t.tcp_inuse ~netns:cur
          ~global:(Config.has t.config Bugs.B5_sockstat_tcp)
      in
      let mem =
        read_counter ctx t.proto_mem ~netns:cur
          ~global:(Config.has t.config Bugs.B8_protomem_sockstat)
      in
      let mem =
        if Config.has t.config Bugs.RW1_protomem_inflight then
          mem + Var.read ctx t.mem_inflight
        else mem
      in
      [ Printf.sprintf "sockets: used %d" inuse;
        Printf.sprintf "TCP: inuse %d orphan 0 tw 0 alloc %d mem %d" inuse
          inuse mem;
        "UDP: inuse 0" ])

(* /proc/net/protocols for namespace [cur]. *)
let protocols_show ctx t ~cur =
  Kfun.call ctx fn_protocols_show (fun () ->
      let mem =
        read_counter ctx t.proto_mem ~netns:cur
          ~global:(Config.has t.config Bugs.B9_protomem_protocols)
      in
      let inuse =
        read_counter ctx t.tcp_inuse ~netns:cur ~global:false
      in
      [ "protocol  size sockets  memory";
        Printf.sprintf "TCPv6     2048 %7d %7d" inuse mem;
        Printf.sprintf "TCP       2048 %7d %7d" inuse mem;
        "UDP       1152       0       0" ])
