(* The crypto algorithm registry behind /proc/crypto. Algorithm
   templates instantiated through AF_ALG are registered *globally* — by
   design, not as a namespace bug. Divergences observed here are genuine
   interference on an unprotected resource: the false-positive class the
   paper drops by discarding the corresponding AGG-R group
   (section 6.4). *)

let fn_crypto_register = Kfun.register "crypto_register_alg"
let fn_crypto_seq_show = Kfun.register "crypto_seq_show"

type t = {
  algs : string list Var.t;
}

let init heap =
  { algs = Var.alloc heap ~name:"crypto.alg_list" ~width:32 [ "sha256"; "aes" ] }

let register ctx t name =
  Kfun.call ctx fn_crypto_register (fun () ->
      let algs = Var.read ctx t.algs in
      if List.exists (String.equal name) algs then Error Errno.EEXIST
      else begin
        Var.write ctx t.algs (name :: algs);
        Ok ()
      end)

let seq_show ctx t =
  Kfun.call ctx fn_crypto_seq_show (fun () ->
      List.map (Printf.sprintf "name : %s") (Var.read ctx t.algs))
