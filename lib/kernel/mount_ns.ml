(* Mount namespaces and a minimal /tmp filesystem (known bug E,
   CVE-2020-29373). Each mount namespace has a private /tmp; path
   resolution must happen in the caller's namespace. The buggy io_uring
   submission path resolves paths in the *host* (init) mount namespace,
   letting a container read host files hidden from its own /tmp. *)

open Maps

let fn_path_lookup = Kfun.register "path_lookupat"
let fn_iouring_lookup = Kfun.register "io_uring_path_lookupat"
let fn_vfs_create = Kfun.register "vfs_create"

type file = {
  inode : int;
  dev_minor : int;
  content : string;
  created : int;                       (* kernel time *)
}

type t = {
  tmp : file Str_map.t Int_map.t Var.t;  (* mntns -> path -> file *)
  next_inode : int Var.t;
  config : Config.t;
}

let init heap config =
  {
    tmp = Var.alloc heap ~name:"mnt.tmp_trees" ~width:64 Int_map.empty;
    next_inode = Var.alloc heap ~name:"vfs.next_inode" ~instrumented:false 1000;
    config;
  }

let tree ctx t ~mntns =
  Option.value ~default:Str_map.empty (Int_map.find_opt mntns (Var.read ctx t.tmp))

(* Create (or truncate) a /tmp file in [mntns]. *)
let creat ctx t devid ~mntns ~path ~now =
  Kfun.call ctx fn_vfs_create (fun () ->
      let inode = Var.peek t.next_inode in
      Var.poke t.next_inode (inode + 1);
      let dev_minor = Devid.alloc ctx devid in
      let file =
        { inode; dev_minor; content = Printf.sprintf "data:%s" path;
          created = now }
      in
      let per_ns = Str_map.add path file (tree ctx t ~mntns) in
      Var.write ctx t.tmp (Int_map.add mntns per_ns (Var.read ctx t.tmp));
      file)

(* Regular path resolution: always the caller's mount namespace. *)
let lookup ctx t ~mntns ~path =
  Kfun.call ctx fn_path_lookup (fun () -> Str_map.find_opt path (tree ctx t ~mntns))

(* io_uring path resolution: the buggy kernel resolves in the host
   namespace (instance 0). *)
let lookup_io_uring ctx t ~mntns ~path =
  Kfun.call ctx fn_iouring_lookup (fun () ->
      let effective_ns =
        if Config.has t.config Bugs.KE_iouring_mount then 0 else mntns
      in
      Str_map.find_opt path (tree ctx t ~mntns:effective_ns))
