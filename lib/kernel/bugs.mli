(** The catalogue of functional interference bugs modelled in the
    kernel: faithful miniatures of the logic errors behind the paper's
    Table 2 (new bugs #1-#9 found in Linux 5.13) and Table 3 (known bugs
    A-E, plus the two documented bugs functional interference testing
    cannot detect, modelled as F and G).

    A bug being "present" in a {!set} selects the buggy code path of the
    corresponding subsystem; absent means the fixed path. *)

type id =
  | B1_ptype_leak              (** /proc/net/ptype shows foreign packet sockets *)
  | B2_flowlabel_send          (** exclusive flow-label state global: send path *)
  | B3_rds_bind                (** RDS bind table keyed without netns *)
  | B4_flowlabel_connect       (** exclusive flow-label state global: connect path *)
  | B5_sockstat_tcp            (** sockstat TCP inuse counter global *)
  | B6_cookie                  (** socket cookie counter global *)
  | B7_sctp_assoc              (** SCTP association-id space global *)
  | B8_protomem_sockstat       (** protocol memory counter global, via sockstat *)
  | B9_protomem_protocols      (** protocol memory counter global, via protocols *)
  | KA_prio_user               (** setpriority(PRIO_USER) crosses user namespaces *)
  | KB_uevent                  (** queue uevents broadcast to all net namespaces *)
  | KC_ipvs                    (** /proc/net/ip_vs shows foreign IPVS services *)
  | KD_conntrack_max           (** nf_conntrack_max sysctl global *)
  | KE_iouring_mount           (** io_uring resolves paths in the host mount ns *)
  | KF_conntrack_dump          (** foreign conntrack entries visible; inherently
                                   non-deterministic resource — undetectable *)
  | KG_sockdiag_foreign        (** foreign sockets visible by runtime id —
                                   undetectable *)
  | XT_timens_offset           (** extension: time-namespace clock offset kept
                                   global; invisible to plain functional
                                   interference testing, caught by the
                                   bounds-based detector *)
  | RW1_protomem_inflight      (** race window: transient global
                                   protocol-memory charge, rolled back before
                                   return — visible only mid-window *)
  | RW2_cookie_window          (** race window: global cookie
                                   allocation-in-progress marker; concurrent
                                   allocators take a collision gap *)
  | RW3_seqfile_busy           (** race window: global seq_file busy marker;
                                   readers racing a foreign render emit a
                                   truncation notice *)

val new_bugs : id list
(** The nine Table 2 bugs, in table order. *)

val known_bugs : id list
(** The seven Table 3 bugs (A-G). *)

val extension_bugs : id list
(** Bugs modelled beyond the paper's tables (future-work targets). *)

val race_bugs : id list
(** Race-window bugs: the buggy syscall restores steady state before
    returning, so no sequential schedule observes them — only an
    interleaved schedule landing inside the window can. They live in
    pseudo release "5.13-rw", keeping the default 5.13 population (and
    every sequential golden output) unchanged. *)

val all : id list

val to_string : id -> string
val compare : id -> id -> int
val equal : id -> id -> bool
val pp : Format.formatter -> id -> unit

val known_bug_version : id -> string
(** The kernel release each bug lives in; new bugs answer "5.13". *)

type set

val empty : set
val of_list : id list -> set
val to_list : set -> id list
val present : set -> id -> bool
val fix : set -> id -> set
val inject : set -> id -> set

val for_version : string -> set
(** The bug population of a kernel release: every bug whose home release
    matches. *)
