(* The tracing context threaded through every kernel operation. It holds
   the live call stack (maintained by [Kfun.call]), the optional profiling
   sink receiving execution-trace events, and the interrupt-context flag:
   memory accesses made while [in_irq] are not reported, mirroring the
   paper's in_task() filter (section 5.1). *)

type t = {
  mutable sink : (Kevent.t -> unit) option;
  mutable stack : int list;            (* function ids, innermost first *)
  mutable in_irq : bool;
  mutable yield : (unit -> unit) option;
}

let create () = { sink = None; stack = []; in_irq = false; yield = None }

let emit t ev =
  match t.sink with
  | None -> ()
  | Some f -> if not t.in_irq then f ev

let with_sink t sink f =
  let saved = t.sink in
  t.sink <- Some sink;
  Fun.protect ~finally:(fun () -> t.sink <- saved) f

let yield t =
  match t.yield with
  | None -> ()
  | Some f -> if not t.in_irq then f ()

let with_yield t hook f =
  let saved = t.yield in
  t.yield <- Some hook;
  Fun.protect ~finally:(fun () -> t.yield <- saved) f

let with_irq t f =
  let saved = t.in_irq in
  t.in_irq <- true;
  Fun.protect ~finally:(fun () -> t.in_irq <- saved) f

let innermost t = match t.stack with [] -> 0 | f :: _ -> f

let caller t = match t.stack with _ :: c :: _ -> c | [ _ ] | [] -> 0
