(** Kernel function registry and call-site instrumentation.

    Every model kernel function is registered once at module
    initialisation; [call] brackets its execution with entry/exit events
    and maintains the context's simulated call stack — exactly the
    information the paper's compiler pass emits (section 5.1). Functions
    are assumed to return exactly once; the stack is restored even on
    exceptions, matching the paper's noreturn exclusion. *)

val register : string -> int
(** Idempotent: registering the same name twice yields the same id. *)

val name : int -> string
val id_of_name : string -> int option

val call : Ctx.t -> int -> (unit -> 'a) -> 'a
