(** Kobject uevents over netlink, and network device registration
    (known bug B): the buggy kernel sends queue uevents without
    namespace filtering — modelled as a global broadcast queue drained
    by every namespace's receive path. *)

type t

val init : Heap.t -> Config.t -> t

val emit : Ctx.t -> t -> netns:int -> string -> unit

val netdev_create : Ctx.t -> t -> netns:int -> name:string ->
  (unit, Errno.t) result
(** Register a network device and emit its rx/tx queue uevents;
    [EEXIST] for duplicate names within a namespace. *)

val recv : Ctx.t -> t -> netns:int -> string list
(** Drain the pending uevents visible to [netns]. *)

val open_queue : Ctx.t -> t -> netns:int -> unit
(** Materialise [netns]'s queue (opening a uevent socket). *)
