(* Anonymous device minor numbers, allocated from a global counter when
   pseudo-filesystem files are opened. Not protected by any namespace, so
   cross-container interference on fstat's st_dev is a *false positive*
   for KIT — the dominant FP class the paper observed (section 6.4). *)

let fn_dev_alloc = Kfun.register "dev_alloc"

type t = {
  next_minor : int Var.t;
}

let init heap = { next_minor = Var.alloc heap ~name:"devid.next_minor" 16 }

let alloc ctx t =
  Kfun.call ctx fn_dev_alloc (fun () ->
      let minor = Var.read ctx t.next_minor in
      Var.write ctx t.next_minor (minor + 1);
      minor)
