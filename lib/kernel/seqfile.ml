(* The seq_file machinery backing procfs reads. All renderers emit lines
   through the shared [seq_puts]/[seq_read] helpers, which touch a common
   kernel buffer variable — a realistic source of benign cross-container
   data flows whose access sites coincide but whose call-stack contexts
   differ per renderer. This is precisely the structure that makes the
   DF-ST clustering strategies finer than DF-IA (paper, section 4.1.2). *)

let fn_seq_puts = Kfun.register "seq_puts"
let fn_seq_buf_extend = Kfun.register "seq_buf_extend"
let fn_seq_read = Kfun.register "seq_read"
let fn_seq_copy = Kfun.register "seq_copy_to_user"

type t = {
  seq_buf : int Var.t;      (* bytes ever written through the seq interface *)
}

let init heap = { seq_buf = Var.alloc heap ~name:"seq.buf_len" ~width:16 0 }

(* Append a line to the seq buffer (renderer side). The buffer access
   sits two helpers deep, so only the call-stack context — not the
   instruction address — distinguishes which renderer (and which syscall)
   reached it. *)
let puts ctx t line =
  Kfun.call ctx fn_seq_puts (fun () ->
      Kfun.call ctx fn_seq_buf_extend (fun () ->
          let len = Var.read ctx t.seq_buf in
          Var.write ctx t.seq_buf (len + String.length line + 1)))

(* Drain the buffer into the reader's address space (read(2) side). *)
let read_out ctx t lines =
  Kfun.call ctx fn_seq_read (fun () ->
      Kfun.call ctx fn_seq_copy (fun () ->
          ignore (Var.read ctx t.seq_buf);
          String.concat "\n" lines))

(* Render a procfs file: emit every line through [puts], then hand the
   contents to the reader. *)
let render ctx t lines =
  List.iter (puts ctx t) lines;
  read_out ctx t lines
