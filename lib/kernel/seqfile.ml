(* The seq_file machinery backing procfs reads. All renderers emit lines
   through the shared [seq_puts]/[seq_read] helpers, which touch a common
   kernel buffer variable — a realistic source of benign cross-container
   data flows whose access sites coincide but whose call-stack contexts
   differ per renderer. This is precisely the structure that makes the
   DF-ST clustering strategies finer than DF-IA (paper, section 4.1.2). *)

let fn_seq_puts = Kfun.register "seq_puts"
let fn_seq_buf_extend = Kfun.register "seq_buf_extend"
let fn_seq_read = Kfun.register "seq_read"
let fn_seq_copy = Kfun.register "seq_copy_to_user"

type t = {
  seq_buf : int Var.t;      (* bytes ever written through the seq interface *)
  render_inflight : int Var.t;  (* race bug #3: 0 = idle, else rendering
                                   netns + 1 *)
  config : Config.t;
}

let init heap config =
  {
    seq_buf = Var.alloc heap ~name:"seq.buf_len" ~width:16 0;
    render_inflight = Var.alloc heap ~name:"seq.render_inflight" 0;
    config;
  }

(* Append a line to the seq buffer (renderer side). The buffer access
   sits two helpers deep, so only the call-stack context — not the
   instruction address — distinguishes which renderer (and which syscall)
   reached it. *)
let puts ctx t line =
  Kfun.call ctx fn_seq_puts (fun () ->
      Kfun.call ctx fn_seq_buf_extend (fun () ->
          let len = Var.read ctx t.seq_buf in
          Var.write ctx t.seq_buf (len + String.length line + 1)))

(* Drain the buffer into the reader's address space (read(2) side). *)
let read_out ctx t lines =
  Kfun.call ctx fn_seq_read (fun () ->
      Kfun.call ctx fn_seq_copy (fun () ->
          ignore (Var.read ctx t.seq_buf);
          String.concat "\n" lines))

(* Render a procfs file: emit every line through [puts], then hand the
   contents to the reader.

   Race bug #3: the buggy kernel publishes a global busy marker for the
   duration of the render and clears it before returning. Sequentially
   the marker is clear whenever a render starts; a reader whose
   schedule lands inside a *foreign* render concludes the shared buffer
   may be clobbered and appends a truncation notice to its own output.
   [netns] identifies the rendering namespace (readers racing their own
   nested renders are not perturbed — there are none in this model, but
   the identity check is what the real pattern would need). *)
let render ctx t ~netns lines =
  let race = Config.has t.config Bugs.RW3_seqfile_busy in
  let busy = if race then Var.read ctx t.render_inflight else 0 in
  if race then Var.write ctx t.render_inflight (netns + 1);
  let lines =
    if busy <> 0 && busy <> netns + 1 then lines @ [ "(seq_file: truncated)" ]
    else lines
  in
  List.iter (puts ctx t) lines;
  let out = read_out ctx t lines in
  if race then Var.write ctx t.render_inflight 0;
  out
