(** The tracing context threaded through every kernel operation: the
    live simulated call stack, the optional profiling sink, and the
    interrupt-context flag (accesses made in irq context are not
    reported, mirroring the paper's in_task() filter, section 5.1). *)

type t = {
  mutable sink : (Kevent.t -> unit) option;
  mutable stack : int list;            (** function ids, innermost first *)
  mutable in_irq : bool;
  mutable yield : (unit -> unit) option;
      (** preemption hook fired before every instrumented shared-memory
          access (see {!Var}); [None] outside interleaved execution *)
}

val create : unit -> t

val emit : t -> Kevent.t -> unit
(** Deliver an event to the sink, unless tracing is off or the context
    is in interrupt context. *)

val with_sink : t -> (Kevent.t -> unit) -> (unit -> 'a) -> 'a
(** Run a computation with a profiling sink installed; the previous sink
    is restored afterwards, exceptions included. *)

val with_irq : t -> (unit -> 'a) -> 'a
(** Run a computation in interrupt context. *)

val yield : t -> unit
(** Fire the preemption hook, unless none is installed or the context is
    in interrupt context. Yield points coincide exactly with the
    accesses the profiling sink reports: an access invisible to
    profiling (uninstrumented or in irq) is also not a scheduling
    point, so schedule search over solo profiles matches reality. *)

val with_yield : t -> (unit -> unit) -> (unit -> 'a) -> 'a
(** Run a computation with a preemption hook installed; the previous
    hook is restored afterwards, exceptions included. *)

val innermost : t -> int
(** The currently executing kernel function (0 at top level). *)

val caller : t -> int
(** The immediate caller of {!innermost} (0 when shallower). *)
