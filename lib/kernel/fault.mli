(** The deterministic fault-injection plane.

    Real KIT drives sender/receiver programs inside QEMU-KVM executors
    that routinely panic or hang when a generated program crashes the
    kernel; the server/client mode (paper, section 5.2) exists so
    campaigns survive dying workers. The model kernel cannot crash by
    accident, so this plane makes it crash *on purpose*: a schedule —
    derived deterministically from the campaign seed — arms panics on
    chosen syscalls, hangs (fuel exhaustion), VM boot failures and
    snapshot-restore corruption. Each armed fault is either transient
    (fires for its first [k] occurrences, then wears off — the flaky
    infrastructure case) or permanent (fires on every occurrence — the
    genuinely crashing test case). Supervised execution (see
    {!Kit_exec}) recovers from transient faults and quarantines
    permanent crashers. *)

type persistence =
  | Transient of int  (** fires for the first [k] occurrences, then wears off *)
  | Permanent         (** fires on every occurrence *)

type fault =
  | Panic_on of Kit_abi.Sysno.t  (** kernel panic when this syscall runs *)
  | Hang_on of Kit_abi.Sysno.t   (** burn all remaining fuel at this syscall *)
  | Boot_failure                 (** {!State.boot} fails *)
  | Snapshot_corruption          (** snapshot restore fails its integrity check *)

type arming = { fault : fault; persistence : persistence }

type schedule = arming list

type panic_info = {
  panic_sysno : Kit_abi.Sysno.t;  (** syscall executing when the kernel died *)
  occurrence : int;               (** how many times this fault had fired *)
  message : string;
}

exception Kernel_panic of panic_info
exception Fuel_exhausted
exception Boot_failed
exception Snapshot_corrupt

type t
(** A fault plane instance. One plane is owned by each booted kernel's
    environment and survives VM reboots (the schedule belongs to the
    *campaign*, not to one kernel instance). *)

val none : unit -> t
(** An inert plane: never fires, no fuel accounting. *)

val of_schedule : schedule -> t

val schedule : t -> schedule
(** The remaining schedule: armed faults with their current residual
    persistence (transient counts decrease as occurrences fire). *)

val is_inert : t -> bool

(* -- deterministic schedule generation ---------------------------------- *)

val schedule_of_seed : seed:int -> intensity:int -> schedule
(** [intensity] transient faults drawn deterministically from [seed]:
    panics and hangs on corpus-exercised syscalls, boot failures and
    snapshot corruptions, with occurrence counts in 1..3. Never emits
    permanent faults, so a supervisor with enough retries always
    recovers. *)

val transient_only : schedule -> bool

val max_transient_k : schedule -> int
(** The largest transient occurrence count in the schedule — a lower
    bound for the supervisor retry budget that guarantees recovery. *)

(* -- textual schedule format (CLI) -------------------------------------- *)

val parse_schedule : string -> (schedule, string) result
(** Comma-separated armings: [panic:SYSNO[:K]], [hang:SYSNO[:K]],
    [boot[:K]], [snap[:K]] where [K] is an occurrence count (default 1)
    or [perm] for permanent. E.g. ["panic:socket:2,boot,snap:perm"]. *)

val schedule_to_string : schedule -> string
(** Inverse of {!parse_schedule} (round-trips). *)

(* -- fuel --------------------------------------------------------------- *)

val set_fuel_limit : t -> int option -> unit
(** Per-execution step budget; [None] (the default) disables the
    deadline. Armed by the supervisor, re-armed at every {!begin_execution}. *)

val begin_execution : t -> unit
(** Start a new execution attempt: refill the fuel tank. Called by
    [Env.reset], i.e. once per snapshot reload. *)

(* -- hooks wired into the model kernel ---------------------------------- *)

val on_syscall : t -> Kit_abi.Sysno.t -> unit
(** Consume one unit of fuel and fire any armed panic/hang for this
    syscall. @raise Kernel_panic, @raise Fuel_exhausted. *)

val on_boot : t -> unit
(** @raise Boot_failed if a boot failure is armed. *)

val on_restore : t -> unit
(** @raise Snapshot_corrupt if snapshot corruption is armed. *)

(* -- observability ------------------------------------------------------ *)

type counters = {
  panics : int;               (** panics fired *)
  hangs : int;                (** hang faults fired *)
  fuel_exhaustions : int;     (** deadlines exceeded (incl. hang faults) *)
  boot_failures : int;
  snapshot_corruptions : int;
  executions : int;           (** execution attempts started *)
}

val counters : t -> counters
val total_fired : counters -> int

val pp_arming : Format.formatter -> arming -> unit
val pp_panic_info : Format.formatter -> panic_info -> unit
val pp_counters : Format.formatter -> counters -> unit
