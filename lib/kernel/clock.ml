(* Virtual kernel time. The clock advances by a fixed tick per syscall,
   from a per-execution base offset set by the execution environment;
   re-running a receiver program with different base offsets is how KIT
   exposes timing-dependent (non-deterministic) syscall results (paper,
   section 4.3.2).

   [jiffies] is an instrumented kernel variable but is only touched from
   interrupt context, so — like in the paper — its accesses never appear
   in profiles thanks to the in_task() filter. *)

let fn_timer_interrupt = Kfun.register "timer_interrupt"

type t = {
  base : int Var.t;                 (* per-execution boot offset *)
  ticks : int Var.t;                (* syscalls executed since snapshot *)
  jiffies : int Var.t;
}

let tick_quantum = 16

let init heap =
  {
    base = Var.alloc heap ~name:"clock.base" ~instrumented:false 1_000_000;
    ticks = Var.alloc heap ~name:"clock.ticks" ~instrumented:false 0;
    jiffies = Var.alloc heap ~name:"clock.jiffies" 0;
  }

(* Current kernel time; reading it is not a traced memory access (the
   clock is not a namespace-relevant shared variable, and real reads go
   through vDSO paths the paper does not instrument). *)
let now t = Var.peek t.base + (Var.peek t.ticks * tick_quantum)

let uptime_ticks t = Var.peek t.ticks

(* Advance time by one syscall quantum; the timer interrupt touches
   jiffies from irq context. *)
let tick ctx t =
  Var.poke t.ticks (Var.peek t.ticks + 1);
  Ctx.with_irq ctx (fun () ->
      Kfun.call ctx fn_timer_interrupt (fun () ->
          Var.write ctx t.jiffies (Var.read ctx t.jiffies + 1)))

(* Host-side control: set the boot offset for this execution. *)
let set_base t base = Var.poke t.base base
let base t = Var.peek t.base
