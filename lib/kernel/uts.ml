(* UTS namespace: per-namespace hostname. Correctly isolated — a
   negative control demonstrating that properly namespaced resources
   produce no interference reports. *)

open Maps

let fn_sethostname = Kfun.register "sys_sethostname"
let fn_gethostname = Kfun.register "sys_gethostname"

type t = {
  hostnames : string Int_map.t Var.t;   (* utsns -> hostname *)
}

let init heap =
  { hostnames = Var.alloc heap ~name:"uts.hostname" ~width:32 Int_map.empty }

let set ctx t ~utsns name =
  Kfun.call ctx fn_sethostname (fun () ->
      Var.write ctx t.hostnames (Int_map.add utsns name (Var.read ctx t.hostnames)))

let get ctx t ~utsns =
  Kfun.call ctx fn_gethostname (fun () ->
      Option.value ~default:"(none)"
        (Int_map.find_opt utsns (Var.read ctx t.hostnames)))
