(* Linux namespace kinds and per-process namespace sets (paper,
   Table 1). Instance 0 of every kind is the initial (host) namespace. *)

type kind = Pid | Mount | Uts | Ipc | Net | User | Cgroup | Time

let all_kinds = [ Pid; Mount; Uts; Ipc; Net; User; Cgroup; Time ]

let kind_to_string = function
  | Pid -> "pid"
  | Mount -> "mnt"
  | Uts -> "uts"
  | Ipc -> "ipc"
  | Net -> "net"
  | User -> "user"
  | Cgroup -> "cgroup"
  | Time -> "time"

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

let kind_flag k =
  let open Kit_abi.Consts in
  match k with
  | Pid -> clone_newpid
  | Mount -> clone_newns
  | Uts -> clone_newuts
  | Ipc -> clone_newipc
  | Net -> clone_newnet
  | User -> clone_newuser
  | Cgroup -> clone_newcgroup
  | Time -> clone_newtime

type set = {
  pid : int;
  mount : int;
  uts : int;
  ipc : int;
  net : int;
  user : int;
  cgroup : int;
  time : int;
}

let initial =
  { pid = 0; mount = 0; uts = 0; ipc = 0; net = 0; user = 0; cgroup = 0;
    time = 0 }

let get set = function
  | Pid -> set.pid
  | Mount -> set.mount
  | Uts -> set.uts
  | Ipc -> set.ipc
  | Net -> set.net
  | User -> set.user
  | Cgroup -> set.cgroup
  | Time -> set.time

let put set kind inst =
  match kind with
  | Pid -> { set with pid = inst }
  | Mount -> { set with mount = inst }
  | Uts -> { set with uts = inst }
  | Ipc -> { set with ipc = inst }
  | Net -> { set with net = inst }
  | User -> { set with user = inst }
  | Cgroup -> { set with cgroup = inst }
  | Time -> { set with time = inst }

let pp ppf set =
  let field k = Fmt.str "%s:%d" (kind_to_string k) (get set k) in
  Fmt.pf ppf "{%s}" (String.concat " " (List.map field all_kinds))
