(* Kernel function registry and call-site instrumentation. Every model
   kernel function is registered once (at module initialisation) and gets
   a unique function id; [call] brackets its execution with function
   entry/exit events and maintains the context's simulated call stack,
   exactly the information the paper's compiler pass emits (section 5.1).

   Functions are assumed to return exactly once; [call] restores the
   stack even on exceptions, matching the paper's noreturn exclusion. *)

let names : (int, string) Hashtbl.t = Hashtbl.create 64
let ids : (string, int) Hashtbl.t = Hashtbl.create 64
let next = ref 1

let register name =
  match Hashtbl.find_opt ids name with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    Hashtbl.add ids name id;
    Hashtbl.add names id name;
    id

let name id =
  match Hashtbl.find_opt names id with
  | Some n -> n
  | None -> Printf.sprintf "f%d" id

let id_of_name n = Hashtbl.find_opt ids n

let call ctx fn f =
  Ctx.emit ctx (Kevent.Fn_enter fn);
  ctx.Ctx.stack <- fn :: ctx.Ctx.stack;
  let pop () =
    (match ctx.Ctx.stack with
    | _ :: rest -> ctx.Ctx.stack <- rest
    | [] -> ());
    Ctx.emit ctx (Kevent.Fn_exit fn)
  in
  Fun.protect ~finally:pop f
