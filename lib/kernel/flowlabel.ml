(* IPv6 flow label management (paper, Figure 5 and bugs #2/#4).

   Linux uses a two-stage model: while no *exclusive* flow label exists,
   any label may be used unregistered; once one exists, the kernel
   switches to strict management and rejects unregistered labels on data
   transmission (bug #2's send path) and connection setup (bug #4's
   connect path).

   The bug: the switch, ipv6_flowlabel_exclusive, is a global static key
   rather than per net namespace, so one container registering an
   exclusive label flips every container into strict mode. The static
   key is implemented by jump-label code patching, so when the kernel is
   built with CONFIG_JUMP_LABEL the profiler cannot see accesses to it
   (paper, section 6.1) — modelled by allocating the variable
   uninstrumented in that configuration. *)

open Maps

let fn_fl_create = Kfun.register "fl_create"
let fn_fl_sock_lookup_send = Kfun.register "fl6_sock_lookup_send"
let fn_fl_sock_lookup_connect = Kfun.register "fl6_sock_lookup_connect"

type t = {
  exclusive : int Var.t;            (* global static-key counter *)
  exclusive_perns : int Int_map.t Var.t;   (* fixed kernel's per-ns counter *)
  labels : (int * int) list Var.t;  (* registered (netns, label) pairs *)
  config : Config.t;
}

let init heap config =
  let instrumented = not config.Config.jump_label in
  {
    exclusive =
      Var.alloc heap ~name:"ipv6.flowlabel_exclusive" ~width:4 ~instrumented 0;
    exclusive_perns =
      Var.alloc heap ~name:"ipv6.flowlabel_exclusive_perns" ~width:16
        ~instrumented Int_map.empty;
    labels = Var.alloc heap ~name:"ipv6.fl_list" ~width:32 [];
    config;
  }

let registered ctx t ~netns ~label =
  List.exists (fun (ns, l) -> ns = netns && l = label) (Var.read ctx t.labels)

(* Register a flow label; exclusive registrations bump the management
   mode switch. *)
let create ctx t ~netns ~label ~exclusive =
  Kfun.call ctx fn_fl_create (fun () ->
      if registered ctx t ~netns ~label then Error Errno.EEXIST
      else begin
        Var.write ctx t.labels ((netns, label) :: Var.read ctx t.labels);
        if exclusive then begin
          Var.write ctx t.exclusive (Var.read ctx t.exclusive + 1);
          let perns = Var.read ctx t.exclusive_perns in
          let cur = Option.value ~default:0 (Int_map.find_opt netns perns) in
          Var.write ctx t.exclusive_perns (Int_map.add netns (cur + 1) perns)
        end;
        Ok ()
      end)

(* Is strict management active for [netns]? The buggy kernel consults the
   global switch; the fixed kernel the per-namespace count. *)
let strict_mode ctx t ~bug ~netns =
  if Config.has t.config bug then Var.read ctx t.exclusive > 0
  else
    let perns = Var.read ctx t.exclusive_perns in
    Option.value ~default:0 (Int_map.find_opt netns perns) > 0

(* Validate a label use on the send path (bug #2). Label 0 means the
   packet carries no flow label and is always admissible. *)
let check_send ctx t ~netns ~label =
  Kfun.call ctx fn_fl_sock_lookup_send (fun () ->
      if label = 0 then Ok ()
      else if not (strict_mode ctx t ~bug:Bugs.B2_flowlabel_send ~netns) then
        Ok ()
      else if registered ctx t ~netns ~label then Ok ()
      else Error Errno.ENOENT)

(* Validate a label use on the connect path (bug #4). *)
let check_connect ctx t ~netns ~label =
  Kfun.call ctx fn_fl_sock_lookup_connect (fun () ->
      if label = 0 then Ok ()
      else if not (strict_mode ctx t ~bug:Bugs.B4_flowlabel_connect ~netns) then
        Ok ()
      else if registered ctx t ~netns ~label then Ok ()
      else Error Errno.ENOENT)
