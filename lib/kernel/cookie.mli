(** Socket cookies (paper, bug #6): assigned lazily from a counter on
    first request; global on the buggy kernel, per net namespace on the
    fixed one. *)

type t

val init : Heap.t -> Config.t -> t
val generate : Ctx.t -> t -> netns:int -> int
