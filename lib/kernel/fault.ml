(* The deterministic fault-injection plane.

   Real KIT executors routinely panic or hang when a generated program
   crashes the kernel under test; the model kernel cannot crash by
   accident, so this plane makes it crash on purpose, from a schedule
   derived deterministically from the campaign seed. Armed faults fire
   at well-defined points — syscall entry, boot, snapshot restore — and
   are either transient (wear off after k occurrences) or permanent.
   The supervised runtime in Kit_exec recovers from the former and
   quarantines test cases hitting the latter. *)

module Sysno = Kit_abi.Sysno

type persistence = Transient of int | Permanent

type fault =
  | Panic_on of Sysno.t
  | Hang_on of Sysno.t
  | Boot_failure
  | Snapshot_corruption

type arming = { fault : fault; persistence : persistence }

type schedule = arming list

type panic_info = {
  panic_sysno : Sysno.t;
  occurrence : int;
  message : string;
}

exception Kernel_panic of panic_info
exception Fuel_exhausted
exception Boot_failed
exception Snapshot_corrupt

(* One armed fault: [left] counts down remaining firings (-1 = forever),
   [fired] counts up for occurrence reporting. *)
type entry = {
  e_fault : fault;
  mutable left : int;
  mutable fired : int;
}

type counters = {
  panics : int;
  hangs : int;
  fuel_exhaustions : int;
  boot_failures : int;
  snapshot_corruptions : int;
  executions : int;
}

type t = {
  entries : entry list;
  sys_panics : (Sysno.t, entry) Hashtbl.t;
  sys_hangs : (Sysno.t, entry) Hashtbl.t;
  boots : entry list;
  restores : entry list;
  has_sys_faults : bool;
  mutable fuel_limit : int option;
  mutable fuel : int;
  mutable c_panics : int;
  mutable c_hangs : int;
  mutable c_fuel : int;
  mutable c_boots : int;
  mutable c_restores : int;
  mutable c_execs : int;
}

let entry_of_arming a =
  let left = match a.persistence with Transient k -> max 0 k | Permanent -> -1 in
  { e_fault = a.fault; left; fired = 0 }

let of_schedule sched =
  let entries = List.map entry_of_arming sched in
  let sys_panics = Hashtbl.create 8 and sys_hangs = Hashtbl.create 8 in
  let boots = ref [] and restores = ref [] in
  List.iter
    (fun e ->
      match e.e_fault with
      | Panic_on s -> Hashtbl.add sys_panics s e
      | Hang_on s -> Hashtbl.add sys_hangs s e
      | Boot_failure -> boots := e :: !boots
      | Snapshot_corruption -> restores := e :: !restores)
    entries;
  {
    entries;
    sys_panics;
    sys_hangs;
    boots = List.rev !boots;
    restores = List.rev !restores;
    has_sys_faults = Hashtbl.length sys_panics > 0 || Hashtbl.length sys_hangs > 0;
    fuel_limit = None;
    fuel = max_int;
    c_panics = 0;
    c_hangs = 0;
    c_fuel = 0;
    c_boots = 0;
    c_restores = 0;
    c_execs = 0;
  }

let none () = of_schedule []

let persistence_of_entry e =
  if e.left < 0 then Permanent else Transient e.left

let schedule t =
  List.filter_map
    (fun e ->
      if e.left = 0 then None
      else Some { fault = e.e_fault; persistence = persistence_of_entry e })
    t.entries

let is_inert t = t.entries = [] && t.fuel_limit = None

(* An entry is active while it has firings left; firing consumes one. *)
let active e = e.left <> 0

let fire e =
  if e.left > 0 then e.left <- e.left - 1;
  e.fired <- e.fired + 1

let find_active tbl sysno =
  List.find_opt active (Hashtbl.find_all tbl sysno)

(* -- fuel ---------------------------------------------------------------- *)

let set_fuel_limit t limit =
  t.fuel_limit <- limit;
  t.fuel <- (match limit with Some n -> n | None -> max_int)

let begin_execution t =
  t.c_execs <- t.c_execs + 1;
  t.fuel <- (match t.fuel_limit with Some n -> n | None -> max_int)

(* -- hooks --------------------------------------------------------------- *)

let on_syscall t sysno =
  (match t.fuel_limit with
  | None -> ()
  | Some _ ->
    t.fuel <- t.fuel - 1;
    if t.fuel < 0 then begin
      t.c_fuel <- t.c_fuel + 1;
      raise Fuel_exhausted
    end);
  if t.has_sys_faults then begin
    (match find_active t.sys_panics sysno with
    | Some e ->
      fire e;
      t.c_panics <- t.c_panics + 1;
      raise
        (Kernel_panic
           {
             panic_sysno = sysno;
             occurrence = e.fired;
             message =
               Printf.sprintf "kernel BUG at sys_%s (occurrence %d)"
                 (Sysno.to_string sysno) e.fired;
           })
    | None -> ());
    match find_active t.sys_hangs sysno with
    | Some e ->
      (* The syscall spins: burn the whole budget. With no budget armed
         this still trips — the watchdog of an unsupervised executor. *)
      fire e;
      t.c_hangs <- t.c_hangs + 1;
      t.c_fuel <- t.c_fuel + 1;
      t.fuel <- 0;
      raise Fuel_exhausted
    | None -> ()
  end

let on_boot t =
  match List.find_opt active t.boots with
  | Some e ->
    fire e;
    t.c_boots <- t.c_boots + 1;
    raise Boot_failed
  | None -> ()

let on_restore t =
  match List.find_opt active t.restores with
  | Some e ->
    fire e;
    t.c_restores <- t.c_restores + 1;
    raise Snapshot_corrupt
  | None -> ()

(* -- deterministic schedule generation ----------------------------------- *)

(* A small splitmix-style generator so schedules depend only on the
   seed, not on any global RNG state. *)
let mix state =
  let z = ref Int64.(add !state 0x9E3779B97F4A7C15L) in
  state := !z;
  z := Int64.(mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L);
  z := Int64.(mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL);
  (* [to_int] keeps the low 63 bits, so the top bit of the shifted value
     can still land in the native sign bit — mask it off. *)
  Int64.to_int (Int64.logxor !z (Int64.shift_right_logical !z 31)) land max_int

let schedule_of_seed ~seed ~intensity =
  let state = ref (Int64.of_int (seed lxor 0x6b17)) in
  let pick n = mix state mod max 1 n in
  let sysnos = Array.of_list Sysno.all in
  List.init (max 0 intensity) (fun _ ->
      let k = 1 + pick 3 in
      let fault =
        match pick 100 with
        | r when r < 40 -> Panic_on sysnos.(pick (Array.length sysnos))
        | r when r < 70 -> Hang_on sysnos.(pick (Array.length sysnos))
        | r when r < 85 -> Boot_failure
        | _ -> Snapshot_corruption
      in
      { fault; persistence = Transient k })

let transient_only sched =
  List.for_all
    (fun a -> match a.persistence with Transient _ -> true | Permanent -> false)
    sched

let max_transient_k sched =
  List.fold_left
    (fun acc a ->
      match a.persistence with Transient k -> max acc k | Permanent -> acc)
    0 sched

(* -- textual schedule format --------------------------------------------- *)

let persistence_to_string = function
  | Permanent -> "perm"
  | Transient k -> string_of_int k

let arming_to_string a =
  match a.fault with
  | Panic_on s ->
    Printf.sprintf "panic:%s:%s" (Sysno.to_string s)
      (persistence_to_string a.persistence)
  | Hang_on s ->
    Printf.sprintf "hang:%s:%s" (Sysno.to_string s)
      (persistence_to_string a.persistence)
  | Boot_failure -> Printf.sprintf "boot:%s" (persistence_to_string a.persistence)
  | Snapshot_corruption ->
    Printf.sprintf "snap:%s" (persistence_to_string a.persistence)

let schedule_to_string sched = String.concat "," (List.map arming_to_string sched)

let parse_persistence = function
  | "perm" | "inf" -> Ok Permanent
  | s -> (
    match int_of_string_opt s with
    | Some k when k > 0 -> Ok (Transient k)
    | Some _ | None -> Error (Printf.sprintf "bad occurrence count %S" s))

let parse_sysno s =
  match Sysno.of_string s with
  | Some sysno -> Ok sysno
  | None -> Error (Printf.sprintf "unknown syscall %S" s)

let parse_arming spec =
  let ( let* ) r f = Result.bind r f in
  match String.split_on_char ':' (String.trim spec) with
  | [ "panic"; s ] | [ "panic"; s; "1" ] ->
    let* sysno = parse_sysno s in
    Ok { fault = Panic_on sysno; persistence = Transient 1 }
  | [ "panic"; s; k ] ->
    let* sysno = parse_sysno s in
    let* p = parse_persistence k in
    Ok { fault = Panic_on sysno; persistence = p }
  | [ "hang"; s ] ->
    let* sysno = parse_sysno s in
    Ok { fault = Hang_on sysno; persistence = Transient 1 }
  | [ "hang"; s; k ] ->
    let* sysno = parse_sysno s in
    let* p = parse_persistence k in
    Ok { fault = Hang_on sysno; persistence = p }
  | [ "boot" ] -> Ok { fault = Boot_failure; persistence = Transient 1 }
  | [ "boot"; k ] ->
    let* p = parse_persistence k in
    Ok { fault = Boot_failure; persistence = p }
  | [ "snap" ] -> Ok { fault = Snapshot_corruption; persistence = Transient 1 }
  | [ "snap"; k ] ->
    let* p = parse_persistence k in
    Ok { fault = Snapshot_corruption; persistence = p }
  | _ -> Error (Printf.sprintf "cannot parse fault spec %S" spec)

let parse_schedule s =
  let specs =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  List.fold_left
    (fun acc spec ->
      match (acc, parse_arming spec) with
      | Error _, _ -> acc
      | Ok _, Error e -> Error e
      | Ok l, Ok a -> Ok (a :: l))
    (Ok []) specs
  |> Result.map List.rev

(* -- observability -------------------------------------------------------- *)

let counters t =
  {
    panics = t.c_panics;
    hangs = t.c_hangs;
    fuel_exhaustions = t.c_fuel;
    boot_failures = t.c_boots;
    snapshot_corruptions = t.c_restores;
    executions = t.c_execs;
  }

let total_fired c =
  c.panics + c.fuel_exhaustions + c.boot_failures + c.snapshot_corruptions

let pp_arming ppf a = Fmt.string ppf (arming_to_string a)

let pp_panic_info ppf p =
  Fmt.pf ppf "panic in sys_%s: %s" (Sysno.to_string p.panic_sysno) p.message

let pp_counters ppf c =
  Fmt.pf ppf
    "%d panics, %d hangs, %d fuel exhaustions, %d boot failures, %d snapshot corruptions over %d executions"
    c.panics c.hangs c.fuel_exhaustions c.boot_failures c.snapshot_corruptions
    c.executions
