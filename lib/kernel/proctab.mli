(** The process table: per-process namespace sets and file-descriptor
    tables. Descriptors point at sockets (by socket id) or at file
    objects (procfs entries, /tmp files). *)

type file = {
  path : string;
  inode : int;
  dev_minor : int;
}

type fd_obj =
  | Fd_sock of int
  | Fd_file of file

type proc = {
  pid : int;
  uid : int;
  ns : Namespace.set;
  fds : fd_obj Maps.Int_map.t;
  next_fd : int;
}

type t

val init : Heap.t -> t

val spawn : Ctx.t -> t -> uid:int -> ns:Namespace.set -> proc
val find : Ctx.t -> t -> int -> proc option

val find_exn : Ctx.t -> t -> int -> proc
(** @raise Invalid_argument on unknown pids — a harness bug, not a
    kernel condition. *)

val update : Ctx.t -> t -> proc -> unit

val fd_install : Ctx.t -> t -> pid:int -> fd_obj -> int
(** Install an fd object in [pid]'s table; returns the fd number. *)

val fd_lookup : Ctx.t -> t -> pid:int -> int -> fd_obj option
val fd_close : Ctx.t -> t -> pid:int -> int -> bool

val unshare : Ctx.t -> t -> pid:int -> flags:int -> Namespace.set option
(** Allocate fresh namespace instances for the kinds selected by
    [flags] and move [pid] into them. *)
