(* The procfs surface: path-based rendering of the pseudo files the
   evaluation exercises. Files under /proc/net are namespace-scoped (and
   protected); /proc/crypto, /proc/slabinfo and /proc/uptime are global
   by design. Every renderer pushes its lines through the shared seq_file
   helpers. procfs files report size 0 and a time-of-read mtime, like
   real procfs. *)

let fn_proc_open = Kfun.register "proc_reg_open"
let fn_uptime_show = Kfun.register "uptime_proc_show"
let fn_slabinfo_show = Kfun.register "slabinfo_show"

(* One seq-show wrapper function per procfs path: the seq_file emission
   happens in this function's dynamic extent, so the shared seq helpers
   are reached through per-file call-stack contexts — the structure the
   DF-ST clustering strategies rely on. *)
let fn_seq_show_of_path =
  let table = Hashtbl.create 16 in
  List.iter
    (fun path ->
      Hashtbl.add table path (Kfun.register ("proc_seq_show:" ^ path)))
    Kit_abi.Consts.proc_paths;
  fun path ->
    match Hashtbl.find_opt table path with
    | Some fn -> fn
    | None -> fn_proc_open

type t = {
  packet : Packet.t;
  protomem : Protomem.t;
  ipvs : Ipvs.t;
  conntrack : Conntrack.t;
  crypto : Crypto.t;
  slab : Slab.t;
  seq : Seqfile.t;
}

let make ~packet ~protomem ~ipvs ~conntrack ~crypto ~slab ~seq =
  { packet; protomem; ipvs; conntrack; crypto; slab; seq }

let is_proc_path path =
  String.length path >= 6 && String.equal (String.sub path 0 6) "/proc/"

(* Allocate the open-file object for a procfs path; the minor device
   number comes from the global anonymous-device counter. *)
let open_file ctx t devid ~path =
  ignore t;
  Kfun.call ctx fn_proc_open (fun () ->
      let dev_minor = Devid.alloc ctx devid in
      let inode = 0x7000 + Hashtbl.hash path land 0xFFF in
      { Proctab.path; inode; dev_minor })

(* Render [path] for a reader in net namespace [netns] at time [now].
   Returns [None] for paths that do not exist. *)
let render ctx t ~netns ~now path =
  let open Kit_abi.Consts in
  let lines =
    if String.equal path proc_net_ptype then
      Some (Packet.seq_show ctx t.packet ~cur:netns)
    else if String.equal path proc_net_sockstat then
      Some (Protomem.sockstat_show ctx t.protomem ~cur:netns)
    else if String.equal path proc_net_protocols then
      Some (Protomem.protocols_show ctx t.protomem ~cur:netns)
    else if String.equal path proc_net_ip_vs then
      Some (Ipvs.seq_show ctx t.ipvs ~cur:netns)
    else if String.equal path proc_net_conntrack then
      Some (Conntrack.seq_show ctx t.conntrack ~cur:netns ~now)
    else if String.equal path proc_crypto then
      Some (Crypto.seq_show ctx t.crypto)
    else if String.equal path proc_slabinfo then
      Some
        (Kfun.call ctx fn_slabinfo_show (fun () ->
             [ "slabinfo - version: 2.1";
               Printf.sprintf "kmalloc-64  %d  %d" (Slab.count ctx t.slab)
                 (Slab.count ctx t.slab) ]))
    else if String.equal path proc_uptime then
      Some
        (Kfun.call ctx fn_uptime_show (fun () ->
             [ Printf.sprintf "%d.%02d %d.%02d" (now / 100) (now mod 100)
                 (now / 200) (now mod 61) ]))
    else None
  in
  let emit lines =
    Kfun.call ctx (fn_seq_show_of_path path) (fun () ->
        Seqfile.render ctx t.seq ~netns lines)
  in
  Option.map emit lines
