(** The global socket table.

    Socket ids are allocated from a per-boot random base, which is why
    receiver programs cannot name a sender's socket with a constant —
    the property that makes known bug G undetectable (paper,
    section 6.2). *)

type sock = {
  id : int;
  dom : int;                        (** socket domain (ABI constant) *)
  netns : int;
  userns : int;
  owner : int;                      (** owning pid *)
  bound : int option;               (** bound port *)
  cookie : int option;
  assoc : int option;               (** SCTP association id *)
  alg : string option;              (** AF_ALG algorithm *)
}

type t

val init : Heap.t -> t

val randomize_base : t -> Krng.t -> unit
(** Called once per boot, after the entropy source is seeded. *)

val create :
  Ctx.t -> t -> dom:int -> netns:int -> userns:int -> owner:int -> sock

val find : Ctx.t -> t -> int -> sock option
val update : Ctx.t -> t -> sock -> unit
val remove : Ctx.t -> t -> int -> unit
val fold : Ctx.t -> t -> (sock -> 'a -> 'a) -> 'a -> 'a
