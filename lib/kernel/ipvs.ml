(* IP Virtual Server state and its procfs dump (known bug C). The buggy
   /proc/net/ip_vs renderer prints the service table of every net
   namespace instead of only the reader's. *)

let fn_ipvs_add = Kfun.register "ip_vs_add_service"
let fn_ipvs_seq_show = Kfun.register "ip_vs_info_seq_show"

type service = {
  netns : int;
  port : int;
}

type t = {
  services : service list Var.t;
  config : Config.t;
}

let init heap config =
  { services = Var.alloc heap ~name:"ipvs.svc_table" ~width:32 []; config }

let add ctx t ~netns ~port =
  Kfun.call ctx fn_ipvs_add (fun () ->
      Var.write ctx t.services ({ netns; port } :: Var.read ctx t.services))

let seq_show ctx t ~cur =
  Kfun.call ctx fn_ipvs_seq_show (fun () ->
      let show_foreign = Config.has t.config Bugs.KC_ipvs in
      let visible s = show_foreign || s.netns = cur in
      let line s = Printf.sprintf "TCP 0A000001:%04X rr" s.port in
      "IP Virtual Server version 1.2.1 (size=4096)"
      :: "Prot LocalAddress:Port Scheduler Flags"
      :: List.rev_map line (List.filter visible (Var.read ctx t.services)))
