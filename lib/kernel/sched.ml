(* Deterministic cooperative scheduler over the kernel's instrumented
   memory accesses.

   Tasks (a sender program, a receiver program) run as effect-handled
   coroutines: [Ctx.yield] — fired by [Var.trace] immediately before
   every instrumented, non-irq access — performs the [Yield] effect,
   suspending the task and returning control to the driver. A task with
   K profiled accesses therefore executes as K+1 resume segments:
   segment 0 runs from the start to just before the first access, and
   segment r (1 <= r <= K) performs access r and runs to just before
   access r+1 (or to completion when r = K).

   The driver picks the next task by a pure function of (seed, step):
   no wall clock, no Random state, so the same seed always produces the
   byte-identical interleaving. [Sequential] always picks the
   lowest-indexed runnable task, which for [sender; receiver] runs the
   sender to completion and then the receiver — reproducing the
   sequential runner's phase A byte-for-byte (the yields are pure
   control transfers; no kernel state is touched between suspension and
   resumption of the same task).

   [simulate] replays the exact decision procedure abstractly over
   per-task access counts, producing the merged access order a seed
   induces without executing anything. The runner's partial-order
   reduction builds on it: two seeds whose simulated orders agree on
   all conflicting accesses are equivalent, so only one representative
   runs. Driver and simulator share [choose] and the step discipline,
   so the abstraction can only diverge from reality if interference
   itself changes a task's access count (measured, and empirically rare
   — see the POR soundness property in test/test_sched.ml). *)

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type schedule = Sequential | Seeded of int

exception Aborted

let pp_schedule ppf = function
  | Sequential -> Fmt.string ppf "sequential"
  | Seeded s -> Fmt.pf ppf "seed:%d" s

(* splitmix-style integer mix; pure and 63-bit safe. *)
let mix ~seed ~step =
  let z = (seed * 0x9E3779B9) + (step * 0x85EBCA6B) + 0x165667B1 in
  let z = z lxor (z lsr 15) in
  let z = z * 0xC2B2AE35 in
  let z = z lxor (z lsr 13) in
  z land max_int

let choose schedule ~step ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.choose: no runnable task"
  | [ i ] -> i
  | first :: _ -> (
    match schedule with
    | Sequential -> first
    | Seeded seed ->
      let m = List.length runnable in
      List.nth runnable (mix ~seed ~step mod m))

type task =
  | Not_started of (unit -> unit)
  | Ready of (unit, unit) continuation
  | Done

let run ?(schedule = Sequential) ctx thunks =
  let tasks = Array.of_list (List.map (fun f -> Not_started f) thunks) in
  let n = Array.length tasks in
  let current = ref 0 in
  let steps = ref 0 in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match tasks.(i) with Done -> () | _ -> acc := i :: !acc
    done;
    !acc
  in
  let handler =
    {
      retc = (fun () -> tasks.(!current) <- Done);
      exnc =
        (fun e ->
          tasks.(!current) <- Done;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some (fun (k : (a, unit) continuation) -> tasks.(!current) <- Ready k)
          | _ -> None);
    }
  in
  (* A crash in one task (kernel panic, fuel exhaustion) must unwind the
     other tasks' stacks too: their [Kfun.call] finalizers restore the
     shared ctx stack. [discontinue] raises [Aborted] at each suspension
     point; the per-task handler marks the task [Done] and re-raises,
     and we swallow the expected [Aborted] here. *)
  let abort e =
    Array.iteri
      (fun i st ->
        match st with
        | Ready k -> (
          current := i;
          try discontinue k Aborted with Aborted -> ())
        | Not_started _ -> tasks.(i) <- Done
        | Done -> ())
      tasks;
    raise e
  in
  let hook () = perform Yield in
  let saved = ctx.Ctx.yield in
  ctx.Ctx.yield <- Some hook;
  Fun.protect
    ~finally:(fun () -> ctx.Ctx.yield <- saved)
    (fun () ->
      let rec loop () =
        match runnable () with
        | [] -> ()
        | rs ->
          let i = choose schedule ~step:!steps ~runnable:rs in
          incr steps;
          current := i;
          (match tasks.(i) with
          | Not_started f -> (
            try match_with f () handler with e -> abort e)
          | Ready k -> ( try continue k () with e -> abort e)
          | Done -> assert false);
          loop ()
      in
      loop ());
  !steps

let simulate schedule counts =
  let n = Array.length counts in
  let picks = Array.make n 0 in
  let steps = ref 0 in
  let order = ref [] in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if picks.(i) <= counts.(i) then acc := i :: !acc
    done;
    !acc
  in
  let rec loop () =
    match runnable () with
    | [] -> ()
    | rs ->
      let i = choose schedule ~step:!steps ~runnable:rs in
      incr steps;
      if picks.(i) > 0 then order := (i, picks.(i) - 1) :: !order;
      picks.(i) <- picks.(i) + 1;
      loop ()
  in
  loop ();
  List.rev !order
