(* RDS socket binding (paper, bug #3). The RDS bind table ought to be
   keyed by (net namespace, address) but the namespace support for RDS
   stopped halfway: the buggy kernel keys bindings by address alone, so a
   bind in one container makes the same address unavailable in every
   other container. *)

open Maps

let fn_rds_bind = Kfun.register "rds_bind"

type t = {
  bound : int Pair_map.t Var.t;   (* (netns, port) -> socket id; the buggy
                                     kernel uses netns = 0 for every key *)
  config : Config.t;
}

let init heap config =
  { bound = Var.alloc heap ~name:"rds.bind_table" ~width:32 Pair_map.empty;
    config }

let key t ~netns ~port =
  if Config.has t.config Bugs.B3_rds_bind then (0, port) else (netns, port)

let bind ctx t ~netns ~port ~sock =
  Kfun.call ctx fn_rds_bind (fun () ->
      let k = key t ~netns ~port in
      let table = Var.read ctx t.bound in
      match Pair_map.find_opt k table with
      | Some _ -> Error Errno.EADDRINUSE
      | None ->
        Var.write ctx t.bound (Pair_map.add k sock table);
        Ok ())
