(** Time namespaces: a per-namespace boot-time offset applied to clock
    readings. The subsystem the paper cannot test with plain functional
    interference testing (section 7) — the protected resource is
    non-deterministic — and the target of the bounds-based detector
    extension.

    Extension bug XT: the buggy kernel keeps one global offset, so
    setting the clock in one container shifts every container's time. *)

type t

val init : Heap.t -> Config.t -> t
val set : Ctx.t -> t -> timens:int -> int -> unit
val get : Ctx.t -> t -> timens:int -> int
