(** The crypto algorithm registry behind /proc/crypto. Registration is
    global by design (not a namespace bug); divergences observed here
    are the false-positive class the paper drops by discarding the
    corresponding AGG-R group (section 6.4). *)

type t

val init : Heap.t -> t
val register : Ctx.t -> t -> string -> (unit, Errno.t) result
val seq_show : Ctx.t -> t -> string list
