(* Quickstart: detect one functional interference bug with the public
   API, end to end.

     dune exec examples/quickstart.exe

   The sender container creates a packet socket; the receiver container
   reads /proc/net/ptype. On the buggy kernel (Linux 5.13 model) the
   receiver sees the sender's packet socket — bug #1 of the paper. *)

module Syzlang = Kit_abi.Syzlang
module Config = Kit_kernel.Config
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Compare = Kit_trace.Compare

let () =
  (* 1. Write the two test programs in the syzlang-style format. *)
  let sender = Syzlang.parse "r0 = socket(3)" (* AF_PACKET *) in
  let receiver =
    Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)"
  in

  (* 2. Boot the model kernel with two containers and snapshot it. *)
  let env = Env.create (Config.v5_13 ()) in
  let runner = Runner.create env in

  (* 3. Execute the test case twice: with and without the sender. *)
  let outcome = Runner.execute runner ~sender ~receiver in

  (* 4. Any masked divergence is functional interference. *)
  match outcome.Runner.masked_diffs with
  | [] -> Fmt.pr "no functional interference detected@."
  | diffs ->
    Fmt.pr "functional interference detected on receiver calls [%a]:@."
      (Fmt.list ~sep:(Fmt.any "; ") Fmt.int)
      outcome.Runner.interfered;
    List.iter (fun d -> Fmt.pr "  %a@." Compare.pp_diff d) diffs;
    Fmt.pr "@.This is bug #1 of the paper: /proc/net/ptype leaks packet@.";
    Fmt.pr "sockets across net namespaces (missing ns check in@.";
    Fmt.pr "ptype_seq_show, fixed upstream within a week of the report).@."
