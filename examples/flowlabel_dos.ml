(* Case study of bug #2 (paper, section 6.1, Figure 5): the IPv6
   exclusive flow label denial of service.

     dune exec examples/flowlabel_dos.exe

   One container registering an exclusive flow label flips *every*
   container into the strict flow-label management model, so a victim
   whose transmissions used unregistered labels starts failing — a
   cross-container denial of service. The demo also shows the profiling
   blind spot: with CONFIG_JUMP_LABEL the static key's accesses are
   invisible to the instrumentation, so data-flow test generation cannot
   pair these programs (the paper found the bug via random generation). *)

module Syzlang = Kit_abi.Syzlang
module Program = Kit_abi.Program
module Config = Kit_kernel.Config
module Sysret = Kit_kernel.Sysret
module Interp = Kit_kernel.Interp
module Kevent = Kit_kernel.Kevent
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Collect = Kit_profile.Collect
module Stackrec = Kit_profile.Stackrec

let sender_text = "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)"
let receiver_text = "r0 = socket(9)\nr1 = send(r0, 8, 2)"

let show label results =
  let show_one (r : Interp.result) =
    Fmt.pr "    %a = %a@." Program.pp_call r.Interp.call Sysret.pp r.Interp.ret
  in
  Fmt.pr "%s:@." label;
  List.iter show_one results

let run_pair config =
  let env = Env.create config in
  Env.reset env ~base:env.Env.base0;
  let solo =
    Interp.run env.Env.kernel ~pid:env.Env.receiver_pid
      (Syzlang.parse receiver_text)
  in
  Env.reset env ~base:env.Env.base0;
  let _ =
    Interp.run env.Env.kernel ~pid:env.Env.sender_pid
      (Syzlang.parse sender_text)
  in
  let after =
    Interp.run env.Env.kernel ~pid:env.Env.receiver_pid
      (Syzlang.parse receiver_text)
  in
  (solo, after)

(* Count instrumented accesses the profiler sees for the receiver's send
   path under a given kernel configuration. *)
let flowlabel_accesses config =
  let profiler = Collect.create config in
  let profile =
    Collect.profile profiler ~role:Collect.Receiver
      (Syzlang.parse receiver_text)
  in
  List.length
    (List.filter
       (fun (a : Stackrec.access) ->
         match a.Stackrec.rw with Kevent.Read -> true | Kevent.Write -> false)
       profile.Collect.accesses)

let () =
  Fmt.pr "=== bug #2: exclusive flow label DoS across containers ===@.@.";
  let solo, after = run_pair (Config.v5_13 ()) in
  Fmt.pr "-- buggy kernel 5.13 --@.";
  show "  victim alone (unregistered label 2 works)" solo;
  show "  after the attacker registered exclusive label 3 (DoS)" after;
  let solo_f, after_f = run_pair (Config.fixed ()) in
  Fmt.pr "@.-- fixed kernel (per-namespace management model) --@.";
  show "  victim alone" solo_f;
  show "  after the attacker registered exclusive label 3" after_f;

  Fmt.pr "@.=== KIT detection ===@.@.";
  let env = Env.create (Config.v5_13 ()) in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner
      ~sender:(Syzlang.parse sender_text)
      ~receiver:(Syzlang.parse receiver_text)
  in
  Fmt.pr "masked divergences: %d (interference %s)@."
    (List.length outcome.Runner.masked_diffs)
    (if outcome.Runner.masked_diffs = [] then "missed" else "detected");

  Fmt.pr "@.=== the CONFIG_JUMP_LABEL profiling blind spot ===@.@.";
  let visible = flowlabel_accesses (Config.v5_13 ~jump_label:false ()) in
  let hidden = flowlabel_accesses (Config.v5_13 ~jump_label:true ()) in
  Fmt.pr "instrumented read accesses on the send path:@.";
  Fmt.pr "  CONFIG_JUMP_LABEL=n  %d@." visible;
  Fmt.pr "  CONFIG_JUMP_LABEL=y  %d (the static key is code-patched,@." hidden;
  Fmt.pr "                          invisible to the compiler pass)@."
