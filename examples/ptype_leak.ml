(* Case study of bug #1 (paper, sections 2.2 and 6.1, Figures 2 and 4):
   the /proc/net/ptype information leak.

     dune exec examples/ptype_leak.exe

   Shows the raw file contents a container observes with and without a
   neighbouring container's packet socket, on the buggy 5.13 kernel and
   on the fixed kernel; then runs KIT's diagnosis (Algorithm 2) to
   recover the culprit syscall pair automatically. *)

module Syzlang = Kit_abi.Syzlang
module Config = Kit_kernel.Config
module State = Kit_kernel.State
module Interp = Kit_kernel.Interp
module Sysret = Kit_kernel.Sysret
module Bugs = Kit_kernel.Bugs
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Diagnose = Kit_report.Diagnose
module Signature = Kit_report.Signature
module Filter = Kit_detect.Filter
module Spec = Kit_spec.Spec

let sender_text = "r0 = socket(3)"
let receiver_text = "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)"

(* Print what the receiver's read(2) returns. *)
let show_file label results =
  Fmt.pr "%s:@." label;
  List.iter
    (fun (r : Interp.result) ->
      match r.Interp.ret.Sysret.out with
      | Sysret.P_str content ->
        List.iter
          (fun line -> Fmt.pr "    %s@." line)
          (String.split_on_char '\n' content)
      | Sysret.P_none | Sysret.P_lines _ | Sysret.P_stat _ -> ())
    results

let observe config =
  let env = Env.create config in
  let sender = Syzlang.parse sender_text in
  let receiver = Syzlang.parse receiver_text in
  (* Execution B: receiver alone. *)
  Env.reset env ~base:env.Env.base0;
  let solo = Interp.run env.Env.kernel ~pid:env.Env.receiver_pid receiver in
  (* Execution A: sender first, then receiver. *)
  Env.reset env ~base:env.Env.base0;
  let _ = Interp.run env.Env.kernel ~pid:env.Env.sender_pid sender in
  let after = Interp.run env.Env.kernel ~pid:env.Env.receiver_pid receiver in
  (solo, after)

let () =
  Fmt.pr "=== /proc/net/ptype as seen by the receiver container ===@.@.";
  let solo, after = observe (Config.v5_13 ()) in
  Fmt.pr "-- buggy kernel 5.13 --@.";
  show_file "  receiver alone" solo;
  show_file "  after the sender created a packet socket (LEAK)" after;
  let solo_f, after_f = observe (Config.fixed ()) in
  Fmt.pr "@.-- fixed kernel (ns check added to ptype_seq_show) --@.";
  show_file "  receiver alone" solo_f;
  show_file "  after the sender created a packet socket" after_f;

  (* Now let KIT find and diagnose the bug automatically. *)
  Fmt.pr "@.=== KIT detection and diagnosis ===@.@.";
  let env = Env.create (Config.v5_13 ()) in
  let runner = Runner.create env in
  let sender = Syzlang.parse sender_text in
  let receiver = Syzlang.parse receiver_text in
  let outcome = Runner.execute runner ~sender ~receiver in
  Fmt.pr "interfered receiver calls: [%a]@."
    (Fmt.list ~sep:(Fmt.any "; ") Fmt.int)
    outcome.Runner.interfered;
  let test ~sender ~receiver =
    Filter.protected_interfered Spec.default receiver
      (Runner.test_interference runner ~sender ~receiver)
  in
  let pairs =
    Diagnose.culprits ~test ~sender ~receiver
      ~interfered:outcome.Runner.interfered
  in
  List.iter
    (fun (p : Diagnose.pair) ->
      Fmt.pr "culprit pair: sender %a  ->  receiver %a@." Signature.pp
        (Signature.of_call sender p.Diagnose.sender_index)
        Signature.pp
        (Signature.of_call receiver p.Diagnose.receiver_index))
    pairs;
  assert (Config.has (Config.v5_13 ()) Bugs.B1_ptype_leak)
