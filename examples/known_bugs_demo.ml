(* Reproduce the documented namespace bugs of Table 3.

     dune exec examples/known_bugs_demo.exe

   Runs each historical bug's reproducer pair against the kernel release
   the bug lives in, and shows why the two undetectable ones (F, G) stay
   out of reach of functional interference testing. *)

module Known_bugs = Kit_core.Known_bugs
module Bugs = Kit_kernel.Bugs

let () =
  Fmt.pr "=== Table 3: documented namespace isolation bugs ===@.@.";
  let outcomes = Known_bugs.reproduce_all () in
  List.iter
    (fun (o : Known_bugs.outcome) ->
      let case = o.Known_bugs.case in
      Fmt.pr "[%s] %s (Linux %s, %s namespace)@." case.Known_bugs.label
        (Bugs.to_string case.Known_bugs.bug)
        case.Known_bugs.kernel case.Known_bugs.namespace;
      Fmt.pr "    sender:   %s@."
        (String.concat "; " (String.split_on_char '\n' case.Known_bugs.sender));
      Fmt.pr "    receiver: %s@."
        (String.concat "; "
           (String.split_on_char '\n' case.Known_bugs.receiver));
      Fmt.pr "    detected: %b (expected %b) %s@.@." o.Known_bugs.detected
        case.Known_bugs.expect_detected
        (if o.Known_bugs.as_expected then "OK" else "MISMATCH"))
    outcomes;
  Fmt.pr "detected %d/7 — the paper reproduces 5/7 (section 6.2):@."
    (Known_bugs.detected_count outcomes);
  Fmt.pr "  F diverges only on an inherently non-deterministic resource@.";
  Fmt.pr "    (conntrack dumps), so the non-determinism filter masks it;@.";
  Fmt.pr "  G needs the receiver to know a runtime-allocated resource id,@.";
  Fmt.pr "    which generated programs cannot name with constants.@."
