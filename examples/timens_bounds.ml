(* The time-namespace blind spot and the bounds-based detector — the
   future-work extension the paper sketches in section 7.

     dune exec examples/timens_bounds.exe

   Plain functional interference testing cannot test the time namespace:
   the protected resource (the clock) is non-deterministic, so every
   divergence on it is masked. The proposed solution is to learn the
   valid bounds of resource values across profiling runs and detect
   interference as a bound violation. *)

module Syzlang = Kit_abi.Syzlang
module Config = Kit_kernel.Config
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Bounds = Kit_trace.Bounds

let sender_text = "r0 = clock_settime(5)"
let receiver_text = "r0 = clock_gettime()"

let () =
  Fmt.pr "=== extension bug XT: global time-namespace offset ===@.@.";
  Fmt.pr "sender:   %s   (shifts its time ns by 5,000,000 ticks)@."
    sender_text;
  Fmt.pr "receiver: %s@.@." receiver_text;

  let env = Env.create (Config.v5_13 ()) in
  let runner = Runner.create env in
  let sender = Syzlang.parse sender_text in
  let receiver = Syzlang.parse receiver_text in

  (* 1. Standard functional interference testing: masked. *)
  let outcome = Runner.execute runner ~sender ~receiver in
  Fmt.pr "-- standard KIT pipeline --@.";
  Fmt.pr "raw divergences:    %d@." (List.length outcome.Runner.raw_diffs);
  Fmt.pr "after masking:      %d  (the clock is non-deterministic, so the@."
    (List.length outcome.Runner.masked_diffs);
  Fmt.pr "                        interference is filtered — paper sec. 7)@.";

  (* 2. Bounds-based detection: the 5,000,000-tick shift is far outside
     the jitter the profiling runs exhibit. *)
  Fmt.pr "@.-- bounds-based detector --@.";
  let bounds = Runner.bounds_of runner receiver in
  let rec show prefix (b : Bounds.t) =
    (match b.Bounds.kind with
    | Bounds.Interval (lo, hi) ->
      Fmt.pr "learned bounds for %s%s: [%d, %d]@." prefix b.Bounds.label lo hi
    | Bounds.Exact _ | Bounds.Unchecked | Bounds.Interior -> ());
    List.iter (show (prefix ^ b.Bounds.label ^ "/")) b.Bounds.children
  in
  show "" bounds;
  let violations = Runner.execute_bounds runner ~sender ~receiver in
  List.iter
    (fun v -> Fmt.pr "VIOLATION %a@." Bounds.pp_violation v)
    violations;
  Fmt.pr "@.";

  (* 3. Fixed kernel: per-namespace offsets, no violation. *)
  let env_fixed = Env.create (Config.fixed ()) in
  let runner_fixed = Runner.create env_fixed in
  let clean = Runner.execute_bounds runner_fixed ~sender ~receiver in
  Fmt.pr "fixed kernel (per-ns offsets): %d violations@." (List.length clean)
