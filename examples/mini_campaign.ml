(* A complete miniature testing campaign through the library API.

     dune exec examples/mini_campaign.exe

   Generates a corpus, profiles it, builds data-flow test cases with the
   DF-IA clustering strategy, executes one representative per cluster,
   filters and diagnoses the reports, and prints the aggregated groups a
   user would triage (paper, Figure 3). *)

module Campaign = Kit_core.Campaign
module Oracle = Kit_core.Oracle
module Tables = Kit_core.Tables
module Cluster = Kit_gen.Cluster
module Aggregate = Kit_report.Aggregate
module Bugs = Kit_kernel.Bugs

let () =
  let options =
    { Campaign.default_options with Campaign.corpus_size = 160; seed = 11 }
  in
  let c = Campaign.run options in
  Fmt.pr "=== mini campaign (corpus %d, %s) ===@.@."
    options.Campaign.corpus_size
    (Cluster.strategy_name c.Campaign.generation.Cluster.strategy);
  Fmt.pr "data flows found:      %d@." c.Campaign.df_total;
  Fmt.pr "clusters (executed):   %d@." c.Campaign.generation.Cluster.clusters;
  Fmt.pr "%s@.@." (Tables.table5 c);
  Fmt.pr "=== AGG-RS groups to triage ===@.";
  List.iter
    (fun (g : Aggregate.group) ->
      let attribution =
        match g.Aggregate.members with
        | m :: _ -> Oracle.attribution_to_string (Oracle.attribute_keyed m)
        | [] -> "?"
      in
      Fmt.pr "  %a  => %s@." Aggregate.pp_group g attribution)
    c.Campaign.agg_rs;
  let found = Oracle.new_bugs_found c.Campaign.keyed in
  Fmt.pr "@.bugs witnessed: %a@."
    (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
    found
