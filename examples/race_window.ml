(* Finding a race-window bug with the deterministic interleaving
   scheduler.

     dune exec examples/race_window.exe

   The seeded race-window bugs (kernel version "5.13-rw") publish a
   transient marker to a global variable during a syscall and restore it
   before returning. Run sequentially — sender to completion, then
   receiver — the marker is always back to idle by the time the receiver
   looks, so no sequential campaign can tell the buggy kernel from the
   fixed one. Only a schedule that suspends the sender *inside* the
   window and lets the receiver observe the transient exposes the bug.

   This demo takes race bug #2 (the cookie allocation window): both
   containers ask for a socket cookie; the buggy kernel marks the shared
   allocator busy around the counter update. An allocator that sees a
   foreign in-flight marker jumps its cookie by a collision-avoidance
   gap — an observable, schedule-dependent divergence. *)

module Syzlang = Kit_abi.Syzlang
module Config = Kit_kernel.Config
module Bugs = Kit_kernel.Bugs
module Sched = Kit_kernel.Sched
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Ast = Kit_trace.Ast
module Compare = Kit_trace.Compare

let sender = Syzlang.parse "r0 = socket(1)\nr1 = get_cookie(r0)"
let receiver = Syzlang.parse "r0 = socket(1)\nr1 = get_cookie(r0)"

let () =
  (* A kernel carrying only the race-window bugs: sequential executions
     are bit-for-bit clean. *)
  let config = Config.make ~bugs:(Bugs.of_list Bugs.race_bugs) "5.13-rw" in
  let env = Env.create config in
  let runner = Runner.create env in

  Fmt.pr "== Sequential execution (phase A then phase B) ==@.";
  let outcome = Runner.execute runner ~sender ~receiver in
  Fmt.pr "  masked diffs: %d — the bug is sequentially invisible@.@."
    (List.length outcome.Runner.masked_diffs);

  Fmt.pr "== The sequential schedule through the scheduler ==@.";
  let plain =
    Runner.run_pair runner ~base:env.Env.base0 sender receiver
  in
  let via_sched =
    Runner.run_interleaved runner ~schedule:Sched.Sequential
      ~base:env.Env.base0 sender receiver
  in
  Fmt.pr "  byte-identical to run_pair: %b@.@." (Ast.equal plain via_sched);

  Fmt.pr "== Schedule search (64 seeds, POR-pruned) ==@.";
  let search =
    Runner.search_schedules runner ~schedules:64 ~sender ~receiver outcome
  in
  Fmt.pr "  candidates %d | classes %d | executed %d | pruned %d@."
    search.Runner.sr_schedules search.Runner.sr_classes
    search.Runner.sr_executed search.Runner.sr_pruned;
  List.iter
    (fun (c : Runner.concurrent) ->
      Fmt.pr "@.  divergence (fingerprint %x), reproducing seeds: %a@."
        c.Runner.cc_fingerprint
        Fmt.(list ~sep:comma int)
        c.Runner.cc_seeds;
      List.iter
        (fun (d : Compare.diff) ->
          Fmt.pr "    %s: %S vs solo %S@."
            (String.concat "/" d.Compare.path)
            d.Compare.left.Ast.value d.Compare.right.Ast.value)
        c.Runner.cc_diffs)
    search.Runner.sr_findings;

  match search.Runner.sr_findings with
  | [] -> Fmt.pr "@.no divergence found — unexpected@."
  | c :: _ ->
    let seed = List.hd c.Runner.cc_seeds in
    Fmt.pr "@.== Replay: seed %d is a deterministic reproducer ==@." seed;
    let once =
      Runner.run_interleaved runner ~schedule:(Sched.Seeded seed)
        ~base:env.Env.base0 sender receiver
    in
    let again =
      Runner.run_interleaved runner ~schedule:(Sched.Seeded seed)
        ~base:env.Env.base0 sender receiver
    in
    Fmt.pr "  same seed, byte-identical trace: %b@." (Ast.equal once again)
