(* Tests for the trace-analysis engine (Obs.Spantree / Obs.Profile) and
   its integration with the campaign: tree reconstruction, profile
   aggregation, critical paths, Chrome export shape, streaming export
   folds, the gauge/span equality bridge, and the headline qcheck —
   span tree and profile are invariant in the execute phase's domain
   count. *)

module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer
module Jsonl = Kit_obs.Jsonl
module Export = Kit_obs.Export
module Spantree = Kit_obs.Spantree
module Profile = Kit_obs.Profile
module Campaign = Kit_core.Campaign

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* A hand-built trace: two top-level phases, the second containing two
   case spans on distinct worker lanes plus an instant. Wall times are
   explicit so duration arithmetic is exact. *)
let sample_events () =
  let t = Tracer.create () in
  let sp = Tracer.span t ~time:0 ~wall:10.0 "phase.profile" in
  Tracer.finish t ~time:5 ~wall:12.0 sp;
  let sp = Tracer.span t ~time:5 ~wall:12.0 "phase.execute" in
  let c0 =
    Tracer.span t ~time:6 ~wall:12.5 "sup.execute"
      ~attrs:[ ("case", "0"); ("worker", "0") ]
  in
  Tracer.finish t ~time:8 ~wall:13.5 c0;
  let c1 =
    Tracer.span t ~time:8 ~wall:13.5 "sup.execute"
      ~attrs:[ ("case", "1"); ("worker", "1") ]
  in
  Tracer.instant t ~time:9 ~wall:13.75 "sup.retry"
    ~attrs:[ ("worker", "1") ];
  Tracer.finish t ~time:10 ~wall:17.5 c1;
  Tracer.finish t ~time:12 ~wall:18.0 sp;
  Tracer.events t

let test_tree_reconstruction () =
  let tree = Spantree.build ~lane_attrs:[] (sample_events ()) in
  (* no lane split: everything nests in one "main" lane *)
  check_int "one lane" 1 (List.length tree.Spantree.lanes);
  check_int "four spans" 4 tree.Spantree.spans;
  check_int "one instant" 1 tree.Spantree.instants;
  check_int "nothing truncated" 0 tree.Spantree.truncated_begins;
  check_int "nothing unfinished" 0 tree.Spantree.unfinished;
  match Spantree.roots tree with
  | [ profile; execute ] ->
    check_str "first root" "phase.profile" profile.Spantree.n_name;
    check_int "profile childless" 0 (List.length profile.Spantree.n_children);
    check_int "execute has two case children" 2
      (List.length execute.Spantree.n_children);
    (match List.rev execute.Spantree.n_children with
    | c1 :: _ ->
      check_int "instant nests in the open case span" 1
        (List.length c1.Spantree.n_children)
    | [] -> Alcotest.fail "no case children");
    check_int "execute det duration" 7 (Spantree.det_duration execute);
    check_bool "execute wall duration" true
      (Spantree.wall_duration execute = 6.0)
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots)

let test_lane_split_by_worker () =
  let tree = Spantree.build (sample_events ()) in
  (* default lanes: domain/worker — case spans leave the main lane *)
  let keys = List.map fst tree.Spantree.lanes in
  check
    (Alcotest.list Alcotest.string)
    "lanes in first-seen order"
    [ "main"; "worker=0"; "worker=1" ]
    keys;
  let main = List.assoc "main" tree.Spantree.lanes in
  check_int "main lane keeps the phases" 2 (List.length main)

let test_unfinished_span_is_closed_and_flagged () =
  let t = Tracer.create () in
  let _sp = Tracer.span t ~time:0 "phase.execute" in
  Tracer.instant t ~time:3 "mark";
  (* no finish: the export was taken mid-phase *)
  let tree = Spantree.build (Tracer.events t) in
  check_int "span counted" 1 tree.Spantree.spans;
  check_int "flagged unfinished" 1 tree.Spantree.unfinished;
  match Spantree.roots tree with
  | [ root ] ->
    check_bool "truncated flag set" true root.Spantree.n_truncated;
    check_int "closed at the last event" 3 root.Spantree.n_end
  | _ -> Alcotest.fail "expected one root"

let test_profile_totals_and_self () =
  let tree = Spantree.build ~lane_attrs:[] (sample_events ()) in
  let p = Profile.of_tree tree in
  check_int "span count" 4 p.Profile.total_spans;
  (match Profile.find p "sup.execute" with
  | Some r ->
    check_int "two case executions" 2 r.Profile.r_count;
    check_bool "case wall total" true (r.Profile.r_wall_total = 5.0);
    check_bool "leaf self = total" true (r.Profile.r_wall_self = 5.0);
    check_int "det total" 4 r.Profile.r_det_total
  | None -> Alcotest.fail "missing sup.execute row");
  (match Profile.find p "phase.execute" with
  | Some r ->
    check_bool "parent self excludes children" true
      (r.Profile.r_wall_self = 1.0)
  | None -> Alcotest.fail "missing phase.execute row");
  (* rows sorted by wall total: execute (6.0) leads *)
  match p.Profile.rows with
  | top :: _ -> check_str "hottest first" "phase.execute" top.Profile.r_name
  | [] -> Alcotest.fail "empty profile"

let test_critical_path_descends_heaviest () =
  let tree = Spantree.build ~lane_attrs:[] (sample_events ()) in
  let path = List.map (fun n -> n.Spantree.n_name) (Profile.critical_path tree) in
  (* heaviest root phase.execute (6.0s), heaviest child case 1 (4.0s) *)
  check (Alcotest.list Alcotest.string) "path"
    [ "phase.execute"; "sup.execute" ] path;
  let rendered = Profile.render_critical_path tree in
  check_bool "rendering names the critical path" true
    (String.length rendered >= 13 && String.sub rendered 0 13 = "critical path")

let test_folded_stacks () =
  let tree = Spantree.build ~lane_attrs:[] (sample_events ()) in
  let lines = Profile.folded tree in
  let prefix = "phase.execute;sup.execute" in
  check_bool "has a nested stack" true
    (List.exists
       (fun l ->
         String.length l > String.length prefix
         && String.sub l 0 (String.length prefix) = prefix)
       lines);
  (* weights are non-negative integers *)
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "malformed folded line: %s" l
      | Some i ->
        let w = String.sub l (i + 1) (String.length l - i - 1) in
        check_bool ("weight parses: " ^ l) true
          (match int_of_string_opt w with Some n -> n >= 0 | None -> false))
    lines

let test_chrome_export_shape () =
  let tree = Spantree.build (sample_events ()) in
  let json = Spantree.to_chrome tree in
  (* must survive its own printer/parser *)
  match Jsonl.parse (Jsonl.to_string json) with
  | Error e -> Alcotest.failf "chrome JSON reparse: %s" e
  | Ok j -> (
    match Jsonl.member "traceEvents" j with
    | Some (Jsonl.List events) ->
      (* 4 spans + 1 instant + 3 lane-name metadata records *)
      check_int "event count" 8 (List.length events);
      List.iter
        (fun e ->
          let str k = Option.bind (Jsonl.member k e) Jsonl.to_str in
          match str "ph" with
          | Some "X" ->
            check_bool "complete events carry ts+dur" true
              (Jsonl.member "ts" e <> None && Jsonl.member "dur" e <> None)
          | Some "i" | Some "M" -> ()
          | other ->
            Alcotest.failf "unexpected ph %s"
              (Option.value ~default:"<none>" other))
        events
    | _ -> Alcotest.fail "missing traceEvents")

(* --- streaming export ----------------------------------------------------- *)

(* Export.fold_file on an export larger than the tracer ring: the fold
   sees exactly the surviving events and the drop count, without
   materialising the file. *)
let test_fold_file_streams_ring_overflow () =
  let t = Tracer.create ~cap:16 () in
  for i = 0 to 99 do
    Tracer.instant t ~time:i ("tick" ^ string_of_int i)
  done;
  let obs = Obs.create ~tracer:t () in
  Metrics.add (Metrics.counter obs.Obs.metrics "c") 1;
  let path = Filename.temp_file "kit-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_file path (Obs.export_lines obs);
      match
        Export.fold_file path ~init:(0, 0, 0, 0)
          ~f:(fun (m, mt, ev, dr) -> function
            | Export.Meta _ -> (m + 1, mt, ev, dr)
            | Export.Metric _ -> (m, mt + 1, ev, dr)
            | Export.Event _ -> (m, mt, ev + 1, dr)
            | Export.Dropped n -> (m, mt, ev, dr + n))
      with
      | Error e -> Alcotest.failf "fold_file: %s" e
      | Ok (meta, metrics, events, dropped) ->
        check_int "meta line" 1 meta;
        check_int "metric lines" 1 metrics;
        check_int "only surviving events" 16 events;
        check_int "drop count" 84 dropped)

let test_fold_file_reports_malformed_line () =
  let path = Filename.temp_file "kit-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"k\":\"meta\",\"version\":1}\nnot json\n";
      close_out oc;
      match Export.fold_file path ~init:0 ~f:(fun n _ -> n + 1) with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error e ->
        check_bool "error names the line" true
          (String.length e >= 7 && String.sub e 0 7 = "line 2:"))

(* --- campaign integration -------------------------------------------------- *)

let small_options = { Campaign.default_options with Campaign.corpus_size = 48 }

(* The bridge between the two observability views: per-phase span wall
   totals in the reconstructed tree equal the time.<stage>_s gauges,
   exactly — Pipeline stamps the span with the same gettimeofday
   readings the gauge is computed from, and Jsonl.float_repr guarantees
   exact float round-trips through the export. *)
let test_phase_span_totals_equal_time_gauges () =
  let obs = Obs.create () in
  let c =
    Campaign.run { small_options with Campaign.obs = Some obs }
  in
  ignore c;
  match Export.parse (Obs.export_lines ~wall:true obs) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
    let tree =
      Spantree.build ~dropped:p.Export.p_dropped p.Export.p_events
    in
    let profile = Profile.of_tree tree in
    let gauge name =
      match List.assoc_opt ("time." ^ name ^ "_s") p.Export.p_snapshot with
      | Some (Metrics.Gauge_v v) -> v
      | _ -> Alcotest.failf "missing gauge time.%s_s" name
    in
    List.iter
      (fun stage ->
        match Profile.find profile ("phase." ^ stage) with
        | Some r ->
          check (Alcotest.float 0.0)
            ("phase." ^ stage ^ " wall total = time." ^ stage ^ "_s")
            (gauge stage) r.Profile.r_wall_total
        | None -> Alcotest.failf "missing phase.%s row" stage)
      [ "profile"; "generate"; "execute"; "diagnose" ]

(* The acceptance qcheck: the reconstructed span tree and profile are
   invariant in the execute phase's domain count. Lanes keyed by the
   per-case correlation attr; placement attrs (domain/worker, the
   execute stage's domains annotation) are excluded from the
   fingerprint. *)
let prop_tree_invariant_in_domains =
  QCheck.Test.make
    ~name:"span tree and profile invariant across --domains 1..4" ~count:3
    QCheck.(int_range 2 4)
    (fun domains ->
      let fingerprints domains =
        let obs = Obs.create () in
        let _c =
          Campaign.run
            { small_options with
              Campaign.corpus_size = 32; domains; obs = Some obs }
        in
        let tree =
          Spantree.build ~lane_attrs:[ "case" ]
            ~dropped:(Tracer.dropped obs.Obs.tracer)
            (Tracer.events obs.Obs.tracer)
        in
        ( Spantree.fingerprint tree,
          Profile.fingerprint (Profile.of_tree tree) )
      in
      fingerprints 1 = fingerprints domains)

let suite =
  [
    Alcotest.test_case "tree reconstruction" `Quick test_tree_reconstruction;
    Alcotest.test_case "lane split by worker" `Quick test_lane_split_by_worker;
    Alcotest.test_case "unfinished span closed and flagged" `Quick
      test_unfinished_span_is_closed_and_flagged;
    Alcotest.test_case "profile totals and self" `Quick
      test_profile_totals_and_self;
    Alcotest.test_case "critical path descends heaviest" `Quick
      test_critical_path_descends_heaviest;
    Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "fold_file streams ring overflow" `Quick
      test_fold_file_streams_ring_overflow;
    Alcotest.test_case "fold_file reports malformed line" `Quick
      test_fold_file_reports_malformed_line;
    Alcotest.test_case "phase span totals equal time gauges" `Quick
      test_phase_span_totals_equal_time_gauges;
    QCheck_alcotest.to_alcotest prop_tree_invariant_in_domains;
  ]
