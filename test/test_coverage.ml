(* Tests for the coverage ledger (Obs.Coverage) and funnel attrition
   accounting: per-var state-machine mechanics, delta merge laws
   (commutative/associative/idempotent), schedule invariance — the
   ledger bytes are identical across domains, process pools, streaming
   and checkpoint-resumed runs — and the attrition balance invariant. *)

module Coverage = Kit_obs.Coverage
module Campaign = Kit_core.Campaign
module Pool = Kit_serve.Pool

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string
let check_lines = check Alcotest.(list string)

(* --- ledger mechanics ----------------------------------------------------- *)

let mini () = Coverage.create [ ("a", 100); ("b", 200); ("c", 300) ]

let state_at cov i = Coverage.state_name (Coverage.state cov i)

let test_state_machine () =
  let cov = mini () in
  check_str "starts untouched" "untouched" (state_at cov 0);
  Coverage.mark_touched cov ~addr:100;
  check_str "touched" "touched" (state_at cov 0);
  Coverage.mark_written cov ~addr:100;
  check_str "written" "written" (state_at cov 0);
  Coverage.mark_read cov ~addr:100;
  check_str "write+read = paired" "paired" (state_at cov 0);
  Coverage.mark_attributed cov ~addr:100;
  check_str "attributed" "attributed" (state_at cov 0);
  (* read without write stays below paired *)
  Coverage.mark_read cov ~addr:200;
  check_str "read only" "read" (state_at cov 1);
  (* marks are idempotent and imply the lower rungs *)
  Coverage.mark_read cov ~addr:200;
  check_str "idempotent" "read" (state_at cov 1);
  Coverage.mark_attributed cov ~addr:300;
  check_str "attribution implies every rung" "attributed" (state_at cov 2);
  (* unknown addresses are ignored, not errors *)
  Coverage.mark_written cov ~addr:999;
  let s = Coverage.summary cov in
  check_int "vars" 3 s.Coverage.sum_vars;
  check_int "written" 2 s.Coverage.sum_written;
  check_int "paired" 2 s.Coverage.sum_paired;
  check_int "attributed" 2 s.Coverage.sum_attributed;
  check_int "gaps" 1 s.Coverage.sum_gaps;
  check_lines "gap names" [ "b" ] (Coverage.gaps cov)

let test_delta_absorb_round_trip () =
  let cov = mini () in
  Coverage.mark_attributed cov ~addr:100;
  Coverage.mark_read cov ~addr:200;
  let fresh = mini () in
  Coverage.absorb fresh (Coverage.delta cov);
  check_lines "absorbed ledger renders identically"
    (Coverage.jsonl_lines cov) (Coverage.jsonl_lines fresh);
  (* absorbing a delta mentioning unknown vars is harmless *)
  Coverage.absorb fresh (Coverage.delta_of_list [ ("zzz", 15) ]);
  check_lines "unknown vars ignored" (Coverage.jsonl_lines cov)
    (Coverage.jsonl_lines fresh)

(* --- merge laws ----------------------------------------------------------- *)

let delta_gen =
  let names = [| "a"; "b"; "c"; "d" |] in
  QCheck.(
    map
      (fun pairs ->
        Coverage.delta_of_list
          (List.map (fun (i, flags) -> (names.(i), flags)) pairs))
      (list_of_size Gen.(0 -- 8) (pair (int_bound 3) (int_bound 15))))

let prop_merge_commutative =
  QCheck.Test.make ~name:"ledger merge is commutative" ~count:200
    (QCheck.pair delta_gen delta_gen)
    (fun (d1, d2) ->
      Coverage.equal_delta (Coverage.merge d1 d2) (Coverage.merge d2 d1))

let prop_merge_associative =
  QCheck.Test.make ~name:"ledger merge is associative" ~count:200
    (QCheck.triple delta_gen delta_gen delta_gen)
    (fun (d1, d2, d3) ->
      Coverage.equal_delta
        (Coverage.merge (Coverage.merge d1 d2) d3)
        (Coverage.merge d1 (Coverage.merge d2 d3)))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"ledger merge is idempotent" ~count:200 delta_gen
    (fun d -> Coverage.equal_delta (Coverage.merge d d) d)

(* --- campaign-level invariance -------------------------------------------- *)

let small_options =
  { Campaign.default_options with Campaign.corpus_size = 48; diagnose = false }

let ledger_lines (c : Campaign.t) = Coverage.jsonl_lines c.Campaign.coverage

let test_campaign_ledger_nonempty () =
  let c = Campaign.run small_options in
  let s = Coverage.summary c.Campaign.coverage in
  check_bool "universe non-empty" true (s.Coverage.sum_vars > 0);
  check_bool "some gaps remain" true (s.Coverage.sum_gaps > 0);
  check_bool "some vars attributed" true (s.Coverage.sum_attributed > 0);
  check_bool "gap list matches summary" true
    (List.length (Coverage.gaps c.Campaign.coverage) = s.Coverage.sum_gaps);
  check_bool "attrition balanced" true
    (Campaign.attrition_balanced c.Campaign.attrition);
  check_int "every rep charged to a terminal stage"
    (c.Campaign.attrition.Campaign.at_generated
    - c.Campaign.attrition.Campaign.at_absorbed)
    (List.length c.Campaign.generation.Kit_gen.Cluster.reps)

let test_ledger_identical_across_domains () =
  let c1 = Campaign.run small_options in
  let c2 = Campaign.run { small_options with Campaign.domains = 2 } in
  check_lines "domains 1 = domains 2" (ledger_lines c1) (ledger_lines c2);
  check_bool "attrition identical" true
    (c1.Campaign.attrition = c2.Campaign.attrition)

let test_ledger_identical_on_pool () =
  let c1 = Campaign.run small_options in
  let cfg = { Pool.default_config with Pool.procs = 2 } in
  let c2 =
    Campaign.run_with_executor ~executor:(Pool.executor cfg) small_options
  in
  check_lines "sequential = procs 2" (ledger_lines c1) (ledger_lines c2);
  check_bool "attrition identical" true
    (c1.Campaign.attrition = c2.Campaign.attrition)

let test_ledger_identical_streaming () =
  let c1 = Campaign.run small_options in
  let s = Campaign.stream small_options in
  let c2 = Campaign.stream_result s in
  check_lines "batch = streaming" (ledger_lines c1) (ledger_lines c2);
  check_bool "attrition identical" true
    (c1.Campaign.attrition = c2.Campaign.attrition)

(* Chunked execution with a checkpoint save/load cycle per pause —
   a daemon killed and restarted after every chunk — must converge to
   the straight-through ledger, and coverage must be monotone across
   the resumes. *)
let test_ledger_monotone_across_resume () =
  let straight = Campaign.run small_options in
  let path = Filename.temp_file "kit_cov" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let rec go resume =
        (* A fresh prepare per chunk, like a restarted process; the
           resumed ledger re-marks the profiling rungs and absorbs the
           checkpointed attribution delta, so state never regresses. *)
        let prepared = Campaign.prepare small_options in
        match Campaign.execute_partial ?resume ~budget:7 prepared with
        | `Done t -> t
        | `Paused ck ->
          Campaign.save_checkpoint path ck;
          let ck =
            match Campaign.load_checkpoint path with
            | Ok ck -> ck
            | Error e ->
              Alcotest.failf "checkpoint reload: %s"
                (Kit_core.Checkpoint.error_to_string e)
          in
          go (Some ck)
      in
      let resumed = go None in
      check_lines "chunked resume = straight through" (ledger_lines straight)
        (ledger_lines resumed);
      check_bool "attrition identical" true
        (straight.Campaign.attrition = resumed.Campaign.attrition))

let prop_attrition_balanced =
  QCheck.Test.make ~name:"attrition balances for any seed" ~count:3
    QCheck.(int_bound 50)
    (fun seed ->
      let c =
        Campaign.run
          { small_options with Campaign.seed; corpus_size = 24 }
      in
      Campaign.attrition_balanced c.Campaign.attrition
      && c.Campaign.attrition.Campaign.at_reported
         = List.length c.Campaign.reports)

let suite =
  [
    Alcotest.test_case "per-var state machine" `Quick test_state_machine;
    Alcotest.test_case "delta absorb round trip" `Quick
      test_delta_absorb_round_trip;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_idempotent;
    Alcotest.test_case "campaign ledger non-empty, balanced" `Quick
      test_campaign_ledger_nonempty;
    Alcotest.test_case "ledger identical across domains" `Quick
      test_ledger_identical_across_domains;
    Alcotest.test_case "ledger identical on the process pool" `Quick
      test_ledger_identical_on_pool;
    Alcotest.test_case "ledger identical streaming" `Quick
      test_ledger_identical_streaming;
    Alcotest.test_case "ledger monotone across checkpoint resume" `Quick
      test_ledger_monotone_across_resume;
    QCheck_alcotest.to_alcotest prop_attrition_balanced;
  ]
