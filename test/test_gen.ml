(* Tests for test case generation: data-flow analysis and the DF /
   DF-IA / DF-ST / RAND clustering strategies. *)

module K = Kit_kernel
module Dataflow = Kit_gen.Dataflow
module Cluster = Kit_gen.Cluster
module Testcase = Kit_gen.Testcase
module Spec = Kit_spec.Spec
module Corpus = Kit_abi.Corpus
module Syzlang = Kit_abi.Syzlang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let config = K.Config.v5_13 ()

(* A small deterministic fixture shared across tests. *)
let fixture =
  lazy
    (let corpus = Corpus.generate ~seed:7 ~size:64 in
     let profiles = Dataflow.profile_corpus config Spec.default corpus in
     let map = Dataflow.build_map profiles in
     (corpus, profiles, map))

let run_strategy strategy =
  let corpus, _, map = Lazy.force fixture in
  Cluster.run strategy ~seed:7 ~corpus_size:(List.length corpus) map

(* --- dataflow ------------------------------------------------------------- *)

let test_profiles_cover_corpus () =
  let corpus, profiles, _ = Lazy.force fixture in
  check_int "one profile per program" (List.length corpus)
    (Array.length profiles.Dataflow.accesses)

let test_protected_flags_shape () =
  let _, profiles, _ = Lazy.force fixture in
  Array.iteri
    (fun i prog ->
      check_int
        (Printf.sprintf "flags for program %d" i)
        (Kit_abi.Program.length prog)
        (Array.length profiles.Dataflow.protected_calls.(i)))
    profiles.Dataflow.programs

let test_total_flows_positive () =
  let _, _, map = Lazy.force fixture in
  check_bool "flows exist" true (Dataflow.total_flows map > 0)

let test_reader_filter_drops_unprotected () =
  (* A corpus of only unprotected readers produces no qualifying flows. *)
  let corpus =
    [ Syzlang.parse "r0 = clock_gettime()"; Syzlang.parse "r0 = getpid()" ]
  in
  let profiles = Dataflow.profile_corpus config Spec.default corpus in
  let map = Dataflow.build_map profiles in
  check_int "no flows" 0 (Dataflow.total_flows map)

let test_known_flow_pairs_exist () =
  (* The ptype flow (bug #1) must pair the packet-socket program with the
     ptype reader. *)
  let corpus =
    [ Syzlang.parse "r0 = socket(3)";
      Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" ]
  in
  let profiles = Dataflow.profile_corpus config Spec.default corpus in
  let map = Dataflow.build_map profiles in
  let result = Cluster.run Cluster.Df_ia ~corpus_size:2 map in
  check_bool "pair (0 -> 1) generated" true
    (List.exists
       (fun (tc : Testcase.t) -> tc.Testcase.sender = 0 && tc.Testcase.receiver = 1)
       result.Cluster.reps)

(* --- clustering strategies -------------------------------------------------- *)

let test_strategy_ordering () =
  let df = run_strategy Cluster.Df in
  let ia = run_strategy Cluster.Df_ia in
  let st1 = run_strategy (Cluster.Df_st 1) in
  let st2 = run_strategy (Cluster.Df_st 2) in
  check_bool "IA <= ST-1" true (ia.Cluster.clusters <= st1.Cluster.clusters);
  check_bool "ST-1 <= ST-2" true (st1.Cluster.clusters <= st2.Cluster.clusters);
  check_bool "ST-2 << DF" true (st2.Cluster.clusters < df.Cluster.generated);
  check_bool "strictly finer at ST-1" true
    (ia.Cluster.clusters < st1.Cluster.clusters);
  check_bool "strictly finer at ST-2" true
    (st1.Cluster.clusters < st2.Cluster.clusters)

let test_cluster_reps_match_count () =
  let ia = run_strategy Cluster.Df_ia in
  check_int "one representative per cluster" ia.Cluster.clusters
    (List.length ia.Cluster.reps)

let test_cluster_reps_sorted_deterministic () =
  let a = run_strategy Cluster.Df_ia in
  let b = run_strategy Cluster.Df_ia in
  check_bool "deterministic" true
    (List.equal (fun x y -> Testcase.compare x y = 0) a.Cluster.reps
       b.Cluster.reps)

let test_cluster_flows_attached () =
  let ia = run_strategy Cluster.Df_ia in
  check_bool "every DF rep carries its witness flow" true
    (List.for_all
       (fun (tc : Testcase.t) -> Option.is_some tc.Testcase.flow)
       ia.Cluster.reps)

let test_df_has_no_reps () =
  let df = run_strategy Cluster.Df in
  check_int "DF is counted, not executed" 0 (List.length df.Cluster.reps)

(* DF-ST-k refines DF-IA: every ST cluster's flows map into one IA
   cluster key. Verified via representatives: distinct ST reps that share
   (w_ip, r_ip) collapse into the same IA cluster. *)
let test_st_refines_ia () =
  let ia = run_strategy Cluster.Df_ia in
  let st1 = run_strategy (Cluster.Df_st 1) in
  let ia_keys =
    List.filter_map
      (fun (tc : Testcase.t) ->
        Option.map
          (fun f -> (f.Testcase.w_ip, f.Testcase.r_ip))
          tc.Testcase.flow)
      ia.Cluster.reps
    |> List.sort_uniq Stdlib.compare
  in
  let st_keys =
    List.filter_map
      (fun (tc : Testcase.t) ->
        Option.map
          (fun f -> (f.Testcase.w_ip, f.Testcase.r_ip))
          tc.Testcase.flow)
      st1.Cluster.reps
    |> List.sort_uniq Stdlib.compare
  in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "ST-1 covers exactly the IA instruction pairs" ia_keys st_keys

let test_rand_budget_respected () =
  let rand = run_strategy (Cluster.Rand 50) in
  check_int "budget" 50 (List.length rand.Cluster.reps);
  check_bool "no duplicate pairs" true
    (let sorted = List.sort Testcase.compare rand.Cluster.reps in
     let rec no_dup = function
       | a :: (b :: _ as rest) -> Testcase.compare a b <> 0 && no_dup rest
       | [ _ ] | [] -> true
     in
     no_dup sorted)

let test_rand_deterministic_per_seed () =
  let corpus, _, map = Lazy.force fixture in
  let n = List.length corpus in
  let a = Cluster.run (Cluster.Rand 40) ~seed:3 ~corpus_size:n map in
  let b = Cluster.run (Cluster.Rand 40) ~seed:3 ~corpus_size:n map in
  let c = Cluster.run (Cluster.Rand 40) ~seed:4 ~corpus_size:n map in
  let eq x y =
    List.equal (fun p q -> Testcase.compare p q = 0) x.Cluster.reps y.Cluster.reps
  in
  check_bool "same seed same pairs" true (eq a b);
  check_bool "different seed different pairs" false (eq a c)

let test_rand_in_range () =
  let corpus, _, _ = Lazy.force fixture in
  let n = List.length corpus in
  let rand = run_strategy (Cluster.Rand 80) in
  check_bool "indices within corpus" true
    (List.for_all
       (fun (tc : Testcase.t) ->
         tc.Testcase.sender >= 0 && tc.Testcase.sender < n
         && tc.Testcase.receiver >= 0 && tc.Testcase.receiver < n)
       rand.Cluster.reps)

let test_context_truncation () =
  check (Alcotest.list Alcotest.int) "drops site frames, takes k" [ 3; 4 ]
    (Cluster.context 2 [ 1; 2; 3; 4; 5 ]);
  check (Alcotest.list Alcotest.int) "short stack" [] (Cluster.context 2 [ 1 ]);
  check (Alcotest.list Alcotest.int) "empty stack" [] (Cluster.context 3 [])

let test_context_edges () =
  (* Exactly the two folded site frames: nothing above them. *)
  check (Alcotest.list Alcotest.int) "two-frame stack" []
    (Cluster.context 2 [ 1; 2 ]);
  check (Alcotest.list Alcotest.int) "two-frame stack, k=1" []
    (Cluster.context 1 [ 1; 2 ]);
  (* k = 0 keeps no context regardless of depth — DF-ST-0 degenerates to
     DF-IA. *)
  check (Alcotest.list Alcotest.int) "k=0 deep stack" []
    (Cluster.context 0 [ 1; 2; 3; 4; 5 ]);
  check (Alcotest.list Alcotest.int) "k=0 empty stack" []
    (Cluster.context 0 []);
  (* Three frames: one frame of context survives even for large k. *)
  check (Alcotest.list Alcotest.int) "three-frame stack, large k" [ 3 ]
    (Cluster.context 10 [ 1; 2; 3 ])

let test_rand_budget_clamped () =
  (* A 2-program corpus has only 2² = 4 distinct (sender, receiver)
     pairs; an over-budget request is clamped and filled exactly. *)
  let corpus =
    [ Syzlang.parse "r0 = socket(3)";
      Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" ]
  in
  let profiles = Dataflow.profile_corpus config Spec.default corpus in
  let map = Dataflow.build_map profiles in
  let over = Cluster.run (Cluster.Rand 100) ~seed:7 ~corpus_size:2 map in
  check_int "requested recorded" 100 over.Cluster.requested;
  check_int "delivered clamped to corpus²" 4 over.Cluster.delivered;
  check_int "reps match delivered" 4 (List.length over.Cluster.reps);
  check_bool "all four pairs distinct" true
    (List.sort_uniq Testcase.compare over.Cluster.reps |> List.length = 4);
  let exact = Cluster.run (Cluster.Rand 4) ~seed:7 ~corpus_size:2 map in
  check_int "exact budget fully delivered" 4 exact.Cluster.delivered

let test_rand_sparse_budget_exact () =
  (* Historical behaviour: sparse budgets (well under corpus²) must
     still deliver exactly the requested count. *)
  let rand = run_strategy (Cluster.Rand 50) in
  check_int "requested" 50 rand.Cluster.requested;
  check_int "delivered" 50 rand.Cluster.delivered

let test_df_total_matches_map_scan () =
  let _, _, map = Lazy.force fixture in
  let expected = Dataflow.total_flows map in
  List.iter
    (fun strategy ->
      let r = run_strategy strategy in
      check_int
        (Cluster.strategy_name strategy ^ " df_total")
        expected r.Cluster.df_total)
    [ Cluster.Df; Cluster.Df_ia; Cluster.Df_st 2; Cluster.Rand 40 ]

let test_sizes_distribution_consistent () =
  List.iter
    (fun strategy ->
      let r = run_strategy strategy in
      let name = Cluster.strategy_name strategy in
      check_int (name ^ ": size counts sum to clusters") r.Cluster.clusters
        (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Cluster.sizes);
      check_bool (name ^ ": every cluster holds at least one member") true
        (List.fold_left (fun acc (sz, n) -> acc + (sz * n)) 0 r.Cluster.sizes
         >= r.Cluster.clusters);
      check_bool (name ^ ": ascending by size") true
        (let rec asc = function
           | (a, _) :: ((b, _) :: _ as rest) -> a < b && asc rest
           | [ _ ] | [] -> true
         in
         asc r.Cluster.sizes))
    [ Cluster.Df_ia; Cluster.Df_st 2; Cluster.Rand 40 ]

(* --- online clustering ------------------------------------------------------ *)

(* Fold the fixture corpus one program at a time and compare the final
   state against the batch run over the fully built access map. *)
let online_result strategy =
  let corpus, _, _ = Lazy.force fixture in
  let profiler = Dataflow.profiler config Spec.default in
  let st = Cluster.start ~seed:7 strategy in
  let events = ref [] in
  List.iteri
    (fun prog p ->
      let accs = Dataflow.profile_program profiler p in
      events := List.rev_append (Cluster.feed st ~prog accs) !events)
    corpus;
  events := List.rev_append (Cluster.drain st) !events;
  (st, Cluster.finalize st, List.rev !events)

let check_online_equals_batch strategy =
  let batch = run_strategy strategy in
  let _, online, _ = online_result strategy in
  let name = Cluster.strategy_name strategy in
  check_int (name ^ ": generated") batch.Cluster.generated
    online.Cluster.generated;
  check_int (name ^ ": clusters") batch.Cluster.clusters
    online.Cluster.clusters;
  check_int (name ^ ": df_total") batch.Cluster.df_total
    online.Cluster.df_total;
  check_bool (name ^ ": identical representatives") true
    (List.equal
       (fun x y -> Testcase.compare x y = 0)
       batch.Cluster.reps online.Cluster.reps);
  check_bool (name ^ ": identical size distribution") true
    (batch.Cluster.sizes = online.Cluster.sizes)

let test_online_equals_batch () =
  List.iter check_online_equals_batch
    [ Cluster.Df; Cluster.Df_ia; Cluster.Df_st 1; Cluster.Df_st 2;
      Cluster.Rand 40 ]

let test_online_events_track_live () =
  (* Replaying the event stream reconstructs exactly the live cluster
     table: every seal/rep-change/drop is reported, none is spurious. *)
  let st, _, events = online_result Cluster.Df_ia in
  let replay = Hashtbl.create 64 in
  List.iter
    (function
      | Cluster.Sealed (id, tc) ->
        check_bool "sealed ids are fresh" false (Hashtbl.mem replay id);
        Hashtbl.replace replay id tc
      | Cluster.Rep_changed (id, tc) ->
        check_bool "rep changes hit live clusters" true (Hashtbl.mem replay id);
        Hashtbl.replace replay id tc
      | Cluster.Dropped id ->
        check_bool "drops hit live clusters" true (Hashtbl.mem replay id);
        Hashtbl.remove replay id)
    events;
  let live = Cluster.live st in
  check_int "replayed table size" (List.length live) (Hashtbl.length replay);
  List.iter
    (fun (id, rep) ->
      match Hashtbl.find_opt replay id with
      | None -> Alcotest.failf "cluster %d missing from replay" id
      | Some tc ->
        check_bool "replayed representative matches" true
          (Testcase.compare tc rep = 0))
    live

let test_online_feed_order_enforced () =
  let st = Cluster.start Cluster.Df_ia in
  let _ = Cluster.feed st ~prog:0 [] in
  Alcotest.check_raises "out-of-order feed rejected"
    (Invalid_argument "Cluster.feed: programs must be fed in corpus order")
    (fun () -> ignore (Cluster.feed st ~prog:2 []))

let test_strategy_names () =
  check Alcotest.string "df" "DF" (Cluster.strategy_name Cluster.Df);
  check Alcotest.string "ia" "DF-IA" (Cluster.strategy_name Cluster.Df_ia);
  check Alcotest.string "st" "DF-ST-2" (Cluster.strategy_name (Cluster.Df_st 2));
  check Alcotest.string "rand" "RAND" (Cluster.strategy_name (Cluster.Rand 5))

let suite =
  [
    Alcotest.test_case "dataflow: profiles cover corpus" `Quick
      test_profiles_cover_corpus;
    Alcotest.test_case "dataflow: protected flags shape" `Quick
      test_protected_flags_shape;
    Alcotest.test_case "dataflow: flows exist" `Quick test_total_flows_positive;
    Alcotest.test_case "dataflow: unprotected readers dropped" `Quick
      test_reader_filter_drops_unprotected;
    Alcotest.test_case "dataflow: ptype flow pairs programs" `Quick
      test_known_flow_pairs_exist;
    Alcotest.test_case "cluster: strategy count ordering" `Quick
      test_strategy_ordering;
    Alcotest.test_case "cluster: one rep per cluster" `Quick
      test_cluster_reps_match_count;
    Alcotest.test_case "cluster: deterministic reps" `Quick
      test_cluster_reps_sorted_deterministic;
    Alcotest.test_case "cluster: reps carry witness flows" `Quick
      test_cluster_flows_attached;
    Alcotest.test_case "cluster: DF counted not executed" `Quick
      test_df_has_no_reps;
    Alcotest.test_case "cluster: DF-ST refines DF-IA" `Quick test_st_refines_ia;
    Alcotest.test_case "rand: budget respected, no duplicates" `Quick
      test_rand_budget_respected;
    Alcotest.test_case "rand: deterministic per seed" `Quick
      test_rand_deterministic_per_seed;
    Alcotest.test_case "rand: indices in range" `Quick test_rand_in_range;
    Alcotest.test_case "cluster: stack context truncation" `Quick
      test_context_truncation;
    Alcotest.test_case "cluster: stack context edge cases" `Quick
      test_context_edges;
    Alcotest.test_case "rand: over-budget clamped to corpus pairs" `Quick
      test_rand_budget_clamped;
    Alcotest.test_case "rand: sparse budget delivered exactly" `Quick
      test_rand_sparse_budget_exact;
    Alcotest.test_case "cluster: df_total matches map scan" `Quick
      test_df_total_matches_map_scan;
    Alcotest.test_case "cluster: size distribution consistent" `Quick
      test_sizes_distribution_consistent;
    Alcotest.test_case "online: equals batch clustering" `Quick
      test_online_equals_batch;
    Alcotest.test_case "online: events track live table" `Quick
      test_online_events_track_live;
    Alcotest.test_case "online: feed order enforced" `Quick
      test_online_feed_order_enforced;
    Alcotest.test_case "cluster: strategy names" `Quick test_strategy_names;
  ]
