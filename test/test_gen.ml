(* Tests for test case generation: data-flow analysis and the DF /
   DF-IA / DF-ST / RAND clustering strategies. *)

module K = Kit_kernel
module Dataflow = Kit_gen.Dataflow
module Cluster = Kit_gen.Cluster
module Testcase = Kit_gen.Testcase
module Spec = Kit_spec.Spec
module Corpus = Kit_abi.Corpus
module Syzlang = Kit_abi.Syzlang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let config = K.Config.v5_13 ()

(* A small deterministic fixture shared across tests. *)
let fixture =
  lazy
    (let corpus = Corpus.generate ~seed:7 ~size:64 in
     let profiles = Dataflow.profile_corpus config Spec.default corpus in
     let map = Dataflow.build_map profiles in
     (corpus, profiles, map))

let run_strategy strategy =
  let corpus, _, map = Lazy.force fixture in
  Cluster.run strategy ~seed:7 ~corpus_size:(List.length corpus) map

(* --- dataflow ------------------------------------------------------------- *)

let test_profiles_cover_corpus () =
  let corpus, profiles, _ = Lazy.force fixture in
  check_int "one profile per program" (List.length corpus)
    (Array.length profiles.Dataflow.accesses)

let test_protected_flags_shape () =
  let _, profiles, _ = Lazy.force fixture in
  Array.iteri
    (fun i prog ->
      check_int
        (Printf.sprintf "flags for program %d" i)
        (Kit_abi.Program.length prog)
        (Array.length profiles.Dataflow.protected_calls.(i)))
    profiles.Dataflow.programs

let test_total_flows_positive () =
  let _, _, map = Lazy.force fixture in
  check_bool "flows exist" true (Dataflow.total_flows map > 0)

let test_reader_filter_drops_unprotected () =
  (* A corpus of only unprotected readers produces no qualifying flows. *)
  let corpus =
    [ Syzlang.parse "r0 = clock_gettime()"; Syzlang.parse "r0 = getpid()" ]
  in
  let profiles = Dataflow.profile_corpus config Spec.default corpus in
  let map = Dataflow.build_map profiles in
  check_int "no flows" 0 (Dataflow.total_flows map)

let test_known_flow_pairs_exist () =
  (* The ptype flow (bug #1) must pair the packet-socket program with the
     ptype reader. *)
  let corpus =
    [ Syzlang.parse "r0 = socket(3)";
      Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" ]
  in
  let profiles = Dataflow.profile_corpus config Spec.default corpus in
  let map = Dataflow.build_map profiles in
  let result = Cluster.run Cluster.Df_ia ~corpus_size:2 map in
  check_bool "pair (0 -> 1) generated" true
    (List.exists
       (fun (tc : Testcase.t) -> tc.Testcase.sender = 0 && tc.Testcase.receiver = 1)
       result.Cluster.reps)

(* --- clustering strategies -------------------------------------------------- *)

let test_strategy_ordering () =
  let df = run_strategy Cluster.Df in
  let ia = run_strategy Cluster.Df_ia in
  let st1 = run_strategy (Cluster.Df_st 1) in
  let st2 = run_strategy (Cluster.Df_st 2) in
  check_bool "IA <= ST-1" true (ia.Cluster.clusters <= st1.Cluster.clusters);
  check_bool "ST-1 <= ST-2" true (st1.Cluster.clusters <= st2.Cluster.clusters);
  check_bool "ST-2 << DF" true (st2.Cluster.clusters < df.Cluster.generated);
  check_bool "strictly finer at ST-1" true
    (ia.Cluster.clusters < st1.Cluster.clusters);
  check_bool "strictly finer at ST-2" true
    (st1.Cluster.clusters < st2.Cluster.clusters)

let test_cluster_reps_match_count () =
  let ia = run_strategy Cluster.Df_ia in
  check_int "one representative per cluster" ia.Cluster.clusters
    (List.length ia.Cluster.reps)

let test_cluster_reps_sorted_deterministic () =
  let a = run_strategy Cluster.Df_ia in
  let b = run_strategy Cluster.Df_ia in
  check_bool "deterministic" true
    (List.equal (fun x y -> Testcase.compare x y = 0) a.Cluster.reps
       b.Cluster.reps)

let test_cluster_flows_attached () =
  let ia = run_strategy Cluster.Df_ia in
  check_bool "every DF rep carries its witness flow" true
    (List.for_all
       (fun (tc : Testcase.t) -> Option.is_some tc.Testcase.flow)
       ia.Cluster.reps)

let test_df_has_no_reps () =
  let df = run_strategy Cluster.Df in
  check_int "DF is counted, not executed" 0 (List.length df.Cluster.reps)

(* DF-ST-k refines DF-IA: every ST cluster's flows map into one IA
   cluster key. Verified via representatives: distinct ST reps that share
   (w_ip, r_ip) collapse into the same IA cluster. *)
let test_st_refines_ia () =
  let ia = run_strategy Cluster.Df_ia in
  let st1 = run_strategy (Cluster.Df_st 1) in
  let ia_keys =
    List.filter_map
      (fun (tc : Testcase.t) ->
        Option.map
          (fun f -> (f.Testcase.w_ip, f.Testcase.r_ip))
          tc.Testcase.flow)
      ia.Cluster.reps
    |> List.sort_uniq Stdlib.compare
  in
  let st_keys =
    List.filter_map
      (fun (tc : Testcase.t) ->
        Option.map
          (fun f -> (f.Testcase.w_ip, f.Testcase.r_ip))
          tc.Testcase.flow)
      st1.Cluster.reps
    |> List.sort_uniq Stdlib.compare
  in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "ST-1 covers exactly the IA instruction pairs" ia_keys st_keys

let test_rand_budget_respected () =
  let rand = run_strategy (Cluster.Rand 50) in
  check_int "budget" 50 (List.length rand.Cluster.reps);
  check_bool "no duplicate pairs" true
    (let sorted = List.sort Testcase.compare rand.Cluster.reps in
     let rec no_dup = function
       | a :: (b :: _ as rest) -> Testcase.compare a b <> 0 && no_dup rest
       | [ _ ] | [] -> true
     in
     no_dup sorted)

let test_rand_deterministic_per_seed () =
  let corpus, _, map = Lazy.force fixture in
  let n = List.length corpus in
  let a = Cluster.run (Cluster.Rand 40) ~seed:3 ~corpus_size:n map in
  let b = Cluster.run (Cluster.Rand 40) ~seed:3 ~corpus_size:n map in
  let c = Cluster.run (Cluster.Rand 40) ~seed:4 ~corpus_size:n map in
  let eq x y =
    List.equal (fun p q -> Testcase.compare p q = 0) x.Cluster.reps y.Cluster.reps
  in
  check_bool "same seed same pairs" true (eq a b);
  check_bool "different seed different pairs" false (eq a c)

let test_rand_in_range () =
  let corpus, _, _ = Lazy.force fixture in
  let n = List.length corpus in
  let rand = run_strategy (Cluster.Rand 80) in
  check_bool "indices within corpus" true
    (List.for_all
       (fun (tc : Testcase.t) ->
         tc.Testcase.sender >= 0 && tc.Testcase.sender < n
         && tc.Testcase.receiver >= 0 && tc.Testcase.receiver < n)
       rand.Cluster.reps)

let test_context_truncation () =
  check (Alcotest.list Alcotest.int) "drops site frames, takes k" [ 3; 4 ]
    (Cluster.context 2 [ 1; 2; 3; 4; 5 ]);
  check (Alcotest.list Alcotest.int) "short stack" [] (Cluster.context 2 [ 1 ]);
  check (Alcotest.list Alcotest.int) "empty stack" [] (Cluster.context 3 [])

let test_strategy_names () =
  check Alcotest.string "df" "DF" (Cluster.strategy_name Cluster.Df);
  check Alcotest.string "ia" "DF-IA" (Cluster.strategy_name Cluster.Df_ia);
  check Alcotest.string "st" "DF-ST-2" (Cluster.strategy_name (Cluster.Df_st 2));
  check Alcotest.string "rand" "RAND" (Cluster.strategy_name (Cluster.Rand 5))

let suite =
  [
    Alcotest.test_case "dataflow: profiles cover corpus" `Quick
      test_profiles_cover_corpus;
    Alcotest.test_case "dataflow: protected flags shape" `Quick
      test_protected_flags_shape;
    Alcotest.test_case "dataflow: flows exist" `Quick test_total_flows_positive;
    Alcotest.test_case "dataflow: unprotected readers dropped" `Quick
      test_reader_filter_drops_unprotected;
    Alcotest.test_case "dataflow: ptype flow pairs programs" `Quick
      test_known_flow_pairs_exist;
    Alcotest.test_case "cluster: strategy count ordering" `Quick
      test_strategy_ordering;
    Alcotest.test_case "cluster: one rep per cluster" `Quick
      test_cluster_reps_match_count;
    Alcotest.test_case "cluster: deterministic reps" `Quick
      test_cluster_reps_sorted_deterministic;
    Alcotest.test_case "cluster: reps carry witness flows" `Quick
      test_cluster_flows_attached;
    Alcotest.test_case "cluster: DF counted not executed" `Quick
      test_df_has_no_reps;
    Alcotest.test_case "cluster: DF-ST refines DF-IA" `Quick test_st_refines_ia;
    Alcotest.test_case "rand: budget respected, no duplicates" `Quick
      test_rand_budget_respected;
    Alcotest.test_case "rand: deterministic per seed" `Quick
      test_rand_deterministic_per_seed;
    Alcotest.test_case "rand: indices in range" `Quick test_rand_in_range;
    Alcotest.test_case "cluster: stack context truncation" `Quick
      test_context_truncation;
    Alcotest.test_case "cluster: strategy names" `Quick test_strategy_names;
  ]
