(* Tests for the ABI library: syscall identifiers, values, programs, the
   syzlang codec, descriptors and the corpus generator. *)

module Sysno = Kit_abi.Sysno
module Value = Kit_abi.Value
module Consts = Kit_abi.Consts
module Fdtype = Kit_abi.Fdtype
module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang
module Descriptor = Kit_abi.Descriptor
module Corpus = Kit_abi.Corpus

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* --- Sysno ------------------------------------------------------------- *)

let test_sysno_roundtrip () =
  List.iter
    (fun s ->
      match Sysno.of_string (Sysno.to_string s) with
      | Some s' -> check_bool (Sysno.to_string s) true (Sysno.equal s s')
      | None -> Alcotest.failf "of_string failed for %s" (Sysno.to_string s))
    Sysno.all

let test_sysno_unknown () =
  check_bool "unknown name" true (Option.is_none (Sysno.of_string "frobnicate"))

let test_sysno_names_unique () =
  let names = List.map Sysno.to_string Sysno.all in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* --- Value ------------------------------------------------------------- *)

let test_value_equal () =
  check_bool "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  check_bool "int neq" false (Value.equal (Value.Int 3) (Value.Int 4));
  check_bool "kind neq" false (Value.equal (Value.Int 3) (Value.Ref 3));
  check_bool "str eq" true (Value.equal (Value.Str "a") (Value.Str "a"))

let test_value_print () =
  check_string "ref" "r2" (Value.to_string (Value.Ref 2));
  check_string "int" "7" (Value.to_string (Value.Int 7));
  check_string "str" "\"x\"" (Value.to_string (Value.Str "x"))

(* --- Fdtype ------------------------------------------------------------ *)

let test_fdtype_of_domain () =
  check_bool "tcp" true
    (Fdtype.of_socket_domain Consts.dom_tcp = Some Fdtype.Sock_tcp);
  check_bool "packet" true
    (Fdtype.of_socket_domain Consts.dom_packet = Some Fdtype.Sock_packet);
  check_bool "bogus" true (Fdtype.of_socket_domain 999 = None)

let test_fdtype_of_path () =
  check_bool "proc net" true
    (Fdtype.of_path "/proc/net/ptype" = Some Fdtype.Procfs_net);
  check_bool "proc misc" true
    (Fdtype.of_path "/proc/crypto" = Some Fdtype.Procfs_misc);
  check_bool "tmp" true (Fdtype.of_path "/tmp/f" = Some Fdtype.Tmpfile);
  check_bool "other" true (Fdtype.of_path "/etc/passwd" = None)

let test_fdtype_names_unique () =
  let all =
    [ Fdtype.Sock_tcp; Fdtype.Sock_udp; Fdtype.Sock_packet; Fdtype.Sock_rds;
      Fdtype.Sock_sctp; Fdtype.Sock_unix; Fdtype.Sock_alg; Fdtype.Sock_uevent;
      Fdtype.Sock_inet6; Fdtype.Procfs_net; Fdtype.Procfs_misc;
      Fdtype.Tmpfile; Fdtype.Msgqid; Fdtype.Token ]
  in
  let names = List.map Fdtype.to_string all in
  check_int "unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* --- Program ------------------------------------------------------------ *)

let prog_of_text = Syzlang.parse

let test_program_result_types () =
  let p = prog_of_text "r0 = socket(1)\nr1 = open(\"/proc/net/ptype\")\nr2 = read(r1)" in
  let types = Program.result_types p in
  check_bool "socket tcp" true (types.(0) = Some Fdtype.Sock_tcp);
  check_bool "open procfs" true (types.(1) = Some Fdtype.Procfs_net);
  check_bool "read none" true (types.(2) = None)

let test_program_uses_types () =
  let p = prog_of_text "r0 = socket(4)\nr1 = bind(r0, 1000)" in
  let types = Program.result_types p in
  match Program.nth p 1 with
  | None -> Alcotest.fail "missing call"
  | Some bind ->
    check_bool "bind uses rds sock" true
      (Program.uses_types types bind = [ Fdtype.Sock_rds ])

let test_program_remove_call_shifts_refs () =
  let p = prog_of_text "r0 = socket(1)\nr1 = socket(2)\nr2 = bind(r1, 7)" in
  let p' = Program.remove_call p 0 in
  check_int "length" 2 (Program.length p');
  match Program.nth p' 1 with
  | Some { Program.args = [ Value.Ref 0; Value.Int 7 ]; _ } -> ()
  | Some c -> Alcotest.failf "unexpected call %s" (Fmt.str "%a" Program.pp_call c)
  | None -> Alcotest.fail "missing call"

let test_program_remove_call_invalidates_refs () =
  let p = prog_of_text "r0 = socket(1)\nr1 = bind(r0, 7)" in
  let p' = Program.remove_call p 0 in
  match Program.nth p' 0 with
  | Some { Program.args = [ Value.Int -1; Value.Int 7 ]; _ } -> ()
  | Some c -> Alcotest.failf "unexpected call %s" (Fmt.str "%a" Program.pp_call c)
  | None -> Alcotest.fail "missing call"

let test_program_remove_last () =
  let p = prog_of_text "r0 = socket(1)\nr1 = getpid()" in
  let p' = Program.remove_call p 1 in
  check_int "length" 1 (Program.length p');
  check_bool "first call intact" true
    (match Program.nth p' 0 with
    | Some { Program.sysno = Sysno.Socket; _ } -> true
    | Some _ | None -> false)

let test_program_append_shifts_refs () =
  let a = prog_of_text "r0 = socket(1)" in
  let b = prog_of_text "r0 = socket(2)\nr1 = bind(r0, 9)" in
  let joined = Program.append a b in
  check_int "length" 3 (Program.length joined);
  match Program.nth joined 2 with
  | Some { Program.args = [ Value.Ref 1; Value.Int 9 ]; _ } -> ()
  | Some c -> Alcotest.failf "unexpected call %s" (Fmt.str "%a" Program.pp_call c)
  | None -> Alcotest.fail "missing call"

let test_program_hash_stable () =
  let p1 = prog_of_text "r0 = socket(1)\nr1 = getpid()" in
  let p2 = prog_of_text "r0 = socket(1)\nr1 = getpid()" in
  check_int "equal hash" (Program.hash p1) (Program.hash p2);
  check_bool "equal" true (Program.equal p1 p2)

(* --- Syzlang ------------------------------------------------------------ *)

let test_syzlang_parse_basic () =
  let p = Syzlang.parse "r0 = socket(3)" in
  check_int "one call" 1 (Program.length p);
  match Program.nth p 0 with
  | Some { Program.sysno = Sysno.Socket; args = [ Value.Int 3 ] } -> ()
  | Some _ | None -> Alcotest.fail "bad parse"

let test_syzlang_parse_string_args () =
  let p = Syzlang.parse "r0 = open(\"/proc/net/ptype\")" in
  match Program.nth p 0 with
  | Some { Program.args = [ Value.Str "/proc/net/ptype" ]; _ } -> ()
  | Some _ | None -> Alcotest.fail "bad string arg"

let test_syzlang_parse_refs () =
  let p = Syzlang.parse "r0 = socket(1)\nr1 = send(r0, 8, 0)" in
  match Program.nth p 1 with
  | Some { Program.args = [ Value.Ref 0; Value.Int 8; Value.Int 0 ]; _ } -> ()
  | Some _ | None -> Alcotest.fail "bad ref arg"

let test_syzlang_comments_and_blanks () =
  let p = Syzlang.parse "# a comment\n\nr0 = getpid()\n" in
  check_int "one call" 1 (Program.length p)

let test_syzlang_prefixless_r_syscall_with_eq () =
  (* 'read' starts with 'r'; an '=' inside a string argument of a
     prefix-less line must not be mistaken for the result assignment. *)
  let p = Syzlang.parse "msgsnd(3, \"a=b\")" in
  (match Program.nth p 0 with
  | Some { Program.sysno = Sysno.Msgsnd; args = [ Value.Int 3; Value.Str "a=b" ] } -> ()
  | Some _ | None -> Alcotest.fail "prefix-less '=' mishandled");
  let q = Syzlang.parse "read(5)" in
  check_bool "prefix-less read parses" true
    (match Program.nth q 0 with
    | Some { Program.sysno = Sysno.Read; args = [ Value.Int 5 ] } -> true
    | Some _ | None -> false)

let test_program_hash_no_prefix_collision () =
  (* Hashtbl.hash's 10-node limit used to collide programs sharing a
     prefix; the mask cache keys on this hash. *)
  let base = "r0 = socket(1)\nr1 = bind(r0, 1000)\nr2 = send(r0, 8, 0)\nr3 = send(r0, 9, 0)\nr4 = send(r0, 10, 0)\n" in
  let a = Syzlang.parse (base ^ "r5 = getpid()") in
  let b = Syzlang.parse (base ^ "r5 = clock_gettime()") in
  check_bool "distinct tails hash differently" false
    (Program.hash a = Program.hash b)

let test_syzlang_string_with_comma () =
  let p = Syzlang.parse "r0 = msgsnd(3, \"a,b\")" in
  match Program.nth p 0 with
  | Some { Program.args = [ Value.Int 3; Value.Str "a,b" ]; _ } -> ()
  | Some _ | None -> Alcotest.fail "comma inside string mishandled"

let test_syzlang_rejects_unknown () =
  check_bool "unknown call" true
    (Option.is_none (Syzlang.parse_opt "r0 = frobnicate(1)"))

let test_syzlang_rejects_garbage () =
  check_bool "no parens" true (Option.is_none (Syzlang.parse_opt "socket 3"));
  check_bool "bad int" true (Option.is_none (Syzlang.parse_opt "r0 = socket(x)"))

let test_syzlang_roundtrip_seeds () =
  List.iter
    (fun prog ->
      let text = Syzlang.print prog in
      let prog' = Syzlang.parse text in
      check_bool "roundtrip" true (Program.equal prog prog'))
    (Corpus.generate ~seed:3 ~size:64)

(* Random program generator for property tests. *)
let arbitrary_program =
  let gen =
    QCheck.Gen.(
      map
        (fun (seed, size) ->
          match Corpus.generate ~seed ~size:(1 + (size mod 6)) with
          | p :: _ -> p
          | [] -> Kit_abi.Program.make [])
        (pair small_nat small_nat))
  in
  QCheck.make ~print:Syzlang.print gen

let prop_syzlang_roundtrip =
  QCheck.Test.make ~name:"syzlang print/parse roundtrip" ~count:200
    arbitrary_program (fun p ->
      match Syzlang.parse_opt (Syzlang.print p) with
      | Some p' -> Program.equal p p'
      | None -> false)

let prop_remove_call_length =
  QCheck.Test.make ~name:"remove_call shrinks length by one" ~count:200
    arbitrary_program (fun p ->
      let n = Program.length p in
      n = 0
      || Program.length (Program.remove_call p (n - 1)) = n - 1
         && Program.length (Program.remove_call p 0) = n - 1)

let prop_result_types_length =
  QCheck.Test.make ~name:"result_types covers every call" ~count:200
    arbitrary_program (fun p ->
      Array.length (Program.result_types p) >= Program.length p)

(* --- Descriptor / Corpus ------------------------------------------------- *)

let test_descriptor_all_syscalls () =
  check_int "descriptor per syscall" (List.length Sysno.all)
    (List.length Descriptor.all)

let test_descriptor_random_args_well_typed () =
  let rng = Random.State.make [| 1 |] in
  List.iter
    (fun (d : Descriptor.t) ->
      let args =
        List.map
          (Descriptor.random_arg rng ~resolve_fd:(fun _ -> Some 0))
          d.Descriptor.args
      in
      check_int
        (Sysno.to_string d.Descriptor.sysno)
        (List.length d.Descriptor.args)
        (List.length args))
    Descriptor.all

let test_corpus_deterministic () =
  let a = Corpus.generate ~seed:42 ~size:100 in
  let b = Corpus.generate ~seed:42 ~size:100 in
  check_bool "same corpus" true (List.equal Program.equal a b)

let test_corpus_seed_sensitivity () =
  let a = Corpus.generate ~seed:1 ~size:100 in
  let b = Corpus.generate ~seed:2 ~size:100 in
  check_bool "different corpora" false (List.equal Program.equal a b)

let test_corpus_size () =
  check_int "requested size" 150 (List.length (Corpus.generate ~seed:5 ~size:150));
  check_int "small size" 10 (List.length (Corpus.generate ~seed:5 ~size:10))

let test_corpus_length_bound () =
  List.iter
    (fun p ->
      check_bool "bounded" true (Program.length p <= Corpus.max_program_len))
    (Corpus.generate ~seed:9 ~size:200)

let test_corpus_covers_subsystems () =
  let corpus = Corpus.generate ~seed:7 ~size:64 in
  let mentions s =
    List.exists
      (fun p ->
        List.exists
          (fun (c : Program.call) -> Sysno.equal c.Program.sysno s)
          (Program.calls p))
      corpus
  in
  List.iter
    (fun s ->
      check_bool (Sysno.to_string s) true (mentions s))
    [ Sysno.Socket; Sysno.Open; Sysno.Read; Sysno.Flowlabel_request;
      Sysno.Bind; Sysno.Sctp_assoc; Sysno.Get_cookie; Sysno.Alloc_protomem;
      Sysno.Uevent_recv; Sysno.Sysctl_write; Sysno.Setpriority;
      Sysno.Io_uring_read ]

let suite =
  [
    Alcotest.test_case "sysno: to_string/of_string roundtrip" `Quick
      test_sysno_roundtrip;
    Alcotest.test_case "sysno: unknown name rejected" `Quick test_sysno_unknown;
    Alcotest.test_case "sysno: names unique" `Quick test_sysno_names_unique;
    Alcotest.test_case "value: equality" `Quick test_value_equal;
    Alcotest.test_case "value: printing" `Quick test_value_print;
    Alcotest.test_case "fdtype: of_socket_domain" `Quick test_fdtype_of_domain;
    Alcotest.test_case "fdtype: of_path" `Quick test_fdtype_of_path;
    Alcotest.test_case "fdtype: names unique" `Quick test_fdtype_names_unique;
    Alcotest.test_case "program: result types" `Quick test_program_result_types;
    Alcotest.test_case "program: uses types" `Quick test_program_uses_types;
    Alcotest.test_case "program: remove_call shifts refs" `Quick
      test_program_remove_call_shifts_refs;
    Alcotest.test_case "program: remove_call invalidates refs" `Quick
      test_program_remove_call_invalidates_refs;
    Alcotest.test_case "program: remove last call" `Quick test_program_remove_last;
    Alcotest.test_case "program: append shifts refs" `Quick
      test_program_append_shifts_refs;
    Alcotest.test_case "program: hash stable" `Quick test_program_hash_stable;
    Alcotest.test_case "syzlang: parse basic" `Quick test_syzlang_parse_basic;
    Alcotest.test_case "syzlang: string args" `Quick
      test_syzlang_parse_string_args;
    Alcotest.test_case "syzlang: resource refs" `Quick test_syzlang_parse_refs;
    Alcotest.test_case "syzlang: comments and blanks" `Quick
      test_syzlang_comments_and_blanks;
    Alcotest.test_case "syzlang: comma inside string" `Quick
      test_syzlang_string_with_comma;
    Alcotest.test_case "syzlang: prefix-less r-syscall with '='" `Quick
      test_syzlang_prefixless_r_syscall_with_eq;
    Alcotest.test_case "program: hash distinguishes long tails" `Quick
      test_program_hash_no_prefix_collision;
    Alcotest.test_case "syzlang: rejects unknown syscall" `Quick
      test_syzlang_rejects_unknown;
    Alcotest.test_case "syzlang: rejects garbage" `Quick
      test_syzlang_rejects_garbage;
    Alcotest.test_case "syzlang: roundtrip over generated corpus" `Quick
      test_syzlang_roundtrip_seeds;
    Alcotest.test_case "descriptor: covers all syscalls" `Quick
      test_descriptor_all_syscalls;
    Alcotest.test_case "descriptor: random args well-typed" `Quick
      test_descriptor_random_args_well_typed;
    Alcotest.test_case "corpus: deterministic for a seed" `Quick
      test_corpus_deterministic;
    Alcotest.test_case "corpus: seed-sensitive" `Quick
      test_corpus_seed_sensitivity;
    Alcotest.test_case "corpus: exact size" `Quick test_corpus_size;
    Alcotest.test_case "corpus: program length bounded" `Quick
      test_corpus_length_bound;
    Alcotest.test_case "corpus: covers all subsystems" `Quick
      test_corpus_covers_subsystems;
    QCheck_alcotest.to_alcotest prop_syzlang_roundtrip;
    QCheck_alcotest.to_alcotest prop_remove_call_length;
    QCheck_alcotest.to_alcotest prop_result_types_length;
  ]
