(* Tests for the trace library: AST construction, decoding, the
   Algorithm 1 comparison and non-determinism marking. *)

module Ast = Kit_trace.Ast
module Compare = Kit_trace.Compare
module Nondet = Kit_trace.Nondet
module Decode = Kit_trace.Decode
module K = Kit_kernel

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let leaf = Ast.leaf
let node = Ast.node

(* --- Ast ----------------------------------------------------------------- *)

let test_ast_size () =
  let t = node "a" [ leaf "b" "1"; node "c" [ leaf "d" "2" ] ] in
  check_int "size" 4 (Ast.size t);
  check_int "no nondet" 0 (Ast.count_nondet t)

let test_ast_equal () =
  let t1 = node "a" [ leaf "b" "1" ] in
  let t2 = node "a" [ leaf "b" "1" ] in
  let t3 = node "a" [ leaf "b" "2" ] in
  check_bool "equal" true (Ast.equal t1 t2);
  check_bool "not equal" false (Ast.equal t1 t3);
  check_bool "det matters" false (Ast.equal t1 (Ast.with_det t2 false))

(* --- Compare (Algorithm 1) ----------------------------------------------- *)

let test_compare_identical () =
  let t = node "trace" [ node "call0:x" [ leaf "ret" "0" ] ] in
  check_int "no diffs" 0 (List.length (Compare.diff_trees t t))

let test_compare_value_mismatch () =
  let ta = node "trace" [ node "call0:x" [ leaf "ret" "0" ] ] in
  let tb = node "trace" [ node "call0:x" [ leaf "ret" "1" ] ] in
  match Compare.diff_trees ta tb with
  | [ d ] ->
    check_bool "path reaches the leaf" true
      (List.exists (String.equal "ret") d.Compare.path)
  | diffs -> Alcotest.failf "expected one diff, got %d" (List.length diffs)

let test_compare_length_mismatch_stops_descent () =
  let ta = node "out" [ leaf "l0" "a"; leaf "l1" "b" ] in
  let tb = node "out" [ leaf "l0" "a" ] in
  match Compare.diff_trees ta tb with
  | [ d ] -> check_bool "diff at parent" true (String.equal d.Compare.left.Ast.label "out")
  | diffs -> Alcotest.failf "expected one diff, got %d" (List.length diffs)

let test_compare_nondet_skipped () =
  let ta = node "trace" [ leaf ~det:false "time" "100" ] in
  let tb = node "trace" [ leaf "time" "200" ] in
  check_int "nondet node skipped" 0 (List.length (Compare.diff_trees ta tb))

let test_compare_nondet_parent_masks_subtree () =
  let ta = node ~det:false "out" [ leaf "l0" "a"; leaf "l1" "b" ] in
  let tb = node ~det:false "out" [ leaf "l0" "x" ] in
  check_int "whole subtree masked" 0 (List.length (Compare.diff_trees ta tb))

let test_compare_multiple_diffs () =
  let ta = node "trace" [ leaf "a" "1"; leaf "b" "2"; leaf "c" "3" ] in
  let tb = node "trace" [ leaf "a" "9"; leaf "b" "2"; leaf "c" "9" ] in
  check_int "two diffs" 2 (List.length (Compare.diff_trees ta tb))

let test_interfered_indices () =
  let call i v = node (Printf.sprintf "call%d:read" i) [ leaf "ret" v ] in
  let ta = node "trace" [ call 0 "1"; call 1 "2"; call 2 "3" ] in
  let tb = node "trace" [ call 0 "1"; call 1 "9"; call 2 "9" ] in
  check (Alcotest.list Alcotest.int) "indices" [ 1; 2 ]
    (Compare.interfered_indices ta tb)

let test_call_index_parsing () =
  check_bool "call12:read" true
    (Compare.call_index_of_label "call12:read" = Some 12);
  check_bool "not a call" true (Compare.call_index_of_label "stat" = None)

(* --- Nondet --------------------------------------------------------------- *)

let test_mark_value_variation () =
  let reference = node "trace" [ leaf "time" "100"; leaf "ret" "0" ] in
  let alt = node "trace" [ leaf "time" "200"; leaf "ret" "0" ] in
  let mask = Nondet.mark reference [ alt ] in
  match mask.Ast.children with
  | [ time; ret ] ->
    check_bool "time nondet" false time.Ast.det;
    check_bool "ret det" true ret.Ast.det
  | _ -> Alcotest.fail "shape"

let test_mark_length_variation () =
  let reference = node "out" [ leaf "l0" "a" ] in
  let alt = node "out" [ leaf "l0" "a"; leaf "l1" "b" ] in
  let mask = Nondet.mark reference [ alt ] in
  check_bool "parent nondet" false mask.Ast.det

let test_mark_no_variation () =
  let reference = node "trace" [ leaf "ret" "0" ] in
  let mask = Nondet.mark reference [ reference; reference ] in
  check_bool "all det" true (Ast.equal mask reference)

let test_apply_mask () =
  let mask = node "trace" [ leaf ~det:false "time" "100"; leaf "ret" "0" ] in
  let tree = node "trace" [ leaf "time" "150"; leaf "ret" "1" ] in
  let masked = Nondet.apply_mask mask tree in
  match masked.Ast.children with
  | [ time; ret ] ->
    check_bool "time masked" false time.Ast.det;
    check_bool "ret kept" true ret.Ast.det
  | _ -> Alcotest.fail "shape"

let test_apply_mask_extra_children_survive () =
  let mask = node "out" [ leaf "l0" "a" ] in
  let tree = node "out" [ leaf "l0" "a"; leaf "l1" "ADDED" ] in
  let masked = Nondet.apply_mask mask tree in
  match masked.Ast.children with
  | [ _; added ] -> check_bool "added line stays det" true added.Ast.det
  | _ -> Alcotest.fail "shape"

let test_mask_end_to_end () =
  (* A sender-added line must survive masking; a timing leaf must not. *)
  let solo k =
    node "trace"
      [ node "call0:read" [ leaf "time" (string_of_int (100 + k)); node "out" [ leaf "l0" "hdr" ] ] ]
  in
  let with_sender =
    node "trace"
      [ node "call0:read"
          [ leaf "time" "999"; node "out" [ leaf "l0" "hdr"; leaf "l1" "LEAK" ] ] ]
  in
  let mask = Nondet.mark (solo 0) [ solo 1; solo 2 ] in
  let ma = Nondet.apply_mask mask with_sender in
  let mb = Nondet.apply_mask mask (solo 0) in
  match Compare.diff_trees ma mb with
  | [ d ] -> check_bool "leak detected" true (String.equal d.Compare.left.Ast.label "out")
  | diffs -> Alcotest.failf "expected exactly the leak, got %d diffs" (List.length diffs)

(* --- Decode ----------------------------------------------------------------- *)

let run_and_decode text =
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  Decode.decode_trace (K.Interp.run k ~pid (Kit_abi.Syzlang.parse text))

let test_decode_shape () =
  let t = run_and_decode "r0 = getpid()\nr1 = clock_gettime()" in
  check_int "two calls" 2 (List.length t.Ast.children);
  match t.Ast.children with
  | [ c0; _ ] ->
    check_bool "labelled with index and name" true
      (String.equal c0.Ast.label "call0:getpid")
  | _ -> Alcotest.fail "shape"

let test_decode_multiline_payload () =
  let t = run_and_decode "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)" in
  match t.Ast.children with
  | [ _; read ] ->
    let out =
      List.find_opt (fun c -> String.equal c.Ast.label "out") read.Ast.children
    in
    (match out with
    | Some out -> check_bool "one child per line" true (List.length out.Ast.children >= 3)
    | None -> Alcotest.fail "no out node")
  | _ -> Alcotest.fail "shape"

let test_decode_stat_fields () =
  let t = run_and_decode "r0 = open(\"/proc/net/sockstat\")\nr1 = fstat(r0)" in
  match t.Ast.children with
  | [ _; fstat ] ->
    let stat =
      List.find_opt (fun c -> String.equal c.Ast.label "stat") fstat.Ast.children
    in
    (match stat with
    | Some stat ->
      check (Alcotest.list Alcotest.string) "field labels"
        [ "ino"; "dev_minor"; "size"; "mtime" ]
        (List.map (fun c -> c.Ast.label) stat.Ast.children)
    | None -> Alcotest.fail "no stat node")
  | _ -> Alcotest.fail "shape"

let test_decode_errno () =
  let t = run_and_decode "r0 = read(99)" in
  match t.Ast.children with
  | [ call ] ->
    let errno =
      List.find_opt (fun c -> String.equal c.Ast.label "errno") call.Ast.children
    in
    (match errno with
    | Some e -> check Alcotest.string "EBADF" "EBADF" e.Ast.value
    | None -> Alcotest.fail "no errno node")
  | _ -> Alcotest.fail "shape"

(* --- qcheck properties -------------------------------------------------------- *)

let gen_ast =
  let open QCheck.Gen in
  sized_size (int_bound 4) (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            map2
              (fun l v -> leaf (Printf.sprintf "l%d" l) (string_of_int v))
              (int_bound 3) (int_bound 5)
          else
            map2
              (fun l children -> node (Printf.sprintf "n%d" l) children)
              (int_bound 3)
              (list_size (int_bound 3) (self (n - 1))))
        n)

let arbitrary_ast = QCheck.make ~print:Ast.to_string gen_ast

let prop_compare_reflexive =
  QCheck.Test.make ~name:"diff_trees t t = []" ~count:200 arbitrary_ast
    (fun t -> Compare.diff_trees t t = [])

let prop_compare_symmetric_count =
  QCheck.Test.make ~name:"diff count symmetric" ~count:200
    (QCheck.pair arbitrary_ast arbitrary_ast) (fun (a, b) ->
      List.length (Compare.diff_trees a b) = List.length (Compare.diff_trees b a))

let prop_mark_self_is_identity =
  QCheck.Test.make ~name:"mark t [t;t] = t" ~count:200 arbitrary_ast (fun t ->
      Ast.equal (Nondet.mark t [ t; t ]) t)

let prop_masked_compare_empty =
  QCheck.Test.make ~name:"masking both sides silences all diffs" ~count:200
    (QCheck.pair arbitrary_ast arbitrary_ast) (fun (a, b) ->
      (* Marking a against b makes every difference non-deterministic, so
         comparing the masked trees reports nothing. *)
      let mask = Nondet.mark a [ b ] in
      Compare.diff_trees (Nondet.apply_mask mask a) (Nondet.apply_mask mask b)
      = [])

let prop_apply_mask_only_clears =
  QCheck.Test.make ~name:"apply_mask never sets det" ~count:200
    (QCheck.pair arbitrary_ast arbitrary_ast) (fun (mask, t) ->
      let rec all_det_implied masked original =
        ((not masked.Ast.det) || original.Ast.det)
        && List.for_all2 all_det_implied masked.Ast.children
             original.Ast.children
      in
      let masked = Nondet.apply_mask mask t in
      all_det_implied masked t)

let suite =
  [
    Alcotest.test_case "ast: size and counts" `Quick test_ast_size;
    Alcotest.test_case "ast: equality" `Quick test_ast_equal;
    Alcotest.test_case "compare: identical trees" `Quick test_compare_identical;
    Alcotest.test_case "compare: value mismatch" `Quick
      test_compare_value_mismatch;
    Alcotest.test_case "compare: length mismatch stops descent" `Quick
      test_compare_length_mismatch_stops_descent;
    Alcotest.test_case "compare: nondet node skipped" `Quick
      test_compare_nondet_skipped;
    Alcotest.test_case "compare: nondet parent masks subtree" `Quick
      test_compare_nondet_parent_masks_subtree;
    Alcotest.test_case "compare: multiple diffs" `Quick
      test_compare_multiple_diffs;
    Alcotest.test_case "compare: interfered indices" `Quick
      test_interfered_indices;
    Alcotest.test_case "compare: call index parsing" `Quick
      test_call_index_parsing;
    Alcotest.test_case "nondet: value variation marked" `Quick
      test_mark_value_variation;
    Alcotest.test_case "nondet: length variation marks parent" `Quick
      test_mark_length_variation;
    Alcotest.test_case "nondet: no variation leaves tree det" `Quick
      test_mark_no_variation;
    Alcotest.test_case "nondet: apply mask" `Quick test_apply_mask;
    Alcotest.test_case "nondet: extra children survive mask" `Quick
      test_apply_mask_extra_children_survive;
    Alcotest.test_case "nondet: leak survives, timing masked (end-to-end)"
      `Quick test_mask_end_to_end;
    Alcotest.test_case "decode: trace shape" `Quick test_decode_shape;
    Alcotest.test_case "decode: multi-line payload" `Quick
      test_decode_multiline_payload;
    Alcotest.test_case "decode: stat fields" `Quick test_decode_stat_fields;
    Alcotest.test_case "decode: errno" `Quick test_decode_errno;
    QCheck_alcotest.to_alcotest prop_compare_reflexive;
    QCheck_alcotest.to_alcotest prop_compare_symmetric_count;
    QCheck_alcotest.to_alcotest prop_mark_self_is_identity;
    QCheck_alcotest.to_alcotest prop_masked_compare_empty;
    QCheck_alcotest.to_alcotest prop_apply_mask_only_clears;
  ]
