(* Test runner aggregating all library suites. *)

(* Pool workers and the fingerprint cross-process check are
   re-executions of this binary; the trampolines must run before
   alcotest sees argv. No-ops in the parent. *)
let () = Kit_serve.Pool.worker_entry ()
let () = Test_repr.child_entry ()

let () =
  Alcotest.run "kit"
    [
      ("abi", Test_abi.suite);
      ("kernel", Test_kernel.suite);
      ("trace", Test_trace.suite);
      ("profile", Test_profile.suite);
      ("spec", Test_spec.suite);
      ("gen", Test_gen.suite);
      ("exec", Test_exec.suite);
      ("detect", Test_detect.suite);
      ("report", Test_report.suite);
      ("obs", Test_obs.suite);
      ("traceana", Test_traceana.suite);
      ("core", Test_core.suite);
      ("ext", Test_ext.suite);
      ("fault", Test_fault.suite);
      ("edge", Test_edge.suite);
      ("props", Test_props.suite);
      ("repr", Test_repr.suite);
      ("sched", Test_sched.suite);
      ("coverage", Test_coverage.suite);
      ("serve", Test_serve.suite);
    ]
