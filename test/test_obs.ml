(* Tests for the observability plane (lib/obs): registry mechanics,
   tracer ring buffer, JSONL encode/parse round trips, golden export
   stability, and the headline invariant — observability on or off
   never changes campaign results. *)

module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer
module Jsonl = Kit_obs.Jsonl
module Export = Kit_obs.Export
module Render = Kit_obs.Render
module Campaign = Kit_core.Campaign
module Fault = Kit_kernel.Fault

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* --- registry ------------------------------------------------------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a" in
  Metrics.inc c;
  Metrics.add c 4;
  check_int "counts" 5 (Metrics.counter_value c);
  let c' = Metrics.counter r "a" in
  Metrics.inc c';
  check_int "handles are interned per name" 6 (Metrics.counter_value c);
  Metrics.set_counter c 2;
  check_int "set overwrites" 2 (Metrics.counter_value c)

let test_disabled_registry_records_nothing () =
  let r = Metrics.create ~enabled:false () in
  let c = Metrics.counter r "quiet" in
  let g = Metrics.gauge r "g" in
  let h = Metrics.histogram r "h" in
  Metrics.inc c;
  Metrics.set_gauge g 9.0;
  Metrics.observe h 3.0;
  check_int "counter silent" 0 (Metrics.counter_value c);
  check_bool "gauge silent" true (Metrics.gauge_value g = 0.0);
  check_int "histogram silent" 0 (Metrics.histogram_count h);
  let a = Metrics.counter ~always:true r "loud" in
  Metrics.inc a;
  check_int "always-on counters bypass the flag" 1 (Metrics.counter_value a)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] r "h" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
  check_int "count" 3 (Metrics.histogram_count h);
  check_bool "sum" true (Metrics.histogram_sum h = 55.5);
  match List.assoc "h" (Metrics.snapshot r) with
  | Metrics.Hist_v { le; counts; _ } ->
    check (Alcotest.list (Alcotest.float 0.0)) "bounds" [ 1.0; 10.0 ] le;
    check (Alcotest.list Alcotest.int) "per-bucket counts (with overflow)"
      [ 1; 1; 1 ] counts
  | _ -> Alcotest.fail "expected a histogram value"

let test_snapshot_sorted_and_volatile_excluded () =
  let r = Metrics.create () in
  Metrics.inc (Metrics.counter r "z");
  Metrics.inc (Metrics.counter r "a");
  Metrics.set_gauge (Metrics.gauge ~volatile:true r "wall_s") 1.25;
  let names = List.map fst (Metrics.snapshot r) in
  check (Alcotest.list Alcotest.string) "sorted, volatile excluded"
    [ "a"; "z" ] names;
  let names_v = List.map fst (Metrics.snapshot ~volatile:true r) in
  check (Alcotest.list Alcotest.string) "volatile opt-in"
    [ "a"; "wall_s"; "z" ] names_v

let test_merge_sums_pointwise () =
  let mk n =
    let r = Metrics.create () in
    Metrics.add (Metrics.counter r "c") n;
    Metrics.set_gauge (Metrics.gauge r "g") (float_of_int n);
    Metrics.observe (Metrics.histogram r "h") (float_of_int n);
    Metrics.snapshot r
  in
  let merged = Metrics.merge [ mk 2; mk 3 ] in
  (match List.assoc "c" merged with
  | Metrics.Counter_v v -> check_int "counters sum" 5 v
  | _ -> Alcotest.fail "expected counter");
  (match List.assoc "g" merged with
  | Metrics.Gauge_v v -> check_bool "gauges sum" true (v = 5.0)
  | _ -> Alcotest.fail "expected gauge");
  match List.assoc "h" merged with
  | Metrics.Hist_v { n; sum; _ } ->
    check_int "histogram observations sum" 2 n;
    check_bool "histogram sums sum" true (sum = 5.0)
  | _ -> Alcotest.fail "expected histogram"

let test_reset_zeroes_but_keeps_names () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "c") 7;
  Metrics.reset r;
  check (Alcotest.list Alcotest.string) "names survive, values zeroed" [ "c" ]
    (List.map fst (Metrics.snapshot r));
  check_int "zeroed" 0 (Metrics.counter_value (Metrics.counter r "c"))

(* --- tracer --------------------------------------------------------------- *)

let test_span_nesting () =
  let t = Tracer.create () in
  Tracer.with_span t "outer" (fun () ->
      Tracer.with_span t "inner" (fun () -> Tracer.instant t "tick"));
  let evs = Tracer.events t in
  check (Alcotest.list Alcotest.string) "event shape"
    [ "begin outer"; "begin inner"; "instant tick"; "end inner"; "end outer" ]
    (List.map
       (fun (e : Tracer.event) ->
         Tracer.kind_to_string e.Tracer.kind ^ " " ^ e.Tracer.name)
       evs);
  check (Alcotest.list Alcotest.int) "deterministic time defaults to seq"
    [ 0; 1; 2; 3; 4 ]
    (List.map (fun (e : Tracer.event) -> e.Tracer.time) evs)

let test_ring_drops_oldest () =
  let t = Tracer.create ~cap:4 () in
  for i = 0 to 9 do
    Tracer.instant t (string_of_int i)
  done;
  check_int "recorded counts everything" 10 (Tracer.recorded t);
  check_int "dropped" 6 (Tracer.dropped t);
  check (Alcotest.list Alcotest.string) "oldest evicted first"
    [ "6"; "7"; "8"; "9" ]
    (List.map (fun (e : Tracer.event) -> e.Tracer.name) (Tracer.events t))

let test_nop_tracer_is_inert () =
  Tracer.with_span Tracer.nop "x" (fun () -> Tracer.instant Tracer.nop "y");
  check_int "nop records nothing" 0 (Tracer.recorded Tracer.nop)

let test_span_ends_on_raise () =
  let t = Tracer.create () in
  (try Tracer.with_span t "risky" (fun () -> failwith "boom")
   with Failure _ -> ());
  check (Alcotest.list Alcotest.string) "End recorded despite the raise"
    [ "begin"; "end" ]
    (List.map
       (fun (e : Tracer.event) -> Tracer.kind_to_string e.Tracer.kind)
       (Tracer.events t))

(* Satellite regression: a cap-2 ring that dropped the Begin of a
   still-open span. Spantree.build must synthesize a truncated root
   instead of crashing on the orphaned End. *)
let test_orphaned_span_survives_truncated_ring () =
  let t = Tracer.create ~cap:2 () in
  let sp = Tracer.span t "outer" in
  Tracer.instant t "mark";
  Tracer.finish t sp;
  (* ring: [instant mark; end outer] — "begin outer" was dropped *)
  check_int "begin was dropped" 1 (Tracer.dropped t);
  let tree =
    Kit_obs.Spantree.build ~dropped:(Tracer.dropped t) (Tracer.events t)
  in
  check_int "one synthesized truncated root" 1
    tree.Kit_obs.Spantree.truncated_begins;
  check_int "drop count carried through" 1 tree.Kit_obs.Spantree.dropped;
  match Kit_obs.Spantree.roots tree with
  | [ root ] ->
    check_str "root takes the orphaned End's name" "outer"
      root.Kit_obs.Spantree.n_name;
    check_bool "root flagged truncated" true root.Kit_obs.Spantree.n_truncated;
    check_int "root adopted the surviving instant" 1
      (List.length root.Kit_obs.Spantree.n_children)
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

(* k-way interleave must preserve per-ring order even when deterministic
   times rewind inside a ring (virtual-clock spans across snapshot
   restores) — a global sort would tear the Begin/End nesting apart. *)
let test_interleave_preserves_ring_order_on_rewind () =
  let r1 = Tracer.create () in
  let sp = Tracer.span r1 ~time:100 "case0" in
  Tracer.finish r1 ~time:10 sp;                 (* clock rewound *)
  let sp = Tracer.span r1 ~time:20 "case1" in
  Tracer.finish r1 ~time:30 sp;
  let r2 = Tracer.create () in
  let sp = Tracer.span r2 ~time:50 "case2" in
  Tracer.finish r2 ~time:60 sp;
  let merged = Tracer.interleave [ Tracer.events r1; Tracer.events r2 ] in
  let names = List.map (fun (e : Tracer.event) -> e.Tracer.name) merged in
  (* r1's internal order must survive: case0 begin, case0 end, case1 ... *)
  check (Alcotest.list Alcotest.string) "per-ring order preserved"
    [ "case2"; "case2"; "case0"; "case0"; "case1"; "case1" ]
    names;
  let tree = Kit_obs.Spantree.build merged in
  check_int "no span torn apart" 0
    (tree.Kit_obs.Spantree.truncated_begins
     + tree.Kit_obs.Spantree.unfinished)

(* --- jsonl ---------------------------------------------------------------- *)

let test_jsonl_round_trip () =
  let v =
    Jsonl.Obj
      [ ("s", Jsonl.Str "a\"b\n\\c"); ("i", Jsonl.Int (-42));
        ("f", Jsonl.Float 0.125); ("b", Jsonl.Bool true); ("n", Jsonl.Null);
        ("l", Jsonl.List [ Jsonl.Int 1; Jsonl.Float 2.5 ]) ]
  in
  match Jsonl.parse (Jsonl.to_string v) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v' -> check_str "round trip" (Jsonl.to_string v) (Jsonl.to_string v')

let test_export_round_trip () =
  let obs = Obs.create () in
  Metrics.add (Metrics.counter obs.Obs.metrics "c") 3;
  Metrics.set_gauge (Metrics.gauge obs.Obs.metrics "g") 1.5;
  Metrics.observe (Metrics.histogram obs.Obs.metrics "h") 2.0;
  Tracer.with_span obs.Obs.tracer "phase.x"
    ~attrs:[ ("k", "v") ]
    (fun () -> ());
  let lines =
    Obs.export_lines ~meta:[ ("cmd", Jsonl.Str "test") ] obs
  in
  match Export.parse lines with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
    check_bool "snapshot survives" true
      (Metrics.equal_snapshot p.Export.p_snapshot (Obs.snapshot obs));
    check_int "events survive" 2 (List.length p.Export.p_events);
    check_str "meta survives" "\"test\""
      (Jsonl.to_string (List.assoc "cmd" p.Export.p_meta));
    (* the renderer accepts anything the exporter produced *)
    check_bool "stats renders" true (String.length (Render.stats p) > 0)

(* Satellite: span-event attrs that need escaping — quotes, newlines,
   tabs, control bytes, non-ASCII — must survive export → parse. *)
let test_event_attrs_escaping_round_trip () =
  let nasty =
    [ ("quoted", {|a"b\c|}); ("newline", "line1\nline2");
      ("tab", "col1\tcol2"); ("ctl", "bell\007end");
      ("utf", "h\xc3\xa9llo \xe2\x80\x94 \xc3\xbcn\xc3\xafcode") ]
  in
  let obs = Obs.create () in
  Tracer.with_span obs.Obs.tracer ~attrs:nasty "phase.nasty" (fun () ->
      Tracer.instant obs.Obs.tracer ~attrs:nasty "mark");
  match Export.parse (Obs.export_lines obs) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
    check_int "all events survive" 3 (List.length p.Export.p_events);
    List.iter
      (fun (e : Tracer.event) ->
        List.iter
          (fun (k, v) ->
            check_str ("attr " ^ k ^ " survives byte-exactly") v
              (List.assoc k e.Tracer.attrs))
          nasty)
      p.Export.p_events

(* Satellite qcheck: Tracer.merge determinism — dealing the same case
   spans over any number of per-domain rings and merging yields a span
   tree with the same placement-ignoring fingerprint. *)
let prop_merge_fingerprint_invariant_in_domains =
  QCheck.Test.make
    ~name:"Tracer.merge: tree fingerprint invariant in domain count"
    ~count:30
    QCheck.(pair (int_range 1 24) (int_range 2 4))
    (fun (cases, domains) ->
      let deal domains =
        let rings = Array.init domains (fun _ -> Tracer.create ()) in
        for case = 0 to cases - 1 do
          let t = rings.(case mod domains) in
          let attrs =
            [ ("case", string_of_int case);
              ("domain", string_of_int (case mod domains)) ]
          in
          (* rewinding virtual-clock times, like real supervised spans *)
          let sp = Tracer.span t ~attrs ~time:(1000 - case) "sup.execute" in
          if case mod 3 = 0 then
            Tracer.instant t ~attrs ~time:(1000 - case) "sup.retry";
          Tracer.finish t ~time:(case * 7) sp
        done;
        let merged = Tracer.create () in
        Tracer.merge merged
          (Array.to_list (Array.map Tracer.events rings));
        let tree =
          Kit_obs.Spantree.build ~lane_attrs:[ "case" ]
            (Tracer.events merged)
        in
        ( Kit_obs.Spantree.fingerprint tree,
          Kit_obs.Profile.fingerprint (Kit_obs.Profile.of_tree tree) )
      in
      deal 1 = deal domains)

(* A hand-built registry with a pinned export: catches accidental format
   drift (field renames, float formatting, ordering changes). *)
let test_golden_export () =
  let obs = Obs.create () in
  Metrics.add (Metrics.counter obs.Obs.metrics "exec.executions") 12;
  Metrics.set_gauge (Metrics.gauge obs.Obs.metrics "sup.backoff_ms") 35.0;
  Metrics.observe
    (Metrics.histogram ~buckets:[| 1.0; 5.0 |] obs.Obs.metrics "chunk")
    2.5;
  Tracer.instant obs.Obs.tracer "sup.reboot";
  check (Alcotest.list Alcotest.string) "golden lines"
    [ {|{"k":"meta","version":1}|};
      {|{"k":"hist","name":"chunk","le":[1.0,5.0],"counts":[0,1,0],"sum":2.5,"count":1}|};
      {|{"k":"counter","name":"exec.executions","value":12}|};
      {|{"k":"gauge","name":"sup.backoff_ms","value":35.0}|};
      {|{"k":"event","seq":0,"time":0,"ev":"instant","name":"sup.reboot"}|} ]
    (Obs.export_lines obs)

(* --- campaign integration ------------------------------------------------- *)

let small_options = { Campaign.default_options with Campaign.corpus_size = 48 }

let campaign_fingerprint (c : Campaign.t) =
  Marshal.to_string
    (c.Campaign.reports, c.Campaign.funnel, c.Campaign.quarantined)
    []

(* Deterministic telemetry: same seed, fresh bundle each time →
   byte-identical wall-less export. *)
let test_campaign_export_is_stable () =
  let export () =
    let c = Campaign.run small_options in
    Obs.export_lines c.Campaign.obs
  in
  check (Alcotest.list Alcotest.string) "two runs, identical JSONL"
    (export ()) (export ())

let test_campaign_counters_match_results () =
  let c = Campaign.run small_options in
  let snap = Obs.snapshot c.Campaign.obs in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Metrics.Counter_v v) -> v
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check_int "executions" c.Campaign.executions (counter "campaign.executions");
  check_int "reports"
    (List.length c.Campaign.reports)
    (counter "campaign.reports");
  check_int "funnel executed" c.Campaign.funnel.Kit_detect.Filter.executed
    (counter "campaign.funnel_executed");
  check_int "sup attempts mirror stats"
    c.Campaign.sup_stats.Kit_exec.Supervisor.attempts
    (counter "sup.attempts");
  check_bool "exec.executions covers diagnosis re-runs" true
    (counter "exec.executions" >= counter "campaign.executions")

let test_supervisor_metrics_under_faults () =
  let faults =
    match Fault.parse_schedule "panic:read:2" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse_schedule: %s" e
  in
  let c = Campaign.run { small_options with Campaign.faults } in
  let snap = Obs.snapshot c.Campaign.obs in
  (match List.assoc_opt "sup.retries" snap with
  | Some (Metrics.Counter_v v) ->
    check_int "retries mirrored"
      c.Campaign.sup_stats.Kit_exec.Supervisor.retries v
  | _ -> Alcotest.fail "missing sup.retries");
  check_bool "retry instants traced" true
    (List.exists
       (fun (e : Tracer.event) -> e.Tracer.name = "sup.retry")
       (Tracer.events c.Campaign.obs.Obs.tracer))

let test_syscall_dispatch_counters () =
  Metrics.reset Metrics.default;
  Metrics.set_enabled Metrics.default true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled Metrics.default false;
      Metrics.reset Metrics.default)
    (fun () ->
      let _ = Campaign.run small_options in
      let dispatched =
        List.filter_map
          (function
            | name, Metrics.Counter_v v
              when String.length name > 8
                   && String.sub name 0 8 = "syscall." ->
              Some (name, v)
            | _ -> None)
          (Metrics.snapshot Metrics.default)
      in
      check_bool "per-sysno counters populated" true
        (List.exists (fun (_, v) -> v > 0) dispatched))

(* The headline invariant: recording metrics and spans — including the
   global default registry — never changes reports, funnel or
   quarantine. *)
let prop_observability_never_changes_results =
  QCheck.Test.make
    ~name:"observability on/off never changes campaign results" ~count:4
    QCheck.(int_bound 8)
    (fun intensity ->
      let faults =
        Fault.schedule_of_seed ~seed:small_options.Campaign.seed ~intensity
      in
      let run obs =
        Metrics.reset Metrics.default;
        Metrics.set_enabled Metrics.default (obs <> None);
        Fun.protect
          ~finally:(fun () ->
            Metrics.set_enabled Metrics.default false;
            Metrics.reset Metrics.default)
          (fun () ->
            Campaign.run { small_options with Campaign.faults; obs })
      in
      let off = run None in
      let on = run (Some (Obs.create ())) in
      campaign_fingerprint off = campaign_fingerprint on)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "disabled registry records nothing" `Quick
      test_disabled_registry_records_nothing;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "snapshots sorted, volatile excluded" `Quick
      test_snapshot_sorted_and_volatile_excluded;
    Alcotest.test_case "merge sums point-wise" `Quick test_merge_sums_pointwise;
    Alcotest.test_case "reset zeroes but keeps names" `Quick
      test_reset_zeroes_but_keeps_names;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
    Alcotest.test_case "nop tracer is inert" `Quick test_nop_tracer_is_inert;
    Alcotest.test_case "span ends on raise" `Quick test_span_ends_on_raise;
    Alcotest.test_case "orphaned span survives truncated ring" `Quick
      test_orphaned_span_survives_truncated_ring;
    Alcotest.test_case "interleave preserves ring order on rewind" `Quick
      test_interleave_preserves_ring_order_on_rewind;
    Alcotest.test_case "event attrs escaping round trip" `Quick
      test_event_attrs_escaping_round_trip;
    QCheck_alcotest.to_alcotest prop_merge_fingerprint_invariant_in_domains;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "export round trip" `Quick test_export_round_trip;
    Alcotest.test_case "golden export" `Quick test_golden_export;
    Alcotest.test_case "campaign export is stable" `Quick
      test_campaign_export_is_stable;
    Alcotest.test_case "campaign counters match results" `Quick
      test_campaign_counters_match_results;
    Alcotest.test_case "supervisor metrics under faults" `Quick
      test_supervisor_metrics_under_faults;
    Alcotest.test_case "syscall dispatch counters" `Quick
      test_syscall_dispatch_counters;
    QCheck_alcotest.to_alcotest prop_observability_never_changes_results;
  ]
