(* Tests for the extensions: seed-call dependency selection (paper,
   section 5.3), report rendering, distributed execution (section 5.2),
   and the time-namespace / bounds-based detector (section 7 future
   work). *)

module K = Kit_kernel
module Seed_dep = Kit_spec.Seed_dep
module Spec = Kit_spec.Spec
module Render = Kit_report.Render
module Aggregate = Kit_report.Aggregate
module Diagnose = Kit_report.Diagnose
module Campaign = Kit_core.Campaign
module Distrib = Kit_core.Distrib
module Oracle = Kit_core.Oracle
module Cluster = Kit_gen.Cluster
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Bounds = Kit_trace.Bounds
module Ast = Kit_trace.Ast
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Testcase = Kit_gen.Testcase
module Program = Kit_abi.Program
module Sysno = Kit_abi.Sysno
module Syzlang = Kit_abi.Syzlang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let p = Syzlang.parse

(* --- seed-call dependency selection ---------------------------------------- *)

let seed_open_proc_net (call : Program.call) =
  Sysno.equal call.Program.sysno Sysno.Open
  &&
  match call.Program.args with
  | Kit_abi.Value.Str path :: _ ->
    String.length path >= 10 && String.equal (String.sub path 0 10) "/proc/net/"
  | _ -> false

let test_seed_dep_closure () =
  let prog =
    p "r0 = getpid()\nr1 = open(\"/proc/net/ptype\")\nr2 = read(r1)\nr3 = fstat(r2)"
  in
  check (Alcotest.list Alcotest.int) "seed + dependents"
    [ 1; 2; 3 ]
    (Seed_dep.dependent_indices prog ~seed:seed_open_proc_net)

let test_seed_dep_no_seed () =
  let prog = p "r0 = getpid()\nr1 = clock_gettime()" in
  check (Alcotest.list Alcotest.int) "empty closure" []
    (Seed_dep.dependent_indices prog ~seed:seed_open_proc_net)

let test_seed_dep_transitive_only_via_refs () =
  let prog =
    p "r0 = open(\"/proc/net/ptype\")\nr1 = getpid()\nr2 = read(r0)"
  in
  check (Alcotest.list Alcotest.int) "unrelated call skipped" [ 0; 2 ]
    (Seed_dep.dependent_indices prog ~seed:seed_open_proc_net)

let test_spec_with_seed_selector () =
  (* The base spec does not protect token calls; a seed selector on
     token_create pulls token_stat(ref) in through the dependency. *)
  let seed (call : Program.call) =
    Sysno.equal call.Program.sysno Sysno.Token_create
  in
  let spec = Spec.with_seed_selector Spec.refined seed in
  let prog = p "r0 = token_create()\nr1 = token_stat(r0)" in
  check (Alcotest.list Alcotest.int) "seeded selection" [ 0; 1 ]
    (Spec.protected_indices spec prog);
  check (Alcotest.list Alcotest.int) "without the seed" []
    (Spec.protected_indices Spec.refined prog)

(* --- render ------------------------------------------------------------------ *)

let sample_report () =
  let tree = Ast.node "trace" [] in
  { Report.testcase = { Testcase.sender = 0; receiver = 1; flow = None };
    sender = p "r0 = socket(3)";
    receiver = p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)";
    interfered = [ 1 ]; diffs = []; trace_a = tree; trace_b = tree;
    origin = Report.Sequential }

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_render_report () =
  let text = Render.report (sample_report ()) in
  check_bool "mentions programs" true (contains ~needle:"socket(3)" text);
  check_bool "mentions interfered calls" true (contains ~needle:"[1]" text)

let test_render_group () =
  let k =
    Aggregate.key_report (sample_report ())
      [ { Diagnose.sender_index = 0; receiver_index = 1 } ]
  in
  let groups = Aggregate.agg_rs [ k ] in
  let text = Render.groups groups in
  check_bool "group header" true (contains ~needle:"AGG-RS group" text);
  check_bool "culprit line" true (contains ~needle:"socket[AF_PACKET]" text)

(* --- distributed execution ----------------------------------------------------- *)

let test_shard_round_robin () =
  let shards = Distrib.shard ~workers:3 [ 1; 2; 3; 4; 5; 6; 7 ] in
  check_int "three shards" 3 (Array.length shards);
  check (Alcotest.list Alcotest.int) "worker 0" [ 1; 4; 7 ] shards.(0);
  check (Alcotest.list Alcotest.int) "worker 1" [ 2; 5 ] shards.(1);
  check (Alcotest.list Alcotest.int) "worker 2" [ 3; 6 ] shards.(2)

let test_distrib_equivalent_to_single_node () =
  let options = { Campaign.default_options with Campaign.corpus_size = 96 } in
  let single = Campaign.run options in
  let distributed =
    Distrib.execute options single.Campaign.corpus single.Campaign.generation
      ~workers:4
  in
  check_int "same report count"
    (List.length single.Campaign.reports)
    (List.length distributed.Distrib.reports);
  check_int "same initial count" single.Campaign.funnel.Filter.initial
    distributed.Distrib.funnel.Filter.initial;
  check_int "same survivor count"
    single.Campaign.funnel.Filter.after_resource
    distributed.Distrib.funnel.Filter.after_resource;
  check_int "all test cases assigned"
    (List.length single.Campaign.generation.Cluster.reps)
    (List.fold_left
       (fun acc (w : Distrib.worker_result) -> acc + w.Distrib.assigned)
       0 distributed.Distrib.workers)

let test_distrib_single_worker_degenerate () =
  let options = { Campaign.default_options with Campaign.corpus_size = 64 } in
  let single = Campaign.run options in
  let one =
    Distrib.execute options single.Campaign.corpus single.Campaign.generation
      ~workers:1
  in
  check_int "one worker" 1 (List.length one.Distrib.workers);
  check_int "same reports"
    (List.length single.Campaign.reports)
    (List.length one.Distrib.reports)

(* --- time namespace + bounds-based detection ------------------------------------ *)

let test_timens_isolated_fixed () =
  let k = K.State.boot (K.Config.fixed ()) in
  let s = K.State.spawn_container k in
  let r = K.State.spawn_container k in
  let run pid text = K.Interp.run k ~pid (p text) in
  let _ = run s "r0 = clock_settime(5)" in
  let before = K.State.now k in
  let results = run r "r0 = clock_gettime()" in
  match List.rev results with
  | last :: _ ->
    check_bool "offset not visible across time ns" true
      (last.K.Interp.ret.K.Sysret.ret < before + 1_000_000)
  | [] -> Alcotest.fail "no results"

let test_timens_global_buggy () =
  let k = K.State.boot (K.Config.v5_13 ()) in
  let s = K.State.spawn_container k in
  let r = K.State.spawn_container k in
  let run pid text = K.Interp.run k ~pid (p text) in
  let _ = run s "r0 = clock_settime(5)" in
  let results = run r "r0 = clock_gettime()" in
  match List.rev results with
  | last :: _ ->
    check_bool "offset leaked across time ns (XT)" true
      (last.K.Interp.ret.K.Sysret.ret >= 5_000_000)
  | [] -> Alcotest.fail "no results"

let test_standard_kit_misses_timens () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = clock_settime(5)")
      ~receiver:(p "r0 = clock_gettime()")
  in
  check_bool "raw divergence exists" true (outcome.Runner.raw_diffs <> []);
  check_bool "masked away as non-deterministic" true
    (outcome.Runner.masked_diffs = [])

let test_bounds_detect_timens () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let violations =
    Runner.execute_bounds runner ~sender:(p "r0 = clock_settime(5)")
      ~receiver:(p "r0 = clock_gettime()")
  in
  check_bool "bound violation flagged" true (violations <> [])

let test_bounds_quiet_without_interference () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let violations =
    Runner.execute_bounds runner ~sender:(p "r0 = getpid()")
      ~receiver:(p "r0 = clock_gettime()\nr1 = open(\"/proc/uptime\")\nr2 = read(r1)")
  in
  check (Alcotest.list Alcotest.string) "no false bound violations" []
    (List.map (fun (v : Bounds.violation) -> v.Bounds.actual) violations)

let test_bounds_quiet_on_fixed_kernel () =
  let env = Env.create (K.Config.fixed ()) in
  let runner = Runner.create env in
  let violations =
    Runner.execute_bounds runner ~sender:(p "r0 = clock_settime(5)")
      ~receiver:(p "r0 = clock_gettime()")
  in
  check_int "fixed kernel clean" 0 (List.length violations)

let test_bounds_learn_shapes () =
  let leaf v = Ast.node "trace" [ Ast.leaf "time" (string_of_int v) ] in
  let bounds = Bounds.learn (leaf 100) [ leaf 150; leaf 120 ] in
  match bounds.Bounds.children with
  | [ { Bounds.kind = Bounds.Interval (lo, hi); _ } ] ->
    check_bool "interval covers observations plus slack" true
      (lo <= 100 - Bounds.min_slack && hi >= 150 + Bounds.min_slack)
  | _ -> Alcotest.fail "expected an interval leaf"

let test_bounds_exact_leaves () =
  let t = Ast.node "trace" [ Ast.leaf "ret" "0" ] in
  let bounds = Bounds.learn t [ t; t ] in
  let bad = Ast.node "trace" [ Ast.leaf "ret" "1" ] in
  check_int "exact leaf enforced" 1 (List.length (Bounds.check bounds bad));
  check_int "self check clean" 0 (List.length (Bounds.check bounds t))

let test_bounds_shape_variation_unchecked () =
  let small = Ast.node "out" [ Ast.leaf "l0" "a" ] in
  let big = Ast.node "out" [ Ast.leaf "l0" "a"; Ast.leaf "l1" "b" ] in
  let bounds = Bounds.learn small [ big ] in
  check_int "varying shape unchecked" 0 (List.length (Bounds.check bounds big))

let test_bounds_still_catch_det_bugs () =
  (* Bounds mode subsumes the deterministic detector: bug #1 still
     shows, as an Exact/shape violation. *)
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let violations =
    Runner.execute_bounds runner ~sender:(p "r0 = socket(3)")
      ~receiver:(p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  check_bool "ptype leak flagged in bounds mode" true (violations <> [])

let suite =
  [
    Alcotest.test_case "seed-dep: dependency closure" `Quick
      test_seed_dep_closure;
    Alcotest.test_case "seed-dep: no seed" `Quick test_seed_dep_no_seed;
    Alcotest.test_case "seed-dep: only via refs" `Quick
      test_seed_dep_transitive_only_via_refs;
    Alcotest.test_case "seed-dep: spec integration" `Quick
      test_spec_with_seed_selector;
    Alcotest.test_case "render: report text" `Quick test_render_report;
    Alcotest.test_case "render: group text" `Quick test_render_group;
    Alcotest.test_case "distrib: round-robin sharding" `Quick
      test_shard_round_robin;
    Alcotest.test_case "distrib: equivalent to single node" `Slow
      test_distrib_equivalent_to_single_node;
    Alcotest.test_case "distrib: single worker degenerate" `Slow
      test_distrib_single_worker_degenerate;
    Alcotest.test_case "timens: isolated on fixed kernel" `Quick
      test_timens_isolated_fixed;
    Alcotest.test_case "timens: global offset on buggy kernel (XT)" `Quick
      test_timens_global_buggy;
    Alcotest.test_case "timens: standard KIT misses it" `Quick
      test_standard_kit_misses_timens;
    Alcotest.test_case "bounds: detects the time-ns bug" `Quick
      test_bounds_detect_timens;
    Alcotest.test_case "bounds: quiet without interference" `Quick
      test_bounds_quiet_without_interference;
    Alcotest.test_case "bounds: quiet on fixed kernel" `Quick
      test_bounds_quiet_on_fixed_kernel;
    Alcotest.test_case "bounds: interval learning" `Quick
      test_bounds_learn_shapes;
    Alcotest.test_case "bounds: exact leaves enforced" `Quick
      test_bounds_exact_leaves;
    Alcotest.test_case "bounds: shape variation unchecked" `Quick
      test_bounds_shape_variation_unchecked;
    Alcotest.test_case "bounds: deterministic bugs still caught" `Quick
      test_bounds_still_catch_det_bugs;
  ]
