(* Tests for the fault-injection plane and the supervised execution
   runtime: fault plane mechanics, schedule parsing, recovery in
   Runner/Supervisor, bounded mask cache, campaign checkpoint/resume,
   and the headline robustness properties — transient fault schedules
   and worker deaths never change campaign results; permanent crashers
   are quarantined exactly once. *)

module K = Kit_kernel
module Fault = Kit_kernel.Fault
module Sysno = Kit_abi.Sysno
module Syzlang = Kit_abi.Syzlang
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Supervisor = Kit_exec.Supervisor
module Campaign = Kit_core.Campaign
module Distrib = Kit_core.Distrib
module Filter = Kit_detect.Filter

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let sysno name =
  match Sysno.of_string name with
  | Some s -> s
  | None -> Alcotest.failf "unknown sysno %s" name

let sched s =
  match Fault.parse_schedule s with
  | Ok sched -> sched
  | Error e -> Alcotest.failf "parse_schedule %S: %s" s e

(* --- plane mechanics ------------------------------------------------------- *)

let test_transient_wears_off () =
  let t = Fault.of_schedule (sched "panic:socket:2") in
  let fire () = Fault.on_syscall t (sysno "socket") in
  (try
     fire ();
     Alcotest.fail "first occurrence should panic"
   with Fault.Kernel_panic i -> check_int "occurrence 1" 1 i.Fault.occurrence);
  (try
     fire ();
     Alcotest.fail "second occurrence should panic"
   with Fault.Kernel_panic i -> check_int "occurrence 2" 2 i.Fault.occurrence);
  fire ();
  (* worn off *)
  Fault.on_syscall t (sysno "read");
  let c = Fault.counters t in
  check_int "2 panics fired" 2 c.Fault.panics;
  check_bool "residual schedule empty" true (Fault.schedule t = [])

let test_permanent_keeps_firing () =
  let t = Fault.of_schedule (sched "panic:socket:perm") in
  for i = 1 to 5 do
    try
      Fault.on_syscall t (sysno "socket");
      Alcotest.fail "permanent fault should always panic"
    with Fault.Kernel_panic info ->
      check_int "occurrence counts up" i info.Fault.occurrence
  done;
  check_bool "still armed" true
    (Fault.schedule t = sched "panic:socket:perm")

let test_fuel_deadline () =
  let t = Fault.none () in
  Fault.set_fuel_limit t (Some 3);
  Fault.begin_execution t;
  let s = sysno "read" in
  Fault.on_syscall t s;
  Fault.on_syscall t s;
  Fault.on_syscall t s;
  (try
     Fault.on_syscall t s;
     Alcotest.fail "4th syscall should exhaust a 3-unit tank"
   with Fault.Fuel_exhausted -> ());
  (* a new execution refills the tank *)
  Fault.begin_execution t;
  Fault.on_syscall t s;
  check_int "one exhaustion" 1 (Fault.counters t).Fault.fuel_exhaustions

let test_hang_burns_fuel () =
  let t = Fault.of_schedule (sched "hang:socket:1") in
  Fault.set_fuel_limit t (Some 1000);
  Fault.begin_execution t;
  (try
     Fault.on_syscall t (sysno "socket");
     Alcotest.fail "hang fault should exhaust fuel"
   with Fault.Fuel_exhausted -> ());
  let c = Fault.counters t in
  check_int "hang fired" 1 c.Fault.hangs;
  check_int "counted as exhaustion" 1 c.Fault.fuel_exhaustions

let test_boot_and_restore_faults () =
  let t = Fault.of_schedule (sched "boot:1,snap:1") in
  (try
     Fault.on_boot t;
     Alcotest.fail "boot failure armed"
   with Fault.Boot_failed -> ());
  Fault.on_boot t;
  (try
     Fault.on_restore t;
     Alcotest.fail "snapshot corruption armed"
   with Fault.Snapshot_corrupt -> ());
  Fault.on_restore t;
  let c = Fault.counters t in
  check_int "boot failures" 1 c.Fault.boot_failures;
  check_int "corruptions" 1 c.Fault.snapshot_corruptions

(* --- schedule format and generation ---------------------------------------- *)

let test_schedule_round_trip () =
  let s = sched "panic:socket:2,hang:read:1,boot:3,snap:perm" in
  check_bool "round-trips" true (sched (Fault.schedule_to_string s) = s);
  (* default occurrence count is 1 *)
  check_bool "default k = 1" true (sched "panic:socket" = sched "panic:socket:1");
  check_bool "empty schedule" true (sched "" = []);
  (* malformed inputs are errors, not crashes *)
  List.iter
    (fun bad ->
      match Fault.parse_schedule bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "panic"; "panic:nosuchsyscall"; "frobnicate:socket"; "boot:x"; "panic:socket:0:0" ]

let test_schedule_of_seed () =
  let a = Fault.schedule_of_seed ~seed:7 ~intensity:12 in
  let b = Fault.schedule_of_seed ~seed:7 ~intensity:12 in
  check_bool "deterministic" true (a = b);
  check_int "intensity = length" 12 (List.length a);
  check_bool "transient only" true (Fault.transient_only a);
  check_bool "k in 1..3" true
    (Fault.max_transient_k a >= 1 && Fault.max_transient_k a <= 3);
  check_bool "different seeds differ" true
    (a <> Fault.schedule_of_seed ~seed:8 ~intensity:12)

(* --- runner-level recovery -------------------------------------------------- *)

let receiver_prog = "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)"
let sender_prog = "r0 = socket(3)"

let runner_with schedule =
  let fault = Fault.of_schedule schedule in
  Runner.create (Env.create ~fault (K.Config.v5_13 ()))

let test_try_execute_statuses () =
  let sender = Syzlang.parse sender_prog in
  let receiver = Syzlang.parse receiver_prog in
  (* transient panic: first attempt crashes, the fault wears off and the
     next attempt completes with the fault-free outcome *)
  let clean = Runner.execute (runner_with []) ~sender ~receiver in
  let r = runner_with (sched "panic:open:1") in
  (match Runner.try_execute r ~sender ~receiver with
  | Runner.Crashed info ->
    check_bool "panicked in open" true (info.Fault.panic_sysno = sysno "open")
  | Runner.Completed _ | Runner.Hung -> Alcotest.fail "expected a crash");
  (match Runner.try_execute r ~sender ~receiver with
  | Runner.Completed outcome ->
    check_bool "identical to fault-free outcome" true
      (Marshal.to_string outcome [] = Marshal.to_string clean [])
  | Runner.Crashed _ | Runner.Hung -> Alcotest.fail "fault should have worn off");
  (* hang fault *)
  let r = runner_with (sched "hang:read:1") in
  (match Runner.try_execute r ~sender ~receiver with
  | Runner.Hung -> ()
  | Runner.Completed _ | Runner.Crashed _ -> Alcotest.fail "expected a hang")

let test_mask_cache_bounded () =
  let env = Env.create (K.Config.v5_13 ()) in
  let r = Runner.create ~mask_cache_cap:2 env in
  let p1 = Syzlang.parse receiver_prog in
  let p2 = Syzlang.parse "r0 = read(\"/proc/net/sockstat\")" in
  let p3 = Syzlang.parse "r0 = gethostname()" in
  let mask p = ignore (Runner.nondet_mask r p : Kit_trace.Ast.t) in
  mask p1;
  mask p1;
  let hits, misses, live = Runner.mask_cache_stats r in
  check_int "one miss" 1 misses;
  check_int "one hit" 1 hits;
  check_int "one live entry" 1 live;
  mask p2;
  mask p3;
  let _, _, live = Runner.mask_cache_stats r in
  check_int "capped at 2 entries" 2 live;
  check_int "one eviction so far" 1 (Runner.mask_evictions r);
  (* p1 is the least recently used after p2/p3, so it was the entry
     evicted and misses again (evicting p2 in turn) *)
  mask p1;
  let hits, misses, live = Runner.mask_cache_stats r in
  check_int "eviction causes re-miss" 4 misses;
  check_int "hits unchanged" 1 hits;
  check_int "still capped" 2 live;
  check_int "two evictions" 2 (Runner.mask_evictions r);
  (* re-inserting p1 evicted p2, not the more recently used p3 — under
     FIFO insertion order p3 would be the one gone *)
  mask p3;
  let hits, _, _ = Runner.mask_cache_stats r in
  check_int "LRU kept the recently used entry" 2 hits

(* --- supervisor ------------------------------------------------------------- *)

let test_supervisor_recovers_transient () =
  let sender = Syzlang.parse sender_prog in
  let receiver = Syzlang.parse receiver_prog in
  let clean =
    match
      Supervisor.execute (Supervisor.create (K.Config.v5_13 ())) ~sender ~receiver
    with
    | Runner.Completed o -> o
    | Runner.Crashed _ | Runner.Hung -> Alcotest.fail "clean run crashed"
  in
  let sup =
    Supervisor.create
      ~fault:(Fault.of_schedule (sched "panic:open:2,hang:read:1,snap:1"))
      (K.Config.v5_13 ())
  in
  (match Supervisor.execute sup ~sender ~receiver with
  | Runner.Completed o ->
    check_bool "recovered outcome identical" true
      (Marshal.to_string o [] = Marshal.to_string clean [])
  | Runner.Crashed _ | Runner.Hung -> Alcotest.fail "supervisor should recover");
  check_bool "retried" true (sup.Supervisor.stats.Supervisor.retries >= 1);
  check_bool "rebooted after corruption" true
    (sup.Supervisor.stats.Supervisor.reboots >= 1);
  check_bool "recorded virtual backoff" true
    (sup.Supervisor.stats.Supervisor.backoff_ms > 0.0);
  check_int "nothing quarantined" 0 (List.length (Supervisor.quarantined sup))

let test_supervisor_quarantines_permanent () =
  let sender = Syzlang.parse sender_prog in
  let receiver = Syzlang.parse receiver_prog in
  let cfg = { Supervisor.default_config with Supervisor.max_retries = 3 } in
  let sup =
    Supervisor.create ~cfg
      ~fault:(Fault.of_schedule (sched "panic:open:perm"))
      (K.Config.v5_13 ())
  in
  (match Supervisor.execute sup ~sender ~receiver with
  | Runner.Crashed _ -> ()
  | Runner.Completed _ | Runner.Hung -> Alcotest.fail "expected permanent crash");
  match Supervisor.quarantined sup with
  | [ crash ] ->
    check_int "initial try + 3 retries" 4 crash.Supervisor.c_attempts;
    check_bool "reason is a panic" true
      (match crash.Supervisor.c_reason with
      | Supervisor.Panicked _ -> true
      | Supervisor.Hung_forever | Supervisor.Worker_lost _ -> false)
  | q -> Alcotest.failf "expected 1 quarantined crash, got %d" (List.length q)

let test_supervisor_quarantined_since () =
  (* Two permanent crashers: the delta accessor must slice the
     quarantine at any count, oldest first, and agree with the full
     list. *)
  let sender = Syzlang.parse sender_prog in
  let receiver = Syzlang.parse receiver_prog in
  let cfg = { Supervisor.default_config with Supervisor.max_retries = 1 } in
  let sup =
    Supervisor.create ~cfg
      ~fault:(Fault.of_schedule (sched "panic:open:perm,panic:socket:perm"))
      (K.Config.v5_13 ())
  in
  check (Alcotest.list Alcotest.pass) "empty delta on empty quarantine" []
    (Supervisor.quarantined_since sup 0);
  ignore (Supervisor.execute sup ~sender ~receiver : Runner.status);
  let q1 = Supervisor.quarantine_count sup in
  ignore (Supervisor.execute sup ~sender:receiver ~receiver:sender
           : Runner.status);
  let all = Supervisor.quarantined sup in
  check_int "since 0 = full list" (List.length all)
    (List.length (Supervisor.quarantined_since sup 0));
  let delta = Supervisor.quarantined_since sup q1 in
  check_int "delta covers the remainder"
    (List.length all - q1) (List.length delta);
  check_bool "delta is the oldest-first suffix" true
    (delta = List.filteri (fun i _ -> i >= q1) all);
  check (Alcotest.list Alcotest.pass) "past-the-end delta empty" []
    (Supervisor.quarantined_since sup (List.length all))

let test_supervisor_gives_up_on_dead_vm () =
  try
    ignore
      (Supervisor.create
         ~cfg:{ Supervisor.default_config with Supervisor.max_reboots = 2 }
         ~fault:(Fault.of_schedule (sched "boot:perm"))
         (K.Config.v5_13 ())
        : Supervisor.t);
    Alcotest.fail "a VM that never boots must raise Gave_up"
  with Supervisor.Gave_up _ -> ()

(* --- campaign-level robustness ---------------------------------------------- *)

let small_options =
  { Campaign.default_options with Campaign.corpus_size = 48 }

(* One fault-free baseline shared by the equivalence properties. *)
let baseline = lazy (Campaign.run small_options)

(* Reports + funnel + quarantine. Deliberately NOT executions: retries
   re-execute programs, and a restarted (chunked) campaign recomputes
   non-determinism masks its dead process had cached — more executions,
   same results. [No_sharing] so the fingerprint is structural: the
   baseline cache makes reports physically share receiver-solo traces,
   and how much sharing survives depends on cache history, which is
   exactly what this fingerprint must not observe. *)
let campaign_fingerprint (c : Campaign.t) =
  Marshal.to_string
    (c.Campaign.reports, c.Campaign.funnel, c.Campaign.quarantined)
    [ Marshal.No_sharing ]

(* The headline invariant: any transient fault schedule covered by the
   retry budget yields byte-identical reports + funnel. *)
let prop_transient_faults_preserve_results =
  QCheck.Test.make ~name:"transient fault schedules never change campaign results"
    ~count:6
    QCheck.(pair small_nat (int_bound 8))
    (fun (seed, intensity) ->
      let faults = Fault.schedule_of_seed ~seed ~intensity in
      let c =
        Campaign.run { small_options with Campaign.faults }
      in
      campaign_fingerprint c = campaign_fingerprint (Lazy.force baseline))

let test_permanent_crashers_quarantined_once () =
  let c =
    Campaign.run
      { small_options with
        Campaign.faults = sched "panic:read:perm";
        max_retries = 2 }
  in
  let q = c.Campaign.quarantined in
  check_bool "something quarantined" true (q <> []);
  (* exactly one crash-log entry per crashing representative: completed
     and quarantined cases partition the representatives, so a case
     quarantined twice (or silently dropped) breaks the identity *)
  let b = Lazy.force baseline in
  check_int "completed + quarantined = all representatives"
    b.Campaign.funnel.Filter.executed
    (c.Campaign.funnel.Filter.executed + List.length q);
  check_bool "every quarantine entry is a panic" true
    (List.for_all
       (fun (cr : Supervisor.crash) ->
         match cr.Supervisor.c_reason with
         | Supervisor.Panicked i -> i.Fault.panic_sysno = sysno "read"
         | Supervisor.Hung_forever | Supervisor.Worker_lost _ -> false)
       q)

(* --- checkpoint / resume ----------------------------------------------------- *)

let run_chunked ?(budget = 16) prepared =
  let rec go resume =
    match Campaign.execute_partial ?resume ~budget prepared with
    | `Done t -> t
    | `Paused ck -> go (Some ck)
  in
  go None

let prop_chunked_equals_straight =
  QCheck.Test.make ~name:"chunked checkpointed execution = straight-through"
    ~count:4
    QCheck.(int_range 4 60)
    (fun budget ->
      let prepared = Campaign.prepare small_options in
      let chunked = run_chunked ~budget prepared in
      campaign_fingerprint chunked
      = campaign_fingerprint (Lazy.force baseline))

let test_checkpoint_file_round_trip () =
  let prepared = Campaign.prepare small_options in
  match Campaign.execute_partial ~budget:10 prepared with
  | `Done _ -> Alcotest.fail "48-program campaign has more than 10 reps"
  | `Paused ck ->
    let path = Filename.temp_file "kit" ".ckpt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Campaign.save_checkpoint path ck;
        match Campaign.load_checkpoint path with
        | Error e ->
          Alcotest.failf "load_checkpoint: %s"
            (Kit_core.Checkpoint.error_to_string e)
        | Ok ck' ->
          check_bool "progress survives" true
            (Campaign.checkpoint_progress ck = Campaign.checkpoint_progress ck');
          let resumed =
            match
              Campaign.execute_partial ~resume:ck' ~budget:max_int prepared
            with
            | `Done t -> t
            | `Paused _ -> Alcotest.fail "unbounded budget must finish"
          in
          check_bool "resumed run matches baseline" true
            (campaign_fingerprint resumed
            = campaign_fingerprint (Lazy.force baseline)))

let test_checkpoint_rejects_garbage () =
  let path = Filename.temp_file "kit" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a checkpoint";
      close_out oc;
      match Campaign.load_checkpoint path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage must not load")

let test_resume_validates_options () =
  let prepared = Campaign.prepare small_options in
  match Campaign.execute_partial ~budget:10 prepared with
  | `Done _ -> Alcotest.fail "expected a pause"
  | `Paused ck -> (
    let other =
      Campaign.prepare { small_options with Campaign.corpus_size = 64 }
    in
    try
      ignore (Campaign.execute_partial ~resume:ck ~budget:max_int other);
      Alcotest.fail "resuming with a different corpus must be rejected"
    with Invalid_argument _ -> ())

(* --- distributed worker failure ---------------------------------------------- *)

(* The distributed server merges reports in test-case order while a
   single-node campaign emits them in cluster-representative order (and
   two clusters can share a representative pair), so compare reports as
   a multiset: the serialized reports, sorted bytewise. *)
let report_multiset reports =
  List.sort String.compare
    (List.map (fun (r : Kit_detect.Report.t) -> Marshal.to_string r []) reports)

let distrib_fingerprint (d : Distrib.t) =
  Marshal.to_string (report_multiset d.Distrib.reports, d.Distrib.funnel) []

let single_fingerprint (c : Campaign.t) =
  Marshal.to_string (report_multiset c.Campaign.reports, c.Campaign.funnel) []

(* Killing any single worker at any point of its shard never changes the
   merged funnel or reports: the orphaned queue is resharded. *)
let prop_worker_death_is_transparent =
  QCheck.Test.make ~name:"killing any single worker never changes merged results"
    ~count:8
    QCheck.(pair (int_bound 2) (int_bound 20))
    (fun (dead_worker, after) ->
      let b = Lazy.force baseline in
      let d =
        Distrib.execute
          ~failures:[ { Distrib.dead_worker; after } ]
          small_options b.Campaign.corpus b.Campaign.generation ~workers:3
      in
      d.Distrib.resharded >= 0
      && distrib_fingerprint d = single_fingerprint b)

let test_all_workers_dead_fails () =
  let b = Lazy.force baseline in
  try
    ignore
      (Distrib.execute
         ~failures:
           [ { Distrib.dead_worker = 0; after = 0 };
             { Distrib.dead_worker = 1; after = 0 } ]
         small_options b.Campaign.corpus b.Campaign.generation ~workers:2
        : Distrib.t);
    Alcotest.fail "no survivors must be an error"
  with Distrib.All_workers_dead unfinished ->
    (* the typed error carries the whole orphaned queue *)
    Alcotest.(check int)
      "unfinished queue"
      (List.length b.Campaign.generation.Kit_gen.Cluster.reps)
      (List.length unfinished)

let suite =
  [
    Alcotest.test_case "transient fault wears off" `Quick
      test_transient_wears_off;
    Alcotest.test_case "permanent fault keeps firing" `Quick
      test_permanent_keeps_firing;
    Alcotest.test_case "fuel deadline" `Quick test_fuel_deadline;
    Alcotest.test_case "hang fault burns fuel" `Quick test_hang_burns_fuel;
    Alcotest.test_case "boot and restore faults" `Quick
      test_boot_and_restore_faults;
    Alcotest.test_case "schedule parse/print round-trip" `Quick
      test_schedule_round_trip;
    Alcotest.test_case "seeded schedules are deterministic" `Quick
      test_schedule_of_seed;
    Alcotest.test_case "try_execute reports crash/hang/completion" `Quick
      test_try_execute_statuses;
    Alcotest.test_case "mask cache is bounded with LRU eviction" `Quick
      test_mask_cache_bounded;
    Alcotest.test_case "supervisor recovers from transient faults" `Quick
      test_supervisor_recovers_transient;
    Alcotest.test_case "supervisor quarantines permanent crashers" `Quick
      test_supervisor_quarantines_permanent;
    Alcotest.test_case "supervisor quarantine delta accessor" `Quick
      test_supervisor_quarantined_since;
    Alcotest.test_case "supervisor gives up on a dead VM" `Quick
      test_supervisor_gives_up_on_dead_vm;
    QCheck_alcotest.to_alcotest prop_transient_faults_preserve_results;
    Alcotest.test_case "permanent crashers quarantined exactly once" `Quick
      test_permanent_crashers_quarantined_once;
    QCheck_alcotest.to_alcotest prop_chunked_equals_straight;
    Alcotest.test_case "checkpoint file round-trip + resume" `Quick
      test_checkpoint_file_round_trip;
    Alcotest.test_case "checkpoint loader rejects garbage" `Quick
      test_checkpoint_rejects_garbage;
    Alcotest.test_case "resume validates the campaign fingerprint" `Quick
      test_resume_validates_options;
    QCheck_alcotest.to_alcotest prop_worker_death_is_transparent;
    Alcotest.test_case "all workers dead is an error" `Quick
      test_all_workers_dead_fails;
  ]
