(* The deterministic interleaving scheduler: sequential-schedule
   equivalence with the plain runner, schedule determinism across
   domains and processes, POR soundness, and the end-to-end guarantee
   that schedule search finds every seeded race-window bug no
   sequential run can expose. *)

module K = Kit_kernel
module Sched = Kit_kernel.Sched
module Bugs = Kit_kernel.Bugs
module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang
module Corpus = Kit_abi.Corpus
module Consts = Kit_abi.Consts
module Spec = Kit_spec.Spec
module Testcase = Kit_gen.Testcase
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Ast = Kit_trace.Ast
module Compare = Kit_trace.Compare
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Campaign = Kit_core.Campaign
module Oracle = Kit_core.Oracle
module Pool = Kit_serve.Pool

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let p = Syzlang.parse

(* A kernel carrying only the seeded race-window bugs: the cleanest
   demonstration that they are sequentially invisible — every
   sequential execution is silent, only schedule search speaks. *)
let race_only_config () =
  K.Config.make ~bugs:(Bugs.of_list Bugs.race_bugs) "5.13-rw"

(* Hand-built reproducer pairs, one per seeded race-window bug. *)
let rw1_pair =
  ( p "r0 = socket(1)\nalloc_protomem(r0, 256)",
    p "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)" )

let rw2_pair =
  ( p "r0 = socket(1)\nr1 = get_cookie(r0)",
    p "r0 = socket(1)\nr1 = get_cookie(r0)" )

let rw3_pair =
  ( p "r0 = open(\"/proc/uptime\")\nr1 = read(r0)",
    p "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)" )

let rw_pairs =
  [ (Bugs.RW1_protomem_inflight, rw1_pair);
    (Bugs.RW2_cookie_window, rw2_pair);
    (Bugs.RW3_seqfile_busy, rw3_pair) ]

let search_budget = 64

(* --- the decision function ------------------------------------------------ *)

let test_mix_pure () =
  for seed = 0 to 8 do
    for step = 0 to 32 do
      let a = Sched.mix ~seed ~step in
      check_bool "non-negative" true (a >= 0);
      check_int "stable across calls" a (Sched.mix ~seed ~step)
    done
  done

let test_choose_sequential () =
  check_int "lowest runnable" 0
    (Sched.choose Sched.Sequential ~step:5 ~runnable:[ 0; 1 ]);
  check_int "singleton" 1 (Sched.choose Sched.Sequential ~step:0 ~runnable:[ 1 ]);
  (* seeded choice is a member of the runnable set *)
  for seed = 0 to 5 do
    for step = 0 to 10 do
      let c = Sched.choose (Sched.Seeded seed) ~step ~runnable:[ 0; 1 ] in
      check_bool "member" true (c = 0 || c = 1)
    done
  done

let test_simulate_shape () =
  let counts = [| 3; 2 |] in
  check
    Alcotest.(list (pair int int))
    "sequential merge is sender-then-receiver"
    [ (0, 0); (0, 1); (0, 2); (1, 0); (1, 1) ]
    (Sched.simulate Sched.Sequential counts);
  (* every seeded merge is a per-task-order-preserving permutation *)
  for seed = 0 to 15 do
    let merged = Sched.simulate (Sched.Seeded seed) counts in
    check_int "length" 5 (List.length merged);
    let last = [| -1; -1 |] in
    List.iter
      (fun (task, i) ->
        check_bool "task id valid" true (task = 0 || task = 1);
        check_bool "per-task order preserved" true (i = last.(task) + 1);
        last.(task) <- i)
      merged;
    check
      Alcotest.(list (pair int int))
      "deterministic" merged
      (Sched.simulate (Sched.Seeded seed) counts)
  done

(* --- sequential schedule ≡ plain runner ----------------------------------- *)

let test_sequential_equals_run_pair () =
  List.iter
    (fun cfg ->
      let env = Env.create cfg in
      let runner = Runner.create env in
      List.iter
        (fun (_, (sender, receiver)) ->
          let base = env.Env.base0 in
          let plain = Runner.run_pair runner ~base sender receiver in
          let inter =
            Runner.run_interleaved runner ~schedule:Sched.Sequential ~base
              sender receiver
          in
          check_bool "byte-identical trace" true (Ast.equal plain inter))
        rw_pairs)
    [ K.Config.v5_13 (); K.Config.v5_13_rw (); race_only_config () ]

(* --- sequentially invisible, concurrently exposed ------------------------- *)

let test_race_bugs_sequentially_invisible () =
  let runner = Runner.create (Env.create (race_only_config ())) in
  List.iter
    (fun (bug, (sender, receiver)) ->
      let outcome = Runner.execute runner ~sender ~receiver in
      check_int
        (Printf.sprintf "%s silent sequentially" (Bugs.to_string bug))
        0
        (List.length outcome.Runner.masked_diffs))
    rw_pairs

let classify testcase ~sender ~receiver ~trace_b c =
  Filter.classify_concurrent Spec.default ~testcase ~sender ~receiver ~trace_b c

let test_search_finds_each_race_bug () =
  let runner = Runner.create (Env.create (race_only_config ())) in
  List.iter
    (fun (bug, (sender, receiver)) ->
      let outcome = Runner.execute runner ~sender ~receiver in
      let search =
        Runner.search_schedules runner ~schedules:search_budget ~sender
          ~receiver outcome
      in
      let name = Bugs.to_string bug in
      check_int (name ^ ": candidates") search_budget search.Runner.sr_schedules;
      check_int (name ^ ": executed + pruned = candidates") search_budget
        (search.Runner.sr_executed + search.Runner.sr_pruned);
      check_bool (name ^ ": executed bounded by classes") true
        (search.Runner.sr_executed <= search.Runner.sr_classes);
      check_bool (name ^ ": divergence found") true
        (search.Runner.sr_findings <> []);
      let tc = { Testcase.sender = 0; receiver = 1; flow = None } in
      let reports =
        List.filter_map
          (classify tc ~sender ~receiver ~trace_b:outcome.Runner.trace_b)
          search.Runner.sr_findings
      in
      check_bool (name ^ ": report survives the resource filter") true
        (reports <> []);
      check_bool (name ^ ": attributed to the seeded bug") true
        (List.exists
           (fun r ->
             match Oracle.attribute_concurrent r with
             | Oracle.Bug b -> Bugs.equal b bug
             | Oracle.False_positive _ | Oracle.Under_investigation -> false)
           reports))
    rw_pairs

let test_findings_deduplicated () =
  let runner = Runner.create (Env.create (race_only_config ())) in
  List.iter
    (fun (_, (sender, receiver)) ->
      let outcome = Runner.execute runner ~sender ~receiver in
      let search =
        Runner.search_schedules runner ~schedules:search_budget ~sender
          ~receiver outcome
      in
      let fps =
        List.map (fun c -> c.Runner.cc_fingerprint) search.Runner.sr_findings
      in
      check_int "fingerprints unique" (List.length fps)
        (List.length (List.sort_uniq compare fps));
      List.iter
        (fun c ->
          check_bool "non-negative fingerprint" true (c.Runner.cc_fingerprint >= 0);
          check_bool "seeds ascending" true
            (c.Runner.cc_seeds = List.sort compare c.Runner.cc_seeds);
          check_int "fingerprint matches diffs" c.Runner.cc_fingerprint
            (Compare.fingerprint_diffs c.Runner.cc_diffs))
        search.Runner.sr_findings)
    rw_pairs

(* --- qcheck: random programs from the corpus generator -------------------- *)

let gen_program =
  QCheck.Gen.(
    map
      (fun (seed, idx) ->
        let corpus = Corpus.generate ~seed ~size:8 in
        List.nth corpus (idx mod List.length corpus))
      (pair small_nat small_nat))

let arbitrary_program = QCheck.make ~print:Syzlang.print gen_program
let arbitrary_pair = QCheck.pair arbitrary_program arbitrary_program

let rw_exec =
  lazy
    (let env = Env.create (K.Config.v5_13_rw ()) in
     (env, Runner.create env))

let prop_sequential_schedule_equals_run_pair =
  QCheck.Test.make
    ~name:"interleaved Sequential schedule = run_pair, byte-identical"
    ~count:50 arbitrary_pair (fun (sender, receiver) ->
      let env, runner = Lazy.force rw_exec in
      let base = env.Env.base0 in
      let plain = Runner.run_pair runner ~base sender receiver in
      let inter =
        Runner.run_interleaved runner ~schedule:Sched.Sequential ~base sender
          receiver
      in
      Ast.equal plain inter)

let search_fp (s : Runner.search) =
  ( s.Runner.sr_schedules, s.Runner.sr_classes, s.Runner.sr_executed,
    s.Runner.sr_pruned, s.Runner.sr_skipped,
    List.map
      (fun c -> (c.Runner.cc_seeds, c.Runner.cc_fingerprint, c.Runner.cc_interfered))
      s.Runner.sr_findings )

let prop_search_deterministic_across_runners =
  (* Two independent runner instances — fresh caches, fresh kernels —
     agree decision-for-decision: seeds are portable identifiers. *)
  QCheck.Test.make ~name:"schedule search deterministic across runners"
    ~count:20 arbitrary_pair (fun (sender, receiver) ->
      let search_with () =
        let runner = Runner.create (Env.create (K.Config.v5_13_rw ())) in
        let outcome = Runner.execute runner ~sender ~receiver in
        Runner.search_schedules runner ~schedules:12 ~sender ~receiver outcome
      in
      search_fp (search_with ()) = search_fp (search_with ()))

let prop_por_soundness =
  (* Every member of a POR class executes identically to the class
     representative, and members of the sequential class reproduce the
     plain sequential run — pruning never hides a distinct behaviour. *)
  QCheck.Test.make ~name:"POR pruning is sound: class members coincide"
    ~count:25 arbitrary_pair (fun (sender, receiver) ->
      let env, runner = Lazy.force rw_exec in
      let base = env.Env.base0 in
      let classes =
        Runner.schedule_classes runner ~schedules:10 ~sender ~receiver
      in
      let trace_of seed =
        Runner.run_interleaved runner ~schedule:(Sched.Seeded seed) ~base
          sender receiver
      in
      let sequential = Runner.run_pair runner ~base sender receiver in
      List.for_all
        (fun cls ->
          match cls.Runner.cls_seeds with
          | [] -> false
          | rep :: rest ->
            let rep_trace = trace_of rep in
            List.for_all (fun s -> Ast.equal rep_trace (trace_of s)) rest
            && (not cls.Runner.cls_sequential
               || Ast.equal rep_trace sequential))
        classes)

(* --- campaign integration ------------------------------------------------- *)

let fp x = Digest.string (Marshal.to_string x [ Marshal.No_sharing ])

let funnel_fp (f : Filter.funnel) =
  ( f.Filter.executed, f.Filter.initial, f.Filter.after_nondet,
    f.Filter.after_resource )

let concurrent_fp (c : Campaign.t) =
  List.map
    (fun (r : Report.t) ->
      ( fp r.Report.testcase, r.Report.interfered, r.Report.origin,
        fp r.Report.diffs ))
    c.Campaign.concurrent

let sched_fp (s : Campaign.sched_stats) =
  ( s.Campaign.sched_candidates, s.Campaign.sched_classes,
    s.Campaign.sched_executed, s.Campaign.sched_pruned,
    s.Campaign.sched_skipped )

let test_campaign_sequential_results_unchanged () =
  (* Turning schedule search on must not perturb the sequential
     pipeline: reports, funnel and quarantine are byte-identical with
     and without it, for multiple seeds. *)
  List.iter
    (fun seed ->
      let base_opts =
        { Campaign.default_options with
          Campaign.corpus_size = 48;
          seed;
          diagnose = false }
      in
      let plain = Campaign.run base_opts in
      let searched =
        Campaign.run { base_opts with Campaign.schedules = 6 }
      in
      check Alcotest.string "reports identical" (fp plain.Campaign.reports)
        (fp searched.Campaign.reports);
      check Alcotest.string "funnel identical"
        (fp (funnel_fp plain.Campaign.funnel))
        (fp (funnel_fp searched.Campaign.funnel));
      check Alcotest.string "quarantine identical"
        (fp plain.Campaign.quarantined)
        (fp searched.Campaign.quarantined);
      check
        Alcotest.(list int)
        "sequential-only campaign has zero sched stats"
        [ 0; 0; 0; 0; 0 ]
        (let a, b, c, d, e = sched_fp plain.Campaign.sched in
         [ a; b; c; d; e ]);
      check_int "no concurrent reports without search" 0
        (List.length plain.Campaign.concurrent);
      check_bool "searched campaign examined schedules" true
        ((fun (a, _, _, _, _) -> a) (sched_fp searched.Campaign.sched) > 0))
    [ 7; 11 ]

let rw_campaign_options =
  { Campaign.default_options with
    Campaign.config = K.Config.v5_13_rw ();
    corpus_size = 48;
    seed = 7;
    diagnose = false;
    schedules = 8 }

let rw_campaign = lazy (Campaign.run rw_campaign_options)

let test_campaign_deterministic_across_domains () =
  (* The same campaign under --domains 1..4: concurrent findings and
     schedule-search totals are structurally identical — seeds name the
     same interleavings wherever the case executes. *)
  let reference = Lazy.force rw_campaign in
  List.iter
    (fun domains ->
      let c =
        Campaign.run { rw_campaign_options with Campaign.domains }
      in
      check Alcotest.string
        (Printf.sprintf "concurrent reports equal at domains=%d" domains)
        (fp (concurrent_fp reference))
        (fp (concurrent_fp c));
      check Alcotest.string
        (Printf.sprintf "sched stats equal at domains=%d" domains)
        (fp (sched_fp reference.Campaign.sched))
        (fp (sched_fp c.Campaign.sched)))
    [ 2; 3; 4 ]

let test_campaign_deterministic_across_procs () =
  (* The pool path (separate worker processes) folds the same
     schedule-search results as the in-process campaign. *)
  let reference = Lazy.force rw_campaign in
  let outcome =
    Pool.execute
      { Pool.default_config with Pool.procs = 2 }
      rw_campaign_options reference.Campaign.corpus
      reference.Campaign.generation
  in
  let concurrent =
    List.concat_map (fun r -> r.Campaign.cr_concurrent) outcome.Pool.results
  in
  let sched = Campaign.sched_create () in
  List.iter (fun r -> Campaign.add_sched sched r.Campaign.cr_sched)
    outcome.Pool.results;
  let fps_of list =
    List.sort compare
      (List.map
         (fun (r : Report.t) -> (fp r.Report.testcase, r.Report.origin))
         list)
  in
  check Alcotest.string "concurrent findings equal under procs=2"
    (fp (fps_of reference.Campaign.concurrent))
    (fp (fps_of concurrent));
  let a, b, c, d, e = sched_fp sched in
  let a', b', c', d', e' = sched_fp reference.Campaign.sched in
  check
    Alcotest.(list int)
    "sched totals equal under procs=2"
    [ a'; b'; c'; d'; e' ] [ a; b; c; d; e ]

let test_campaign_finds_all_race_bugs () =
  (* The acceptance gate, in-process: a campaign over the curated
     reproducer pairs with a fixed schedule budget witnesses every
     seeded race-window bug, with a non-trivial POR prune ratio. *)
  let opts =
    { Campaign.default_options with
      Campaign.config = K.Config.v5_13_rw ();
      corpus_size = 96;
      seed = 3;
      diagnose = false;
      schedules = 128 }
  in
  let c = Campaign.run opts in
  let found = Oracle.race_bugs_found c.Campaign.concurrent in
  List.iter
    (fun bug ->
      check_bool
        (Printf.sprintf "campaign witnesses %s" (Bugs.to_string bug))
        true
        (List.exists (Bugs.equal bug) found))
    Bugs.race_bugs;
  check_bool "POR pruned schedules" true
    (c.Campaign.sched.Campaign.sched_pruned > 0);
  check_bool "search ran on completed cases" true
    (c.Campaign.sched.Campaign.sched_candidates > 0)

let suite =
  [
    Alcotest.test_case "mix is pure and non-negative" `Quick test_mix_pure;
    Alcotest.test_case "choose: Sequential picks lowest" `Quick
      test_choose_sequential;
    Alcotest.test_case "simulate: order-preserving merge" `Quick
      test_simulate_shape;
    Alcotest.test_case "Sequential schedule = run_pair on reproducers" `Quick
      test_sequential_equals_run_pair;
    Alcotest.test_case "race-window bugs invisible sequentially" `Quick
      test_race_bugs_sequentially_invisible;
    Alcotest.test_case "search finds each seeded race-window bug" `Quick
      test_search_finds_each_race_bug;
    Alcotest.test_case "findings deduplicated by fingerprint" `Quick
      test_findings_deduplicated;
    QCheck_alcotest.to_alcotest prop_sequential_schedule_equals_run_pair;
    QCheck_alcotest.to_alcotest prop_search_deterministic_across_runners;
    QCheck_alcotest.to_alcotest prop_por_soundness;
    Alcotest.test_case "schedule search leaves sequential results intact"
      `Quick test_campaign_sequential_results_unchanged;
    Alcotest.test_case "campaign deterministic across domains" `Quick
      test_campaign_deterministic_across_domains;
    Alcotest.test_case "campaign deterministic across procs" `Quick
      test_campaign_deterministic_across_procs;
    Alcotest.test_case "campaign finds all race-window bugs" `Slow
      test_campaign_finds_all_race_bugs;
  ]
