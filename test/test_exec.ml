(* Tests for the execution engine: the snapshot environment, two-phase
   execution, non-determinism masking and the mask cache. *)

module K = Kit_kernel
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Syzlang = Kit_abi.Syzlang
module Ast = Kit_trace.Ast

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let p = Syzlang.parse

let test_env_reset_restores_state () =
  let env = Env.create (K.Config.v5_13 ()) in
  Env.reset env ~base:env.Env.base0;
  let _ =
    K.Interp.run env.Env.kernel ~pid:env.Env.sender_pid (p "r0 = socket(3)")
  in
  Env.reset env ~base:env.Env.base0;
  let results =
    K.Interp.run env.Env.kernel ~pid:env.Env.receiver_pid
      (p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  match List.rev results with
  | last :: _ ->
    (match last.K.Interp.ret.K.Sysret.out with
    | K.Sysret.P_str content ->
      check Alcotest.string "rolled back" "Type Device      Function" content
    | _ -> Alcotest.fail "expected content")
  | [] -> Alcotest.fail "no results"

let test_env_base_applied () =
  let env = Env.create (K.Config.v5_13 ()) in
  Env.reset env ~base:555_000;
  check_int "clock base" 555_000 (K.State.now env.Env.kernel)

let test_interference_detected () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = socket(3)")
      ~receiver:(p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  check_bool "raw divergence" true (outcome.Runner.raw_diffs <> []);
  check_bool "masked divergence" true (outcome.Runner.masked_diffs <> []);
  check (Alcotest.list Alcotest.int) "interfered call" [ 1 ]
    outcome.Runner.interfered

let test_no_interference_on_fixed_kernel () =
  let env = Env.create (K.Config.fixed ()) in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = socket(3)")
      ~receiver:(p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  check_bool "no divergence at all" true (outcome.Runner.raw_diffs = [])

let test_timing_masked () =
  (* clock_gettime diverges raw (the sender consumed time) but must be
     masked as non-deterministic. *)
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = getpid()")
      ~receiver:(p "r0 = clock_gettime()")
  in
  check_bool "raw divergence from timing" true (outcome.Runner.raw_diffs <> []);
  check_bool "masked away" true (outcome.Runner.masked_diffs = [])

let test_timing_and_leak_coexist () =
  (* Genuine interference survives even when the receiver also reads the
     clock. *)
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = socket(3)")
      ~receiver:
        (p "r0 = clock_gettime()\nr1 = open(\"/proc/net/ptype\")\nr2 = read(r1)")
  in
  check (Alcotest.list Alcotest.int) "only the read is interfered" [ 2 ]
    outcome.Runner.interfered

let test_mask_cached_per_receiver () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create ~reruns:3 ~baseline_cache:false env in
  let receiver = p "r0 = clock_gettime()" in
  let sender = p "r0 = getpid()" in
  let _ = Runner.execute runner ~sender ~receiver in
  let execs_after_first = (Runner.executions runner) in
  let _ = Runner.execute runner ~sender ~receiver in
  let execs_after_second = (Runner.executions runner) in
  (* Second execution reuses the cached mask: exactly two runs (A and B),
     no re-profiling of non-determinism. *)
  check_int "mask cache hit" (execs_after_first + 2) execs_after_second

let test_baseline_cached_per_receiver () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create ~reruns:3 env in
  let receiver = p "r0 = clock_gettime()" in
  let sender = p "r0 = getpid()" in
  let o1 = Runner.execute runner ~sender ~receiver in
  let execs_after_first = Runner.executions runner in
  let o2 = Runner.execute runner ~sender ~receiver in
  let execs_after_second = Runner.executions runner in
  (* Second execution reuses both the cached baseline trace (execution B)
     and the cached mask: exactly one run (A). *)
  check_int "baseline + mask cache hit" (execs_after_first + 1)
    execs_after_second;
  let bhits, bmisses, blive = Runner.baseline_cache_stats runner in
  check_int "baseline misses" 1 bmisses;
  check_bool "baseline hits" true (bhits >= 1);
  check_int "baseline live" 1 blive;
  check_bool "outcomes agree" true
    (o1.Runner.interfered = o2.Runner.interfered
    && o1.Runner.masked_diffs = o2.Runner.masked_diffs)

let test_no_divergence_skips_masking () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create ~reruns:3 env in
  let _ =
    Runner.execute runner ~sender:(p "r0 = getpid()")
      ~receiver:(p "r0 = getpid()")
  in
  check_int "only A and B executed" 2 (Runner.executions runner)

let test_nondet_mask_structure () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let mask =
    Runner.nondet_mask runner
      (p "r0 = clock_gettime()\nr1 = getpid()")
  in
  check_bool "some nodes nondet" true (Ast.count_nondet mask > 0);
  match mask.Ast.children with
  | [ clock_call; getpid_call ] ->
    check_bool "clock marked" true (Ast.count_nondet clock_call > 0);
    check_int "getpid fully det" 0 (Ast.count_nondet getpid_call)
  | _ -> Alcotest.fail "shape"

let test_test_interference_primitive () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let interfered =
    Runner.test_interference runner ~sender:(p "r0 = socket(3)")
      ~receiver:(p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  check (Alcotest.list Alcotest.int) "indices" [ 1 ] interfered;
  let none =
    Runner.test_interference runner ~sender:(p "r0 = getpid()")
      ~receiver:(p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  check (Alcotest.list Alcotest.int) "benign sender" [] none

let test_sender_host_env () =
  let env =
    Env.create ~sender_host:true (K.Config.for_known_bug K.Bugs.KE_iouring_mount)
  in
  let runner = Runner.create env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = creat(\"/tmp/kit0\")")
      ~receiver:(p "r0 = io_uring_read(\"/tmp/kit0\")")
  in
  check_bool "host escape observed" true (outcome.Runner.masked_diffs <> [])

let test_outcome_deterministic () =
  let make () =
    let env = Env.create (K.Config.v5_13 ()) in
    let runner = Runner.create env in
    Runner.execute runner ~sender:(p "r0 = socket(3)")
      ~receiver:(p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")
  in
  let a = make () in
  let b = make () in
  check_bool "identical traces across environments" true
    (Ast.equal a.Runner.trace_a b.Runner.trace_a
    && Ast.equal a.Runner.trace_b b.Runner.trace_b)

let suite =
  [
    Alcotest.test_case "env: reset restores state" `Quick
      test_env_reset_restores_state;
    Alcotest.test_case "env: clock base applied" `Quick test_env_base_applied;
    Alcotest.test_case "runner: interference detected" `Quick
      test_interference_detected;
    Alcotest.test_case "runner: silent on fixed kernel" `Quick
      test_no_interference_on_fixed_kernel;
    Alcotest.test_case "runner: timing divergence masked" `Quick
      test_timing_masked;
    Alcotest.test_case "runner: leak survives next to timing" `Quick
      test_timing_and_leak_coexist;
    Alcotest.test_case "runner: mask cached per receiver" `Quick
      test_mask_cached_per_receiver;
    Alcotest.test_case "runner: baseline cached per receiver" `Quick
      test_baseline_cached_per_receiver;
    Alcotest.test_case "runner: no divergence skips masking" `Quick
      test_no_divergence_skips_masking;
    Alcotest.test_case "runner: mask structure" `Quick test_nondet_mask_structure;
    Alcotest.test_case "runner: TestFuncI primitive" `Quick
      test_test_interference_primitive;
    Alcotest.test_case "runner: host sender environment (bug E)" `Quick
      test_sender_host_env;
    Alcotest.test_case "runner: outcome deterministic" `Quick
      test_outcome_deterministic;
  ]
