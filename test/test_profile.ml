(* Tests for the profiling library: simulated call-stack reconstruction,
   access deduplication, the access map, and profile collection. *)

module K = Kit_kernel
module Stackrec = Kit_profile.Stackrec
module Collect = Kit_profile.Collect
module Accessmap = Kit_profile.Accessmap
module Syzlang = Kit_abi.Syzlang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let mem ?(addr = 1) ?(width = 8) ?(rw = K.Kevent.Read) ?(ip = 7) () =
  K.Kevent.Mem { K.Kevent.addr; width; rw; ip }

(* --- Stackrec ------------------------------------------------------------- *)

let test_replay_stack_attribution () =
  let events =
    [ K.Kevent.Sys_enter 0; K.Kevent.Fn_enter 10; K.Kevent.Fn_enter 20;
      mem (); K.Kevent.Fn_exit 20; K.Kevent.Fn_exit 10; K.Kevent.Sys_exit 0 ]
  in
  match Stackrec.replay events with
  | [ a ] ->
    check (Alcotest.list Alcotest.int) "stack innermost first" [ 20; 10 ]
      a.Stackrec.stack;
    check_int "syscall index" 0 a.Stackrec.sys_index
  | accs -> Alcotest.failf "expected one access, got %d" (List.length accs)

let test_replay_pops_frames () =
  let events =
    [ K.Kevent.Sys_enter 0; K.Kevent.Fn_enter 10; K.Kevent.Fn_exit 10;
      K.Kevent.Fn_enter 11; mem (); K.Kevent.Fn_exit 11 ]
  in
  match Stackrec.replay events with
  | [ a ] ->
    check (Alcotest.list Alcotest.int) "previous frame popped" [ 11 ]
      a.Stackrec.stack
  | _ -> Alcotest.fail "expected one access"

let test_replay_syscall_indices () =
  let events =
    [ K.Kevent.Sys_enter 0; mem (); K.Kevent.Sys_exit 0; K.Kevent.Sys_enter 1;
      mem (); K.Kevent.Sys_exit 1 ]
  in
  match Stackrec.replay events with
  | [ a; b ] ->
    check_int "first" 0 a.Stackrec.sys_index;
    check_int "second" 1 b.Stackrec.sys_index
  | _ -> Alcotest.fail "expected two accesses"

let test_dedup () =
  let events =
    [ K.Kevent.Sys_enter 0; K.Kevent.Fn_enter 10; mem (); mem ();
      mem ~rw:K.Kevent.Write (); K.Kevent.Fn_exit 10 ]
  in
  let accs = Stackrec.dedup (Stackrec.replay events) in
  check_int "read+write kept once each" 2 (List.length accs)

let test_dedup_keeps_distinct_stacks () =
  let events =
    [ K.Kevent.Sys_enter 0; K.Kevent.Fn_enter 10; mem (); K.Kevent.Fn_exit 10;
      K.Kevent.Fn_enter 11; mem (); K.Kevent.Fn_exit 11 ]
  in
  let accs = Stackrec.dedup (Stackrec.replay events) in
  check_int "distinct stacks kept" 2 (List.length accs)

(* --- Accessmap ------------------------------------------------------------- *)

let access ~rw ~addr ~ip ~sys_index =
  { Stackrec.addr; width = 8; rw; ip; stack = [ ip ]; stack_hash = ip;
    sys_index }

let test_accessmap_overlaps () =
  let map = Accessmap.create () in
  Accessmap.add map ~prog:0
    [ access ~rw:K.Kevent.Write ~addr:100 ~ip:1 ~sys_index:0 ];
  Accessmap.add map ~prog:1
    [ access ~rw:K.Kevent.Read ~addr:100 ~ip:2 ~sys_index:0;
      access ~rw:K.Kevent.Read ~addr:200 ~ip:3 ~sys_index:1 ];
  let overlaps = ref 0 in
  Accessmap.iter_overlaps map (fun ~addr ~writers ~readers ->
      incr overlaps;
      check_int "overlap addr" 100 addr;
      check_int "one writer" 1 (List.length writers);
      check_int "one reader" 1 (List.length readers));
  check_int "exactly one overlapping address" 1 !overlaps

let test_accessmap_stats () =
  let map = Accessmap.create () in
  Accessmap.add map ~prog:0
    [ access ~rw:K.Kevent.Write ~addr:100 ~ip:1 ~sys_index:0;
      access ~rw:K.Kevent.Read ~addr:100 ~ip:1 ~sys_index:0 ];
  let s = Accessmap.stats map in
  check_int "write addrs" 1 s.Accessmap.write_addrs;
  check_int "write count" 1 s.Accessmap.write_entries;
  check_int "read addrs" 1 s.Accessmap.read_addrs;
  check_int "read count" 1 s.Accessmap.read_entries

let test_accessmap_one_sided_addresses () =
  (* Addresses touched by only one side never appear as overlaps. *)
  let map = Accessmap.create () in
  Accessmap.add map ~prog:0
    [ access ~rw:K.Kevent.Write ~addr:100 ~ip:1 ~sys_index:0 ];
  Accessmap.add map ~prog:1
    [ access ~rw:K.Kevent.Read ~addr:200 ~ip:2 ~sys_index:0 ];
  let visited = ref [] in
  Accessmap.iter_overlaps map (fun ~addr ~writers:_ ~readers:_ ->
      visited := addr :: !visited);
  check (Alcotest.list Alcotest.int) "writer-only and reader-only skipped" []
    !visited;
  let s = Accessmap.stats map in
  check_int "writer-only address still counted" 1 s.Accessmap.write_addrs;
  check_int "reader-only address still counted" 1 s.Accessmap.read_addrs

let test_accessmap_empty_stats () =
  let s = Accessmap.stats (Accessmap.create ()) in
  check_int "no write addrs" 0 s.Accessmap.write_addrs;
  check_int "no write entries" 0 s.Accessmap.write_entries;
  check_int "no read addrs" 0 s.Accessmap.read_addrs;
  check_int "no read entries" 0 s.Accessmap.read_entries

(* --- Collect ----------------------------------------------------------------- *)

let test_collect_profile_nonempty () =
  let profiler = Collect.create (K.Config.v5_13 ()) in
  let profile =
    Collect.profile profiler ~role:Collect.Receiver
      (Syzlang.parse "r0 = socket(3)")
  in
  check_bool "accesses recorded" true (List.length profile.Collect.accesses > 0);
  check_int "results" 1 (List.length profile.Collect.results)

let test_collect_deterministic () =
  let profiler = Collect.create (K.Config.v5_13 ()) in
  let prog = Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  let p1 = Collect.profile profiler ~role:Collect.Receiver prog in
  let p2 = Collect.profile profiler ~role:Collect.Receiver prog in
  let key (a : Stackrec.access) = (a.Stackrec.addr, a.Stackrec.rw, a.Stackrec.ip) in
  check_bool "identical footprints (snapshot reload)" true
    (List.equal
       (fun a b -> key a = key b)
       p1.Collect.accesses p2.Collect.accesses)

let test_collect_roles_share_addresses () =
  let profiler = Collect.create (K.Config.v5_13 ()) in
  let prog = Syzlang.parse "r0 = socket(3)" in
  let ps = Collect.profile profiler ~role:Collect.Sender prog in
  let pr = Collect.profile profiler ~role:Collect.Receiver prog in
  let addrs p =
    List.sort_uniq Int.compare
      (List.map (fun (a : Stackrec.access) -> a.Stackrec.addr) p.Collect.accesses)
  in
  check (Alcotest.list Alcotest.int) "same shared variables" (addrs ps)
    (addrs pr)

let test_collect_untraced_run () =
  let profiler = Collect.create (K.Config.v5_13 ()) in
  let results =
    Collect.run_untraced profiler ~role:Collect.Receiver
      (Syzlang.parse "r0 = getpid()")
  in
  check_int "executes" 1 (List.length results)

let test_collect_jump_label_blindness () =
  (* The flow-label static key must be invisible when CONFIG_JUMP_LABEL
     is enabled (paper, section 6.1). *)
  let footprint config =
    let profiler = Collect.create config in
    let p =
      Collect.profile profiler ~role:Collect.Receiver
        (Syzlang.parse "r0 = socket(9)\nr1 = send(r0, 8, 2)")
    in
    List.length p.Collect.accesses
  in
  let visible = footprint (K.Config.v5_13 ~jump_label:false ()) in
  let hidden = footprint (K.Config.v5_13 ~jump_label:true ()) in
  check_bool "fewer instrumented accesses under jump labels" true
    (hidden < visible)

let suite =
  [
    Alcotest.test_case "stackrec: stack attribution" `Quick
      test_replay_stack_attribution;
    Alcotest.test_case "stackrec: frames popped" `Quick test_replay_pops_frames;
    Alcotest.test_case "stackrec: syscall indices" `Quick
      test_replay_syscall_indices;
    Alcotest.test_case "stackrec: dedup by site" `Quick test_dedup;
    Alcotest.test_case "stackrec: dedup keeps distinct stacks" `Quick
      test_dedup_keeps_distinct_stacks;
    Alcotest.test_case "accessmap: writer/reader overlap" `Quick
      test_accessmap_overlaps;
    Alcotest.test_case "accessmap: stats" `Quick test_accessmap_stats;
    Alcotest.test_case "accessmap: one-sided addresses never overlap" `Quick
      test_accessmap_one_sided_addresses;
    Alcotest.test_case "accessmap: empty stats" `Quick test_accessmap_empty_stats;
    Alcotest.test_case "collect: profile non-empty" `Quick
      test_collect_profile_nonempty;
    Alcotest.test_case "collect: deterministic across reloads" `Quick
      test_collect_deterministic;
    Alcotest.test_case "collect: roles share variable addresses" `Quick
      test_collect_roles_share_addresses;
    Alcotest.test_case "collect: untraced run" `Quick test_collect_untraced_run;
    Alcotest.test_case "collect: jump-label blindness" `Quick
      test_collect_jump_label_blindness;
  ]
