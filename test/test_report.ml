(* Tests for diagnosis (Algorithm 2), call signatures and report
   aggregation (AGG-R / AGG-RS). *)

module K = Kit_kernel
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Diagnose = Kit_report.Diagnose
module Signature = Kit_report.Signature
module Aggregate = Kit_report.Aggregate
module Spec = Kit_spec.Spec
module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang
module Testcase = Kit_gen.Testcase

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let p = Syzlang.parse

(* --- Signature -------------------------------------------------------------- *)

let test_signature_socket_domain () =
  let prog = p "r0 = socket(3)" in
  check_string "domain detail" "socket[AF_PACKET]"
    (Signature.to_string (Signature.of_call prog 0))

let test_signature_read_with_producer () =
  let prog = p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  check_string "path flows through the fd" "read[/proc/net/ptype]"
    (Signature.to_string (Signature.of_call prog 1))

let test_signature_prio_mode () =
  let prog = p "r0 = getpriority(2, 1000)" in
  check_string "PRIO_USER" "getpriority[PRIO_USER]"
    (Signature.to_string (Signature.of_call prog 0))

let test_signature_sysctl_name () =
  let prog = p "r0 = sysctl_read(\"net/nf_conntrack_max\")" in
  check_string "sysctl detail" "sysctl_read[net/nf_conntrack_max]"
    (Signature.to_string (Signature.of_call prog 0))

let test_signature_bind_via_socket () =
  let prog = p "r0 = socket(4)\nr1 = bind(r0, 1003)" in
  check_string "producer rendered" "bind[AF_RDS]"
    (Signature.to_string (Signature.of_call prog 1))

let test_signature_out_of_range () =
  let prog = p "r0 = getpid()" in
  check_string "unknown" "?" (Signature.to_string (Signature.of_call prog 9))

let test_signature_ordering () =
  let a = { Signature.name = "a"; details = [ "x" ] } in
  let b = { Signature.name = "a"; details = [ "y" ] } in
  check_bool "details order" true (Signature.compare a b < 0);
  check_bool "equality" true (Signature.equal a a)

(* --- Diagnose (Algorithm 2) --------------------------------------------------- *)

(* Synthetic interference: sender call [i] interferes with receiver call
   [f i] when present. The test function recomputes interference from the
   remaining sender calls. *)
let synthetic_test ~full_sender interference ~sender ~receiver:_ =
  let remaining = Program.calls sender in
  let full = Program.calls full_sender in
  (* A call of the original sender is "still present" if an equal call
     remains (synthetic senders have distinct calls). *)
  List.concat_map
    (fun (i, r) ->
      match List.nth_opt full i with
      | Some call when List.exists (Program.call_equal call) remaining -> [ r ]
      | Some _ | None -> [])
    interference
  |> List.sort_uniq Int.compare

let test_diagnose_single_culprit () =
  let sender = p "r0 = getpid()\nr1 = socket(3)\nr2 = clock_gettime()" in
  let receiver = p "r0 = token_stat(1)" in
  let interference = [ (1, 0) ] in
  let pairs =
    Diagnose.culprits
      ~test:(synthetic_test ~full_sender:sender interference)
      ~sender ~receiver ~interfered:[ 0 ]
  in
  match pairs with
  | [ { Diagnose.sender_index = 1; receiver_index = 0 } ] -> ()
  | _ -> Alcotest.failf "unexpected pairs: %d" (List.length pairs)

let test_diagnose_multiple_culprits () =
  let sender = p "r0 = socket(1)\nr1 = socket(3)\nr2 = socket(5)" in
  let receiver = p "r0 = token_stat(1)\nr1 = token_stat(2)" in
  (* sender call 0 interferes with receiver 0; sender call 2 with 1. *)
  let interference = [ (0, 0); (2, 1) ] in
  let pairs =
    Diagnose.culprits
      ~test:(synthetic_test ~full_sender:sender interference)
      ~sender ~receiver ~interfered:[ 0; 1 ]
  in
  check_int "two pairs" 2 (List.length pairs);
  check_bool "pair (2,1) found" true
    (List.exists
       (fun pr -> pr.Diagnose.sender_index = 2 && pr.Diagnose.receiver_index = 1)
       pairs);
  check_bool "pair (0,0) found" true
    (List.exists
       (fun pr -> pr.Diagnose.sender_index = 0 && pr.Diagnose.receiver_index = 0)
       pairs)

let test_diagnose_picks_first_receiver_call () =
  (* One sender call interfering with a cascade of receiver calls must be
     paired with the first one only. *)
  let sender = p "r0 = socket(3)" in
  let receiver = p "r0 = token_stat(1)\nr1 = token_stat(2)\nr2 = token_stat(3)" in
  let interference = [ (0, 0); (0, 1); (0, 2) ] in
  let pairs =
    Diagnose.culprits
      ~test:(synthetic_test ~full_sender:sender interference)
      ~sender ~receiver ~interfered:[ 0; 1; 2 ]
  in
  match pairs with
  | [ { Diagnose.sender_index = 0; receiver_index = 0 } ] -> ()
  | _ -> Alcotest.fail "expected the first receiver call only"

let test_diagnose_end_to_end () =
  (* Real kernel: a three-call sender whose middle call is the culprit. *)
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create env in
  let sender = p "r0 = getpid()\nr1 = socket(3)\nr2 = getpid()" in
  let receiver = p "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  let test ~sender ~receiver =
    Filter.protected_interfered Spec.default receiver
      (Runner.test_interference runner ~sender ~receiver)
  in
  let pairs = Diagnose.culprits ~test ~sender ~receiver ~interfered:[ 1 ] in
  match pairs with
  | [ { Diagnose.sender_index = 1; receiver_index = 1 } ] -> ()
  | _ -> Alcotest.fail "expected the packet socket call as culprit"

let test_diagnose_empty_interference () =
  let sender = p "r0 = getpid()" in
  let receiver = p "r0 = getpid()" in
  let pairs =
    Diagnose.culprits
      ~test:(fun ~sender:_ ~receiver:_ -> [])
      ~sender ~receiver ~interfered:[]
  in
  check_int "no pairs" 0 (List.length pairs)

(* --- Aggregate ------------------------------------------------------------------ *)

let dummy_report sender_text receiver_text interfered =
  let sender = p sender_text in
  let receiver = p receiver_text in
  let tree = Kit_trace.Ast.node "trace" [] in
  { Report.testcase = { Testcase.sender = 0; receiver = 0; flow = None };
    sender; receiver; interfered; diffs = []; trace_a = tree; trace_b = tree;
    origin = Report.Sequential }

let keyed sender_text receiver_text (s, r) =
  Aggregate.key_report
    (dummy_report sender_text receiver_text [ r ])
    [ { Diagnose.sender_index = s; receiver_index = r } ]

let test_agg_r_groups_by_receiver () =
  let k1 = keyed "r0 = socket(3)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" (0, 1) in
  let k2 = keyed "r0 = socket(3)\nr1 = getpid()" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" (0, 1) in
  let k3 = keyed "r0 = socket(1)" "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)" (0, 1) in
  let groups = Aggregate.agg_r [ k1; k2; k3 ] in
  check_int "two receiver groups" 2 (List.length groups)

let test_agg_rs_subdivides () =
  let k1 = keyed "r0 = socket(3)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" (0, 1) in
  let k2 = keyed "r0 = socket(1)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" (0, 1) in
  let agg_r = Aggregate.agg_r [ k1; k2 ] in
  let agg_rs = Aggregate.agg_rs [ k1; k2 ] in
  check_int "one AGG-R group" 1 (List.length agg_r);
  check_int "two AGG-RS groups" 2 (List.length agg_rs)

let test_agg_members_partition () =
  let ks =
    [ keyed "r0 = socket(3)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" (0, 1);
      keyed "r0 = socket(1)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" (0, 1);
      keyed "r0 = socket(1)" "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)" (0, 1) ]
  in
  let total groups =
    List.fold_left
      (fun acc (g : Aggregate.group) -> acc + List.length g.Aggregate.members)
      0 groups
  in
  check_int "AGG-R partitions" (List.length ks) (total (Aggregate.agg_r ks));
  check_int "AGG-RS partitions" (List.length ks) (total (Aggregate.agg_rs ks))

let test_key_report_without_pairs () =
  let report = dummy_report "r0 = socket(3)" "r0 = gethostname()" [ 0 ] in
  let k = Aggregate.key_report report [] in
  check_string "falls back to first interfered call" "gethostname"
    (Signature.to_string k.Aggregate.receiver_sig);
  check_string "unknown sender" "?" (Signature.to_string k.Aggregate.sender_sig)

let suite =
  [
    Alcotest.test_case "signature: socket domain" `Quick
      test_signature_socket_domain;
    Alcotest.test_case "signature: read with producer path" `Quick
      test_signature_read_with_producer;
    Alcotest.test_case "signature: priority mode" `Quick test_signature_prio_mode;
    Alcotest.test_case "signature: sysctl name" `Quick test_signature_sysctl_name;
    Alcotest.test_case "signature: bind via socket" `Quick
      test_signature_bind_via_socket;
    Alcotest.test_case "signature: out of range" `Quick
      test_signature_out_of_range;
    Alcotest.test_case "signature: ordering" `Quick test_signature_ordering;
    Alcotest.test_case "diagnose: single culprit" `Quick
      test_diagnose_single_culprit;
    Alcotest.test_case "diagnose: multiple culprits" `Quick
      test_diagnose_multiple_culprits;
    Alcotest.test_case "diagnose: first receiver call wins" `Quick
      test_diagnose_picks_first_receiver_call;
    Alcotest.test_case "diagnose: end-to-end on the kernel" `Quick
      test_diagnose_end_to_end;
    Alcotest.test_case "diagnose: empty interference" `Quick
      test_diagnose_empty_interference;
    Alcotest.test_case "aggregate: AGG-R groups by receiver" `Quick
      test_agg_r_groups_by_receiver;
    Alcotest.test_case "aggregate: AGG-RS subdivides" `Quick
      test_agg_rs_subdivides;
    Alcotest.test_case "aggregate: members partition" `Quick
      test_agg_members_partition;
    Alcotest.test_case "aggregate: report without pairs" `Quick
      test_key_report_without_pairs;
  ]
